// Rectangular least squares end to end: the paper's formulation never
// assumes square matrices (§III develops s2D for m×n A), and its Expand
// and Fold phases are exact duals — so one s2D distribution serves both
// y ← Ax and z ← Aᵀy from the same compiled plan with the phases
// reversed. This example partitions a tall LP-style constraint matrix
// once, verifies both products against the serial reference, and then
// solves min ‖Ax − b‖₂ with LSQR and CGNR driving that single engine.
//
// Run with: go run ./examples/rectangular
package main

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/method"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/spmv"
)

func main() {
	const (
		rows = 12000
		cols = 4000
		k    = 16
	)
	a := constraintMatrix(rows, cols, 5, 3)
	fmt.Printf("LP-style constraint matrix: %d x %d, nnz %d\n", a.Rows, a.Cols, a.NNZ())

	opt := method.Options{Seed: 11}
	b, err := method.BuildByName("s2D", a, k, opt)
	if err != nil {
		panic(err)
	}
	engine, err := spmv.New(b)
	if err != nil {
		panic(err)
	}
	defer engine.Close()
	cs := b.Comm()
	fmt.Printf("s2D on A: volume %d, msgs %d, LI %.1f%%\n",
		cs.TotalVolume, cs.TotalMsgs, b.Dist.LoadImbalance()*100)

	// Forward and transpose products from the one compiled plan.
	r := rand.New(rand.NewSource(4))
	x := make([]float64, cols)
	for i := range x {
		x[i] = r.Float64()
	}
	y := make([]float64, rows)
	engine.Multiply(x, y)
	want := make([]float64, rows)
	a.MulVec(x, want)
	fmt.Printf("y <- Ax:  max |err| = %.2e\n", maxErr(y, want))

	z := make([]float64, cols)
	engine.MultiplyTranspose(y, z)
	wantZ := make([]float64, cols)
	a.Transpose().MulVec(y, wantZ)
	fmt.Printf("z <- A'y: max |err| = %.2e (same engine, phases reversed)\n", maxErr(z, wantZ))

	// Least squares: plant a solution, perturb b off range(A), recover.
	xTrue := make([]float64, cols)
	for j := range xTrue {
		xTrue[j] = r.Float64()*2 - 1
	}
	rhs := make([]float64, rows)
	engine.Multiply(xTrue, rhs)
	noisy := append([]float64(nil), rhs...)
	for i := range noisy {
		noisy[i] += (r.Float64() - 0.5) * 1e-3
	}

	// Engine errors (closed / faulted) are fatal in a standalone example.
	mul := func(x, y []float64) {
		if err := engine.Multiply(x, y); err != nil {
			panic(err)
		}
	}
	mulT := func(x, y []float64) {
		if err := engine.MultiplyTranspose(x, y); err != nil {
			panic(err)
		}
	}
	for _, solve := range []struct {
		name string
		run  func(b, x []float64) (solver.Result, error)
	}{
		{"LSQR", func(bv, xv []float64) (solver.Result, error) {
			return solver.LSQR(mul, mulT, bv, xv, 1e-10, 500)
		}},
		{"CGNR", func(bv, xv []float64) (solver.Result, error) {
			return solver.CGNR(mul, mulT, bv, xv, 1e-10, 500)
		}},
	} {
		xs := make([]float64, cols)
		res, err := solve.run(noisy, xs)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: %d iters, residual %.2e, converged %v, max |x - x_true| = %.2e\n",
			solve.name, res.Iterations, res.Residual, res.Converged, maxErr(xs, xTrue))
	}
}

// constraintMatrix builds a tall sparse matrix: each row (constraint)
// touches a few local variables plus occasional global coupling columns.
func constraintMatrix(rows, cols, perRow, globals int) *sparse.CSR {
	r := rand.New(rand.NewSource(2))
	c := sparse.NewCOO(rows, cols)
	for i := 0; i < rows; i++ {
		base := i * cols / rows
		for t := 0; t < perRow; t++ {
			j := (base + r.Intn(40)) % cols
			c.Add(i, j, r.Float64()*2-1)
		}
		if r.Intn(8) == 0 {
			c.Add(i, r.Intn(globals), 1) // dense coupling columns
		}
	}
	// Anchor every variable so A has full column rank.
	for j := 0; j < cols; j++ {
		c.Add(j*rows/cols, j, 4)
	}
	return c.ToCSR()
}

func maxErr(got, want []float64) float64 {
	m := 0.0
	for i := range got {
		if e := math.Abs(got[i] - want[i]); e > m {
			m = e
		}
	}
	return m
}
