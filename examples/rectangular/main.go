// Rectangular SpMV: the paper's formulation never assumes square matrices
// (§III develops s2D for m×n A). This example partitions a tall LP-style
// constraint matrix, where the input vector partition must be derived by
// column majority rather than symmetrically, and runs both y ← Ax and the
// transpose product z ← Aᵀy used by normal-equation solvers.
//
// Run with: go run ./examples/rectangular
package main

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/method"
	"repro/internal/sparse"
	"repro/internal/spmv"
)

func main() {
	const (
		rows = 12000
		cols = 4000
		k    = 16
	)
	a := constraintMatrix(rows, cols, 5, 3)
	fmt.Printf("LP-style constraint matrix: %d x %d, nnz %d\n", a.Rows, a.Cols, a.NNZ())

	opt := method.Options{Seed: 11}
	b, err := method.BuildByName("s2D", a, k, opt)
	if err != nil {
		panic(err)
	}
	engine, err := spmv.New(b)
	if err != nil {
		panic(err)
	}
	defer engine.Close()
	cs := b.Comm()
	fmt.Printf("s2D on A:  volume %d, msgs %d, LI %.1f%%\n",
		cs.TotalVolume, cs.TotalMsgs, b.Dist.LoadImbalance()*100)

	// Forward product.
	r := rand.New(rand.NewSource(4))
	x := make([]float64, cols)
	for i := range x {
		x[i] = r.Float64()
	}
	y := make([]float64, rows)
	engine.Multiply(x, y)
	want := make([]float64, rows)
	a.MulVec(x, want)
	fmt.Printf("y <- Ax: max |err| = %.2e\n", maxErr(y, want))

	// Transpose product with its own s2D partition (A^T is wide).
	at := a.Transpose()
	bt, err := method.BuildByName("s2D", at, k, opt)
	if err != nil {
		panic(err)
	}
	engineT, err := spmv.New(bt)
	if err != nil {
		panic(err)
	}
	defer engineT.Close()
	z := make([]float64, cols)
	engineT.Multiply(y, z)
	wantZ := make([]float64, cols)
	at.MulVec(y, wantZ)
	fmt.Printf("z <- A'y: max |err| = %.2e\n", maxErr(z, wantZ))
	csT := bt.Comm()
	fmt.Printf("s2D on A': volume %d, msgs %d, LI %.1f%%\n",
		csT.TotalVolume, csT.TotalMsgs, bt.Dist.LoadImbalance()*100)
}

// constraintMatrix builds a tall sparse matrix: each row (constraint)
// touches a few local variables plus occasional global coupling columns.
func constraintMatrix(rows, cols, perRow, globals int) *sparse.CSR {
	r := rand.New(rand.NewSource(2))
	c := sparse.NewCOO(rows, cols)
	for i := 0; i < rows; i++ {
		base := i * cols / rows
		for t := 0; t < perRow; t++ {
			j := (base + r.Intn(40)) % cols
			c.Add(i, j, r.Float64()*2-1)
		}
		if r.Intn(8) == 0 {
			c.Add(i, r.Intn(globals), 1) // dense coupling columns
		}
	}
	return c.ToCSR()
}

func maxErr(got, want []float64) float64 {
	m := 0.0
	for i := range got {
		if e := math.Abs(got[i] - want[i]); e > m {
			m = e
		}
	}
	return m
}
