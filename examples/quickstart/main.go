// Quickstart: generate a sparse matrix, build partitions through the
// method registry, run the fused-phase parallel SpMV, and compare s2D's
// quality against plain 1D.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/gen"
	"repro/internal/method"
	"repro/internal/model"
	"repro/internal/spmv"
)

func main() {
	// A scale-free matrix with two planted dense rows — the regime where
	// the paper's method shines.
	a := gen.PowerLaw(gen.PowerLawConfig{
		Rows: 20000, Cols: 20000, NNZ: 300000, Beta: 0.5,
		DenseRows: 2, DenseMax: 5000, Symmetric: true,
	}, 42)
	const k = 32

	// Build both methods on one pipeline: s2D (Algorithm 1) imports the
	// vector partition the 1D rowwise build induces, so their shared
	// prerequisite — the column-net hypergraph partition of the rows —
	// is computed exactly once.
	opt := method.Options{Seed: 42, Pipeline: method.NewPipeline()}
	machine := model.CrayXE6()
	var s2d method.Build
	for _, name := range []string{"1D", "s2D"} {
		b, err := method.BuildByName(name, a, k, opt)
		if err != nil {
			panic(err)
		}
		cs := b.Comm()
		est := machine.Evaluate(b.Dist.PartLoads(), cs.Phases, a.NNZ())
		fmt.Printf("%-6s load imbalance %6.1f%%   volume %7d   max msgs %4d   modelled speedup %6.1f\n",
			name, b.Dist.LoadImbalance()*100, cs.TotalVolume, cs.MaxSendMsgs, est.Speedup)
		s2d = b
	}

	// Run the fused Expand-and-Fold engine on the s2D build and verify
	// against the serial reference.
	engine, err := spmv.New(s2d)
	if err != nil {
		panic(err)
	}
	defer engine.Close()
	r := rand.New(rand.NewSource(7))
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = r.Float64()
	}
	y := make([]float64, a.Rows)
	engine.Multiply(x, y)

	want := make([]float64, a.Rows)
	a.MulVec(x, want)
	var maxErr float64
	for i := range y {
		if e := math.Abs(y[i] - want[i]); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("\nfused-phase parallel SpMV on %d goroutine processors: max |err| = %.2e\n", k, maxErr)
}
