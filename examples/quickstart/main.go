// Quickstart: generate a sparse matrix, build an s2D partition on the
// vector partition induced by 1D rowwise, run the fused-phase parallel
// SpMV, and compare its quality against plain 1D.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/spmv"
)

func main() {
	// A scale-free matrix with two planted dense rows — the regime where
	// the paper's method shines.
	a := gen.PowerLaw(gen.PowerLawConfig{
		Rows: 20000, Cols: 20000, NNZ: 300000, Beta: 0.5,
		DenseRows: 2, DenseMax: 5000, Symmetric: true,
	}, 42)
	const k = 32

	// Step 1: a 1D rowwise partition provides the vector partition.
	opt := baselines.Options{Seed: 42}
	rowParts := baselines.RowwiseParts(a, k, opt)
	oneD := baselines.Rowwise1DFromParts(a, rowParts, k)

	// Step 2: Algorithm 1 reassigns horizontal blocks to build the s2D
	// partition — same communication pattern, less volume, better balance.
	s2d := core.Balanced(a, oneD.XPart, oneD.YPart, k, core.BalanceConfig{})

	machine := model.CrayXE6()
	report := func(name string, li float64, vol, maxMsgs int, sp float64) {
		fmt.Printf("%-6s load imbalance %6.1f%%   volume %7d   max msgs %4d   modelled speedup %6.1f\n",
			name, li*100, vol, maxMsgs, sp)
	}
	c1 := oneD.Comm()
	e1 := machine.Evaluate(oneD.PartLoads(), c1.Phases, a.NNZ())
	report("1D", oneD.LoadImbalance(), c1.TotalVolume, c1.MaxSendMsgs, e1.Speedup)
	c2 := s2d.Comm()
	e2 := machine.Evaluate(s2d.PartLoads(), c2.Phases, a.NNZ())
	report("s2D", s2d.LoadImbalance(), c2.TotalVolume, c2.MaxSendMsgs, e2.Speedup)

	// Step 3: run the fused Expand-and-Fold engine and verify against the
	// serial reference.
	engine, err := spmv.NewEngine(s2d)
	if err != nil {
		panic(err)
	}
	defer engine.Close()
	r := rand.New(rand.NewSource(7))
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = r.Float64()
	}
	y := make([]float64, a.Rows)
	engine.Multiply(x, y)

	want := make([]float64, a.Rows)
	a.MulVec(x, want)
	var maxErr float64
	for i := range y {
		if e := math.Abs(y[i] - want[i]); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("\nfused-phase parallel SpMV on %d goroutine processors: max |err| = %.2e\n", k, maxErr)
}
