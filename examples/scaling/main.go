// Scaling study: modelled speedup of 1D, s2D and s2D-b across processor
// counts on a dense-row matrix — the regime change the paper's Tables II/V
// document. 1D dies of load imbalance, s2D of latency; the bounded s2D-b
// keeps scaling.
//
// Run with: go run ./examples/scaling
package main

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/method"
	"repro/internal/model"
)

func main() {
	spec, _ := gen.ByName("ASIC_680k")
	a := spec.Generate(1.0/16, 1)
	st := a.ComputeStats()
	fmt.Printf("matrix %s (1/16 scale): n=%d nnz=%d dmax=%d\n\n", "ASIC_680k", st.Rows, st.NNZ, st.DmaxRow)

	machine := model.CrayXE6()
	methods := []string{"1D", "s2D", "s2D-b"}
	ks := []int{4, 16, 64, 256, 1024}
	fmt.Printf("%6s | %10s %10s %10s\n", "K", methods[0], methods[1], methods[2])
	fmt.Printf("%6s | %10s %10s %10s\n", "", "speedup", "speedup", "speedup")
	// One pipeline for the whole sweep: the power-of-two Ks hint lets all
	// five K values share a single recursive-bisection tree per model, and
	// s2D-b reuses the s2D distribution at every K.
	opt := method.Options{Seed: 1, Pipeline: method.NewPipeline(), Ks: ks}
	for _, k := range ks {
		fmt.Printf("%6d |", k)
		for _, name := range methods {
			b, err := method.BuildByName(name, a, k, opt)
			if err != nil {
				panic(err)
			}
			cs := b.Comm()
			est := machine.Evaluate(b.Dist.PartLoads(), cs.Phases, a.NNZ())
			fmt.Printf(" %10.1f", est.Speedup)
		}
		fmt.Println()
	}
	fmt.Println("\n(1D saturates on imbalance+latency; s2D fixes volume/balance but")
	fmt.Println("shares 1D's O(K) message pattern; s2D-b's O(sqrt K) routing keeps scaling.)")
}
