// Scaling study: modelled speedup of 1D, s2D and s2D-b across processor
// counts on a dense-row matrix — the regime change the paper's Tables II/V
// document. 1D dies of load imbalance, s2D of latency; the bounded s2D-b
// keeps scaling.
//
// Run with: go run ./examples/scaling
package main

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/gen"
	"repro/internal/model"
)

func main() {
	spec, _ := gen.ByName("ASIC_680k")
	a := spec.Generate(1.0/16, 1)
	st := a.ComputeStats()
	fmt.Printf("matrix %s (1/16 scale): n=%d nnz=%d dmax=%d\n\n", "ASIC_680k", st.Rows, st.NNZ, st.DmaxRow)

	machine := model.CrayXE6()
	fmt.Printf("%6s | %10s %10s %10s\n", "K", "1D", "s2D", "s2D-b")
	fmt.Printf("%6s | %10s %10s %10s\n", "", "speedup", "speedup", "speedup")
	for _, k := range []int{4, 16, 64, 256, 1024} {
		opt := baselines.Options{Seed: 1}
		rows := baselines.RowwiseParts(a, k, opt)
		oneD := baselines.Rowwise1DFromParts(a, rows, k)
		s2d := core.Balanced(a, oneD.XPart, oneD.YPart, k, core.BalanceConfig{})
		mesh := core.NewMesh(k)

		sp := func(d *distrib.Distribution, routed bool) float64 {
			var cs distrib.CommStats
			if routed {
				cs = core.S2DBComm(d, mesh)
			} else {
				cs = d.Comm()
			}
			return machine.Evaluate(d.PartLoads(), cs.Phases, a.NNZ()).Speedup
		}
		fmt.Printf("%6d | %10.1f %10.1f %10.1f\n", k, sp(oneD, false), sp(s2d, false), sp(s2d, true))
	}
	fmt.Println("\n(1D saturates on imbalance+latency; s2D fixes volume/balance but")
	fmt.Println("shares 1D's O(K) message pattern; s2D-b's O(sqrt K) routing keeps scaling.)")
}
