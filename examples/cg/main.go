// Conjugate gradient on a FEM-like symmetric positive definite matrix with
// the SpMV inside each iteration executed by the s2D engine — the
// iterative-solver workload that motivates partitioning quality: the same
// communication pattern repeats hundreds of times, so volume and latency
// savings compound.
//
// Run with: go run ./examples/cg
package main

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/gen"
	"repro/internal/method"
	"repro/internal/solver"
	"repro/internal/spmv"
)

func main() {
	const k = 8
	// A 3D Laplacian: the canonical SPD stencil system.
	a := gen.Laplace3D(20, 18, 16)
	fmt.Printf("SPD system: n=%d, nnz=%d (7-point 3D Laplacian)\n", a.Rows, a.NNZ())

	b, err := method.BuildByName("s2D", a, k, method.Options{Seed: 5})
	if err != nil {
		panic(err)
	}
	engine, err := spmv.New(b)
	if err != nil {
		panic(err)
	}
	defer engine.Close()
	cs := b.Comm()
	fmt.Printf("s2D partition: volume %d words/SpMV, %d msgs, LI %.1f%%\n",
		cs.TotalVolume, cs.TotalMsgs, b.Dist.LoadImbalance()*100)

	// Manufactured random solution x*, b = A x*.
	rng := rand.New(rand.NewSource(9))
	xStar := make([]float64, a.Rows)
	for i := range xStar {
		xStar[i] = rng.Float64()*2 - 1
	}
	rhs := make([]float64, a.Rows)
	a.MulVec(xStar, rhs)

	// The engine's multiplies return errors (closed / faulted engine);
	// in a standalone example any such error is fatal.
	mul := func(x, y []float64) {
		if err := engine.Multiply(x, y); err != nil {
			panic(err)
		}
	}
	mulBlock := func(X, Y []float64, nrhs int) {
		if err := engine.MultiplyBlock(X, Y, nrhs); err != nil {
			panic(err)
		}
	}

	x := make([]float64, a.Rows)
	res, err := solver.CG(mul, rhs, x, 1e-10, 2000)
	if err != nil {
		panic(err)
	}
	var errNorm float64
	for i := range x {
		errNorm += (x[i] - xStar[i]) * (x[i] - xStar[i])
	}
	fmt.Printf("CG converged=%v in %d iterations: residual %.3e, ||x-x*|| = %.3e\n",
		res.Converged, res.Iterations, res.Residual, math.Sqrt(errNorm))
	fmt.Printf("total communication over the solve: %d words in %d messages\n",
		res.Iterations*cs.TotalVolume, res.Iterations*cs.TotalMsgs)

	// Block CG: the same system against nrhs right-hand sides, one SpMM
	// per iteration over MultiplyBlock. Message count per iteration is
	// unchanged from the single solve — the latency cost is amortized
	// across all columns.
	const nrhs = 4
	cols := make([][]float64, nrhs)
	for c := range cols {
		xs := make([]float64, a.Rows)
		for i := range xs {
			xs[i] = rng.Float64()*2 - 1
		}
		bc := make([]float64, a.Rows)
		a.MulVec(xs, bc)
		cols[c] = bc
	}
	B := solver.PackColumns(cols)
	X := make([]float64, a.Rows*nrhs)
	bres, err := solver.BlockCG(mulBlock, B, X, nrhs, 1e-10, 2000)
	if err != nil {
		panic(err)
	}
	maxIters := 0
	for c, rc := range bres {
		if rc.Iterations > maxIters {
			maxIters = rc.Iterations
		}
		fmt.Printf("block CG column %d: converged=%v in %d iterations (residual %.3e)\n",
			c, rc.Converged, rc.Iterations, rc.Residual)
	}
	fmt.Printf("block solve messages: %d (vs %d for %d sequential solves)\n",
		maxIters*cs.TotalMsgs, nrhs*res.Iterations*cs.TotalMsgs, nrhs)
}
