// Figure 1 from the paper: a 10×13 sparse matrix with a 3-way s2D
// partition, rendered in ASCII, with the caption's communication facts
// verified by actually running the fused-phase engine.
//
// Run with: go run ./examples/figure1
package main

import (
	"fmt"
	"os"

	"repro/internal/harness"
	"repro/internal/spmv"
)

func main() {
	harness.Figure1(os.Stdout)

	// Prove the partition computes the right product with the fused
	// Expand-and-Fold schedule.
	d := harness.Figure1Example()
	engine, err := spmv.NewEngine(d)
	if err != nil {
		panic(err)
	}
	defer engine.Close()
	a := d.A
	x := make([]float64, a.Cols)
	for j := range x {
		x[j] = float64(j + 1)
	}
	y := make([]float64, a.Rows)
	engine.Multiply(x, y)
	want := make([]float64, a.Rows)
	a.MulVec(x, want)
	for i := range y {
		if y[i] != want[i] {
			fmt.Printf("MISMATCH at row %d: %v != %v\n", i, y[i], want[i])
			os.Exit(1)
		}
	}
	fmt.Println("fused-phase engine verified against serial SpMV on the example")
}
