// PageRank on an R-MAT graph over the s2D-partitioned parallel SpMV
// engine — the scale-free workload the paper's related work (GraphX,
// scalable eigensolvers) motivates. Each power iteration is one SpMV with
// the column-stochastic adjacency matrix; the s2D partition keeps the
// iteration's communication in a single fused phase.
//
// Run with: go run ./examples/pagerank
package main

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/method"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/spmv"
)

func main() {
	const (
		k       = 16
		damping = 0.85
		iters   = 30
	)
	g := gen.RMAT(gen.RMATConfig{
		Scale: 13, Edges: 60000,
		A: 0.57, B: 0.19, C: 0.19, D: 0.05,
		Undirected: true, NoSelf: true,
	}, 11)
	n := g.Rows
	fmt.Printf("R-MAT graph: %d vertices, %d edges\n", n, g.NNZ()/2)

	// Column-stochastic transition matrix M = A D^{-1}.
	m := columnStochastic(g)

	// s2D partition from the method registry.
	b, err := method.BuildByName("s2D", m, k, method.Options{Seed: 3})
	if err != nil {
		panic(err)
	}
	engine, err := spmv.New(b)
	if err != nil {
		panic(err)
	}
	defer engine.Close()
	cs := b.Comm()
	fmt.Printf("s2D partition: K=%d, volume %d words/iter, max %d msgs/proc, LI %.1f%%\n",
		k, cs.TotalVolume, cs.MaxSendMsgs, b.Dist.LoadImbalance()*100)

	// Damped power iteration over the fused-phase engine. Engine errors
	// (closed / faulted) are fatal in a standalone example.
	mul := func(x, y []float64) {
		if err := engine.Multiply(x, y); err != nil {
			panic(err)
		}
	}
	r, res := solver.PageRank(mul, n, damping, 1e-10, iters)
	fmt.Printf("PageRank converged=%v in %d iterations (L1 delta %.3e)\n",
		res.Converged, res.Iterations, res.Residual)

	// Batched personalized PageRank: one block power iteration computes
	// nrhs personalization vectors at once over MultiplyBlock, so the
	// per-iteration communication stays one packet per peer regardless of
	// how many queries are in flight — the multi-query serving shape.
	const nrhs = 4
	seeds := make([]int, nrhs)
	E := make([]float64, n*nrhs)
	for c := 0; c < nrhs; c++ {
		seeds[c] = (c * n) / nrhs
		E[seeds[c]*nrhs+c] = 1
	}
	mulBlock := func(X, Y []float64, nrhs int) {
		if err := engine.MultiplyBlock(X, Y, nrhs); err != nil {
			panic(err)
		}
	}
	R, bres := solver.PageRankMulti(mulBlock, n, nrhs, E, damping, 1e-10, 5*iters)
	fmt.Printf("personalized PageRank, %d seeds in one SpMM stream:\n", nrhs)
	for c := 0; c < nrhs; c++ {
		top, topRank := 0, 0.0
		for i := 0; i < n; i++ {
			if rv := R[i*nrhs+c]; rv > topRank {
				top, topRank = i, rv
			}
		}
		fmt.Printf("  seed %6d: converged=%v iters=%d  top vertex %6d (rank %.5f)\n",
			seeds[c], bres[c].Converged, bres[c].Iterations, top, topRank)
	}

	// Report the top-5 ranked vertices.
	type vr struct {
		v int
		r float64
	}
	top := make([]vr, 0, 5)
	for v, rv := range r {
		if len(top) < 5 || rv > top[4].r {
			top = append(top, vr{v, rv})
			for i := len(top) - 1; i > 0 && top[i].r > top[i-1].r; i-- {
				top[i], top[i-1] = top[i-1], top[i]
			}
			if len(top) > 5 {
				top = top[:5]
			}
		}
	}
	fmt.Println("top PageRank vertices:")
	for _, t := range top {
		fmt.Printf("  vertex %6d  rank %.5f  degree %d\n", t.v, t.r, g.RowNNZ(t.v))
	}
}

// columnStochastic scales each column of g to sum to 1 (dangling columns
// are left empty; the damping term handles them).
func columnStochastic(g *sparse.CSR) *sparse.CSR {
	colDeg := g.ColDegrees()
	m := g.Clone()
	for p, j := range m.ColIdx {
		if colDeg[j] > 0 {
			m.Val[p] = 1.0 / float64(colDeg[j])
		}
	}
	return m
}
