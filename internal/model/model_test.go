package model

import (
	"testing"

	"repro/internal/baselines"
	"repro/internal/distrib"
	"repro/internal/gen"
)

func TestEvaluateHandComputed(t *testing.T) {
	m := Machine{TNonzero: 1e-9, Alpha: 1e-6, Beta: 1e-8}
	loads := []int{100, 200, 150}
	phases := []distrib.PhaseStats{
		{MaxSendMsgs: 2, MaxRecvMsgs: 3, MaxSendVol: 50, MaxRecvVol: 40},
	}
	est := m.Evaluate(loads, phases, 450)
	wantCompute := 200e-9
	wantComm := 3e-6 + 50e-8
	if !close(est.ComputeTime, wantCompute) {
		t.Errorf("compute = %v, want %v", est.ComputeTime, wantCompute)
	}
	if !close(est.CommTime, wantComm) {
		t.Errorf("comm = %v, want %v", est.CommTime, wantComm)
	}
	if !close(est.SerialTime, 450e-9) {
		t.Errorf("serial = %v", est.SerialTime)
	}
	if !close(est.Speedup, est.SerialTime/est.ParallelTime) {
		t.Errorf("speedup inconsistent")
	}
}

func TestEvaluateNRHSHandComputed(t *testing.T) {
	m := Machine{TNonzero: 1e-9, Alpha: 1e-6, Beta: 1e-8}
	loads := []int{100, 200, 150}
	phases := []distrib.PhaseStats{
		{MaxSendMsgs: 2, MaxRecvMsgs: 3, MaxSendVol: 50, MaxRecvVol: 40},
	}
	const nrhs = 8
	est := m.EvaluateNRHS(loads, phases, 450, nrhs)
	// Compute and volume scale by nrhs; the α message term does not.
	wantCompute := 200e-9 * nrhs
	wantComm := 3e-6 + 50e-8*nrhs
	if !close(est.ComputeTime, wantCompute) {
		t.Errorf("compute = %v, want %v", est.ComputeTime, wantCompute)
	}
	if !close(est.CommTime, wantComm) {
		t.Errorf("comm = %v, want %v", est.CommTime, wantComm)
	}
	if !close(est.SerialTime, 450e-9*nrhs) {
		t.Errorf("serial = %v", est.SerialTime)
	}
	// nrhs=1 must agree with Evaluate exactly.
	e1 := m.EvaluateNRHS(loads, phases, 450, 1)
	ev := m.Evaluate(loads, phases, 450)
	if e1 != ev {
		t.Errorf("EvaluateNRHS(1) = %+v, Evaluate = %+v", e1, ev)
	}
	// Per-column time must fall as nrhs grows (latency amortization).
	if est.ParallelTime/nrhs >= ev.ParallelTime {
		t.Errorf("per-column time did not drop: %v vs %v", est.ParallelTime/nrhs, ev.ParallelTime)
	}
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-12*(1+b)
}

func TestSpeedupNeverExceedsK(t *testing.T) {
	// With equal loads and no communication, speedup == K exactly.
	m := CrayXE6()
	loads := []int{100, 100, 100, 100}
	est := m.Evaluate(loads, nil, 400)
	if !close(est.Speedup, 4) {
		t.Errorf("ideal speedup = %v, want 4", est.Speedup)
	}
}

func TestLatencyDominatesAtHighMessageCounts(t *testing.T) {
	// The paper's key observation: with dense rows, a processor sending
	// O(K) messages kills the speedup even with modest volume.
	m := CrayXE6()
	few := m.Evaluate([]int{1000, 1000}, []distrib.PhaseStats{{MaxSendMsgs: 2, MaxSendVol: 100}}, 2000)
	many := m.Evaluate([]int{1000, 1000}, []distrib.PhaseStats{{MaxSendMsgs: 250, MaxSendVol: 100}}, 2000)
	if many.Speedup >= few.Speedup {
		t.Errorf("latency not penalized: %v >= %v", many.Speedup, few.Speedup)
	}
	if many.CommTime < 100*few.CommTime/2 {
		t.Errorf("250 messages should cost ~125x more than 2")
	}
}

func TestEvaluateDistributionShape(t *testing.T) {
	// s2D must model faster than 1D on a dense-row matrix: same pattern,
	// less volume, better balance.
	a := gen.PowerLaw(gen.PowerLawConfig{
		Rows: 600, Cols: 600, NNZ: 5000, Beta: 0.5, DenseRows: 2, DenseMax: 250, Symmetric: true,
	}, 3)
	const k = 16
	opt := baselines.Options{Seed: 4}
	oneD := baselines.Rowwise1D(a, k, opt)
	m := CrayXE6()
	e1 := m.EvaluateDistribution(oneD)
	if e1.Speedup <= 0 || e1.Speedup > k {
		t.Errorf("1D speedup = %v outside (0,%d]", e1.Speedup, k)
	}
}

func TestZeroWork(t *testing.T) {
	m := CrayXE6()
	est := m.Evaluate(nil, nil, 0)
	if est.Speedup != 0 {
		t.Errorf("zero-work speedup = %v", est.Speedup)
	}
}

// TestEvaluateTransposeEqualsForward pins the duality the transpose
// engines implement: reversing the phases and swapping send/receive
// pressure leaves the α–β estimate unchanged, because each phase is
// charged the max of its send and receive figures.
func TestEvaluateTransposeEqualsForward(t *testing.T) {
	m := CrayXE6()
	loads := []int{900, 1100, 1000, 950}
	phases := []distrib.PhaseStats{
		{MaxSendMsgs: 3, MaxRecvMsgs: 7, MaxSendVol: 120, MaxRecvVol: 40},
		{MaxSendMsgs: 5, MaxRecvMsgs: 2, MaxSendVol: 30, MaxRecvVol: 200},
	}
	for _, nrhs := range []int{1, 8} {
		fwd := m.EvaluateNRHS(loads, phases, 4000, nrhs)
		tr := m.EvaluateTranspose(loads, phases, 4000, nrhs)
		if fwd != tr {
			t.Fatalf("nrhs=%d: transpose estimate %+v != forward %+v", nrhs, tr, fwd)
		}
	}
}
