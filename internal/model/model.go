// Package model estimates parallel SpMV execution time and speedup from a
// distribution's load and communication statistics, using the classic
// α–β–flop machine model. The paper reports measured speedups on a Cray
// XE6 (Gemini 3D torus); we cannot reproduce the testbed, so speedups here
// come from this model fed with the very quantities the partitioners
// control — maximum load, per-phase message counts and volumes. The model
// reproduces the paper's qualitative regimes: bandwidth-bound at small K,
// latency-bound at large K, and catastrophic serialization when one
// processor holds a dense row's worth of work.
package model

import "repro/internal/distrib"

// Machine is an α–β–flop cost model.
type Machine struct {
	// TNonzero is the time for one fused multiply-add on a streamed
	// nonzero (seconds). SpMV is memory-bound, so this is an effective
	// rate, not a peak-flop rate.
	TNonzero float64
	// Alpha is the fixed per-message cost (seconds).
	Alpha float64
	// Beta is the per-word transfer cost (seconds per 8-byte word).
	Beta float64
}

// CrayXE6 returns coefficients tuned to the paper's testbed class: ~250M
// nonzeros/s effective serial SpMV per core, ~2µs message latency on the
// Gemini torus, and ~10ns effective per-word bandwidth cost including
// packing.
func CrayXE6() Machine {
	return Machine{TNonzero: 4e-9, Alpha: 2e-6, Beta: 1e-8}
}

// Estimate holds the modelled timings of one parallel SpMV.
type Estimate struct {
	SerialTime   float64
	ParallelTime float64
	ComputeTime  float64 // max-load compute component
	CommTime     float64 // summed phase communication components
	Speedup      float64
}

// Evaluate models the execution of one SpMV with the given per-part loads
// (nonzeros owned) and per-phase communication statistics, for a matrix
// with nnz total nonzeros.
//
// T_par = maxLoad·TNonzero + Σ_phases (α·maxMsgs + β·maxWords), where the
// per-phase maxima are over processors (send and receive considered
// independently, as both gate progress on a torus NIC).
func (m Machine) Evaluate(loads []int, phases []distrib.PhaseStats, nnz int) Estimate {
	return m.EvaluateNRHS(loads, phases, nnz, 1)
}

// EvaluateDistribution is a convenience wrapper: loads and phases are taken
// from the distribution's own schedule.
func (m Machine) EvaluateDistribution(d *distrib.Distribution) Estimate {
	return m.Evaluate(d.PartLoads(), d.Comm().Phases, d.A.NNZ())
}

// EvaluateTranspose models the transpose product y ← Aᵀx executed on
// the same distribution: the engines reuse the forward plan's packets
// with the phases reversed, so each forward phase's send pressure
// becomes a transpose phase's receive pressure and vice versa. Because
// the per-phase cost already charges the max of send and receive (both
// gate progress on a torus NIC), the transpose estimate equals the
// forward one — the model states the row/column duality the transpose
// engines implement, and the property test pins it.
func (m Machine) EvaluateTranspose(loads []int, phases []distrib.PhaseStats, nnz, nrhs int) Estimate {
	rev := make([]distrib.PhaseStats, len(phases))
	for i, ph := range phases {
		ph.MaxSendMsgs, ph.MaxRecvMsgs = ph.MaxRecvMsgs, ph.MaxSendMsgs
		ph.MaxSendVol, ph.MaxRecvVol = ph.MaxRecvVol, ph.MaxSendVol
		rev[len(phases)-1-i] = ph
	}
	return m.EvaluateNRHS(loads, rev, nnz, nrhs)
}

// EvaluateNRHS models one batched SpMM over nrhs right-hand sides on the
// same schedule: compute and per-word transfer scale by nrhs, while the
// per-message α cost is paid once per packet regardless of width (the
// engines send one nrhs-wide packet per peer per phase). All Estimate
// fields are block totals; divide by nrhs for per-column figures. Speedup
// is scale-free either way. As nrhs grows the α term's share of T_par
// shrinks like 1/nrhs, which is exactly why latency-bounded methods lose
// their edge on batched workloads.
func (m Machine) EvaluateNRHS(loads []int, phases []distrib.PhaseStats, nnz, nrhs int) Estimate {
	maxLoad := 0
	for _, w := range loads {
		if w > maxLoad {
			maxLoad = w
		}
	}
	est := Estimate{
		SerialTime:  float64(nnz) * m.TNonzero * float64(nrhs),
		ComputeTime: float64(maxLoad) * m.TNonzero * float64(nrhs),
	}
	for _, ph := range phases {
		msgs := ph.MaxSendMsgs
		if ph.MaxRecvMsgs > msgs {
			msgs = ph.MaxRecvMsgs
		}
		words := ph.MaxSendVol
		if ph.MaxRecvVol > words {
			words = ph.MaxRecvVol
		}
		est.CommTime += m.Alpha*float64(msgs) + m.Beta*float64(words)*float64(nrhs)
	}
	est.ParallelTime = est.ComputeTime + est.CommTime
	if est.ParallelTime > 0 {
		est.Speedup = est.SerialTime / est.ParallelTime
	}
	return est
}
