package model

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/distrib"
)

// TestMonotonicity: more load, more messages, or more volume can never
// make the modelled time smaller.
func TestMonotonicity(t *testing.T) {
	m := CrayXE6()
	base := m.Evaluate([]int{500, 400}, []distrib.PhaseStats{{MaxSendMsgs: 5, MaxSendVol: 100}}, 900)
	worseLoad := m.Evaluate([]int{900, 400}, []distrib.PhaseStats{{MaxSendMsgs: 5, MaxSendVol: 100}}, 900)
	worseMsgs := m.Evaluate([]int{500, 400}, []distrib.PhaseStats{{MaxSendMsgs: 50, MaxSendVol: 100}}, 900)
	worseVol := m.Evaluate([]int{500, 400}, []distrib.PhaseStats{{MaxSendMsgs: 5, MaxSendVol: 10000}}, 900)
	if worseLoad.ParallelTime <= base.ParallelTime {
		t.Error("extra load did not increase time")
	}
	if worseMsgs.ParallelTime <= base.ParallelTime {
		t.Error("extra messages did not increase time")
	}
	if worseVol.ParallelTime <= base.ParallelTime {
		t.Error("extra volume did not increase time")
	}
}

func TestPropertySpeedupBounds(t *testing.T) {
	m := CrayXE6()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(64)
		loads := make([]int, k)
		nnz := 0
		for i := range loads {
			loads[i] = r.Intn(10000)
			nnz += loads[i]
		}
		if nnz == 0 {
			return true
		}
		phases := []distrib.PhaseStats{{
			MaxSendMsgs: r.Intn(100), MaxRecvMsgs: r.Intn(100),
			MaxSendVol: r.Intn(5000), MaxRecvVol: r.Intn(5000),
		}}
		est := m.Evaluate(loads, phases, nnz)
		// Speedup can never exceed nnz / maxLoad (perfect comm).
		maxLoad := 0
		for _, w := range loads {
			if w > maxLoad {
				maxLoad = w
			}
		}
		limit := float64(nnz)/float64(maxLoad) + 1e-9
		return est.Speedup > 0 && est.Speedup <= limit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiPhaseAdds(t *testing.T) {
	m := Machine{TNonzero: 1e-9, Alpha: 1e-6, Beta: 1e-8}
	one := m.Evaluate([]int{100}, []distrib.PhaseStats{{MaxSendMsgs: 3, MaxSendVol: 10}}, 100)
	two := m.Evaluate([]int{100}, []distrib.PhaseStats{
		{MaxSendMsgs: 3, MaxSendVol: 10},
		{MaxSendMsgs: 3, MaxSendVol: 10},
	}, 100)
	if diff := two.CommTime - 2*one.CommTime; diff > 1e-15 || diff < -1e-15 {
		t.Errorf("two phases != 2x one phase: %v vs %v", two.CommTime, one.CommTime)
	}
}
