package obs

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// newFixtureRegistry builds a deterministic registry exercising every
// family type plus the escaping edge cases the exposition format has.
func newFixtureRegistry() *Registry {
	r := NewRegistry()
	c := r.Counter("demo_requests_total", "Requests served.", "tenant", "direction")
	c.With("acme", "forward").Add(3)
	c.With("acme", "transpose").Inc()
	c.With(`we"ird\ten`+"\nant", "forward").Inc() // label escaping

	g := r.Gauge("demo_queue_depth", "Live queue depth.\nSecond help line.", "engine")
	g.With("A/s2d/K=4").Set(7)
	g.With("B/1d/K=2").Set(0.5)

	h := r.Histogram("demo_stage_seconds", "Stage latency.", []float64{0.001, 0.01, 0.1}, "stage")
	hd := h.With("decode")
	for _, v := range []float64{0.0005, 0.002, 0.002, 0.05, 2} {
		hd.Observe(v)
	}
	h.With("flush").Observe(0.01) // exactly on a bound: goes in le=0.01
	return r
}

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var buf bytes.Buffer
	pw := NewPromWriter(&buf)
	r.WriteTo(pw)
	if err := pw.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return buf.String()
}

// TestPromGolden pins the full text exposition byte for byte: family
// ordering, HELP/TYPE headers, label and help escaping, cumulative
// buckets with +Inf, _sum/_count.
func TestPromGolden(t *testing.T) {
	got := render(t, newFixtureRegistry())
	golden := filepath.Join("testdata", "registry.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (rerun with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestPromLintAcceptsFixture feeds the fixture output through the
// linter: the renderer and linter agree on the format.
func TestPromLintAcceptsFixture(t *testing.T) {
	text := render(t, newFixtureRegistry())
	series, err := LintPrometheus(text)
	if err != nil {
		t.Fatalf("lint rejected rendered output: %v", err)
	}
	if v := series[`demo_requests_total{direction="forward",tenant="acme"}`]; v != 3 {
		t.Errorf("parsed counter = %v, want 3", v)
	}
	// Bucket cumulativity: decode saw 1 <=0.001, 3 <=0.01, 4 <=0.1, 5 total.
	for le, want := range map[string]float64{"0.001": 1, "0.01": 3, "0.1": 4, "+Inf": 5} {
		id := `demo_stage_seconds_bucket{le="` + le + `",stage="decode"}`
		if v := series[id]; v != want {
			t.Errorf("%s = %v, want %v", id, v, want)
		}
	}
	if v := series[`demo_stage_seconds_count{stage="decode"}`]; v != 5 {
		t.Errorf("decode _count = %v, want 5", v)
	}
}

func TestLintRejectsDuplicates(t *testing.T) {
	_, err := LintPrometheus("a_total 1\na_total 2\n")
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("want duplicate-series error, got %v", err)
	}
}

func TestLintRejectsNonCumulativeBuckets(t *testing.T) {
	text := "h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\n"
	_, err := LintPrometheus(text)
	if err == nil || !strings.Contains(err.Error(), "cumulative") {
		t.Fatalf("want cumulativity error, got %v", err)
	}
}

func TestLintRejectsInfCountMismatch(t *testing.T) {
	text := "h_bucket{le=\"+Inf\"} 5\nh_count 6\n"
	_, err := LintPrometheus(text)
	if err == nil || !strings.Contains(err.Error(), "_count") {
		t.Fatalf("want +Inf/_count mismatch error, got %v", err)
	}
}

func TestLintMonotonic(t *testing.T) {
	prev := map[string]float64{"a_total{}": 5, "g{}": 9}
	cur := map[string]float64{"a_total{}": 7, "g{}": 1}
	if err := LintMonotonic(prev, cur); err != nil {
		t.Fatalf("gauge decrease must not fail monotonicity: %v", err)
	}
	cur["a_total{}"] = 4
	if err := LintMonotonic(prev, cur); err == nil {
		t.Fatal("counter decrease must fail monotonicity")
	}
}

func TestCounterPanicsOnDecrease(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) must panic")
		}
	}()
	NewRegistry().Counter("x_total", "").With().Add(-1)
}

func TestRegistryReRegisterReturnsSameFamily(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", "l")
	b := r.Counter("x_total", "", "l")
	a.With("v").Add(2)
	b.With("v").Inc()
	if got := a.With("v").Value(); got != 3 {
		t.Fatalf("re-registered counter split state: %v", got)
	}
}

func TestHistogramObserveBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "", []float64{1, 2}).With()
	h.Observe(1)           // le="1" (bounds are inclusive)
	h.Observe(math.Inf(1)) // +Inf bucket
	h.Observe(-5)          // below first bound still lands in le="1"
	text := render(t, &Registry{fams: map[string]*family{"h_seconds": h.f}})
	series, err := LintPrometheus(text)
	if err != nil {
		t.Fatal(err)
	}
	if v := series[`h_seconds_bucket{le="1"}`]; v != 2 {
		t.Errorf("le=1 bucket = %v, want 2", v)
	}
	if v := series[`h_seconds_bucket{le="+Inf"}`]; v != 3 {
		t.Errorf("+Inf bucket = %v, want 3", v)
	}
}
