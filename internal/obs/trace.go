package obs

import (
	"fmt"
	"math/rand/v2"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one stage of a request's span tree. Ms is the stage's wall
// time; top-level spans are contiguous (their sum equals the trace
// total exactly), nested spans attribute a parent's interval in finer
// grain and may not sum to it (e.g. engine phases sampled from one
// worker).
type Span struct {
	Stage string         `json:"stage"`
	Ms    float64        `json:"ms"`
	Attrs map[string]any `json:"attrs,omitempty"`
	Spans []Span         `json:"spans,omitempty"`
}

// Trace is one finished request.
type Trace struct {
	ID       string    `json:"trace_id"`
	Endpoint string    `json:"endpoint"`
	Start    time.Time `json:"start"`
	TotalMs  float64   `json:"total_ms"`
	Status   int       `json:"status"`
	Tenant   string    `json:"tenant,omitempty"`
	Engine   string    `json:"engine,omitempty"`
	Spans    []Span    `json:"stages,omitempty"`
}

// TraceBuffer keeps a bounded window of finished traces: the most
// recent N plus the slowest M seen since start. Both are snapshots for
// /debug/traces; nothing here is on the hot path except Add.
type TraceBuffer struct {
	mu      sync.Mutex
	recent  []*Trace // ring
	next    int
	n       int
	slowest []*Trace // ascending by TotalMs, len <= slowCap
	slowCap int
	seen    uint64
}

// NewTraceBuffer sizes the buffer (recentN most recent, slowN slowest).
func NewTraceBuffer(recentN, slowN int) *TraceBuffer {
	if recentN < 1 {
		recentN = 1
	}
	if slowN < 1 {
		slowN = 1
	}
	return &TraceBuffer{recent: make([]*Trace, recentN), slowCap: slowN}
}

// Add records a finished trace.
func (b *TraceBuffer) Add(t *Trace) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.seen++
	b.recent[b.next] = t
	b.next = (b.next + 1) % len(b.recent)
	if b.n < len(b.recent) {
		b.n++
	}
	i := sort.Search(len(b.slowest), func(i int) bool { return b.slowest[i].TotalMs >= t.TotalMs })
	if len(b.slowest) < b.slowCap {
		b.slowest = append(b.slowest, nil)
		copy(b.slowest[i+1:], b.slowest[i:])
		b.slowest[i] = t
	} else if i > 0 {
		copy(b.slowest[:i-1], b.slowest[1:i])
		b.slowest[i-1] = t
	}
}

// Snapshot returns the recent traces (newest first), the slowest
// traces (slowest first), and the total traces seen.
func (b *TraceBuffer) Snapshot() (recent, slowest []*Trace, seen uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	recent = make([]*Trace, 0, b.n)
	for i := 0; i < b.n; i++ {
		recent = append(recent, b.recent[(b.next-1-i+len(b.recent)*2)%len(b.recent)])
	}
	slowest = make([]*Trace, len(b.slowest))
	for i, t := range b.slowest {
		slowest[len(b.slowest)-1-i] = t
	}
	return recent, slowest, b.seen
}

// NewTraceID generates a 32-hex-digit trace ID (the W3C traceparent
// trace-id width). math/rand/v2's global generator is goroutine-safe
// and plenty for correlation IDs — these are not secrets.
func NewTraceID() string {
	return fmt.Sprintf("%016x%016x", rand.Uint64(), rand.Uint64())
}

// RequestTraceID resolves the trace ID for an inbound request: a W3C
// traceparent's trace-id field wins, then X-Request-Id (sanitized),
// else a fresh ID.
func RequestTraceID(h http.Header) string {
	if tp := h.Get("traceparent"); tp != "" {
		// version "-" trace-id "-" parent-id "-" flags
		parts := strings.Split(tp, "-")
		if len(parts) >= 3 && len(parts[1]) == 32 && isHex(parts[1]) && parts[1] != strings.Repeat("0", 32) {
			return strings.ToLower(parts[1])
		}
	}
	if rid := sanitizeID(h.Get("X-Request-Id")); rid != "" {
		return rid
	}
	return NewTraceID()
}

// sanitizeID keeps a client-supplied request ID only when it is safe to
// echo into headers and logs: ASCII letters, digits, '-', '_', '.', at
// a bounded length.
func sanitizeID(s string) string {
	if s == "" || len(s) > 128 {
		return ""
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return ""
		}
	}
	return s
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F') {
			return false
		}
	}
	return true
}
