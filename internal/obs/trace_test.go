package obs

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
)

func TestRequestTraceIDPrecedence(t *testing.T) {
	h := http.Header{}
	h.Set("traceparent", "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01")
	h.Set("X-Request-Id", "client-id-1")
	if got := RequestTraceID(h); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("traceparent should win and lowercase: %q", got)
	}

	h.Del("traceparent")
	if got := RequestTraceID(h); got != "client-id-1" {
		t.Errorf("X-Request-Id fallback: %q", got)
	}

	h.Set("X-Request-Id", "bad id with spaces\n")
	got := RequestTraceID(h)
	if len(got) != 32 || !isHex(got) {
		t.Errorf("unsafe request id must be replaced by a generated one: %q", got)
	}

	// All-zero traceparent trace-id is invalid per W3C; must generate.
	h = http.Header{}
	h.Set("traceparent", "00-"+strings.Repeat("0", 32)+"-00f067aa0ba902b7-01")
	got = RequestTraceID(h)
	if got == strings.Repeat("0", 32) {
		t.Error("all-zero trace id must not be accepted")
	}
}

func TestNewTraceIDShape(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if len(id) != 32 || !isHex(id) {
			t.Fatalf("bad id %q", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestTraceBufferRecentAndSlowest(t *testing.T) {
	b := NewTraceBuffer(4, 3)
	for i := 1; i <= 10; i++ {
		b.Add(&Trace{ID: fmt.Sprintf("t%d", i), TotalMs: float64(i % 7)})
	}
	recent, slowest, seen := b.Snapshot()
	if seen != 10 {
		t.Errorf("seen = %d", seen)
	}
	if len(recent) != 4 || recent[0].ID != "t10" || recent[3].ID != "t7" {
		t.Errorf("recent window wrong: %+v", ids(recent))
	}
	// Totals seen: 1..6,0,1,2,3 — slowest three are 6,5,4 in that order.
	if len(slowest) != 3 || slowest[0].TotalMs != 6 || slowest[1].TotalMs != 5 || slowest[2].TotalMs != 4 {
		t.Errorf("slowest wrong: %+v", ids(slowest))
	}
}

func ids(ts []*Trace) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = fmt.Sprintf("%s(%.0f)", t.ID, t.TotalMs)
	}
	return out
}
