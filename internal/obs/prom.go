package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WantsPrometheus decides /metrics content negotiation: the Prometheus
// text format is served only when the client asks for it explicitly
// (text/plain, or an OpenMetrics type, as scrapers send). An absent
// Accept header, */*, or application/json keeps the legacy JSON
// snapshot, so existing consumers keep working unchanged.
func WantsPrometheus(accept string) bool {
	if strings.Contains(accept, "application/json") {
		return false
	}
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}

// PromWriter renders metric families in the Prometheus text exposition
// format. All escaping flows through here; callers emit a Family header
// then its Samples. Errors latch: the first write failure sticks and
// later calls are no-ops.
type PromWriter struct {
	w    *bufio.Writer
	name string
	err  error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: bufio.NewWriter(w)}
}

// Family emits the # HELP / # TYPE header and sets the current family
// name for subsequent Sample calls.
func (p *PromWriter) Family(name string, typ MetricType, help string) {
	p.name = name
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// Sample emits one series of the current family. kv alternates label
// key, label value; a "__name__" key suffixes the metric name instead
// (used for histogram _bucket/_sum/_count series).
func (p *PromWriter) Sample(value float64, kv ...string) {
	if p.err != nil {
		return
	}
	if len(kv)%2 != 0 {
		p.err = fmt.Errorf("obs: odd label key/value list for %s", p.name)
		return
	}
	name := p.name
	var sb strings.Builder
	for i := 0; i < len(kv); i += 2 {
		if kv[i] == "__name__" {
			name += kv[i+1]
			continue
		}
		if sb.Len() > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(kv[i])
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(kv[i+1]))
		sb.WriteByte('"')
	}
	if sb.Len() > 0 {
		_, p.err = fmt.Fprintf(p.w, "%s{%s} %s\n", name, sb.String(), formatFloat(value))
	} else {
		_, p.err = fmt.Fprintf(p.w, "%s %s\n", name, formatFloat(value))
	}
}

// Flush drains the buffer and returns the first error seen.
func (p *PromWriter) Flush() error {
	if p.err == nil {
		p.err = p.w.Flush()
	}
	return p.err
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WriteTo renders every family in the registry, names sorted, children
// sorted by label values — deterministic output for golden tests and
// diff-friendly scrapes. Histograms render cumulative _bucket series
// (le ascending, +Inf last) plus _sum and _count.
func (r *Registry) WriteTo(p *PromWriter) {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	for _, f := range fams {
		f.mu.Lock()
		kids := make([]*child, 0, len(f.children))
		for _, c := range f.children {
			kids = append(kids, c)
		}
		f.mu.Unlock()
		if len(kids) == 0 {
			continue
		}
		sort.Slice(kids, func(i, j int) bool {
			return strings.Join(kids[i].labelValues, "\x1f") < strings.Join(kids[j].labelValues, "\x1f")
		})
		p.Family(f.name, f.typ, f.help)
		for _, c := range kids {
			base := make([]string, 0, 2*len(f.labels)+2)
			for i, k := range f.labels {
				base = append(base, k, c.labelValues[i])
			}
			if f.typ != TypeHistogram {
				p.Sample(math.Float64frombits(c.bits.Load()), base...)
				continue
			}
			var cum uint64
			for i, bound := range f.buckets {
				cum += c.counts[i].Load()
				p.Sample(float64(cum), append(append([]string{"__name__", "_bucket"}, base...), "le", formatFloat(bound))...)
			}
			cum += c.counts[len(f.buckets)].Load()
			p.Sample(float64(cum), append(append([]string{"__name__", "_bucket"}, base...), "le", "+Inf")...)
			p.Sample(math.Float64frombits(c.sumBits.Load()), append([]string{"__name__", "_sum"}, base...)...)
			p.Sample(float64(cum), append([]string{"__name__", "_count"}, base...)...)
		}
	}
}

// LintPrometheus parses text exposition output and checks the invariants
// a scraper depends on: every sample line parses, no series (name plus
// label set) appears twice, and histogram _bucket series are cumulative
// in ascending le order with a +Inf bucket matching _count. It returns
// the parsed series values keyed by the literal series string, for
// cross-scrape monotonicity checks (see LintMonotonic).
func LintPrometheus(text string) (map[string]float64, error) {
	series := make(map[string]float64)
	type bucketRun struct {
		prev    float64
		prevLe  float64
		sawInf  bool
		infVal  float64
		groupID string
	}
	buckets := make(map[string]*bucketRun) // keyed by name + labels sans le
	counts := make(map[string]float64)     // _count series by group key

	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		id, value, err := parsePromLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		if _, dup := series[id.series]; dup {
			return nil, fmt.Errorf("line %d: duplicate series %s", ln+1, id.series)
		}
		series[id.series] = value

		if strings.HasSuffix(id.name, "_count") {
			counts[strings.TrimSuffix(id.name, "_count")+"|"+id.labelsNoLe] = value
		}
		if !strings.HasSuffix(id.name, "_bucket") || id.le == "" {
			continue
		}
		gk := strings.TrimSuffix(id.name, "_bucket") + "|" + id.labelsNoLe
		run := buckets[gk]
		if run == nil {
			run = &bucketRun{prev: -1, prevLe: math.Inf(-1), groupID: gk}
			buckets[gk] = run
		}
		le := math.Inf(1)
		if id.le != "+Inf" {
			le, err = strconv.ParseFloat(id.le, 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad le %q", ln+1, id.le)
			}
		}
		if le <= run.prevLe {
			return nil, fmt.Errorf("line %d: histogram %s buckets out of order (le=%s)", ln+1, gk, id.le)
		}
		if value < run.prev {
			return nil, fmt.Errorf("line %d: histogram %s buckets not cumulative (%g < %g)", ln+1, gk, value, run.prev)
		}
		run.prev, run.prevLe = value, le
		if math.IsInf(le, 1) {
			run.sawInf, run.infVal = true, value
		}
	}
	// Sorted so the first error reported is the same on every run.
	groups := make([]string, 0, len(buckets))
	for gk := range buckets {
		groups = append(groups, gk)
	}
	sort.Strings(groups)
	for _, gk := range groups {
		run := buckets[gk]
		if !run.sawInf {
			return nil, fmt.Errorf("histogram %s has no +Inf bucket", gk)
		}
		if cnt, ok := counts[gk]; ok && cnt != run.infVal {
			return nil, fmt.Errorf("histogram %s +Inf bucket %g != _count %g", gk, run.infVal, cnt)
		}
	}
	return series, nil
}

// LintMonotonic checks that every *_total (and histogram _bucket/_count)
// series present in both scrapes did not decrease — the counter
// contract a Prometheus server assumes between scrapes.
func LintMonotonic(prev, cur map[string]float64) error {
	// Sorted so the first error reported is the same on every run.
	ids := make([]string, 0, len(prev))
	for id := range prev {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		was := prev[id]
		name := id
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		if !strings.HasSuffix(name, "_total") && !strings.HasSuffix(name, "_count") &&
			!strings.HasSuffix(name, "_bucket") && !strings.HasSuffix(name, "_sum") {
			continue
		}
		if now, ok := cur[id]; ok && now < was {
			return fmt.Errorf("counter %s decreased across scrapes: %g -> %g", id, was, now)
		}
	}
	return nil
}

// promID is one parsed sample's identity.
type promID struct {
	series     string // canonical name{sorted labels}
	name       string
	le         string
	labelsNoLe string // sorted labels with le removed
}

// parsePromLine parses `name{k="v",...} value` (labels optional).
func parsePromLine(line string) (promID, float64, error) {
	var id promID
	rest := line
	brace := strings.IndexByte(rest, '{')
	var labels []string
	if brace >= 0 {
		id.name = rest[:brace]
		end := strings.LastIndexByte(rest, '}')
		if end < brace {
			return id, 0, fmt.Errorf("unbalanced braces in %q", line)
		}
		var err error
		labels, err = parsePromLabels(rest[brace+1 : end])
		if err != nil {
			return id, 0, fmt.Errorf("%w in %q", err, line)
		}
		rest = rest[end+1:]
	} else {
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return id, 0, fmt.Errorf("no value in %q", line)
		}
		id.name = rest[:sp]
		rest = rest[sp:]
	}
	if id.name == "" {
		return id, 0, fmt.Errorf("empty metric name in %q", line)
	}
	val, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return id, 0, fmt.Errorf("bad value in %q: %w", line, err)
	}
	sort.Strings(labels)
	var noLe []string
	for _, l := range labels {
		if strings.HasPrefix(l, `le="`) {
			id.le = strings.TrimSuffix(strings.TrimPrefix(l, `le="`), `"`)
			continue
		}
		noLe = append(noLe, l)
	}
	id.labelsNoLe = strings.Join(noLe, ",")
	id.series = id.name + "{" + strings.Join(labels, ",") + "}"
	return id, val, nil
}

// parsePromLabels splits `k="v",k2="v2"` honoring escapes.
func parsePromLabels(s string) ([]string, error) {
	var out []string
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label without '='")
		}
		key := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("label %s value not quoted", key)
		}
		s = s[1:]
		var val strings.Builder
		i := 0
		for ; i < len(s); i++ {
			if s[i] == '\\' && i+1 < len(s) {
				switch s[i+1] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(s[i+1])
				}
				i++
				continue
			}
			if s[i] == '"' {
				break
			}
			val.WriteByte(s[i])
		}
		if i >= len(s) {
			return nil, fmt.Errorf("unterminated label value for %s", key)
		}
		out = append(out, key+`="`+escapeLabel(val.String())+`"`)
		s = s[i+1:]
		s = strings.TrimPrefix(strings.TrimSpace(s), ",")
		s = strings.TrimSpace(s)
	}
	return out, nil
}
