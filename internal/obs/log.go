package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
)

// Nop is a logger that discards everything; used wherever a nil check
// would otherwise litter the call sites. (slog.DiscardHandler is Go
// 1.24+; this repo still builds on 1.23.)
var Nop = slog.New(nopHandler{})

type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

// ParseLevel maps the -loglevel flag onto a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (debug, info, warn, error)", s)
}

// NewLogger builds a structured logger writing to w. format is "text"
// or "json" (the -logformat flag).
func NewLogger(w io.Writer, level slog.Level, format string) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	case "text", "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (text, json)", format)
}

// EventCounter is a slog.Handler middleware that counts records by
// their "event" attribute value while forwarding to the wrapped
// handler. chaos-smoke uses it to assert that each quarantine/breaker
// transition emits exactly one structured event.
type EventCounter struct {
	inner slog.Handler
	tally *eventTally // shared across WithAttrs/WithGroup clones
}

type eventTally struct {
	mu     sync.Mutex
	counts map[string]int
}

// NewEventCounter wraps inner (use obs.Nop.Handler() to only count).
func NewEventCounter(inner slog.Handler) *EventCounter {
	return &EventCounter{inner: inner, tally: &eventTally{counts: make(map[string]int)}}
}

// Enabled always returns true so events are counted even below the
// wrapped handler's level; Handle forwards only what inner accepts.
func (h *EventCounter) Enabled(context.Context, slog.Level) bool { return true }

func (h *EventCounter) Handle(ctx context.Context, r slog.Record) error {
	r.Attrs(func(a slog.Attr) bool {
		if a.Key != "event" {
			return true
		}
		h.tally.mu.Lock()
		h.tally.counts[a.Value.String()]++
		h.tally.mu.Unlock()
		return false
	})
	if h.inner.Enabled(ctx, r.Level) {
		return h.inner.Handle(ctx, r)
	}
	return nil
}

// WithAttrs and WithGroup clone the forwarding handler but share the
// tally; the serving layer always puts "event" on the record itself.
func (h *EventCounter) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &EventCounter{inner: h.inner.WithAttrs(attrs), tally: h.tally}
}

func (h *EventCounter) WithGroup(name string) slog.Handler {
	return &EventCounter{inner: h.inner.WithGroup(name), tally: h.tally}
}

// Count reports how many records carried event=name.
func (h *EventCounter) Count(name string) int {
	h.tally.mu.Lock()
	defer h.tally.mu.Unlock()
	return h.tally.counts[name]
}
