// Package obs is the serving stack's dependency-free observability
// layer: a small metrics registry with Prometheus text exposition
// (registry.go, prom.go), request traces with a bounded in-memory
// buffer (trace.go), and log/slog helpers (log.go).
//
// The registry deliberately implements only what the serving path
// needs — counters, gauges, and fixed-bucket histograms with label
// vectors — not the full Prometheus client data model. Children are
// cached per label-value tuple so the hot path (a histogram Observe
// per request per stage) costs one atomic add after the first lookup.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricType is the exposition TYPE of a family.
type MetricType string

const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// Registry holds metric families and renders them as Prometheus text.
// The zero value is not usable; call NewRegistry.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// family is one named metric with a fixed label schema.
type family struct {
	name    string
	help    string
	typ     MetricType
	labels  []string
	buckets []float64 // histogram upper bounds, ascending; nil otherwise

	mu       sync.Mutex
	children map[string]*child // keyed by joined label values
}

// child is one labelled series (or histogram series group).
type child struct {
	labelValues []string

	// counter/gauge value. Counters store integral-friendly float64
	// via atomic bits; gauges the same.
	bits atomic.Uint64

	// histogram state: per-bucket (non-cumulative) counts, +Inf last.
	counts  []atomic.Uint64
	sumBits atomic.Uint64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

func (r *Registry) family(name, help string, typ MetricType, buckets []float64, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different schema", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		children: make(map[string]*child),
	}
	r.fams[name] = f
	return f
}

// Counter registers (or returns) a counter family. Values only go up.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.family(name, help, TypeCounter, nil, labels)}
}

// Gauge registers (or returns) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, TypeGauge, nil, labels)}
}

// Histogram registers (or returns) a histogram family with fixed
// upper-bound buckets (ascending, in the observed unit; +Inf implied).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(buckets) == 0 {
		panic("obs: histogram needs at least one bucket")
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets are not ascending", name))
		}
	}
	return &HistogramVec{r.family(name, help, TypeHistogram, buckets, labels)}
}

// childFor returns the cached series for the label-value tuple.
func (f *family) childFor(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x1f")
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = &child{labelValues: append([]string(nil), values...)}
		if f.typ == TypeHistogram {
			c.counts = make([]atomic.Uint64, len(f.buckets)+1)
		}
		f.children[key] = c
	}
	return c
}

// CounterVec is a counter family; With resolves one labelled counter.
type CounterVec struct{ f *family }

// With returns the counter for the label values (cached).
func (v *CounterVec) With(values ...string) *Counter {
	return &Counter{v.f.childFor(values)}
}

// Counter is one monotonically increasing series.
type Counter struct{ c *child }

// Add increments the counter by d (must be >= 0).
func (c *Counter) Add(d float64) {
	if d < 0 {
		panic("obs: counter decrease")
	}
	addFloat(&c.c.bits, d)
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.c.bits.Load()) }

// GaugeVec is a gauge family; With resolves one labelled gauge.
type GaugeVec struct{ f *family }

// With returns the gauge for the label values (cached).
func (v *GaugeVec) With(values ...string) *Gauge {
	return &Gauge{v.f.childFor(values)}
}

// Gauge is one series that can go up and down.
type Gauge struct{ c *child }

// Set stores v.
func (g *Gauge) Set(v float64) { g.c.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) { addFloat(&g.c.bits, d) }

// Value reads the gauge.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.c.bits.Load()) }

// HistogramVec is a histogram family; With resolves one labelled
// histogram.
type HistogramVec struct{ f *family }

// With returns the histogram for the label values (cached). Hot paths
// should resolve once and hold the *Histogram.
func (v *HistogramVec) With(values ...string) *Histogram {
	return &Histogram{f: v.f, c: v.f.childFor(values)}
}

// Histogram is one labelled fixed-bucket histogram series group.
type Histogram struct {
	f *family
	c *child
}

// Observe records v: one bucket increment plus a sum update.
func (h *Histogram) Observe(v float64) {
	b := sort.SearchFloat64s(h.f.buckets, v) // first bucket with bound >= v
	h.c.counts[b].Add(1)
	addFloat(&h.c.sumBits, v)
}

// addFloat is an atomic float64 += d on a Uint64 bit store.
func addFloat(bits *atomic.Uint64, d float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}
