package harness

import (
	"fmt"
	"io"

	"repro/internal/distrib"
	"repro/internal/sparse"
)

// Figure1Example reconstructs the paper's Figure 1: a 10×13 sparse matrix
// with a 3-way s2D partition exhibiting exactly the behaviours the caption
// documents (1-indexed in the paper, 0-indexed here):
//
//   - a_{2,5} and a_{3,5} are assigned to their row part P1, so P1 needs
//     x_5 from P2;
//   - a_{2,6} and a_{2,7} are assigned to their column part P2, which
//     precomputes ȳ_2 = a_{2,6}x_6 + a_{2,7}x_7; P2 therefore sends the
//     single packet [x_5, ȳ_2] to P1;
//   - a_{5,1} and a_{5,3} are assigned to their column part P1, so P1
//     sends ȳ_5 to P2;
//   - in block A_{2,3}, two columns are needed by P2-owned nonzeros and
//     one row is precomputed by P3, making λ_{3→2} = n̂(A^(2)_{2,3}) +
//     m̂(A^(3)_{2,3}) = 2 + 1 = 3.
//
// Vector partition: rows 1–3 → P1, rows 4–7 → P2, rows 8–10 → P3; columns
// 1–4 → P1, columns 5–8 → P2, columns 9–13 → P3.
func Figure1Example() *distrib.Distribution {
	const k = 3
	// 1-indexed (row, col, owner) triples; owner 1..3.
	entries := []struct{ i, j, owner int }{
		// Diagonal blocks (local, owner = both sides).
		{1, 1, 1}, {1, 2, 1}, {2, 2, 1}, {3, 3, 1}, {3, 4, 1}, {2, 1, 1},
		{4, 5, 2}, {5, 6, 2}, {6, 6, 2}, {6, 7, 2}, {7, 8, 2}, {4, 6, 2},
		{8, 9, 3}, {9, 10, 3}, {10, 11, 3}, {8, 12, 3}, {9, 13, 3}, {10, 13, 3},
		// Caption behaviours.
		{2, 5, 1}, {3, 5, 1}, // x_5 needed by P1 (row side)
		{2, 6, 2}, {2, 7, 2}, // ȳ_2 precomputed by P2 (column side)
		{5, 1, 1}, {5, 3, 1}, // ȳ_5 precomputed by P1 for P2
		// Block A_{2,3} (rows 4..7, columns 9..13): λ_{3→2} = 3.
		{4, 9, 2}, {5, 9, 2}, {4, 10, 2}, // x_9, x_10 needed by P2
		{6, 11, 3}, {6, 12, 3}, // ȳ_6 precomputed by P3
	}
	c := sparse.NewCOO(10, 13)
	owners := make([]int, 0, len(entries))
	for _, e := range entries {
		c.Add(e.i-1, e.j-1, 1)
	}
	a := c.ToCSR()
	// Map owners back through CSR canonical order.
	ownerAt := map[[2]int]int{}
	for _, e := range entries {
		ownerAt[[2]int{e.i - 1, e.j - 1}] = e.owner - 1
	}
	p := 0
	for i := 0; i < a.Rows; i++ {
		for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
			owners = append(owners, ownerAt[[2]int{i, a.ColIdx[q]}])
			p++
		}
	}
	xpart := make([]int, 13)
	for j := 0; j < 13; j++ {
		switch {
		case j < 4:
			xpart[j] = 0
		case j < 8:
			xpart[j] = 1
		default:
			xpart[j] = 2
		}
	}
	ypart := make([]int, 10)
	for i := 0; i < 10; i++ {
		switch {
		case i < 3:
			ypart[i] = 0
		case i < 7:
			ypart[i] = 1
		default:
			ypart[i] = 2
		}
	}
	return &distrib.Distribution{A: a, K: k, Owner: owners, XPart: xpart, YPart: ypart, Fused: true}
}

// Figure1 renders the example matrix with per-nonzero owners and prints
// the caption's quantities, including the pairwise volume λ_{3→2}.
func Figure1(w io.Writer) {
	d := Figure1Example()
	a := d.A
	fprintf(w, "Figure 1: 3-way s2D partition of a 10x13 sparse matrix\n")
	fprintf(w, "(cell digit = owning processor of that nonzero)\n\n     ")
	for j := 0; j < a.Cols; j++ {
		fprintf(w, "%3d", j+1)
	}
	fprintf(w, "\n")
	p := 0
	for i := 0; i < a.Rows; i++ {
		fprintf(w, "%3d  ", i+1)
		rowCells := make([]string, a.Cols)
		for j := range rowCells {
			rowCells[j] = "  ."
		}
		for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
			rowCells[a.ColIdx[q]] = fmt.Sprintf("  %d", d.Owner[p]+1)
			p++
		}
		for _, cell := range rowCells {
			fprintf(w, "%s", cell)
		}
		fprintf(w, "\n")
	}
	fprintf(w, "\nx partition: cols 1-4 -> P1, 5-8 -> P2, 9-13 -> P3\n")
	fprintf(w, "y partition: rows 1-3 -> P1, 4-7 -> P2, 8-10 -> P3\n\n")

	expand, fold := d.ExpandFold()
	lambda := PairVolume(d, expand, fold, 2, 1)
	fprintf(w, "lambda(3->2) = %d   (paper: 3, from n̂=2 x entries + m̂=1 partial)\n", lambda)
	fprintf(w, "P2 -> P1 packet combines x_5 with ȳ_2 (volume %d)\n",
		PairVolume(d, expand, fold, 1, 0))
	cs := d.Comm()
	fprintf(w, "total fused volume = %d words in %d messages\n\n", cs.TotalVolume, cs.TotalMsgs)
}

// PairVolume returns the fused-packet volume sent from part `from` to part
// `to` given the expand and fold accumulators of d.
func PairVolume(d *distrib.Distribution, expand, fold *distrib.MsgAccum, from, to int) int {
	key := int64(from)*int64(d.K) + int64(to)
	return expand.Vol[key] + fold.Vol[key]
}
