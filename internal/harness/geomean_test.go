package harness

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestGeomeanAccumulator(t *testing.T) {
	g := newGeomean()
	g.add(2)
	g.add(8)
	if v := g.value(); math.Abs(v-4) > 1e-12 {
		t.Errorf("geomean(2,8) = %v, want 4", v)
	}
	g2 := newGeomean()
	g2.add(0)  // skipped
	g2.add(-3) // skipped
	if g2.value() != 0 {
		t.Errorf("empty geomean = %v", g2.value())
	}
}

func TestTablesPrintGeomeanRows(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyCfg()
	cfg.Ks = []int{4}
	Table2(&buf, cfg)
	out := buf.String()
	if !strings.Contains(out, "geomean") {
		t.Error("Table II missing geomean row")
	}
	// One geomean row per K value.
	if strings.Count(out, "geomean") != 1 {
		t.Errorf("geomean rows = %d, want 1", strings.Count(out, "geomean"))
	}
}

func TestFmtLI(t *testing.T) {
	if got := fmtLI(0.031); got != "3.1%" {
		t.Errorf("fmtLI(0.031) = %q", got)
	}
	if got := fmtLI(2.5); got != "2.5*" {
		t.Errorf("fmtLI(2.5) = %q", got)
	}
}

func TestRatio(t *testing.T) {
	if ratio(4, 2) != 2 {
		t.Error("ratio wrong")
	}
	if ratio(0, 0) != 1 {
		t.Error("0/0 should report 1 (equal)")
	}
	if ratio(5, 0) != 5 {
		t.Error("x/0 should degrade to x")
	}
}
