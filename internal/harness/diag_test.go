package harness

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/method"
)

// TestDiag is a development aid printing 1D-vs-s2D quality across K; run
// with -v to inspect. Assertions are minimal (direction only).
func TestDiag(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	pl := method.NewPipeline()
	ks := []int{16, 64, 256}
	for _, name := range []string{"boyd2", "ASIC_680k", "com-Youtube"} {
		spec, _ := gen.ByName(name)
		a := pl.Matrix(spec, 1.0/64, 1)
		st := a.ComputeStats()
		for _, k := range ks {
			opt := method.Options{Seed: 1, Pipeline: pl, Ks: ks}
			oneD, err := method.BuildByName("1D", a, k, opt)
			if err != nil {
				t.Fatal(err)
			}
			s2d, err := method.BuildByName("s2D", a, k, opt)
			if err != nil {
				t.Fatal(err)
			}
			v1 := oneD.Comm().TotalVolume
			vs := s2d.Comm().TotalVolume
			t.Logf("%-12s K=%-4d n=%d nnz=%d dmax=%d | 1D LI=%6.2f vol=%7d | s2D LI=%5.2f vol=%7d ratio=%.3f",
				name, k, st.Rows, st.NNZ, st.DmaxRow,
				oneD.Dist.LoadImbalance(), v1, s2d.Dist.LoadImbalance(), vs,
				float64(vs)/float64(v1))
			if vs > v1 {
				t.Errorf("%s K=%d: s2D volume above 1D", name, k)
			}
		}
	}
}
