package harness

import (
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/gen"
)

// TestDiag is a development aid printing 1D-vs-s2D quality across K; run
// with -v to inspect. Assertions are minimal (direction only).
func TestDiag(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	for _, name := range []string{"boyd2", "ASIC_680k", "com-Youtube"} {
		spec, _ := gen.ByName(name)
		a := spec.Generate(1.0/64, 1)
		st := a.ComputeStats()
		for _, k := range []int{16, 64, 256} {
			opt := baselines.Options{Seed: 1}
			rows := baselines.RowwiseParts(a, k, opt)
			oneD := baselines.Rowwise1DFromParts(a, rows, k)
			s2d := core.Balanced(a, oneD.XPart, oneD.YPart, k, core.BalanceConfig{})
			v1 := oneD.Comm().TotalVolume
			vs := s2d.Comm().TotalVolume
			t.Logf("%-12s K=%-4d n=%d nnz=%d dmax=%d | 1D LI=%6.2f vol=%7d | s2D LI=%5.2f vol=%7d ratio=%.3f",
				name, k, st.Rows, st.NNZ, st.DmaxRow,
				oneD.LoadImbalance(), v1, s2d.LoadImbalance(), vs,
				float64(vs)/float64(v1))
			if vs > v1 {
				t.Errorf("%s K=%d: s2D volume above 1D", name, k)
			}
		}
	}
}
