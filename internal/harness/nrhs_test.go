package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/gen"
)

func TestTableNRHSInvariants(t *testing.T) {
	var buf bytes.Buffer
	nrhsList := []int{1, 4, 16}
	rows := TableNRHS(&buf, tinyCfg(), nrhsList)
	if want := len(gen.SetB()) * len(nrhsList); len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	if !strings.Contains(buf.String(), "Multi-RHS scaling") {
		t.Error("missing table title")
	}
	// Group rows per matrix; widths are rendered in nrhsList order.
	byMatrix := make(map[string][]NRHSRow)
	for _, r := range rows {
		if len(r.Res) != len(nrhsMethods) {
			t.Fatalf("%s nrhs=%d: %d methods, want %d", r.Matrix, r.NRHS, len(r.Res), len(nrhsMethods))
		}
		for _, res := range r.Res {
			if res.Kernel == "" {
				t.Errorf("%s %s nrhs=%d: empty winning-kernel column", r.Matrix, res.Method, r.NRHS)
			}
		}
		byMatrix[r.Matrix] = append(byMatrix[r.Matrix], r)
	}
	for matrix, rs := range byMatrix {
		for _, m := range nrhsMethods {
			for i := 1; i < len(rs); i++ {
				prev, _ := rs[i-1].Find(m)
				cur, _ := rs[i].Find(m)
				// One packet per peer regardless of width: per-column time
				// can only fall and speedup only rise as nrhs grows.
				if cur.PerColUS > prev.PerColUS*(1+1e-12) {
					t.Errorf("%s %s: per-column time rose %v -> %v from nrhs=%d to %d",
						matrix, m, prev.PerColUS, cur.PerColUS, rs[i-1].NRHS, rs[i].NRHS)
				}
				if cur.Speedup+1e-12 < prev.Speedup {
					t.Errorf("%s %s: speedup fell %v -> %v from nrhs=%d to %d",
						matrix, m, prev.Speedup, cur.Speedup, rs[i-1].NRHS, rs[i].NRHS)
				}
				if cur.MaxMsgs != prev.MaxMsgs || cur.Volume != prev.Volume {
					t.Errorf("%s %s: schedule stats changed with nrhs", matrix, m)
				}
			}
		}
		// The paper-extending claim: s2D-b buys its nrhs=1 edge with the α
		// message bound, so against s2D (same nonzero partition, fewer
		// messages, >= volume) its per-column ratio must not improve as
		// the batch widens and the α term is amortized away.
		first := rs[0]
		last := rs[len(rs)-1]
		sb1, _ := first.Find("s2D-b")
		sd1, _ := first.Find("s2D")
		sbN, _ := last.Find("s2D-b")
		sdN, _ := last.Find("s2D")
		if sd1.PerColUS > 0 && sdN.PerColUS > 0 {
			r1 := sb1.PerColUS / sd1.PerColUS
			rN := sbN.PerColUS / sdN.PerColUS
			if rN < r1-1e-9 {
				t.Errorf("%s: s2D-b/s2D per-column ratio improved with nrhs (%.3f -> %.3f), want the latency advantage to erode",
					matrix, r1, rN)
			}
		}
	}
}
