package harness

import (
	"io"

	"repro/internal/disagg"
	"repro/internal/gen"
	"repro/internal/order"
	"repro/internal/sparse"
)

// ablationMethods are the registry methods the ablation compares: the
// paper's s2D construction spectrum (optimal DM split vs Algorithm 1 vs
// the A3 extension vs the medium-grain adaptations), the vector-partition
// source study (hypergraph vs RCM-contiguous), and the latency-bounding
// alternatives (routed s2D-b vs Cartesian 2D-b; the disaggregation
// baseline is appended as an extra cell since it does not produce a
// Distribution).
var ablationMethods = []string{
	"1D", "s2D-opt", "s2D", "s2D-x", "s2D-mg", "s2D-mgS", "s2D-rcm", "s2D-b", "2D-b",
}

// Ablation examines the design choices DESIGN.md calls out, on the
// dense-row set at one K:
//
//  1. s2D construction: volume-optimal DM split (§IV-A) vs Algorithm 1
//     (§IV-B) vs the A3 extension from the paper's future work vs the
//     medium-grain adaptation — the volume/balance trade-off.
//  2. Vector partition source: hypergraph-partitioned vs RCM-contiguous
//     chunks — how much the s2D result depends on the imported vector
//     partition (the dependency §VII highlights).
//  3. Latency bounding: fused s2D-b routing vs Cartesian 2D-b vs
//     Kuhlemann–Vassilevski disaggregation — three ways to cap the
//     per-processor message count.
func Ablation(w io.Writer, cfg Config) []Row {
	cfg = cfg.withDefaults()
	ks := cfg.Ks
	if len(ks) == 0 {
		ks = []int{256}
	}
	rows := forEachCell(cfg, gen.SetB(), ks[:1], ablationMethods, disaggCell)

	fprintf(w, "Ablation (set B, K=%d, scale=%.4g)\n", rows[0].K, cfg.Scale)
	fprintf(w, "%-12s |", "name")
	for _, m := range rows[0].Res {
		fprintf(w, " %-8s %6s %5s %8s |", m.Method, "LI", "max", "vol")
	}
	fprintf(w, "\n")
	for _, r := range rows {
		fprintf(w, "%-12s |", r.Matrix)
		for _, m := range r.Res {
			fprintf(w, " %-8s %6s %5d %8d |", "", fmtLI(m.LI), m.MaxMsgs, m.Volume)
		}
		fprintf(w, "\n")
	}
	fprintf(w, "\n")
	return rows
}

// disaggCell evaluates the disaggregation baseline: split to a degree
// bound comparable to s2D-b's mesh fan-out, partition B's rows in
// RCM-contiguous chunks, and measure the triple-product communication.
func disaggCell(a *sparse.CSR, k int, cfg Config) MethodResult {
	dlim := maxOf(8, a.NNZ()/(4*k))
	d := disagg.Split(a, dlim)
	weights := make([]int, d.B.Rows)
	for r := 0; r < d.B.Rows; r++ {
		weights[r] = d.B.RowNNZ(r)
	}
	bParts := order.ContiguousParts(d.B.Rows, k, weights)
	homeX, homeY := d.HomeVectors(bParts, k)
	cs := d.Comm(bParts, homeX, homeY, k)

	loads := make([]int, k)
	for r := 0; r < d.B.Rows; r++ {
		loads[bParts[r]] += d.B.RowNNZ(r)
	}
	est := cfg.Machine.Evaluate(loads, cs.Phases, a.NNZ())
	li := 0.0
	{
		sum, max := 0, 0
		for _, x := range loads {
			sum += x
			if x > max {
				max = x
			}
		}
		if sum > 0 {
			li = float64(max)/(float64(sum)/float64(k)) - 1
		}
	}
	return MethodResult{
		Method:  "disagg",
		LI:      li,
		AvgMsgs: cs.AvgSendMsgs,
		MaxMsgs: cs.MaxSendMsgs,
		Volume:  cs.TotalVolume,
		Speedup: est.Speedup,
	}
}

func maxOf(a, b int) int {
	if a > b {
		return a
	}
	return b
}
