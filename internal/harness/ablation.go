package harness

import (
	"io"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/disagg"
	"repro/internal/gen"
	"repro/internal/order"
	"repro/internal/sparse"
)

// Ablation examines the design choices DESIGN.md calls out, on the
// dense-row set at one K:
//
//  1. s2D construction: volume-optimal DM split (§IV-A) vs Algorithm 1
//     (§IV-B) vs the A3 extension from the paper's future work vs the
//     medium-grain adaptation — the volume/balance trade-off.
//  2. Vector partition source: hypergraph-partitioned vs RCM-contiguous
//     chunks — how much the s2D result depends on the imported vector
//     partition (the dependency §VII highlights).
//  3. Latency bounding: fused s2D-b routing vs Cartesian 2D-b vs
//     Kuhlemann–Vassilevski disaggregation — three ways to cap the
//     per-processor message count.
func Ablation(w io.Writer, cfg Config) []Row {
	cfg = cfg.withDefaults()
	k := 256
	if len(cfg.Ks) > 0 {
		k = cfg.Ks[0]
	}

	rows := forEachCell(cfg, gen.SetB(), []int{k}, func(spec gen.Spec, a *sparse.CSR, k int, seed int64) []MethodResult {
		opt := baselines.Options{Seed: seed}
		rowParts := baselines.RowwiseParts(a, k, opt)
		oneD := baselines.Rowwise1DFromParts(a, rowParts, k)
		xp, yp := oneD.XPart, oneD.YPart

		// RCM-contiguous vector partition.
		perm := order.RCM(a)
		inv := make([]int, len(perm))
		for old, new := range perm {
			inv[new] = old
		}
		weights := make([]int, a.Rows)
		for new := 0; new < a.Rows; new++ {
			weights[new] = a.RowNNZ(inv[new])
		}
		chunk := order.ContiguousParts(a.Rows, k, weights)
		rcmParts := make([]int, a.Rows)
		for old := 0; old < a.Rows; old++ {
			rcmParts[old] = chunk[perm[old]]
		}
		rcm1D := baselines.Rowwise1DFromParts(a, rcmParts, k)

		mesh := core.NewMesh(k)
		s2d := core.Balanced(a, xp, yp, k, core.BalanceConfig{})
		res := []MethodResult{
			Cell("1D", oneD, nil, cfg.Machine),
			Cell("s2D-opt", core.Optimal(a, xp, yp, k), nil, cfg.Machine),
			Cell("s2D", s2d, nil, cfg.Machine),
			Cell("s2D-x", core.BalancedExt(a, xp, yp, k, core.BalanceConfig{}), nil, cfg.Machine),
			Cell("s2D-mg", baselines.MediumGrainS2D(a, k, opt), nil, cfg.Machine),
			Cell("s2D-mgS", baselines.MediumGrainS2DSym(a, k, opt), nil, cfg.Machine),
			Cell("s2D/rcm", core.Balanced(a, rcm1D.XPart, rcm1D.YPart, k, core.BalanceConfig{}), nil, cfg.Machine),
			Cell("s2D-b", s2d, &mesh, cfg.Machine),
			Cell("2D-b", baselines.Checkerboard2DB(a, k, opt), nil, cfg.Machine),
			disaggCell(a, k, cfg),
		}
		return res
	})

	fprintf(w, "Ablation (set B, K=%d, scale=%.4g)\n", k, cfg.Scale)
	fprintf(w, "%-12s |", "name")
	for _, m := range rows[0].Res {
		fprintf(w, " %-8s %6s %5s %8s |", m.Method, "LI", "max", "vol")
	}
	fprintf(w, "\n")
	for _, r := range rows {
		fprintf(w, "%-12s |", r.Matrix)
		for _, m := range r.Res {
			fprintf(w, " %-8s %6s %5d %8d |", "", fmtLI(m.LI), m.MaxMsgs, m.Volume)
		}
		fprintf(w, "\n")
	}
	fprintf(w, "\n")
	return rows
}

// disaggCell evaluates the disaggregation baseline: split to a degree
// bound comparable to s2D-b's mesh fan-out, partition B's rows in
// RCM-contiguous chunks, and measure the triple-product communication.
func disaggCell(a *sparse.CSR, k int, cfg Config) MethodResult {
	dlim := maxOf(8, a.NNZ()/(4*k))
	d := disagg.Split(a, dlim)
	weights := make([]int, d.B.Rows)
	for r := 0; r < d.B.Rows; r++ {
		weights[r] = d.B.RowNNZ(r)
	}
	bParts := order.ContiguousParts(d.B.Rows, k, weights)
	homeX, homeY := d.HomeVectors(bParts, k)
	cs := d.Comm(bParts, homeX, homeY, k)

	loads := make([]int, k)
	for r := 0; r < d.B.Rows; r++ {
		loads[bParts[r]] += d.B.RowNNZ(r)
	}
	est := cfg.Machine.Evaluate(loads, cs.Phases, a.NNZ())
	li := 0.0
	{
		sum, max := 0, 0
		for _, x := range loads {
			sum += x
			if x > max {
				max = x
			}
		}
		if sum > 0 {
			li = float64(max)/(float64(sum)/float64(k)) - 1
		}
	}
	return MethodResult{
		Method:  "disagg",
		LI:      li,
		AvgMsgs: cs.AvgSendMsgs,
		MaxMsgs: cs.MaxSendMsgs,
		Volume:  cs.TotalVolume,
		Speedup: est.Speedup,
	}
}

func maxOf(a, b int) int {
	if a > b {
		return a
	}
	return b
}
