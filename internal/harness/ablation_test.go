package harness

import (
	"bytes"
	"testing"
)

func TestAblationRuns(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyCfg()
	cfg.Ks = []int{16}
	rows := Ablation(&buf, cfg)
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		opt, _ := r.Find("s2D-opt")
		s2d, _ := r.Find("s2D")
		ext, _ := r.Find("s2D-x")
		oneD, _ := r.Find("1D")
		// Volume ordering: optimal <= Algorithm 1 <= 1D.
		if opt.Volume > s2d.Volume || s2d.Volume > oneD.Volume {
			t.Errorf("%s: volume ordering violated: opt %d, s2D %d, 1D %d",
				r.Matrix, opt.Volume, s2d.Volume, oneD.Volume)
		}
		// Extension never worsens the max load relative to Algorithm 1
		// (checked via LI since loads share the denominator).
		if ext.LI > s2d.LI+1e-9 {
			t.Errorf("%s: extension LI %.3f worse than s2D %.3f", r.Matrix, ext.LI, s2d.LI)
		}
		// Disaggregation is present and bounded.
		if _, ok := r.Find("disagg"); !ok {
			t.Errorf("%s: disagg cell missing", r.Matrix)
		}
	}
}
