package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/method"
)

// tinyCfg keeps harness tests fast: very small matrices, small K.
func tinyCfg() Config {
	return Config{Scale: 1.0 / 512, Seed: 1, Ks: []int{4, 8}}
}

func TestTable1And4Render(t *testing.T) {
	var buf bytes.Buffer
	stats := Table1(&buf, tinyCfg())
	if len(stats) != 8 {
		t.Fatalf("Table1 rows = %d", len(stats))
	}
	out := buf.String()
	for _, name := range []string{"crystk02", "pattern1"} {
		if !strings.Contains(out, name) {
			t.Errorf("Table I missing %s", name)
		}
	}
	buf.Reset()
	stats4 := Table4(&buf, tinyCfg())
	if len(stats4) != 8 {
		t.Fatalf("Table4 rows = %d", len(stats4))
	}
	if !strings.Contains(buf.String(), "rmat_20") {
		t.Error("Table IV missing rmat_20")
	}
}

func TestTable2Invariants(t *testing.T) {
	var buf bytes.Buffer
	rows := Table2(&buf, tinyCfg())
	if len(rows) != 16 { // 8 matrices x 2 K values
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		oneD, ok1 := r.Find("1D")
		twoD, ok2 := r.Find("2D")
		s2d, ok3 := r.Find("s2D")
		if !ok1 || !ok2 || !ok3 {
			t.Fatalf("%s K=%d: missing methods", r.Matrix, r.K)
		}
		// Invariant 1: s2D volume never exceeds 1D (per-block optimality
		// of accepted flips; unflipped blocks stay at the 1D volume).
		if s2d.Volume > oneD.Volume {
			t.Errorf("%s K=%d: s2D volume %d > 1D %d", r.Matrix, r.K, s2d.Volume, oneD.Volume)
		}
		// Invariant 2: s2D and 1D share the communication pattern.
		if s2d.MaxMsgs != oneD.MaxMsgs {
			t.Errorf("%s K=%d: s2D max msgs %d != 1D %d", r.Matrix, r.K, s2d.MaxMsgs, oneD.MaxMsgs)
		}
		// Invariant 3: 2D pays two phases — its message count is >= 1D's
		// on average across the table (checked in aggregate below).
		_ = twoD
	}
	// Aggregate: 2D sends more messages than 1D on average.
	var sum1, sum2 float64
	for _, r := range rows {
		oneD, _ := r.Find("1D")
		twoD, _ := r.Find("2D")
		sum1 += oneD.AvgMsgs
		sum2 += twoD.AvgMsgs
	}
	if sum2 < sum1 {
		t.Errorf("2D average messages %.1f below 1D %.1f across the table", sum2, sum1)
	}
}

func TestTable5Invariants(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyCfg()
	cfg.Ks = []int{16}
	rows := Table5(&buf, cfg)
	for _, r := range rows {
		oneD, _ := r.Find("1D")
		s2d, _ := r.Find("s2D")
		s2db, _ := r.Find("s2D-b")
		// s2D never above 1D volume; s2D-b at least s2D (routing cost).
		if s2d.Volume > oneD.Volume {
			t.Errorf("%s: s2D volume above 1D", r.Matrix)
		}
		if s2db.Volume < s2d.Volume {
			t.Errorf("%s: s2D-b volume %d below s2D %d", r.Matrix, s2db.Volume, s2d.Volume)
		}
		// s2D-b bounds the message count by the mesh perimeter.
		if s2db.MaxMsgs > 2*4-2 { // K=16 -> 4x4 mesh
			t.Errorf("%s: s2D-b max msgs %d above mesh bound", r.Matrix, s2db.MaxMsgs)
		}
		// s2D-b shares the nonzero partition with s2D: same imbalance.
		if s2db.LI != s2d.LI {
			t.Errorf("%s: s2D-b LI %.3f != s2D %.3f", r.Matrix, s2db.LI, s2d.LI)
		}
	}
}

func TestTable6Invariants(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyCfg()
	cfg.Ks = []int{16}
	rows := Table6(&buf, cfg)
	for _, r := range rows {
		for _, m := range r.Res {
			if m.MaxMsgs > 2*4-2 {
				t.Errorf("%s %s: max msgs %d above mesh bound 6", r.Matrix, m.Method, m.MaxMsgs)
			}
		}
	}
}

func TestTable7Runs(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyCfg()
	cfg.Ks = []int{8}
	rows := Table7(&buf, cfg)
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if _, ok := r.Find("s2D-mg"); !ok {
			t.Fatalf("%s: missing s2D-mg", r.Matrix)
		}
	}
}

func TestFigure1ExampleMatchesCaption(t *testing.T) {
	d := Figure1Example()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if !d.IsS2D() {
		t.Fatal("Figure 1 example is not s2D")
	}
	expand, fold := d.ExpandFold()
	// λ(3→2) = 3: P3 (part index 2) sends two x entries and one partial
	// to P2 (index 1).
	if got := PairVolume(d, expand, fold, 2, 1); got != 3 {
		t.Errorf("lambda(3->2) = %d, want 3", got)
	}
	// P2 sends [x_5, ȳ_2] to P1: exactly 2 words.
	if got := PairVolume(d, expand, fold, 1, 0); got != 2 {
		t.Errorf("P2->P1 packet volume = %d, want 2 ([x5, y2])", got)
	}
	// P1 sends ȳ_5 to P2: 1 word.
	if got := PairVolume(d, expand, fold, 0, 1); got != 1 {
		t.Errorf("P1->P2 packet volume = %d, want 1 (y5)", got)
	}
}

func TestFigure1Renders(t *testing.T) {
	var buf bytes.Buffer
	Figure1(&buf)
	out := buf.String()
	if !strings.Contains(out, "lambda(3->2) = 3") {
		t.Errorf("figure output missing lambda:\n%s", out)
	}
	if !strings.Contains(out, "10x13") {
		t.Error("figure output missing dimensions")
	}
}

func TestCellUsesRoutedStatsWithMesh(t *testing.T) {
	d := Figure1Example()
	machine := Config{}.withDefaults().Machine
	plain := Cell("s2D", method.Build{Method: "s2D", Dist: d}, machine)
	mesh := core.NewMesh(d.K)
	routed := Cell("s2D-b", method.Build{Method: "s2D-b", Dist: d, Mesh: &mesh}, machine)
	if routed.Volume < plain.Volume {
		t.Errorf("routed volume %d below direct %d", routed.Volume, plain.Volume)
	}
}
