package harness

import (
	"fmt"
	"io"
	"math"

	"repro/internal/gen"
	"repro/internal/sparse"
)

// Table1 prints the properties of the Table I matrices (set A) at the
// configured scale, alongside the paper's published full-scale values.
func Table1(w io.Writer, cfg Config) []sparse.Stats {
	return propertiesTable(w, cfg, gen.SetA(), "Table I: properties of the general test matrices")
}

// Table4 prints the properties of the Table IV dense-row matrices (set B).
func Table4(w io.Writer, cfg Config) []sparse.Stats {
	return propertiesTable(w, cfg, gen.SetB(), "Table IV: properties of the dense-row test matrices")
}

func propertiesTable(w io.Writer, cfg Config, specs []gen.Spec, title string) []sparse.Stats {
	cfg = cfg.withDefaults()
	fprintf(w, "%s (scale=%.4g)\n", title, cfg.Scale)
	fprintf(w, "%-12s %10s %12s %8s %9s | %10s %12s %8s %9s  %s\n",
		"name", "n", "nnz", "davg", "dmax", "paper n", "paper nnz", "p.davg", "p.dmax", "application")
	out := make([]sparse.Stats, 0, len(specs))
	for i, spec := range specs {
		a := cfg.Pipeline.Matrix(spec, cfg.Scale, cfg.Seed+int64(i))
		s := a.ComputeStats()
		out = append(out, s)
		fprintf(w, "%-12s %10d %12d %8.1f %9d | %10d %12d %8.1f %9d  %s\n",
			spec.Name, s.Rows, s.NNZ, s.DavgRow, s.DmaxRow,
			spec.PaperN, spec.PaperNNZ, spec.PaperDavg, spec.PaperDmax, spec.App)
	}
	fprintf(w, "\n")
	return out
}

// ksOr returns the Config override, or the table's paper default.
func ksOr(cfg Config, def []int) []int {
	if cfg.Ks != nil {
		return cfg.Ks
	}
	return def
}

// Table2 reproduces Table II: 1D rowwise vs 2D fine-grain vs s2D on set A
// for K ∈ {16, 64, 256}. The s2D column uses Algorithm 1 on the vector
// partition induced by the 1D rowwise partition, exactly as in §VI-A, so
// its communication pattern (and message counts) match 1D by construction.
func Table2(w io.Writer, cfg Config) []Row {
	cfg = cfg.withDefaults()
	rows := forEachCell(cfg, gen.SetA(), ksOr(cfg, []int{16, 64, 256}),
		[]string{"1D", "2D", "s2D"})
	renderVersus(w, "Table II: 1D vs 2D fine-grain vs s2D", rows, "1D")
	return rows
}

// Table3 reproduces Table III: the Cartesian checkerboard 2D-b at the
// largest K against the best of {1D, 2D, s2D}.
func Table3(w io.Writer, cfg Config) []Row {
	cfg = cfg.withDefaults()
	k := 256
	if len(cfg.Ks) > 0 {
		k = cfg.Ks[len(cfg.Ks)-1]
	}
	rows := forEachCell(cfg, gen.SetA(), []int{k},
		[]string{"1D", "2D", "s2D", "2D-b"})

	fprintf(w, "Table III: checkerboard 2D-b vs best of {1D, 2D, s2D} at K=%d (scale=%.4g)\n", k, cfg.Scale)
	fprintf(w, "%-12s %18s | %8s %8s %8s %10s %9s\n",
		"name", "best-unbounded(Sp)", "2db-LI", "avg", "max", "vol/1D", "2db-Sp")
	for _, r := range rows {
		best, bestName := 0.0, ""
		for _, m := range r.Res[:3] {
			if m.Speedup > best {
				best, bestName = m.Speedup, m.Method
			}
		}
		oneD, _ := r.Find("1D")
		cb, _ := r.Find("2D-b")
		fprintf(w, "%-12s %11.1f (%3s) | %8s %8.0f %8d %10.2f %9.1f\n",
			r.Matrix, best, bestName, fmtLI(cb.LI), cb.AvgMsgs, cb.MaxMsgs,
			ratio(cb.Volume, oneD.Volume), cb.Speedup)
	}
	fprintf(w, "\n")
	return rows
}

// Table5 reproduces Table V: 1D vs s2D vs s2D-b on the dense-row set for
// K ∈ {256, 1024, 4096}. s2D-b shares the nonzero partition with s2D; only
// the (routed, bounded) schedule differs.
func Table5(w io.Writer, cfg Config) []Row {
	cfg = cfg.withDefaults()
	rows := forEachCell(cfg, gen.SetB(), ksOr(cfg, []int{256, 1024, 4096}),
		[]string{"1D", "s2D", "s2D-b"})
	renderVersus(w, "Table V: 1D vs s2D vs s2D-b (dense-row matrices)", rows, "1D")
	return rows
}

// Table6 reproduces Table VI: 2D-b vs 1D-b vs s2D-b on the dense-row set.
// 1D-b shares the 1D vector partition; volumes are normalized to 2D-b as
// in the paper.
func Table6(w io.Writer, cfg Config) []Row {
	cfg = cfg.withDefaults()
	rows := forEachCell(cfg, gen.SetB(), ksOr(cfg, []int{256, 1024, 4096}),
		[]string{"2D-b", "1D-b", "s2D-b"})

	fprintf(w, "Table VI: 2D-b vs 1D-b vs s2D-b (volumes normalized to 2D-b, scale=%.4g)\n", cfg.Scale)
	fprintf(w, "%-12s %6s | %8s %10s | %8s %10s | %8s %10s\n",
		"name", "K", "2db-LI", "vol(2db)", "1db-LI", "vol/2db", "s2db-LI", "vol/2db")
	for _, r := range rows {
		cb, _ := r.Find("2D-b")
		ob, _ := r.Find("1D-b")
		sb, _ := r.Find("s2D-b")
		fprintf(w, "%-12s %6d | %8s %10d | %8s %10.2f | %8s %10.2f\n",
			r.Matrix, r.K, fmtLI(cb.LI), cb.Volume,
			fmtLI(ob.LI), ratio(ob.Volume, cb.Volume),
			fmtLI(sb.LI), ratio(sb.Volume, cb.Volume))
	}
	fprintf(w, "\n")
	return rows
}

// Table7 reproduces Table VII: the medium-grain s2D-mg adaptation against
// Algorithm 1's s2D (volumes normalized to s2D-mg).
func Table7(w io.Writer, cfg Config) []Row {
	cfg = cfg.withDefaults()
	rows := forEachCell(cfg, gen.SetB(), ksOr(cfg, []int{256, 1024, 4096}),
		[]string{"s2D-mg", "s2D"})

	fprintf(w, "Table VII: s2D vs medium-grain s2D-mg (volumes normalized to s2D-mg, scale=%.4g)\n", cfg.Scale)
	fprintf(w, "%-12s %6s | %8s %6s %10s | %8s %6s %10s\n",
		"name", "K", "mg-LI", "mg-Lat", "vol(mg)", "s2D-LI", "Lat", "vol/mg")
	for _, r := range rows {
		mg, _ := r.Find("s2D-mg")
		sd, _ := r.Find("s2D")
		fprintf(w, "%-12s %6d | %8s %6.0f %10d | %8s %6.0f %10.2f\n",
			r.Matrix, r.K, fmtLI(mg.LI), mg.AvgMsgs, mg.Volume,
			fmtLI(sd.LI), sd.AvgMsgs, ratio(sd.Volume, mg.Volume))
	}
	fprintf(w, "\n")
	return rows
}

// renderVersus prints rows in the Table II/V style: LI, latency, volume
// normalized to the named base method, and modelled speedup, with the
// paper's per-K geometric-mean summary rows.
func renderVersus(w io.Writer, title string, rows []Row, base string) {
	if len(rows) == 0 {
		return
	}
	fprintf(w, "%s\n", title)
	fprintf(w, "%-12s %6s |", "name", "K")
	for _, m := range rows[0].Res {
		fprintf(w, " %-8s %6s %5s %5s %8s %7s |", m.Method, "LI", "avg", "max", "vol", "Sp")
	}
	fprintf(w, "\n")
	for _, r := range rows {
		fprintf(w, "%-12s %6d |", r.Matrix, r.K)
		b, _ := r.Find(base)
		for _, m := range r.Res {
			vol := fmt.Sprintf("%.2f", ratio(m.Volume, b.Volume))
			if m.Method == base {
				vol = fmt.Sprintf("%.3g", float64(m.Volume))
			}
			fprintf(w, " %-8s %6s %5.0f %5d %8s %7.1f |", "", fmtLI(m.LI), m.AvgMsgs, m.MaxMsgs, vol, m.Speedup)
		}
		fprintf(w, "\n")
	}
	// Geometric means per K, in the paper's style.
	ks := []int{}
	seen := map[int]bool{}
	for _, r := range rows {
		if !seen[r.K] {
			seen[r.K] = true
			ks = append(ks, r.K)
		}
	}
	for _, k := range ks {
		fprintf(w, "%-12s %6d |", "geomean", k)
		for mi := range rows[0].Res {
			gLI := newGeomean()
			gVol := newGeomean()
			gSp := newGeomean()
			gMax := newGeomean()
			for _, r := range rows {
				if r.K != k {
					continue
				}
				m := r.Res[mi]
				b, _ := r.Find(base)
				gLI.add(m.LI)
				gVol.add(ratio(m.Volume, b.Volume))
				gSp.add(m.Speedup)
				gMax.add(float64(m.MaxMsgs))
			}
			vol := fmt.Sprintf("%.2f", gVol.value())
			if rows[0].Res[mi].Method == base {
				vol = "1.00"
			}
			fprintf(w, " %-8s %6s %5s %5.0f %8s %7.1f |", "", fmtLI(gLI.value()), "", gMax.value(), vol, gSp.value())
		}
		fprintf(w, "\n")
	}
	fprintf(w, "\n")
}

// geomean accumulates a geometric mean over positive samples (zeros and
// negatives are skipped, as with the paper's LI entries of 0.0%).
type geomean struct {
	logSum float64
	n      int
}

func newGeomean() *geomean { return &geomean{} }

func (g *geomean) add(x float64) {
	if x > 0 {
		g.logSum += math.Log(x)
		g.n++
	}
}

func (g *geomean) value() float64 {
	if g.n == 0 {
		return 0
	}
	return math.Exp(g.logSum / float64(g.n))
}

func ratio(a, b int) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return float64(a)
	}
	return float64(a) / float64(b)
}
