package harness

import (
	"io"

	"repro/internal/gen"
	"repro/internal/method"
	"repro/internal/spmv"
)

// NRHSResult is one method's modelled batched-SpMM numbers at one width.
type NRHSResult struct {
	Method    string
	MaxMsgs   int     // messages the busiest processor sends per SpMM (any nrhs)
	Volume    int     // single-column communication volume (words)
	PerColUS  float64 // modelled per-column time, microseconds
	Speedup   float64 // modelled speedup vs serial SpMM at this width
	VsOneDPct float64 // per-column time as a percentage of 1D's (100 = parity)
	Kernel    string  // kernel backend the autotuner picked for this width
}

// NRHSRow is all methods' results for one (matrix, nrhs) pair.
type NRHSRow struct {
	Matrix string
	K      int
	NRHS   int
	Res    []NRHSResult
}

// Find returns the result of a named method in the row, if present.
func (r NRHSRow) Find(method string) (NRHSResult, bool) {
	for _, m := range r.Res {
		if m.Method == method {
			return m, true
		}
	}
	return NRHSResult{}, false
}

// nrhsMethods are the methods the multi-RHS comparison sweeps: the 1D
// baseline, the fine-grain 2D, and the paper's two s2D variants.
var nrhsMethods = []string{"1D", "2D", "s2D", "s2D-b"}

// TableNRHS renders the multi-RHS scaling comparison — a result the paper
// never measured. Each cell models one batched SpMM over nrhs right-hand
// sides: per-word volume and compute scale with nrhs while the
// per-message α cost is paid once per packet, so the latency advantage
// the message-bounded methods (s2D-b) hold at nrhs=1 must shrink as the
// batch widens and the comparison converges to pure volume. nrhsList
// defaults to {1, 4, 16, 64}; K comes from cfg.Ks (last entry) or 256.
//
// Each cell additionally reports the kernel backend the plan-time
// autotuner picks for that width (spmv.NewTuned on the real build; one
// engine is probed per method and closed). The decision memoizes in
// cfg.Pipeline, so repeated tables reuse the first verdict.
func TableNRHS(w io.Writer, cfg Config, nrhsList []int) []NRHSRow {
	cfg = cfg.withDefaults()
	if len(nrhsList) == 0 {
		nrhsList = []int{1, 4, 16, 64}
	}
	k := 256
	if len(cfg.Ks) > 0 {
		k = cfg.Ks[len(cfg.Ks)-1]
	}
	specs := gen.SetB()

	fprintf(w, "Multi-RHS scaling: per-column modelled time as the batch widens, K=%d (scale=%.4g)\n", k, cfg.Scale)
	fprintf(w, "%-12s %6s |", "name", "nrhs")
	for _, m := range nrhsMethods {
		fprintf(w, " %8s %6s %-9s|", m+" µs/c", "vs1D", " kern")
	}
	fprintf(w, "\n")

	var rows []NRHSRow
	for si, spec := range specs {
		a := cfg.Pipeline.Matrix(spec, cfg.Scale, cfg.Seed+int64(si))
		seed := cfg.Seed + int64(si*1000)
		opt := method.Options{Seed: seed, Pipeline: cfg.Pipeline, Ks: []int{k}}
		// One build per method; the schedule is nrhs-independent, so every
		// width is evaluated on the same communication statistics.
		type built struct {
			name  string
			b     method.Build
			loads []int
			rep   spmv.KernelReport
		}
		builds := make([]built, 0, len(nrhsMethods))
		for _, name := range nrhsMethods {
			b, err := method.BuildByName(name, a, k, opt)
			if err != nil {
				panic("harness: " + name + " on " + spec.Name + ": " + err.Error())
			}
			eng, rep, err := spmv.NewTuned(b, opt)
			if err != nil {
				panic("harness: tune " + name + " on " + spec.Name + ": " + err.Error())
			}
			eng.Close()
			builds = append(builds, built{name: name, b: b, loads: b.Dist.PartLoads(), rep: rep})
		}
		for _, nrhs := range nrhsList {
			row := NRHSRow{Matrix: spec.Name, K: k, NRHS: nrhs}
			var oneDPerCol float64
			for _, bu := range builds {
				cs := bu.b.Comm()
				est := cfg.Machine.EvaluateNRHS(bu.loads, cs.Phases, a.NNZ(), nrhs)
				perCol := est.ParallelTime / float64(nrhs)
				if bu.name == "1D" {
					oneDPerCol = perCol
				}
				res := NRHSResult{
					Method:   bu.name,
					MaxMsgs:  cs.MaxSendMsgs,
					Volume:   cs.TotalVolume,
					PerColUS: perCol * 1e6,
					Speedup:  est.Speedup,
					Kernel:   bu.rep.For(nrhs),
				}
				if oneDPerCol > 0 {
					res.VsOneDPct = perCol / oneDPerCol * 100
				}
				row.Res = append(row.Res, res)
			}
			rows = append(rows, row)

			fprintf(w, "%-12s %6d |", spec.Name, nrhs)
			for _, res := range row.Res {
				fprintf(w, " %8.1f %5.0f%% %-9s|", res.PerColUS, res.VsOneDPct, res.Kernel)
			}
			fprintf(w, "\n")
		}
	}
	fprintf(w, "\n")
	return rows
}
