// Package harness regenerates the paper's evaluation: Tables I–VII and
// Figure 1. Each Table function renders the same rows the paper reports
// (load imbalance, message counts, normalized communication volume,
// modelled speedup) for synthetic stand-ins of the paper's matrices.
//
// Scale controls matrix size (1.0 = paper scale); the qualitative shape —
// which method wins, where, and by roughly what factor — is stable across
// scales, which is what the reproduction targets (absolute numbers depend
// on the authors' PaToH seeds and Cray XE6 testbed).
package harness

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/sparse"
)

// Config controls experiment scale and reproducibility.
type Config struct {
	Scale   float64 // matrix scale in (0,1]; default 1/64
	Seed    int64
	Ks      []int // override the per-table K list (optional)
	Machine model.Machine
	// Parallelism bounds concurrent matrix evaluations; default NumCPU.
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1.0 / 64
	}
	if c.Machine == (model.Machine{}) {
		c.Machine = model.CrayXE6()
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.NumCPU()
	}
	return c
}

// MethodResult is one method's quality numbers on one (matrix, K) cell.
type MethodResult struct {
	Method  string
	LI      float64 // load imbalance (0.03 = 3%)
	AvgMsgs float64 // average messages sent per processor
	MaxMsgs int     // maximum messages sent by a processor
	Volume  int     // total communication volume (words)
	Speedup float64 // modelled speedup vs serial
}

// Cell evaluates a distribution into a MethodResult, using the s2D-b
// routed statistics when mesh is non-nil.
func Cell(name string, d *distrib.Distribution, mesh *core.Mesh, m model.Machine) MethodResult {
	var cs distrib.CommStats
	if mesh != nil {
		cs = core.S2DBComm(d, *mesh)
	} else {
		cs = d.Comm()
	}
	est := m.Evaluate(d.PartLoads(), cs.Phases, d.A.NNZ())
	return MethodResult{
		Method:  name,
		LI:      d.LoadImbalance(),
		AvgMsgs: cs.AvgSendMsgs,
		MaxMsgs: cs.MaxSendMsgs,
		Volume:  cs.TotalVolume,
		Speedup: est.Speedup,
	}
}

// Row is all methods' results for one (matrix, K) pair.
type Row struct {
	Matrix string
	K      int
	NNZ    int
	Res    []MethodResult
}

// Find returns the result of a named method in the row, if present.
func (r Row) Find(method string) (MethodResult, bool) {
	for _, m := range r.Res {
		if m.Method == method {
			return m, true
		}
	}
	return MethodResult{}, false
}

// forEachCell evaluates f over specs × ks with bounded parallelism and
// deterministic per-cell seeds, returning rows in (spec, k) order.
func forEachCell(cfg Config, specs []gen.Spec, ks []int,
	f func(spec gen.Spec, a *sparse.CSR, k int, seed int64) []MethodResult) []Row {

	type cellKey struct{ si, ki int }
	rows := make([]Row, len(specs)*len(ks))
	sem := make(chan struct{}, cfg.Parallelism)
	var wg sync.WaitGroup

	for si, spec := range specs {
		// One matrix instance per spec, shared across K values.
		a := spec.Generate(cfg.Scale, cfg.Seed+int64(si))
		for ki, k := range ks {
			wg.Add(1)
			go func(spec gen.Spec, a *sparse.CSR, key cellKey, k int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				seed := cfg.Seed + int64(key.si*1000+key.ki)
				rows[key.si*len(ks)+key.ki] = Row{
					Matrix: spec.Name, K: k, NNZ: a.NNZ(),
					Res: f(spec, a, k, seed),
				}
			}(spec, a, cellKey{si, ki}, k)
		}
	}
	wg.Wait()
	return rows
}

// fmtLI renders load imbalance in the paper's convention: "12.3%" below
// 100%, and "1.2*" for 120% (×100%).
func fmtLI(li float64) string {
	if li < 1.0 {
		return fmt.Sprintf("%.1f%%", li*100)
	}
	return fmt.Sprintf("%.1f*", li)
}

func fprintf(w io.Writer, format string, args ...interface{}) {
	fmt.Fprintf(w, format, args...)
}
