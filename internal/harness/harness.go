// Package harness regenerates the paper's evaluation: Tables I–VII and
// Figure 1. Each Table function renders the same rows the paper reports
// (load imbalance, message counts, normalized communication volume,
// modelled speedup) for synthetic stand-ins of the paper's matrices.
//
// Every table is a data-driven loop over method-registry names
// (internal/method): a table is its matrix set, its K list, its method
// list, and a renderer. Builds go through one shared method.Pipeline per
// Config, so matrices, vector partitions, and distributions that several
// tables (or several methods within a table) need are computed once —
// including one recursive-bisection tree per matrix shared across the
// whole K sweep.
//
// Scale controls matrix size (1.0 = paper scale); the qualitative shape —
// which method wins, where, and by roughly what factor — is stable across
// scales, which is what the reproduction targets (absolute numbers depend
// on the authors' PaToH seeds and Cray XE6 testbed).
package harness

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/gen"
	"repro/internal/method"
	"repro/internal/model"
	"repro/internal/sparse"
)

// Config controls experiment scale and reproducibility.
type Config struct {
	Scale   float64 // matrix scale in (0,1]; default 1/64
	Seed    int64
	Ks      []int // override the per-table K list (optional)
	Machine model.Machine
	// Parallelism bounds concurrent matrix evaluations; default NumCPU.
	Parallelism int
	// Pipeline memoizes matrices and method prerequisites. Leave nil for
	// a per-table pipeline; set one pipeline on the Config to share work
	// across tables (cmd/spmvbench -all does this).
	Pipeline *method.Pipeline
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1.0 / 64
	}
	if c.Machine == (model.Machine{}) {
		c.Machine = model.CrayXE6()
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.NumCPU()
	}
	if c.Pipeline == nil {
		c.Pipeline = method.NewPipeline()
	}
	return c
}

// MethodResult is one method's quality numbers on one (matrix, K) cell.
type MethodResult struct {
	Method  string
	LI      float64 // load imbalance (0.03 = 3%)
	AvgMsgs float64 // average messages sent per processor
	MaxMsgs int     // maximum messages sent by a processor
	Volume  int     // total communication volume (words)
	Speedup float64 // modelled speedup vs serial
}

// Cell evaluates a method build into a MethodResult under the build's own
// schedule (routed two-hop statistics when the build carries a mesh).
func Cell(name string, b method.Build, m model.Machine) MethodResult {
	cs := b.Comm()
	d := b.Dist
	est := m.Evaluate(d.PartLoads(), cs.Phases, d.A.NNZ())
	return MethodResult{
		Method:  name,
		LI:      d.LoadImbalance(),
		AvgMsgs: cs.AvgSendMsgs,
		MaxMsgs: cs.MaxSendMsgs,
		Volume:  cs.TotalVolume,
		Speedup: est.Speedup,
	}
}

// Row is all methods' results for one (matrix, K) pair.
type Row struct {
	Matrix string
	K      int
	NNZ    int
	Res    []MethodResult
}

// Find returns the result of a named method in the row, if present.
func (r Row) Find(method string) (MethodResult, bool) {
	for _, m := range r.Res {
		if m.Method == method {
			return m, true
		}
	}
	return MethodResult{}, false
}

// forEachCell evaluates the named registry methods over specs × ks with
// bounded parallelism, returning rows in (spec, k) order. Seeds are
// per-matrix (not per-K), so the whole K sweep of a matrix keys the same
// pipeline prerequisites and shares one recursive-bisection tree; the Ks
// hint tells the pipeline the sweep up front. Extras append
// per-cell results for methods that do not fit the registry's Build shape
// (the ablation's disaggregation baseline).
func forEachCell(cfg Config, specs []gen.Spec, ks []int, methods []string,
	extras ...func(a *sparse.CSR, k int, cfg Config) MethodResult) []Row {

	rows := make([]Row, len(specs)*len(ks))
	sem := make(chan struct{}, cfg.Parallelism)
	var wg sync.WaitGroup

	for si, spec := range specs {
		// One matrix instance per spec, shared across K values and — via
		// the pipeline cache — across tables.
		a := cfg.Pipeline.Matrix(spec, cfg.Scale, cfg.Seed+int64(si))
		seed := cfg.Seed + int64(si*1000)
		for ki, k := range ks {
			wg.Add(1)
			go func(spec gen.Spec, a *sparse.CSR, idx, k int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				opt := method.Options{Seed: seed, Pipeline: cfg.Pipeline, Ks: ks}
				res := make([]MethodResult, 0, len(methods)+len(extras))
				for _, name := range methods {
					b, err := method.BuildByName(name, a, k, opt)
					if err != nil {
						// Method lists are package constants; an unknown
						// name or failed build is a programming error.
						panic(fmt.Sprintf("harness: %s on %s K=%d: %v", name, spec.Name, k, err))
					}
					res = append(res, Cell(name, b, cfg.Machine))
				}
				for _, extra := range extras {
					res = append(res, extra(a, k, cfg))
				}
				rows[idx] = Row{Matrix: spec.Name, K: k, NNZ: a.NNZ(), Res: res}
			}(spec, a, si*len(ks)+ki, k)
		}
	}
	wg.Wait()
	return rows
}

// fmtLI renders load imbalance in the paper's convention: "12.3%" below
// 100%, and "1.2*" for 120% (×100%).
func fmtLI(li float64) string {
	if li < 1.0 {
		return fmt.Sprintf("%.1f%%", li*100)
	}
	return fmt.Sprintf("%.1f*", li)
}

func fprintf(w io.Writer, format string, args ...interface{}) {
	fmt.Fprintf(w, format, args...)
}
