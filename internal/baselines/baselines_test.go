package baselines

import (
	"testing"

	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/gen"
	"repro/internal/sparse"
)

func bandMatrix() *sparse.CSR {
	return gen.Band(gen.BandConfig{N: 300, MinHalfBand: 2, MaxHalfBand: 4}, 1)
}

func skewMatrix() *sparse.CSR {
	return gen.PowerLaw(gen.PowerLawConfig{
		Rows: 400, Cols: 400, NNZ: 3000, Beta: 0.5, DenseRows: 2, DenseMax: 150, Symmetric: true,
	}, 2)
}

func validate(t *testing.T, d *distrib.Distribution) {
	t.Helper()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRowwise1D(t *testing.T) {
	a := bandMatrix()
	d := Rowwise1D(a, 8, Options{Seed: 1})
	validate(t, d)
	if !d.IsS2D() {
		t.Error("1D rowwise must satisfy the s2D property")
	}
	// All fold traffic is zero: nonzeros live with their rows.
	_, fold := d.ExpandFold()
	if len(fold.Vol) != 0 {
		t.Errorf("1D rowwise has fold traffic: %d pairs", len(fold.Vol))
	}
	if li := d.LoadImbalance(); li > 0.10 {
		t.Errorf("band-matrix 1D imbalance = %.3f", li)
	}
}

func TestColwise1D(t *testing.T) {
	a := bandMatrix()
	d := Colwise1D(a, 8, Options{Seed: 1})
	validate(t, d)
	// All expand traffic is zero: nonzeros live with their columns.
	expand, _ := d.ExpandFold()
	if len(expand.Vol) != 0 {
		t.Errorf("1D columnwise has expand traffic: %d pairs", len(expand.Vol))
	}
}

func TestFineGrain2D(t *testing.T) {
	a := skewMatrix()
	const k = 8
	d := FineGrain2D(a, k, Options{Seed: 3})
	validate(t, d)
	if d.Fused {
		t.Error("fine-grain must use the two-phase schedule")
	}
	// Fine-grain's freedom should balance the skewed matrix well.
	if li := d.LoadImbalance(); li > 0.15 {
		t.Errorf("fine-grain imbalance = %.3f, want near-perfect", li)
	}
	// And its volume should beat 1D on a skewed matrix.
	v2 := d.Comm().TotalVolume
	v1 := Rowwise1D(a, k, Options{Seed: 3}).Comm().TotalVolume
	if v2 > v1 {
		t.Errorf("fine-grain volume %d > 1D %d on skewed matrix", v2, v1)
	}
}

func TestMediumGrainS2D(t *testing.T) {
	a := skewMatrix()
	const k = 8
	d := MediumGrainS2D(a, k, Options{Seed: 4})
	validate(t, d)
	if !d.IsS2D() {
		t.Fatal("medium-grain decode violated the s2D property")
	}
	if !d.Fused {
		t.Error("medium-grain s2D must be fused")
	}
	if li := d.LoadImbalance(); li > 0.25 {
		t.Errorf("medium-grain imbalance = %.3f", li)
	}
}

func TestCheckerboard2DB(t *testing.T) {
	a := skewMatrix()
	const k = 16
	d := Checkerboard2DB(a, k, Options{Seed: 5})
	validate(t, d)
	mesh := core.NewMesh(k)
	cs := d.Comm()
	// Expand phase: ≤ Pr−1 messages per processor; fold: ≤ Pc−1.
	if cs.Phases[0].MaxSendMsgs > mesh.Pr-1 {
		t.Errorf("expand max msgs %d > Pr-1 %d", cs.Phases[0].MaxSendMsgs, mesh.Pr-1)
	}
	if cs.Phases[1].MaxSendMsgs > mesh.Pc-1 {
		t.Errorf("fold max msgs %d > Pc-1 %d", cs.Phases[1].MaxSendMsgs, mesh.Pc-1)
	}
}

func TestOneDB(t *testing.T) {
	a := skewMatrix()
	const k = 16
	opt := Options{Seed: 6}
	rows := RowwiseParts(a, k, opt)
	d := OneDB(a, rows, k, opt)
	validate(t, d)
	mesh := core.NewMesh(k)
	cs := d.Comm()
	if cs.Phases[0].MaxSendMsgs > mesh.Pr-1 {
		t.Errorf("expand max msgs %d > Pr-1 %d", cs.Phases[0].MaxSendMsgs, mesh.Pr-1)
	}
	if cs.Phases[1].MaxSendMsgs > mesh.Pc-1 {
		t.Errorf("fold max msgs %d > Pc-1 %d", cs.Phases[1].MaxSendMsgs, mesh.Pc-1)
	}
	// The 1D vector partition is preserved.
	oneD := Rowwise1DFromParts(a, rows, k)
	for i := range oneD.YPart {
		if oneD.YPart[i] != d.YPart[i] {
			t.Fatal("1D-b changed the output vector partition")
		}
	}
}

// TestS2DBeats1DOnSkewedMatrix reproduces the paper's headline claim at
// unit-test scale: on a matrix with dense rows, s2D (Algorithm 1 on the 1D
// vector partition) cuts both the communication volume and the load
// imbalance relative to 1D rowwise.
func TestS2DBeats1DOnSkewedMatrix(t *testing.T) {
	a := skewMatrix()
	const k = 16
	opt := Options{Seed: 7}
	rows := RowwiseParts(a, k, opt)
	oneD := Rowwise1DFromParts(a, rows, k)
	s2d := core.Balanced(a, oneD.XPart, oneD.YPart, k, core.BalanceConfig{})

	v1, vs := oneD.Comm().TotalVolume, s2d.Comm().TotalVolume
	if vs > v1 {
		t.Errorf("s2D volume %d > 1D volume %d", vs, v1)
	}
	// Algorithm 1 never exceeds max{W̃_1D, Wlim}: the imbalance is bounded
	// by the worse of 1D's and the tolerance (plus integer rounding).
	li1, lis := oneD.LoadImbalance(), s2d.LoadImbalance()
	if lis > li1+1e-9 && lis > 0.035 {
		t.Errorf("s2D imbalance %.3f worse than both 1D (%.3f) and the tolerance", lis, li1)
	}
	t.Logf("1D: vol=%d LI=%.2f; s2D: vol=%d LI=%.2f", v1, li1, vs, lis)
}

func TestRectangularMatrixMethods(t *testing.T) {
	// Methods must handle rectangular matrices.
	c := sparse.NewCOO(60, 40)
	for i := 0; i < 60; i++ {
		c.Add(i, i%40, 1)
		c.Add(i, (i*7+3)%40, 1)
	}
	a := c.ToCSR()
	const k = 4
	opt := Options{Seed: 8}
	for name, d := range map[string]*distrib.Distribution{
		"rowwise": Rowwise1D(a, k, opt),
		"colwise": Colwise1D(a, k, opt),
		"fine":    FineGrain2D(a, k, opt),
		"medium":  MediumGrainS2D(a, k, opt),
		"checker": Checkerboard2DB(a, k, opt),
	} {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestMediumGrainS2DSym(t *testing.T) {
	a := skewMatrix()
	const k = 8
	d := MediumGrainS2DSym(a, k, Options{Seed: 9})
	validate(t, d)
	if !d.IsS2D() {
		t.Fatal("symmetric medium-grain violated the s2D property")
	}
	// The whole point: identical x and y partitions.
	for i := range d.XPart {
		if d.XPart[i] != d.YPart[i] {
			t.Fatalf("vector partition not symmetric at %d", i)
		}
	}
	if li := d.LoadImbalance(); li > 0.30 {
		t.Errorf("imbalance = %.3f", li)
	}
}

func TestMediumGrainS2DSymRejectsRectangular(t *testing.T) {
	c := sparse.NewCOO(3, 4)
	c.Add(0, 0, 1)
	a := c.ToCSR()
	defer func() {
		if recover() == nil {
			t.Fatal("accepted rectangular matrix")
		}
	}()
	MediumGrainS2DSym(a, 2, Options{})
}
