// Package baselines implements the partitioning methods the paper compares
// against:
//
//   - 1D rowwise and columnwise (column-net / row-net hypergraph models);
//   - 2D fine-grain (row-column-net model, Çatalyürek & Aykanat);
//   - 2D-b Cartesian "checkerboard" (bounded latency);
//   - 1D-b, the mesh post-processing of Boman et al. applied to a 1D
//     partition;
//   - s2D-mg, the medium-grain method of Pelt & Bisseling adapted to
//     produce an s2D partition (via the composite hypergraph of §V).
//
// All methods return the common distrib.Distribution representation.
package baselines

import (
	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/hypergraph"
	"repro/internal/partition"
	"repro/internal/sparse"
	"repro/internal/vecpart"
)

// Options carries the partitioner knobs shared by all methods.
type Options struct {
	Seed    int64
	Epsilon float64 // imbalance tolerance; default 0.03
}

func (o Options) pcfg(k int) partition.Config {
	return partition.Config{K: k, Seed: o.Seed, Epsilon: o.Epsilon}
}

// RowwiseParts partitions the rows of a into k parts with the column-net
// hypergraph model, minimizing the expand volume under row-nnz balance.
func RowwiseParts(a *sparse.CSR, k int, opt Options) []int {
	h := hypergraph.ColumnNetModel(a)
	return partition.Partition(h, opt.pcfg(k))
}

// Rowwise1D is the 1D rowwise method: every nonzero goes with its row, and
// the single communication phase expands x entries.
func Rowwise1D(a *sparse.CSR, k int, opt Options) *distrib.Distribution {
	rows := RowwiseParts(a, k, opt)
	return Rowwise1DFromParts(a, rows, k)
}

// Rowwise1DFromParts builds the 1D rowwise distribution for an existing
// row partition (used to hold the vector partition fixed across methods).
func Rowwise1DFromParts(a *sparse.CSR, rows []int, k int) *distrib.Distribution {
	xp, yp := vecpart.FromRowParts(a, rows, k)
	owner := make([]int, a.NNZ())
	p := 0
	for i := 0; i < a.Rows; i++ {
		for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
			owner[p] = rows[i]
			p++
		}
	}
	return &distrib.Distribution{A: a, K: k, Owner: owner, XPart: xp, YPart: yp, Fused: true}
}

// Colwise1D is the 1D columnwise method: every nonzero goes with its
// column, and the single communication phase folds partial results.
func Colwise1D(a *sparse.CSR, k int, opt Options) *distrib.Distribution {
	h := hypergraph.RowNetModel(a)
	cols := partition.Partition(h, opt.pcfg(k))
	ypFromCols, xp := vecpart.FromRowParts(a.Transpose(), cols, k)
	owner := make([]int, a.NNZ())
	p := 0
	for i := 0; i < a.Rows; i++ {
		for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
			owner[p] = cols[a.ColIdx[q]]
			p++
		}
	}
	return &distrib.Distribution{A: a, K: k, Owner: owner, XPart: xp, YPart: ypFromCols, Fused: true}
}

// FineGrain2D is the 2D fine-grain method: each nonzero is a free agent
// partitioned by the row-column-net hypergraph; vector entries follow the
// majority owner of their column/row. Two communication phases.
func FineGrain2D(a *sparse.CSR, k int, opt Options) *distrib.Distribution {
	fg := hypergraph.FineGrain(a)
	owner := partition.Partition(fg.H, opt.pcfg(k))
	return FineGrain2DFromParts(a, fg, owner, k)
}

// FineGrain2DFromParts builds the 2D fine-grain distribution from an
// existing partition of the fine-grain hypergraph's nonzero vertices
// (used to share partitioning work across a K sweep).
func FineGrain2DFromParts(a *sparse.CSR, fg *hypergraph.FineGrainModel, owner []int, k int) *distrib.Distribution {
	xp := majorityByIndex(fg.NonzeroCol, owner, a.Cols, k)
	yp := majorityByIndex(fg.NonzeroRow, owner, a.Rows, k)
	return &distrib.Distribution{A: a, K: k, Owner: owner, XPart: xp, YPart: yp, Fused: false}
}

// majorityByIndex assigns each index (row or column) to the part owning
// most of its nonzeros; indexless entries go round-robin.
func majorityByIndex(idx []int, owner []int, n, k int) []int {
	counts := make([]map[int]int, n)
	for p, ix := range idx {
		if counts[ix] == nil {
			counts[ix] = make(map[int]int, 4)
		}
		counts[ix][owner[p]]++
	}
	out := make([]int, n)
	for ix := 0; ix < n; ix++ {
		if len(counts[ix]) == 0 {
			out[ix] = ix % k
			continue
		}
		best, bestCount := -1, -1
		for part, c := range counts[ix] { //spmvlint:unordered argmax with a total tie-break on part index
			if c > bestCount || (c == bestCount && part < best) {
				best, bestCount = part, c
			}
		}
		out[ix] = best
	}
	return out
}

// MediumGrainS2D is the medium-grain method adapted to s2D (§V): the
// composite hypergraph amalgamates vector entries with the split nonzeros,
// so a K-way partition decodes directly into an s2D distribution with a
// single fused phase.
func MediumGrainS2D(a *sparse.CSR, k int, opt Options) *distrib.Distribution {
	return mediumGrain(a, hypergraph.MediumGrain(a), k, opt)
}

// MediumGrainS2DSym is the symmetric-vector-partition variant for square
// matrices (§V): row i and column i amalgamate into one vertex, so the
// decoded x and y partitions coincide.
func MediumGrainS2DSym(a *sparse.CSR, k int, opt Options) *distrib.Distribution {
	return mediumGrain(a, hypergraph.MediumGrainSym(a), k, opt)
}

func mediumGrain(a *sparse.CSR, mg *hypergraph.MediumGrainModel, k int, opt Options) *distrib.Distribution {
	parts := partition.Partition(mg.H, opt.pcfg(k))
	xp := make([]int, a.Cols)
	yp := make([]int, a.Rows)
	for j := 0; j < a.Cols; j++ {
		xp[j] = parts[mg.ColVertex(j)]
	}
	for i := 0; i < a.Rows; i++ {
		yp[i] = parts[mg.RowVertex(i)]
	}
	owner := make([]int, a.NNZ())
	p := 0
	for i := 0; i < a.Rows; i++ {
		for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
			if mg.ToRowSide[p] {
				owner[p] = yp[i]
			} else {
				owner[p] = xp[a.ColIdx[q]]
			}
			p++
		}
	}
	return &distrib.Distribution{A: a, K: k, Owner: owner, XPart: xp, YPart: yp, Fused: true}
}

// Checkerboard2DB is the Cartesian (checkerboard) method the paper calls
// 2D-b [5][7]. Rows are partitioned into P_r stripes with the column-net
// model; columns are then partitioned into P_c stripes with the row-net
// model under P_r balance constraints — each column carries one weight per
// row stripe, so every mesh cell is balanced, exactly as PaToH's
// multi-constraint second phase. Nonzero a_ij goes to mesh cell
// (rowStripe(i), colStripe(j)); expand stays within mesh columns and fold
// within mesh rows, bounding the per-processor message count by P_r+P_c−2.
func Checkerboard2DB(a *sparse.CSR, k int, opt Options) *distrib.Distribution {
	mesh := core.NewMesh(k)
	rowStripe := partition.Partition(hypergraph.ColumnNetModel(a), partition.Config{
		K: mesh.Pr, Seed: opt.Seed, Epsilon: opt.Epsilon,
	})

	// Column phase: row-net model, one balance constraint per row stripe.
	colModel := hypergraph.RowNetModel(a) // vertex j = column j
	weights := make([][]int, mesh.Pr)
	for r := range weights {
		weights[r] = make([]int, a.Cols)
	}
	for i := 0; i < a.Rows; i++ {
		r := rowStripe[i]
		for _, j := range a.RowCols(i) {
			weights[r][j]++
		}
	}
	colStripe := partition.PartitionMC(colModel, weights, partition.Config{
		K: mesh.Pc, Seed: opt.Seed + 1, Epsilon: opt.Epsilon,
	})

	owner := make([]int, a.NNZ())
	p := 0
	for i := 0; i < a.Rows; i++ {
		r := rowStripe[i]
		for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
			owner[p] = mesh.PartAt(r, colStripe[a.ColIdx[q]])
			p++
		}
	}
	// x_j must live in mesh column colStripe(j); y_i in mesh row
	// rowStripe(i). The free coordinate follows the symmetric choice for
	// square matrices and round-robin otherwise.
	xp := make([]int, a.Cols)
	for j := range xp {
		r := j % mesh.Pr
		if a.Rows == a.Cols {
			r = rowStripe[j]
		}
		xp[j] = mesh.PartAt(r, colStripe[j])
	}
	yp := make([]int, a.Rows)
	for i := range yp {
		c := i % mesh.Pc
		if a.Rows == a.Cols {
			c = colStripe[i]
		}
		yp[i] = mesh.PartAt(rowStripe[i], c)
	}
	return &distrib.Distribution{A: a, K: k, Owner: owner, XPart: xp, YPart: yp, Fused: false}
}

// OneDB is the 1D-b method of Boman et al.: starting from a 1D rowwise
// partition (which fixes the vector partition), each off-diagonal block
// A_ℓk is reassigned to the processor at mesh cell (row(ℓ), col(k)). The
// expand then stays within mesh columns and the fold within mesh rows,
// bounding latency like the checkerboard, but the nonzero redistribution
// disturbs the load balance and volume of the 1D partition (the paper's
// §V critique).
func OneDB(a *sparse.CSR, rowParts []int, k int, opt Options) *distrib.Distribution {
	mesh := core.NewMesh(k)
	xp, yp := vecpart.FromRowParts(a, rowParts, k)
	owner := make([]int, a.NNZ())
	p := 0
	for i := 0; i < a.Rows; i++ {
		l := yp[i]
		for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
			kk := xp[a.ColIdx[q]]
			if l == kk {
				owner[p] = l
			} else {
				owner[p] = mesh.PartAt(mesh.RowOf(l), mesh.ColOf(kk))
			}
			p++
		}
	}
	return &distrib.Distribution{A: a, K: k, Owner: owner, XPart: xp, YPart: yp, Fused: false}
}
