package partition

import (
	"math/rand"
	"testing"

	"repro/internal/hypergraph"
)

// mcInstance: a hypergraph whose vertices carry two constraint weights
// anti-correlated by halves — single-constraint balance on the sum would
// allow putting all of constraint 0 on one side.
func mcInstance(n int) (*hypergraph.H, [][]int) {
	b := hypergraph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddNet(1, i, i+1)
	}
	h := b.Build()
	w := make([][]int, 2)
	w[0] = make([]int, n)
	w[1] = make([]int, n)
	for v := 0; v < n; v++ {
		if v < n/2 {
			w[0][v] = 3
			w[1][v] = 1
		} else {
			w[0][v] = 1
			w[1][v] = 3
		}
	}
	return h, w
}

func constraintLoads(parts []int, w [][]int, k int) [][]int {
	out := make([][]int, len(w))
	for c := range w {
		out[c] = make([]int, k)
		for v, p := range parts {
			out[c][p] += w[c][v]
		}
	}
	return out
}

func TestPartitionMCBalancesEveryConstraint(t *testing.T) {
	h, w := mcInstance(400)
	const k = 4
	parts := PartitionMC(h, w, Config{K: k, Seed: 1})
	loads := constraintLoads(parts, w, k)
	for c := range loads {
		var sum, max int
		for _, x := range loads[c] {
			sum += x
			if x > max {
				max = x
			}
		}
		imb := float64(max)/(float64(sum)/float64(k)) - 1
		if imb > 0.12 {
			t.Errorf("constraint %d imbalance = %.3f (loads %v)", c, imb, loads[c])
		}
	}
}

func TestPartitionMCCutReasonable(t *testing.T) {
	h, w := mcInstance(400)
	parts := PartitionMC(h, w, Config{K: 4, Seed: 2})
	cut := hypergraph.ConnectivityMinusOne(h, parts, 4)
	// A chain cut into 4 balanced-by-two-constraints pieces: the
	// anti-correlated weights force interleaving, but the cut should stay
	// far below random (~300).
	if cut > 90 {
		t.Errorf("cut = %d, want small", cut)
	}
}

func TestPartitionMCSingleConstraintMatchesScalar(t *testing.T) {
	h := chainHypergraph(200)
	w := [][]int{make([]int, 200)}
	for v := range w[0] {
		w[0][v] = 1
	}
	parts := PartitionMC(h, w, Config{K: 4, Seed: 3})
	if imb := hypergraph.Imbalance(h, parts, 4); imb > 0.08 {
		t.Errorf("imbalance = %.3f", imb)
	}
	cut := hypergraph.ConnectivityMinusOne(h, parts, 4)
	if cut > 8 {
		t.Errorf("cut = %d on a chain", cut)
	}
}

func TestPartitionMCNoConstraintsFallsBack(t *testing.T) {
	h := chainHypergraph(64)
	parts := PartitionMC(h, nil, Config{K: 2, Seed: 4})
	if cut := hypergraph.ConnectivityMinusOne(h, parts, 2); cut != 1 {
		t.Errorf("fallback cut = %d", cut)
	}
}

func TestPartitionMCValidOutput(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		n := 30 + r.Intn(100)
		b := hypergraph.NewBuilder(n)
		for i := 0; i < n; i++ {
			b.AddNet(1, r.Intn(n), r.Intn(n), r.Intn(n))
		}
		h := b.Build()
		nc := 1 + r.Intn(3)
		w := make([][]int, nc)
		for c := range w {
			w[c] = make([]int, n)
			for v := range w[c] {
				w[c][v] = r.Intn(5)
			}
		}
		k := 2 + r.Intn(6)
		parts := PartitionMC(h, w, Config{K: k, Seed: int64(trial)})
		for _, p := range parts {
			if p < 0 || p >= k {
				t.Fatalf("trial %d: part out of range", trial)
			}
		}
	}
}
