package partition

import (
	"math/rand"

	"repro/internal/hypergraph"
)

// bisect computes a two-way partition of h with side weight bounds maxW,
// where side 0 will be split into k1 parts and side 1 into k2. It coarsens
// multilevel, tries several initial partitions at the coarsest level, then
// refines on the way back up.
func bisect(h *hypergraph.H, maxW [2]int, k1, k2 int, cfg Config, r *rand.Rand) []int8 {
	type level struct {
		fine     *hypergraph.H
		toCoarse []int
	}
	var levels []level
	cur := h
	for cur.NumV > cfg.CoarsenTo {
		coarse, toCoarse := coarsen(cur, r)
		if float64(coarse.NumV) > 0.95*float64(cur.NumV) {
			break // matching stalled; stop coarsening
		}
		levels = append(levels, level{fine: cur, toCoarse: toCoarse})
		cur = coarse
	}

	side := initialBisection(cur, maxW, k1, k2, cfg, r)
	fmRefine(cur, side, maxW, cfg.Passes, r)

	for i := len(levels) - 1; i >= 0; i-- {
		lv := levels[i]
		fineSide := make([]int8, lv.fine.NumV)
		for v := 0; v < lv.fine.NumV; v++ {
			fineSide[v] = side[lv.toCoarse[v]]
		}
		side = fineSide
		fmRefine(lv.fine, side, maxW, cfg.Passes, r)
	}
	return side
}

// initialBisection tries cfg.Runs greedy-hypergraph-growing starts plus a
// weight-balancing greedy start, FM-refines each, and keeps the best by
// (feasibility, cut, max overweight).
func initialBisection(h *hypergraph.H, maxW [2]int, k1, k2 int, cfg Config, r *rand.Rand) []int8 {
	totalW := h.TotalVWeight()
	target0 := int(float64(totalW) * float64(k1) / float64(k1+k2))

	type candidate struct {
		side []int8
		cut  int
		over int
	}
	evaluate := func(side []int8) candidate {
		cut := fmRefine(h, side, maxW, 2, r)
		w := [2]int{}
		for v, s := range side {
			w[s] += h.VWeight[v]
		}
		over := maxInt(0, maxInt(w[0]-maxW[0], w[1]-maxW[1]))
		return candidate{side: side, cut: cut, over: over}
	}
	better := func(a, b candidate) bool {
		if (a.over == 0) != (b.over == 0) {
			return a.over == 0
		}
		if a.cut != b.cut {
			return a.cut < b.cut
		}
		return a.over < b.over
	}

	var best candidate
	haveBest := false
	consider := func(side []int8) {
		c := evaluate(side)
		if !haveBest || better(c, best) {
			best = c
			haveBest = true
		}
	}

	for run := 0; run < cfg.Runs; run++ {
		consider(growSide(h, target0, r))
	}
	consider(greedyBalance(h, target0))
	return best.side
}

// growSide grows side 0 from a random seed vertex by net-BFS until it
// reaches the target weight; everything else is side 1.
func growSide(h *hypergraph.H, target0 int, r *rand.Rand) []int8 {
	side := make([]int8, h.NumV)
	for i := range side {
		side[i] = 1
	}
	visited := make([]bool, h.NumV)
	w0 := 0
	queue := make([]int, 0, h.NumV)
	head := 0
	addVertex := func(v int) {
		if !visited[v] {
			visited[v] = true
			queue = append(queue, v)
		}
	}
	addVertex(r.Intn(h.NumV))
	for w0 < target0 {
		if head == len(queue) {
			// Disconnected: restart from an unvisited vertex.
			v := -1
			for trial := 0; trial < 16; trial++ {
				u := r.Intn(h.NumV)
				if !visited[u] {
					v = u
					break
				}
			}
			if v < 0 {
				for u := 0; u < h.NumV; u++ {
					if !visited[u] {
						v = u
						break
					}
				}
			}
			if v < 0 {
				break
			}
			addVertex(v)
		}
		v := queue[head]
		head++
		side[v] = 0
		w0 += h.VWeight[v]
		for _, n := range h.Nets(v) {
			if h.NetSize(n) > coarsenNetLimit {
				continue
			}
			for _, u := range h.Pins(n) {
				addVertex(u)
			}
		}
	}
	return side
}

// greedyBalance assigns vertices in decreasing weight to whichever side is
// further below its share — robust when a few vertices dominate the weight.
func greedyBalance(h *hypergraph.H, target0 int) []int8 {
	order := make([]int, h.NumV)
	for i := range order {
		order[i] = i
	}
	// Sort by decreasing weight (stable enough with simple sort).
	sortByWeightDesc(order, h.VWeight)
	side := make([]int8, h.NumV)
	total := h.TotalVWeight()
	target1 := total - target0
	w := [2]int{}
	for _, v := range order {
		// Relative slack.
		d0 := float64(target0-w[0]) / float64(maxInt(target0, 1))
		d1 := float64(target1-w[1]) / float64(maxInt(target1, 1))
		if d0 >= d1 {
			side[v] = 0
			w[0] += h.VWeight[v]
		} else {
			side[v] = 1
			w[1] += h.VWeight[v]
		}
	}
	return side
}

func sortByWeightDesc(order []int, w []int) {
	// Counting-sort-free path: simple quicksort via sort.Slice would
	// allocate a closure; this is a hot path only at the coarsest level,
	// so clarity wins.
	quickSortDesc(order, w, 0, len(order)-1)
}

func quickSortDesc(order, w []int, lo, hi int) {
	for lo < hi {
		p := order[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for w[order[i]] > w[p] {
				i++
			}
			for w[order[j]] < w[p] {
				j--
			}
			if i <= j {
				order[i], order[j] = order[j], order[i]
				i++
				j--
			}
		}
		if j-lo < hi-i {
			quickSortDesc(order, w, lo, j)
			lo = i
		} else {
			quickSortDesc(order, w, i, hi)
			hi = j
		}
	}
}
