package partition

import "repro/internal/hypergraph"

// PartitionMulti computes a K-way partition of h for every K in ks. When
// every K is a power of two, all of them are derived from a single
// recursive-bisection run at Kmax = max(ks): the recursion tree of a
// power-of-two run halves the part range at every level, so the node at
// depth d covering parts [b, b+Kmax/2^d) is exactly one part of the
// (2^d)-way partition, and its capacity bound cell·(Kmax/2^d) equals the
// bound a direct 2^d-way run would use. Projecting labels with an integer
// division therefore yields partitions with the same balance guarantee and
// the same per-level bisection quality as direct runs — only the RNG
// realization differs — at roughly the cost of the deepest run alone
// instead of the sum over all requested K values.
//
// The partition returned for Kmax is bit-identical to Partition(h, cfg)
// with cfg.K = Kmax. If any K is not a power of two, every K falls back to
// an independent Partition call.
func PartitionMulti(h *hypergraph.H, cfg Config, ks []int) map[int][]int {
	out := make(map[int][]int, len(ks))
	if len(ks) == 0 {
		return out
	}
	kmax := ks[0]
	shareable := true
	for _, k := range ks {
		if k > kmax {
			kmax = k
		}
		if k < 1 || k&(k-1) != 0 {
			shareable = false
		}
	}
	if !shareable {
		for _, k := range ks {
			if _, dup := out[k]; dup {
				continue
			}
			c := cfg
			c.K = k
			out[k] = Partition(h, c)
		}
		return out
	}

	c := cfg
	c.K = kmax
	base := Partition(h, c)
	for _, k := range ks {
		if _, dup := out[k]; dup {
			continue
		}
		out[k] = ProjectPow2(base, kmax, k)
	}
	return out
}

// ProjectPow2 derives the k-way partition from a kmax-way recursive-
// bisection result, for powers of two k ≤ kmax: the depth-d node of a
// power-of-two run covers exactly kmax/2^d consecutive part labels under
// the capacity bound a direct (2^d)-way run would use, so grouping labels
// by integer division reads the tree's internal level off the leaves.
// k == kmax returns the input unchanged. Callers must ensure both counts
// are powers of two with k dividing kmax; anything else panics.
func ProjectPow2(base []int, kmax, k int) []int {
	if k < 1 || k&(k-1) != 0 || kmax&(kmax-1) != 0 || kmax%k != 0 {
		panic("partition: ProjectPow2 requires powers of two with k dividing kmax")
	}
	if k == kmax {
		return base
	}
	group := kmax / k
	parts := make([]int, len(base))
	for v, p := range base {
		parts[v] = p / group
	}
	return parts
}
