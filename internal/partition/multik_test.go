package partition

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/hypergraph"
)

func testHypergraph(t *testing.T) *hypergraph.H {
	t.Helper()
	a := gen.PowerLaw(gen.PowerLawConfig{
		Rows: 3000, Cols: 3000, NNZ: 24000, Beta: 0.5, Symmetric: true, Locality: 0.8,
	}, 3)
	return hypergraph.ColumnNetModel(a)
}

func TestPartitionMultiMaxMatchesDirect(t *testing.T) {
	h := testHypergraph(t)
	cfg := Config{Seed: 7}
	multi := PartitionMulti(h, cfg, []int{4, 16, 64})
	cfg.K = 64
	direct := Partition(h, cfg)
	got := multi[64]
	if len(got) != len(direct) {
		t.Fatalf("length %d != %d", len(got), len(direct))
	}
	for v := range got {
		if got[v] != direct[v] {
			t.Fatalf("vertex %d: multi %d != direct %d", v, got[v], direct[v])
		}
	}
}

func TestPartitionMultiProjectionValidAndBalanced(t *testing.T) {
	h := testHypergraph(t)
	cfg := Config{Seed: 7, Epsilon: 0.03}
	ks := []int{4, 16, 64}
	multi := PartitionMulti(h, cfg, ks)
	total := h.TotalVWeight()
	for _, k := range ks {
		parts := multi[k]
		if len(parts) != h.NumV {
			t.Fatalf("K=%d: %d labels for %d vertices", k, len(parts), h.NumV)
		}
		w := make([]int, k)
		for v, p := range parts {
			if p < 0 || p >= k {
				t.Fatalf("K=%d: label %d out of range", k, p)
			}
			w[p] += h.VWeight[v]
		}
		// The projected parts inherit the direct run's capacity bound
		// cell·(Kmax/K) = total/K·(1+eps); allow integer-rounding slack.
		bound := int(float64(total)/float64(k)*(1+cfg.Epsilon)) + k
		for p, wp := range w {
			if wp > bound {
				t.Errorf("K=%d part %d: weight %d above bound %d", k, p, wp, bound)
			}
		}
	}
	// Nesting: the K=16 partition refines the K=4 partition (labels group
	// by integer division), because both project from one tree.
	for v := range multi[16] {
		if multi[16][v]/4 != multi[4][v] {
			t.Fatalf("vertex %d: K=16 label %d does not refine K=4 label %d",
				v, multi[16][v], multi[4][v])
		}
	}
}

func TestPartitionMultiNonPowerOfTwoFallsBack(t *testing.T) {
	h := testHypergraph(t)
	cfg := Config{Seed: 7}
	multi := PartitionMulti(h, cfg, []int{3, 8})
	for _, k := range []int{3, 8} {
		cfg.K = k
		direct := Partition(h, cfg)
		for v := range direct {
			if multi[k][v] != direct[v] {
				t.Fatalf("K=%d vertex %d: fallback %d != direct %d", k, v, multi[k][v], direct[v])
			}
		}
	}
}
