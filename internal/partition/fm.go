package partition

import (
	"math/rand"

	"repro/internal/hypergraph"
)

// fmRefine runs up to `passes` Fiduccia–Mattheyses passes on a bisection,
// minimizing the cut-net cost subject to side weight bounds maxW. When a
// side exceeds its bound (possible with vertices heavier than a part),
// moves that reduce the maximum side weight are permitted so the pass can
// still improve balance. side is modified in place; returns the final cut.
func fmRefine(h *hypergraph.H, side []int8, maxW [2]int, passes int, r *rand.Rand) int {
	st := newFMState(h, side, maxW)
	for p := 0; p < passes; p++ {
		if improved := st.pass(r); !improved {
			break
		}
	}
	return st.cut
}

type fmState struct {
	h    *hypergraph.H
	side []int8
	w    [2]int
	maxW [2]int
	pin  [2][]int // pin[s][n]: pins of net n on side s
	cut  int

	gain   []int
	locked []bool
	// Gain bucket lists per side.
	off    int // gain offset so indices are non-negative
	head   [2][]int
	next   []int
	prev   []int
	curMax [2]int
	moves  []int // order of moved vertices in current pass
}

func newFMState(h *hypergraph.H, side []int8, maxW [2]int) *fmState {
	st := &fmState{h: h, side: side, maxW: maxW}
	st.pin[0] = make([]int, h.NumN)
	st.pin[1] = make([]int, h.NumN)
	for v := 0; v < h.NumV; v++ {
		st.w[side[v]] += h.VWeight[v]
	}
	for n := 0; n < h.NumN; n++ {
		for _, v := range h.Pins(n) {
			st.pin[side[v]][n]++
		}
		if st.pin[0][n] > 0 && st.pin[1][n] > 0 {
			st.cut += h.NCost[n]
		}
	}
	st.gain = make([]int, h.NumV)
	st.locked = make([]bool, h.NumV)
	st.next = make([]int, h.NumV)
	st.prev = make([]int, h.NumV)

	// Maximum possible |gain|: the largest per-vertex incident net cost sum.
	maxG := 1
	for v := 0; v < h.NumV; v++ {
		s := 0
		for _, n := range h.Nets(v) {
			s += h.NCost[n]
		}
		if s > maxG {
			maxG = s
		}
	}
	st.off = maxG
	st.head[0] = make([]int, 2*maxG+1)
	st.head[1] = make([]int, 2*maxG+1)
	return st
}

const nilV = -1

func (st *fmState) computeGain(v int) int {
	s := st.side[v]
	g := 0
	for _, n := range st.h.Nets(v) {
		if st.pin[s][n] == 1 {
			g += st.h.NCost[n] // moving v uncuts (or keeps uncut) this net
		}
		if st.pin[1-s][n] == 0 {
			g -= st.h.NCost[n] // moving v cuts this net
		}
	}
	return g
}

func (st *fmState) bucketInsert(v int) {
	s := st.side[v]
	idx := st.gain[v] + st.off
	st.next[v] = st.head[s][idx] - 1 // head stores id+1, 0 = empty
	st.prev[v] = nilV
	if st.next[v] != nilV {
		st.prev[st.next[v]] = v
	}
	st.head[s][idx] = v + 1
	if idx > st.curMax[s] {
		st.curMax[s] = idx
	}
}

func (st *fmState) bucketRemove(v int) {
	s := st.side[v]
	idx := st.gain[v] + st.off
	if st.prev[v] != nilV {
		st.next[st.prev[v]] = st.next[v]
	} else {
		st.head[s][idx] = st.next[v] + 1
	}
	if st.next[v] != nilV {
		st.prev[st.next[v]] = st.prev[v]
	}
}

func (st *fmState) updateGain(v, delta int) {
	if st.locked[v] {
		return
	}
	st.bucketRemove(v)
	st.gain[v] += delta
	st.bucketInsert(v)
}

// bestFrom returns the highest-gain unlocked vertex on side s, or -1.
func (st *fmState) bestFrom(s int8) int {
	for st.curMax[s] >= 0 {
		if id := st.head[s][st.curMax[s]]; id != 0 {
			return id - 1
		}
		st.curMax[s]--
	}
	return -1
}

// legalMove reports whether moving v (weight wv) from side s is allowed:
// the destination stays within bound, or the move strictly reduces the
// maximum side weight (rescue mode for oversized vertices).
func (st *fmState) legalMove(v int) bool {
	s := st.side[v]
	wv := st.h.VWeight[v]
	if st.w[1-s]+wv <= st.maxW[1-s] {
		return true
	}
	return st.w[1-s]+wv < st.w[s]
}

// applyMove moves v across and updates pin counts, cut, and neighbor gains.
func (st *fmState) applyMove(v int) {
	f := st.side[v]
	t := 1 - f
	st.cut -= st.gain[v]
	for _, n := range st.h.Nets(v) {
		cost := st.h.NCost[n]
		// Before-move updates.
		switch st.pin[t][n] {
		case 0: // net becomes cut; every other F pin now gains from following
			for _, u := range st.h.Pins(n) {
				if u != v {
					st.updateGain(u, cost)
				}
			}
		case 1: // the lone T pin no longer uncuts the net by moving back
			for _, u := range st.h.Pins(n) {
				if u != v && st.side[u] == int8(t) {
					st.updateGain(u, -cost)
					break
				}
			}
		}
		st.pin[f][n]--
		st.pin[t][n]++
		// After-move updates.
		switch st.pin[f][n] {
		case 0: // net now internal to T; moving any pin would cut it
			for _, u := range st.h.Pins(n) {
				if u != v {
					st.updateGain(u, -cost)
				}
			}
		case 1: // the lone remaining F pin can uncut the net
			for _, u := range st.h.Pins(n) {
				if u != v && st.side[u] == int8(f) {
					st.updateGain(u, cost)
					break
				}
			}
		}
	}
	st.w[f] -= st.h.VWeight[v]
	st.w[t] += st.h.VWeight[v]
	st.side[v] = int8(t)
	st.locked[v] = true
	st.moves = append(st.moves, v)
}

// pass runs one FM pass with prefix rollback; returns whether the cut or
// the balance improved.
func (st *fmState) pass(r *rand.Rand) bool {
	numV := st.h.NumV
	for v := 0; v < numV; v++ {
		st.locked[v] = false
		st.gain[v] = st.computeGain(v)
	}
	for s := 0; s < 2; s++ {
		for i := range st.head[s] {
			st.head[s][i] = 0
		}
		st.curMax[s] = len(st.head[s]) - 1
	}
	// Insert in random order so ties break differently between passes.
	for _, v := range r.Perm(numV) {
		st.bucketInsert(v)
	}
	st.moves = st.moves[:0]

	startCut := st.cut
	startBal := maxInt(st.w[0]-st.maxW[0], st.w[1]-st.maxW[1])
	bestCut := st.cut
	bestBal := startBal
	bestIdx := 0
	negRun := 0
	maxNegRun := maxInt(120, numV/50)

	// Feasibility first: while a side exceeds its bound, reducing the
	// overweight dominates the cut; once feasible, the cut dominates.
	better := func(cut, bal int) bool {
		feasNew, feasBest := bal <= 0, bestBal <= 0
		if feasNew != feasBest {
			return feasNew
		}
		if !feasNew { // both infeasible
			if bal != bestBal {
				return bal < bestBal
			}
			return cut < bestCut
		}
		if cut != bestCut {
			return cut < bestCut
		}
		return bal < bestBal
	}

	for len(st.moves) < numV {
		v := st.pickMove()
		if v < 0 {
			break
		}
		st.bucketRemove(v)
		st.applyMove(v)
		bal := maxInt(st.w[0]-st.maxW[0], st.w[1]-st.maxW[1])
		if better(st.cut, bal) {
			bestCut, bestBal, bestIdx = st.cut, bal, len(st.moves)
			negRun = 0
		} else {
			negRun++
			if negRun > maxNegRun {
				break
			}
		}
	}
	// Roll back to the best prefix.
	for i := len(st.moves) - 1; i >= bestIdx; i-- {
		st.undoMove(st.moves[i])
	}
	st.moves = st.moves[:bestIdx]
	return st.cut < startCut || bestBal < startBal
}

// pickMove selects the legal unlocked vertex with the highest gain across
// both sides; ties prefer moving off the heavier side. While a side is
// over its bound, only moves off that side are considered, so the pass
// drains it even when those moves cost cut.
func (st *fmState) pickMove() int {
	v0 := st.bestFrom(0)
	v1 := st.bestFrom(1)
	for {
		over0 := st.w[0] > st.maxW[0]
		over1 := st.w[1] > st.maxW[1]
		var cand int
		switch {
		case v0 < 0 && v1 < 0:
			return -1
		case over0 && !over1 && v0 >= 0:
			cand = v0
		case over1 && !over0 && v1 >= 0:
			cand = v1
		case v1 < 0:
			cand = v0
		case v0 < 0:
			cand = v1
		case st.gain[v0] > st.gain[v1]:
			cand = v0
		case st.gain[v1] > st.gain[v0]:
			cand = v1
		case st.w[0] >= st.w[1]:
			cand = v0
		default:
			cand = v1
		}
		if st.legalMove(cand) {
			return cand
		}
		// Illegal: remove from bucket (stays unlocked but unmovable this
		// step); it will be re-inserted on its next gain update.
		st.bucketRemove(cand)
		st.locked[cand] = true // treat as locked for the rest of the pass
		if cand == v0 {
			v0 = st.bestFrom(0)
		} else {
			v1 = st.bestFrom(1)
		}
	}
}

// undoMove reverses a move without touching gains (used after a pass).
func (st *fmState) undoMove(v int) {
	f := st.side[v] // current side (the move target)
	t := 1 - f      // original side
	for _, n := range st.h.Nets(v) {
		st.pin[f][n]--
		st.pin[t][n]++
	}
	st.w[f] -= st.h.VWeight[v]
	st.w[t] += st.h.VWeight[v]
	st.side[v] = t
	st.cut += st.gain[v] // gain was banked when the move applied
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
