package partition

import (
	"hash/fnv"
	"math/rand"
	"sort"

	"repro/internal/hypergraph"
)

// coarsenNetLimit: nets larger than this are ignored during matching; huge
// nets carry almost no connectivity signal and would make matching
// quadratic.
const coarsenNetLimit = 400

// coarsen contracts a heavy-connectivity matching of h and returns the
// coarse hypergraph plus the fine→coarse vertex map. Matched pairs share at
// least one net; the score of a candidate pair is Σ cost(n)/(|n|−1) over
// shared nets (the expected cut saving). Cluster weight is capped so a few
// heavy vertices cannot swallow the graph.
func coarsen(h *hypergraph.H, r *rand.Rand) (*hypergraph.H, []int) {
	numV := h.NumV
	match := make([]int, numV)
	for i := range match {
		match[i] = -1
	}
	totalW := h.TotalVWeight()
	capW := totalW / 8
	if capW < 2 {
		capW = 2
	}

	score := make([]float64, numV)
	touched := make([]int, 0, 64)
	order := r.Perm(numV)
	for _, v := range order {
		if match[v] != -1 {
			continue
		}
		touched = touched[:0]
		for _, n := range h.Nets(v) {
			sz := h.NetSize(n)
			if sz < 2 || sz > coarsenNetLimit {
				continue
			}
			w := float64(h.NCost[n]) / float64(sz-1)
			for _, u := range h.Pins(n) {
				if u == v || match[u] != -1 {
					continue
				}
				if score[u] == 0 {
					touched = append(touched, u)
				}
				score[u] += w
			}
		}
		best, bestScore := -1, 0.0
		for _, u := range touched {
			if score[u] > bestScore && h.VWeight[v]+h.VWeight[u] <= capW {
				best, bestScore = u, score[u]
			}
			score[u] = 0
		}
		if best >= 0 {
			match[v] = best
			match[best] = v
		} else {
			match[v] = v
		}
	}

	// Assign coarse ids.
	toCoarse := make([]int, numV)
	for i := range toCoarse {
		toCoarse[i] = -1
	}
	nc := 0
	for v := 0; v < numV; v++ {
		if toCoarse[v] != -1 {
			continue
		}
		toCoarse[v] = nc
		if m := match[v]; m != v && m >= 0 {
			toCoarse[m] = nc
		}
		nc++
	}

	coarse := &hypergraph.H{NumV: nc, VWeight: make([]int, nc)}
	for v := 0; v < numV; v++ {
		coarse.VWeight[toCoarse[v]] += h.VWeight[v]
	}

	// Remap nets: dedupe pins within a net, drop nets below two pins, and
	// merge structurally identical nets (their costs add) — essential for
	// speed on banded matrices whose column nets collapse together.
	type netRec struct{ cost, ptr, len int }
	var pins []int
	var recs []netRec
	seen := make([]int, nc)
	for i := range seen {
		seen[i] = -1
	}
	for n := 0; n < h.NumN; n++ {
		start := len(pins)
		for _, v := range h.Pins(n) {
			cv := toCoarse[v]
			if seen[cv] != n {
				seen[cv] = n
				pins = append(pins, cv)
			}
		}
		if len(pins)-start < 2 {
			pins = pins[:start]
			continue
		}
		seg := pins[start:]
		sort.Ints(seg)
		recs = append(recs, netRec{cost: h.NCost[n], ptr: start, len: len(seg)})
	}

	// Merge identical nets by hashing sorted pin lists.
	byHash := make(map[uint64][]int, len(recs))
	merged := make([]int, 0, len(recs)) // indices of representative recs
	for idx := range recs {
		hsh := hashPins(pins[recs[idx].ptr : recs[idx].ptr+recs[idx].len])
		dup := -1
		for _, other := range byHash[hsh] {
			if samePins(pins, recs[other], recs[idx]) {
				dup = other
				break
			}
		}
		if dup >= 0 {
			recs[dup].cost += recs[idx].cost
		} else {
			byHash[hsh] = append(byHash[hsh], idx)
			merged = append(merged, idx)
		}
	}

	coarse.NumN = len(merged)
	coarse.NCost = make([]int, len(merged))
	coarse.NetPtr = make([]int, len(merged)+1)
	coarse.NetPins = make([]int, 0, len(pins))
	for i, idx := range merged {
		rec := recs[idx]
		coarse.NCost[i] = rec.cost
		coarse.NetPins = append(coarse.NetPins, pins[rec.ptr:rec.ptr+rec.len]...)
		coarse.NetPtr[i+1] = len(coarse.NetPins)
	}
	rebuildVtxIndex(coarse)
	return coarse, toCoarse
}

func hashPins(pins []int) uint64 {
	f := fnv.New64a()
	var b [8]byte
	for _, p := range pins {
		b[0] = byte(p)
		b[1] = byte(p >> 8)
		b[2] = byte(p >> 16)
		b[3] = byte(p >> 24)
		b[4] = byte(p >> 32)
		b[5] = byte(p >> 40)
		b[6] = byte(p >> 48)
		b[7] = byte(p >> 56)
		f.Write(b[:])
	}
	return f.Sum64()
}

func samePins(pins []int, a, b struct{ cost, ptr, len int }) bool {
	if a.len != b.len {
		return false
	}
	pa, pb := pins[a.ptr:a.ptr+a.len], pins[b.ptr:b.ptr+b.len]
	for i := range pa {
		if pa[i] != pb[i] {
			return false
		}
	}
	return true
}
