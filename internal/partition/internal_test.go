package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hypergraph"
)

// TestSubHypergraphNetSplitting: net splitting must preserve the
// connectivity-1 decomposition — the K-way connectivity-1 metric equals
// the sum of bisection cuts over the recursion tree. Verify one level: for
// a 2-way side assignment, cut(h) == conn1(h) and the two sub-hypergraphs
// contain exactly the within-side pin groups of size >= 2.
func TestSubHypergraphNetSplitting(t *testing.T) {
	b := hypergraph.NewBuilder(6)
	b.AddNet(2, 0, 1, 2)    // will straddle
	b.AddNet(1, 3, 4, 5)    // inside side 1
	b.AddNet(3, 0, 3)       // straddles with one pin each side -> drops
	b.AddNet(1, 1, 2, 4, 5) // 2 pins each side -> splits into two nets
	h := b.Build()
	side := []int8{0, 0, 0, 1, 1, 1}

	h0, ids0 := subHypergraph(h, side, 0, identity(6))
	h1, ids1 := subHypergraph(h, side, 1, identity(6))

	if h0.NumV != 3 || h1.NumV != 3 {
		t.Fatalf("vertex counts %d/%d", h0.NumV, h1.NumV)
	}
	if ids0[0] != 0 || ids1[0] != 3 {
		t.Fatalf("id maps wrong: %v %v", ids0, ids1)
	}
	// Side 0 keeps: net0 {0,1,2} cost 2; net3's side-0 pins {1,2} cost 1.
	if h0.NumN != 2 {
		t.Fatalf("side-0 nets = %d, want 2", h0.NumN)
	}
	// Side 1 keeps: net1 {3,4,5} cost 1; net3's side-1 pins {4,5} cost 1.
	if h1.NumN != 2 {
		t.Fatalf("side-1 nets = %d, want 2", h1.NumN)
	}
	totalCost := 0
	for _, c := range append(append([]int{}, h0.NCost...), h1.NCost...) {
		totalCost += c
	}
	// net2 (cost 3) dropped on both sides: single pins.
	if totalCost != 2+1+1+1 {
		t.Fatalf("split net cost sum = %d", totalCost)
	}
}

// TestRBCutAdditivity: the K-way connectivity-1 equals the sum of the
// 2-way cut-net costs along the recursive-bisection tree when nets are
// split. We verify indirectly: partition a random hypergraph and recompute
// the metric; they must be consistent (the partitioner's internal sums are
// not exposed, so this guards the splitting rule via metric sanity).
func TestRBCutAdditivity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 30 + r.Intn(60)
		b := hypergraph.NewBuilder(n)
		for i := 0; i < n; i++ {
			b.AddNet(1, r.Intn(n), r.Intn(n), r.Intn(n), r.Intn(n))
		}
		h := b.Build()
		parts := Partition(h, Config{K: 4, Seed: seed})
		conn := hypergraph.ConnectivityMinusOne(h, parts, 4)
		cut := hypergraph.CutNets(h, parts, 4)
		// conn-1 >= cut always; conn-1 <= 3*cut for K=4.
		return conn >= cut && conn <= 3*cut
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyBalanceHandlesHeavyVertices(t *testing.T) {
	b := hypergraph.NewBuilder(5)
	b.SetWeight(0, 1000)
	for i := 1; i < 5; i++ {
		b.SetWeight(i, 10)
	}
	h := b.Build()
	side := greedyBalance(h, 520) // target side-0 weight
	w := [2]int{}
	for v, s := range side {
		w[s] += h.VWeight[v]
	}
	// The heavy vertex goes to side 0; the light ones to side 1.
	if side[0] != 0 {
		t.Errorf("heavy vertex on side %d", side[0])
	}
	if w[1] != 40 {
		t.Errorf("side weights %v", w)
	}
}

func TestGrowSideReachesTarget(t *testing.T) {
	h := chainHypergraph(100)
	r := rand.New(rand.NewSource(5))
	side := growSide(h, 50, r)
	w0 := 0
	for _, s := range side {
		if s == 0 {
			w0++
		}
	}
	if w0 < 50 || w0 > 60 {
		t.Errorf("grown side weight = %d, want ~50", w0)
	}
}

func TestQuickSortDesc(t *testing.T) {
	w := []int{5, 1, 9, 3, 9, 0, 7}
	order := []int{0, 1, 2, 3, 4, 5, 6}
	sortByWeightDesc(order, w)
	for i := 1; i < len(order); i++ {
		if w[order[i]] > w[order[i-1]] {
			t.Fatalf("not descending at %d: %v", i, order)
		}
	}
}

func TestCoarsenRespectsWeightCap(t *testing.T) {
	// Two heavy vertices sharing a net must not merge (combined weight
	// would exceed total/8).
	b := hypergraph.NewBuilder(10)
	b.SetWeight(0, 50)
	b.SetWeight(1, 50)
	for i := 2; i < 10; i++ {
		b.SetWeight(i, 1)
	}
	b.AddNet(1, 0, 1)
	for i := 2; i < 9; i++ {
		b.AddNet(1, i, i+1)
	}
	h := b.Build()
	r := rand.New(rand.NewSource(6))
	coarse, toCoarse := coarsen(h, r)
	if toCoarse[0] == toCoarse[1] {
		t.Error("heavy vertices merged despite the cap")
	}
	if coarse.TotalVWeight() != h.TotalVWeight() {
		t.Error("weight lost in coarsening")
	}
}

func TestFMZeroNets(t *testing.T) {
	// FM on a hypergraph with no nets must terminate with cut 0 and not
	// panic.
	b := hypergraph.NewBuilder(10)
	h := b.Build()
	side := make([]int8, 10)
	for i := 5; i < 10; i++ {
		side[i] = 1
	}
	r := rand.New(rand.NewSource(7))
	if cut := fmRefine(h, side, [2]int{6, 6}, 2, r); cut != 0 {
		t.Fatalf("cut = %d on empty net set", cut)
	}
}

func TestPartitionZeroWeightVertices(t *testing.T) {
	// Medium-grain models produce weight-0 vertices; the partitioner must
	// handle them.
	b := hypergraph.NewBuilder(20)
	for i := 0; i < 20; i++ {
		if i%2 == 0 {
			b.SetWeight(i, 0)
		}
	}
	for i := 0; i+1 < 20; i++ {
		b.AddNet(1, i, i+1)
	}
	h := b.Build()
	parts := Partition(h, Config{K: 4, Seed: 9})
	for _, p := range parts {
		if p < 0 || p >= 4 {
			t.Fatal("part out of range")
		}
	}
}
