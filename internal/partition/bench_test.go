package partition

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/hypergraph"
)

func benchHypergraph() *hypergraph.H {
	m := gen.PowerLaw(gen.PowerLawConfig{
		Rows: 20000, Cols: 20000, NNZ: 120000, Beta: 0.5,
		DenseRows: 2, DenseMax: 1500, Symmetric: true, Locality: 0.9,
	}, 1)
	return hypergraph.ColumnNetModel(m)
}

func BenchmarkPartitionK16(b *testing.B) {
	h := benchHypergraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Partition(h, Config{K: 16, Seed: int64(i)})
	}
}

func BenchmarkPartitionK256(b *testing.B) {
	h := benchHypergraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Partition(h, Config{K: 256, Seed: int64(i)})
	}
}

func BenchmarkCoarsen(b *testing.B) {
	h := benchHypergraph()
	r := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = coarsen(h, r)
	}
}

func BenchmarkFMRefine(b *testing.B) {
	h := benchHypergraph()
	r := rand.New(rand.NewSource(1))
	total := h.TotalVWeight()
	maxW := [2]int{total/2 + total/20, total/2 + total/20}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		side := make([]int8, h.NumV)
		for v := range side {
			side[v] = int8(r.Intn(2))
		}
		b.StartTimer()
		_ = fmRefine(h, side, maxW, 2, r)
	}
}

// BenchmarkPartitionFineGrain measures the heaviest model: one vertex per
// nonzero.
func BenchmarkPartitionFineGrain(b *testing.B) {
	m := gen.Band(gen.BandConfig{N: 8000, MinHalfBand: 4, MaxHalfBand: 8}, 2)
	fg := hypergraph.FineGrain(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Partition(fg.H, Config{K: 64, Seed: int64(i)})
	}
}
