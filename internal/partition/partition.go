// Package partition implements a from-scratch multilevel K-way hypergraph
// partitioner in the style of PaToH (which is closed source): recursive
// bisection with heavy-connectivity-matching coarsening, greedy hypergraph
// growing initial partitions, and Fiduccia–Mattheyses boundary refinement.
// Cut nets are split between the two sides at each bisection, which makes
// the sum of bisection cuts equal the K-way connectivity−1 metric — the
// total SpMV communication volume under the standard hypergraph models.
package partition

import (
	"math/rand"

	"repro/internal/hypergraph"
)

// Config controls a K-way partitioning run.
type Config struct {
	K         int     // number of parts, ≥ 1
	Epsilon   float64 // imbalance tolerance; default 0.03
	Seed      int64   // RNG seed; same seed ⇒ same partition
	CoarsenTo int     // stop coarsening below this many vertices; default 96
	Runs      int     // initial-partition trials per bisection; default 6
	Passes    int     // FM passes per uncoarsening level; default 3
}

func (c Config) withDefaults() Config {
	if c.Epsilon <= 0 {
		c.Epsilon = 0.03
	}
	if c.CoarsenTo <= 0 {
		c.CoarsenTo = 96
	}
	if c.Runs <= 0 {
		c.Runs = 6
	}
	if c.Passes <= 0 {
		c.Passes = 3
	}
	return c
}

// Partition computes a K-way partition of h and returns the part index of
// every vertex. The imbalance target applies to vertex weight; vertices
// heavier than a part's capacity make perfect balance impossible, in which
// case the partitioner minimizes the maximum part weight best-effort (this
// is exactly the regime the paper studies for 1D partitions of dense-row
// matrices).
func Partition(h *hypergraph.H, cfg Config) []int {
	cfg = cfg.withDefaults()
	if cfg.K < 1 {
		panic("partition: K must be >= 1")
	}
	parts := make([]int, h.NumV)
	if cfg.K == 1 || h.NumV == 0 {
		return parts
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	// Global per-part capacity: proportional allocation keeps the final
	// K-way imbalance near Epsilon without per-level tolerance shrinking.
	cell := float64(h.TotalVWeight()) / float64(cfg.K) * (1 + cfg.Epsilon)
	rb(h, identity(h.NumV), cfg.K, 0, parts, cell, cfg, r)
	return parts
}

func identity(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// rb recursively bisects h (whose vertices map to original ids origID) into
// k parts labelled partBase..partBase+k-1, writing results into out.
func rb(h *hypergraph.H, origID []int, k, partBase int, out []int, cell float64, cfg Config, r *rand.Rand) {
	if k == 1 {
		for _, id := range origID {
			out[id] = partBase
		}
		return
	}
	if h.NumV <= k {
		// Fewer vertices than parts: spread them out.
		for v, id := range origID {
			out[id] = partBase + v%k
		}
		return
	}
	k1 := (k + 1) / 2
	k2 := k - k1
	maxW := [2]int{int(cell * float64(k1)), int(cell * float64(k2))}
	side := bisect(h, maxW, k1, k2, cfg, r)

	h0, ids0 := subHypergraph(h, side, 0, origID)
	h1, ids1 := subHypergraph(h, side, 1, origID)
	rb(h0, ids0, k1, partBase, out, cell, cfg, r)
	rb(h1, ids1, k2, partBase+k1, out, cell, cfg, r)
}

// subHypergraph extracts the side-s induced hypergraph with net splitting:
// each net keeps only its side-s pins; nets with fewer than two remaining
// pins are dropped (they can never be cut again). Identical split nets are
// not merged here — coarsening handles that.
func subHypergraph(h *hypergraph.H, side []int8, s int8, origID []int) (*hypergraph.H, []int) {
	newID := make([]int, h.NumV)
	var ids []int
	for v := 0; v < h.NumV; v++ {
		if side[v] == s {
			newID[v] = len(ids)
			ids = append(ids, origID[v])
		} else {
			newID[v] = -1
		}
	}
	sub := &hypergraph.H{NumV: len(ids)}
	sub.VWeight = make([]int, len(ids))
	for v := 0; v < h.NumV; v++ {
		if newID[v] >= 0 {
			sub.VWeight[newID[v]] = h.VWeight[v]
		}
	}
	netPtr := []int{0}
	var pins []int
	var costs []int
	for n := 0; n < h.NumN; n++ {
		start := len(pins)
		for _, v := range h.Pins(n) {
			if newID[v] >= 0 {
				pins = append(pins, newID[v])
			}
		}
		if len(pins)-start < 2 {
			pins = pins[:start]
			continue
		}
		netPtr = append(netPtr, len(pins))
		costs = append(costs, h.NCost[n])
	}
	sub.NumN = len(costs)
	sub.NCost = costs
	sub.NetPtr = netPtr
	sub.NetPins = pins
	rebuildVtxIndex(sub)
	return sub, ids
}

func rebuildVtxIndex(h *hypergraph.H) {
	h.VtxPtr = make([]int, h.NumV+1)
	for _, v := range h.NetPins {
		h.VtxPtr[v+1]++
	}
	for v := 0; v < h.NumV; v++ {
		h.VtxPtr[v+1] += h.VtxPtr[v]
	}
	h.VtxNets = make([]int, len(h.NetPins))
	pos := make([]int, h.NumV)
	copy(pos, h.VtxPtr[:h.NumV])
	for n := 0; n < h.NumN; n++ {
		for _, v := range h.Pins(n) {
			h.VtxNets[pos[v]] = n
			pos[v]++
		}
	}
}
