package partition

import (
	"math/rand"

	"repro/internal/hypergraph"
)

// PartitionMC computes a K-way partition under C balance constraints:
// weights[c][v] is vertex v's load in constraint c, and every part must
// stay near total_c/K in every constraint simultaneously. This is the
// multi-constraint partitioning PaToH uses for the second (column) phase
// of checkerboard 2D-b: each column carries one weight per row stripe so
// that every mesh cell — not just every mesh column — is balanced.
//
// The implementation mirrors Partition: recursive bisection with
// multilevel coarsening; the FM refinement tracks per-constraint side
// loads and accepts moves that keep (or rescue) every constraint.
func PartitionMC(h *hypergraph.H, weights [][]int, cfg Config) []int {
	cfg = cfg.withDefaults()
	if cfg.K < 1 {
		panic("partition: K must be >= 1")
	}
	if len(weights) == 0 {
		return Partition(h, cfg)
	}
	for _, w := range weights {
		if len(w) != h.NumV {
			panic("partition: constraint weight length mismatch")
		}
	}
	parts := make([]int, h.NumV)
	if cfg.K == 1 || h.NumV == 0 {
		return parts
	}
	// Coarsening and the scalar FM bookkeeping see the constraint sum as
	// the vertex weight; the vector checks happen in the MC legality
	// predicate.
	hs := *h
	hs.VWeight = make([]int, h.NumV)
	for c := range weights {
		for v, x := range weights[c] {
			hs.VWeight[v] += x
		}
	}
	h = &hs
	r := rand.New(rand.NewSource(cfg.Seed))
	cells := make([]float64, len(weights))
	for c, w := range weights {
		total := 0
		for _, x := range w {
			total += x
		}
		cells[c] = float64(total) / float64(cfg.K) * (1 + cfg.Epsilon)
	}
	rbMC(h, weights, identity(h.NumV), cfg.K, 0, parts, cells, cfg, r)
	return parts
}

func rbMC(h *hypergraph.H, weights [][]int, origID []int, k, partBase int, out []int, cells []float64, cfg Config, r *rand.Rand) {
	if k == 1 {
		for _, id := range origID {
			out[id] = partBase
		}
		return
	}
	if h.NumV <= k {
		for v, id := range origID {
			out[id] = partBase + v%k
		}
		return
	}
	k1 := (k + 1) / 2
	k2 := k - k1
	maxW := make([][2]int, len(cells))
	for c, cell := range cells {
		maxW[c] = [2]int{int(cell * float64(k1)), int(cell * float64(k2))}
	}
	side := bisectMC(h, weights, maxW, k1, k2, cfg, r)

	h0, ids0 := subHypergraph(h, side, 0, origID)
	h1, ids1 := subHypergraph(h, side, 1, origID)
	w0 := splitWeights(weights, side, 0)
	w1 := splitWeights(weights, side, 1)
	rbMC(h0, w0, ids0, k1, partBase, out, cells, cfg, r)
	rbMC(h1, w1, ids1, k2, partBase+k1, out, cells, cfg, r)
}

func splitWeights(weights [][]int, side []int8, s int8) [][]int {
	out := make([][]int, len(weights))
	for c := range weights {
		for v, sv := range side {
			if sv == s {
				out[c] = append(out[c], weights[c][v])
			}
		}
	}
	return out
}

// bisectMC: multilevel bisection with vector weights. Coarsening matches
// on connectivity as usual (scalar VWeight is the constraint sum, already
// set by the caller via summedWeights); constraint vectors are folded
// along the fine→coarse map.
func bisectMC(h *hypergraph.H, weights [][]int, maxW [][2]int, k1, k2 int, cfg Config, r *rand.Rand) []int8 {
	type level struct {
		fine     *hypergraph.H
		fineW    [][]int
		toCoarse []int
	}
	var levels []level
	cur, curW := h, weights
	for cur.NumV > cfg.CoarsenTo {
		coarse, toCoarse := coarsen(cur, r)
		if float64(coarse.NumV) > 0.95*float64(cur.NumV) {
			break
		}
		coarseW := make([][]int, len(curW))
		for c := range curW {
			coarseW[c] = make([]int, coarse.NumV)
			for v, cv := range toCoarse {
				coarseW[c][cv] += curW[c][v]
			}
		}
		levels = append(levels, level{fine: cur, fineW: curW, toCoarse: toCoarse})
		cur, curW = coarse, coarseW
	}

	side := initialBisectionMC(cur, curW, maxW, k1, k2, cfg, r)
	fmRefineMC(cur, curW, side, maxW, cfg.Passes, r)
	for i := len(levels) - 1; i >= 0; i-- {
		lv := levels[i]
		fineSide := make([]int8, lv.fine.NumV)
		for v := 0; v < lv.fine.NumV; v++ {
			fineSide[v] = side[lv.toCoarse[v]]
		}
		side = fineSide
		fmRefineMC(lv.fine, lv.fineW, side, maxW, cfg.Passes, r)
	}
	return side
}

// initialBisectionMC mirrors the scalar initial phase: several greedy
// hypergraph-growing starts (connectivity-aware) plus the weight-greedy
// start (balance-aware), each FM-refined under the vector constraints;
// best by (feasibility, cut).
func initialBisectionMC(h *hypergraph.H, weights [][]int, maxW [][2]int, k1, k2 int, cfg Config, r *rand.Rand) []int8 {
	overload := func(side []int8) int {
		worst := 0
		for c := range weights {
			w := [2]int{}
			for v, s := range side {
				w[s] += weights[c][v]
			}
			for s := 0; s < 2; s++ {
				if d := w[s] - maxW[c][s]; d > worst {
					worst = d
				}
			}
		}
		return worst
	}
	total := h.TotalVWeight()
	target0 := int(float64(total) * float64(k1) / float64(k1+k2))

	type candidate struct {
		side []int8
		cut  int
		over int
	}
	var best candidate
	haveBest := false
	consider := func(side []int8) {
		cut := fmRefineMC(h, weights, side, maxW, 2, r)
		c := candidate{side: side, cut: cut, over: overload(side)}
		if !haveBest {
			best, haveBest = c, true
			return
		}
		if (c.over == 0) != (best.over == 0) {
			if c.over == 0 {
				best = c
			}
			return
		}
		if c.over != 0 && c.over != best.over {
			if c.over < best.over {
				best = c
			}
			return
		}
		if c.cut < best.cut {
			best = c
		}
	}
	for run := 0; run < cfg.Runs; run++ {
		consider(growSide(h, target0, r))
	}
	consider(initialMC(h, weights, maxW, k1, k2, r))
	return best.side
}

// initialMC assigns vertices in decreasing total weight, placing each on
// the side with more remaining slack across constraints (relative).
func initialMC(h *hypergraph.H, weights [][]int, maxW [][2]int, k1, k2 int, r *rand.Rand) []int8 {
	numV := h.NumV
	order := make([]int, numV)
	total := make([]int, numV)
	for v := 0; v < numV; v++ {
		order[v] = v
		for c := range weights {
			total[v] += weights[c][v]
		}
	}
	sortByWeightDesc(order, total)
	side := make([]int8, numV)
	w := make([][2]int, len(weights))
	score := func(s int, v int) float64 {
		// Worst relative fill after placing v on side s.
		worst := 0.0
		for c := range weights {
			cap := maxW[c][s]
			if cap <= 0 {
				cap = 1
			}
			fill := float64(w[c][s]+weights[c][v]) / float64(cap)
			if fill > worst {
				worst = fill
			}
		}
		return worst
	}
	for _, v := range order {
		s := int8(0)
		if score(1, v) < score(0, v) {
			s = 1
		}
		side[v] = s
		for c := range weights {
			w[c][s] += weights[c][v]
		}
	}
	return side
}

// fmRefineMC is an FM pass with vector balance: a move is legal if every
// constraint stays within bound on the destination, or if it strictly
// reduces the worst relative overload. Acceptance is feasibility-first,
// exactly as in the scalar fmState.
func fmRefineMC(h *hypergraph.H, weights [][]int, side []int8, maxW [][2]int, passes int, r *rand.Rand) int {
	// Reuse the scalar engine for gains and buckets; override legality and
	// balance through a shim: temporarily treat scalar weight as the sum,
	// but do the real checks against the vectors.
	st := newFMState(h, side, [2]int{1 << 60, 1 << 60})
	w := make([][2]int, len(weights))
	for c := range weights {
		for v, s := range side {
			w[c][s] += weights[c][v]
		}
	}
	over := func() int {
		worst := 0
		for c := range weights {
			for s := 0; s < 2; s++ {
				if d := w[c][s] - maxW[c][s]; d > worst {
					worst = d
				}
			}
		}
		return worst
	}
	legal := func(v int) bool {
		s := side[v]
		ok := true
		reduces := false
		before := over()
		for c := range weights {
			if w[c][1-s]+weights[c][v] > maxW[c][1-s] {
				ok = false
			}
		}
		if ok {
			return true
		}
		// Rescue: simulate and accept if the worst overload shrinks.
		for c := range weights {
			w[c][s] -= weights[c][v]
			w[c][1-s] += weights[c][v]
		}
		if over() < before {
			reduces = true
		}
		for c := range weights {
			w[c][1-s] -= weights[c][v]
			w[c][s] += weights[c][v]
		}
		return reduces
	}

	cut := st.cut
	for pass := 0; pass < passes; pass++ {
		improved := mcPass(st, weights, w, maxW, legal, r)
		if !improved {
			break
		}
		cut = st.cut
	}
	return cut
}

// mcPass runs one FM pass with the vector-balance legality predicate.
func mcPass(st *fmState, weights [][]int, w [][2]int, maxW [][2]int, legal func(int) bool, r *rand.Rand) bool {
	h := st.h
	numV := h.NumV
	for v := 0; v < numV; v++ {
		st.locked[v] = false
		st.gain[v] = st.computeGain(v)
	}
	for s := 0; s < 2; s++ {
		for i := range st.head[s] {
			st.head[s][i] = 0
		}
		st.curMax[s] = len(st.head[s]) - 1
	}
	for _, v := range r.Perm(numV) {
		st.bucketInsert(v)
	}
	st.moves = st.moves[:0]

	overload := func() int {
		worst := 0
		for c := range weights {
			for s := 0; s < 2; s++ {
				if d := w[c][s] - maxW[c][s]; d > worst {
					worst = d
				}
			}
		}
		return worst
	}
	startCut, startBal := st.cut, overload()
	bestCut, bestBal, bestIdx := st.cut, startBal, 0
	negRun := 0
	maxNegRun := maxInt(120, numV/50)

	better := func(cut, bal int) bool {
		feasNew, feasBest := bal <= 0, bestBal <= 0
		if feasNew != feasBest {
			return feasNew
		}
		if !feasNew {
			if bal != bestBal {
				return bal < bestBal
			}
			return cut < bestCut
		}
		if cut != bestCut {
			return cut < bestCut
		}
		return bal < bestBal
	}

	for len(st.moves) < numV {
		v := st.pickMoveMC(legal)
		if v < 0 {
			break
		}
		st.bucketRemove(v)
		s := st.side[v]
		for c := range weights {
			w[c][s] -= weights[c][v]
			w[c][1-s] += weights[c][v]
		}
		st.applyMove(v)
		bal := overload()
		if better(st.cut, bal) {
			bestCut, bestBal, bestIdx = st.cut, bal, len(st.moves)
			negRun = 0
		} else if negRun++; negRun > maxNegRun {
			break
		}
	}
	for i := len(st.moves) - 1; i >= bestIdx; i-- {
		v := st.moves[i]
		s := st.side[v] // current side = move target
		for c := range weights {
			w[c][s] -= weights[c][v]
			w[c][1-s] += weights[c][v]
		}
		st.undoMove(v)
	}
	st.moves = st.moves[:bestIdx]
	return st.cut < startCut || bestBal < startBal
}

// pickMoveMC selects the best-gain vertex passing the vector legality
// predicate.
func (st *fmState) pickMoveMC(legal func(int) bool) int {
	v0 := st.bestFrom(0)
	v1 := st.bestFrom(1)
	for {
		var cand int
		switch {
		case v0 < 0 && v1 < 0:
			return -1
		case v1 < 0:
			cand = v0
		case v0 < 0:
			cand = v1
		case st.gain[v0] >= st.gain[v1]:
			cand = v0
		default:
			cand = v1
		}
		if legal(cand) {
			return cand
		}
		st.bucketRemove(cand)
		st.locked[cand] = true
		if cand == v0 {
			v0 = st.bestFrom(0)
		} else {
			v1 = st.bestFrom(1)
		}
	}
}
