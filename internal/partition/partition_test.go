package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/hypergraph"
)

// chainHypergraph: v0-v1-v2-...-v(n-1) with 2-pin nets between neighbours.
// The optimal bisection cuts exactly one net.
func chainHypergraph(n int) *hypergraph.H {
	b := hypergraph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddNet(1, i, i+1)
	}
	return b.Build()
}

func TestPartitionChain(t *testing.T) {
	h := chainHypergraph(64)
	parts := Partition(h, Config{K: 2, Seed: 1})
	cut := hypergraph.ConnectivityMinusOne(h, parts, 2)
	if cut != 1 {
		t.Errorf("chain bisection cut = %d, want 1", cut)
	}
	if imb := hypergraph.Imbalance(h, parts, 2); imb > 0.04 {
		t.Errorf("imbalance = %.3f, want <= 0.04", imb)
	}
}

func TestPartitionChainKWay(t *testing.T) {
	h := chainHypergraph(256)
	for _, k := range []int{4, 8, 16} {
		parts := Partition(h, Config{K: k, Seed: 3})
		cut := hypergraph.ConnectivityMinusOne(h, parts, k)
		if cut > 2*(k-1) {
			t.Errorf("K=%d: cut = %d, want <= %d", k, cut, 2*(k-1))
		}
		if imb := hypergraph.Imbalance(h, parts, k); imb > 0.10 {
			t.Errorf("K=%d: imbalance = %.3f", k, imb)
		}
	}
}

func TestPartitionTwoCliques(t *testing.T) {
	// Two 20-vertex cliques (as single nets repeated) joined by one net:
	// the partitioner must find the natural split with cut 1.
	b := hypergraph.NewBuilder(40)
	for rep := 0; rep < 3; rep++ {
		var a, c []int
		for i := 0; i < 20; i++ {
			a = append(a, i)
			c = append(c, 20+i)
		}
		b.AddNet(1, a...)
		b.AddNet(1, c...)
	}
	b.AddNet(1, 19, 20)
	h := b.Build()
	parts := Partition(h, Config{K: 2, Seed: 5})
	if cut := hypergraph.ConnectivityMinusOne(h, parts, 2); cut != 1 {
		t.Errorf("two-clique cut = %d, want 1", cut)
	}
}

func TestPartitionDeterministic(t *testing.T) {
	h := chainHypergraph(200)
	a := Partition(h, Config{K: 8, Seed: 42})
	b := Partition(h, Config{K: 8, Seed: 42})
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("same seed gave different partitions")
		}
	}
}

func TestPartitionK1(t *testing.T) {
	h := chainHypergraph(10)
	parts := Partition(h, Config{K: 1, Seed: 1})
	for _, p := range parts {
		if p != 0 {
			t.Fatal("K=1 must put everything in part 0")
		}
	}
}

func TestPartitionFewerVerticesThanParts(t *testing.T) {
	h := chainHypergraph(5)
	parts := Partition(h, Config{K: 16, Seed: 1})
	for _, p := range parts {
		if p < 0 || p >= 16 {
			t.Fatalf("part %d out of range", p)
		}
	}
}

func TestPartitionRespectsWeights(t *testing.T) {
	// One heavy vertex: it should sit alone (or nearly) in its part.
	b := hypergraph.NewBuilder(9)
	b.SetWeight(0, 80)
	for i := 1; i < 9; i++ {
		b.SetWeight(i, 10)
	}
	for i := 0; i+1 < 9; i++ {
		b.AddNet(1, i, i+1)
	}
	h := b.Build()
	parts := Partition(h, Config{K: 2, Seed: 7})
	w := hypergraph.PartWeights(h, parts, 2)
	// Perfect split: 80 vs 80+... total=160, avg 80. Heavy vertex alone.
	if w[0] != 80 && w[1] != 80 {
		t.Errorf("weights %v, want one side exactly 80", w)
	}
}

func TestPartitionBeatsRandomOnMatrix(t *testing.T) {
	m := gen.Band(gen.BandConfig{N: 600, MinHalfBand: 3, MaxHalfBand: 5}, 11)
	h := hypergraph.ColumnNetModel(m)
	const k = 8
	parts := Partition(h, Config{K: k, Seed: 2})
	cut := hypergraph.ConnectivityMinusOne(h, parts, k)

	r := rand.New(rand.NewSource(9))
	randParts := make([]int, h.NumV)
	for v := range randParts {
		randParts[v] = r.Intn(k)
	}
	randCut := hypergraph.ConnectivityMinusOne(h, randParts, k)
	if cut*4 > randCut {
		t.Errorf("partitioned cut %d not clearly better than random %d", cut, randCut)
	}
	if imb := hypergraph.Imbalance(h, parts, k); imb > 0.10 {
		t.Errorf("imbalance = %.3f", imb)
	}
}

func TestPartitionAllPartsUsed(t *testing.T) {
	h := chainHypergraph(512)
	const k = 16
	parts := Partition(h, Config{K: k, Seed: 13})
	used := make([]bool, k)
	for _, p := range parts {
		used[p] = true
	}
	for p, u := range used {
		if !u {
			t.Errorf("part %d unused", p)
		}
	}
}

func TestPropertyPartitionValid(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20 + r.Intn(100)
		b := hypergraph.NewBuilder(n)
		nets := 10 + r.Intn(80)
		for i := 0; i < nets; i++ {
			sz := 2 + r.Intn(5)
			pins := make([]int, sz)
			for j := range pins {
				pins[j] = r.Intn(n)
			}
			b.AddNet(1+r.Intn(3), pins...)
		}
		h := b.Build()
		k := 2 + r.Intn(6)
		parts := Partition(h, Config{K: k, Seed: seed})
		if len(parts) != n {
			return false
		}
		for _, p := range parts {
			if p < 0 || p >= k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCoarsenPreservesWeight(t *testing.T) {
	h := chainHypergraph(300)
	r := rand.New(rand.NewSource(4))
	coarse, toCoarse := coarsen(h, r)
	if coarse.NumV >= h.NumV {
		t.Fatalf("coarsening did not shrink: %d -> %d", h.NumV, coarse.NumV)
	}
	if coarse.TotalVWeight() != h.TotalVWeight() {
		t.Errorf("total weight changed: %d -> %d", h.TotalVWeight(), coarse.TotalVWeight())
	}
	for v, c := range toCoarse {
		if c < 0 || c >= coarse.NumV {
			t.Fatalf("vertex %d mapped out of range: %d", v, c)
		}
	}
}

func TestCoarsenMergesIdenticalNets(t *testing.T) {
	// Two identical nets must merge with cost 2 once their pins coincide.
	b := hypergraph.NewBuilder(4)
	b.AddNet(1, 0, 1)
	b.AddNet(1, 0, 1)
	b.AddNet(1, 2, 3)
	h := b.Build()
	r := rand.New(rand.NewSource(8))
	coarse, _ := coarsen(h, r)
	// After matching (0,1) and (2,3), all nets become single-pin and drop.
	if coarse.NumN != 0 {
		// Alternative matching keeps some nets; they must not duplicate.
		total := 0
		for _, c := range coarse.NCost {
			total += c
		}
		if total != 3 {
			t.Errorf("net cost not conserved under merge: %d", total)
		}
	}
}

func TestFMImprovesBadStart(t *testing.T) {
	h := chainHypergraph(100)
	// Alternating sides: worst possible cut (99 nets all cut).
	side := make([]int8, 100)
	for i := range side {
		side[i] = int8(i % 2)
	}
	r := rand.New(rand.NewSource(6))
	maxW := [2]int{53, 53}
	cut := fmRefine(h, side, maxW, 8, r)
	if cut > 10 {
		t.Errorf("FM left cut at %d from alternating start", cut)
	}
	w := [2]int{}
	for i, s := range side {
		_ = i
		w[s]++
	}
	if w[0] > 53 || w[1] > 53 {
		t.Errorf("FM violated balance: %v", w)
	}
}

func TestFMCutAccounting(t *testing.T) {
	// The cut returned by fmRefine must equal the recomputed metric.
	r := rand.New(rand.NewSource(14))
	for trial := 0; trial < 30; trial++ {
		n := 10 + r.Intn(40)
		b := hypergraph.NewBuilder(n)
		for i := 0; i < n; i++ {
			b.AddNet(1+r.Intn(2), r.Intn(n), r.Intn(n), r.Intn(n))
		}
		h := b.Build()
		side := make([]int8, n)
		for i := range side {
			side[i] = int8(r.Intn(2))
		}
		maxW := [2]int{n, n}
		got := fmRefine(h, side, maxW, 3, r)
		parts := make([]int, n)
		for i, s := range side {
			parts[i] = int(s)
		}
		want := hypergraph.CutNets(h, parts, 2)
		if got != want {
			t.Fatalf("trial %d: fm cut %d != recomputed %d", trial, got, want)
		}
	}
}
