package order

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/sparse"
)

func TestRCMIsPermutation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 10 + r.Intn(100)
		c := sparse.NewCOO(n, n)
		for i := 0; i < n; i++ {
			c.Add(i, i, 1)
		}
		for e := 0; e < n*2; e++ {
			i, j := r.Intn(n), r.Intn(n)
			c.Add(i, j, 1)
			c.Add(j, i, 1)
		}
		a := c.ToCSR()
		perm := RCM(a)
		seen := make([]bool, n)
		for _, p := range perm {
			if p < 0 || p >= n || seen[p] {
				t.Fatalf("trial %d: not a permutation", trial)
			}
			seen[p] = true
		}
	}
}

func TestRCMReducesBandwidth(t *testing.T) {
	// A band matrix scrambled by a random permutation: RCM must recover a
	// bandwidth far below the scrambled one.
	band := gen.Band(gen.BandConfig{N: 400, MinHalfBand: 2, MaxHalfBand: 3}, 7)
	r := rand.New(rand.NewSource(2))
	scramble := r.Perm(400)
	scrambled := band.Permute(scramble, scramble)
	bwScrambled := Bandwidth(scrambled)

	perm := RCM(scrambled)
	restored := scrambled.Permute(perm, perm)
	bwRestored := Bandwidth(restored)
	if bwRestored*10 > bwScrambled {
		t.Errorf("RCM bandwidth %d not clearly below scrambled %d", bwRestored, bwScrambled)
	}
	if Profile(restored) >= Profile(scrambled) {
		t.Errorf("RCM profile did not improve: %d vs %d", Profile(restored), Profile(scrambled))
	}
}

func TestRCMHandlesDisconnected(t *testing.T) {
	// Two separate chains plus an isolated vertex.
	c := sparse.NewCOO(9, 9)
	for i := 0; i < 3; i++ {
		c.Add(i, (i+1)%4, 1)
		c.Add((i+1)%4, i, 1)
	}
	for i := 5; i < 7; i++ {
		c.Add(i, i+1, 1)
		c.Add(i+1, i, 1)
	}
	a := c.ToCSR()
	perm := RCM(a)
	seen := make([]bool, 9)
	for _, p := range perm {
		if seen[p] {
			t.Fatal("duplicate index")
		}
		seen[p] = true
	}
}

func TestRCMRejectsRectangular(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RCM accepted a rectangular matrix")
		}
	}()
	c := sparse.NewCOO(3, 4)
	RCM(c.ToCSR())
}

func TestBandwidthAndProfile(t *testing.T) {
	c := sparse.NewCOO(4, 4)
	c.Add(0, 0, 1)
	c.Add(1, 3, 1)
	c.Add(3, 1, 1)
	a := c.ToCSR()
	if bw := Bandwidth(a); bw != 2 {
		t.Errorf("bandwidth = %d, want 2", bw)
	}
	// Profile: row 0: 0; row 1: min col 3 -> 0 (i<min); row 3: min col 1 -> 2.
	if p := Profile(a); p != 2 {
		t.Errorf("profile = %d, want 2", p)
	}
}

func TestContiguousParts(t *testing.T) {
	parts := ContiguousParts(10, 2, nil)
	for i := 0; i < 5; i++ {
		if parts[i] != 0 {
			t.Errorf("parts[%d] = %d, want 0", i, parts[i])
		}
	}
	for i := 5; i < 10; i++ {
		if parts[i] != 1 {
			t.Errorf("parts[%d] = %d, want 1", i, parts[i])
		}
	}
	// Weighted: one heavy item takes a whole part.
	w := []int{100, 1, 1, 1, 1}
	wp := ContiguousParts(5, 2, w)
	if wp[0] != 0 {
		t.Errorf("heavy item part = %d", wp[0])
	}
	for i := 1; i < 5; i++ {
		if wp[i] != 1 {
			t.Errorf("light item %d part = %d, want 1", i, wp[i])
		}
	}
	// Monotone non-decreasing always.
	for i := 1; i < 5; i++ {
		if wp[i] < wp[i-1] {
			t.Error("parts not monotone")
		}
	}
}
