// Package order provides sparse-matrix reordering. Reverse Cuthill–McKee
// (RCM) reduces the bandwidth of a symmetric pattern; contiguous chunks of
// an RCM ordering give a cheap — partitioner-free — vector partition whose
// boundary cut is small, which the harness uses as an ablation against the
// hypergraph-partitioned vector partitions.
package order

import (
	"sort"

	"repro/internal/sparse"
)

// RCM returns a permutation newIndex[old] = new implementing reverse
// Cuthill–McKee on the symmetrized pattern of a. Disconnected components
// are each started from a pseudo-peripheral vertex.
func RCM(a *sparse.CSR) []int {
	n := a.Rows
	if a.Cols != n {
		panic("order: RCM requires a square matrix")
	}
	adj := symmetricAdjacency(a)
	deg := make([]int, n)
	for v := range adj {
		deg[v] = len(adj[v])
	}

	visited := make([]bool, n)
	orderOld := make([]int, 0, n) // Cuthill–McKee order (pre-reversal)
	var queue []int

	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		root := pseudoPeripheral(adj, deg, visited, start)
		visited[root] = true
		queue = append(queue[:0], root)
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			orderOld = append(orderOld, v)
			// Neighbours in increasing degree order.
			nbrs := make([]int, 0, len(adj[v]))
			for _, u := range adj[v] {
				if !visited[u] {
					visited[u] = true
					nbrs = append(nbrs, u)
				}
			}
			sort.Slice(nbrs, func(x, y int) bool {
				if deg[nbrs[x]] != deg[nbrs[y]] {
					return deg[nbrs[x]] < deg[nbrs[y]]
				}
				return nbrs[x] < nbrs[y]
			})
			queue = append(queue, nbrs...)
		}
	}

	// Reverse.
	perm := make([]int, n)
	for pos, old := range orderOld {
		perm[old] = n - 1 - pos
	}
	return perm
}

// symmetricAdjacency builds the adjacency of the pattern of A+Aᵀ without
// self loops.
func symmetricAdjacency(a *sparse.CSR) [][]int {
	n := a.Rows
	adj := make([][]int, n)
	add := func(u, v int) {
		adj[u] = append(adj[u], v)
	}
	for i := 0; i < n; i++ {
		for _, j := range a.RowCols(i) {
			if i != j {
				add(i, j)
				add(j, i)
			}
		}
	}
	// Dedupe.
	for v := range adj {
		sort.Ints(adj[v])
		out := adj[v][:0]
		for t, u := range adj[v] {
			if t == 0 || u != adj[v][t-1] {
				out = append(out, u)
			}
		}
		adj[v] = out
	}
	return adj
}

// pseudoPeripheral finds a vertex of (near-)maximum eccentricity in the
// component of start, via the usual double-BFS sweep.
func pseudoPeripheral(adj [][]int, deg []int, visited []bool, start int) int {
	bfsFurthest := func(root int) int {
		seen := map[int]bool{root: true}
		frontier := []int{root}
		last := root
		for len(frontier) > 0 {
			var next []int
			bestDeg := -1
			for _, v := range frontier {
				for _, u := range adj[v] {
					if !seen[u] && !visited[u] {
						seen[u] = true
						next = append(next, u)
					}
				}
			}
			if len(next) == 0 {
				// Lowest-degree vertex of the last level.
				for _, v := range frontier {
					if bestDeg == -1 || deg[v] < bestDeg {
						bestDeg = deg[v]
						last = v
					}
				}
			}
			frontier = next
		}
		return last
	}
	far := bfsFurthest(start)
	return bfsFurthest(far)
}

// Bandwidth returns max |i−j| over the nonzeros of a.
func Bandwidth(a *sparse.CSR) int {
	bw := 0
	for i := 0; i < a.Rows; i++ {
		for _, j := range a.RowCols(i) {
			d := i - j
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}

// Profile returns the sum over rows of (i − min column index of row i),
// another standard envelope size metric.
func Profile(a *sparse.CSR) int {
	total := 0
	for i := 0; i < a.Rows; i++ {
		cols := a.RowCols(i)
		if len(cols) == 0 {
			continue
		}
		min := cols[0]
		for _, j := range cols {
			if j < min {
				min = j
			}
		}
		if i > min {
			total += i - min
		}
	}
	return total
}

// ContiguousParts assigns n indices to k parts in contiguous weight-
// balanced chunks: index i gets part p such that the cumulative weight up
// to i falls in p's share. weights may be nil for uniform.
func ContiguousParts(n, k int, weights []int) []int {
	parts := make([]int, n)
	total := 0
	if weights == nil {
		total = n
	} else {
		for _, w := range weights {
			total += w
		}
	}
	if total == 0 {
		total = 1
	}
	cum := 0
	for i := 0; i < n; i++ {
		w := 1
		if weights != nil {
			w = weights[i]
		}
		p := cum * k / total
		if p >= k {
			p = k - 1
		}
		parts[i] = p
		cum += w
	}
	return parts
}
