package order

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
)

func BenchmarkRCM(b *testing.B) {
	m := gen.Band(gen.BandConfig{N: 50000, MinHalfBand: 3, MaxHalfBand: 6}, 1)
	r := rand.New(rand.NewSource(2))
	perm := r.Perm(m.Rows)
	scrambled := m.Permute(perm, perm)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = RCM(scrambled)
	}
}
