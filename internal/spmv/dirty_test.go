package spmv

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/method"
)

// TestDirtyOutputFullyOverwritten pins the documented output contract:
// Multiply, MultiplyBlock, MultiplyTranspose, and MultiplyTransposeBlock
// fully overwrite y — a buffer pre-filled with garbage (including NaN,
// which poisons any accumulate-without-clear path) must come out exactly
// as if it had been zeroed. Looped over every registry method so every
// schedule variant honors it.
func TestDirtyOutputFullyOverwritten(t *testing.T) {
	r := rand.New(rand.NewSource(211))
	a := randomMatrix(r, 260, 260, 2600)
	const k, nrhs = 8, 3
	opt := method.Options{Seed: 5, Pipeline: method.NewPipeline()}
	x := randomVector(r, a.Cols)
	xt := randomVector(r, a.Rows)
	X := blockOf(r, a.Cols, nrhs)
	XT := blockOf(r, a.Rows, nrhs)

	dirty := func(n int) []float64 {
		d := make([]float64, n)
		for i := range d {
			switch i % 3 {
			case 0:
				d[i] = math.NaN()
			case 1:
				d[i] = math.Inf(1)
			default:
				d[i] = 1e300
			}
		}
		return d
	}
	check := func(t *testing.T, what string, got, want []float64) {
		t.Helper()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: dirty y[%d] = %v, clean run %v", what, i, got[i], want[i])
			}
		}
	}

	for _, name := range method.Names() {
		t.Run(name, func(t *testing.T) {
			b, err := method.BuildByName(name, a, k, opt)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			eng, err := New(b)
			if err != nil {
				t.Fatalf("engine: %v", err)
			}
			t.Cleanup(eng.Close)

			clean := make([]float64, a.Rows)
			eng.Multiply(x, clean)
			y := dirty(a.Rows)
			eng.Multiply(x, y)
			check(t, "Multiply", y, clean)

			cleanT := make([]float64, a.Cols)
			eng.MultiplyTranspose(xt, cleanT)
			yt := dirty(a.Cols)
			eng.MultiplyTranspose(xt, yt)
			check(t, "MultiplyTranspose", yt, cleanT)

			cleanB := make([]float64, a.Rows*nrhs)
			eng.MultiplyBlock(X, cleanB, nrhs)
			Y := dirty(a.Rows * nrhs)
			eng.MultiplyBlock(X, Y, nrhs)
			check(t, "MultiplyBlock", Y, cleanB)

			cleanTB := make([]float64, a.Cols*nrhs)
			eng.MultiplyTransposeBlock(XT, cleanTB, nrhs)
			YT := dirty(a.Cols * nrhs)
			eng.MultiplyTransposeBlock(XT, YT, nrhs)
			check(t, "MultiplyTransposeBlock", YT, cleanTB)
		})
	}
}
