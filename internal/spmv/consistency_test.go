package spmv

import (
	"math/rand"
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/gen"
)

// countPackets tallies the engine's real packets: number of messages and
// words per (phase, from, to), to be checked against the analytic
// distrib.Comm statistics. The engine schedule is static, so this can be
// derived without running Multiply.
func countFusedPackets(e *Engine) (msgs, words int) {
	type pair struct{ from, to int }
	seen := map[pair]int{}
	for _, pr := range e.procs {
		dests := map[int]int{}
		for d, idxs := range pr.xNeed {
			dests[d] += len(idxs)
		}
		for d, nzs := range pr.preGroups {
			rows := map[int]struct{}{}
			for _, nz := range nzs {
				rows[nz.row] = struct{}{}
			}
			dests[d] += len(rows)
		}
		for d, w := range dests {
			seen[pair{pr.id, d}] += w
		}
	}
	for _, w := range seen {
		msgs++
		words += w
	}
	return msgs, words
}

func countTwoPhasePackets(e *Engine) (msgs, words int) {
	for _, pr := range e.procs {
		for _, idxs := range pr.xNeed {
			msgs++
			words += len(idxs)
		}
		for _, nzs := range pr.preGroups {
			rows := map[int]struct{}{}
			for _, nz := range nzs {
				rows[nz.row] = struct{}{}
			}
			msgs++
			words += len(rows)
		}
	}
	return msgs, words
}

// TestEnginePacketsMatchCommStats: the communication the engine actually
// schedules must equal what the metrics predict — the statistics feed the
// cost model, so a mismatch would invalidate every speedup in the tables.
func TestEnginePacketsMatchCommStats(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	for trial := 0; trial < 15; trial++ {
		a := randomMatrix(r, 80+r.Intn(120), 80+r.Intn(120), 900)
		k := 2 + r.Intn(14)

		// Fused s2D.
		yp := make([]int, a.Rows)
		for i := range yp {
			yp[i] = r.Intn(k)
		}
		xp := make([]int, a.Cols)
		for j := range xp {
			xp[j] = r.Intn(k)
		}
		d := core.Balanced(a, xp, yp, k, core.BalanceConfig{})
		e, err := NewEngine(d)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(e.Close)
		cs := d.Comm()
		msgs, words := countFusedPackets(e)
		if msgs != cs.TotalMsgs {
			t.Fatalf("trial %d fused: engine %d msgs, metrics %d", trial, msgs, cs.TotalMsgs)
		}
		if words != cs.TotalVolume {
			t.Fatalf("trial %d fused: engine %d words, metrics %d", trial, words, cs.TotalVolume)
		}

		// Two-phase 2D.
		d2 := &distrib.Distribution{A: a, K: k,
			Owner: make([]int, a.NNZ()), XPart: xp, YPart: yp}
		for p := range d2.Owner {
			d2.Owner[p] = r.Intn(k)
		}
		e2, err := NewEngine(d2)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(e2.Close)
		cs2 := d2.Comm()
		msgs2, words2 := countTwoPhasePackets(e2)
		if msgs2 != cs2.TotalMsgs {
			t.Fatalf("trial %d 2D: engine %d msgs, metrics %d", trial, msgs2, cs2.TotalMsgs)
		}
		if words2 != cs2.TotalVolume {
			t.Fatalf("trial %d 2D: engine %d words, metrics %d", trial, words2, cs2.TotalVolume)
		}
	}
}

// TestRoutedPacketsWithinS2DBStats: the routed engine's phase-1/phase-2
// fan-out per processor must respect the mesh bounds that S2DBComm
// reports.
func TestRoutedPacketsWithinS2DBStats(t *testing.T) {
	spec, _ := gen.ByName("ins2")
	a := spec.Generate(1.0/256, 3)
	const k = 16
	opt := baselines.Options{Seed: 3}
	rows := baselines.RowwiseParts(a, k, opt)
	oneD := baselines.Rowwise1DFromParts(a, rows, k)
	d := core.Balanced(a, oneD.XPart, oneD.YPart, k, core.BalanceConfig{})
	mesh := core.NewMesh(k)
	e, err := NewRoutedEngine(d, mesh)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	cs := core.S2DBComm(d, mesh)
	for _, pr := range e.rprocs {
		if n := len(pr.phase1Dests); n > mesh.Pr-1 {
			t.Errorf("proc %d: %d phase-1 destinations > Pr-1", pr.id, n)
		}
		if n := len(pr.phase2Dests); n > mesh.Pc-1 {
			t.Errorf("proc %d: %d phase-2 destinations > Pc-1", pr.id, n)
		}
	}
	// Engine phase-1 message count equals the metric phase's TotalMsgs.
	p1 := 0
	for _, pr := range e.rprocs {
		p1 += len(pr.phase1Dests)
	}
	if p1 != cs.Phases[0].TotalMsgs {
		t.Errorf("engine phase-1 msgs %d != metrics %d", p1, cs.Phases[0].TotalMsgs)
	}
	p2 := 0
	for _, pr := range e.rprocs {
		p2 += len(pr.phase2Dests)
	}
	if p2 != cs.Phases[1].TotalMsgs {
		t.Errorf("engine phase-2 msgs %d != metrics %d", p2, cs.Phases[1].TotalMsgs)
	}
}
