package spmv

import (
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"
)

// faultEngines builds one engine per schedule; the tests own Close.
func faultEngines(t *testing.T) map[string]Multiplier {
	t.Helper()
	fused, twoPhase, routed, _, _ := allocFixtures(t)
	return map[string]Multiplier{
		"fused":    fused,
		"twophase": twoPhase,
		"routed":   routed,
	}
}

// multiplyWithTimeout guards against the exact failure mode this layer
// exists to prevent: a worker panic deadlocking the dispatch barrier.
func multiplyWithTimeout(t *testing.T, eng Multiplier, x, y []float64) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- eng.Multiply(x, y) }()
	select {
	case err := <-done:
		return err
	case <-time.After(10 * time.Second):
		t.Fatal("Multiply deadlocked after injected worker panic")
		return nil
	}
}

// TestWorkerPanicContained injects a panic into one worker per schedule
// and verifies the dispatch still completes, returns a typed
// *EngineFaultError naming the worker, poisons the engine (subsequent
// multiplies fail fast without running the plan), and leaves Close
// clean.
func TestWorkerPanicContained(t *testing.T) {
	for name, eng := range faultEngines(t) {
		t.Run(name, func(t *testing.T) {
			x := make([]float64, 400)
			y := make([]float64, 400)
			for i := range x {
				x[i] = float64(i%5) - 2
			}
			if err := eng.Multiply(x, y); err != nil {
				t.Fatalf("healthy multiply: %v", err)
			}

			hooker := eng.(WorkerFaultHooker)
			hooker.SetWorkerFaultHook(func(worker int) {
				if worker == 2 {
					panic("injected fault")
				}
			})
			err := multiplyWithTimeout(t, eng, x, y)
			var fe *EngineFaultError
			if !errors.As(err, &fe) {
				t.Fatalf("Multiply with panicking worker returned %v, want *EngineFaultError", err)
			}
			if len(fe.Panics) == 0 || fe.Panics[0].Worker != 2 {
				t.Fatalf("fault error %+v does not name worker 2", fe)
			}
			if !strings.Contains(err.Error(), "injected fault") {
				t.Fatalf("fault error %q does not carry the panic value", err)
			}

			// The engine is poisoned: later multiplies fail fast with the
			// same fault even after the hook is cleared, and never reach the
			// workers again.
			hooker.SetWorkerFaultHook(nil)
			if err := multiplyWithTimeout(t, eng, x, y); !errors.As(err, &fe) {
				t.Fatalf("poisoned multiply returned %v, want *EngineFaultError", err)
			}
			eng.Close()
			eng.Close() // still idempotent after a fault
		})
	}
}

// TestAllWorkersPanicContained is the worst case: every worker panics in
// the same dispatch. The barrier must still close and the goroutines
// must still be collectable by Close.
func TestAllWorkersPanicContained(t *testing.T) {
	for name, eng := range faultEngines(t) {
		t.Run(name, func(t *testing.T) {
			before := runtime.NumGoroutine()
			eng.(WorkerFaultHooker).SetWorkerFaultHook(func(int) { panic("boom") })
			x := make([]float64, 400)
			y := make([]float64, 400)
			err := multiplyWithTimeout(t, eng, x, y)
			var fe *EngineFaultError
			if !errors.As(err, &fe) {
				t.Fatalf("Multiply returned %v, want *EngineFaultError", err)
			}
			if len(fe.Panics) != 8 {
				t.Fatalf("recorded %d panics, want 8 (one per worker)", len(fe.Panics))
			}
			eng.Close()
			// The parked workers exit on Close even after containing panics.
			deadline := time.Now().Add(5 * time.Second)
			for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
				time.Sleep(10 * time.Millisecond)
			}
		})
	}
}

// TestBlockMultiplyFaultContained exercises the containment path through
// the multi-RHS dispatch, which shares the inbox channels with the
// single-vector plan.
func TestBlockMultiplyFaultContained(t *testing.T) {
	for name, eng := range faultEngines(t) {
		t.Run(name, func(t *testing.T) {
			const nrhs = 3
			X := make([]float64, 400*nrhs)
			Y := make([]float64, 400*nrhs)
			for i := range X {
				X[i] = float64(i%7) - 3
			}
			if err := eng.MultiplyBlock(X, Y, nrhs); err != nil {
				t.Fatalf("healthy block multiply: %v", err)
			}
			eng.(WorkerFaultHooker).SetWorkerFaultHook(func(worker int) {
				if worker == 1 {
					panic("block fault")
				}
			})
			done := make(chan error, 1)
			go func() { done <- eng.MultiplyBlock(X, Y, nrhs) }()
			var err error
			select {
			case err = <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("MultiplyBlock deadlocked after injected worker panic")
			}
			var fe *EngineFaultError
			if !errors.As(err, &fe) {
				t.Fatalf("MultiplyBlock returned %v, want *EngineFaultError", err)
			}
			if fe.Op != "MultiplyBlock" {
				t.Fatalf("fault op = %q, want MultiplyBlock", fe.Op)
			}
			eng.Close()
		})
	}
}
