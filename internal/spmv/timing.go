package spmv

import (
	"sync/atomic"
	"time"
)

// PhaseTimings is one multiply's expand/compute/fold breakdown as seen
// by worker 0 — a sample of where the barrier's wall time went, in the
// paper's phase vocabulary. Fused schedules report the packet sends as
// Expand, the single gather-and-bank loop as Fold, and the local kernel
// as Compute; two-phase schedules report phase 0 (x expand) as Expand,
// the kernel as Compute, and phase 1 (partial-y fold) as Fold.
type PhaseTimings struct {
	Expand  time.Duration
	Compute time.Duration
	Fold    time.Duration
}

// PhaseSampler is the optional interface engines implement to expose
// per-phase timings. The serving scheduler type-asserts it; engines
// without it (e.g. the routed variant) simply omit phase spans.
//
// The contract mirrors the dispatch barrier: LastPhases returns the
// timings of the most recent completed multiply and must only be called
// by the dispatching goroutine (which already serializes multiplies).
type PhaseSampler interface {
	SamplePhases(on bool)
	LastPhases() (PhaseTimings, bool)
}

// phaseTimer holds the engine's sampled phase durations. armed is
// atomic because SamplePhases may be called from a goroutine other
// than the workers; the ns fields are plain — worker 0 writes them
// before the barrier's done.Wait() and the dispatcher reads them after,
// so the pool's happens-before edge covers them.
type phaseTimer struct {
	armed     atomic.Bool
	sampled   bool // a multiply has completed since arming
	expandNs  int64
	computeNs int64
	foldNs    int64
}

// SamplePhases arms (or disarms) phase sampling. Disarmed engines skip
// the two time.Now calls per phase on worker 0 and LastPhases reports
// ok=false.
func (e *Engine) SamplePhases(on bool) {
	e.pt.armed.Store(on)
	if !on {
		e.pt.sampled = false
	}
}

// LastPhases reports the phase breakdown of the most recent multiply.
// Call only from the goroutine that dispatches multiplies.
func (e *Engine) LastPhases() (PhaseTimings, bool) {
	if !e.pt.armed.Load() || !e.pt.sampled {
		return PhaseTimings{}, false
	}
	return PhaseTimings{
		Expand:  time.Duration(e.pt.expandNs),
		Compute: time.Duration(e.pt.computeNs),
		Fold:    time.Duration(e.pt.foldNs),
	}, true
}

// phaseClock is worker 0's stopwatch: a stack value armed only on the
// sampling worker, so the other workers and disarmed engines pay one
// atomic load per multiply and nothing else.
type phaseClock struct {
	t  time.Time
	on bool
}

func (e *Engine) phaseClock(pr *proc) phaseClock {
	if pr.id != 0 || !e.pt.armed.Load() {
		return phaseClock{}
	}
	e.pt.sampled = true
	return phaseClock{t: time.Now(), on: true}
}

// lap stores the time since the previous lap into dst and restarts.
func (c *phaseClock) lap(dst *int64) {
	if !c.on {
		return
	}
	now := time.Now()
	*dst = int64(now.Sub(c.t))
	c.t = now
}
