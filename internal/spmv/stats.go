package spmv

import "repro/internal/distrib"

// ScheduleStats returns the communication the engine will actually perform
// per Multiply, derived from its static schedule. For a valid engine this
// equals the distribution's analytic Comm() — the property the consistency
// tests pin down — and it is the number a user should quote when reporting
// measured traffic.
func (e *Engine) ScheduleStats() distrib.CommStats {
	if e.fused {
		acc := distrib.NewMsgAccum(e.d.K)
		for _, pr := range e.procs {
			for dest, words := range e.fusedPacketSizes(pr) { //spmvlint:unordered commutative integer accumulation
				acc.Add(pr.id, dest, words)
			}
		}
		return distrib.CombineStats(e.d.K, acc)
	}
	expand := distrib.NewMsgAccum(e.d.K)
	fold := distrib.NewMsgAccum(e.d.K)
	for _, pr := range e.procs {
		for dest, idxs := range pr.xNeed { //spmvlint:unordered commutative integer accumulation
			expand.Add(pr.id, dest, len(idxs))
		}
		for dest, nzs := range pr.preGroups { //spmvlint:unordered commutative integer accumulation
			fold.Add(pr.id, dest, countRows(nzs))
		}
	}
	return distrib.CombineStats(e.d.K, expand, fold)
}

// fusedPacketSizes returns, per destination, the packet word count
// (x entries plus distinct partial rows) processor pr will send.
func (e *Engine) fusedPacketSizes(pr *proc) map[int]int {
	sizes := make(map[int]int)
	for dest, idxs := range pr.xNeed {
		sizes[dest] += len(idxs)
	}
	for dest, nzs := range pr.preGroups { //spmvlint:unordered commutative integer accumulation; countRows is pure
		sizes[dest] += countRows(nzs)
	}
	return sizes
}

func countRows(nzs []localNZ) int {
	rows := make(map[int]struct{}, len(nzs))
	for _, nz := range nzs {
		rows[nz.row] = struct{}{}
	}
	return len(rows)
}

// ScheduleStats returns the routed engine's per-phase traffic. Phase-1
// packets combine x shipments and partial sums per intermediate; phase-2
// packets are the forwards to final destinations.
func (e *RoutedEngine) ScheduleStats() distrib.CommStats {
	phase1 := distrib.NewMsgAccum(e.d.K)
	phase2 := distrib.NewMsgAccum(e.d.K)
	for _, pr := range e.rprocs {
		// Phase-1 x payloads.
		for mid, idxs := range pr.hop1X { //spmvlint:unordered commutative integer accumulation
			phase1.Add(pr.id, mid, len(idxs))
		}
		// Phase-1 y payloads: distinct rows per intermediate.
		midRows := make(map[int]map[int]struct{})
		for dest, nzs := range pr.preGroups { //spmvlint:unordered builds per-mid row sets; insertion commutes
			mid := e.mesh.PartAt(e.mesh.RowOf(dest), e.mesh.ColOf(pr.id))
			if midRows[mid] == nil {
				midRows[mid] = make(map[int]struct{})
			}
			for _, nz := range nzs {
				midRows[mid][nz.row] = struct{}{}
			}
		}
		for mid, rows := range midRows { //spmvlint:unordered commutative integer accumulation
			phase1.Add(pr.id, mid, len(rows))
		}
		// Phase-2 x forwards.
		for dest, idxs := range pr.hop2X { //spmvlint:unordered commutative integer accumulation
			phase2.Add(pr.id, dest, len(idxs))
		}
	}
	// Phase-2 y forwards: for every intermediate, the distinct rows it
	// will combine and forward per destination. Reconstruct from the
	// senders' schedules (static).
	midDestRows := make(map[int64]map[int]struct{})
	for _, pr := range e.rprocs {
		for dest, nzs := range pr.preGroups { //spmvlint:unordered builds per-dest row sets; insertion commutes
			mid := e.mesh.PartAt(e.mesh.RowOf(dest), e.mesh.ColOf(pr.id))
			if mid == dest {
				continue
			}
			key := int64(mid)*int64(e.d.K) + int64(dest)
			if midDestRows[key] == nil {
				midDestRows[key] = make(map[int]struct{})
			}
			for _, nz := range nzs {
				midDestRows[key][nz.row] = struct{}{}
			}
		}
	}
	for key, rows := range midDestRows { //spmvlint:unordered commutative integer accumulation
		mid := int(key / int64(e.d.K))
		dest := int(key % int64(e.d.K))
		phase2.Add(mid, dest, len(rows))
	}
	return distrib.CombineStats(e.d.K, phase1, phase2)
}
