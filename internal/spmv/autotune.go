package spmv

// Plan-time autotuner. At build time (spmv.NewTuned, or explicitly via
// Engine.Autotune) the engine probes every candidate (layout ×
// width-class) kernel backend on its own compiled arenas — the real
// packets, the real schedule, deterministic synthetic vectors — and
// installs the per-width-class winner. Probing uses a fixed repetition
// count and takes the minimum over a fixed number of rounds; a
// specialized backend must beat scalar by a hysteresis margin or scalar
// stays, so noise cannot flip a near-tie away from the reference
// kernels.
//
// Wall-clock timing is inherently machine-dependent, so cross-build
// determinism comes from the cache, not the stopwatch: when a
// TuneConfig carries a KernelCache (method.Pipeline provides one keyed
// by (matrix, method, K, seed, epsilon)), the first decision for each
// width class is stored and every later Build with the same key
// installs the cached winner without re-probing. TuneConfig.Force
// bypasses probing entirely and installs one named backend for every
// class.

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// TuneConfig configures one Autotune run.
type TuneConfig struct {
	// Widths lists the nrhs width classes to tune (0 tunes the generic
	// class, probed at nrhs=3). Nil tunes every class.
	Widths []int
	// Force installs the named backend for every width class without
	// probing; unknown names error.
	Force string
	// RelaxedFP admits the relaxed multi-accumulator backend as a
	// candidate. Off by default: relaxed results are only ulp-close to
	// scalar, so it must never win a probe unless the caller explicitly
	// opted out of bitwise reproducibility.
	RelaxedFP bool
	// Cache memoizes decisions across engine builds (see KernelCache);
	// nil probes every time.
	Cache KernelCache
}

// KernelCache persists per-width-class kernel decisions across engine
// builds. method.Pipeline's KernelCache satisfies it.
type KernelCache interface {
	Lookup(nrhs int) (kernel string, ok bool)
	Store(nrhs int, kernel string)
}

// KernelChoice is one width class's selection.
type KernelChoice struct {
	// NRHS identifies the width class: 1, 2, 4, 8, or 0 for the generic
	// class covering every other width.
	NRHS   int    `json:"nrhs"`
	Kernel string `json:"kernel"`
	// Source says how the choice was made: "default" (never tuned),
	// "probed", "cached", or "forced".
	Source string `json:"source"`
	// ProbesNs holds the best probe time per candidate when Source is
	// "probed".
	ProbesNs map[string]float64 `json:"probes_ns,omitempty"`
}

// KernelReport is the engine's per-width-class kernel selection.
type KernelReport struct {
	Choices []KernelChoice `json:"choices"`
}

func (r KernelReport) clone() KernelReport {
	out := KernelReport{Choices: make([]KernelChoice, len(r.Choices))}
	copy(out.Choices, r.Choices)
	return out
}

// For returns the backend name serving the given nrhs.
func (r KernelReport) For(nrhs int) string {
	w := classWidths[classOf(nrhs)]
	for _, ch := range r.Choices {
		if ch.NRHS == w {
			return ch.Kernel
		}
	}
	return kernScalar.String()
}

// String renders the selection compactly, one "nrhs:kernel" pair per
// width class (0 is the generic class), e.g. "0:scalar 1:scalar 2:reg
// 4:reg 8:sortedreg".
func (r KernelReport) String() string {
	parts := make([]string, 0, len(r.Choices))
	for _, ch := range r.Choices {
		parts = append(parts, fmt.Sprintf("%d:%s", ch.NRHS, ch.Kernel))
	}
	return strings.Join(parts, " ")
}

// Probe shape: fixed warmup and repetition counts, minimum over rounds.
// The generic class has no width of its own, so it probes at nrhs=3.
const (
	tuneWarmups       = 1
	tuneRounds        = 3
	tuneInner         = 2
	genericProbeWidth = 3
	// tuneHysteresis: a candidate must run in under this fraction of the
	// scalar time to displace it.
	tuneHysteresis = 0.98
)

// tunable is the engine surface autotune drives; Engine and
// RoutedEngine both satisfy it.
type tunable interface {
	Multiply(x, y []float64) error
	MultiplyBlock(X, Y []float64, nrhs int) error
	kstate() *kernelState
	installKernel(class int, kid kernelID)
	tuneDims() (rows, cols int)
}

func (e *Engine) tuneDims() (int, int)       { return e.d.A.Rows, e.d.A.Cols }
func (e *RoutedEngine) tuneDims() (int, int) { return e.d.A.Rows, e.d.A.Cols }

// Autotune probes the candidate kernel backends on the engine's own
// compiled plan and installs per-width-class winners; see TuneConfig.
// It must not overlap a Multiply (same single-caller contract) and runs
// a bounded number of multiplies into private scratch, leaving no
// visible state behind beyond the installed selection.
func (e *Engine) Autotune(cfg TuneConfig) (KernelReport, error) { return autotune(e, cfg) }

// Autotune is Engine.Autotune for the routed engine.
func (e *RoutedEngine) Autotune(cfg TuneConfig) (KernelReport, error) { return autotune(e, cfg) }

// KernelReport returns the engine's current kernel selection: the last
// Autotune's verdict, or an all-default report when never tuned.
func (e *Engine) KernelReport() KernelReport { return e.kstate().report() }

// KernelReport is Engine.KernelReport for the routed engine.
func (e *RoutedEngine) KernelReport() KernelReport { return e.kstate().report() }

// tuneCandidates returns the deterministic candidate order for a width
// class. The generic and single-vector classes have no register-blocked
// variant (their loops are width-generic already), so only the layout
// choice is probed there.
func tuneCandidates(class int, relaxed bool) []kernelID {
	var c []kernelID
	if class <= 1 {
		c = []kernelID{kernScalar, kernSorted}
	} else {
		c = []kernelID{kernScalar, kernReg, kernSorted, kernSortedReg}
	}
	if relaxed {
		c = append(c, kernRelaxed)
	}
	return c
}

func autotune(e tunable, cfg TuneConfig) (KernelReport, error) {
	ks := e.kstate()

	if cfg.Force != "" {
		kid, err := kernelByName(cfg.Force)
		if err != nil {
			return KernelReport{}, err
		}
		choices := make([]KernelChoice, numClasses)
		for c := 0; c < numClasses; c++ {
			e.installKernel(c, kid)
			choices[c] = KernelChoice{NRHS: classWidths[c], Kernel: kid.String(), Source: "forced"}
		}
		rep := KernelReport{Choices: choices}
		ks.tuned = &rep
		return rep.clone(), nil
	}

	var want [numClasses]bool
	if cfg.Widths == nil {
		for c := range want {
			want[c] = true
		}
	} else {
		for _, w := range cfg.Widths {
			want[classOf(w)] = true
		}
	}

	rows, cols := e.tuneDims()
	maxW := 1
	for c, w := range classWidths {
		if !want[c] {
			continue
		}
		if w == 0 {
			w = genericProbeWidth
		}
		if w > maxW {
			maxW = w
		}
	}
	x := make([]float64, cols*maxW)
	y := make([]float64, rows*maxW)
	for i := range x {
		// Deterministic, sign-mixed, non-degenerate probe input.
		x[i] = 1 + float64(i%7)*0.125 - float64(i%3)
	}

	choices := make([]KernelChoice, numClasses)
	for c := range choices {
		choices[c] = KernelChoice{
			NRHS:   classWidths[c],
			Kernel: ks.sel.byClass[c].String(),
			Source: "default",
		}
	}

	// Classes probe in ascending order regardless of cfg.Widths order, so
	// the probe sequence — and with it any cache-store order — is fixed.
	for c := 0; c < numClasses; c++ {
		if !want[c] {
			continue
		}
		width := classWidths[c]
		probeW := width
		if probeW == 0 {
			probeW = genericProbeWidth
		}
		if cfg.Cache != nil {
			if name, ok := cfg.Cache.Lookup(width); ok {
				kid, err := kernelByName(name)
				if err != nil {
					return KernelReport{}, fmt.Errorf("spmv: cached kernel for nrhs=%d: %w", width, err)
				}
				e.installKernel(c, kid)
				choices[c] = KernelChoice{NRHS: width, Kernel: name, Source: "cached"}
				continue
			}
		}
		cands := tuneCandidates(c, cfg.RelaxedFP)
		probes := make(map[string]float64, len(cands))
		winner, bestNs, scalarNs := kernScalar, math.MaxFloat64, 0.0
		for _, kid := range cands {
			e.installKernel(c, kid)
			ns, err := probeNs(e, probeW, x, y, rows, cols)
			if err != nil {
				return KernelReport{}, err
			}
			probes[kid.String()] = ns
			if kid == kernScalar {
				scalarNs = ns
			}
			if ns < bestNs {
				winner, bestNs = kid, ns
			}
		}
		if winner != kernScalar && bestNs > scalarNs*tuneHysteresis {
			winner = kernScalar
		}
		e.installKernel(c, winner)
		choices[c] = KernelChoice{NRHS: width, Kernel: winner.String(), Source: "probed", ProbesNs: probes}
		if cfg.Cache != nil {
			cfg.Cache.Store(width, winner.String())
		}
	}

	rep := KernelReport{Choices: choices}
	ks.tuned = &rep
	return rep.clone(), nil
}

// probeNs times the installed backend at the given width: tuneWarmups
// warmup calls, then the best of tuneRounds rounds of tuneInner calls.
func probeNs(e tunable, nrhs int, x, y []float64, rows, cols int) (float64, error) {
	call := func() error {
		if nrhs == 1 {
			return e.Multiply(x[:cols], y[:rows])
		}
		return e.MultiplyBlock(x[:cols*nrhs], y[:rows*nrhs], nrhs)
	}
	for i := 0; i < tuneWarmups; i++ {
		if err := call(); err != nil {
			return 0, err
		}
	}
	best := math.MaxFloat64
	for r := 0; r < tuneRounds; r++ {
		t0 := time.Now()
		for i := 0; i < tuneInner; i++ {
			if err := call(); err != nil {
				return 0, err
			}
		}
		if d := float64(time.Since(t0).Nanoseconds()) / tuneInner; d < best {
			best = d
		}
	}
	return best, nil
}
