package spmv

import (
	"testing"

	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/sparse"
)

func TestEngineK1(t *testing.T) {
	c := sparse.NewCOO(4, 4)
	c.Add(0, 1, 2)
	c.Add(2, 3, 3)
	a := c.ToCSR()
	d := &distrib.Distribution{
		A: a, K: 1,
		Owner: make([]int, a.NNZ()),
		XPart: make([]int, 4),
		YPart: make([]int, 4),
		Fused: true,
	}
	e, err := NewEngine(d)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	checkAgainstSerial(t, a, e.Multiply)
	cs := e.ScheduleStats()
	if cs.TotalMsgs != 0 {
		t.Errorf("K=1 engine communicates: %d msgs", cs.TotalMsgs)
	}
}

func TestEngineEmptyMatrix(t *testing.T) {
	a := sparse.NewCOO(5, 5).ToCSR()
	d := &distrib.Distribution{
		A: a, K: 2,
		Owner: []int{},
		XPart: make([]int, 5),
		YPart: make([]int, 5),
		Fused: true,
	}
	e, err := NewEngine(d)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{9, 9, 9, 9, 9}
	e.Multiply(x, y)
	for i, v := range y {
		if v != 0 {
			t.Errorf("y[%d] = %v, want 0", i, v)
		}
	}
}

func TestEngineEmptyRowsAndCols(t *testing.T) {
	// Rows 1,3 and columns 0,2 empty.
	c := sparse.NewCOO(4, 4)
	c.Add(0, 1, 5)
	c.Add(2, 3, 7)
	a := c.ToCSR()
	d := &distrib.Distribution{
		A: a, K: 2,
		Owner: []int{0, 1},
		XPart: []int{0, 0, 1, 1},
		YPart: []int{0, 1, 1, 0},
		Fused: true,
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(d)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	checkAgainstSerial(t, a, e.Multiply)
}

func TestRoutedEngineMesh1x1(t *testing.T) {
	c := sparse.NewCOO(3, 3)
	c.Add(0, 0, 1)
	c.Add(1, 2, 2)
	a := c.ToCSR()
	d := &distrib.Distribution{
		A: a, K: 1,
		Owner: make([]int, 2),
		XPart: make([]int, 3),
		YPart: make([]int, 3),
		Fused: true,
	}
	e, err := NewRoutedEngine(d, core.NewMesh(1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	checkAgainstSerial(t, a, e.Multiply)
}

func TestMultiplyPanicsOnBadDims(t *testing.T) {
	c := sparse.NewCOO(3, 4)
	c.Add(0, 0, 1)
	a := c.ToCSR()
	d := &distrib.Distribution{
		A: a, K: 1,
		Owner: []int{0},
		XPart: make([]int, 4),
		YPart: make([]int, 3),
		Fused: true,
	}
	e, err := NewEngine(d)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on bad dims")
		}
	}()
	e.Multiply(make([]float64, 3), make([]float64, 3))
}
