package spmv

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/method"
	"repro/internal/sparse"
)

// kernelWidths is the equivalence sweep: every specialized width (1, 2,
// 4, 8), the generic class's probe neighborhood (3, 5), and an odd width
// past the widest specialization (9).
var kernelWidths = []int{1, 2, 3, 4, 5, 8, 9}

// ordFloat maps a float64 to a monotonically ordered integer so ulp
// distance is a subtraction.
func ordFloat(f float64) int64 {
	b := int64(math.Float64bits(f))
	if b < 0 {
		b = math.MinInt64 - b
	}
	return b
}

func ulpDiff(a, b float64) uint64 {
	if a == b {
		return 0
	}
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.MaxUint64
	}
	d := ordFloat(a) - ordFloat(b)
	if d < 0 {
		d = -d
	}
	return uint64(d)
}

// relaxedUlpTol bounds the reassociation error the relaxed backend may
// accumulate versus the scalar summation order on the test matrices;
// relaxedAbsTol covers near-zero outputs, where cancellation makes the
// ulp distance meaningless (the absolute error stays bounded by the
// summed term magnitudes, the ulp count does not).
const (
	relaxedUlpTol = 64
	relaxedAbsTol = 1e-11
)

// kernelSurfaces is one backend's outputs on all four multiply
// surfaces: forward and transpose, single-vector and blocked at every
// width in kernelWidths.
type kernelSurfaces struct {
	fwd  []float64
	fwdT []float64
	blk  map[int][]float64
	blkT map[int][]float64
}

// runKernelSurfaces force-installs the named backend and runs every
// surface into fresh outputs.
func runKernelSurfaces(t *testing.T, eng Multiplier, kernel string, a *sparse.CSR, X, XT []float64) kernelSurfaces {
	t.Helper()
	if _, err := eng.Autotune(TuneConfig{Force: kernel}); err != nil {
		t.Fatalf("force %s: %v", kernel, err)
	}
	s := kernelSurfaces{
		fwd:  make([]float64, a.Rows),
		fwdT: make([]float64, a.Cols),
		blk:  make(map[int][]float64, len(kernelWidths)),
		blkT: make(map[int][]float64, len(kernelWidths)),
	}
	if err := eng.Multiply(X[:a.Cols], s.fwd); err != nil {
		t.Fatalf("%s Multiply: %v", kernel, err)
	}
	if err := eng.MultiplyTranspose(XT[:a.Rows], s.fwdT); err != nil {
		t.Fatalf("%s MultiplyTranspose: %v", kernel, err)
	}
	for _, nrhs := range kernelWidths {
		y := make([]float64, a.Rows*nrhs)
		if err := eng.MultiplyBlock(X[:a.Cols*nrhs], y, nrhs); err != nil {
			t.Fatalf("%s MultiplyBlock(nrhs=%d): %v", kernel, nrhs, err)
		}
		s.blk[nrhs] = y
		yt := make([]float64, a.Cols*nrhs)
		if err := eng.MultiplyTransposeBlock(XT[:a.Rows*nrhs], yt, nrhs); err != nil {
			t.Fatalf("%s MultiplyTransposeBlock(nrhs=%d): %v", kernel, nrhs, err)
		}
		s.blkT[nrhs] = yt
	}
	return s
}

// compareVec checks got against want bitwise (ulpTol == 0) or within an
// ulp budget.
func compareVec(t *testing.T, label string, got, want []float64, ulpTol uint64) {
	t.Helper()
	for i := range want {
		if ulpTol == 0 {
			if got[i] != want[i] || math.Signbit(got[i]) != math.Signbit(want[i]) {
				t.Fatalf("%s: [%d] = %x, scalar %x (bitwise contract)", label, i, got[i], want[i])
			}
		} else if d := ulpDiff(got[i], want[i]); d > ulpTol && math.Abs(got[i]-want[i]) > relaxedAbsTol {
			t.Fatalf("%s: [%d] = %v vs scalar %v (%d ulp, tol %d)", label, i, got[i], want[i], d, ulpTol)
		}
	}
}

// TestKernelBackendEquivalence is the exhaustive backend contract:
// every kernel backend, on every registry method's build, at K ∈ {4,16}
// and nrhs ∈ {1,2,3,4,5,8,9}, must reproduce the scalar reference on
// all four multiply surfaces — bitwise for every non-relaxed backend,
// ulp-close for relaxed. The matrix is rectangular so a transposed
// dimension mix-up cannot cancel out.
func TestKernelBackendEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	maxW := kernelWidths[len(kernelWidths)-1]
	type fixture struct {
		a     *sparse.CSR
		x, xt []float64
	}
	rect := fixture{a: randomMatrix(r, 150, 110, 1700)}
	rect.x = randomVector(r, rect.a.Cols*maxW)
	rect.xt = randomVector(r, rect.a.Rows*maxW)
	// Some registry methods (reordering-based) only accept square
	// matrices; they run on the square fixture instead.
	square := fixture{a: randomMatrix(r, 130, 130, 1700)}
	square.x = randomVector(r, square.a.Cols*maxW)
	square.xt = randomVector(r, square.a.Rows*maxW)

	for _, k := range []int{4, 16} {
		opt := method.Options{Seed: 7, Pipeline: method.NewPipeline()}
		for _, name := range method.Names() {
			t.Run(fmt.Sprintf("%s/K=%d", name, k), func(t *testing.T) {
				fx := rect
				b, err := method.BuildByName(name, fx.a, k, opt)
				if err != nil {
					fx = square
					if b, err = method.BuildByName(name, fx.a, k, opt); err != nil {
						t.Fatalf("build: %v", err)
					}
				}
				a, X, XT := fx.a, fx.x, fx.xt
				eng, err := New(b)
				if err != nil {
					t.Fatalf("engine: %v", err)
				}
				t.Cleanup(eng.Close)
				ref := runKernelSurfaces(t, eng, "scalar", a, X, XT)
				for _, kern := range KernelNames() {
					if kern == "scalar" {
						continue
					}
					var tol uint64
					if kern == "relaxed" {
						tol = relaxedUlpTol
					}
					got := runKernelSurfaces(t, eng, kern, a, X, XT)
					compareVec(t, kern+" Multiply", got.fwd, ref.fwd, tol)
					compareVec(t, kern+" MultiplyTranspose", got.fwdT, ref.fwdT, tol)
					for _, nrhs := range kernelWidths {
						compareVec(t, fmt.Sprintf("%s MultiplyBlock nrhs=%d", kern, nrhs),
							got.blk[nrhs], ref.blk[nrhs], tol)
						compareVec(t, fmt.Sprintf("%s MultiplyTransposeBlock nrhs=%d", kern, nrhs),
							got.blkT[nrhs], ref.blkT[nrhs], tol)
					}
					// The nrhs=1 block layout is the single-vector layout, so
					// MultiplyBlock(·, ·, 1) must equal Multiply bitwise under
					// every backend, relaxed included.
					compareVec(t, kern+" MultiplyBlock(1) vs Multiply", got.blk[1], got.fwd, 0)
				}
			})
		}
	}
}

// TestKernelBackendsZeroAlloc pins the 0-alloc steady-state contract
// for every backend on every schedule: once a width's buffers exist and
// the backend (plus any sorted layout) is installed, no multiply
// surface may touch the heap.
func TestKernelBackendsZeroAlloc(t *testing.T) {
	fused, twoPhase, routed, x, y := allocFixtures(t)
	engines := []struct {
		name string
		eng  Multiplier
	}{
		{"fused", fused},
		{"twophase", twoPhase},
		{"routed", routed},
	}
	const nrhs = 8
	for _, ec := range engines {
		X := make([]float64, len(x)*nrhs)
		Y := make([]float64, len(y)*nrhs)
		copy(X, x)
		for _, kern := range KernelNames() {
			t.Run(ec.name+"/"+kern, func(t *testing.T) {
				if _, err := ec.eng.Autotune(TuneConfig{Force: kern}); err != nil {
					t.Fatal(err)
				}
				// Warm every surface: block buffers size on first use, the
				// transpose plan compiles lazily, and sorted layouts derive on
				// install.
				ec.eng.Multiply(x, y)
				ec.eng.MultiplyBlock(X, Y, nrhs)
				ec.eng.MultiplyTranspose(y, x)
				ec.eng.MultiplyTransposeBlock(Y, X, nrhs)
				checks := []struct {
					label string
					f     func()
				}{
					{"Multiply", func() { ec.eng.Multiply(x, y) }},
					{"MultiplyBlock", func() { ec.eng.MultiplyBlock(X, Y, nrhs) }},
					{"MultiplyTranspose", func() { ec.eng.MultiplyTranspose(y, x) }},
					{"MultiplyTransposeBlock", func() { ec.eng.MultiplyTransposeBlock(Y, X, nrhs) }},
				}
				for _, c := range checks {
					if n := testing.AllocsPerRun(50, c.f); n != 0 {
						t.Errorf("%s allocates %v times per call under %s, want 0", c.label, n, kern)
					}
				}
			})
		}
	}
}

// TestKernelBackendsOverwriteDirtyOutput pins the overwrite contract
// for every backend: y is output-only, so garbage (including NaN, which
// would propagate through any accidental accumulation) must not leak
// into the result.
func TestKernelBackendsOverwriteDirtyOutput(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	a := randomMatrix(r, 120, 90, 1100)
	opt := method.Options{Seed: 3, Pipeline: method.NewPipeline()}
	const nrhs = 4
	maxW := kernelWidths[len(kernelWidths)-1]
	X := randomVector(r, a.Cols*maxW)
	XT := randomVector(r, a.Rows*maxW)
	for _, name := range []string{"s2D", "2D", "s2D-b"} {
		b, err := method.BuildByName(name, a, 4, opt)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := New(b)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(eng.Close)
		ref := runKernelSurfaces(t, eng, "scalar", a, X, XT)
		dirty := func(n int) []float64 {
			out := make([]float64, n)
			for i := range out {
				out[i] = math.NaN()
			}
			return out
		}
		for _, kern := range KernelNames() {
			var tol uint64
			if kern == "relaxed" {
				tol = relaxedUlpTol
			}
			if _, err := eng.Autotune(TuneConfig{Force: kern}); err != nil {
				t.Fatal(err)
			}
			y := dirty(a.Rows)
			if err := eng.Multiply(X[:a.Cols], y); err != nil {
				t.Fatal(err)
			}
			compareVec(t, name+"/"+kern+" dirty Multiply", y, ref.fwd, tol)
			yb := dirty(a.Rows * nrhs)
			if err := eng.MultiplyBlock(X[:a.Cols*nrhs], yb, nrhs); err != nil {
				t.Fatal(err)
			}
			compareVec(t, name+"/"+kern+" dirty MultiplyBlock", yb, ref.blk[nrhs], tol)
			yt := dirty(a.Cols)
			if err := eng.MultiplyTranspose(XT[:a.Rows], yt); err != nil {
				t.Fatal(err)
			}
			compareVec(t, name+"/"+kern+" dirty MultiplyTranspose", yt, ref.fwdT, tol)
			ytb := dirty(a.Cols * nrhs)
			if err := eng.MultiplyTransposeBlock(XT[:a.Rows*nrhs], ytb, nrhs); err != nil {
				t.Fatal(err)
			}
			compareVec(t, name+"/"+kern+" dirty MultiplyTransposeBlock", ytb, ref.blkT[nrhs], tol)
		}
	}
}

// TestSortedByWorkInvariants checks the sorted-slot recompilation
// directly: descending work, a permutation of the original slots, and
// verbatim per-slot runs.
func TestSortedByWorkInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	nzs := make([]localNZ, 0, 600)
	for i := 0; i < 600; i++ {
		nz := localNZ{row: r.Intn(80), src: r.Intn(120), val: r.NormFloat64()}
		if r.Intn(4) == 0 {
			nz.src = -1 - r.Intn(40) // external slot
		}
		nzs = append(nzs, nz)
	}
	flat := compileRows(nzs)
	s := sortedByWork(&flat)
	if len(s.rows) != len(flat.rows) {
		t.Fatalf("slot count changed: %d vs %d", len(s.rows), len(flat.rows))
	}
	work := func(k *rowKernel, t int) int {
		return (k.locPtr[t+1] - k.locPtr[t]) + (k.extPtr[t+1] - k.extPtr[t])
	}
	seen := make(map[int]int, len(flat.rows))
	for i, row := range flat.rows {
		seen[row] = i
	}
	prev := int(^uint(0) >> 1)
	for st := range s.rows {
		w := work(&s, st)
		if w > prev {
			t.Fatalf("slot %d work %d exceeds previous %d (must descend)", st, w, prev)
		}
		prev = w
		ft, ok := seen[s.rows[st]]
		if !ok {
			t.Fatalf("sorted slot %d row %d not in original kernel", st, s.rows[st])
		}
		if w != work(&flat, ft) {
			t.Fatalf("row %d work changed: %d vs %d", s.rows[st], w, work(&flat, ft))
		}
		for i := 0; i < w-(s.extPtr[st+1]-s.extPtr[st]); i++ {
			if s.locSrc[s.locPtr[st]+i] != flat.locSrc[flat.locPtr[ft]+i] ||
				s.locVal[s.locPtr[st]+i] != flat.locVal[flat.locPtr[ft]+i] {
				t.Fatalf("row %d local run not copied verbatim", s.rows[st])
			}
		}
	}
}
