package spmv

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/method"
	"repro/internal/sparse"
)

// transposeMultiplier is the Aᵀx surface shared by Engine and
// RoutedEngine, used to run every transpose test over all schedules.
type transposeMultiplier interface {
	Multiply(x, y []float64) error
	MultiplyTranspose(x, y []float64) error
	MultiplyTransposeBlock(X, Y []float64, nrhs int) error
	MultiplyTransposeMulti(X, Y [][]float64) error
}

// transposeFixtures returns the three schedules over one shared matrix.
func transposeFixtures(t *testing.T) (a *sparse.CSR, engines map[string]transposeMultiplier) {
	t.Helper()
	fused, twoPhase, routed, _, _ := allocFixtures(t)
	return fused.d.A, map[string]transposeMultiplier{
		"fused":    fused,
		"twophase": twoPhase,
		"routed":   routed,
	}
}

// checkTransposeAgainstSerial verifies y = Aᵀx against the serial CSR
// reference on the explicitly transposed matrix.
func checkTransposeAgainstSerial(t *testing.T, a *sparse.CSR, x, y []float64) {
	t.Helper()
	at := a.Transpose()
	want := make([]float64, a.Cols)
	at.MulVec(x, want)
	for j := range want {
		if math.Abs(want[j]-y[j]) > 1e-9*(1+math.Abs(want[j])) {
			t.Fatalf("y[%d] = %v, want %v", j, y[j], want[j])
		}
	}
}

// TestMultiplyTransposeMatchesSerial runs every schedule against the
// serial Aᵀx reference on the shared square fixture.
func TestMultiplyTransposeMatchesSerial(t *testing.T) {
	a, engines := transposeFixtures(t)
	r := rand.New(rand.NewSource(97))
	x := randomVector(r, a.Rows)
	for name, eng := range engines {
		t.Run(name, func(t *testing.T) {
			y := make([]float64, a.Cols)
			eng.MultiplyTranspose(x, y)
			checkTransposeAgainstSerial(t, a, x, y)
		})
	}
}

// TestMultiplyTransposeAllMethods pins the acceptance contract: for
// every registry method at K ∈ {4, 16}, MultiplyTranspose matches the
// serial CSR Aᵀx reference and the blocked path matches per column.
func TestMultiplyTransposeAllMethods(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	a := randomMatrix(r, 300, 300, 3000)
	at := a.Transpose()
	x := randomVector(r, a.Rows)
	opt := method.Options{Seed: 11, Pipeline: method.NewPipeline()}
	want := make([]float64, a.Cols)
	at.MulVec(x, want)
	for _, k := range []int{4, 16} {
		for _, name := range method.Names() {
			t.Run(fmt.Sprintf("%s/K=%d", name, k), func(t *testing.T) {
				b, err := method.BuildByName(name, a, k, opt)
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				eng, err := New(b)
				if err != nil {
					t.Fatalf("engine: %v", err)
				}
				t.Cleanup(eng.Close)
				y := make([]float64, a.Cols)
				eng.MultiplyTranspose(x, y)
				for j := range want {
					if math.Abs(want[j]-y[j]) > 1e-9*(1+math.Abs(want[j])) {
						t.Fatalf("y[%d] = %v, want %v", j, y[j], want[j])
					}
				}
				// Blocked path at K=4 widths 1 and 4: column 0 must equal
				// the single-vector result bit for bit at nrhs=1.
				const nrhs = 4
				X := make([]float64, a.Rows*nrhs)
				for i := 0; i < a.Rows; i++ {
					for c := 0; c < nrhs; c++ {
						X[i*nrhs+c] = x[i] * float64(c+1)
					}
				}
				Y := make([]float64, a.Cols*nrhs)
				eng.MultiplyTransposeBlock(X, Y, nrhs)
				for c := 0; c < nrhs; c++ {
					for j := range want {
						got := Y[j*nrhs+c]
						w := want[j] * float64(c+1)
						if math.Abs(w-got) > 1e-8*(1+math.Abs(w)) {
							t.Fatalf("block col %d: y[%d] = %v, want %v", c, j, got, w)
						}
					}
				}
			})
		}
	}
}

// TestMultiplyTransposeRectangular exercises the transpose on a tall
// rectangular matrix — the shape normal-equation solvers feed it.
func TestMultiplyTransposeRectangular(t *testing.T) {
	r := rand.New(rand.NewSource(113))
	a := randomMatrix(r, 420, 150, 2900)
	x := randomVector(r, a.Rows)
	opt := method.Options{Seed: 3, Pipeline: method.NewPipeline()}
	for _, name := range []string{"1D", "2D", "s2D", "s2D-b"} {
		t.Run(name, func(t *testing.T) {
			b, err := method.BuildByName(name, a, 8, opt)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			eng, err := New(b)
			if err != nil {
				t.Fatalf("engine: %v", err)
			}
			t.Cleanup(eng.Close)
			y := make([]float64, a.Cols)
			eng.MultiplyTranspose(x, y)
			checkTransposeAgainstSerial(t, a, x, y)
			// Forward product still works on the same engine afterwards.
			fx := randomVector(r, a.Cols)
			fy := make([]float64, a.Rows)
			eng.Multiply(fx, fy)
			fwant := make([]float64, a.Rows)
			a.MulVec(fx, fwant)
			for i := range fwant {
				if math.Abs(fwant[i]-fy[i]) > 1e-9*(1+math.Abs(fwant[i])) {
					t.Fatalf("forward after transpose: y[%d] = %v, want %v", i, fy[i], fwant[i])
				}
			}
		})
	}
}

// TestMultiplyTransposeBlockWidths runs the blocked transpose at
// power-of-two and odd widths against per-column serial references and
// pins the nrhs=1 bit-identity with MultiplyTranspose.
func TestMultiplyTransposeBlockWidths(t *testing.T) {
	a, engines := transposeFixtures(t)
	at := a.Transpose()
	r := rand.New(rand.NewSource(131))
	for name, eng := range engines {
		for _, nrhs := range []int{1, 3, 8, 2} {
			X := blockOf(r, a.Rows, nrhs)
			Y := make([]float64, a.Cols*nrhs)
			eng.MultiplyTransposeBlock(X, Y, nrhs)
			x := make([]float64, a.Rows)
			want := make([]float64, a.Cols)
			for c := 0; c < nrhs; c++ {
				for i := range x {
					x[i] = X[i*nrhs+c]
				}
				at.MulVec(x, want)
				for j := range want {
					got := Y[j*nrhs+c]
					if math.Abs(want[j]-got) > 1e-9*(1+math.Abs(want[j])) {
						t.Fatalf("%s nrhs=%d col %d: y[%d] = %v, want %v", name, nrhs, c, j, got, want[j])
					}
				}
			}
		}
		// nrhs=1 bit-identity.
		x := randomVector(r, a.Rows)
		want := make([]float64, a.Cols)
		eng.MultiplyTranspose(x, want)
		got := make([]float64, a.Cols)
		eng.MultiplyTransposeBlock(x, got, 1)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("%s: MultiplyTransposeBlock(nrhs=1) y[%d] = %x, MultiplyTranspose %x",
					name, j, got[j], want[j])
			}
		}
	}
}

// TestMultiplyTransposeMultiMatchesBlock pins the slice-of-vectors
// wrapper to the column-blocked transpose path.
func TestMultiplyTransposeMultiMatchesBlock(t *testing.T) {
	a, engines := transposeFixtures(t)
	r := rand.New(rand.NewSource(139))
	const nrhs = 3
	X := make([][]float64, nrhs)
	Y := make([][]float64, nrhs)
	for c := range X {
		X[c] = randomVector(r, a.Rows)
		Y[c] = make([]float64, a.Cols)
	}
	xb := make([]float64, a.Rows*nrhs)
	for c := range X {
		for i, v := range X[c] {
			xb[i*nrhs+c] = v
		}
	}
	yb := make([]float64, a.Cols*nrhs)
	for name, eng := range engines {
		eng.MultiplyTransposeBlock(xb, yb, nrhs)
		eng.MultiplyTransposeMulti(X, Y)
		for c := range Y {
			for j, v := range Y[c] {
				if v != yb[j*nrhs+c] {
					t.Fatalf("%s: MultiplyTransposeMulti col %d y[%d] = %x, block %x",
						name, c, j, v, yb[j*nrhs+c])
				}
			}
		}
	}
}

// TestMultiplyTransposeDeterministic pins bitwise run-to-run
// reproducibility and rebuilt-engine agreement for the transpose path.
func TestMultiplyTransposeDeterministic(t *testing.T) {
	a, engines := transposeFixtures(t)
	r := rand.New(rand.NewSource(149))
	x := randomVector(r, a.Rows)
	y := make([]float64, a.Cols)
	for name, eng := range engines {
		eng.MultiplyTranspose(x, y)
		want := append([]float64(nil), y...)
		for rep := 0; rep < 5; rep++ {
			eng.MultiplyTranspose(x, y)
			for j := range y {
				if y[j] != want[j] {
					t.Fatalf("%s rep %d: y[%d] = %x, first run %x", name, rep, j, y[j], want[j])
				}
			}
		}
	}
	// Rebuilt engines over the same distribution must agree bitwise.
	_, engines2 := transposeFixtures(t)
	for name, eng := range engines {
		eng.MultiplyTranspose(x, y)
		want := append([]float64(nil), y...)
		engines2[name].MultiplyTranspose(x, y)
		for j := range y {
			if y[j] != want[j] {
				t.Fatalf("%s: rebuilt engine diverges at y[%d]: %x vs %x", name, j, y[j], want[j])
			}
		}
	}
}

// TestForwardTransposeInterleaved alternates forward and transpose
// calls — scalar and blocked at changing widths — on one engine, since
// the routed schedule shares its dense routing buffers between the two
// directions.
func TestForwardTransposeInterleaved(t *testing.T) {
	a, engines := transposeFixtures(t)
	at := a.Transpose()
	r := rand.New(rand.NewSource(157))
	for name, eng := range engines {
		for step, nrhs := range []int{4, 1, 2, 8, 3} {
			// Forward block.
			X := blockOf(r, a.Cols, nrhs)
			Y := make([]float64, a.Rows*nrhs)
			eng.(blockMultiplier).MultiplyBlock(X, Y, nrhs)
			checkBlockAgainstSerial(t, a, X, Y, nrhs)
			// Transpose block at the same width.
			XT := blockOf(r, a.Rows, nrhs)
			YT := make([]float64, a.Cols*nrhs)
			eng.MultiplyTransposeBlock(XT, YT, nrhs)
			x := make([]float64, a.Rows)
			want := make([]float64, a.Cols)
			for c := 0; c < nrhs; c++ {
				for i := range x {
					x[i] = XT[i*nrhs+c]
				}
				at.MulVec(x, want)
				for j := range want {
					if math.Abs(want[j]-YT[j*nrhs+c]) > 1e-9*(1+math.Abs(want[j])) {
						t.Fatalf("%s step %d col %d: y[%d] = %v, want %v",
							name, step, c, j, YT[j*nrhs+c], want[j])
					}
				}
			}
		}
		// Scalar round-trip last.
		x := randomVector(r, a.Rows)
		y := make([]float64, a.Cols)
		eng.MultiplyTranspose(x, y)
		checkTransposeAgainstSerial(t, a, x, y)
	}
}

// TestMultiplyTransposeZeroAllocAllMethods pins the steady-state 0-alloc
// contract of MultiplyTranspose and MultiplyTransposeBlock for every
// registry method.
func TestMultiplyTransposeZeroAllocAllMethods(t *testing.T) {
	r := rand.New(rand.NewSource(163))
	a := randomMatrix(r, 300, 300, 3000)
	const k, nrhs = 8, 4
	opt := method.Options{Seed: 11, Pipeline: method.NewPipeline()}
	x := randomVector(r, a.Rows)
	y := make([]float64, a.Cols)
	X := blockOf(r, a.Rows, nrhs)
	Y := make([]float64, a.Cols*nrhs)
	for _, name := range method.Names() {
		t.Run(name, func(t *testing.T) {
			b, err := method.BuildByName(name, a, k, opt)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			eng, err := New(b)
			if err != nil {
				t.Fatalf("engine: %v", err)
			}
			t.Cleanup(eng.Close)
			eng.MultiplyTranspose(x, y) // compile the transpose plan
			if n := testing.AllocsPerRun(50, func() { eng.MultiplyTranspose(x, y) }); n != 0 {
				t.Errorf("MultiplyTranspose allocates %v times per call, want 0", n)
			}
			eng.MultiplyTransposeBlock(X, Y, nrhs) // size the block buffers
			if n := testing.AllocsPerRun(50, func() { eng.MultiplyTransposeBlock(X, Y, nrhs) }); n != 0 {
				t.Errorf("MultiplyTransposeBlock allocates %v times per call, want 0", n)
			}
			checkTransposeAgainstSerial(t, a, x, y)
		})
	}
}
