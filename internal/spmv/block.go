package spmv

// This file adds the multi-RHS (SpMM) execution path on top of the
// compiled plans: Y ← AX for nrhs right-hand sides at once. The static
// schedule is untouched — every packet keeps its fixed destination and
// index arrays, so a block multiply sends exactly the same number of
// messages as a single multiply and only the value payloads widen to
// nrhs words per index. Vectors use the column-blocked (SoA row-major)
// layout: column c's entry for row i lives at X[i*nrhs+c], which keeps
// every kernel's inner loop a unit-stride run over the nrhs columns.
//
// Block buffers are carved lazily on the first MultiplyBlock at a given
// width and cached at the maximum width seen, so steady-state block
// multiplies — like single ones — perform zero heap allocations.

// blockIO holds the pack/unpack scratch MultiplyMulti uses to adapt
// slice-of-vectors callers to the column-blocked layout.
type blockIO struct {
	xb, yb []float64
}

// pack interleaves X (nrhs vectors of length n) into the column-blocked
// scratch and returns it.
func (io *blockIO) pack(X [][]float64, n int) []float64 {
	nrhs := len(X)
	io.xb = growBlock(io.xb, n*nrhs)
	for c, xc := range X {
		if len(xc) != n {
			panic("spmv: dimension mismatch")
		}
		for i, v := range xc {
			io.xb[i*nrhs+c] = v
		}
	}
	return io.xb
}

// unpack de-interleaves the column-blocked result into Y.
func (io *blockIO) unpack(Y [][]float64, n int) {
	nrhs := len(Y)
	for c, yc := range Y {
		if len(yc) != n {
			panic("spmv: dimension mismatch")
		}
		for i := range yc {
			yc[i] = io.yb[i*nrhs+c]
		}
	}
}

// multi runs one slice-of-vectors multiply through the column-blocked
// path: pack X into scratch, mulBlock, unpack into Y. Shared by both
// engines' MultiplyMulti.
func (io *blockIO) multi(X, Y [][]float64, cols, rows int, mulBlock func(X, Y []float64, nrhs int) error) error {
	nrhs := len(X)
	if nrhs == 0 || len(Y) != nrhs {
		panic("spmv: dimension mismatch")
	}
	xb := io.pack(X, cols)
	io.yb = growBlock(io.yb, rows*nrhs)
	if err := mulBlock(xb, io.yb, nrhs); err != nil {
		return err
	}
	io.unpack(Y, rows)
	return nil
}

// checkBlockDims panics unless X and Y are column-blocked for nrhs
// right-hand sides over a cols×rows operator.
func checkBlockDims(X, Y []float64, nrhs, cols, rows int) {
	if nrhs < 1 {
		panic("spmv: nrhs must be >= 1")
	}
	if len(X) != cols*nrhs || len(Y) != rows*nrhs {
		panic("spmv: dimension mismatch")
	}
}

// addBlock accumulates src into dst (both nrhs wide).
func addBlock(dst, src []float64) {
	for c := range dst {
		dst[c] += src[c]
	}
}

// ---- Engine ----

// ensureBlock (re)sizes every per-proc block buffer for width nrhs.
// Called with the workers parked, before dispatch; growth allocates,
// repeat calls at or below the cached capacity only re-slice.
func (e *Engine) ensureBlock(nrhs int) {
	if nrhs == e.blockNRHS {
		return
	}
	for _, pr := range e.procs {
		pr.extXB = growBlock(pr.extXB, len(pr.extSlot)*nrhs)
		pr.accB = growBlock(pr.accB, nrhs)
		for _, sp := range pr.sends {
			sp.ensureBlock(nrhs)
		}
		for _, sp := range pr.ySends {
			sp.ensureBlock(nrhs)
		}
	}
	e.blockNRHS = nrhs
}

// MultiplyBlock computes Y ← AX for nrhs right-hand sides in the
// column-blocked layout (X[j*nrhs+c] is x_j of column c). It reuses the
// engine's compiled plan with nrhs-wide payloads: one packet per peer per
// phase regardless of nrhs, and zero steady-state heap allocations once
// the block buffers are sized for the width. nrhs=1 is bit-identical to
// Multiply. Like Multiply, calls must not overlap on one engine.
func (e *Engine) MultiplyBlock(X, Y []float64, nrhs int) error {
	a := e.d.A
	checkBlockDims(X, Y, nrhs, a.Cols, a.Rows)
	e.ensureBlock(nrhs)
	e.curKern = e.sel.forWidth(nrhs)
	return e.pool.dispatchBlock(X, Y, nrhs)
}

// MultiplyMulti computes Y[c] ← A·X[c] for every column c in one block
// multiply. X and Y are nrhs vectors of the matrix's dimensions; the
// engine packs them into its column-blocked scratch, runs MultiplyBlock,
// and unpacks — zero steady-state allocations at a fixed nrhs.
func (e *Engine) MultiplyMulti(X, Y [][]float64) error {
	return e.io.multi(X, Y, e.d.A.Cols, e.d.A.Rows, e.MultiplyBlock)
}

// runFusedBlock is runFused with nrhs-wide payloads: same packets, same
// sender-ordered folds, block kernels.
//
//spmv:hotpath
func (e *Engine) runFusedBlock(pr *proc, x, y []float64, nrhs int, kid kernelID) {
	pc := e.phaseClock(pr)
	for _, sp := range pr.sends {
		sp.fillBlock(kid, x, pr.extXB, nrhs)
		e.procs[sp.dest].inbox[0] <- sp.bufB
	}
	pc.lap(&e.pt.expandNs)
	for _, pk := range pr.recv[0].gather(pr.inbox[0]) {
		slots := pr.recvX[pk.from]
		for t, s := range slots {
			copy(pr.extXB[s*nrhs:(s+1)*nrhs], pk.xVal[t*nrhs:(t+1)*nrhs])
		}
		for t, i := range pk.yIdx {
			addBlock(y[i*nrhs:(i+1)*nrhs], pk.yVal[t*nrhs:(t+1)*nrhs])
		}
	}
	pc.lap(&e.pt.foldNs)
	ownOf(&pr.own, &pr.ownS, kid).addIntoBlockK(kid, y, x, pr.extXB, nrhs, pr.accB)
	pc.lap(&e.pt.computeNs)
}

// runTwoPhaseBlock is runTwoPhase with nrhs-wide payloads.
//
//spmv:hotpath
func (e *Engine) runTwoPhaseBlock(pr *proc, x, y []float64, nrhs int, kid kernelID) {
	pc := e.phaseClock(pr)
	// Phase 0 — Expand.
	for _, sp := range pr.sends {
		sp.fillBlock(kid, x, pr.extXB, nrhs)
		e.procs[sp.dest].inbox[0] <- sp.bufB
	}
	for _, pk := range pr.recv[0].gather(pr.inbox[0]) {
		slots := pr.recvX[pk.from]
		for t, s := range slots {
			copy(pr.extXB[s*nrhs:(s+1)*nrhs], pk.xVal[t*nrhs:(t+1)*nrhs])
		}
	}
	pc.lap(&e.pt.expandNs)
	// Multiply.
	ownOf(&pr.own, &pr.ownS, kid).addIntoBlockK(kid, y, x, pr.extXB, nrhs, pr.accB)
	pc.lap(&e.pt.computeNs)
	// Phase 1 — Fold.
	for _, sp := range pr.ySends {
		sp.fillBlock(kid, x, pr.extXB, nrhs)
		e.procs[sp.dest].inbox[1] <- sp.bufB
	}
	for _, pk := range pr.recv[1].gather(pr.inbox[1]) {
		for t, i := range pk.yIdx {
			addBlock(y[i*nrhs:(i+1)*nrhs], pk.yVal[t*nrhs:(t+1)*nrhs])
		}
	}
	pc.lap(&e.pt.foldNs)
}

// ---- RoutedEngine ----

// ensureBlock mirrors Engine.ensureBlock for the routed plan's dense
// routing buffers and forward packets.
func (e *RoutedEngine) ensureBlock(nrhs int) {
	if nrhs == e.blockNRHS {
		return
	}
	for _, pr := range e.rprocs {
		pr.extXB = growBlock(pr.extXB, len(pr.extSlot)*nrhs)
		pr.routeXValB = growBlock(pr.routeXValB, len(pr.routeXVal)*nrhs)
		pr.routeYValB = growBlock(pr.routeYValB, len(pr.routeYVal)*nrhs)
		pr.accB = growBlock(pr.accB, nrhs)
		for _, sp := range pr.p1Sends {
			sp.ensureBlock(nrhs)
		}
		for _, fp := range pr.p2Sends {
			fp.bufB = packet{
				from: fp.buf.from,
				xIdx: fp.buf.xIdx,
				xVal: growBlock(fp.bufB.xVal, len(fp.xSlot)*nrhs),
				yIdx: fp.buf.yIdx,
				yVal: growBlock(fp.bufB.yVal, len(fp.ySlot)*nrhs),
			}
		}
	}
	// The dense routing buffers are shared with the transpose plan; it
	// must re-slice them on its next block call (see ensureTransposeBlock).
	e.tBlockNRHS = 0
	e.blockNRHS = nrhs
}

// MultiplyBlock computes Y ← AX for nrhs right-hand sides with the routed
// two-hop schedule; see Engine.MultiplyBlock for the layout and the
// allocation contract.
func (e *RoutedEngine) MultiplyBlock(X, Y []float64, nrhs int) error {
	a := e.d.A
	checkBlockDims(X, Y, nrhs, a.Cols, a.Rows)
	e.ensureBlock(nrhs)
	e.curKern = e.sel.forWidth(nrhs)
	return e.pool.dispatchBlock(X, Y, nrhs)
}

// MultiplyMulti computes Y[c] ← A·X[c] for every column c in one routed
// block multiply; see Engine.MultiplyMulti.
func (e *RoutedEngine) MultiplyMulti(X, Y [][]float64) error {
	return e.io.multi(X, Y, e.d.A.Cols, e.d.A.Rows, e.MultiplyBlock)
}

// runBlock is run with nrhs-wide payloads: identical routing, combining,
// and fold order, block kernels and block copies.
//
//spmv:hotpath
func (e *RoutedEngine) runBlock(pr *rproc, x, y []float64, nrhs int, kid kernelID) {
	ryb := pr.routeYValB
	for i := range ryb {
		ryb[i] = 0
	}
	// Seed the routing buffers with self-routed payloads. selfY's rows
	// index routing slots, not packet positions, so the relaxed loops may
	// run here; the sorted layout still never applies (it is derived only
	// for the own compute kernels).
	for _, s := range pr.selfX {
		copy(pr.routeXValB[s.slot*nrhs:(s.slot+1)*nrhs], x[s.idx*nrhs:(s.idx+1)*nrhs])
	}
	pr.selfY.addIntoBlockK(kid, ryb, x, nil, nrhs, pr.accB)
	// Phase 1 sends.
	for _, sp := range pr.p1Sends {
		sp.fillBlock(kid, x, nil, nrhs)
		e.rprocs[sp.dest].inbox[0] <- sp.bufB
	}
	// Phase 1 receives: combine into the dense routing buffers.
	for _, pk := range pr.recv[0].gather(pr.inbox[0]) {
		tr := pr.p1Recv[pk.from]
		for t, rs := range tr.xRoute {
			src := pk.xVal[t*nrhs : (t+1)*nrhs]
			copy(pr.routeXValB[rs*nrhs:(rs+1)*nrhs], src)
			if s := tr.xExt[t]; s >= 0 {
				copy(pr.extXB[s*nrhs:(s+1)*nrhs], src)
			}
		}
		for t, s := range tr.ySlot {
			addBlock(ryb[s*nrhs:(s+1)*nrhs], pk.yVal[t*nrhs:(t+1)*nrhs])
		}
	}
	// Phase 2 sends: forward combined payloads to final destinations.
	for _, fp := range pr.p2Sends {
		for t, s := range fp.xSlot {
			copy(fp.bufB.xVal[t*nrhs:(t+1)*nrhs], pr.routeXValB[s*nrhs:(s+1)*nrhs])
		}
		for t, s := range fp.ySlot {
			copy(fp.bufB.yVal[t*nrhs:(t+1)*nrhs], ryb[s*nrhs:(s+1)*nrhs])
		}
		e.rprocs[fp.dest].inbox[1] <- fp.bufB
	}
	// Rows this proc owns fold straight out of the routing buffer.
	for t, i := range pr.yLocalRows {
		addBlock(y[i*nrhs:(i+1)*nrhs], ryb[pr.yLocalSlot[t]*nrhs:(pr.yLocalSlot[t]+1)*nrhs])
	}
	// Phase 2 receives.
	for _, pk := range pr.recv[1].gather(pr.inbox[1]) {
		slots := pr.p2Recv[pk.from]
		for t, s := range slots {
			copy(pr.extXB[s*nrhs:(s+1)*nrhs], pk.xVal[t*nrhs:(t+1)*nrhs])
		}
		for t, i := range pk.yIdx {
			addBlock(y[i*nrhs:(i+1)*nrhs], pk.yVal[t*nrhs:(t+1)*nrhs])
		}
	}
	// Compute local rows.
	ownOf(&pr.own, &pr.ownS, kid).addIntoBlockK(kid, y, x, pr.extXB, nrhs, pr.accB)
}
