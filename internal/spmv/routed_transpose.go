package spmv

import "sort"

// This file adds y ← Aᵀx to the routed two-hop engine by reversing the
// compiled forward route edge for edge: the transpose's phase 1 is the
// reverse of the forward phase 2, its phase 2 the reverse of the
// forward phase 1, and every intermediate keeps its combining role with
// the payload directions swapped. An x entry that fanned out through an
// intermediate to several consumers becomes several partial sums
// combining at that intermediate on the way back to the owner, and a
// partial-sum tree becomes an x broadcast tree — so message counts,
// index sets, and payload sizes all match the forward plan's.
//
// The dense routing buffers swap roles too: routeYVal's row-space
// layout carries the transpose's routed x values, routeXVal's
// column-space layout carries the transpose's combined partials. Both
// buffers (and their block twins) are shared with the forward plan —
// calls on one engine never overlap, so no copy is live across both.

// rtproc is one processor's compiled routed transpose plan.
type rtproc struct {
	// extSlot maps a remote x row to a slot in extX — the rows this proc
	// computed fold partials for in the forward plan.
	extSlot map[int]int
	extX    []float64

	// own computes the locally-owned output columns (kernel "rows" are
	// global column indices; external sources read extX). ownS is its
	// sorted-slot twin, derived lazily once a sorted-layout backend is
	// installed.
	own  rowKernel
	ownS rowKernel

	// selfPartial accumulates this proc's partials for external columns
	// that were delivered to it directly by their owners (the forward
	// phase-1 xExt path) into the column buffer; its rows field holds
	// routeXVal slots. It reads local x only.
	selfPartial rowKernel

	// rxtToExt copies the rows this proc consumes that route through
	// itself out of the row buffer into extX after phase 1:
	// extX[idx] = routeYVal[slot].
	rxtToExt []slotIdx

	// Phase-1 packets: one to each forward phase-2 sender, pairing the x
	// rows this proc owns (which that sender combined for it) with the
	// partials for the columns that sender delivered.
	t1Sends []*sendPlan
	// t1Recv[sender] is this proc's own forward phase-2 plan to that
	// destination: its ySlot array places incoming x rows in the row
	// buffer, its xSlot array combines incoming partials in the column
	// buffer. No extra storage — the forward slot arrays are reused.
	t1Recv map[int]*fwdPlan

	// Phase-2 forwards: one to each forward phase-1 sender, x rows
	// gathered from the row buffer (slots alias p1Recv's ySlot) and
	// combined partials from the column buffer (slots alias xRoute).
	t2Sends []*fwdPlan
	// t2RecvX[sender] maps incoming phase-2 x rows to extX slots.
	t2RecvX map[int][]int

	recv [2]recvPlan

	// Block (multi-RHS) twins, sized lazily by ensureTransposeBlock.
	extXB []float64
	accB  []float64
}

// ensureTranspose compiles the routed transpose plan once, with the
// workers parked.
func (e *RoutedEngine) ensureTranspose() {
	if e.tready {
		return
	}
	mesh := e.mesh
	// Recompute midNZ as compile did, in sorted destination order so the
	// derived kernels are deterministic across rebuilt engines.
	midNZ := make([]map[int][]localNZ, len(e.rprocs))
	for _, pr := range e.rprocs {
		midNZ[pr.id] = make(map[int][]localNZ)
		for _, dest := range sortedKeys(pr.preGroups) {
			mid := mesh.PartAt(mesh.RowOf(dest), mesh.ColOf(pr.id))
			midNZ[pr.id][mid] = append(midNZ[pr.id][mid], pr.preGroups[dest]...)
		}
	}

	for _, pr := range e.rprocs {
		t := &rtproc{
			extSlot: make(map[int]int),
			t1Recv:  make(map[int]*fwdPlan),
			t2RecvX: make(map[int][]int),
		}
		for _, dst := range sortedKeys(pr.preGroups) {
			for _, i := range compiledGroupRows(pr.preGroups[dst]) {
				if _, ok := t.extSlot[i]; !ok {
					t.extSlot[i] = len(t.extSlot)
				}
			}
		}
		t.extX = make([]float64, len(t.extSlot))
		pr.t = t
	}

	for _, pr := range e.rprocs {
		t := pr.t
		extIdx := invertSlots(pr.extSlot) // forward slot → global column

		// Split this proc's nonzeros into the transpose frame.
		var own []localNZ
		var selfNZ []localNZ
		t1Pre := make(map[int][]localNZ)
		for _, nz := range pr.ownRows {
			if nz.src >= 0 {
				own = append(own, localNZ{row: nz.src, src: nz.row, val: nz.val})
				continue
			}
			// External column: the partial retraces the column's forward
			// delivery path — via the intermediate that shipped it here, or
			// straight into the column buffer when this proc was its own
			// intermediate.
			j := extIdx[-(nz.src + 1)]
			mid := mesh.PartAt(mesh.RowOf(pr.id), mesh.ColOf(e.d.XPart[j]))
			tnz := localNZ{row: j, src: nz.row, val: nz.val}
			if mid == pr.id {
				selfNZ = append(selfNZ, tnz)
			} else {
				t1Pre[mid] = append(t1Pre[mid], tnz)
			}
		}
		for _, dst := range sortedKeys(pr.preGroups) {
			for _, nz := range pr.preGroups[dst] {
				own = append(own, localNZ{row: nz.src, src: -(t.extSlot[nz.row] + 1), val: nz.val})
			}
		}
		t.own = compileRows(own)
		t.selfPartial = compileRows(selfNZ)
		for i, j := range t.selfPartial.rows {
			t.selfPartial.rows[i] = pr.xSlot[j]
		}

		// Phase-1 packets reverse the forward phase-2 packets into pr.
		var t1Dests []int
		for _, s := range e.rprocs {
			if s.id == pr.id {
				continue
			}
			if _, ok := s.phase2Dests[pr.id]; ok {
				t1Dests = append(t1Dests, s.id)
			}
		}
		sort.Ints(t1Dests)
		type reversed struct {
			dst  int
			rows []int // x rows pr owns, in the forward packet's order
			grp  rowKernel
		}
		revs := make([]reversed, 0, len(t1Dests))
		words := 0
		for _, sid := range t1Dests {
			var fp *fwdPlan
			for _, cand := range e.rprocs[sid].p2Sends {
				if cand.dest == pr.id {
					fp = cand
					break
				}
			}
			grp := compileRows(t1Pre[sid])
			words += len(fp.buf.yIdx) + len(grp.rows)
			revs = append(revs, reversed{dst: sid, rows: fp.buf.yIdx, grp: grp})
		}
		arena := newValArena(words)
		for _, rv := range revs {
			t.t1Sends = append(t.t1Sends, newSendPlan(pr.id, rv.dst, rv.rows, rv.grp, arena))
		}
		for _, fp := range pr.p2Sends {
			t.t1Recv[fp.dest] = fp
		}

		// Rows consumed here that route through this proc itself.
		for _, dst := range sortedKeys(pr.preGroups) {
			if mesh.PartAt(mesh.RowOf(dst), mesh.ColOf(pr.id)) != pr.id {
				continue
			}
			for _, i := range compiledGroupRows(pr.preGroups[dst]) {
				t.rxtToExt = append(t.rxtToExt, slotIdx{slot: pr.ySlot[i], idx: t.extSlot[i]})
			}
		}

		// Phase-2 forwards reverse the forward phase-1 packets into pr.
		var t2Dests []int
		for k := range pr.p1Recv {
			t2Dests = append(t2Dests, k)
		}
		sort.Ints(t2Dests)
		words = 0
		for _, k := range t2Dests {
			tr := pr.p1Recv[k]
			words += len(tr.ySlot) + len(tr.xRoute)
		}
		arena = newValArena(words)
		for _, k := range t2Dests {
			tr := pr.p1Recv[k]
			fp := &fwdPlan{dest: k, xSlot: tr.ySlot, ySlot: tr.xRoute}
			fp.buf = packet{
				from: pr.id,
				xIdx: compiledGroupRows(midNZ[k][pr.id]),
				xVal: arena.take(len(tr.ySlot)),
				yIdx: e.rprocs[k].hop1X[pr.id],
				yVal: arena.take(len(tr.xRoute)),
			}
			t.t2Sends = append(t.t2Sends, fp)
		}
		for _, sp := range pr.p1Sends {
			slots := make([]int, len(sp.grp.rows))
			for i, r := range sp.grp.rows {
				slots[i] = t.extSlot[r]
			}
			t.t2RecvX[sp.dest] = slots
		}

		// Receive plans: transpose phase-1 packets come from pr's forward
		// phase-2 destinations, phase-2 packets from its phase-1 ones.
		t1Senders := make([]int, 0, len(pr.p2Sends))
		for _, fp := range pr.p2Sends {
			t1Senders = append(t1Senders, fp.dest)
		}
		t2Senders := make([]int, 0, len(pr.p1Sends))
		for _, sp := range pr.p1Sends {
			t2Senders = append(t2Senders, sp.dest)
		}
		t.recv[0] = newRecvPlan(t1Senders)
		t.recv[1] = newRecvPlan(t2Senders)
	}
	e.tready = true
	if e.sel.anySorted() {
		// A sorted-layout backend was installed before the transpose plan
		// existed; derive its sorted own kernels now.
		e.ensureSorted()
	}
}

// MultiplyTranspose computes y ← Aᵀx with the reversed two-hop
// schedule; see Engine.MultiplyTranspose for the contract.
func (e *RoutedEngine) MultiplyTranspose(x, y []float64) error {
	a := e.d.A
	if len(x) != a.Rows || len(y) != a.Cols {
		panic("spmv: dimension mismatch")
	}
	e.ensureTranspose()
	e.curKern = e.sel.forWidth(1)
	return e.pool.dispatchOp(x, y, 0, true)
}

// runT executes one processor's transpose part of the reversed route.
// Throughout, pr.routeYVal is the row buffer (routed x values) and
// pr.routeXVal the column buffer (combined partials).
//
//spmv:hotpath
func (e *RoutedEngine) runT(pr *rproc, x, y []float64, kid kernelID) {
	t := pr.t
	rxb, cyb := pr.routeYVal, pr.routeXVal
	for i := range cyb {
		cyb[i] = 0
	}
	// Seed: rows this proc owns and routes as its own intermediate, and
	// partials for columns their owners delivered here directly.
	// selfPartial's rows index routing slots, not packet positions, so
	// the relaxed loops may run here; the sorted layout never applies.
	for i, r := range pr.yLocalRows {
		rxb[pr.yLocalSlot[i]] = x[r]
	}
	t.selfPartial.addIntoK(kid, cyb, x, nil)
	// Phase 1 sends.
	for _, sp := range t.t1Sends {
		sp.fill(kid, x, nil)
		e.rprocs[sp.dest].inbox[0] <- sp.buf
	}
	// Phase 1 receives: x rows overwrite the row buffer, partials combine
	// in the column buffer (same y_j from many consumers).
	for _, pk := range t.recv[0].gather(pr.inbox[0]) {
		fp := t.t1Recv[pk.from]
		for i, s := range fp.ySlot {
			rxb[s] = pk.xVal[i]
		}
		for i, s := range fp.xSlot {
			cyb[s] += pk.yVal[i]
		}
	}
	// Rows consumed locally that routed through this proc.
	for _, s := range t.rxtToExt {
		t.extX[s.idx] = rxb[s.slot]
	}
	// Phase 2 sends: forward x rows and combined partials to the owners.
	for _, fp := range t.t2Sends {
		for i, s := range fp.xSlot {
			fp.buf.xVal[i] = rxb[s]
		}
		for i, s := range fp.ySlot {
			fp.buf.yVal[i] = cyb[s]
		}
		e.rprocs[fp.dest].inbox[1] <- fp.buf
	}
	// Columns this proc owns whose combined partials sit in the column
	// buffer (their consumers reached them via this proc itself).
	for _, s := range pr.selfX {
		y[s.idx] += cyb[s.slot]
	}
	// Phase 2 receives.
	for _, pk := range t.recv[1].gather(pr.inbox[1]) {
		slots := t.t2RecvX[pk.from]
		for i, v := range pk.xVal {
			t.extX[slots[i]] = v
		}
		for i, j := range pk.yIdx {
			y[j] += pk.yVal[i]
		}
	}
	// Compute local columns.
	ownOf(&t.own, &t.ownS, kid).addIntoK(kid, y, x, t.extX)
}

// ---- blocked transpose ----

// ensureTransposeBlock mirrors RoutedEngine.ensureBlock for the
// transpose plan. The shared dense routing buffers are (re)sized here
// too, and the forward width is invalidated so its next block call
// re-slices them back.
func (e *RoutedEngine) ensureTransposeBlock(nrhs int) {
	if nrhs == e.tBlockNRHS {
		return
	}
	for _, pr := range e.rprocs {
		t := pr.t
		t.extXB = growBlock(t.extXB, len(t.extSlot)*nrhs)
		t.accB = growBlock(t.accB, nrhs)
		pr.routeXValB = growBlock(pr.routeXValB, len(pr.routeXVal)*nrhs)
		pr.routeYValB = growBlock(pr.routeYValB, len(pr.routeYVal)*nrhs)
		for _, sp := range t.t1Sends {
			sp.ensureBlock(nrhs)
		}
		for _, fp := range t.t2Sends {
			fp.bufB = packet{
				from: fp.buf.from,
				xIdx: fp.buf.xIdx,
				xVal: growBlock(fp.bufB.xVal, len(fp.xSlot)*nrhs),
				yIdx: fp.buf.yIdx,
				yVal: growBlock(fp.bufB.yVal, len(fp.ySlot)*nrhs),
			}
		}
	}
	e.blockNRHS = 0
	e.tBlockNRHS = nrhs
}

// MultiplyTransposeBlock computes Y ← AᵀX for nrhs right-hand sides
// with the reversed two-hop schedule; see Engine.MultiplyTransposeBlock.
func (e *RoutedEngine) MultiplyTransposeBlock(X, Y []float64, nrhs int) error {
	a := e.d.A
	checkBlockDims(X, Y, nrhs, a.Rows, a.Cols)
	e.ensureTranspose()
	e.ensureTransposeBlock(nrhs)
	e.curKern = e.sel.forWidth(nrhs)
	return e.pool.dispatchOp(X, Y, nrhs, true)
}

// MultiplyTransposeMulti computes Y[c] ← Aᵀ·X[c] for every column c in
// one routed block transpose multiply; see Engine.MultiplyMulti.
func (e *RoutedEngine) MultiplyTransposeMulti(X, Y [][]float64) error {
	return e.io.multi(X, Y, e.d.A.Rows, e.d.A.Cols, e.MultiplyTransposeBlock)
}

// runTBlock is runT with nrhs-wide payloads.
//
//spmv:hotpath
func (e *RoutedEngine) runTBlock(pr *rproc, x, y []float64, nrhs int, kid kernelID) {
	t := pr.t
	rxb, cyb := pr.routeYValB, pr.routeXValB
	for i := range cyb {
		cyb[i] = 0
	}
	for i, r := range pr.yLocalRows {
		copy(rxb[pr.yLocalSlot[i]*nrhs:(pr.yLocalSlot[i]+1)*nrhs], x[r*nrhs:(r+1)*nrhs])
	}
	t.selfPartial.addIntoBlockK(kid, cyb, x, nil, nrhs, t.accB)
	// Phase 1 sends.
	for _, sp := range t.t1Sends {
		sp.fillBlock(kid, x, nil, nrhs)
		e.rprocs[sp.dest].inbox[0] <- sp.bufB
	}
	// Phase 1 receives.
	for _, pk := range t.recv[0].gather(pr.inbox[0]) {
		fp := t.t1Recv[pk.from]
		for i, s := range fp.ySlot {
			copy(rxb[s*nrhs:(s+1)*nrhs], pk.xVal[i*nrhs:(i+1)*nrhs])
		}
		for i, s := range fp.xSlot {
			addBlock(cyb[s*nrhs:(s+1)*nrhs], pk.yVal[i*nrhs:(i+1)*nrhs])
		}
	}
	for _, s := range t.rxtToExt {
		copy(t.extXB[s.idx*nrhs:(s.idx+1)*nrhs], rxb[s.slot*nrhs:(s.slot+1)*nrhs])
	}
	// Phase 2 sends.
	for _, fp := range t.t2Sends {
		for i, s := range fp.xSlot {
			copy(fp.bufB.xVal[i*nrhs:(i+1)*nrhs], rxb[s*nrhs:(s+1)*nrhs])
		}
		for i, s := range fp.ySlot {
			copy(fp.bufB.yVal[i*nrhs:(i+1)*nrhs], cyb[s*nrhs:(s+1)*nrhs])
		}
		e.rprocs[fp.dest].inbox[1] <- fp.bufB
	}
	for _, s := range pr.selfX {
		addBlock(y[s.idx*nrhs:(s.idx+1)*nrhs], cyb[s.slot*nrhs:(s.slot+1)*nrhs])
	}
	// Phase 2 receives.
	for _, pk := range t.recv[1].gather(pr.inbox[1]) {
		slots := t.t2RecvX[pk.from]
		for i, s := range slots {
			copy(t.extXB[s*nrhs:(s+1)*nrhs], pk.xVal[i*nrhs:(i+1)*nrhs])
		}
		for i, j := range pk.yIdx {
			addBlock(y[j*nrhs:(j+1)*nrhs], pk.yVal[i*nrhs:(i+1)*nrhs])
		}
	}
	// Compute local columns.
	ownOf(&t.own, &t.ownS, kid).addIntoBlockK(kid, y, x, t.extXB, nrhs, t.accB)
}
