package spmv

import (
	"testing"
)

// The serving layer's engine pool refcounts shared engines and calls
// Close on eviction; a second Close (or a racing Multiply that loses to
// Close) must fail loudly and diagnosably, never panic with the
// runtime's "send on closed channel" or deadlock.

// closers builds one engine per schedule without registering cleanup,
// so the tests own the Close calls.
func closers(t *testing.T) map[string]Multiplier {
	t.Helper()
	fused, twoPhase, routed, _, _ := allocFixtures(t)
	return map[string]Multiplier{
		"fused":    fused,
		"twophase": twoPhase,
		"routed":   routed,
	}
}

func TestCloseIdempotent(t *testing.T) {
	for name, eng := range closers(t) {
		t.Run(name, func(t *testing.T) {
			eng.Close()
			eng.Close() // must not panic
			eng.Close()
		})
	}
}

func TestMultiplyAfterClosePanics(t *testing.T) {
	for name, eng := range closers(t) {
		t.Run(name, func(t *testing.T) {
			eng.Close()
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("Multiply after Close did not panic")
				}
				if s, ok := r.(string); !ok || s != "spmv: Multiply on closed engine" {
					t.Fatalf("unexpected panic %v", r)
				}
			}()
			x := make([]float64, 400)
			y := make([]float64, 400)
			eng.Multiply(x, y)
		})
	}
}

func TestMultiplyBlockAfterClosePanics(t *testing.T) {
	for name, eng := range closers(t) {
		t.Run(name, func(t *testing.T) {
			eng.Close()
			defer func() {
				if recover() == nil {
					t.Fatal("MultiplyBlock after Close did not panic")
				}
			}()
			X := make([]float64, 400*2)
			Y := make([]float64, 400*2)
			eng.MultiplyBlock(X, Y, 2)
		})
	}
}
