package spmv

import (
	"errors"
	"testing"
)

// The serving layer's engine pool refcounts shared engines and calls
// Close on eviction; a second Close (or a racing Multiply that loses to
// Close) must fail diagnosably — a typed *ClosedError, never the
// runtime's "send on closed channel" panic or a deadlock.

// closers builds one engine per schedule without registering cleanup,
// so the tests own the Close calls.
func closers(t *testing.T) map[string]Multiplier {
	t.Helper()
	fused, twoPhase, routed, _, _ := allocFixtures(t)
	return map[string]Multiplier{
		"fused":    fused,
		"twophase": twoPhase,
		"routed":   routed,
	}
}

func TestCloseIdempotent(t *testing.T) {
	for name, eng := range closers(t) {
		t.Run(name, func(t *testing.T) {
			eng.Close()
			eng.Close() // must not panic
			eng.Close()
		})
	}
}

func TestMultiplyAfterCloseReturnsClosedError(t *testing.T) {
	for name, eng := range closers(t) {
		t.Run(name, func(t *testing.T) {
			eng.Close()
			x := make([]float64, 400)
			y := make([]float64, 400)
			err := eng.Multiply(x, y)
			var ce *ClosedError
			if !errors.As(err, &ce) {
				t.Fatalf("Multiply after Close returned %v, want *ClosedError", err)
			}
			if ce.Op != "Multiply" {
				t.Fatalf("ClosedError.Op = %q, want %q", ce.Op, "Multiply")
			}
		})
	}
}

func TestMultiplyBlockAfterCloseReturnsClosedError(t *testing.T) {
	for name, eng := range closers(t) {
		t.Run(name, func(t *testing.T) {
			eng.Close()
			X := make([]float64, 400*2)
			Y := make([]float64, 400*2)
			err := eng.MultiplyBlock(X, Y, 2)
			var ce *ClosedError
			if !errors.As(err, &ce) {
				t.Fatalf("MultiplyBlock after Close returned %v, want *ClosedError", err)
			}
			if ce.Op != "MultiplyBlock" {
				t.Fatalf("ClosedError.Op = %q, want %q", ce.Op, "MultiplyBlock")
			}
		})
	}
}
