package spmv

import (
	"repro/internal/distrib"
	"repro/internal/method"
)

// Multiplier is the engine surface every schedule implements: repeated
// allocation-free y ← Ax and its transpose y ← Aᵀx, the multi-RHS twins
// (column-blocked and slice-of-vectors) of both, the static schedule's
// communication statistics, and worker shutdown. Every registry
// method's build satisfies it through New, so batched and
// normal-equation callers need no engine-specific code.
//
// Every multiply returns nil on success; dimension mismatches still
// panic (caller bugs), but runtime conditions are errors: a typed
// *ClosedError after Close, and a typed *EngineFaultError once a
// contained worker panic has poisoned the engine (see fault.go). A
// poisoned engine fails every subsequent multiply fast; the only
// recovery is Close plus a fresh build.
type Multiplier interface {
	Multiply(x, y []float64) error
	// MultiplyBlock computes Y ← AX for nrhs right-hand sides in the
	// column-blocked layout (column c of row i at X[i*nrhs+c]), reusing
	// the compiled plan's packets with nrhs-wide payloads: one message
	// per peer per phase regardless of nrhs, zero steady-state
	// allocations at a fixed width, and nrhs=1 bit-identical to Multiply.
	MultiplyBlock(X, Y []float64, nrhs int) error
	// MultiplyMulti is MultiplyBlock over len(X) separate vectors, packed
	// into (and unpacked from) engine-owned scratch.
	MultiplyMulti(X, Y [][]float64) error
	// MultiplyTranspose computes y ← Aᵀx (x length Rows, y length Cols)
	// on the same distribution: the forward plan's packets run with the
	// phases reversed, so message counts and steady-state allocation
	// behavior (zero) match Multiply's. The transpose plan compiles
	// lazily on the first call.
	MultiplyTranspose(x, y []float64) error
	// MultiplyTransposeBlock and MultiplyTransposeMulti are the multi-RHS
	// twins of MultiplyTranspose, with MultiplyBlock's layout and
	// contracts.
	MultiplyTransposeBlock(X, Y []float64, nrhs int) error
	MultiplyTransposeMulti(X, Y [][]float64) error
	// Autotune probes the candidate kernel backends on the engine's own
	// compiled plan and installs per-width-class winners (see TuneConfig
	// in autotune.go); KernelReport returns the current selection. The
	// zero selection — scalar everywhere — is always valid, so calling
	// Autotune is optional.
	Autotune(cfg TuneConfig) (KernelReport, error)
	KernelReport() KernelReport
	ScheduleStats() distrib.CommStats
	Close()
}

// New builds the engine a method build calls for: the routed two-hop
// engine when the build carries a mesh (the latency-bounded s2D-b
// schedule), the compiled fused or two-phase engine otherwise. Callers
// get one constructor for every registered method instead of branching on
// engine type.
//
//spmv:deterministic
func New(b method.Build) (Multiplier, error) {
	if b.Mesh != nil {
		return NewRoutedEngine(b.Dist, *b.Mesh)
	}
	return NewEngine(b.Dist)
}

// NewTuned is New followed by Autotune wired from the method options:
// opt.ForceKernel forces one backend, opt.RelaxedFP admits the relaxed
// candidates, and when opt.Pipeline is set the tuner decisions memoize
// there keyed by (matrix, method, K, seed, epsilon, width-class) — so a
// K-sweep or a rebuilt serve engine tunes once per key and every later
// build installs the cached winners without re-probing. The engine is
// closed on tuning failure.
func NewTuned(b method.Build, opt method.Options) (Multiplier, KernelReport, error) {
	m, err := New(b)
	if err != nil {
		return nil, KernelReport{}, err
	}
	cfg := TuneConfig{Force: opt.ForceKernel, RelaxedFP: opt.RelaxedFP}
	if opt.Pipeline != nil {
		cfg.Cache = opt.Pipeline.KernelCache(b.Dist.A, b.Method, b.Dist.K, opt.Seed, opt.Epsilon)
	}
	rep, err := m.Autotune(cfg)
	if err != nil {
		m.Close()
		return nil, KernelReport{}, err
	}
	return m, rep, nil
}
