package spmv

import (
	"repro/internal/distrib"
	"repro/internal/method"
)

// Multiplier is the engine surface every schedule implements: repeated
// allocation-free y ← Ax, the multi-RHS twins Y ← AX (column-blocked and
// slice-of-vectors), the static schedule's communication statistics, and
// worker shutdown. Every registry method's build satisfies it through
// New, so batched callers need no engine-specific code.
type Multiplier interface {
	Multiply(x, y []float64)
	// MultiplyBlock computes Y ← AX for nrhs right-hand sides in the
	// column-blocked layout (column c of row i at X[i*nrhs+c]), reusing
	// the compiled plan's packets with nrhs-wide payloads: one message
	// per peer per phase regardless of nrhs, zero steady-state
	// allocations at a fixed width, and nrhs=1 bit-identical to Multiply.
	MultiplyBlock(X, Y []float64, nrhs int)
	// MultiplyMulti is MultiplyBlock over len(X) separate vectors, packed
	// into (and unpacked from) engine-owned scratch.
	MultiplyMulti(X, Y [][]float64)
	ScheduleStats() distrib.CommStats
	Close()
}

// New builds the engine a method build calls for: the routed two-hop
// engine when the build carries a mesh (the latency-bounded s2D-b
// schedule), the compiled fused or two-phase engine otherwise. Callers
// get one constructor for every registered method instead of branching on
// engine type.
func New(b method.Build) (Multiplier, error) {
	if b.Mesh != nil {
		return NewRoutedEngine(b.Dist, *b.Mesh)
	}
	return NewEngine(b.Dist)
}
