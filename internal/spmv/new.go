package spmv

import (
	"repro/internal/distrib"
	"repro/internal/method"
)

// Multiplier is the engine surface every schedule implements: repeated
// allocation-free y ← Ax, the static schedule's communication statistics,
// and worker shutdown.
type Multiplier interface {
	Multiply(x, y []float64)
	ScheduleStats() distrib.CommStats
	Close()
}

// New builds the engine a method build calls for: the routed two-hop
// engine when the build carries a mesh (the latency-bounded s2D-b
// schedule), the compiled fused or two-phase engine otherwise. Callers
// get one constructor for every registered method instead of branching on
// engine type.
func New(b method.Build) (Multiplier, error) {
	if b.Mesh != nil {
		return NewRoutedEngine(b.Dist, *b.Mesh)
	}
	return NewEngine(b.Dist)
}
