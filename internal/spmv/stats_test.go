package spmv

import (
	"math/rand"
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
)

// TestScheduleStatsMatchAnalytic: the engine's static schedule must carry
// exactly the traffic the distribution metrics predict, in both schedules.
func TestScheduleStatsMatchAnalytic(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for trial := 0; trial < 12; trial++ {
		a := randomMatrix(r, 80+r.Intn(120), 80+r.Intn(120), 1000)
		k := 2 + r.Intn(12)

		yp := make([]int, a.Rows)
		for i := range yp {
			yp[i] = r.Intn(k)
		}
		xp := make([]int, a.Cols)
		for j := range xp {
			xp[j] = r.Intn(k)
		}
		d := core.Balanced(a, xp, yp, k, core.BalanceConfig{})
		e, err := NewEngine(d)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(e.Close)
		got := e.ScheduleStats()
		want := d.Comm()
		if got.TotalVolume != want.TotalVolume || got.TotalMsgs != want.TotalMsgs {
			t.Fatalf("trial %d fused: schedule (%d vol, %d msgs) != analytic (%d, %d)",
				trial, got.TotalVolume, got.TotalMsgs, want.TotalVolume, want.TotalMsgs)
		}
		if got.MaxSendMsgs != want.MaxSendMsgs {
			t.Fatalf("trial %d fused: max msgs %d != %d", trial, got.MaxSendMsgs, want.MaxSendMsgs)
		}
	}
}

func TestScheduleStatsTwoPhase(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	a := randomMatrix(r, 150, 150, 1500)
	d := baselines.FineGrain2D(a, 8, baselines.Options{Seed: 1})
	e, err := NewEngine(d)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	got := e.ScheduleStats()
	want := d.Comm()
	if got.TotalVolume != want.TotalVolume {
		t.Fatalf("volume %d != %d", got.TotalVolume, want.TotalVolume)
	}
	if len(got.Phases) != 2 {
		t.Fatalf("phases = %d", len(got.Phases))
	}
	for ph := range got.Phases {
		if got.Phases[ph].TotalMsgs != want.Phases[ph].TotalMsgs {
			t.Fatalf("phase %d msgs %d != %d", ph, got.Phases[ph].TotalMsgs, want.Phases[ph].TotalMsgs)
		}
	}
}

// TestRoutedScheduleStatsMatchS2DB: the routed engine's schedule must match
// core.S2DBComm exactly — the harness quotes the latter for Table V/VI.
func TestRoutedScheduleStatsMatchS2DB(t *testing.T) {
	r := rand.New(rand.NewSource(63))
	for trial := 0; trial < 8; trial++ {
		a := randomMatrix(r, 150+r.Intn(100), 150+r.Intn(100), 1800)
		const k = 16
		yp := make([]int, a.Rows)
		for i := range yp {
			yp[i] = r.Intn(k)
		}
		xp := append([]int(nil), yp...)
		if a.Cols != a.Rows {
			xp = make([]int, a.Cols)
			for j := range xp {
				xp[j] = r.Intn(k)
			}
		}
		d := core.Balanced(a, xp, yp, k, core.BalanceConfig{})
		mesh := core.NewMesh(k)
		e, err := NewRoutedEngine(d, mesh)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(e.Close)
		got := e.ScheduleStats()
		want := core.S2DBComm(d, mesh)
		if got.TotalVolume != want.TotalVolume {
			t.Fatalf("trial %d: routed volume %d != analytic %d", trial, got.TotalVolume, want.TotalVolume)
		}
		if got.TotalMsgs != want.TotalMsgs {
			t.Fatalf("trial %d: routed msgs %d != analytic %d", trial, got.TotalMsgs, want.TotalMsgs)
		}
		for ph := 0; ph < 2; ph++ {
			if got.Phases[ph].TotalVolume != want.Phases[ph].TotalVolume {
				t.Fatalf("trial %d phase %d: %d != %d", trial, ph,
					got.Phases[ph].TotalVolume, want.Phases[ph].TotalVolume)
			}
		}
	}
}
