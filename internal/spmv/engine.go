// Package spmv executes distributed-memory parallel SpMV over K logical
// processors (goroutines exchanging explicit message packets), under any
// distrib.Distribution. It implements the three schedules of the paper:
//
//   - the classic two-phase algorithm (expand x, multiply, fold ȳ) for 2D
//     partitions;
//   - the paper's fused single-phase algorithm (§III) for s2D partitions:
//     Precompute, Expand-and-Fold (one packet [x̂,ŷ] per destination),
//     Compute;
//   - the routed two-hop variant for s2D-b (§VI-B1), where packets travel
//     through mesh intermediates and partial results combine en route.
//
// The engine exists to prove the algorithms compute the right answer, to
// count real packets, and to serve iterative solvers efficiently:
// NewEngine compiles the static schedule into a flat execution plan (see
// plan.go) and parks K persistent workers, so a steady-state Multiply
// spawns no goroutines and performs no heap allocations. Every plan also
// serves the transpose product y ← Aᵀx with the phases reversed (see
// transpose.go, routed_transpose.go) under the same contracts.
package spmv

import (
	"fmt"
	"sort"

	"repro/internal/distrib"
)

// packet is one point-to-point message: x entries requested by the
// destination and partial y results destined for (or routed towards) it.
// Index arrays are fixed at build time; value arrays are per-proc buffers
// refilled on every Multiply.
type packet struct {
	from int
	xIdx []int
	xVal []float64
	yIdx []int
	yVal []float64
}

// proc holds one processor's schedule. The map-based fields describe the
// schedule for ScheduleStats and the consistency tests; the compiled plan
// fields below are what Multiply actually executes.
type proc struct {
	id int

	// Owned nonzeros whose output row is local: computed in the final
	// Compute step. src ≥ 0 means x[src] is locally owned; src < 0 means
	// external slot -(src+1).
	ownRows []localNZ
	// Owned nonzeros whose output row is remote (the precompute set),
	// grouped by destination part. x is always local for these under s2D.
	preGroups map[int][]localNZ

	// xNeed[dest] lists the locally-owned x indices dest requires.
	xNeed map[int][]int
	// extSlot maps a remote x index to a slot in extX.
	extSlot map[int]int
	extX    []float64

	// One inbox per phase: a fast sender must not inject a later-phase
	// packet into an earlier receive loop.
	inbox []chan packet

	// Compiled execution plan (see plan.go).
	own rowKernel // Compute step over ownRows
	// ownS is own recompiled in descending-work slot order, derived
	// lazily the first time a sorted-layout backend is installed (see
	// kernel.go); empty until then.
	ownS   rowKernel
	sends  []*sendPlan // fused: [x̂,ŷ] packets; two-phase: phase-0 x packets
	ySends []*sendPlan // two-phase phase-1 fold packets
	// recvX[sender] maps the t-th x entry of that sender's packet to an
	// extX slot.
	recvX map[int][]int
	recv  []recvPlan // one per phase, fixing fold order by sender

	// Block (multi-RHS) twins of the per-call buffers, sized lazily by
	// Engine.ensureBlock: extXB mirrors extX with nrhs values per slot,
	// accB is the per-slot accumulator scratch for the block kernels.
	extXB []float64
	accB  []float64

	// Compiled transpose plan (y ← Aᵀx), built lazily on the first
	// MultiplyTranspose; see transpose.go.
	t *tproc
}

type localNZ struct {
	row int
	src int
	val float64
}

// Engine runs parallel SpMV for a fixed distribution. Build once with
// NewEngine, call Multiply repeatedly. Multiply must not be called
// concurrently on the same engine: calls share the compiled packet
// buffers.
type Engine struct {
	d     *distrib.Distribution
	procs []*proc
	fused bool
	pool  workerPool

	// Per-width-class kernel backend selection and the lazily derived
	// sorted layouts (see kernel.go, autotune.go). The zero value runs
	// the scalar reference kernels everywhere.
	kernelState

	// pt samples per-phase expand/compute/fold wall time on worker 0
	// when armed via SamplePhases (see timing.go).
	pt phaseTimer

	// blockNRHS is the width the block buffers are currently sliced for
	// (0 until the first MultiplyBlock); see ensureBlock in block.go.
	blockNRHS int
	io        blockIO

	// tready flips once the transpose plan is compiled (lazily, by the
	// first MultiplyTranspose); tBlockNRHS is blockNRHS's transpose twin.
	tready     bool
	tBlockNRHS int
}

// NewEngine builds the static communication and computation schedule for
// d, compiles it into an allocation-free execution plan, and starts one
// persistent worker per processor. Fused distributions must satisfy the
// s2D property.
//
//spmv:deterministic
func NewEngine(d *distrib.Distribution) (*Engine, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	var (
		e   *Engine
		err error
	)
	if d.Fused {
		e, err = newFusedEngine(d)
	} else {
		e, err = newTwoPhaseEngine(d)
	}
	if err != nil {
		return nil, err
	}
	e.pool.launch(len(e.procs), func(i int, x, y []float64, nrhs int, transpose bool) {
		pr := e.procs[i]
		// curKern is written by the dispatcher before the start-channel
		// send, so this read is ordered after it.
		kid := e.curKern
		switch {
		case transpose && nrhs > 0 && e.fused:
			e.runFusedTBlock(pr, x, y, nrhs, kid)
		case transpose && nrhs > 0:
			e.runTwoPhaseTBlock(pr, x, y, nrhs, kid)
		case transpose && e.fused:
			e.runFusedT(pr, x, y, kid)
		case transpose:
			e.runTwoPhaseT(pr, x, y, kid)
		case nrhs > 0 && e.fused:
			e.runFusedBlock(pr, x, y, nrhs, kid)
		case nrhs > 0:
			e.runTwoPhaseBlock(pr, x, y, nrhs, kid)
		case e.fused:
			e.runFused(pr, x, y, kid)
		default:
			e.runTwoPhase(pr, x, y, kid)
		}
	}, e.releasePeers)
	return e, nil
}

// Close parks the engine permanently: its worker goroutines exit and
// Multiply must not be called again (it returns a typed *ClosedError
// if it is). Close is idempotent — sharing layers that
// refcount engines may Close defensively. Closing is optional — an
// unclosed engine merely keeps K goroutines parked until process exit —
// but long-lived programs that build many engines should close them.
func (e *Engine) Close() { e.pool.close() }

func newProcs(k, phases int) []*proc {
	procs := make([]*proc, k)
	for i := range procs {
		inbox := make([]chan packet, phases)
		for ph := range inbox {
			// Capacity 2k: sends never block, so no deadlock between
			// mutually waiting processors — even when fault containment
			// floods one release packet per worker on top of the at most
			// one real packet per sender per phase (see fault.go).
			inbox[ph] = make(chan packet, 2*k)
		}
		procs[i] = &proc{
			id:        i,
			preGroups: make(map[int][]localNZ),
			xNeed:     make(map[int][]int),
			extSlot:   make(map[int]int),
			inbox:     inbox,
			recvX:     make(map[int][]int),
		}
	}
	return procs
}

func (p *proc) slotFor(j int) int {
	s, ok := p.extSlot[j]
	if !ok {
		s = len(p.extSlot)
		p.extSlot[j] = s
	}
	return s
}

// compileRecvX installs, on every destination, the extX slot translation
// for each sender's fixed x payload.
func compileRecvX(procs []*proc) {
	for _, pr := range procs {
		for dest, idxs := range pr.xNeed { //spmvlint:unordered each destination writes its own recvX slot
			slots := make([]int, len(idxs))
			for t, j := range idxs {
				slots[t] = procs[dest].extSlot[j]
			}
			procs[dest].recvX[pr.id] = slots
		}
	}
}

// newFusedEngine builds the §III schedule: every nonzero is x-local or
// y-local; x-local/y-remote nonzeros are precomputed and their partials
// ride in the same packet as the x entries the destination needs.
func newFusedEngine(d *distrib.Distribution) (*Engine, error) {
	procs := newProcs(d.K, 1)

	// xWant[owner][dest] tracks the set of x indices dest needs from owner.
	type pair struct{ from, to int }
	xWant := make(map[pair]map[int]struct{})

	var s2dErr error
	d.EachNZ(func(i, j int, v float64, o int) {
		if s2dErr != nil {
			return
		}
		yOwner := d.YPart[i]
		xOwner := d.XPart[j]
		pr := procs[o]
		switch {
		case o == yOwner && o == xOwner:
			pr.ownRows = append(pr.ownRows, localNZ{row: i, src: j, val: v})
		case o == yOwner: // x remote: request x_j from its owner
			key := pair{from: xOwner, to: o}
			if xWant[key] == nil {
				xWant[key] = make(map[int]struct{})
			}
			xWant[key][j] = struct{}{}
			pr.ownRows = append(pr.ownRows, localNZ{row: i, src: -(pr.slotFor(j) + 1), val: v})
		case o == xOwner: // y remote: precompute, ship the partial
			pr.preGroups[yOwner] = append(pr.preGroups[yOwner], localNZ{row: i, src: j, val: v})
		default:
			s2dErr = fmt.Errorf("spmv: nonzero (%d,%d) violates s2D", i, j)
		}
	})
	if s2dErr != nil {
		return nil, s2dErr
	}
	for key, set := range xWant { //spmvlint:unordered per-key independent writes; idxs are sorted before use
		idxs := make([]int, 0, len(set))
		for j := range set {
			idxs = append(idxs, j)
		}
		sort.Ints(idxs)
		procs[key.from].xNeed[key.to] = idxs
	}
	// A packet k→ℓ exists if k has x entries for ℓ or precomputed partials
	// for ℓ — collect the sender set of every destination.
	sendersOf := make(map[int]map[int]struct{})
	addSender := func(from, to int) {
		if sendersOf[to] == nil {
			sendersOf[to] = make(map[int]struct{})
		}
		sendersOf[to][from] = struct{}{}
	}
	for key := range xWant { //spmvlint:unordered set insertion; commutative
		addSender(key.from, key.to)
	}
	for _, pr := range procs {
		for dest := range pr.preGroups { //spmvlint:unordered set insertion; commutative
			addSender(pr.id, dest)
		}
	}
	for _, pr := range procs {
		pr.extX = make([]float64, len(pr.extSlot))
	}

	// ---- compile the execution plan ----
	for _, pr := range procs {
		pr.own = compileRows(pr.ownRows)
		destSet := make(map[int]struct{}, len(pr.xNeed)+len(pr.preGroups))
		for dst := range pr.xNeed {
			destSet[dst] = struct{}{}
		}
		for dst := range pr.preGroups {
			destSet[dst] = struct{}{}
		}
		dests := sortedKeys(destSet)
		grps := make([]rowKernel, len(dests))
		words := 0
		for t, dst := range dests {
			grps[t] = compileRows(pr.preGroups[dst])
			words += len(pr.xNeed[dst]) + len(grps[t].rows)
		}
		arena := newValArena(words)
		for t, dst := range dests {
			pr.sends = append(pr.sends, newSendPlan(pr.id, dst, pr.xNeed[dst], grps[t], arena))
		}
		pr.recv = []recvPlan{newRecvPlan(sortedKeys(sendersOf[pr.id]))}
	}
	compileRecvX(procs)
	return &Engine{d: d, procs: procs, fused: true}, nil
}

// compiledGroupRows returns the distinct rows a fold group will ship —
// the group's packet yVal length — without building the kernel twice.
func compiledGroupRows(nzs []localNZ) []int {
	if len(nzs) == 0 {
		return nil
	}
	rows := make([]int, 0, len(nzs))
	for _, nz := range nzs {
		rows = append(rows, nz.row)
	}
	return dedupSorted(rows)
}

// newTwoPhaseEngine builds the classic expand/fold schedule used by 2D
// partitions: phase 0 ships x entries to nonzero owners, phase 1 ships
// partial y results to row owners.
func newTwoPhaseEngine(d *distrib.Distribution) (*Engine, error) {
	procs := newProcs(d.K, 2)

	type pair struct{ from, to int }
	xWant := make(map[pair]map[int]struct{})

	d.EachNZ(func(i, j int, v float64, o int) {
		yOwner := d.YPart[i]
		pr := procs[o]
		src := j
		if d.XPart[j] != o {
			key := pair{from: d.XPart[j], to: o}
			if xWant[key] == nil {
				xWant[key] = make(map[int]struct{})
			}
			xWant[key][j] = struct{}{}
			src = -(pr.slotFor(j) + 1)
		}
		if yOwner == o {
			pr.ownRows = append(pr.ownRows, localNZ{row: i, src: src, val: v})
		} else {
			pr.preGroups[yOwner] = append(pr.preGroups[yOwner], localNZ{row: i, src: src, val: v})
		}
	})
	xSenders := make(map[int]map[int]struct{})
	ySenders := make(map[int]map[int]struct{})
	addSender := func(m map[int]map[int]struct{}, from, to int) {
		if m[to] == nil {
			m[to] = make(map[int]struct{})
		}
		m[to][from] = struct{}{}
	}
	for key, set := range xWant { //spmvlint:unordered per-key independent writes; idxs are sorted before use
		idxs := make([]int, 0, len(set))
		for j := range set {
			idxs = append(idxs, j)
		}
		sort.Ints(idxs)
		procs[key.from].xNeed[key.to] = idxs
		addSender(xSenders, key.from, key.to)
	}
	for _, pr := range procs {
		for dest := range pr.preGroups { //spmvlint:unordered set insertion; commutative
			addSender(ySenders, pr.id, dest)
		}
	}
	for _, pr := range procs {
		pr.extX = make([]float64, len(pr.extSlot))
	}

	// ---- compile the execution plan ----
	for _, pr := range procs {
		pr.own = compileRows(pr.ownRows)
		yDests := sortedKeys(pr.preGroups)
		grps := make([]rowKernel, len(yDests))
		words := 0
		for _, idxs := range pr.xNeed {
			words += len(idxs)
		}
		for t, dst := range yDests {
			grps[t] = compileRows(pr.preGroups[dst])
			words += len(grps[t].rows)
		}
		arena := newValArena(words)
		for _, dst := range sortedKeys(pr.xNeed) {
			pr.sends = append(pr.sends, newSendPlan(pr.id, dst, pr.xNeed[dst], rowKernel{}, arena))
		}
		for t, dst := range yDests {
			pr.ySends = append(pr.ySends, newSendPlan(pr.id, dst, nil, grps[t], arena))
		}
		pr.recv = []recvPlan{
			newRecvPlan(sortedKeys(xSenders[pr.id])),
			newRecvPlan(sortedKeys(ySenders[pr.id])),
		}
	}
	compileRecvX(procs)
	return &Engine{d: d, procs: procs, fused: false}, nil
}

// Multiply computes y ← Ax in parallel. x and y must have the matrix's
// dimensions (mismatches panic: that is a caller bug, not a runtime
// condition); y is fully overwritten. Steady-state calls spawn no
// goroutines and allocate nothing: the parked workers execute the
// compiled plan against the published x and y. Multiply returns a typed
// *ClosedError after Close and a typed *EngineFaultError once a
// contained worker panic has poisoned the engine.
func (e *Engine) Multiply(x, y []float64) error {
	a := e.d.A
	if len(x) != a.Cols || len(y) != a.Rows {
		panic("spmv: dimension mismatch")
	}
	e.curKern = e.sel.forWidth(1)
	return e.pool.dispatch(x, y)
}

// runFused executes one processor's part of the §III algorithm: fill the
// precompiled [x̂,ŷ] packets (Precompute + Expand-and-Fold), bank the
// incoming ones in sender order, then run the local Compute kernel.
//
//spmv:hotpath
func (e *Engine) runFused(pr *proc, x, y []float64, kid kernelID) {
	pc := e.phaseClock(pr)
	for _, sp := range pr.sends {
		sp.fill(kid, x, pr.extX)
		e.procs[sp.dest].inbox[0] <- sp.buf
	}
	pc.lap(&e.pt.expandNs)
	for _, pk := range pr.recv[0].gather(pr.inbox[0]) {
		slots := pr.recvX[pk.from]
		for t, v := range pk.xVal {
			pr.extX[slots[t]] = v
		}
		for t, i := range pk.yIdx {
			y[i] += pk.yVal[t] // rows owned exclusively by this proc
		}
	}
	pc.lap(&e.pt.foldNs)
	ownOf(&pr.own, &pr.ownS, kid).addIntoK(kid, y, x, pr.extX)
	pc.lap(&e.pt.computeNs)
}

// runTwoPhase executes one processor's part of the classic algorithm.
//
//spmv:hotpath
func (e *Engine) runTwoPhase(pr *proc, x, y []float64, kid kernelID) {
	pc := e.phaseClock(pr)
	// Phase 0 — Expand.
	for _, sp := range pr.sends {
		sp.fill(kid, x, pr.extX)
		e.procs[sp.dest].inbox[0] <- sp.buf
	}
	for _, pk := range pr.recv[0].gather(pr.inbox[0]) {
		slots := pr.recvX[pk.from]
		for t, v := range pk.xVal {
			pr.extX[slots[t]] = v
		}
	}
	pc.lap(&e.pt.expandNs)
	// Multiply.
	ownOf(&pr.own, &pr.ownS, kid).addIntoK(kid, y, x, pr.extX)
	pc.lap(&e.pt.computeNs)
	// Phase 1 — Fold.
	for _, sp := range pr.ySends {
		sp.fill(kid, x, pr.extX)
		e.procs[sp.dest].inbox[1] <- sp.buf
	}
	for _, pk := range pr.recv[1].gather(pr.inbox[1]) {
		for t, i := range pk.yIdx {
			y[i] += pk.yVal[t]
		}
	}
	pc.lap(&e.pt.foldNs)
}
