// Package spmv executes distributed-memory parallel SpMV over K logical
// processors (goroutines exchanging explicit message packets), under any
// distrib.Distribution. It implements the three schedules of the paper:
//
//   - the classic two-phase algorithm (expand x, multiply, fold ȳ) for 2D
//     partitions;
//   - the paper's fused single-phase algorithm (§III) for s2D partitions:
//     Precompute, Expand-and-Fold (one packet [x̂,ŷ] per destination),
//     Compute;
//   - the routed two-hop variant for s2D-b (§VI-B1), where packets travel
//     through mesh intermediates and partial results combine en route.
//
// The engine exists to prove the algorithms compute the right answer and
// to count real packets; wall-clock modelling is internal/model's job.
package spmv

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/distrib"
)

// packet is one point-to-point message: x entries requested by the
// destination and partial y results destined for (or routed towards) it.
type packet struct {
	from int
	xIdx []int
	xVal []float64
	yIdx []int
	yVal []float64
}

// proc holds one processor's static schedule and runtime buffers.
type proc struct {
	id int

	// Owned nonzeros whose output row is local: computed in the final
	// Compute step. src ≥ 0 means x[src] is locally owned; src < 0 means
	// external slot -(src+1).
	ownRows []localNZ
	// Owned nonzeros whose output row is remote (the precompute set),
	// grouped by destination part. x is always local for these under s2D.
	preGroups map[int][]localNZ

	// xNeed[dest] lists the locally-owned x indices dest requires.
	xNeed map[int][]int
	// extSlot maps a remote x index to a slot in extX.
	extSlot map[int]int
	extX    []float64

	recvCount []int // packets expected per phase

	// One inbox per phase: a fast sender must not inject a later-phase
	// packet into an earlier receive loop.
	inbox []chan packet
}

type localNZ struct {
	row int
	src int
	val float64
}

// Engine runs parallel SpMV for a fixed distribution. Build once with
// NewEngine, call Multiply repeatedly.
type Engine struct {
	d     *distrib.Distribution
	procs []*proc
	fused bool
}

// NewEngine builds the static communication and computation schedule for
// d. Fused distributions must satisfy the s2D property.
func NewEngine(d *distrib.Distribution) (*Engine, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.Fused {
		return newFusedEngine(d)
	}
	return newTwoPhaseEngine(d)
}

func newProcs(k, phases int) []*proc {
	procs := make([]*proc, k)
	for i := range procs {
		inbox := make([]chan packet, phases)
		for ph := range inbox {
			// Capacity k: sends never block, so no deadlock between
			// mutually waiting processors.
			inbox[ph] = make(chan packet, k)
		}
		procs[i] = &proc{
			id:        i,
			preGroups: make(map[int][]localNZ),
			xNeed:     make(map[int][]int),
			extSlot:   make(map[int]int),
			recvCount: make([]int, phases),
			inbox:     inbox,
		}
	}
	return procs
}

func (p *proc) slotFor(j int) int {
	s, ok := p.extSlot[j]
	if !ok {
		s = len(p.extSlot)
		p.extSlot[j] = s
	}
	return s
}

// newFusedEngine builds the §III schedule: every nonzero is x-local or
// y-local; x-local/y-remote nonzeros are precomputed and their partials
// ride in the same packet as the x entries the destination needs.
func newFusedEngine(d *distrib.Distribution) (*Engine, error) {
	a := d.A
	procs := newProcs(d.K, 1)

	// xWant[owner][dest] tracks the set of x indices dest needs from owner.
	type pair struct{ from, to int }
	xWant := make(map[pair]map[int]struct{})

	p := 0
	for i := 0; i < a.Rows; i++ {
		yOwner := d.YPart[i]
		for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
			j := a.ColIdx[q]
			v := a.Val[p]
			o := d.Owner[p]
			xOwner := d.XPart[j]
			pr := procs[o]
			switch {
			case o == yOwner && o == xOwner:
				pr.ownRows = append(pr.ownRows, localNZ{row: i, src: j, val: v})
			case o == yOwner: // x remote: request x_j from its owner
				key := pair{from: xOwner, to: o}
				if xWant[key] == nil {
					xWant[key] = make(map[int]struct{})
				}
				xWant[key][j] = struct{}{}
				pr.ownRows = append(pr.ownRows, localNZ{row: i, src: -(pr.slotFor(j) + 1), val: v})
			case o == xOwner: // y remote: precompute, ship the partial
				pr.preGroups[yOwner] = append(pr.preGroups[yOwner], localNZ{row: i, src: j, val: v})
			default:
				return nil, fmt.Errorf("spmv: nonzero (%d,%d) violates s2D", i, j)
			}
			p++
		}
	}
	for key, set := range xWant {
		idxs := make([]int, 0, len(set))
		for j := range set {
			idxs = append(idxs, j)
		}
		sort.Ints(idxs)
		procs[key.from].xNeed[key.to] = idxs
	}
	// A packet k→ℓ exists if k has x entries for ℓ or precomputed partials
	// for ℓ — count expected receives.
	senders := make(map[pair]struct{})
	for key := range xWant {
		senders[key] = struct{}{}
	}
	for _, pr := range procs {
		for dest := range pr.preGroups {
			senders[pair{from: pr.id, to: dest}] = struct{}{}
		}
	}
	for key := range senders {
		procs[key.to].recvCount[0]++
	}
	for _, pr := range procs {
		pr.extX = make([]float64, len(pr.extSlot))
	}
	return &Engine{d: d, procs: procs, fused: true}, nil
}

// newTwoPhaseEngine builds the classic expand/fold schedule used by 2D
// partitions: phase 0 ships x entries to nonzero owners, phase 1 ships
// partial y results to row owners.
func newTwoPhaseEngine(d *distrib.Distribution) (*Engine, error) {
	a := d.A
	procs := newProcs(d.K, 2)

	type pair struct{ from, to int }
	xWant := make(map[pair]map[int]struct{})

	p := 0
	for i := 0; i < a.Rows; i++ {
		yOwner := d.YPart[i]
		for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
			j := a.ColIdx[q]
			v := a.Val[p]
			o := d.Owner[p]
			pr := procs[o]
			src := j
			if d.XPart[j] != o {
				key := pair{from: d.XPart[j], to: o}
				if xWant[key] == nil {
					xWant[key] = make(map[int]struct{})
				}
				xWant[key][j] = struct{}{}
				src = -(pr.slotFor(j) + 1)
			}
			if yOwner == o {
				pr.ownRows = append(pr.ownRows, localNZ{row: i, src: src, val: v})
			} else {
				pr.preGroups[yOwner] = append(pr.preGroups[yOwner], localNZ{row: i, src: src, val: v})
			}
			p++
		}
	}
	for key, set := range xWant {
		idxs := make([]int, 0, len(set))
		for j := range set {
			idxs = append(idxs, j)
		}
		sort.Ints(idxs)
		procs[key.from].xNeed[key.to] = idxs
		procs[key.to].recvCount[0]++
	}
	for _, pr := range procs {
		for dest := range pr.preGroups {
			procs[dest].recvCount[1]++
		}
		pr.extX = make([]float64, len(pr.extSlot))
	}
	return &Engine{d: d, procs: procs, fused: false}, nil
}

// Multiply computes y ← Ax in parallel. x and y must have the matrix's
// dimensions; y is fully overwritten.
func (e *Engine) Multiply(x, y []float64) {
	a := e.d.A
	if len(x) != a.Cols || len(y) != a.Rows {
		panic("spmv: dimension mismatch")
	}
	for i := range y {
		y[i] = 0
	}
	var wg sync.WaitGroup
	wg.Add(len(e.procs))
	for _, pr := range e.procs {
		go func(pr *proc) {
			defer wg.Done()
			if e.fused {
				e.runFused(pr, x, y)
			} else {
				e.runTwoPhase(pr, x, y)
			}
		}(pr)
	}
	wg.Wait()
}

// runFused executes one processor's part of the §III algorithm.
func (e *Engine) runFused(pr *proc, x, y []float64) {
	// Step 1 — Precompute: partials for remote rows, grouped by owner.
	partials := make(map[int]map[int]float64, len(pr.preGroups))
	for dest, nzs := range pr.preGroups {
		acc := make(map[int]float64, len(nzs))
		for _, nz := range nzs {
			acc[nz.row] += nz.val * x[nz.src] // src is always local here
		}
		partials[dest] = acc
	}
	// Step 2 — Expand-and-Fold: one packet per destination with [x̂, ŷ].
	dests := make(map[int]struct{})
	for d := range pr.xNeed {
		dests[d] = struct{}{}
	}
	for d := range partials {
		dests[d] = struct{}{}
	}
	for dest := range dests {
		pk := packet{from: pr.id}
		for _, j := range pr.xNeed[dest] {
			pk.xIdx = append(pk.xIdx, j)
			pk.xVal = append(pk.xVal, x[j])
		}
		for i, v := range partials[dest] {
			pk.yIdx = append(pk.yIdx, i)
			pk.yVal = append(pk.yVal, v)
		}
		e.procs[dest].inbox[0] <- pk
	}
	// Receive: stash x̂ entries, bank ŷ partials.
	for n := 0; n < pr.recvCount[0]; n++ {
		pk := <-pr.inbox[0]
		for t, j := range pk.xIdx {
			pr.extX[pr.extSlot[j]] = pk.xVal[t]
		}
		for t, i := range pk.yIdx {
			y[i] += pk.yVal[t] // rows owned exclusively by this proc
		}
	}
	// Step 3 — Compute: local rows with local and received x.
	for _, nz := range pr.ownRows {
		xv := 0.0
		if nz.src >= 0 {
			xv = x[nz.src]
		} else {
			xv = pr.extX[-(nz.src + 1)]
		}
		y[nz.row] += nz.val * xv
	}
}

// runTwoPhase executes one processor's part of the classic algorithm.
func (e *Engine) runTwoPhase(pr *proc, x, y []float64) {
	// Phase 0 — Expand.
	for dest, idxs := range pr.xNeed {
		pk := packet{from: pr.id}
		for _, j := range idxs {
			pk.xIdx = append(pk.xIdx, j)
			pk.xVal = append(pk.xVal, x[j])
		}
		e.procs[dest].inbox[0] <- pk
	}
	for n := 0; n < pr.recvCount[0]; n++ {
		pk := <-pr.inbox[0]
		for t, j := range pk.xIdx {
			pr.extX[pr.extSlot[j]] = pk.xVal[t]
		}
	}
	// Multiply.
	readX := func(src int) float64 {
		if src >= 0 {
			return x[src]
		}
		return pr.extX[-(src + 1)]
	}
	for _, nz := range pr.ownRows {
		y[nz.row] += nz.val * readX(nz.src)
	}
	// Phase 1 — Fold.
	for dest, nzs := range pr.preGroups {
		acc := make(map[int]float64, len(nzs))
		for _, nz := range nzs {
			acc[nz.row] += nz.val * readX(nz.src)
		}
		pk := packet{from: pr.id}
		for i, v := range acc {
			pk.yIdx = append(pk.yIdx, i)
			pk.yVal = append(pk.yVal, v)
		}
		e.procs[dest].inbox[1] <- pk
	}
	for n := 0; n < pr.recvCount[1]; n++ {
		pk := <-pr.inbox[1]
		for t, i := range pk.yIdx {
			y[i] += pk.yVal[t]
		}
	}
}
