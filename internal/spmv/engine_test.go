package spmv

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/gen"
	"repro/internal/sparse"
	"repro/internal/vecpart"
)

func randomMatrix(r *rand.Rand, rows, cols, nnz int) *sparse.CSR {
	c := sparse.NewCOO(rows, cols)
	for t := 0; t < nnz; t++ {
		c.Add(r.Intn(rows), r.Intn(cols), r.Float64()*2-1)
	}
	// Guarantee no empty rows so results exercise every output.
	for i := 0; i < rows; i++ {
		c.Add(i, r.Intn(cols), r.Float64())
	}
	return c.ToCSR()
}

func randomVector(r *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = r.Float64()*4 - 2
	}
	return x
}

func checkAgainstSerial(t *testing.T, a *sparse.CSR, mul func(x, y []float64) error) {
	t.Helper()
	r := rand.New(rand.NewSource(99))
	x := randomVector(r, a.Cols)
	want := make([]float64, a.Rows)
	a.MulVec(x, want)
	got := make([]float64, a.Rows)
	if err := mul(x, got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(want[i]-got[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("y[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFusedEngineMatchesSerial1D(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		a := randomMatrix(r, 40+r.Intn(80), 40+r.Intn(80), 300)
		k := 2 + r.Intn(7)
		d := baselines.Rowwise1D(a, k, baselines.Options{Seed: int64(trial)})
		e, err := NewEngine(d)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(e.Close)
		checkAgainstSerial(t, a, e.Multiply)
	}
}

func TestFusedEngineMatchesSerialS2D(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		a := randomMatrix(r, 60+r.Intn(100), 60+r.Intn(100), 600)
		k := 2 + r.Intn(10)
		yp := make([]int, a.Rows)
		for i := range yp {
			yp[i] = r.Intn(k)
		}
		xp := vecpart.ColMajority(a, yp, k)
		d := core.Balanced(a, xp, yp, k, core.BalanceConfig{})
		e, err := NewEngine(d)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(e.Close)
		checkAgainstSerial(t, a, e.Multiply)
	}
}

func TestFusedEngineMatchesSerialOptimal(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		a := randomMatrix(r, 50+r.Intn(80), 50+r.Intn(80), 500)
		k := 2 + r.Intn(8)
		yp := make([]int, a.Rows)
		xp := make([]int, a.Cols)
		for i := range yp {
			yp[i] = r.Intn(k)
		}
		for j := range xp {
			xp[j] = r.Intn(k)
		}
		d := core.Optimal(a, xp, yp, k)
		e, err := NewEngine(d)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(e.Close)
		checkAgainstSerial(t, a, e.Multiply)
	}
}

func TestTwoPhaseEngineMatchesSerialFineGrain(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 6; trial++ {
		a := randomMatrix(r, 60+r.Intn(60), 60+r.Intn(60), 500)
		k := 2 + r.Intn(7)
		d := baselines.FineGrain2D(a, k, baselines.Options{Seed: int64(trial)})
		e, err := NewEngine(d)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(e.Close)
		checkAgainstSerial(t, a, e.Multiply)
	}
}

func TestTwoPhaseEngineMatchesSerialCheckerboard(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a := randomMatrix(r, 150, 150, 1200)
	d := baselines.Checkerboard2DB(a, 16, baselines.Options{Seed: 6})
	e, err := NewEngine(d)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	checkAgainstSerial(t, a, e.Multiply)
}

func TestTwoPhaseEngineMatchesSerialOneDB(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	a := randomMatrix(r, 150, 150, 1200)
	opt := baselines.Options{Seed: 7}
	rows := baselines.RowwiseParts(a, 16, opt)
	d := baselines.OneDB(a, rows, 16, opt)
	e, err := NewEngine(d)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	checkAgainstSerial(t, a, e.Multiply)
}

func TestTwoPhaseEngineMatchesSerialArbitrary2D(t *testing.T) {
	// Fully random (non-s2D) owners: the general 2D case with group-(iv)
	// nonzeros linking both phases.
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		a := randomMatrix(r, 50+r.Intn(70), 50+r.Intn(70), 600)
		k := 2 + r.Intn(8)
		d := &distrib.Distribution{
			A: a, K: k,
			Owner: make([]int, a.NNZ()),
			XPart: make([]int, a.Cols),
			YPart: make([]int, a.Rows),
		}
		for p := range d.Owner {
			d.Owner[p] = r.Intn(k)
		}
		for j := range d.XPart {
			d.XPart[j] = r.Intn(k)
		}
		for i := range d.YPart {
			d.YPart[i] = r.Intn(k)
		}
		e, err := NewEngine(d)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(e.Close)
		checkAgainstSerial(t, a, e.Multiply)
	}
}

func TestRoutedEngineMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 8; trial++ {
		a := randomMatrix(r, 100+r.Intn(100), 100+r.Intn(100), 1200)
		const k = 16
		yp := make([]int, a.Rows)
		for i := range yp {
			yp[i] = r.Intn(k)
		}
		xp := vecpart.ColMajority(a, yp, k)
		d := core.Balanced(a, xp, yp, k, core.BalanceConfig{})
		e, err := NewRoutedEngine(d, core.NewMesh(k))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(e.Close)
		checkAgainstSerial(t, a, e.Multiply)
	}
}

func TestRoutedEngineRejectsUnfused(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	a := randomMatrix(r, 50, 50, 300)
	d := baselines.FineGrain2D(a, 4, baselines.Options{Seed: 1})
	if _, err := NewRoutedEngine(d, core.NewMesh(4)); err == nil {
		t.Fatal("routed engine accepted a non-fused distribution")
	}
}

func TestRoutedEngineRejectsBadMesh(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	a := randomMatrix(r, 50, 50, 300)
	d := baselines.Rowwise1D(a, 4, baselines.Options{Seed: 1})
	if _, err := NewRoutedEngine(d, core.Mesh{Pr: 3, Pc: 3}); err == nil {
		t.Fatal("routed engine accepted a mesh not covering K")
	}
}

func TestEngineRejectsInvalidDistribution(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	a := randomMatrix(r, 20, 20, 100)
	d := &distrib.Distribution{A: a, K: 2, Owner: []int{0}, XPart: make([]int, 20), YPart: make([]int, 20)}
	if _, err := NewEngine(d); err == nil {
		t.Fatal("engine accepted invalid distribution")
	}
}

func TestEngineRepeatedMultiplies(t *testing.T) {
	// The engine must be reusable: buffers reset correctly between calls.
	r := rand.New(rand.NewSource(12))
	a := randomMatrix(r, 80, 80, 600)
	d := baselines.MediumGrainS2D(a, 8, baselines.Options{Seed: 2})
	e, err := NewEngine(d)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	for rep := 0; rep < 3; rep++ {
		checkAgainstSerial(t, a, e.Multiply)
	}
}

func TestEngineOnSuiteMatrix(t *testing.T) {
	spec, _ := gen.ByName("c-big")
	a := spec.Generate(1.0/256, 5)
	const k = 8
	opt := baselines.Options{Seed: 3}
	rows := baselines.RowwiseParts(a, k, opt)
	oneD := baselines.Rowwise1DFromParts(a, rows, k)
	s2d := core.Balanced(a, oneD.XPart, oneD.YPart, k, core.BalanceConfig{})
	e, err := NewEngine(s2d)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	checkAgainstSerial(t, a, e.Multiply)

	re, err := NewRoutedEngine(s2d, core.NewMesh(k))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(re.Close)
	checkAgainstSerial(t, a, re.Multiply)
}
