package spmv

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/distrib"
)

// RoutedEngine executes the s2D-b schedule (§VI-B1): the fused [x̂,ŷ]
// packet from P_k to P_ℓ travels via the mesh intermediate at
// (RowOf(ℓ), ColOf(k)). Phase 1 moves packets within mesh columns, phase 2
// within mesh rows. Intermediates combine payloads: an x entry needed by
// several parts in one mesh row ships to that row once, and partial y
// results for the same output entry are summed before forwarding. Each
// processor therefore contacts fewer than P_r + P_c peers in total.
//
// Like Engine, the routed engine compiles its static schedule into a flat
// plan at construction — dense routing buffers with fixed slot layouts and
// precompiled forward packets — and executes it on persistent workers, so
// steady-state Multiply is allocation- and goroutine-spawn-free.
type RoutedEngine struct {
	d    *distrib.Distribution
	mesh core.Mesh

	rprocs []*rproc
	pool   workerPool

	// Per-width-class kernel backend selection and the lazily derived
	// sorted layouts (see kernel.go, autotune.go). The zero value runs
	// the scalar reference kernels everywhere.
	kernelState

	// blockNRHS is the width the block buffers are currently sliced for
	// (0 until the first MultiplyBlock); see ensureBlock in block.go.
	blockNRHS int
	io        blockIO

	// tready flips once the transpose plan is compiled (lazily, by the
	// first MultiplyTranspose); tBlockNRHS is blockNRHS's transpose twin.
	// See routed_transpose.go.
	tready     bool
	tBlockNRHS int
}

type rproc struct {
	id int

	ownRows   []localNZ         // nonzeros with local output row
	preGroups map[int][]localNZ // x-local nonzeros grouped by final y owner

	// Phase-1 x payloads: hop1X[mid] lists locally-owned x indices routed
	// via mid. Phase-2 forwarding schedule at an intermediate:
	// hop2X[dest] lists x indices to forward to dest.
	hop1X map[int][]int
	hop2X map[int][]int

	// Static sender sets per phase (destinations this proc will message).
	phase1Dests map[int]struct{}
	phase2Dests map[int]struct{}

	extSlot map[int]int
	extX    []float64

	inbox [2]chan packet

	// Compiled plan. The routing state that used to live in per-call maps
	// (routeX, routeY) is laid out densely: every x index this proc ever
	// routes and every y row it ever combines has a fixed slot. ownS is
	// own's sorted-slot twin, derived lazily once a sorted-layout backend
	// is installed.
	own       rowKernel
	ownS      rowKernel
	routeXVal []float64
	routeYVal []float64
	// selfX seeds routeXVal with locally-owned entries this proc forwards
	// as its own intermediate; selfY accumulates self-routed partials into
	// routeYVal slots.
	selfX []slotIdx
	selfY rowKernel
	// Phase-1 packets to other intermediates, sorted by destination.
	p1Sends []*sendPlan
	// p1Recv[sender] translates that sender's fixed payload into routeXVal
	// (and extX where this proc is the final consumer) and routeYVal slots.
	p1Recv map[int]*routeRecv
	// Phase-2 forwards, sorted by destination: values gathered from the
	// dense routing buffers.
	p2Sends []*fwdPlan
	// p2Recv[sender] maps the t-th forwarded x entry to an extX slot.
	p2Recv map[int][]int
	// Rows whose final owner is this proc, folded straight from routeYVal.
	yLocalRows []int
	yLocalSlot []int
	recv       [2]recvPlan

	// Block (multi-RHS) twins of the per-call buffers, sized lazily by
	// RoutedEngine.ensureBlock: nrhs values per slot of extX and the dense
	// routing buffers, plus the block kernels' accumulator scratch.
	extXB      []float64
	routeXValB []float64
	routeYValB []float64
	accB       []float64

	// Dense slot layouts retained from compile so the transpose plan can
	// address the routing buffers: xSlot maps a routed x column index to
	// its routeXVal slot, ySlot a combined y row to its routeYVal slot.
	xSlot map[int]int
	ySlot map[int]int

	// Compiled transpose plan (y ← Aᵀx), built lazily on the first
	// MultiplyTranspose; see routed_transpose.go.
	t *rtproc
}

type slotIdx struct{ slot, idx int }

type routeRecv struct {
	xRoute []int
	xExt   []int // extX slot or -1
	ySlot  []int
}

// fwdPlan is a precompiled phase-2 packet: fixed index arrays, values
// gathered from the sender's dense routing buffers each call. bufB is the
// nrhs-wide twin sized by ensureBlock.
type fwdPlan struct {
	dest  int
	xSlot []int
	ySlot []int
	buf   packet
	bufB  packet
}

// NewRoutedEngine builds the two-hop schedule for a fused s2D distribution
// on the given mesh, compiles it, and starts the persistent workers.
//
//spmv:deterministic
func NewRoutedEngine(d *distrib.Distribution, mesh core.Mesh) (*RoutedEngine, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if !d.Fused {
		return nil, fmt.Errorf("spmv: routed engine requires a fused (s2D) distribution")
	}
	if mesh.Pr*mesh.Pc != d.K {
		return nil, fmt.Errorf("spmv: mesh %v does not cover K=%d", mesh, d.K)
	}
	e := &RoutedEngine{d: d, mesh: mesh}
	e.rprocs = make([]*rproc, d.K)
	for i := range e.rprocs {
		e.rprocs[i] = &rproc{
			id:          i,
			preGroups:   make(map[int][]localNZ),
			hop1X:       make(map[int][]int),
			hop2X:       make(map[int][]int),
			phase1Dests: make(map[int]struct{}),
			phase2Dests: make(map[int]struct{}),
			extSlot:     make(map[int]int),
			p1Recv:      make(map[int]*routeRecv),
			p2Recv:      make(map[int][]int),
		}
		// Capacity 2K: sends never block even when fault containment
		// floods one release packet per worker on top of the at most one
		// real packet per sender per phase (see fault.go).
		e.rprocs[i].inbox[0] = make(chan packet, 2*d.K)
		e.rprocs[i].inbox[1] = make(chan packet, 2*d.K)
	}

	// Per (owner, dest) x needs, as in the fused engine.
	type pair struct{ from, to int }
	xWant := make(map[pair]map[int]struct{})
	var s2dErr error
	d.EachNZ(func(i, j int, v float64, o int) {
		if s2dErr != nil {
			return
		}
		yOwner := d.YPart[i]
		pr := e.rprocs[o]
		switch {
		case o == yOwner && o == d.XPart[j]:
			pr.ownRows = append(pr.ownRows, localNZ{row: i, src: j, val: v})
		case o == yOwner:
			key := pair{from: d.XPart[j], to: o}
			if xWant[key] == nil {
				xWant[key] = make(map[int]struct{})
			}
			xWant[key][j] = struct{}{}
			s, ok := pr.extSlot[j]
			if !ok {
				s = len(pr.extSlot)
				pr.extSlot[j] = s
			}
			pr.ownRows = append(pr.ownRows, localNZ{row: i, src: -(s + 1), val: v})
		case o == d.XPart[j]:
			pr.preGroups[yOwner] = append(pr.preGroups[yOwner], localNZ{row: i, src: j, val: v})
		default:
			s2dErr = fmt.Errorf("spmv: nonzero (%d,%d) violates s2D", i, j)
		}
	})
	if s2dErr != nil {
		return nil, s2dErr
	}

	// Build the x routing tables.
	for key, set := range xWant { //spmvlint:unordered per-key independent routing-table writes; idxs are sorted before use
		src, dst := key.from, key.to
		mid := mesh.PartAt(mesh.RowOf(dst), mesh.ColOf(src))
		idxs := make([]int, 0, len(set))
		for j := range set {
			idxs = append(idxs, j)
		}
		sort.Ints(idxs)
		if mid != src {
			hop := e.rprocs[src].hop1X[mid]
			hop = append(hop, idxs...)
			e.rprocs[src].hop1X[mid] = hop
			e.rprocs[src].phase1Dests[mid] = struct{}{}
		}
		if dst != mid {
			e.rprocs[mid].hop2X[dst] = append(e.rprocs[mid].hop2X[dst], idxs...)
			e.rprocs[mid].phase2Dests[dst] = struct{}{}
		}
	}
	// Deduplicate hop1X payloads (two destinations in the same mesh row
	// share the shipment).
	for _, pr := range e.rprocs {
		for mid, idxs := range pr.hop1X {
			pr.hop1X[mid] = dedupSorted(idxs)
		}
		for dst, idxs := range pr.hop2X {
			pr.hop2X[dst] = dedupSorted(idxs)
		}
	}
	// y routing structure: source k with partials for dest ℓ messages
	// mid=(RowOf(ℓ), ColOf(k)) in phase 1; mid messages ℓ in phase 2.
	for _, pr := range e.rprocs {
		for dest := range pr.preGroups { //spmvlint:unordered set insertion; commutative
			mid := mesh.PartAt(mesh.RowOf(dest), mesh.ColOf(pr.id))
			if mid != pr.id {
				pr.phase1Dests[mid] = struct{}{}
			}
			if dest != mid {
				e.rprocs[mid].phase2Dests[dest] = struct{}{}
			}
		}
	}
	for _, pr := range e.rprocs {
		pr.extX = make([]float64, len(pr.extSlot))
	}

	e.compile()
	e.pool.launch(len(e.rprocs), func(i int, x, y []float64, nrhs int, transpose bool) {
		pr := e.rprocs[i]
		// curKern is written by the dispatcher before the start-channel
		// send, so this read is ordered after it.
		kid := e.curKern
		switch {
		case transpose && nrhs > 0:
			e.runTBlock(pr, x, y, nrhs, kid)
		case transpose:
			e.runT(pr, x, y, kid)
		case nrhs > 0:
			e.runBlock(pr, x, y, nrhs, kid)
		default:
			e.run(pr, x, y, kid)
		}
	}, e.releasePeers)
	return e, nil
}

// compile lowers the routing schedule to the dense execution plan.
//
//spmv:deterministic
func (e *RoutedEngine) compile() {
	mesh := e.mesh
	// midNZ[p][mid]: p's precompute nonzeros routed via mid (mid may be p
	// itself for same-mesh-row destinations).
	midNZ := make([]map[int][]localNZ, len(e.rprocs))
	for _, pr := range e.rprocs {
		midNZ[pr.id] = make(map[int][]localNZ)
		// Destinations ascending: the concatenation order fixes the
		// within-row nonzero order compileRows bakes into the kernel,
		// and float accumulation order must not vary across rebuilds.
		for _, dest := range sortedKeys(pr.preGroups) {
			mid := mesh.PartAt(mesh.RowOf(dest), mesh.ColOf(pr.id))
			midNZ[pr.id][mid] = append(midNZ[pr.id][mid], pr.preGroups[dest]...)
		}
	}

	// Per-proc slot layouts, kept for the receive-translation pass below.
	xSlots := make([]map[int]int, len(e.rprocs))
	ySlots := make([]map[int]int, len(e.rprocs))

	for _, pr := range e.rprocs {
		pr.own = compileRows(pr.ownRows)

		// Dense routed-x layout: everything this proc forwards in phase 2
		// plus everything arriving in phase 1.
		xIdxs := make([]int, 0)
		for _, idxs := range pr.hop2X {
			xIdxs = append(xIdxs, idxs...)
		}
		for _, s := range e.rprocs {
			xIdxs = append(xIdxs, s.hop1X[pr.id]...)
		}
		xIdxs = dedupSorted(xIdxs)
		xSlot := make(map[int]int, len(xIdxs))
		for t, j := range xIdxs {
			xSlot[j] = t
		}
		xSlots[pr.id] = xSlot
		pr.xSlot = xSlot
		pr.routeXVal = make([]float64, len(xIdxs))

		// Dense routed-y layout: every row this proc combines, own partials
		// and incoming alike.
		yRows := make([]int, 0)
		for s := range e.rprocs {
			for _, nz := range midNZ[s][pr.id] {
				yRows = append(yRows, nz.row)
			}
		}
		yRows = dedupSorted(yRows)
		ySlot := make(map[int]int, len(yRows))
		for t, r := range yRows {
			ySlot[r] = t
		}
		ySlots[pr.id] = ySlot
		pr.ySlot = ySlot
		pr.routeYVal = make([]float64, len(yRows))

		// Locally-owned x entries this proc forwards as its own
		// intermediate (never shipped in phase 1).
		for _, idxs := range pr.hop2X {
			for _, j := range idxs {
				if e.d.XPart[j] == pr.id {
					pr.selfX = append(pr.selfX, slotIdx{slot: xSlot[j], idx: j})
				}
			}
		}
		sort.Slice(pr.selfX, func(a, b int) bool { return pr.selfX[a].slot < pr.selfX[b].slot })
		pr.selfX = dedupSelfX(pr.selfX)

		// Self-routed partials accumulate straight into routeYVal.
		pr.selfY = compileRows(midNZ[pr.id][pr.id])
		for t, r := range pr.selfY.rows {
			pr.selfY.rows[t] = ySlot[r]
		}

		// Phase-1 packets, sorted by intermediate.
		mids := sortedKeys(pr.phase1Dests)
		grps := make([]rowKernel, len(mids))
		words := 0
		for t, mid := range mids {
			grps[t] = compileRows(midNZ[pr.id][mid])
			words += len(pr.hop1X[mid]) + len(grps[t].rows)
		}
		arena := newValArena(words)
		for t, mid := range mids {
			pr.p1Sends = append(pr.p1Sends, newSendPlan(pr.id, mid, pr.hop1X[mid], grps[t], arena))
		}

		// Phase-2 forwards, sorted by destination: x from hop2X, y from the
		// routed rows owned by that destination.
		words = 0
		destRows := make(map[int][]int, len(pr.phase2Dests))
		for _, r := range yRows {
			if dst := e.d.YPart[r]; dst != pr.id {
				destRows[dst] = append(destRows[dst], r)
			}
		}
		for dst := range pr.phase2Dests {
			words += len(pr.hop2X[dst]) + len(destRows[dst])
		}
		arena = newValArena(words)
		for _, dst := range sortedKeys(pr.phase2Dests) {
			fp := &fwdPlan{dest: dst}
			xIdx := pr.hop2X[dst]
			fp.xSlot = make([]int, len(xIdx))
			for t, j := range xIdx {
				fp.xSlot[t] = xSlot[j]
			}
			rows := destRows[dst]
			fp.ySlot = make([]int, len(rows))
			for t, r := range rows {
				fp.ySlot[t] = ySlot[r]
			}
			fp.buf = packet{
				from: pr.id,
				xIdx: xIdx,
				xVal: arena.take(len(xIdx)),
				yIdx: rows,
				yVal: arena.take(len(rows)),
			}
			pr.p2Sends = append(pr.p2Sends, fp)
		}

		// Rows folded locally.
		for _, r := range yRows {
			if e.d.YPart[r] == pr.id {
				pr.yLocalRows = append(pr.yLocalRows, r)
				pr.yLocalSlot = append(pr.yLocalSlot, ySlot[r])
			}
		}
	}

	// Receive translations: each sender's fixed payload is known, so the
	// receiver precomputes slot arrays instead of doing per-word map
	// lookups at run time.
	for _, pr := range e.rprocs {
		var p1Senders, p2Senders []int
		for _, s := range e.rprocs {
			if s.id == pr.id {
				continue
			}
			if _, ok := s.phase1Dests[pr.id]; ok {
				p1Senders = append(p1Senders, s.id)
				tr := &routeRecv{}
				idxs := s.hop1X[pr.id]
				tr.xRoute = make([]int, len(idxs))
				tr.xExt = make([]int, len(idxs))
				for t, j := range idxs {
					tr.xRoute[t] = xSlots[pr.id][j]
					if slot, ok := pr.extSlot[j]; ok {
						tr.xExt[t] = slot
					} else {
						tr.xExt[t] = -1
					}
				}
				rows := compiledGroupRows(midNZ[s.id][pr.id])
				tr.ySlot = make([]int, len(rows))
				for t, r := range rows {
					tr.ySlot[t] = ySlots[pr.id][r]
				}
				pr.p1Recv[s.id] = tr
			}
			if _, ok := s.phase2Dests[pr.id]; ok {
				p2Senders = append(p2Senders, s.id)
				idxs := s.hop2X[pr.id]
				slots := make([]int, len(idxs))
				for t, j := range idxs {
					slots[t] = pr.extSlot[j]
				}
				pr.p2Recv[s.id] = slots
			}
		}
		sort.Ints(p1Senders)
		sort.Ints(p2Senders)
		pr.recv[0] = newRecvPlan(p1Senders)
		pr.recv[1] = newRecvPlan(p2Senders)
	}
}

func dedupSelfX(xs []slotIdx) []slotIdx {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x.slot != xs[i-1].slot {
			out = append(out, x)
		}
	}
	return out
}

func dedupSorted(xs []int) []int {
	sort.Ints(xs)
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// Close parks the routed engine permanently; like Engine.Close it is
// idempotent, and Multiply after Close returns a typed *ClosedError.
func (e *RoutedEngine) Close() { e.pool.close() }

// Multiply computes y ← Ax with the routed two-phase schedule. It
// returns *ClosedError after Close and *EngineFaultError once a
// contained worker panic has poisoned the engine.
func (e *RoutedEngine) Multiply(x, y []float64) error {
	a := e.d.A
	if len(x) != a.Cols || len(y) != a.Rows {
		panic("spmv: dimension mismatch")
	}
	e.curKern = e.sel.forWidth(1)
	return e.pool.dispatch(x, y)
}

//spmv:hotpath
func (e *RoutedEngine) run(pr *rproc, x, y []float64, kid kernelID) {
	for i := range pr.routeYVal {
		pr.routeYVal[i] = 0
	}
	// Seed the routing buffers with self-routed payloads.
	for _, s := range pr.selfX {
		pr.routeXVal[s.slot] = x[s.idx]
	}
	pr.selfY.addIntoK(kid, pr.routeYVal, x, nil)
	// Phase 1 sends.
	for _, sp := range pr.p1Sends {
		sp.fill(kid, x, nil)
		e.rprocs[sp.dest].inbox[0] <- sp.buf
	}
	// Phase 1 receives: combine into the dense routing buffers. An x value
	// whose final destination is this very processor lands in extX too.
	for _, pk := range pr.recv[0].gather(pr.inbox[0]) {
		tr := pr.p1Recv[pk.from]
		for t, v := range pk.xVal {
			pr.routeXVal[tr.xRoute[t]] = v
			if s := tr.xExt[t]; s >= 0 {
				pr.extX[s] = v
			}
		}
		for t, v := range pk.yVal {
			pr.routeYVal[tr.ySlot[t]] += v // combining: same y_i from many sources
		}
	}
	// Phase 2 sends: forward combined payloads to final destinations.
	for _, fp := range pr.p2Sends {
		for t, s := range fp.xSlot {
			fp.buf.xVal[t] = pr.routeXVal[s]
		}
		for t, s := range fp.ySlot {
			fp.buf.yVal[t] = pr.routeYVal[s]
		}
		e.rprocs[fp.dest].inbox[1] <- fp.buf
	}
	// Rows this proc owns fold straight out of the routing buffer.
	for t, i := range pr.yLocalRows {
		y[i] += pr.routeYVal[pr.yLocalSlot[t]]
	}
	// Phase 2 receives.
	for _, pk := range pr.recv[1].gather(pr.inbox[1]) {
		slots := pr.p2Recv[pk.from]
		for t, v := range pk.xVal {
			pr.extX[slots[t]] = v
		}
		for t, i := range pk.yIdx {
			y[i] += pk.yVal[t]
		}
	}
	// Compute local rows.
	ownOf(&pr.own, &pr.ownS, kid).addIntoK(kid, y, x, pr.extX)
}
