package spmv

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/distrib"
)

// RoutedEngine executes the s2D-b schedule (§VI-B1): the fused [x̂,ŷ]
// packet from P_k to P_ℓ travels via the mesh intermediate at
// (RowOf(ℓ), ColOf(k)). Phase 1 moves packets within mesh columns, phase 2
// within mesh rows. Intermediates combine payloads: an x entry needed by
// several parts in one mesh row ships to that row once, and partial y
// results for the same output entry are summed before forwarding. Each
// processor therefore contacts fewer than P_r + P_c peers in total.
type RoutedEngine struct {
	d    *distrib.Distribution
	mesh core.Mesh

	rprocs []*rproc
}

type rproc struct {
	id int

	ownRows   []localNZ         // nonzeros with local output row
	preGroups map[int][]localNZ // x-local nonzeros grouped by final y owner

	// Phase-1 x payloads: hop1X[mid] lists locally-owned x indices routed
	// via mid. Phase-2 forwarding schedule at an intermediate:
	// hop2X[dest] lists x indices to forward to dest.
	hop1X map[int][]int
	hop2X map[int][]int

	// Static sender sets per phase (destinations this proc will message).
	phase1Dests map[int]struct{}
	phase2Dests map[int]struct{}

	extSlot map[int]int
	extX    []float64

	recvCount [2]int
	inbox     [2]chan packet

	// Runtime routing buffers, reset each multiply.
	routeX map[int]float64
	routeY map[int]float64
}

// NewRoutedEngine builds the two-hop schedule for a fused s2D distribution
// on the given mesh.
func NewRoutedEngine(d *distrib.Distribution, mesh core.Mesh) (*RoutedEngine, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if !d.Fused {
		return nil, fmt.Errorf("spmv: routed engine requires a fused (s2D) distribution")
	}
	if mesh.Pr*mesh.Pc != d.K {
		return nil, fmt.Errorf("spmv: mesh %v does not cover K=%d", mesh, d.K)
	}
	e := &RoutedEngine{d: d, mesh: mesh}
	e.rprocs = make([]*rproc, d.K)
	for i := range e.rprocs {
		e.rprocs[i] = &rproc{
			id:          i,
			preGroups:   make(map[int][]localNZ),
			hop1X:       make(map[int][]int),
			hop2X:       make(map[int][]int),
			phase1Dests: make(map[int]struct{}),
			phase2Dests: make(map[int]struct{}),
			extSlot:     make(map[int]int),
		}
		e.rprocs[i].inbox[0] = make(chan packet, d.K)
		e.rprocs[i].inbox[1] = make(chan packet, d.K)
	}

	a := d.A
	// Per (owner, dest) x needs, as in the fused engine.
	type pair struct{ from, to int }
	xWant := make(map[pair]map[int]struct{})
	p := 0
	for i := 0; i < a.Rows; i++ {
		yOwner := d.YPart[i]
		for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
			j := a.ColIdx[q]
			v := a.Val[p]
			o := d.Owner[p]
			pr := e.rprocs[o]
			switch {
			case o == yOwner && o == d.XPart[j]:
				pr.ownRows = append(pr.ownRows, localNZ{row: i, src: j, val: v})
			case o == yOwner:
				key := pair{from: d.XPart[j], to: o}
				if xWant[key] == nil {
					xWant[key] = make(map[int]struct{})
				}
				xWant[key][j] = struct{}{}
				s, ok := pr.extSlot[j]
				if !ok {
					s = len(pr.extSlot)
					pr.extSlot[j] = s
				}
				pr.ownRows = append(pr.ownRows, localNZ{row: i, src: -(s + 1), val: v})
			case o == d.XPart[j]:
				pr.preGroups[yOwner] = append(pr.preGroups[yOwner], localNZ{row: i, src: j, val: v})
			default:
				return nil, fmt.Errorf("spmv: nonzero (%d,%d) violates s2D", i, j)
			}
			p++
		}
	}

	// Build the x routing tables.
	for key, set := range xWant {
		src, dst := key.from, key.to
		mid := mesh.PartAt(mesh.RowOf(dst), mesh.ColOf(src))
		idxs := make([]int, 0, len(set))
		for j := range set {
			idxs = append(idxs, j)
		}
		sort.Ints(idxs)
		if mid != src {
			hop := e.rprocs[src].hop1X[mid]
			hop = append(hop, idxs...)
			e.rprocs[src].hop1X[mid] = hop
			e.rprocs[src].phase1Dests[mid] = struct{}{}
		}
		if dst != mid {
			e.rprocs[mid].hop2X[dst] = append(e.rprocs[mid].hop2X[dst], idxs...)
			e.rprocs[mid].phase2Dests[dst] = struct{}{}
		}
	}
	// Deduplicate hop1X payloads (two destinations in the same mesh row
	// share the shipment).
	for _, pr := range e.rprocs {
		for mid, idxs := range pr.hop1X {
			pr.hop1X[mid] = dedupSorted(idxs)
		}
		for dst, idxs := range pr.hop2X {
			pr.hop2X[dst] = dedupSorted(idxs)
		}
	}
	// y routing structure: source k with partials for dest ℓ messages
	// mid=(RowOf(ℓ), ColOf(k)) in phase 1; mid messages ℓ in phase 2.
	for _, pr := range e.rprocs {
		for dest := range pr.preGroups {
			mid := mesh.PartAt(mesh.RowOf(dest), mesh.ColOf(pr.id))
			if mid != pr.id {
				pr.phase1Dests[mid] = struct{}{}
			}
			if dest != mid {
				e.rprocs[mid].phase2Dests[dest] = struct{}{}
			}
		}
	}
	// Expected receive counts.
	for _, pr := range e.rprocs {
		for mid := range pr.phase1Dests {
			e.rprocs[mid].recvCount[0]++
		}
		for dst := range pr.phase2Dests {
			e.rprocs[dst].recvCount[1]++
		}
	}
	for _, pr := range e.rprocs {
		pr.extX = make([]float64, len(pr.extSlot))
	}
	return e, nil
}

func dedupSorted(xs []int) []int {
	sort.Ints(xs)
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// Multiply computes y ← Ax with the routed two-phase schedule.
func (e *RoutedEngine) Multiply(x, y []float64) {
	a := e.d.A
	if len(x) != a.Cols || len(y) != a.Rows {
		panic("spmv: dimension mismatch")
	}
	for i := range y {
		y[i] = 0
	}
	var wg sync.WaitGroup
	wg.Add(len(e.rprocs))
	for _, pr := range e.rprocs {
		go func(pr *rproc) {
			defer wg.Done()
			e.run(pr, x, y)
		}(pr)
	}
	wg.Wait()
}

func (e *RoutedEngine) run(pr *rproc, x, y []float64) {
	mesh := e.mesh
	pr.routeX = make(map[int]float64)
	pr.routeY = make(map[int]float64)

	// Precompute partials per final destination, then fold them into
	// per-intermediate phase-1 payloads (or keep locally if self-routed).
	hop1Y := make(map[int]map[int]float64) // mid -> row -> partial
	for dest, nzs := range pr.preGroups {
		mid := mesh.PartAt(mesh.RowOf(dest), mesh.ColOf(pr.id))
		acc := hop1Y[mid]
		if acc == nil {
			acc = make(map[int]float64)
			hop1Y[mid] = acc
		}
		for _, nz := range nzs {
			acc[nz.row] += nz.val * x[nz.src]
		}
	}
	// Phase 1 sends.
	for mid := range pr.phase1Dests {
		pk := packet{from: pr.id}
		for _, j := range pr.hop1X[mid] {
			pk.xIdx = append(pk.xIdx, j)
			pk.xVal = append(pk.xVal, x[j])
		}
		for i, v := range hop1Y[mid] {
			pk.yIdx = append(pk.yIdx, i)
			pk.yVal = append(pk.yVal, v)
		}
		e.rprocs[mid].inbox[0] <- pk
	}
	// Self-routed payloads bypass the channel.
	for _, j := range pr.hop1X[pr.id] {
		pr.routeX[j] = x[j]
	}
	if acc := hop1Y[pr.id]; acc != nil {
		for i, v := range acc {
			pr.routeY[i] += v
		}
	}
	// Locally-owned x entries we must forward in phase 2 but never shipped
	// in phase 1 (we are our own intermediate for same-row destinations).
	for _, idxs := range pr.hop2X {
		for _, j := range idxs {
			if e.d.XPart[j] == pr.id {
				pr.routeX[j] = x[j]
			}
		}
	}
	// Phase 1 receives: combine. An x value whose final destination is
	// this very processor (source in our mesh column) is consumed here.
	for n := 0; n < pr.recvCount[0]; n++ {
		pk := <-pr.inbox[0]
		for t, j := range pk.xIdx {
			pr.routeX[j] = pk.xVal[t]
			if s, ok := pr.extSlot[j]; ok {
				pr.extX[s] = pk.xVal[t]
			}
		}
		for t, i := range pk.yIdx {
			pr.routeY[i] += pk.yVal[t] // combining: same y_i from many sources
		}
	}
	// Phase 2 sends: forward combined payloads to final destinations.
	yByDest := make(map[int]map[int]float64)
	for i, v := range pr.routeY {
		dest := e.d.YPart[i]
		if dest == pr.id {
			y[i] += v // we are the final owner
			continue
		}
		acc := yByDest[dest]
		if acc == nil {
			acc = make(map[int]float64)
			yByDest[dest] = acc
		}
		acc[i] += v
	}
	for dest := range pr.phase2Dests {
		pk := packet{from: pr.id}
		for _, j := range pr.hop2X[dest] {
			pk.xIdx = append(pk.xIdx, j)
			pk.xVal = append(pk.xVal, pr.routeX[j])
		}
		for i, v := range yByDest[dest] {
			pk.yIdx = append(pk.yIdx, i)
			pk.yVal = append(pk.yVal, v)
		}
		e.rprocs[dest].inbox[1] <- pk
	}
	// Phase 2 receives.
	for n := 0; n < pr.recvCount[1]; n++ {
		pk := <-pr.inbox[1]
		for t, j := range pk.xIdx {
			pr.extX[pr.extSlot[j]] = pk.xVal[t]
		}
		for t, i := range pk.yIdx {
			y[i] += pk.yVal[t]
		}
	}
	// Compute local rows.
	for _, nz := range pr.ownRows {
		xv := 0.0
		if nz.src >= 0 {
			xv = x[nz.src]
		} else {
			xv = pr.extX[-(nz.src + 1)]
		}
		y[nz.row] += nz.val * xv
	}
}
