package spmv

import (
	"math/rand"
	"testing"

	"repro/internal/method"
)

// tuneBuild builds one s2D engine fixture for tuner tests.
func tuneBuild(t *testing.T, opt method.Options) method.Build {
	t.Helper()
	r := rand.New(rand.NewSource(11))
	a := randomMatrix(r, 200, 160, 2400)
	b, err := method.BuildByName("s2D", a, 4, opt)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// mapCache is a KernelCache test double.
type mapCache struct{ m map[int]string }

func (c *mapCache) Lookup(nrhs int) (string, bool) { k, ok := c.m[nrhs]; return k, ok }
func (c *mapCache) Store(nrhs int, kernel string) {
	if c.m == nil {
		c.m = map[int]string{}
	}
	if _, dup := c.m[nrhs]; !dup {
		c.m[nrhs] = kernel
	}
}

func TestKernelReportDefault(t *testing.T) {
	opt := method.Options{Seed: 1, Pipeline: method.NewPipeline()}
	eng, err := New(tuneBuild(t, opt))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	rep := eng.KernelReport()
	if len(rep.Choices) != numClasses {
		t.Fatalf("%d choices, want %d", len(rep.Choices), numClasses)
	}
	for _, ch := range rep.Choices {
		if ch.Kernel != "scalar" || ch.Source != "default" {
			t.Fatalf("untuned engine reports %+v, want scalar/default", ch)
		}
	}
	for _, w := range []int{1, 3, 8} {
		if got := rep.For(w); got != "scalar" {
			t.Fatalf("For(%d) = %q, want scalar", w, got)
		}
	}
}

func TestAutotuneForce(t *testing.T) {
	opt := method.Options{Seed: 1, Pipeline: method.NewPipeline()}
	eng, err := New(tuneBuild(t, opt))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	rep, err := eng.Autotune(TuneConfig{Force: "sortedreg"})
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range rep.Choices {
		if ch.Kernel != "sortedreg" || ch.Source != "forced" {
			t.Fatalf("forced choice %+v, want sortedreg/forced", ch)
		}
	}
	if got := eng.KernelReport().For(8); got != "sortedreg" {
		t.Fatalf("installed kernel %q, want sortedreg", got)
	}
	if _, err := eng.Autotune(TuneConfig{Force: "simd512"}); err == nil {
		t.Fatal("unknown forced kernel must error")
	}
}

func TestAutotuneProbedReport(t *testing.T) {
	opt := method.Options{Seed: 1, Pipeline: method.NewPipeline()}
	b := tuneBuild(t, opt)
	eng, err := New(b)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	rep, err := eng.Autotune(TuneConfig{Widths: []int{1, 4, 8}})
	if err != nil {
		t.Fatal(err)
	}
	valid := map[string]bool{}
	for _, n := range KernelNames() {
		valid[n] = true
	}
	probed := 0
	for _, ch := range rep.Choices {
		switch ch.Source {
		case "probed":
			probed++
			if !valid[ch.Kernel] {
				t.Fatalf("probed winner %q is not a registered backend", ch.Kernel)
			}
			if ch.Kernel == "relaxed" {
				t.Fatal("relaxed won a probe without RelaxedFP opt-in")
			}
			if len(ch.ProbesNs) == 0 {
				t.Fatalf("probed choice %+v carries no probe times", ch)
			}
			if _, ok := ch.ProbesNs["scalar"]; !ok {
				t.Fatalf("probe table %v missing the scalar reference", ch.ProbesNs)
			}
		case "default":
			// widths not asked for stay untouched
			if ch.NRHS == 1 || ch.NRHS == 4 || ch.NRHS == 8 {
				t.Fatalf("requested width %d left untuned", ch.NRHS)
			}
		default:
			t.Fatalf("unexpected source %q", ch.Source)
		}
	}
	if probed != 3 {
		t.Fatalf("probed %d classes, want 3", probed)
	}

	// Whatever won, results must stay bitwise identical to a scalar
	// engine on the same build (relaxed was not admitted).
	ref, err := New(b)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ref.Close)
	a := b.Dist.A
	x := make([]float64, a.Cols*8)
	for i := range x {
		x[i] = float64(i%11) - 5
	}
	y := make([]float64, a.Rows*8)
	want := make([]float64, a.Rows*8)
	for _, nrhs := range []int{1, 4, 8} {
		if err := eng.MultiplyBlock(x[:a.Cols*nrhs], y[:a.Rows*nrhs], nrhs); err != nil {
			t.Fatal(err)
		}
		if err := ref.MultiplyBlock(x[:a.Cols*nrhs], want[:a.Rows*nrhs], nrhs); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < a.Rows*nrhs; i++ {
			if y[i] != want[i] {
				t.Fatalf("nrhs=%d: tuned engine diverges at [%d]: %x vs %x", nrhs, i, y[i], want[i])
			}
		}
	}
}

// TestAutotuneDeterministicAcrossBuilds pins the cross-build
// determinism contract: two NewTuned builds over one pipeline must
// install identical kernels — the first probes, the second reads the
// memoized verdicts ("cached") without re-timing.
func TestAutotuneDeterministicAcrossBuilds(t *testing.T) {
	opt := method.Options{Seed: 1, Pipeline: method.NewPipeline()}
	b := tuneBuild(t, opt)

	eng1, rep1, err := NewTuned(b, opt)
	if err != nil {
		t.Fatal(err)
	}
	eng1.Close()
	eng2, rep2, err := NewTuned(b, opt)
	if err != nil {
		t.Fatal(err)
	}
	eng2.Close()

	for _, w := range []int{0, 1, 2, 3, 4, 8, 9} {
		if rep1.For(w) != rep2.For(w) {
			t.Fatalf("width %d: first build %q, second %q — tuner not deterministic across builds",
				w, rep1.For(w), rep2.For(w))
		}
	}
	for _, ch := range rep2.Choices {
		if ch.Source != "cached" {
			t.Fatalf("second build's class %d came from %q, want cached", ch.NRHS, ch.Source)
		}
	}
	// A distinct K (different memo key) must not see these entries.
	if opt.Pipeline.KernelCache(b.Dist.A, b.Method, 16, opt.Seed, opt.Epsilon) ==
		opt.Pipeline.KernelCache(b.Dist.A, b.Method, b.Dist.K, opt.Seed, opt.Epsilon) {
		t.Fatal("kernel caches for different K must be distinct")
	}
}

func TestAutotuneHonorsPrepopulatedCache(t *testing.T) {
	opt := method.Options{Seed: 1, Pipeline: method.NewPipeline()}
	eng, err := New(tuneBuild(t, opt))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	cache := &mapCache{m: map[int]string{8: "sortedreg"}}
	rep, err := eng.Autotune(TuneConfig{Widths: []int{8}, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.For(8); got != "sortedreg" {
		t.Fatalf("For(8) = %q, want the cached sortedreg", got)
	}
	for _, ch := range rep.Choices {
		if ch.NRHS == 8 && ch.Source != "cached" {
			t.Fatalf("class 8 source %q, want cached", ch.Source)
		}
	}
	// A cached name that no longer resolves must fail loudly, not
	// silently fall back.
	bad := &mapCache{m: map[int]string{4: "avx9"}}
	if _, err := eng.Autotune(TuneConfig{Widths: []int{4}, Cache: bad}); err == nil {
		t.Fatal("unknown cached kernel must error")
	}
}

func TestNewTunedForceKernelOption(t *testing.T) {
	opt := method.Options{Seed: 1, Pipeline: method.NewPipeline(), ForceKernel: "sorted"}
	b := tuneBuild(t, opt)
	eng, rep, err := NewTuned(b, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	for _, ch := range rep.Choices {
		if ch.Kernel != "sorted" || ch.Source != "forced" {
			t.Fatalf("choice %+v, want sorted/forced", ch)
		}
	}
	if got := eng.KernelReport().String(); got != "0:sorted 1:sorted 2:sorted 4:sorted 8:sorted" {
		t.Fatalf("report string %q", got)
	}
}
