package spmv

// This file adds the transpose execution path y ← Aᵀx on top of the
// compiled plans. The paper's constructions treat the row and column
// spaces symmetrically, so a distribution built for y ← Ax already
// contains the transpose's communication schedule: the fold messages
// reversed become the transpose's expand, the expand messages reversed
// become its fold. Concretely, for every forward packet k→ℓ there is
// exactly one transpose packet ℓ→k whose x payload covers the rows of
// the forward packet's y partials and whose y partials cover the
// forward packet's x entries — message counts, index sets, and payload
// sizes all match the forward plan's.
//
// In the transpose frame, x is indexed by rows (length Rows, owned by
// YPart) and y by columns (length Cols, owned by XPart). Each
// processor's transpose plan is compiled lazily on the first
// MultiplyTranspose from the forward schedule the engine retains, and
// thereafter executes with zero steady-state heap allocations, exactly
// like the forward plan.

// tproc is one processor's compiled transpose plan.
type tproc struct {
	// extSlot maps a remote x row (a row this proc has nonzeros in but
	// does not own) to a slot in extX — the dual of proc.extSlot over
	// columns. Those rows are exactly the rows the forward plan computed
	// fold partials for.
	extSlot map[int]int
	extX    []float64

	// own computes the locally-owned output columns: the "rows" of this
	// kernel are global column indices, local sources read x by global
	// row, external sources read extX. ownS is its sorted-slot twin,
	// derived lazily once a sorted-layout backend is installed.
	own  rowKernel
	ownS rowKernel

	// sends are the first-phase packets. Fused: one [x-rows, partial-cols]
	// packet per peer (reverse of the forward fused packet). Two-phase:
	// x-row expand packets (reverse of the forward fold).
	sends []*sendPlan
	// ySends are the two-phase second-phase packets: partial sums for
	// remote columns, shipped to the column owners (reverse of the
	// forward expand).
	ySends []*sendPlan

	// recvX[sender] maps the t-th x entry of that sender's packet to an
	// extX slot.
	recvX map[int][]int
	recv  []recvPlan // one per phase, fixing fold order by sender

	// Block (multi-RHS) twins, sized lazily by ensureTransposeBlock.
	extXB []float64
	accB  []float64
}

// invertSlots turns an index→slot map into its slot→index array.
func invertSlots(m map[int]int) []int {
	out := make([]int, len(m))
	for idx, slot := range m { //spmvlint:unordered slot map is a bijection; each key writes its own slot
		out[slot] = idx
	}
	return out
}

// newTproc allocates the transpose plan skeleton with external-row
// slots assigned in deterministic order (destinations ascending, rows
// ascending), so rebuilt engines produce bit-identical transposes.
func newTproc(pr *proc) *tproc {
	t := &tproc{extSlot: make(map[int]int), recvX: make(map[int][]int)}
	for _, dst := range sortedKeys(pr.preGroups) {
		for _, i := range compiledGroupRows(pr.preGroups[dst]) {
			if _, ok := t.extSlot[i]; !ok {
				t.extSlot[i] = len(t.extSlot)
			}
		}
	}
	t.extX = make([]float64, len(t.extSlot))
	return t
}

// ensureTranspose compiles the transpose plan once. It runs with the
// workers parked (Multiply calls never overlap), so no locking is
// needed beyond the engine's existing single-caller contract.
func (e *Engine) ensureTranspose() {
	if e.tready {
		return
	}
	if e.fused {
		e.compileFusedTranspose()
	} else {
		e.compileTwoPhaseTranspose()
	}
	e.tready = true
	if e.sel.anySorted() {
		// A sorted-layout backend was installed before the transpose plan
		// existed; derive its sorted own kernels now.
		e.ensureSorted()
	}
}

// transposeKernels splits one processor's nonzeros into the transpose
// compute kernel (locally-owned output columns) and the per-owner
// partial groups (remote output columns), in the transpose frame:
// kernel "row" = global column, source = global row or -(extSlot+1).
func (e *Engine) transposeKernels(pr *proc) (own []localNZ, pre map[int][]localNZ) {
	d := e.d
	t := pr.t
	extIdx := invertSlots(pr.extSlot) // forward slot → global column
	pre = make(map[int][]localNZ)
	add := func(nz localNZ) {
		src := nz.row
		if d.YPart[nz.row] != pr.id {
			src = -(t.extSlot[nz.row] + 1)
		}
		j := nz.src
		if j < 0 {
			j = extIdx[-(nz.src + 1)]
		}
		tnz := localNZ{row: j, src: src, val: nz.val}
		if d.XPart[j] == pr.id {
			own = append(own, tnz)
		} else {
			pre[d.XPart[j]] = append(pre[d.XPart[j]], tnz)
		}
	}
	for _, nz := range pr.ownRows {
		add(nz)
	}
	// Sorted destination order keeps the kernels' nonzero order — and so
	// the floating-point sums — identical across rebuilt engines.
	for _, dst := range sortedKeys(pr.preGroups) {
		for _, nz := range pr.preGroups[dst] {
			add(nz)
		}
	}
	return own, pre
}

// compileFusedTranspose reverses the fused single-phase schedule: the
// transpose packet pr→k pairs the x rows k needs (the rows of k's
// forward partials for pr) with pr's precomputed partials for the
// columns k owns (the columns k shipped to pr). Under s2D every
// partial's source row is local, so partials fill before any receive —
// the transpose is single-phase too.
func (e *Engine) compileFusedTranspose() {
	for _, pr := range e.procs {
		pr.t = newTproc(pr)
	}
	for _, pr := range e.procs {
		t := pr.t
		own, pre := e.transposeKernels(pr)
		t.own = compileRows(own)

		destSet := make(map[int]struct{}, len(pre))
		for dst := range pre {
			destSet[dst] = struct{}{}
		}
		for _, other := range e.procs {
			if len(other.preGroups[pr.id]) > 0 {
				destSet[other.id] = struct{}{}
			}
		}
		dests := sortedKeys(destSet)
		grps := make([]rowKernel, len(dests))
		xIdxs := make([][]int, len(dests))
		words := 0
		for i, dst := range dests {
			grps[i] = compileRows(pre[dst])
			xIdxs[i] = compiledGroupRows(e.procs[dst].preGroups[pr.id])
			words += len(xIdxs[i]) + len(grps[i].rows)
		}
		arena := newValArena(words)
		for i, dst := range dests {
			t.sends = append(t.sends, newSendPlan(pr.id, dst, xIdxs[i], grps[i], arena))
		}
		// Transpose packets into pr reverse pr's forward sends.
		senders := make([]int, 0, len(pr.sends))
		for _, sp := range pr.sends {
			senders = append(senders, sp.dest)
		}
		t.recv = []recvPlan{newRecvPlan(senders)}
	}
	compileTransposeRecvX(e.procs)
}

// compileTwoPhaseTranspose reverses the classic schedule: phase 0 ships
// x rows from their owners to every proc holding nonzeros in them
// (reverse of the forward fold), phase 1 ships column partials to the
// column owners (reverse of the forward expand). A general 2D nonzero
// can have both spaces remote, so the partial kernels read extX and
// fill only after the phase-0 receives — mirroring the forward order.
func (e *Engine) compileTwoPhaseTranspose() {
	for _, pr := range e.procs {
		pr.t = newTproc(pr)
	}
	for _, pr := range e.procs {
		t := pr.t
		own, pre := e.transposeKernels(pr)
		t.own = compileRows(own)

		// Phase-0 x-row packets: reverse of the forward ySends into pr's
		// peers — pr owns the rows of k.preGroups[pr.id].
		var xDests []int
		for _, other := range e.procs {
			if len(other.preGroups[pr.id]) > 0 {
				xDests = append(xDests, other.id)
			}
		}
		yDests := sortedKeys(pre)
		grps := make([]rowKernel, len(yDests))
		xIdxs := make([][]int, len(xDests))
		words := 0
		for i, dst := range xDests {
			xIdxs[i] = compiledGroupRows(e.procs[dst].preGroups[pr.id])
			words += len(xIdxs[i])
		}
		for i, dst := range yDests {
			grps[i] = compileRows(pre[dst])
			words += len(grps[i].rows)
		}
		arena := newValArena(words)
		for i, dst := range xDests {
			t.sends = append(t.sends, newSendPlan(pr.id, dst, xIdxs[i], rowKernel{}, arena))
		}
		for i, dst := range yDests {
			t.ySends = append(t.ySends, newSendPlan(pr.id, dst, nil, grps[i], arena))
		}
		t.recv = []recvPlan{
			// Phase-0 senders: the procs pr shipped fold partials to.
			newRecvPlan(sortedKeys(pr.preGroups)),
			// Phase-1 senders: the procs pr shipped x entries to.
			newRecvPlan(sortedKeys(pr.xNeed)),
		}
	}
	compileTransposeRecvX(e.procs)
}

// compileTransposeRecvX installs, on every destination, the transpose
// extX slot translation for each sender's fixed x-row payload.
func compileTransposeRecvX(procs []*proc) {
	for _, pr := range procs {
		for _, sp := range pr.t.sends {
			dst := procs[sp.dest]
			slots := make([]int, len(sp.xIdx))
			for i, row := range sp.xIdx {
				slots[i] = dst.t.extSlot[row]
			}
			dst.t.recvX[pr.id] = slots
		}
	}
}

// MultiplyTranspose computes y ← Aᵀx in parallel: x has the matrix's
// row dimension, y its column dimension, and y is fully overwritten.
// The first call compiles the transpose plan from the engine's retained
// schedule (reusing the forward plan's packet structure with the phases
// reversed); steady-state calls spawn no goroutines and allocate
// nothing. Like Multiply, calls must not overlap on one engine.
func (e *Engine) MultiplyTranspose(x, y []float64) error {
	a := e.d.A
	if len(x) != a.Rows || len(y) != a.Cols {
		panic("spmv: dimension mismatch")
	}
	e.ensureTranspose()
	e.curKern = e.sel.forWidth(1)
	return e.pool.dispatchOp(x, y, 0, true)
}

// runFusedT executes one processor's transpose part of the fused
// algorithm: fill the [x-rows, partial-cols] packets, bank incoming
// ones in sender order, then compute the locally-owned columns.
//
//spmv:hotpath
func (e *Engine) runFusedT(pr *proc, x, y []float64, kid kernelID) {
	t := pr.t
	pc := e.phaseClock(pr)
	for _, sp := range t.sends {
		sp.fill(kid, x, t.extX) // partial kernels read local x only under s2D
		e.procs[sp.dest].inbox[0] <- sp.buf
	}
	pc.lap(&e.pt.expandNs)
	for _, pk := range t.recv[0].gather(pr.inbox[0]) {
		slots := t.recvX[pk.from]
		for i, v := range pk.xVal {
			t.extX[slots[i]] = v
		}
		for i, j := range pk.yIdx {
			y[j] += pk.yVal[i] // columns owned exclusively by this proc
		}
	}
	pc.lap(&e.pt.foldNs)
	ownOf(&t.own, &t.ownS, kid).addIntoK(kid, y, x, t.extX)
	pc.lap(&e.pt.computeNs)
}

// runTwoPhaseT executes one processor's transpose part of the classic
// algorithm: expand x rows, compute, fold column partials.
//
//spmv:hotpath
func (e *Engine) runTwoPhaseT(pr *proc, x, y []float64, kid kernelID) {
	t := pr.t
	pc := e.phaseClock(pr)
	// Phase 0 — Expand (x rows to their consumers).
	for _, sp := range t.sends {
		sp.fill(kid, x, t.extX)
		e.procs[sp.dest].inbox[0] <- sp.buf
	}
	for _, pk := range t.recv[0].gather(pr.inbox[0]) {
		slots := t.recvX[pk.from]
		for i, v := range pk.xVal {
			t.extX[slots[i]] = v
		}
	}
	pc.lap(&e.pt.expandNs)
	// Multiply.
	ownOf(&t.own, &t.ownS, kid).addIntoK(kid, y, x, t.extX)
	pc.lap(&e.pt.computeNs)
	// Phase 1 — Fold (column partials to the column owners).
	for _, sp := range t.ySends {
		sp.fill(kid, x, t.extX)
		e.procs[sp.dest].inbox[1] <- sp.buf
	}
	for _, pk := range t.recv[1].gather(pr.inbox[1]) {
		for i, j := range pk.yIdx {
			y[j] += pk.yVal[i]
		}
	}
	pc.lap(&e.pt.foldNs)
}

// ---- blocked transpose ----

// ensureTransposeBlock sizes the transpose block buffers for width
// nrhs; like ensureBlock, growth allocates and repeat calls at or below
// the cached capacity only re-slice.
func (e *Engine) ensureTransposeBlock(nrhs int) {
	if nrhs == e.tBlockNRHS {
		return
	}
	for _, pr := range e.procs {
		t := pr.t
		t.extXB = growBlock(t.extXB, len(t.extSlot)*nrhs)
		t.accB = growBlock(t.accB, nrhs)
		for _, sp := range t.sends {
			sp.ensureBlock(nrhs)
		}
		for _, sp := range t.ySends {
			sp.ensureBlock(nrhs)
		}
	}
	e.tBlockNRHS = nrhs
}

// MultiplyTransposeBlock computes Y ← AᵀX for nrhs right-hand sides in
// the column-blocked layout (X[i*nrhs+c] is x_i of column c). It reuses
// the transpose plan with nrhs-wide payloads: one packet per peer per
// phase regardless of nrhs, zero steady-state allocations once sized,
// and nrhs=1 bit-identical to MultiplyTranspose.
func (e *Engine) MultiplyTransposeBlock(X, Y []float64, nrhs int) error {
	a := e.d.A
	checkBlockDims(X, Y, nrhs, a.Rows, a.Cols)
	e.ensureTranspose()
	e.ensureTransposeBlock(nrhs)
	e.curKern = e.sel.forWidth(nrhs)
	return e.pool.dispatchOp(X, Y, nrhs, true)
}

// MultiplyTransposeMulti computes Y[c] ← Aᵀ·X[c] for every column c in
// one block transpose multiply; see Engine.MultiplyMulti.
func (e *Engine) MultiplyTransposeMulti(X, Y [][]float64) error {
	return e.io.multi(X, Y, e.d.A.Rows, e.d.A.Cols, e.MultiplyTransposeBlock)
}

// runFusedTBlock is runFusedT with nrhs-wide payloads.
//
//spmv:hotpath
func (e *Engine) runFusedTBlock(pr *proc, x, y []float64, nrhs int, kid kernelID) {
	t := pr.t
	pc := e.phaseClock(pr)
	for _, sp := range t.sends {
		sp.fillBlock(kid, x, t.extXB, nrhs)
		e.procs[sp.dest].inbox[0] <- sp.bufB
	}
	pc.lap(&e.pt.expandNs)
	for _, pk := range t.recv[0].gather(pr.inbox[0]) {
		slots := t.recvX[pk.from]
		for i, s := range slots {
			copy(t.extXB[s*nrhs:(s+1)*nrhs], pk.xVal[i*nrhs:(i+1)*nrhs])
		}
		for i, j := range pk.yIdx {
			addBlock(y[j*nrhs:(j+1)*nrhs], pk.yVal[i*nrhs:(i+1)*nrhs])
		}
	}
	pc.lap(&e.pt.foldNs)
	ownOf(&t.own, &t.ownS, kid).addIntoBlockK(kid, y, x, t.extXB, nrhs, t.accB)
	pc.lap(&e.pt.computeNs)
}

// runTwoPhaseTBlock is runTwoPhaseT with nrhs-wide payloads.
//
//spmv:hotpath
func (e *Engine) runTwoPhaseTBlock(pr *proc, x, y []float64, nrhs int, kid kernelID) {
	t := pr.t
	pc := e.phaseClock(pr)
	// Phase 0 — Expand.
	for _, sp := range t.sends {
		sp.fillBlock(kid, x, t.extXB, nrhs)
		e.procs[sp.dest].inbox[0] <- sp.bufB
	}
	for _, pk := range t.recv[0].gather(pr.inbox[0]) {
		slots := t.recvX[pk.from]
		for i, s := range slots {
			copy(t.extXB[s*nrhs:(s+1)*nrhs], pk.xVal[i*nrhs:(i+1)*nrhs])
		}
	}
	pc.lap(&e.pt.expandNs)
	// Multiply.
	ownOf(&t.own, &t.ownS, kid).addIntoBlockK(kid, y, x, t.extXB, nrhs, t.accB)
	pc.lap(&e.pt.computeNs)
	// Phase 1 — Fold.
	for _, sp := range t.ySends {
		sp.fillBlock(kid, x, t.extXB, nrhs)
		e.procs[sp.dest].inbox[1] <- sp.bufB
	}
	for _, pk := range t.recv[1].gather(pr.inbox[1]) {
		for i, j := range pk.yIdx {
			addBlock(y[j*nrhs:(j+1)*nrhs], pk.yVal[i*nrhs:(i+1)*nrhs])
		}
	}
	pc.lap(&e.pt.foldNs)
}
