package spmv

// This file is the engine-side fault-containment surface. A panic inside
// a worker goroutine used to kill the whole process; now the worker
// recovers it, records it, floods its peers with empty release packets so
// every in-flight gather completes and the dispatch barrier closes, and
// the dispatch returns a typed *EngineFaultError. The engine is poisoned
// from that point on — its compiled buffers and inboxes may hold partial
// state — so every later dispatch fails fast with the same fault instead
// of computing garbage. Sharing layers (internal/serve's pool) quarantine
// poisoned engines and rebuild them; the worker goroutines themselves
// survive the panic parked, so Close still collects them cleanly.

import (
	"fmt"
	"strings"
)

// ClosedError reports a multiply dispatched after Close. It replaces the
// old diagnosable panic so library callers that race a refcounted Close
// get an error they can branch on instead of a crash.
type ClosedError struct {
	Op string // "Multiply", "MultiplyBlock", "MultiplyTranspose", ...
}

func (e *ClosedError) Error() string {
	return fmt.Sprintf("spmv: %s on closed engine", e.Op)
}

// WorkerPanic records one contained panic inside a worker goroutine.
type WorkerPanic struct {
	Worker int    // processor id; -1 for panics outside any worker
	Value  string // the recovered value, stringified
}

// EngineFaultError reports that one or more worker goroutines panicked
// during a dispatch. Only the in-flight multiply failed — the process
// and the other workers survive — but the engine is poisoned: its packet
// buffers may hold partial state, so every subsequent dispatch returns
// the same fault. The only recovery is to Close the engine and build a
// fresh one.
type EngineFaultError struct {
	Op     string
	Panics []WorkerPanic
}

func (e *EngineFaultError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "spmv: engine fault during %s (engine poisoned):", e.Op)
	for _, p := range e.Panics {
		fmt.Fprintf(&b, " worker %d panicked: %s;", p.Worker, p.Value)
	}
	return strings.TrimSuffix(b.String(), ";")
}

// WorkerFaultHooker is implemented by engines that accept an injectable
// per-worker hook, run at the top of every worker turn. A panic inside
// the hook is contained exactly like a plan panic — the serving layer's
// fault-injection harness uses this to force worker crashes at chosen
// points. A nil hook clears it.
type WorkerFaultHooker interface {
	SetWorkerFaultHook(func(worker int))
}

// SetWorkerFaultHook installs h on the engine's worker pool.
func (e *Engine) SetWorkerFaultHook(h func(worker int)) { e.pool.setHook(h) }

// SetWorkerFaultHook installs h on the routed engine's worker pool.
func (e *RoutedEngine) SetWorkerFaultHook(h func(worker int)) { e.pool.setHook(h) }

// releasePeers floods every other processor's inboxes with one empty
// packet from worker i. A gather still waiting on the panicked worker's
// sends accepts the release packet in its place (sender-keyed, see
// recvPlan.gather) and reads its empty payload harmlessly; gathers that
// never expected worker i in that phase drop the packet instead of
// completing early over stale buffers. The inbox capacity (2K per
// phase) absorbs the worst case of every worker sending one real and
// one release packet per phase, so these sends never block. Spurious
// packets left in buffers are harmless: the engine is poisoned and will
// never dispatch again.
func (e *Engine) releasePeers(i int) {
	for _, pr := range e.procs {
		if pr.id == i {
			continue
		}
		for _, ch := range pr.inbox {
			ch <- packet{from: i}
		}
	}
}

// releasePeers is Engine.releasePeers for the routed engine's two-phase
// inboxes.
func (e *RoutedEngine) releasePeers(i int) {
	for _, pr := range e.rprocs {
		if pr.id == i {
			continue
		}
		for _, ch := range pr.inbox {
			ch <- packet{from: i}
		}
	}
}
