package spmv

import (
	"fmt"
	"maps"
	"slices"
	"sync"
	"sync/atomic"
)

// This file holds the compiled execution plan shared by all three
// schedules. NewEngine / NewRoutedEngine first build the human-readable
// schedule (xNeed, preGroups, hop tables — kept for ScheduleStats and the
// consistency tests), then compile it down to flat arrays so the
// steady-state Multiply performs zero heap allocations:
//
//   - segKernel / rowKernel: branch-free SoA CSR segments. Each output
//     slot has one run of local-x nonzeros and one run of external-x
//     nonzeros, so the inner loops never test the sign-encoded src that
//     localNZ uses at build time.
//   - sendPlan: a packet with fixed index arrays built once; only the
//     value arrays (carved from a per-proc valArena) are refilled per
//     call.
//   - recvPlan: fixes the fold order of incoming packets by sender
//     ordinal, making y accumulation bitwise-deterministic run-to-run
//     even though channel arrival order is not.

// segKernel is a pair of CSR-style nonzero runs per output slot t:
// a local run reading x directly and an external run reading the
// proc's extX (or any other gathered buffer).
type segKernel struct {
	locPtr []int
	locSrc []int
	locVal []float64
	extPtr []int
	extSrc []int
	extVal []float64
}

// value computes slot t's dot-product contribution.
//
//spmv:hotpath
func (k *segKernel) value(t int, x, ext []float64) float64 {
	s := 0.0
	for q := k.locPtr[t]; q < k.locPtr[t+1]; q++ {
		s += k.locVal[q] * x[k.locSrc[q]]
	}
	for q := k.extPtr[t]; q < k.extPtr[t+1]; q++ {
		s += k.extVal[q] * ext[k.extSrc[q]]
	}
	return s
}

// valueBlock computes slot t's contribution for all nrhs columns into
// acc[0:nrhs]. x and ext use the column-blocked layout: the value of
// source j for column c sits at x[j*nrhs+c]. Per column, the nonzeros
// accumulate in exactly the order value uses, so nrhs=1 reproduces the
// single-vector result bit for bit.
//
//spmv:hotpath
func (k *segKernel) valueBlock(t int, x, ext []float64, nrhs int, acc []float64) {
	acc = acc[:nrhs]
	for c := range acc {
		acc[c] = 0
	}
	for q := k.locPtr[t]; q < k.locPtr[t+1]; q++ {
		v := k.locVal[q]
		xs := x[k.locSrc[q]*nrhs:]
		for c := range acc {
			acc[c] += v * xs[c]
		}
	}
	for q := k.extPtr[t]; q < k.extPtr[t+1]; q++ {
		v := k.extVal[q]
		xs := ext[k.extSrc[q]*nrhs:]
		for c := range acc {
			acc[c] += v * xs[c]
		}
	}
}

// rowKernel couples a segKernel with its output indices (global y rows
// for compute kernels, dense slots for routed accumulators).
type rowKernel struct {
	rows []int
	segKernel
}

// addInto accumulates every slot's value into dst[rows[t]].
//
//spmv:hotpath
func (k *rowKernel) addInto(dst, x, ext []float64) {
	for t, row := range k.rows {
		dst[row] += k.value(t, x, ext)
	}
}

// fillInto overwrites dst[t] with slot t's value; dst must have
// len(k.rows) entries (a packet's yVal buffer).
//
//spmv:hotpath
func (k *rowKernel) fillInto(dst, x, ext []float64) {
	for t := range k.rows {
		dst[t] = k.value(t, x, ext)
	}
}

// addIntoBlock is the nrhs-wide addInto over column-blocked buffers: each
// slot's nrhs values accumulate in acc (scratch, len >= nrhs) and are then
// added to dst[rows[t]*nrhs : ...]. Going through acc keeps the per-column
// floating-point order identical to value(), not just close.
//
//spmv:hotpath
func (k *rowKernel) addIntoBlock(dst, x, ext []float64, nrhs int, acc []float64) {
	for t, row := range k.rows {
		k.valueBlock(t, x, ext, nrhs, acc)
		out := dst[row*nrhs : (row+1)*nrhs]
		for c := range out {
			out[c] += acc[c]
		}
	}
}

// fillIntoBlock is the nrhs-wide fillInto: slot t's nrhs values overwrite
// dst[t*nrhs : (t+1)*nrhs] (a block packet's yVal buffer).
//
//spmv:hotpath
func (k *rowKernel) fillIntoBlock(dst, x, ext []float64, nrhs int) {
	for t := range k.rows {
		k.valueBlock(t, x, ext, nrhs, dst[t*nrhs:(t+1)*nrhs])
	}
}

// compileRows groups build-time nonzeros by output row into a rowKernel
// with sorted distinct rows and separated local/external runs.
//
//spmv:deterministic
func compileRows(nzs []localNZ) rowKernel {
	var k rowKernel
	if len(nzs) == 0 {
		k.locPtr = []int{0}
		k.extPtr = []int{0}
		return k
	}
	rows := make([]int, 0, len(nzs))
	for _, nz := range nzs {
		rows = append(rows, nz.row)
	}
	rows = dedupSorted(rows)
	// rows is sorted and distinct, so slot lookup is a binary search —
	// measurably faster to build than the map[int]int this used (see
	// BenchmarkCompileRows) and allocation-free.
	slot := func(r int) int {
		t, _ := slices.BinarySearch(rows, r)
		return t
	}
	k.rows = rows
	k.locPtr = make([]int, len(rows)+1)
	k.extPtr = make([]int, len(rows)+1)
	for _, nz := range nzs {
		if nz.src >= 0 {
			k.locPtr[slot(nz.row)+1]++
		} else {
			k.extPtr[slot(nz.row)+1]++
		}
	}
	for t := 0; t < len(rows); t++ {
		k.locPtr[t+1] += k.locPtr[t]
		k.extPtr[t+1] += k.extPtr[t]
	}
	k.locSrc = make([]int, k.locPtr[len(rows)])
	k.locVal = make([]float64, k.locPtr[len(rows)])
	k.extSrc = make([]int, k.extPtr[len(rows)])
	k.extVal = make([]float64, k.extPtr[len(rows)])
	locPos := slices.Clone(k.locPtr[:len(rows)])
	extPos := slices.Clone(k.extPtr[:len(rows)])
	for _, nz := range nzs {
		t := slot(nz.row)
		if nz.src >= 0 {
			p := locPos[t]
			locPos[t]++
			k.locSrc[p] = nz.src
			k.locVal[p] = nz.val
		} else {
			p := extPos[t]
			extPos[t]++
			k.extSrc[p] = -(nz.src + 1)
			k.extVal[p] = nz.val
		}
	}
	return k
}

// valArena carves fixed float64 buffers for a proc's packet values out of
// one backing allocation. Sizing happens in a counting pass before any
// take.
type valArena struct{ buf []float64 }

func newValArena(n int) *valArena { return &valArena{buf: make([]float64, n)} }

func (a *valArena) take(n int) []float64 {
	s := a.buf[:n:n]
	a.buf = a.buf[n:]
	return s
}

// sendPlan is one precompiled outgoing packet: fixed destination and index
// arrays, value buffers refilled per call. The packet's yIdx aliases
// grp.rows. bufB is the packet's nrhs-wide twin, sized lazily by
// ensureBlock and sharing the same fixed index arrays — a multi-RHS
// multiply still emits exactly one packet per peer per phase.
type sendPlan struct {
	dest int
	xIdx []int
	grp  rowKernel
	buf  packet
	bufB packet
}

func newSendPlan(from, dest int, xIdx []int, grp rowKernel, arena *valArena) *sendPlan {
	sp := &sendPlan{dest: dest, xIdx: xIdx, grp: grp}
	sp.buf = packet{
		from: from,
		xIdx: xIdx,
		xVal: arena.take(len(xIdx)),
		yIdx: grp.rows,
		yVal: arena.take(len(grp.rows)),
	}
	return sp
}

// fill refreshes the packet's value arrays from the current x (and the
// proc's external buffer for two-phase fold groups) under the given
// kernel backend. Send groups never use the sorted layout — their slot
// order is the packet payload order the receivers were compiled against
// — so kid only selects between the scalar and relaxed loops here.
//
//spmv:hotpath
func (sp *sendPlan) fill(kid kernelID, x, ext []float64) {
	for t, j := range sp.xIdx {
		sp.buf.xVal[t] = x[j]
	}
	sp.grp.fillIntoK(kid, sp.buf.yVal, x, ext)
}

// ensureBlock (re)sizes the nrhs-wide packet buffers. Growth reallocates;
// shrinking re-slices the existing backing arrays, so alternating between
// a large and a small nrhs allocates only once.
func (sp *sendPlan) ensureBlock(nrhs int) {
	sp.bufB = packet{
		from: sp.buf.from,
		xIdx: sp.xIdx,
		xVal: growBlock(sp.bufB.xVal, len(sp.xIdx)*nrhs),
		yIdx: sp.grp.rows,
		yVal: growBlock(sp.bufB.yVal, len(sp.grp.rows)*nrhs),
	}
}

// fillBlock refreshes the nrhs-wide packet from column-blocked x/ext
// under the given kernel backend (see fill for the layout caveat).
//
//spmv:hotpath
func (sp *sendPlan) fillBlock(kid kernelID, x, ext []float64, nrhs int) {
	for t, j := range sp.xIdx {
		copy(sp.bufB.xVal[t*nrhs:(t+1)*nrhs], x[j*nrhs:(j+1)*nrhs])
	}
	sp.grp.fillIntoBlockK(kid, sp.bufB.yVal, x, ext, nrhs)
}

// growBlock returns s re-sliced to n entries, reallocating only when the
// existing capacity is insufficient.
func growBlock(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// recvPlan stashes one phase's incoming packets by sender ordinal so they
// are processed in ascending sender order regardless of arrival order.
type recvPlan struct {
	ord  map[int]int
	pend []packet
	seen []bool
}

func newRecvPlan(senders []int) recvPlan {
	r := recvPlan{
		ord:  make(map[int]int, len(senders)),
		pend: make([]packet, len(senders)),
		seen: make([]bool, len(senders)),
	}
	for t, s := range senders {
		r.ord[s] = t
	}
	return r
}

// gather receives until every expected sender has delivered one packet
// and returns them ordered by sender. Counting senders rather than raw
// packets matters under fault containment: a panicked worker floods a
// release packet into every inbox of both phases (fault.go), including
// inboxes whose gather does not expect that worker in that phase. If a
// raw count admitted such a packet, the barrier would complete early
// with a stale pend entry from the previous dispatch — aliasing a send
// buffer its owner is concurrently rewriting. Packets from unexpected
// or already-seen senders are therefore dropped; the 2K inbox capacity
// absorbs anything left unconsumed on a poisoned engine. The returned
// slice is reused across calls.
//
//spmv:hotpath
func (r *recvPlan) gather(ch <-chan packet) []packet {
	for n := 0; n < len(r.pend); {
		pk := <-ch
		t, ok := r.ord[pk.from]
		if !ok || r.seen[t] {
			continue
		}
		r.seen[t] = true
		r.pend[t] = pk
		n++
	}
	for t := range r.seen {
		r.seen[t] = false
	}
	return r.pend
}

// sortedKeys returns m's keys in ascending order — every send loop
// iterates destinations through this, which is what makes packet emission
// deterministic.
func sortedKeys[V any](m map[int]V) []int {
	return slices.Sorted(maps.Keys(m))
}

// workerPool is the persistent-worker barrier shared by Engine and
// RoutedEngine: K goroutines parked on per-worker start channels, a
// WaitGroup to collect them, and the per-call x/y (plus the block width
// for multi-RHS calls and the transpose direction) published through the
// pool. dispatch performs no heap allocations.
//
// A panic inside a worker is contained, not fatal: the worker records it,
// calls release(i) so its peers' gathers complete (see fault.go), and the
// dispatch returns a typed *EngineFaultError with the pool poisoned
// against further dispatches.
type workerPool struct {
	x, y      []float64
	nrhs      int  // 0 = single-vector call, >0 = column-blocked SpMM
	transpose bool // run the y ← Aᵀx plan instead of y ← Ax
	start     []chan struct{}
	done      sync.WaitGroup
	closeOnce sync.Once
	closed    atomic.Bool

	// hook wraps an injectable per-worker fault hook (see
	// WorkerFaultHooker); stored boxed because atomic.Value cannot hold a
	// bare nil.
	hook atomic.Value // of hookBox

	poisoned atomic.Bool
	faultMu  sync.Mutex
	faults   []WorkerPanic
}

type hookBox struct{ f func(worker int) }

func (p *workerPool) setHook(h func(worker int)) { p.hook.Store(hookBox{f: h}) }

// launch spawns n workers; each waits for a start signal, executes run
// with the published vectors (nrhs = 0 for Multiply, the block width for
// MultiplyBlock; transpose selects the Aᵀx plan), and reports done.
// release, when non-nil, is invoked after a contained worker panic to
// unblock the panicked worker's peers.
func (p *workerPool) launch(n int, run func(i int, x, y []float64, nrhs int, transpose bool), release func(i int)) {
	p.start = make([]chan struct{}, n)
	for i := 0; i < n; i++ {
		ch := make(chan struct{}, 1)
		p.start[i] = ch
		go func(i int, ch chan struct{}) {
			for range ch {
				p.runContained(i, run, release)
				p.done.Done()
			}
		}(i, ch)
	}
}

// runContained executes one worker turn with panic containment: a panic
// anywhere in the plan (or the injected fault hook) is recorded, the
// pool is poisoned, and the worker's peers are released so the dispatch
// barrier still closes. The worker goroutine itself survives, parked for
// Close.
func (p *workerPool) runContained(i int, run func(i int, x, y []float64, nrhs int, transpose bool), release func(i int)) {
	defer func() {
		if r := recover(); r != nil {
			p.recordFault(i, r)
			if release != nil {
				// release must not take the barrier down with a secondary
				// panic; the engine is already poisoned.
				defer func() { _ = recover() }()
				release(i)
			}
		}
	}()
	if hb, ok := p.hook.Load().(hookBox); ok && hb.f != nil {
		hb.f(i)
	}
	run(i, p.x, p.y, p.nrhs, p.transpose)
}

// recordFault notes a contained worker panic and poisons the pool before
// the dispatch barrier closes, so even a racing dispatcher observes it.
func (p *workerPool) recordFault(worker int, v any) {
	p.faultMu.Lock()
	p.faults = append(p.faults, WorkerPanic{Worker: worker, Value: fmt.Sprint(v)})
	p.faultMu.Unlock()
	p.poisoned.Store(true)
}

// faultErr materializes the poisoned state as a typed error; nil while
// healthy. The fast path is one atomic load.
func (p *workerPool) faultErr(op string) error {
	if !p.poisoned.Load() {
		return nil
	}
	p.faultMu.Lock()
	panics := append([]WorkerPanic(nil), p.faults...)
	p.faultMu.Unlock()
	return &EngineFaultError{Op: op, Panics: panics}
}

// opName names the dispatch variant for error messages.
func opName(nrhs int, transpose bool) string {
	switch {
	case transpose && nrhs > 0:
		return "MultiplyTransposeBlock"
	case transpose:
		return "MultiplyTranspose"
	case nrhs > 0:
		return "MultiplyBlock"
	default:
		return "Multiply"
	}
}

// dispatch zeroes y, publishes the vectors, releases every worker, and
// waits for all of them to finish.
func (p *workerPool) dispatch(x, y []float64) error {
	return p.dispatchOp(x, y, 0, false)
}

// dispatchBlock is dispatch with a published block width; nrhs = 0 runs
// the single-vector plan.
func (p *workerPool) dispatchBlock(x, y []float64, nrhs int) error {
	return p.dispatchOp(x, y, nrhs, false)
}

// dispatchOp is the general dispatch: block width plus direction. It
// returns *ClosedError after Close, and *EngineFaultError once a worker
// panic has poisoned the pool — before running anything, so a poisoned
// plan never executes over corrupted buffers.
func (p *workerPool) dispatchOp(x, y []float64, nrhs int, transpose bool) error {
	if p.closed.Load() {
		// A sharing layer (refcounted pools, pipelines) that races Multiply
		// against Close gets a typed error instead of the runtime's
		// "send on closed channel" panic.
		return &ClosedError{Op: opName(nrhs, transpose)}
	}
	if err := p.faultErr(opName(nrhs, transpose)); err != nil {
		return err
	}
	for i := range y {
		y[i] = 0
	}
	p.x, p.y, p.nrhs, p.transpose = x, y, nrhs, transpose
	p.done.Add(len(p.start))
	for _, ch := range p.start {
		ch <- struct{}{}
	}
	p.done.Wait()
	p.x, p.y = nil, nil
	return p.faultErr(opName(nrhs, transpose))
}

// close releases the parked workers permanently; dispatch must not be
// called afterwards. Closing twice is a no-op.
func (p *workerPool) close() {
	p.closeOnce.Do(func() {
		p.closed.Store(true)
		for _, ch := range p.start {
			close(ch)
		}
	})
}
