package spmv

// This file is the kernel backend layer: a small set of interchangeable
// compute implementations behind the four entry points every schedule's
// run body uses (addInto / fillInto and their nrhs-wide block twins).
// The compiled plan — packets, index arrays, receive order — is backend-
// independent; a backend only changes how a rowKernel's slots are walked:
//
//   - scalar:     the PR 6 loops, one variable-width run per slot. The
//                 reference backend; every other non-relaxed backend is
//                 bitwise identical to it.
//   - reg:        register-blocked SpMM loops for nrhs ∈ {2, 4, 8}
//                 (kernel_width.go): fixed-width accumulators live in
//                 registers and the per-column bounds checks of the
//                 generic `for c := range acc` loop disappear. Other
//                 widths fall back to the scalar loops.
//   - sorted:     the sorted-slot layout (SELL-C-σ spirit): the *own*
//                 compute kernels are recompiled with slots in descending
//                 nonzero-count order, so the power-law suite's heavy
//                 rows run first and the inner-loop trip counts decay
//                 monotonically. Only whole slots move — within-slot
//                 summation order is untouched — so results stay bitwise
//                 identical. Send-group kernels never reorder: packet
//                 payload order is part of the wire format the receive
//                 translations were compiled against.
//   - sortedreg:  sorted layout + register-blocked loops.
//   - relaxed:    multi-accumulator unrolled loops (kernel_width.go)
//                 that trade the contractual summation order for ILP.
//                 Results agree with scalar only to ulp-level tolerance,
//                 so this backend is never chosen by the autotuner unless
//                 explicitly admitted (TuneConfig.RelaxedFP) and is kept
//                 out of the bit-identical serve/coalescing paths.
//
// Selection is per width class (the nrhs buckets 1, 2, 4, 8, and 0 for
// every other width), held in a kernelSel and resolved once per dispatch
// — the per-slot inner loops pay no dynamic dispatch.

import (
	"fmt"
	"sort"
	"strings"
)

// kernelID names one kernel backend.
type kernelID uint8

const (
	kernScalar kernelID = iota
	kernReg
	kernSorted
	kernSortedReg
	kernRelaxed
	numKernels
)

var kernelNames = [numKernels]string{"scalar", "reg", "sorted", "sortedreg", "relaxed"}

func (k kernelID) String() string { return kernelNames[k] }

// sortedLayout reports whether the backend reads the sorted-slot own
// kernels instead of the row-ascending ones.
func (k kernelID) sortedLayout() bool { return k == kernSorted || k == kernSortedReg }

// regBlocked reports whether the backend uses the width-specialized
// block loops for nrhs ∈ {2, 4, 8}.
func (k kernelID) regBlocked() bool { return k == kernReg || k == kernSortedReg }

// kernelByName resolves a backend name ("scalar", "reg", "sorted",
// "sortedreg", "relaxed"), case-sensitively.
func kernelByName(name string) (kernelID, error) {
	for id, n := range kernelNames {
		if n == name {
			return kernelID(id), nil
		}
	}
	return 0, fmt.Errorf("spmv: unknown kernel %q (valid: %s)",
		name, strings.Join(KernelNames(), ", "))
}

// KernelNames lists the selectable kernel backends, scalar first. The
// order is also the autotuner's probe and tie-break order.
func KernelNames() []string {
	out := make([]string, numKernels)
	copy(out, kernelNames[:])
	return out
}

// Width classes: nrhs ∈ {1, 2, 4, 8} each form their own class, every
// other width shares class 0 ("generic"), which always runs the
// variable-width loops (its backend choice can still flip the layout).
const numClasses = 5

// classWidths maps a class index to the nrhs value identifying it
// publicly (0 = all other widths).
var classWidths = [numClasses]int{0, 1, 2, 4, 8}

func classOf(nrhs int) int {
	switch nrhs {
	case 1:
		return 1
	case 2:
		return 2
	case 4:
		return 3
	case 8:
		return 4
	}
	return 0
}

// kernelSel is the per-width-class backend selection; the zero value
// selects scalar everywhere, which is exactly the PR 6 behavior.
type kernelSel struct {
	byClass [numClasses]kernelID
}

func (s *kernelSel) forWidth(nrhs int) kernelID { return s.byClass[classOf(nrhs)] }

func (s *kernelSel) anySorted() bool {
	for _, kid := range s.byClass {
		if kid.sortedLayout() {
			return true
		}
	}
	return false
}

// kernelState is the kernel-selection state embedded in both engines:
// the per-class selection, the backend of the in-flight dispatch
// (written by the dispatcher before the workers start, so the channel
// send orders it before any worker read), flags for the lazily derived
// sorted own kernels, and the last Autotune report.
type kernelState struct {
	sel                kernelSel
	curKern            kernelID
	sortedFwd, sortedT bool
	tuned              *KernelReport
}

func (ks *kernelState) kstate() *kernelState { return ks }

// report returns the engine's current selection: the Autotune verdict
// when one ran, otherwise a synthetic all-default report.
func (ks *kernelState) report() KernelReport {
	if ks.tuned != nil {
		return ks.tuned.clone()
	}
	choices := make([]KernelChoice, numClasses)
	for c := range choices {
		choices[c] = KernelChoice{
			NRHS:   classWidths[c],
			Kernel: ks.sel.byClass[c].String(),
			Source: "default",
		}
	}
	return KernelReport{Choices: choices}
}

// ---- dispatch ----

// addIntoK is addInto under the given backend.
//
//spmv:hotpath
func (k *rowKernel) addIntoK(kid kernelID, dst, x, ext []float64) {
	if kid == kernRelaxed {
		k.addIntoRelaxed(dst, x, ext)
		return
	}
	k.addInto(dst, x, ext)
}

// fillIntoK is fillInto under the given backend.
//
//spmv:hotpath
func (k *rowKernel) fillIntoK(kid kernelID, dst, x, ext []float64) {
	if kid == kernRelaxed {
		k.fillIntoRelaxed(dst, x, ext)
		return
	}
	k.fillInto(dst, x, ext)
}

// addIntoBlockK is addIntoBlock under the given backend. Widths without
// a specialized loop use the generic path, which keeps them bitwise
// identical to scalar even under reg/relaxed selections.
//
//spmv:hotpath
func (k *rowKernel) addIntoBlockK(kid kernelID, dst, x, ext []float64, nrhs int, acc []float64) {
	switch {
	case kid.regBlocked():
		switch nrhs {
		case 2:
			k.addIntoBlock2(dst, x, ext)
			return
		case 4:
			k.addIntoBlock4(dst, x, ext)
			return
		case 8:
			k.addIntoBlock8(dst, x, ext)
			return
		}
	case kid == kernRelaxed:
		switch nrhs {
		case 1:
			// The nrhs=1 block layout is the single-vector layout, so the
			// relaxed single loop keeps MultiplyBlock(·, ·, 1) identical to
			// Multiply under this backend too.
			k.addIntoRelaxed(dst, x, ext)
			return
		case 4:
			k.addIntoBlock4R(dst, x, ext)
			return
		case 8:
			k.addIntoBlock8R(dst, x, ext)
			return
		}
	}
	k.addIntoBlock(dst, x, ext, nrhs, acc)
}

// fillIntoBlockK is fillIntoBlock under the given backend.
//
//spmv:hotpath
func (k *rowKernel) fillIntoBlockK(kid kernelID, dst, x, ext []float64, nrhs int) {
	switch {
	case kid.regBlocked():
		switch nrhs {
		case 2:
			k.fillIntoBlock2(dst, x, ext)
			return
		case 4:
			k.fillIntoBlock4(dst, x, ext)
			return
		case 8:
			k.fillIntoBlock8(dst, x, ext)
			return
		}
	case kid == kernRelaxed:
		switch nrhs {
		case 1:
			k.fillIntoRelaxed(dst, x, ext)
			return
		case 4:
			k.fillIntoBlock4R(dst, x, ext)
			return
		case 8:
			k.fillIntoBlock8R(dst, x, ext)
			return
		}
	}
	k.fillIntoBlock(dst, x, ext, nrhs)
}

// ---- sorted-slot layout ----

// sortedByWork recompiles k with its slots reordered by descending
// nonzero count (ties keep ascending-row order, so the layout is
// deterministic across rebuilt engines). Whole slots move — each slot's
// local and external runs are copied verbatim — so every output value
// is the bitwise-same sum as in the original layout; only the order in
// which distinct outputs are produced changes. Intended for the *own*
// compute kernels only: send-group kernels define packet payload order
// and must never reorder.
func sortedByWork(k *rowKernel) rowKernel {
	n := len(k.rows)
	perm := make([]int, n)
	for t := range perm {
		perm[t] = t
	}
	work := func(t int) int {
		return (k.locPtr[t+1] - k.locPtr[t]) + (k.extPtr[t+1] - k.extPtr[t])
	}
	// Stable sort on the identity permutation of row-ascending slots:
	// equal-work slots keep ascending rows.
	sort.SliceStable(perm, func(a, b int) bool { return work(perm[a]) > work(perm[b]) })

	var s rowKernel
	s.rows = make([]int, n)
	s.locPtr = make([]int, n+1)
	s.extPtr = make([]int, n+1)
	s.locSrc = make([]int, len(k.locSrc))
	s.locVal = make([]float64, len(k.locVal))
	s.extSrc = make([]int, len(k.extSrc))
	s.extVal = make([]float64, len(k.extVal))
	for t, p := range perm {
		s.rows[t] = k.rows[p]
		s.locPtr[t+1] = s.locPtr[t] + (k.locPtr[p+1] - k.locPtr[p])
		s.extPtr[t+1] = s.extPtr[t] + (k.extPtr[p+1] - k.extPtr[p])
		copy(s.locSrc[s.locPtr[t]:s.locPtr[t+1]], k.locSrc[k.locPtr[p]:k.locPtr[p+1]])
		copy(s.locVal[s.locPtr[t]:s.locPtr[t+1]], k.locVal[k.locPtr[p]:k.locPtr[p+1]])
		copy(s.extSrc[s.extPtr[t]:s.extPtr[t+1]], k.extSrc[k.extPtr[p]:k.extPtr[p+1]])
		copy(s.extVal[s.extPtr[t]:s.extPtr[t+1]], k.extVal[k.extPtr[p]:k.extPtr[p+1]])
	}
	return s
}

// ownOf picks the own-compute kernel variant the backend reads.
func ownOf(flat, sorted *rowKernel, kid kernelID) *rowKernel {
	if kid.sortedLayout() {
		return sorted
	}
	return flat
}

// installKernel installs kid for one width class and derives the sorted
// own kernels the first time a sorted-layout backend is selected. It
// must run with the workers parked (between dispatches), like every
// other plan mutation.
func (e *Engine) installKernel(class int, kid kernelID) {
	e.sel.byClass[class] = kid
	if kid.sortedLayout() {
		e.ensureSorted()
	}
}

// ensureSorted derives the sorted-slot variants of every own kernel
// that exists so far; the transpose variants derive when the transpose
// plan compiles (see ensureTranspose).
func (e *Engine) ensureSorted() {
	if !e.sortedFwd {
		for _, pr := range e.procs {
			pr.ownS = sortedByWork(&pr.own)
		}
		e.sortedFwd = true
	}
	if e.tready && !e.sortedT {
		for _, pr := range e.procs {
			pr.t.ownS = sortedByWork(&pr.t.own)
		}
		e.sortedT = true
	}
}

func (e *RoutedEngine) installKernel(class int, kid kernelID) {
	e.sel.byClass[class] = kid
	if kid.sortedLayout() {
		e.ensureSorted()
	}
}

func (e *RoutedEngine) ensureSorted() {
	if !e.sortedFwd {
		for _, pr := range e.rprocs {
			pr.ownS = sortedByWork(&pr.own)
		}
		e.sortedFwd = true
	}
	if e.tready && !e.sortedT {
		for _, pr := range e.rprocs {
			pr.t.ownS = sortedByWork(&pr.t.own)
		}
		e.sortedT = true
	}
}
