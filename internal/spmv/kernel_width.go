package spmv

// Width-specialized SpMM loops (the "reg" backend) and the opt-in
// relaxed-FP loops (the "relaxed" backend).
//
// The reg loops exist because the generic valueBlock keeps its nrhs
// accumulators in a scratch slice: every `acc[c] += v * xs[c]` pays a
// bounds check and a store the compiler cannot hoist, because acc's
// length is only known at run time. With the width fixed at compile
// time the accumulators become locals the compiler keeps in registers,
// and slicing xs to a constant length (`x[j*4 : j*4+4]`) eliminates the
// per-column checks. Per column the nonzeros still accumulate in
// exactly the scalar order — local run then external run, q ascending —
// so every reg result is bitwise identical to the generic path.
//
// The relaxed loops break that contract deliberately: the single-vector
// loop splits the dot product across four accumulators (q-unrolled) and
// the width-4/8 block loops across two accumulator sets, recombining at
// the end. That reassociation buys instruction-level parallelism but
// changes the rounding, so results only agree with scalar to ulp-level
// tolerance — which is why the backend is opt-in (TuneConfig.RelaxedFP)
// and excluded from the bit-identical serve paths by default.

// ---- reg: width 2 ----

func (k *rowKernel) addIntoBlock2(dst, x, ext []float64) {
	for t, row := range k.rows {
		var a0, a1 float64
		for q := k.locPtr[t]; q < k.locPtr[t+1]; q++ {
			v := k.locVal[q]
			xs := x[k.locSrc[q]*2 : k.locSrc[q]*2+2]
			a0 += v * xs[0]
			a1 += v * xs[1]
		}
		for q := k.extPtr[t]; q < k.extPtr[t+1]; q++ {
			v := k.extVal[q]
			xs := ext[k.extSrc[q]*2 : k.extSrc[q]*2+2]
			a0 += v * xs[0]
			a1 += v * xs[1]
		}
		out := dst[row*2 : row*2+2]
		out[0] += a0
		out[1] += a1
	}
}

func (k *rowKernel) fillIntoBlock2(dst, x, ext []float64) {
	for t := range k.rows {
		var a0, a1 float64
		for q := k.locPtr[t]; q < k.locPtr[t+1]; q++ {
			v := k.locVal[q]
			xs := x[k.locSrc[q]*2 : k.locSrc[q]*2+2]
			a0 += v * xs[0]
			a1 += v * xs[1]
		}
		for q := k.extPtr[t]; q < k.extPtr[t+1]; q++ {
			v := k.extVal[q]
			xs := ext[k.extSrc[q]*2 : k.extSrc[q]*2+2]
			a0 += v * xs[0]
			a1 += v * xs[1]
		}
		out := dst[t*2 : t*2+2]
		out[0] = a0
		out[1] = a1
	}
}

// ---- reg: width 4 ----

func (k *rowKernel) addIntoBlock4(dst, x, ext []float64) {
	for t, row := range k.rows {
		var a0, a1, a2, a3 float64
		for q := k.locPtr[t]; q < k.locPtr[t+1]; q++ {
			v := k.locVal[q]
			xs := x[k.locSrc[q]*4 : k.locSrc[q]*4+4]
			a0 += v * xs[0]
			a1 += v * xs[1]
			a2 += v * xs[2]
			a3 += v * xs[3]
		}
		for q := k.extPtr[t]; q < k.extPtr[t+1]; q++ {
			v := k.extVal[q]
			xs := ext[k.extSrc[q]*4 : k.extSrc[q]*4+4]
			a0 += v * xs[0]
			a1 += v * xs[1]
			a2 += v * xs[2]
			a3 += v * xs[3]
		}
		out := dst[row*4 : row*4+4]
		out[0] += a0
		out[1] += a1
		out[2] += a2
		out[3] += a3
	}
}

func (k *rowKernel) fillIntoBlock4(dst, x, ext []float64) {
	for t := range k.rows {
		var a0, a1, a2, a3 float64
		for q := k.locPtr[t]; q < k.locPtr[t+1]; q++ {
			v := k.locVal[q]
			xs := x[k.locSrc[q]*4 : k.locSrc[q]*4+4]
			a0 += v * xs[0]
			a1 += v * xs[1]
			a2 += v * xs[2]
			a3 += v * xs[3]
		}
		for q := k.extPtr[t]; q < k.extPtr[t+1]; q++ {
			v := k.extVal[q]
			xs := ext[k.extSrc[q]*4 : k.extSrc[q]*4+4]
			a0 += v * xs[0]
			a1 += v * xs[1]
			a2 += v * xs[2]
			a3 += v * xs[3]
		}
		out := dst[t*4 : t*4+4]
		out[0] = a0
		out[1] = a1
		out[2] = a2
		out[3] = a3
	}
}

// ---- reg: width 8 ----

func (k *rowKernel) addIntoBlock8(dst, x, ext []float64) {
	for t, row := range k.rows {
		var a0, a1, a2, a3, a4, a5, a6, a7 float64
		for q := k.locPtr[t]; q < k.locPtr[t+1]; q++ {
			v := k.locVal[q]
			xs := x[k.locSrc[q]*8 : k.locSrc[q]*8+8]
			a0 += v * xs[0]
			a1 += v * xs[1]
			a2 += v * xs[2]
			a3 += v * xs[3]
			a4 += v * xs[4]
			a5 += v * xs[5]
			a6 += v * xs[6]
			a7 += v * xs[7]
		}
		for q := k.extPtr[t]; q < k.extPtr[t+1]; q++ {
			v := k.extVal[q]
			xs := ext[k.extSrc[q]*8 : k.extSrc[q]*8+8]
			a0 += v * xs[0]
			a1 += v * xs[1]
			a2 += v * xs[2]
			a3 += v * xs[3]
			a4 += v * xs[4]
			a5 += v * xs[5]
			a6 += v * xs[6]
			a7 += v * xs[7]
		}
		out := dst[row*8 : row*8+8]
		out[0] += a0
		out[1] += a1
		out[2] += a2
		out[3] += a3
		out[4] += a4
		out[5] += a5
		out[6] += a6
		out[7] += a7
	}
}

func (k *rowKernel) fillIntoBlock8(dst, x, ext []float64) {
	for t := range k.rows {
		var a0, a1, a2, a3, a4, a5, a6, a7 float64
		for q := k.locPtr[t]; q < k.locPtr[t+1]; q++ {
			v := k.locVal[q]
			xs := x[k.locSrc[q]*8 : k.locSrc[q]*8+8]
			a0 += v * xs[0]
			a1 += v * xs[1]
			a2 += v * xs[2]
			a3 += v * xs[3]
			a4 += v * xs[4]
			a5 += v * xs[5]
			a6 += v * xs[6]
			a7 += v * xs[7]
		}
		for q := k.extPtr[t]; q < k.extPtr[t+1]; q++ {
			v := k.extVal[q]
			xs := ext[k.extSrc[q]*8 : k.extSrc[q]*8+8]
			a0 += v * xs[0]
			a1 += v * xs[1]
			a2 += v * xs[2]
			a3 += v * xs[3]
			a4 += v * xs[4]
			a5 += v * xs[5]
			a6 += v * xs[6]
			a7 += v * xs[7]
		}
		out := dst[t*8 : t*8+8]
		out[0] = a0
		out[1] = a1
		out[2] = a2
		out[3] = a3
		out[4] = a4
		out[5] = a5
		out[6] = a6
		out[7] = a7
	}
}

// ---- relaxed: single vector ----

// valueRelaxed is value with the dot product split across four
// accumulators (4-way q-unroll), recombined as (s0+s2)+(s1+s3). Not
// bitwise equal to value — ulp-level only.
func (k *segKernel) valueRelaxed(t int, x, ext []float64) float64 {
	var s0, s1, s2, s3 float64
	q, end := k.locPtr[t], k.locPtr[t+1]
	for ; q+4 <= end; q += 4 {
		s0 += k.locVal[q] * x[k.locSrc[q]]
		s1 += k.locVal[q+1] * x[k.locSrc[q+1]]
		s2 += k.locVal[q+2] * x[k.locSrc[q+2]]
		s3 += k.locVal[q+3] * x[k.locSrc[q+3]]
	}
	for ; q < end; q++ {
		s0 += k.locVal[q] * x[k.locSrc[q]]
	}
	q, end = k.extPtr[t], k.extPtr[t+1]
	for ; q+4 <= end; q += 4 {
		s0 += k.extVal[q] * ext[k.extSrc[q]]
		s1 += k.extVal[q+1] * ext[k.extSrc[q+1]]
		s2 += k.extVal[q+2] * ext[k.extSrc[q+2]]
		s3 += k.extVal[q+3] * ext[k.extSrc[q+3]]
	}
	for ; q < end; q++ {
		s0 += k.extVal[q] * ext[k.extSrc[q]]
	}
	return (s0 + s2) + (s1 + s3)
}

func (k *rowKernel) addIntoRelaxed(dst, x, ext []float64) {
	for t, row := range k.rows {
		dst[row] += k.valueRelaxed(t, x, ext)
	}
}

func (k *rowKernel) fillIntoRelaxed(dst, x, ext []float64) {
	for t := range k.rows {
		dst[t] = k.valueRelaxed(t, x, ext)
	}
}

// ---- relaxed: width 4 ----

// addIntoBlock4R is addIntoBlock4 with the nonzero run 2-way unrolled
// over two accumulator sets; ulp-level only.
func (k *rowKernel) addIntoBlock4R(dst, x, ext []float64) {
	for t, row := range k.rows {
		a0, a1, a2, a3, b0, b1, b2, b3 := k.valueBlock4R(t, x, ext)
		out := dst[row*4 : row*4+4]
		out[0] += a0 + b0
		out[1] += a1 + b1
		out[2] += a2 + b2
		out[3] += a3 + b3
	}
}

func (k *rowKernel) fillIntoBlock4R(dst, x, ext []float64) {
	for t := range k.rows {
		a0, a1, a2, a3, b0, b1, b2, b3 := k.valueBlock4R(t, x, ext)
		out := dst[t*4 : t*4+4]
		out[0] = a0 + b0
		out[1] = a1 + b1
		out[2] = a2 + b2
		out[3] = a3 + b3
	}
}

func (k *rowKernel) valueBlock4R(t int, x, ext []float64) (a0, a1, a2, a3, b0, b1, b2, b3 float64) {
	q, end := k.locPtr[t], k.locPtr[t+1]
	for ; q+2 <= end; q += 2 {
		v, w := k.locVal[q], k.locVal[q+1]
		xs := x[k.locSrc[q]*4 : k.locSrc[q]*4+4]
		ys := x[k.locSrc[q+1]*4 : k.locSrc[q+1]*4+4]
		a0 += v * xs[0]
		a1 += v * xs[1]
		a2 += v * xs[2]
		a3 += v * xs[3]
		b0 += w * ys[0]
		b1 += w * ys[1]
		b2 += w * ys[2]
		b3 += w * ys[3]
	}
	for ; q < end; q++ {
		v := k.locVal[q]
		xs := x[k.locSrc[q]*4 : k.locSrc[q]*4+4]
		a0 += v * xs[0]
		a1 += v * xs[1]
		a2 += v * xs[2]
		a3 += v * xs[3]
	}
	q, end = k.extPtr[t], k.extPtr[t+1]
	for ; q+2 <= end; q += 2 {
		v, w := k.extVal[q], k.extVal[q+1]
		xs := ext[k.extSrc[q]*4 : k.extSrc[q]*4+4]
		ys := ext[k.extSrc[q+1]*4 : k.extSrc[q+1]*4+4]
		a0 += v * xs[0]
		a1 += v * xs[1]
		a2 += v * xs[2]
		a3 += v * xs[3]
		b0 += w * ys[0]
		b1 += w * ys[1]
		b2 += w * ys[2]
		b3 += w * ys[3]
	}
	for ; q < end; q++ {
		v := k.extVal[q]
		xs := ext[k.extSrc[q]*4 : k.extSrc[q]*4+4]
		a0 += v * xs[0]
		a1 += v * xs[1]
		a2 += v * xs[2]
		a3 += v * xs[3]
	}
	return
}

// ---- relaxed: width 8 ----

// addIntoBlock8R is addIntoBlock8 with the nonzero run 2-way unrolled
// over two accumulator sets; ulp-level only.
func (k *rowKernel) addIntoBlock8R(dst, x, ext []float64) {
	var a, b [8]float64
	for t, row := range k.rows {
		k.valueBlock8R(t, x, ext, &a, &b)
		out := dst[row*8 : row*8+8]
		out[0] += a[0] + b[0]
		out[1] += a[1] + b[1]
		out[2] += a[2] + b[2]
		out[3] += a[3] + b[3]
		out[4] += a[4] + b[4]
		out[5] += a[5] + b[5]
		out[6] += a[6] + b[6]
		out[7] += a[7] + b[7]
	}
}

func (k *rowKernel) fillIntoBlock8R(dst, x, ext []float64) {
	var a, b [8]float64
	for t := range k.rows {
		k.valueBlock8R(t, x, ext, &a, &b)
		out := dst[t*8 : t*8+8]
		out[0] = a[0] + b[0]
		out[1] = a[1] + b[1]
		out[2] = a[2] + b[2]
		out[3] = a[3] + b[3]
		out[4] = a[4] + b[4]
		out[5] = a[5] + b[5]
		out[6] = a[6] + b[6]
		out[7] = a[7] + b[7]
	}
}

func (k *rowKernel) valueBlock8R(t int, x, ext []float64, a, b *[8]float64) {
	*a = [8]float64{}
	*b = [8]float64{}
	q, end := k.locPtr[t], k.locPtr[t+1]
	for ; q+2 <= end; q += 2 {
		v, w := k.locVal[q], k.locVal[q+1]
		xs := x[k.locSrc[q]*8 : k.locSrc[q]*8+8]
		ys := x[k.locSrc[q+1]*8 : k.locSrc[q+1]*8+8]
		for c := 0; c < 8; c++ {
			a[c] += v * xs[c]
			b[c] += w * ys[c]
		}
	}
	for ; q < end; q++ {
		v := k.locVal[q]
		xs := x[k.locSrc[q]*8 : k.locSrc[q]*8+8]
		for c := 0; c < 8; c++ {
			a[c] += v * xs[c]
		}
	}
	q, end = k.extPtr[t], k.extPtr[t+1]
	for ; q+2 <= end; q += 2 {
		v, w := k.extVal[q], k.extVal[q+1]
		xs := ext[k.extSrc[q]*8 : k.extSrc[q]*8+8]
		ys := ext[k.extSrc[q+1]*8 : k.extSrc[q+1]*8+8]
		for c := 0; c < 8; c++ {
			a[c] += v * xs[c]
			b[c] += w * ys[c]
		}
	}
	for ; q < end; q++ {
		v := k.extVal[q]
		xs := ext[k.extSrc[q]*8 : k.extSrc[q]*8+8]
		for c := 0; c < 8; c++ {
			a[c] += v * xs[c]
		}
	}
}
