package spmv

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/method"
	"repro/internal/sparse"
)

// blockMultiplier is the multi-RHS surface shared by Engine and
// RoutedEngine, used to run every SpMM test over all three schedules.
type blockMultiplier interface {
	Multiply(x, y []float64) error
	MultiplyBlock(X, Y []float64, nrhs int) error
	MultiplyMulti(X, Y [][]float64) error
}

// spmmFixtures returns the three schedules over one shared matrix.
func spmmFixtures(t *testing.T) (a *sparse.CSR, engines map[string]blockMultiplier) {
	t.Helper()
	fused, twoPhase, routed, _, _ := allocFixtures(t)
	return fused.d.A, map[string]blockMultiplier{
		"fused":    fused,
		"twophase": twoPhase,
		"routed":   routed,
	}
}

// blockOf packs nrhs deterministic pseudo-random vectors into the
// column-blocked layout.
func blockOf(r *rand.Rand, n, nrhs int) []float64 {
	b := make([]float64, n*nrhs)
	for i := range b {
		b[i] = r.Float64()*4 - 2
	}
	return b
}

// checkBlockAgainstSerial verifies every column of Y = AX against the
// serial reference.
func checkBlockAgainstSerial(t *testing.T, a *sparse.CSR, X, Y []float64, nrhs int) {
	t.Helper()
	x := make([]float64, a.Cols)
	want := make([]float64, a.Rows)
	for c := 0; c < nrhs; c++ {
		for i := range x {
			x[i] = X[i*nrhs+c]
		}
		a.MulVec(x, want)
		for i := range want {
			got := Y[i*nrhs+c]
			if math.Abs(want[i]-got) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("nrhs=%d col %d: y[%d] = %v, want %v", nrhs, c, i, got, want[i])
			}
		}
	}
}

// TestMultiplyBlockMatchesSerial runs every schedule at power-of-two and
// non-power-of-two widths against the serial reference.
func TestMultiplyBlockMatchesSerial(t *testing.T) {
	a, engines := spmmFixtures(t)
	r := rand.New(rand.NewSource(23))
	for name, eng := range engines {
		for _, nrhs := range []int{1, 2, 3, 5, 8} {
			X := blockOf(r, a.Cols, nrhs)
			Y := make([]float64, a.Rows*nrhs)
			eng.MultiplyBlock(X, Y, nrhs)
			t.Run(fmt.Sprintf("%s/nrhs=%d", name, nrhs), func(t *testing.T) {
				checkBlockAgainstSerial(t, a, X, Y, nrhs)
			})
		}
	}
}

// TestMultiplyBlockNRHS1BitIdentical pins the nrhs=1 contract: the block
// path must reproduce Multiply bit for bit, for all three schedules.
func TestMultiplyBlockNRHS1BitIdentical(t *testing.T) {
	a, engines := spmmFixtures(t)
	r := rand.New(rand.NewSource(31))
	x := randomVector(r, a.Cols)
	for name, eng := range engines {
		want := make([]float64, a.Rows)
		eng.Multiply(x, want)
		got := make([]float64, a.Rows)
		eng.MultiplyBlock(x, got, 1)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: MultiplyBlock(nrhs=1) y[%d] = %x, Multiply %x", name, i, got[i], want[i])
			}
		}
	}
}

// TestMultiplyMultiMatchesBlock pins the slice-of-vectors wrapper to the
// column-blocked path, including the pack/unpack round-trip.
func TestMultiplyMultiMatchesBlock(t *testing.T) {
	a, engines := spmmFixtures(t)
	r := rand.New(rand.NewSource(41))
	const nrhs = 5
	X := make([][]float64, nrhs)
	Y := make([][]float64, nrhs)
	for c := range X {
		X[c] = randomVector(r, a.Cols)
		Y[c] = make([]float64, a.Rows)
	}
	xb := make([]float64, a.Cols*nrhs)
	for c := range X {
		for i, v := range X[c] {
			xb[i*nrhs+c] = v
		}
	}
	yb := make([]float64, a.Rows*nrhs)
	for name, eng := range engines {
		eng.MultiplyBlock(xb, yb, nrhs)
		eng.MultiplyMulti(X, Y)
		for c := range Y {
			for i, v := range Y[c] {
				if v != yb[i*nrhs+c] {
					t.Fatalf("%s: MultiplyMulti col %d y[%d] = %x, MultiplyBlock %x",
						name, c, i, v, yb[i*nrhs+c])
				}
			}
		}
	}
}

// TestMultiplyBlockWidthChanges exercises growing and shrinking nrhs on
// one engine: 8 → 3 → 8 → 1, each verified against serial, then a plain
// Multiply to confirm the single-vector path is unaffected.
func TestMultiplyBlockWidthChanges(t *testing.T) {
	a, engines := spmmFixtures(t)
	r := rand.New(rand.NewSource(53))
	for name, eng := range engines {
		for _, nrhs := range []int{8, 3, 8, 1} {
			X := blockOf(r, a.Cols, nrhs)
			Y := make([]float64, a.Rows*nrhs)
			eng.MultiplyBlock(X, Y, nrhs)
			if t.Failed() {
				return
			}
			checkBlockAgainstSerial(t, a, X, Y, nrhs)
		}
		x := randomVector(r, a.Cols)
		y := make([]float64, a.Rows)
		eng.Multiply(x, y)
		want := make([]float64, a.Rows)
		a.MulVec(x, want)
		for i := range want {
			if math.Abs(want[i]-y[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("%s: Multiply after block calls y[%d] = %v, want %v", name, i, y[i], want[i])
			}
		}
	}
}

// TestMultiplyBlockEmptyRowsCols builds a matrix with entirely empty rows
// and columns and verifies the block path leaves empty outputs at zero
// and ignores the empty inputs, on both fused and two-phase schedules.
func TestMultiplyBlockEmptyRowsCols(t *testing.T) {
	// 10×10 with rows 3,7 and cols 2,8 completely empty.
	c := sparse.NewCOO(10, 10)
	for i := 0; i < 10; i++ {
		if i == 3 || i == 7 {
			continue
		}
		for _, j := range []int{(i + 1) % 10, (i + 5) % 10} {
			if j == 2 || j == 8 {
				j = (j + 1) % 10
			}
			c.Add(i, j, float64(i*10+j+1))
		}
	}
	a := c.ToCSR()
	r := rand.New(rand.NewSource(61))
	for _, nrhs := range []int{1, 3, 4} {
		X := blockOf(r, a.Cols, nrhs)
		for _, name := range []string{"1D", "2D"} {
			b, err := method.BuildByName(name, a, 2, method.Options{Seed: 7})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			eng, err := New(b)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			Y := make([]float64, a.Rows*nrhs)
			eng.MultiplyBlock(X, Y, nrhs)
			eng.Close()
			checkBlockAgainstSerial(t, a, X, Y, nrhs)
			for _, row := range []int{3, 7} {
				for cc := 0; cc < nrhs; cc++ {
					if Y[row*nrhs+cc] != 0 {
						t.Fatalf("%s nrhs=%d: empty row %d col %d = %v, want 0",
							name, nrhs, row, cc, Y[row*nrhs+cc])
					}
				}
			}
		}
	}
}

// TestMultiplyBlockDeterministic pins bitwise run-to-run reproducibility
// of the block path, like TestMultiplyDeterministic does for Multiply.
func TestMultiplyBlockDeterministic(t *testing.T) {
	a, engines := spmmFixtures(t)
	r := rand.New(rand.NewSource(71))
	const nrhs = 4
	X := blockOf(r, a.Cols, nrhs)
	for name, eng := range engines {
		Y := make([]float64, a.Rows*nrhs)
		eng.MultiplyBlock(X, Y, nrhs)
		want := append([]float64(nil), Y...)
		for rep := 0; rep < 5; rep++ {
			eng.MultiplyBlock(X, Y, nrhs)
			for i := range Y {
				if Y[i] != want[i] {
					t.Fatalf("%s rep %d: Y[%d] = %x, first run %x", name, rep, i, Y[i], want[i])
				}
			}
		}
	}
}

// TestMultiplyBlockZeroAllocAllMethods pins the steady-state 0-alloc
// contract of MultiplyBlock and MultiplyMulti for every method in the
// registry — the batched analogue of TestMultiplySteadyStateZeroAlloc,
// but covering all nine paper methods plus the extensions.
func TestMultiplyBlockZeroAllocAllMethods(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	a := randomMatrix(r, 300, 300, 3000)
	const k, nrhs = 8, 8
	opt := method.Options{Seed: 11, Pipeline: method.NewPipeline()}
	X := blockOf(r, a.Cols, nrhs)
	Y := make([]float64, a.Rows*nrhs)
	XM := make([][]float64, nrhs)
	YM := make([][]float64, nrhs)
	for c := range XM {
		XM[c] = randomVector(r, a.Cols)
		YM[c] = make([]float64, a.Rows)
	}
	for _, name := range method.Names() {
		t.Run(name, func(t *testing.T) {
			b, err := method.BuildByName(name, a, k, opt)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			eng, err := New(b)
			if err != nil {
				t.Fatalf("engine: %v", err)
			}
			t.Cleanup(eng.Close)
			eng.MultiplyBlock(X, Y, nrhs) // size the block buffers
			if n := testing.AllocsPerRun(50, func() { eng.MultiplyBlock(X, Y, nrhs) }); n != 0 {
				t.Errorf("MultiplyBlock allocates %v times per call, want 0", n)
			}
			eng.MultiplyMulti(XM, YM) // size the pack/unpack scratch
			if n := testing.AllocsPerRun(50, func() { eng.MultiplyMulti(XM, YM) }); n != 0 {
				t.Errorf("MultiplyMulti allocates %v times per call, want 0", n)
			}
			checkBlockAgainstSerial(t, a, X, Y, nrhs)
		})
	}
}
