package spmv

import (
	"math/rand"
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/gen"
)

func benchSetup(b *testing.B, k int) (eng *Engine, routed *RoutedEngine, x, y []float64) {
	b.Helper()
	a := gen.PowerLaw(gen.PowerLawConfig{
		Rows: 20000, Cols: 20000, NNZ: 200000, Beta: 0.5,
		DenseRows: 2, DenseMax: 1500, Symmetric: true, Locality: 0.9,
	}, 1)
	opt := baselines.Options{Seed: 1}
	rows := baselines.RowwiseParts(a, k, opt)
	oneD := baselines.Rowwise1DFromParts(a, rows, k)
	d := core.Balanced(a, oneD.XPart, oneD.YPart, k, core.BalanceConfig{})
	var err error
	eng, err = NewEngine(d)
	if err != nil {
		b.Fatal(err)
	}
	routed, err = NewRoutedEngine(d, core.NewMesh(k))
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	x = make([]float64, a.Cols)
	for i := range x {
		x[i] = r.Float64()
	}
	y = make([]float64, a.Rows)
	return eng, routed, x, y
}

func BenchmarkEngineFusedK16(b *testing.B) {
	eng, _, x, y := benchSetup(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Multiply(x, y)
	}
}

func BenchmarkEngineFusedK64(b *testing.B) {
	eng, _, x, y := benchSetup(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Multiply(x, y)
	}
}

func BenchmarkEngineRoutedK64(b *testing.B) {
	_, routed, x, y := benchSetup(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		routed.Multiply(x, y)
	}
}

func BenchmarkEngineTwoPhaseK64(b *testing.B) {
	a := gen.PowerLaw(gen.PowerLawConfig{
		Rows: 20000, Cols: 20000, NNZ: 200000, Beta: 0.5,
		DenseRows: 2, DenseMax: 1500, Symmetric: true, Locality: 0.9,
	}, 1)
	d := baselines.FineGrain2D(a, 64, baselines.Options{Seed: 1})
	eng, err := NewEngine(d)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, a.Cols)
	y := make([]float64, a.Rows)
	for i := range x {
		x[i] = float64(i % 7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Multiply(x, y)
	}
}
