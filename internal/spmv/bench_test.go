package spmv

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/sparse"
)

func benchMatrix() *sparse.CSR {
	return gen.PowerLaw(gen.PowerLawConfig{
		Rows: 20000, Cols: 20000, NNZ: 200000, Beta: 0.5,
		DenseRows: 2, DenseMax: 1500, Symmetric: true, Locality: 0.9,
	}, 1)
}

func benchSetup(b *testing.B, k int) (eng *Engine, routed *RoutedEngine, x, y []float64) {
	b.Helper()
	a := benchMatrix()
	opt := baselines.Options{Seed: 1}
	rows := baselines.RowwiseParts(a, k, opt)
	oneD := baselines.Rowwise1DFromParts(a, rows, k)
	d := core.Balanced(a, oneD.XPart, oneD.YPart, k, core.BalanceConfig{})
	var err error
	eng, err = NewEngine(d)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(eng.Close)
	routed, err = NewRoutedEngine(d, core.NewMesh(k))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(routed.Close)
	r := rand.New(rand.NewSource(2))
	x = make([]float64, a.Cols)
	for i := range x {
		x[i] = r.Float64()
	}
	y = make([]float64, a.Rows)
	return eng, routed, x, y
}

func benchTwoPhaseSetup(b *testing.B, k int) (eng *Engine, x, y []float64) {
	b.Helper()
	a := benchMatrix()
	d := baselines.FineGrain2D(a, k, baselines.Options{Seed: 1})
	eng, err := NewEngine(d)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(eng.Close)
	x = make([]float64, a.Cols)
	y = make([]float64, a.Rows)
	for i := range x {
		x[i] = float64(i % 7)
	}
	return eng, x, y
}

func BenchmarkEngineFusedK16(b *testing.B) {
	eng, _, x, y := benchSetup(b, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Multiply(x, y)
	}
}

func BenchmarkEngineFusedK64(b *testing.B) {
	eng, _, x, y := benchSetup(b, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Multiply(x, y)
	}
}

func BenchmarkEngineRoutedK64(b *testing.B) {
	_, routed, x, y := benchSetup(b, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		routed.Multiply(x, y)
	}
}

func BenchmarkEngineTwoPhaseK64(b *testing.B) {
	eng, x, y := benchTwoPhaseSetup(b, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Multiply(x, y)
	}
}

// BenchmarkMultiplyBlock compares one nrhs-wide block multiply against
// nrhs sequential single multiplies for every schedule: the block path
// sends one packet per peer per phase regardless of nrhs and streams each
// matrix value once per nrhs columns, so per-column cost should drop well
// below the sequential baseline (the PR acceptance bar is ≥2× at nrhs=8).
func BenchmarkMultiplyBlock(b *testing.B) {
	const k = 16
	for _, nrhs := range []int{1, 4, 8, 16} {
		fused, routed, x, _ := benchSetup(b, k)
		twoPhase, _, _ := benchTwoPhaseSetup(b, k)
		a := fused.d.A
		X := make([]float64, a.Cols*nrhs)
		Y := make([]float64, a.Rows*nrhs)
		for i := range X {
			X[i] = x[i/nrhs]
		}
		for name, eng := range map[string]interface {
			Multiply(x, y []float64) error
			MultiplyBlock(X, Y []float64, nrhs int) error
		}{"fused": fused, "twophase": twoPhase, "routed": routed} {
			b.Run(fmt.Sprintf("%s/block/nrhs=%d", name, nrhs), func(b *testing.B) {
				eng.MultiplyBlock(X, Y, nrhs)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					eng.MultiplyBlock(X, Y, nrhs)
				}
			})
			b.Run(fmt.Sprintf("%s/seq/nrhs=%d", name, nrhs), func(b *testing.B) {
				y := Y[:a.Rows]
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for c := 0; c < nrhs; c++ {
						eng.Multiply(x, y)
					}
				}
			})
		}
	}
}

// BenchmarkCompileRows times plan compilation's slot lookup. The
// row→slot resolution used to go through a map[int]int built per group;
// the binary search over the sorted, deduplicated row list replaced it
// (see compileRows), cutting build time and the transient allocation.
func BenchmarkCompileRows(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	// Power-law-ish row popularity: many nonzeros concentrated on few
	// rows, the regime the suite's matrices put compileRows in.
	const nnz = 100000
	nzs := make([]localNZ, nnz)
	for i := range nzs {
		row := int(20000 * r.Float64() * r.Float64())
		src := r.Intn(20000)
		if r.Intn(4) == 0 {
			src = -1 - r.Intn(5000)
		}
		nzs[i] = localNZ{row: row, src: src, val: r.NormFloat64()}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compileRows(nzs)
	}
}

// BenchmarkMultiplySteadyState is the perf-trajectory benchmark tracked
// across PRs: every schedule at K ∈ {4,16,64}, steady-state (engines built
// outside the timed loop). All variants must report 0 allocs/op.
func BenchmarkMultiplySteadyState(b *testing.B) {
	for _, k := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("fused/K=%d", k), func(b *testing.B) {
			eng, _, x, y := benchSetup(b, k)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Multiply(x, y)
			}
		})
		b.Run(fmt.Sprintf("twophase/K=%d", k), func(b *testing.B) {
			eng, x, y := benchTwoPhaseSetup(b, k)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Multiply(x, y)
			}
		})
		b.Run(fmt.Sprintf("routed/K=%d", k), func(b *testing.B) {
			_, routed, x, y := benchSetup(b, k)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				routed.Multiply(x, y)
			}
		})
	}
}

// BenchmarkMultiplyTransposeSteadyState tracks the transpose kernels
// across PRs next to BenchmarkMultiplySteadyState: same schedules, same
// matrix, y ← Aᵀx via the reversed plan. All variants must report
// 0 allocs/op (the transpose plan compiles outside the timed loop).
func BenchmarkMultiplyTransposeSteadyState(b *testing.B) {
	for _, k := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("fused/K=%d", k), func(b *testing.B) {
			eng, _, x, y := benchSetup(b, k)
			eng.MultiplyTranspose(x, y) // square matrix: buffers serve both
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.MultiplyTranspose(x, y)
			}
		})
		b.Run(fmt.Sprintf("twophase/K=%d", k), func(b *testing.B) {
			eng, x, y := benchTwoPhaseSetup(b, k)
			eng.MultiplyTranspose(x, y)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.MultiplyTranspose(x, y)
			}
		})
		b.Run(fmt.Sprintf("routed/K=%d", k), func(b *testing.B) {
			_, routed, x, y := benchSetup(b, k)
			routed.MultiplyTranspose(x, y)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				routed.MultiplyTranspose(x, y)
			}
		})
	}
}
