package spmv

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/distrib"
)

// TestPhaseSampler checks arming, the sample lifecycle, and that phase
// durations look like a breakdown of a real multiply on both schedule
// families.
func TestPhaseSampler(t *testing.T) {
	for _, fused := range []bool{true, false} {
		name := "twophase"
		if fused {
			name = "fused"
		}
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(7))
			a := randomMatrix(r, 64, 64, 400)
			const k = 4
			xp := make([]int, a.Cols)
			yp := make([]int, a.Rows)
			for j := range xp {
				xp[j] = r.Intn(k)
			}
			for i := range yp {
				yp[i] = r.Intn(k)
			}
			var d *distrib.Distribution
			if fused {
				d = core.Balanced(a, xp, yp, k, core.BalanceConfig{})
			} else {
				d = &distrib.Distribution{A: a, K: k, Owner: make([]int, a.NNZ()), XPart: xp, YPart: yp}
				for p := range d.Owner {
					d.Owner[p] = r.Intn(k)
				}
			}
			eng, err := NewEngine(d)
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()

			x := make([]float64, 64)
			y := make([]float64, 64)
			for i := range x {
				x[i] = float64(i%7) - 3
			}

			// Disarmed: no sample even after a multiply.
			if err := eng.Multiply(x, y); err != nil {
				t.Fatal(err)
			}
			if _, ok := eng.LastPhases(); ok {
				t.Fatal("disarmed engine must not report phases")
			}

			var ps PhaseSampler = eng // Engine satisfies the optional interface
			ps.SamplePhases(true)
			if _, ok := ps.LastPhases(); ok {
				t.Fatal("armed but unsampled engine must not report phases")
			}
			if err := eng.Multiply(x, y); err != nil {
				t.Fatal(err)
			}
			ph, ok := ps.LastPhases()
			if !ok {
				t.Fatal("armed engine must report phases after a multiply")
			}
			for _, d := range []time.Duration{ph.Expand, ph.Compute, ph.Fold} {
				if d < 0 || d > time.Minute {
					t.Fatalf("implausible phase duration: %+v", ph)
				}
			}
			if ph.Expand+ph.Compute+ph.Fold <= 0 {
				t.Fatalf("phase sum must be positive: %+v", ph)
			}

			// Transpose and block paths sample too.
			yt := make([]float64, 64)
			if err := eng.MultiplyTranspose(x, yt); err != nil {
				t.Fatal(err)
			}
			if _, ok := ps.LastPhases(); !ok {
				t.Fatal("transpose multiply must refresh the sample")
			}
			X := [][]float64{x, x}
			Y := [][]float64{make([]float64, 64), make([]float64, 64)}
			if err := eng.MultiplyMulti(X, Y); err != nil {
				t.Fatal(err)
			}
			if _, ok := ps.LastPhases(); !ok {
				t.Fatal("block multiply must refresh the sample")
			}

			ps.SamplePhases(false)
			if _, ok := ps.LastPhases(); ok {
				t.Fatal("disarming must clear the sample")
			}
		})
	}
}
