package spmv

import (
	"math/rand"
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/vecpart"
)

// allocFixtures builds one engine per schedule on a small shared matrix.
func allocFixtures(t *testing.T) (fused, twoPhase *Engine, routed *RoutedEngine, x, y []float64) {
	t.Helper()
	r := rand.New(rand.NewSource(17))
	a := randomMatrix(r, 400, 400, 4000)
	const k = 8
	yp := make([]int, a.Rows)
	for i := range yp {
		yp[i] = r.Intn(k)
	}
	xp := vecpart.ColMajority(a, yp, k)
	d := core.Balanced(a, xp, yp, k, core.BalanceConfig{})
	var err error
	fused, err = NewEngine(d)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fused.Close)
	routed, err = NewRoutedEngine(d, core.NewMesh(k))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(routed.Close)
	d2 := baselines.FineGrain2D(a, k, baselines.Options{Seed: 5})
	twoPhase, err = NewEngine(d2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(twoPhase.Close)
	x = randomVector(r, a.Cols)
	y = make([]float64, a.Rows)
	return fused, twoPhase, routed, x, y
}

// TestMultiplySteadyStateZeroAlloc pins the 0-alloc contract: once built,
// an engine's Multiply must not touch the heap, for all three schedules.
func TestMultiplySteadyStateZeroAlloc(t *testing.T) {
	fused, twoPhase, routed, x, y := allocFixtures(t)
	cases := []struct {
		name string
		mul  func(x, y []float64) error
	}{
		{"fused", fused.Multiply},
		{"twophase", twoPhase.Multiply},
		{"routed", routed.Multiply},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.mul(x, y) // warm up worker/channel pools
			if n := testing.AllocsPerRun(100, func() { tc.mul(x, y) }); n != 0 {
				t.Errorf("%s Multiply allocates %v times per call, want 0", tc.name, n)
			}
		})
	}
}

// TestMultiplyTransposeSteadyStateZeroAlloc pins the 0-alloc contract
// for the transpose path: once the lazily-compiled transpose plan
// exists, MultiplyTranspose must not touch the heap, for all three
// schedules — and the forward path must stay at 0 allocs afterwards.
func TestMultiplyTransposeSteadyStateZeroAlloc(t *testing.T) {
	fused, twoPhase, routed, x, y := allocFixtures(t)
	xt := make([]float64, len(y)) // row-space input
	copy(xt, y)
	for i := range xt {
		xt[i] = float64(i%7) - 3
	}
	yt := make([]float64, len(x)) // column-space output
	cases := []struct {
		name string
		mul  func(x, y []float64) error
		mulT func(x, y []float64) error
	}{
		{"fused", fused.Multiply, fused.MultiplyTranspose},
		{"twophase", twoPhase.Multiply, twoPhase.MultiplyTranspose},
		{"routed", routed.Multiply, routed.MultiplyTranspose},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.mulT(xt, yt) // compile the transpose plan, warm buffers
			if n := testing.AllocsPerRun(100, func() { tc.mulT(xt, yt) }); n != 0 {
				t.Errorf("%s MultiplyTranspose allocates %v times per call, want 0", tc.name, n)
			}
			tc.mul(x, y)
			if n := testing.AllocsPerRun(100, func() { tc.mul(x, y) }); n != 0 {
				t.Errorf("%s Multiply after transpose allocates %v times per call, want 0", tc.name, n)
			}
		})
	}
}

// TestMultiplyDeterministic pins bitwise reproducibility: packet emission
// is sorted by destination and folds run in sender order, so repeated
// multiplies — and rebuilt engines — produce identical bits despite
// nondeterministic channel arrival order.
func TestMultiplyDeterministic(t *testing.T) {
	fused, twoPhase, routed, x, y := allocFixtures(t)
	for _, tc := range []struct {
		name string
		mul  func(x, y []float64) error
	}{
		{"fused", fused.Multiply},
		{"twophase", twoPhase.Multiply},
		{"routed", routed.Multiply},
	} {
		tc.mul(x, y)
		want := append([]float64(nil), y...)
		for rep := 0; rep < 5; rep++ {
			tc.mul(x, y)
			for i := range y {
				if y[i] != want[i] {
					t.Fatalf("%s rep %d: y[%d] = %x, first run %x", tc.name, rep, i, y[i], want[i])
				}
			}
		}
	}
	// A rebuilt engine over the same distribution must agree bitwise too.
	fused2, _, _, _, _ := allocFixtures(t)
	fused.Multiply(x, y)
	want := append([]float64(nil), y...)
	fused2.Multiply(x, y)
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("rebuilt engine diverges at y[%d]: %x vs %x", i, y[i], want[i])
		}
	}
}
