// Package cliutil holds the small flag-parsing helpers the commands
// share, so "-k 4,16" and "-conc 1,8,32" parse identically everywhere
// instead of each main.go growing a divergent copy.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"
)

// SplitList splits a comma-separated flag value, trimming whitespace
// and dropping empty elements. An empty input returns nil.
func SplitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// ParseIntList parses a comma-separated list of positive integers
// ("4,16,64"). An empty input returns nil; any malformed or
// non-positive element is an error naming the element.
func ParseIntList(s string) ([]int, error) {
	var out []int
	for _, p := range SplitList(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad element %q: want a positive integer", p)
		}
		if v < 1 {
			return nil, fmt.Errorf("bad element %d: want >= 1", v)
		}
		out = append(out, v)
	}
	return out, nil
}
