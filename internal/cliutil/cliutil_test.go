package cliutil

import (
	"reflect"
	"testing"
)

func TestSplitList(t *testing.T) {
	if got := SplitList(""); got != nil {
		t.Fatalf("empty input = %v, want nil", got)
	}
	got := SplitList(" a, b ,,c ")
	if !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("got %v", got)
	}
}

func TestParseIntList(t *testing.T) {
	got, err := ParseIntList("4, 16,64")
	if err != nil || !reflect.DeepEqual(got, []int{4, 16, 64}) {
		t.Fatalf("got %v, %v", got, err)
	}
	if got, err := ParseIntList(""); err != nil || got != nil {
		t.Fatalf("empty = %v, %v", got, err)
	}
	for _, bad := range []string{"3x", "0", "-1", "x"} {
		if _, err := ParseIntList(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}
