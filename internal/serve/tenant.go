package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync/atomic"
)

// Encodings a tenant's bytes are accounted under.
const (
	EncodingJSON   = "json"
	EncodingBinary = "binary"
)

// encIndex maps an encoding name onto the tenant counters' array index.
func encIndex(encoding string) int {
	if encoding == EncodingBinary {
		return 1
	}
	return 0
}

// TenantSpec is the configuration for one tenant, as loaded from the
// keyfile (`spmvserve -tenants`).
type TenantSpec struct {
	// Name identifies the tenant in metrics and error messages.
	Name string `json:"name"`
	// Key is the bearer token presented in the Authorization header.
	Key string `json:"key"`
	// Weight sets the tenant's share of each engine's flush bandwidth
	// under contention; the fair scheduler serves tenants proportionally
	// to weight. Zero or negative defaults to 1.
	Weight float64 `json:"weight"`
	// MaxQueue is the tenant's per-engine queue quota; submissions past
	// it shed with a per-tenant 429. Zero defaults to Options.MaxQueue.
	MaxQueue int `json:"max_queue"`
}

// Tenant is one admitted principal's runtime state: its configured
// weight and quota plus the serving counters the /metrics endpoint
// reports. Tenants are created once by the registry and shared by every
// scheduler, so the counters aggregate across engines.
type Tenant struct {
	Name     string
	Weight   float64 // normalized: always > 0
	MaxQueue int     // 0 means "use Options.MaxQueue"
	key      string

	requests   atomic.Uint64 // multiplies completed successfully
	rejections atomic.Uint64 // submissions shed by the tenant quota
	bytesIn    [2]atomic.Uint64
	bytesOut   [2]atomic.Uint64
}

// stride is the tenant's virtual-time increment per served request —
// the inverse weight, so heavier tenants accumulate pass more slowly
// and are picked more often.
func (t *Tenant) stride() float64 { return 1 / t.Weight }

// CountBytes accrues wire traffic for the tenant under the given
// encoding ("json" or "binary").
func (t *Tenant) CountBytes(encoding string, in, out int) {
	i := encIndex(encoding)
	if in > 0 {
		t.bytesIn[i].Add(uint64(in))
	}
	if out > 0 {
		t.bytesOut[i].Add(uint64(out))
	}
}

// TenantMetrics is one tenant's /metrics row.
type TenantMetrics struct {
	Name       string  `json:"name"`
	Weight     float64 `json:"weight"`
	Requests   uint64  `json:"requests"`
	Rejections uint64  `json:"rejections"`
	// QueueDepth sums the tenant's live queue occupancy across engines.
	QueueDepth     int    `json:"queue_depth"`
	BytesInJSON    uint64 `json:"bytes_in_json"`
	BytesOutJSON   uint64 `json:"bytes_out_json"`
	BytesInBinary  uint64 `json:"bytes_in_binary"`
	BytesOutBinary uint64 `json:"bytes_out_binary"`
}

func (t *Tenant) metrics(depth int) TenantMetrics {
	return TenantMetrics{
		Name:           t.Name,
		Weight:         t.Weight,
		Requests:       t.requests.Load(),
		Rejections:     t.rejections.Load(),
		QueueDepth:     depth,
		BytesInJSON:    t.bytesIn[0].Load(),
		BytesOutJSON:   t.bytesOut[0].Load(),
		BytesInBinary:  t.bytesIn[1].Load(),
		BytesOutBinary: t.bytesOut[1].Load(),
	}
}

// DefaultTenantName is the anonymous tenant every request maps to when
// no keyfile is configured.
const DefaultTenantName = "default"

// TenantRegistry resolves bearer keys to tenants. A registry without
// keys (the zero configuration) admits everyone as the default tenant;
// once any keyed tenant is registered, multiply/solve requests must
// authenticate and unknown keys are rejected.
//
// The tenant set is fixed at construction — per-request resolution is
// lock-free map reads.
type TenantRegistry struct {
	byKey  map[string]*Tenant
	byName map[string]*Tenant
	list   []*Tenant // registration order
	def    *Tenant
}

// NewTenantRegistry builds a registry from specs. An empty call yields
// the open registry (default tenant only, no authentication).
func NewTenantRegistry(specs ...TenantSpec) (*TenantRegistry, error) {
	r := &TenantRegistry{
		byKey:  make(map[string]*Tenant),
		byName: make(map[string]*Tenant),
	}
	r.def = &Tenant{Name: DefaultTenantName, Weight: 1}
	for _, sp := range specs {
		name := strings.TrimSpace(sp.Name)
		if name == "" {
			return nil, fmt.Errorf("serve: tenant with empty name")
		}
		if sp.Key == "" {
			return nil, fmt.Errorf("serve: tenant %q has no key", name)
		}
		if _, dup := r.byName[name]; dup || name == DefaultTenantName {
			return nil, fmt.Errorf("serve: duplicate tenant name %q", name)
		}
		if _, dup := r.byKey[sp.Key]; dup {
			return nil, fmt.Errorf("serve: tenants share one key (second: %q)", name)
		}
		t := &Tenant{Name: name, Weight: sp.Weight, MaxQueue: sp.MaxQueue, key: sp.Key}
		if t.Weight <= 0 {
			t.Weight = 1
		}
		r.byKey[sp.Key] = t
		r.byName[name] = t
		r.list = append(r.list, t)
	}
	return r, nil
}

// LoadTenants reads a keyfile: JSON {"tenants":[{name,key,weight,max_queue},...]}.
func LoadTenants(path string) (*TenantRegistry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var file struct {
		Tenants []TenantSpec `json:"tenants"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		return nil, fmt.Errorf("serve: tenants file %s: %w", path, err)
	}
	if len(file.Tenants) == 0 {
		return nil, fmt.Errorf("serve: tenants file %s lists no tenants", path)
	}
	r, err := NewTenantRegistry(file.Tenants...)
	if err != nil {
		return nil, fmt.Errorf("serve: tenants file %s: %w", path, err)
	}
	return r, nil
}

// Keyed reports whether authentication is required: any tenant with a
// key makes the registry closed.
func (r *TenantRegistry) Keyed() bool { return len(r.byKey) > 0 }

// Default is the anonymous tenant (used when the registry is open, and
// by internal callers like solvers re-submitting on a caller's behalf).
func (r *TenantRegistry) Default() *Tenant { return r.def }

// Lookup finds a tenant by name; the default tenant resolves too.
func (r *TenantRegistry) Lookup(name string) (*Tenant, bool) {
	if name == DefaultTenantName {
		return r.def, true
	}
	t, ok := r.byName[name]
	return t, ok
}

// Authenticate resolves an Authorization header value to a tenant. With
// an open registry every request (header or not) is the default tenant.
// With a keyed registry the header must be `Bearer <key>` for a known
// key; anything else is an *UnauthorizedError (HTTP 401).
func (r *TenantRegistry) Authenticate(authorization string) (*Tenant, error) {
	if !r.Keyed() {
		return r.def, nil
	}
	const prefix = "Bearer "
	if authorization == "" {
		return nil, &UnauthorizedError{Reason: "missing Authorization header"}
	}
	if !strings.HasPrefix(authorization, prefix) {
		return nil, &UnauthorizedError{Reason: "Authorization is not a Bearer token"}
	}
	t, ok := r.byKey[strings.TrimSpace(authorization[len(prefix):])]
	if !ok {
		return nil, &UnauthorizedError{Reason: "unknown API key"}
	}
	return t, nil
}

// Metrics snapshots every tenant (default included when it has seen
// traffic or the registry is open), with per-tenant queue depths summed
// across engines supplied by the pool.
func (r *TenantRegistry) Metrics(depths map[*Tenant]int) []TenantMetrics {
	out := make([]TenantMetrics, 0, len(r.list)+1)
	if !r.Keyed() || r.def.requests.Load() > 0 || r.def.rejections.Load() > 0 {
		out = append(out, r.def.metrics(depths[r.def]))
	}
	for _, t := range r.list {
		out = append(out, t.metrics(depths[t]))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
