package serve

import (
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/serve/faultinject"
)

// getWith performs a GET with extra headers.
func getWith(t *testing.T, url string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp, []byte(sb.String())
}

// TestTraceIDOnEveryResponse: multiply and solve responses — successes,
// handler rejections, and auth failures alike — carry X-Trace-Id;
// inbound correlation headers win over generated IDs.
func TestTraceIDOnEveryResponse(t *testing.T) {
	ts, _ := newTestServer(t)
	x := make([]float64, 196)

	resp, _ := postJSON(t, ts.URL+"/v1/multiply", multiplyRequest{
		engineRequest: engineRequest{Matrix: "lap"}, X: x,
	})
	id := resp.Header.Get("X-Trace-Id")
	if len(id) != 32 {
		t.Fatalf("multiply X-Trace-Id = %q, want generated 32-hex ID", id)
	}

	resp, _ = postJSON(t, ts.URL+"/v1/solve", solveRequest{
		engineRequest: engineRequest{Matrix: "lap"}, B: make([]float64, 196), MaxIter: 3,
	})
	if resp.Header.Get("X-Trace-Id") == "" {
		t.Fatal("solve response missing X-Trace-Id")
	}

	// Error responses still carry the ID.
	resp, _ = postJSON(t, ts.URL+"/v1/multiply", multiplyRequest{
		engineRequest: engineRequest{Matrix: "nope"}, X: x,
	})
	if resp.StatusCode != http.StatusNotFound || resp.Header.Get("X-Trace-Id") == "" {
		t.Fatalf("404 response: status %d, X-Trace-Id %q", resp.StatusCode, resp.Header.Get("X-Trace-Id"))
	}

	// Inbound X-Request-Id echoes back; traceparent wins over it.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/multiply",
		strings.NewReader(`{"matrix":"lap","x":`+vecJSON(196)+`}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "client-req.42")
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if got := r2.Header.Get("X-Trace-Id"); got != "client-req.42" {
		t.Fatalf("X-Trace-Id = %q, want echoed X-Request-Id", got)
	}

	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/v1/multiply",
		strings.NewReader(`{"matrix":"lap","x":`+vecJSON(196)+`}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	req.Header.Set("X-Request-Id", "loses")
	r3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if got := r3.Header.Get("X-Trace-Id"); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("X-Trace-Id = %q, want traceparent trace-id", got)
	}
}

func vecJSON(n int) string {
	return "[" + strings.TrimSuffix(strings.Repeat("1,", n), ",") + "]"
}

// TestTimingsBlock pins the acceptance criterion: with ?timings=1 the
// JSON response carries the stage breakdown, the top-level stages are
// exactly decode/admission/schedule/encode, and their sum is within 5%
// of the reported total (contiguous intervals make it exact up to float
// rounding).
func TestTimingsBlock(t *testing.T) {
	ts, _ := newTestServer(t)
	x := make([]float64, 196)
	for i := range x {
		x[i] = float64(i % 5)
	}
	resp, body := postJSON(t, ts.URL+"/v1/multiply?timings=1", multiplyRequest{
		engineRequest: engineRequest{Matrix: "lap"}, X: x,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var mr multiplyResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Timings == nil {
		t.Fatal("response missing timings block")
	}
	if mr.Timings.TraceID != resp.Header.Get("X-Trace-Id") {
		t.Fatalf("timings trace_id %q != header %q", mr.Timings.TraceID, resp.Header.Get("X-Trace-Id"))
	}
	wantStages := []string{StageDecode, StageAdmission, StageSchedule, StageEncode}
	if len(mr.Timings.Stages) != len(wantStages) {
		t.Fatalf("stages = %+v, want %v", mr.Timings.Stages, wantStages)
	}
	sum := 0.0
	for i, sp := range mr.Timings.Stages {
		if sp.Stage != wantStages[i] {
			t.Fatalf("stage[%d] = %q, want %q", i, sp.Stage, wantStages[i])
		}
		if sp.Ms < 0 {
			t.Fatalf("stage %s has negative duration %v", sp.Stage, sp.Ms)
		}
		sum += sp.Ms
	}
	if mr.Timings.TotalMs <= 0 {
		t.Fatalf("total_ms = %v, want > 0", mr.Timings.TotalMs)
	}
	if rel := math.Abs(sum-mr.Timings.TotalMs) / mr.Timings.TotalMs; rel > 0.05 {
		t.Fatalf("stage sum %v vs total %v: off by %.1f%%, want within 5%%",
			sum, mr.Timings.TotalMs, rel*100)
	}
	// The schedule stage nests the scheduler's attribution, and the flush
	// span nests the engine's sampled phases.
	var sched *obs.Span
	for i := range mr.Timings.Stages {
		if mr.Timings.Stages[i].Stage == StageSchedule {
			sched = &mr.Timings.Stages[i]
		}
	}
	kids := map[string]bool{}
	var flush *obs.Span
	for i, sp := range sched.Spans {
		kids[sp.Stage] = true
		if sp.Stage == StageFlush {
			flush = &sched.Spans[i]
		}
	}
	for _, want := range []string{StageQueue, StageAssemble, StageFlush} {
		if !kids[want] {
			t.Fatalf("schedule children = %+v, missing %q", sched.Spans, want)
		}
	}
	if flush == nil || flush.Attrs["batch_width"] == nil {
		t.Fatalf("flush span = %+v, want batch_width attr", flush)
	}
	phases := map[string]bool{}
	for _, sp := range flush.Spans {
		phases[sp.Stage] = true
	}
	for _, want := range []string{StageExpand, StageCompute, StageFold} {
		if !phases[want] {
			t.Fatalf("flush phases = %+v, missing %q (engine should implement PhaseSampler)", flush.Spans, want)
		}
	}

	// Without the opt-in, no block.
	_, body = postJSON(t, ts.URL+"/v1/multiply", multiplyRequest{
		engineRequest: engineRequest{Matrix: "lap"}, X: x,
	})
	var plain map[string]json.RawMessage
	if err := json.Unmarshal(body, &plain); err != nil {
		t.Fatal(err)
	}
	if _, ok := plain["timings"]; ok {
		t.Fatal("timings block present without opt-in")
	}

	// The JSON body flag works too, on solve as well.
	resp, body = postJSON(t, ts.URL+"/v1/solve", solveRequest{
		engineRequest: engineRequest{Matrix: "lap"}, B: x, MaxIter: 5, Timings: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d: %s", resp.StatusCode, body)
	}
	var sr solveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Timings == nil {
		t.Fatal("solve response missing timings block")
	}
	var solve *obs.Span
	for i := range sr.Timings.Stages {
		if sr.Timings.Stages[i].Stage == StageSolve {
			solve = &sr.Timings.Stages[i]
		}
	}
	if solve == nil || len(solve.Spans) == 0 {
		t.Fatalf("solve stage = %+v, want scheduler children", sr.Timings.Stages)
	}
	for _, sp := range solve.Spans {
		if sp.Stage == StageFlush {
			if fl, _ := sp.Attrs["flushes"].(float64); fl < 2 {
				t.Fatalf("solve flush span %+v: a 5-iteration CG should flush more than once", sp.Attrs)
			}
		}
	}
}

// TestDebugTraces: the trace buffer surfaces finished requests.
func TestDebugTraces(t *testing.T) {
	ts, _ := newTestServer(t)
	x := make([]float64, 196)
	for i := 0; i < 3; i++ {
		postJSON(t, ts.URL+"/v1/multiply", multiplyRequest{
			engineRequest: engineRequest{Matrix: "lap"}, X: x,
		})
	}
	resp, body := getWith(t, ts.URL+"/debug/traces", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var tr tracesResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Seen < 3 || len(tr.Recent) < 3 || len(tr.Slowest) == 0 {
		t.Fatalf("traces: seen=%d recent=%d slowest=%d, want >=3/>=3/>0", tr.Seen, len(tr.Recent), len(tr.Slowest))
	}
	got := tr.Recent[0]
	if got.ID == "" || got.Endpoint != "/v1/multiply" || got.Status != http.StatusOK {
		t.Fatalf("trace = %+v", got)
	}
	if len(got.Spans) == 0 || got.Spans[0].Stage != StageDecode {
		t.Fatalf("trace spans = %+v, want stage tree starting with decode", got.Spans)
	}
	// Slowest is sorted slowest-first.
	for i := 1; i < len(tr.Slowest); i++ {
		if tr.Slowest[i].TotalMs > tr.Slowest[i-1].TotalMs {
			t.Fatalf("slowest not sorted: %v then %v", tr.Slowest[i-1].TotalMs, tr.Slowest[i].TotalMs)
		}
	}
}

// TestMetricsNegotiation: /metrics speaks Prometheus text only when the
// Accept header asks for it; absent or JSON Accepts keep the legacy
// JSON snapshot byte-compatible.
func TestMetricsNegotiation(t *testing.T) {
	ts, _ := newTestServer(t)
	x := make([]float64, 196)
	postJSON(t, ts.URL+"/v1/multiply", multiplyRequest{engineRequest: engineRequest{Matrix: "lap"}, X: x})

	// No Accept header (what loadgen and the existing JSON consumers
	// send) → JSON.
	resp, body := getWith(t, ts.URL+"/metrics", nil)
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default Content-Type = %q, want application/json", ct)
	}
	var pm PoolMetrics
	if err := json.Unmarshal(body, &pm); err != nil {
		t.Fatalf("default /metrics not PoolMetrics JSON: %v", err)
	}
	if pm.Requests == 0 || len(pm.Engines) == 0 {
		t.Fatalf("JSON snapshot empty: %+v", pm)
	}

	// Explicit JSON stays JSON even alongside text/plain.
	resp, _ = getWith(t, ts.URL+"/metrics", map[string]string{"Accept": "application/json, text/plain"})
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Accept json Content-Type = %q", ct)
	}

	// A Prometheus scraper's Accept → text exposition, and it lints.
	resp, body = getWith(t, ts.URL+"/metrics", map[string]string{"Accept": "text/plain"})
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("prom Content-Type = %q, want %q", ct, obs.PromContentType)
	}
	series, err := obs.LintPrometheus(string(body))
	if err != nil {
		t.Fatalf("exposition does not lint: %v\n%s", err, body)
	}
	for _, want := range []struct {
		name   string
		labels []string
	}{
		{"spmv_engine_requests_total", []string{`matrix="lap"`, `method="s2D"`, `k="4"`}},
		{"spmv_pool_requests_total", nil},
		{"spmv_tenant_requests_total", []string{`tenant="default"`}},
	} {
		found := false
		for id := range series {
			if !strings.HasPrefix(id, want.name+"{") {
				continue
			}
			ok := true
			for _, l := range want.labels {
				ok = ok && strings.Contains(id, l)
			}
			if ok {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("exposition missing series %s%v\n%s", want.name, want.labels, body)
		}
	}
	// Per-stage histograms per engine and per tenant.
	var engStage, tenStage bool
	for id := range series {
		if strings.HasPrefix(id, "spmv_engine_stage_seconds_bucket{") && strings.Contains(id, `stage="flush"`) {
			engStage = true
		}
		if strings.HasPrefix(id, "spmv_tenant_stage_seconds_bucket{") {
			tenStage = true
		}
	}
	if !engStage || !tenStage {
		t.Fatalf("stage histograms missing: engine=%v tenant=%v", engStage, tenStage)
	}

	// A second scrape after more traffic stays monotonic.
	postJSON(t, ts.URL+"/v1/multiply", multiplyRequest{engineRequest: engineRequest{Matrix: "lap"}, X: x})
	_, body2 := getWith(t, ts.URL+"/metrics", map[string]string{"Accept": "text/plain"})
	series2, err := obs.LintPrometheus(string(body2))
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.LintMonotonic(series, series2); err != nil {
		t.Fatal(err)
	}
}

// TestQuarantineLogEvents: a quarantine emits exactly one
// event=quarantine record and exactly one event=breaker_open record;
// the later settle emits breaker_closed.
func TestQuarantineLogEvents(t *testing.T) {
	ec := obs.NewEventCounter(obs.Nop.Handler())
	inj := faultinject.New(faultinject.Rule{Point: "flush.nan", Nth: 1, Count: 1})
	p := NewPool(Options{
		Seed:           1,
		Injector:       inj,
		PayloadChecks:  true,
		RebuildBackoff: 20 * time.Millisecond,
		Logger:         slog.New(ec),
	})
	t.Cleanup(p.Close)
	if err := p.AddMatrix("lap", testMatrix(t, 14, 14)); err != nil {
		t.Fatal(err)
	}
	h, err := p.Acquire("lap", "s2d", 4)
	if err != nil {
		t.Fatal(err)
	}
	_, err = h.Multiply(context.Background(), make([]float64, 196))
	h.Release()
	var fe *EngineFaultError
	if !errors.As(err, &fe) {
		t.Fatalf("multiply = %v, want *EngineFaultError", err)
	}
	waitQuarantine(t, p)
	if got := ec.Count("quarantine"); got != 1 {
		t.Fatalf("quarantine events = %d, want exactly 1", got)
	}
	if got := ec.Count("breaker_open"); got != 1 {
		t.Fatalf("breaker_open events = %d, want exactly 1", got)
	}
	if got := ec.Count("build"); got < 1 {
		t.Fatalf("build events = %d, want >= 1", got)
	}

	// Recovery: a successful rebuilt-engine flush settles the breaker.
	h2 := acquireEventually(t, p, "s2d", 4)
	if _, err := h2.Multiply(context.Background(), make([]float64, 196)); err != nil {
		t.Fatal(err)
	}
	h2.Release()
	if got := ec.Count("breaker_closed"); got != 1 {
		t.Fatalf("breaker_closed events = %d, want exactly 1", got)
	}
}

// TestDrainLogEvent: SetDraining transitions log once each way.
func TestDrainLogEvent(t *testing.T) {
	ec := obs.NewEventCounter(obs.Nop.Handler())
	p := NewPool(Options{Seed: 1, Logger: slog.New(ec)})
	t.Cleanup(p.Close)
	s := NewServer(p)
	s.SetDraining(true)
	s.SetDraining(true) // no transition, no extra event
	s.SetDraining(false)
	if got := ec.Count("drain"); got != 1 {
		t.Fatalf("drain events = %d, want 1", got)
	}
	if got := ec.Count("undrain"); got != 1 {
		t.Fatalf("undrain events = %d, want 1", got)
	}
}

// waitQuarantine blocks until the pool's quarantine counter is nonzero
// (quarantine tears down asynchronously).
func waitQuarantine(t *testing.T, p *Pool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if p.MetricsSnapshot().Quarantines > 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("quarantine never recorded")
}
