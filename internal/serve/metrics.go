package serve

import (
	"math"
	"sort"
	"sync"
	"time"
)

// latRingSize bounds the latency samples kept per engine. Percentiles
// come from the most recent samples — enough resolution for a p99 at
// serving rates, constant memory forever.
const latRingSize = 4096

// collector accumulates one engine's serving counters. All methods are
// safe for concurrent use; Snapshot is consistent (taken under the same
// lock the writers use).
type collector struct {
	mu        sync.Mutex
	requests  uint64 // successfully completed multiplies (not batches)
	batches   uint64 // successful engine flushes
	widthSum  uint64 // sum of flushed batch widths
	overloads uint64 // submissions rejected by admission control
	cancelled uint64 // submissions abandoned via context
	failures  uint64 // requests failed inside the engine
	faultedB  uint64 // batches lost to an engine fault (quarantine path)

	lat  [latRingSize]float64 // milliseconds, ring
	nLat int                  // total recorded (ring index = nLat % size)
}

func (c *collector) recordBatch(width int, latMs []float64) {
	c.mu.Lock()
	c.batches++
	c.widthSum += uint64(width)
	c.requests += uint64(width)
	for _, l := range latMs {
		c.lat[c.nLat%latRingSize] = l
		c.nLat++
	}
	c.mu.Unlock()
}

func (c *collector) overload()  { c.mu.Lock(); c.overloads++; c.mu.Unlock() }
func (c *collector) cancel()    { c.mu.Lock(); c.cancelled++; c.mu.Unlock() }
func (c *collector) fail(n int) { c.mu.Lock(); c.failures += uint64(n); c.mu.Unlock() }

// fault records one whole batch lost to an engine fault: its n requests
// count as failures and the batch as faulted.
func (c *collector) fault(n int) {
	c.mu.Lock()
	c.faultedB++
	c.failures += uint64(n)
	c.mu.Unlock()
}

// Metrics is a point-in-time snapshot of one engine's serving behavior.
type Metrics struct {
	Requests  uint64  `json:"requests"`
	Batches   uint64  `json:"batches"`
	MeanBatch float64 `json:"mean_batch"` // requests per flush
	Overloads uint64  `json:"overloads"`
	Cancelled uint64  `json:"cancelled"`
	Failures  uint64  `json:"failures"`
	// FaultedBatches counts flushes lost to an engine fault — the batches
	// whose requests were failed by a contained panic or corrupted
	// payload before the engine was quarantined.
	FaultedBatches uint64  `json:"faulted_batches"`
	P50Ms          float64 `json:"p50_ms"`
	P99Ms          float64 `json:"p99_ms"`
	QueueDepth     int     `json:"queue_depth"`
}

// snapshot computes the derived figures; queue depth is supplied by the
// scheduler because only it knows the live queue.
func (c *collector) snapshot(queueDepth int) Metrics {
	c.mu.Lock()
	m := Metrics{
		Requests:       c.requests,
		Batches:        c.batches,
		Overloads:      c.overloads,
		Cancelled:      c.cancelled,
		Failures:       c.failures,
		FaultedBatches: c.faultedB,
		QueueDepth:     queueDepth,
	}
	// Percentile window on ring wrap: nLat counts every sample ever
	// recorded, so once it passes latRingSize the whole array is the
	// window — every slot holds one of the most recent latRingSize
	// samples (slot nLat%size was overwritten most recently). Clamping to
	// the array length is exactly right; order within the window does not
	// matter because snapshot sorts before reading percentiles.
	n := c.nLat
	if n > latRingSize {
		n = latRingSize
	}
	widthSum := c.widthSum
	samples := append([]float64(nil), c.lat[:n]...)
	c.mu.Unlock()

	if m.Batches > 0 {
		m.MeanBatch = float64(widthSum) / float64(m.Batches)
	}
	if len(samples) > 0 {
		sort.Float64s(samples)
		m.P50Ms = percentile(samples, 0.50)
		m.P99Ms = percentile(samples, 0.99)
	}
	return m
}

// percentile reads the q-quantile from an ascending sample slice at
// index ⌈q·(n−1)⌉ — the ceiling of the linear-interpolation position,
// i.e. the upper of the two samples straddling the quantile. Rounding
// the fractional rank up makes the estimate conservative everywhere
// (p50 of an even window reads the upper median) and in particular
// never under-reports the tail: the old truncating index int(q·(n−1))
// read the 99th smallest of 100 samples as p99 instead of the maximum.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q * float64(len(sorted)-1)))
	return sorted[i]
}

// msSince converts an elapsed duration to float milliseconds.
func msSince(t0 time.Time) float64 { return float64(time.Since(t0)) / float64(time.Millisecond) }
