package serve

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestTenantRegistryValidation(t *testing.T) {
	cases := []struct {
		name  string
		specs []TenantSpec
	}{
		{"empty name", []TenantSpec{{Name: "  ", Key: "k1"}}},
		{"missing key", []TenantSpec{{Name: "a"}}},
		{"duplicate name", []TenantSpec{{Name: "a", Key: "k1"}, {Name: "a", Key: "k2"}}},
		{"reserved default", []TenantSpec{{Name: "default", Key: "k1"}}},
		{"duplicate key", []TenantSpec{{Name: "a", Key: "k1"}, {Name: "b", Key: "k1"}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewTenantRegistry(tc.specs...); err == nil {
				t.Fatal("invalid registry accepted")
			}
		})
	}
	r, err := NewTenantRegistry(TenantSpec{Name: "a", Key: "k1", Weight: -3})
	if err != nil {
		t.Fatal(err)
	}
	if tn, _ := r.Lookup("a"); tn.Weight != 1 {
		t.Fatalf("non-positive weight normalized to %v, want 1", tn.Weight)
	}
}

func TestTenantAuthenticate(t *testing.T) {
	open, err := NewTenantRegistry()
	if err != nil {
		t.Fatal(err)
	}
	if tn, err := open.Authenticate(""); err != nil || tn != open.Default() {
		t.Fatalf("open registry: %v %v", tn, err)
	}
	keyed, err := NewTenantRegistry(TenantSpec{Name: "a", Key: "secret"})
	if err != nil {
		t.Fatal(err)
	}
	var ua *UnauthorizedError
	for _, hdr := range []string{"", "Basic secret", "Bearer wrong"} {
		if _, err := keyed.Authenticate(hdr); !errors.As(err, &ua) {
			t.Fatalf("header %q: error %v, want *UnauthorizedError", hdr, err)
		}
	}
	tn, err := keyed.Authenticate("Bearer secret")
	if err != nil || tn.Name != "a" {
		t.Fatalf("valid key: %v %v", tn, err)
	}
}

func TestLoadTenants(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tenants.json")
	body := `{"tenants":[{"name":"hot","key":"kh","weight":1,"max_queue":4},
	                     {"name":"light","key":"kl","weight":4}]}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := LoadTenants(path)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Keyed() {
		t.Fatal("loaded registry is not keyed")
	}
	hot, _ := r.Lookup("hot")
	light, _ := r.Lookup("light")
	if hot.MaxQueue != 4 || light.Weight != 4 {
		t.Fatalf("specs not honored: hot=%+v light=%+v", hot, light)
	}
	if _, err := LoadTenants(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	empty := filepath.Join(dir, "empty.json")
	os.WriteFile(empty, []byte(`{"tenants":[]}`), 0o644)
	if _, err := LoadTenants(empty); err == nil {
		t.Fatal("empty tenant list accepted")
	}
}

// TestStrideBatchAssembly pins the weighted-fair assembler
// deterministically: with tenant a at weight 2 and b at weight 1 both
// backlogged, one MaxBatch=8 flush serves them 5:3 in the exact stride
// order a b a a b a a b.
func TestStrideBatchAssembly(t *testing.T) {
	reg, err := NewTenantRegistry(
		TenantSpec{Name: "a", Key: "ka", Weight: 2},
		TenantSpec{Name: "b", Key: "kb", Weight: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	a := testMatrix(t, 12, 12)
	s := newTestScheduler(t, a, Options{MaxBatch: 8, MaxWait: time.Hour, Tenants: reg})

	ta, _ := reg.Lookup("a")
	tb, _ := reg.Lookup("b")
	s.mu.Lock()
	for _, tn := range []*Tenant{ta, tb} {
		q := s.queueForLocked(tn)
		for i := 0; i < 8; i++ {
			q.reqs = append(q.reqs, &request{tn: tn, done: make(chan struct{}), enq: time.Now()})
			s.nq++
		}
	}
	batch := s.takeBatchLocked()
	want := []*Tenant{ta, tb, ta, ta, tb, ta, ta, tb}
	if len(batch) != len(want) {
		t.Fatalf("batch width %d, want %d", len(batch), len(want))
	}
	for i, r := range batch {
		if r.tn != want[i] {
			t.Fatalf("slot %d served %s, want %s", i, r.tn.Name, want[i].Name)
		}
	}
	// Unstuff the synthetic occupants so close() drains cleanly.
	s.tq = make(map[*Tenant]*tenantQueue)
	s.nq = 0
	s.mu.Unlock()
}

// TestTenantQuotaIsolation is the QoS contract at scheduler level: a hot
// tenant at its quota sheds with a per-tenant *OverloadError naming
// itself, while the light tenant keeps being admitted and served.
func TestTenantQuotaIsolation(t *testing.T) {
	reg, err := NewTenantRegistry(
		TenantSpec{Name: "hot", Key: "kh", MaxQueue: 2},
		TenantSpec{Name: "light", Key: "kl"},
	)
	if err != nil {
		t.Fatal(err)
	}
	a := testMatrix(t, 10, 10)
	s := newTestScheduler(t, a, Options{MaxBatch: 64, MaxWait: time.Hour, MaxQueue: 16, Tenants: reg})
	hot, _ := reg.Lookup("hot")
	light, _ := reg.Lookup("light")

	// Fill hot's quota with live submissions parked in the wait window.
	var wg sync.WaitGroup
	x := make([]float64, a.Cols)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.submitOne(context.Background(), hot, x, false)
		}()
	}
	waitDepth(t, s, 2)

	var ov *OverloadError
	if _, err := s.submitOne(context.Background(), hot, x, false); !errors.As(err, &ov) {
		t.Fatalf("hot over quota: %v, want *OverloadError", err)
	}
	if ov.Tenant != "hot" || ov.Limit != 2 {
		t.Fatalf("overload names %q limit %d, want hot/2", ov.Tenant, ov.Limit)
	}
	if hot.rejections.Load() == 0 {
		t.Fatal("hot rejection not counted")
	}

	// The light tenant admits and completes despite hot's full queue: its
	// submission joins the aging batch, and a full-width wake is not
	// needed because its own arrival re-arms admission + the window.
	done := make(chan error, 1)
	go func() {
		_, err := s.submitOne(context.Background(), light, x, false)
		done <- err
	}()
	waitDepth(t, s, 3)
	// Nothing flushed yet (MaxWait is an hour): force one by closing.
	s.close()
	if err := <-done; err != nil {
		t.Fatalf("light tenant: %v", err)
	}
	wg.Wait()
	if light.requests.Load() != 1 {
		t.Fatalf("light served %d, want 1", light.requests.Load())
	}
}

// TestSubmitBatchAtomicAdmission: a multi-RHS submission over the quota
// rejects as a unit — no partial enqueue.
func TestSubmitBatchAtomicAdmission(t *testing.T) {
	a := testMatrix(t, 10, 10)
	s := newTestScheduler(t, a, Options{MaxBatch: 64, MaxWait: time.Millisecond, MaxQueue: 4})
	xs := make([][]float64, 5)
	for i := range xs {
		xs[i] = make([]float64, a.Cols)
	}
	var ov *OverloadError
	if _, err := s.submitBatch(context.Background(), nil, xs, false); !errors.As(err, &ov) {
		t.Fatalf("oversized batch: %v, want *OverloadError", err)
	}
	if got := s.metrics().QueueDepth; got != 0 {
		t.Fatalf("queue depth %d after atomic rejection, want 0", got)
	}
	// At the quota exactly, the batch admits and serves.
	ys, err := s.submitBatch(context.Background(), nil, xs[:4], false)
	if err != nil || len(ys) != 4 {
		t.Fatalf("full-quota batch: %d results, err %v", len(ys), err)
	}
}
