package serve

import (
	"context"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"repro/internal/serve/faultinject"
)

// TestChaosAcceptance runs the full chaos contract in-process, the same
// harness `spmvserve -selftest -chaos` drives: 16 concurrent clients
// over two engines while the seeded injector panics a worker and fails
// a rebuild, then a drain with solves in flight, then a goroutine-leak
// check. Everything a production operator relies on — bit-identical
// healthy responses, quarantine + breaker-paced recovery, zero dropped
// in-flight work — is asserted on the report.
func TestChaosAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos acceptance needs a multi-second window")
	}
	g0 := runtime.NumGoroutine()

	// Schedule: the 80th worker turn panics (mid-load: each dispatch burns
	// K=4 turns, and the reference phase only spends a handful); build 3
	// — the rebuild after the quarantine, following the two initial
	// engine builds — fails once.
	rules, err := faultinject.ParseSchedule("worker.panic@80,build.fail@3")
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(rules...)
	p := NewPool(Options{
		Seed:           1,
		Injector:       inj,
		PayloadChecks:  true,
		RebuildBackoff: 20 * time.Millisecond,
	})
	if err := p.AddMatrix("lap", testMatrix(t, 16, 16)); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(p)
	hs := httptest.NewServer(srv)

	ctx := context.Background()
	cfg := ChaosConfig{
		BaseURL:  hs.URL,
		Client:   hs.Client(),
		Matrix:   "lap",
		Methods:  []string{"s2d", "2d"},
		K:        4,
		Clients:  16,
		Duration: 700 * time.Millisecond,
		Seed:     9,
		Injector: inj,
	}
	rep, err := ChaosRun(ctx, cfg)
	if err != nil {
		t.Fatalf("ChaosRun: %v", err)
	}

	// Drain with work in flight, through the real shutdown path.
	err = DrainCheck(ctx, cfg, rep, 8, func() error {
		srv.SetDraining(true)
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return hs.Config.Shutdown(sctx)
	})
	if err != nil {
		t.Fatalf("DrainCheck: %v", err)
	}
	p.Close()

	if err := rep.Validate(5 * time.Second); err != nil {
		t.Fatalf("%v\nreport: %+v", err, rep)
	}

	// No leaked workers or runners: the count settles back to (about) the
	// pre-test baseline once engines, schedulers, and the server are gone.
	hs.Close()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= g0+3 {
			break
		} else if !time.Now().Before(deadline) {
			t.Fatalf("goroutines: %d before, %d after chaos + close — leak in the fault path", g0, g)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
