package serve

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/method"
	"repro/internal/sparse"
	"repro/internal/spmv"
)

// EngineKey identifies one pooled engine: a named matrix partitioned by
// a registry method at a part count.
type EngineKey struct {
	Matrix string `json:"matrix"`
	Method string `json:"method"`
	K      int    `json:"k"`
}

func (k EngineKey) String() string { return fmt.Sprintf("%s/%s/K=%d", k.Matrix, k.Method, k.K) }

// Pool caches engines keyed by (matrix, method, K). Engines build
// lazily on first Acquire — partitioning prerequisites go through one
// shared method.Pipeline, so two engines on the same matrix reuse its
// hypergraph models and vector partitions — and stay resident with
// their persistent workers parked between requests. Acquire/Release
// reference-count each engine; when the pool holds more than
// Options.MaxEngines, idle engines evict in LRU order.
type Pool struct {
	opt      Options
	pipeline *method.Pipeline

	mu        sync.Mutex
	matrices  map[string]*sparse.CSR
	matOrder  []string
	engines   map[EngineKey]*poolEntry
	clock     uint64 // logical LRU time, bumped per touch
	builds    uint64
	evictions uint64
	closed    bool
}

// poolEntry is one cached engine. ready closes when the build finishes
// (successfully or not); refs counts outstanding Handles plus, during
// the build, the builder itself.
type poolEntry struct {
	key      EngineKey
	refs     int
	lastUse  uint64
	ready    chan struct{}
	sched    *scheduler
	schedule string // engine variant: fused / twophase / routed
	err      error
}

// NewPool creates an empty pool; register matrices with AddMatrix.
func NewPool(opt Options) *Pool {
	return &Pool{
		opt:      opt.withDefaults(),
		pipeline: method.NewPipeline(),
		matrices: make(map[string]*sparse.CSR),
		engines:  make(map[EngineKey]*poolEntry),
	}
}

// AddMatrix registers a named matrix for serving. Re-registering a name
// is an error: resident engines were built against the old instance.
func (p *Pool) AddMatrix(name string, a *sparse.CSR) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if name == "" {
		return fmt.Errorf("serve: empty matrix name")
	}
	if _, dup := p.matrices[name]; dup {
		return fmt.Errorf("serve: matrix %q already registered", name)
	}
	p.matrices[name] = a
	p.matOrder = append(p.matOrder, name)
	return nil
}

// MatrixInfo describes one registered matrix.
type MatrixInfo struct {
	Name string `json:"name"`
	Rows int    `json:"rows"`
	Cols int    `json:"cols"`
	NNZ  int    `json:"nnz"`
}

// Matrices lists the registered matrices in registration order.
func (p *Pool) Matrices() []MatrixInfo {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]MatrixInfo, 0, len(p.matOrder))
	for _, name := range p.matOrder {
		a := p.matrices[name]
		out = append(out, MatrixInfo{Name: name, Rows: a.Rows, Cols: a.Cols, NNZ: a.NNZ()})
	}
	return out
}

// Matrix returns a registered matrix.
func (p *Pool) Matrix(name string) (*sparse.CSR, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	a, ok := p.matrices[name]
	if !ok {
		return nil, &UnknownMatrixError{Matrix: name, Known: append([]string(nil), p.matOrder...)}
	}
	return a, nil
}

// Acquire returns a Handle on the engine for (matrix, methodName, k),
// building it if absent. The first acquirer performs the build (other
// concurrent acquirers wait on it); the handle pins the engine against
// eviction until Release.
func (p *Pool) Acquire(matrix, methodName string, k int) (*Handle, error) {
	if k < 1 {
		return nil, fmt.Errorf("serve: K must be >= 1, got %d", k)
	}
	m, ok := method.Get(methodName)
	if !ok {
		return nil, &UnknownMethodError{Method: methodName}
	}
	methodName = m.Name() // canonical: "s2d" and "s2D" share one engine
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	a, ok := p.matrices[matrix]
	if !ok {
		known := append([]string(nil), p.matOrder...)
		p.mu.Unlock()
		return nil, &UnknownMatrixError{Matrix: matrix, Known: known}
	}
	key := EngineKey{Matrix: matrix, Method: methodName, K: k}
	e, ok := p.engines[key]
	var build bool
	var evict []*poolEntry
	if !ok {
		e = &poolEntry{key: key, ready: make(chan struct{})}
		p.engines[key] = e
		p.builds++
		build = true
		evict = p.evictLocked()
	}
	e.refs++
	p.clock++
	e.lastUse = p.clock
	p.mu.Unlock()

	for _, v := range evict {
		v.sched.close()
	}
	if build {
		p.build(e, a, methodName, k)
	}
	<-e.ready
	if e.err != nil {
		p.release(e, true)
		return nil, e.err
	}
	return &Handle{pool: p, e: e}, nil
}

// build constructs the engine outside the pool lock (partitioning can
// take seconds) and publishes the result through e.ready.
func (p *Pool) build(e *poolEntry, a *sparse.CSR, methodName string, k int) {
	defer close(e.ready)
	opt := method.Options{Seed: p.opt.Seed, Epsilon: p.opt.Epsilon, Pipeline: p.pipeline}
	b, err := method.BuildByName(methodName, a, k, opt)
	if err != nil {
		e.err = fmt.Errorf("serve: build %s: %w", e.key, err)
		return
	}
	eng, err := spmv.New(b)
	if err != nil {
		e.err = fmt.Errorf("serve: engine %s: %w", e.key, err)
		return
	}
	switch {
	case b.Routed():
		e.schedule = "routed"
	case b.Dist.Fused:
		e.schedule = "fused"
	default:
		e.schedule = "twophase"
	}
	e.sched = newScheduler(eng, a.Rows, a.Cols, p.opt)
}

// release drops one reference; failed entries leave the map so a later
// Acquire can retry, and a successful release triggers LRU eviction if
// the pool is over its cap.
func (p *Pool) release(e *poolEntry, failed bool) {
	var evict []*poolEntry
	p.mu.Lock()
	e.refs--
	p.clock++
	e.lastUse = p.clock
	if failed && e.refs == 0 {
		delete(p.engines, e.key)
	} else if !p.closed {
		evict = p.evictLocked()
	}
	p.mu.Unlock()
	for _, v := range evict {
		v.sched.close()
	}
}

// evictLocked removes idle engines, least recently used first, until
// the pool is back under MaxEngines. Entries still referenced (or still
// building) are never touched, so the resident count can transiently
// exceed the cap under load.
func (p *Pool) evictLocked() []*poolEntry {
	if len(p.engines) <= p.opt.MaxEngines {
		return nil
	}
	idle := make([]*poolEntry, 0, len(p.engines))
	for _, e := range p.engines {
		if e.refs == 0 && e.sched != nil {
			idle = append(idle, e)
		}
	}
	sort.Slice(idle, func(i, j int) bool { return idle[i].lastUse < idle[j].lastUse })
	var out []*poolEntry
	for _, e := range idle {
		if len(p.engines) <= p.opt.MaxEngines {
			break
		}
		delete(p.engines, e.key)
		p.evictions++
		out = append(out, e)
	}
	return out
}

// EngineMetrics is one resident engine's snapshot.
type EngineMetrics struct {
	EngineKey
	Schedule string `json:"schedule"`
	Refs     int    `json:"refs"`
	Metrics
}

// PoolMetrics is the /metrics payload: pool totals plus one row per
// resident engine.
type PoolMetrics struct {
	Engines    []EngineMetrics `json:"engines"`
	MaxEngines int             `json:"max_engines"`
	Builds     uint64          `json:"builds"`
	Evictions  uint64          `json:"evictions"`
	Requests   uint64          `json:"requests"`
	Batches    uint64          `json:"batches"`
	MeanBatch  float64         `json:"mean_batch"`
}

// MetricsSnapshot gathers per-engine and pool-wide serving metrics.
func (p *Pool) MetricsSnapshot() PoolMetrics {
	p.mu.Lock()
	entries := make([]*poolEntry, 0, len(p.engines))
	for _, e := range p.engines {
		entries = append(entries, e)
	}
	pm := PoolMetrics{MaxEngines: p.opt.MaxEngines, Builds: p.builds, Evictions: p.evictions}
	refs := make(map[*poolEntry]int, len(entries))
	for _, e := range entries {
		refs[e] = e.refs
	}
	p.mu.Unlock()

	for _, e := range entries {
		select {
		case <-e.ready:
		default:
			continue // still building
		}
		if e.err != nil {
			continue
		}
		m := e.sched.metrics()
		pm.Engines = append(pm.Engines, EngineMetrics{
			EngineKey: e.key, Schedule: e.schedule, Refs: refs[e], Metrics: m,
		})
		pm.Requests += m.Requests
		pm.Batches += m.Batches
	}
	sort.Slice(pm.Engines, func(i, j int) bool {
		return pm.Engines[i].EngineKey.String() < pm.Engines[j].EngineKey.String()
	})
	if pm.Batches > 0 {
		pm.MeanBatch = float64(pm.Requests) / float64(pm.Batches)
	}
	return pm
}

// Close shuts the pool down: subsequent Acquires fail with ErrClosed,
// and every resident engine's scheduler drains and closes. Engines
// still referenced by outstanding Handles close too — their handles'
// submissions will return ErrClosed — so Close is for process shutdown.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	entries := make([]*poolEntry, 0, len(p.engines))
	for _, e := range p.engines {
		entries = append(entries, e)
		delete(p.engines, e.key)
	}
	p.mu.Unlock()
	for _, e := range entries {
		<-e.ready
		if e.sched != nil {
			e.sched.close()
		}
	}
}

// Handle is a pinned reference to one pooled engine.
type Handle struct {
	pool     *Pool
	e        *poolEntry
	released sync.Once
}

// Key returns the engine's identity.
func (h *Handle) Key() EngineKey { return h.e.key }

// Schedule names the engine variant (fused / twophase / routed).
func (h *Handle) Schedule() string { return h.e.schedule }

// Rows and Cols are the served matrix's dimensions.
func (h *Handle) Rows() int { return h.e.sched.rows }
func (h *Handle) Cols() int { return h.e.sched.cols }

// Multiply submits x for coalesced execution and returns y ← Ax,
// bit-identical to a solo engine Multiply.
func (h *Handle) Multiply(ctx context.Context, x []float64) ([]float64, error) {
	return h.e.sched.submit(ctx, x)
}

// MultiplyTranspose submits x (length Rows) for coalesced execution and
// returns y ← Aᵀx (length Cols). Transpose submissions batch with each
// other, never into a forward flush.
func (h *Handle) MultiplyTranspose(ctx context.Context, x []float64) ([]float64, error) {
	return h.e.sched.submitT(ctx, x)
}

// Release unpins the engine; the handle must not be used afterwards.
// Releasing twice is a no-op.
func (h *Handle) Release() {
	h.released.Do(func() { h.pool.release(h.e, false) })
}

// Metrics snapshots the engine this handle pins.
func (h *Handle) Metrics() Metrics { return h.e.sched.metrics() }
