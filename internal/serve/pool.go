package serve

import (
	"context"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"repro/internal/method"
	"repro/internal/obs"
	"repro/internal/sparse"
	"repro/internal/spmv"
)

// EngineKey identifies one pooled engine: a named matrix partitioned by
// a registry method at a part count.
type EngineKey struct {
	Matrix string `json:"matrix"`
	Method string `json:"method"`
	K      int    `json:"k"`
}

func (k EngineKey) String() string { return fmt.Sprintf("%s/%s/K=%d", k.Matrix, k.Method, k.K) }

// Pool caches engines keyed by (matrix, method, K). Engines build
// lazily on first Acquire — partitioning prerequisites go through one
// shared method.Pipeline, so two engines on the same matrix reuse its
// hypergraph models and vector partitions — and stay resident with
// their persistent workers parked between requests. Acquire/Release
// reference-count each engine; when the pool holds more than
// Options.MaxEngines, idle engines evict in LRU order.
type Pool struct {
	opt      Options
	pipeline *method.Pipeline
	log      *slog.Logger
	inst     *instruments

	mu        sync.Mutex
	matrices  map[string]*sparse.CSR
	matOrder  []string
	engines   map[EngineKey]*poolEntry
	breakers  map[EngineKey]*breaker // persists across quarantines
	clock     uint64                 // logical LRU time, bumped per touch
	builds    uint64
	evictions uint64
	quarants  uint64
	closed    bool

	// quarWG tracks the async scheduler closes quarantine spawns, so
	// Close can wait for every quarantined engine's goroutines.
	quarWG sync.WaitGroup
}

// poolEntry is one cached engine. ready closes when the build finishes
// (successfully or not); refs counts outstanding Handles plus, during
// the build, the builder itself.
type poolEntry struct {
	key      EngineKey
	refs     int
	lastUse  uint64
	ready    chan struct{}
	sched    *scheduler
	schedule string // engine variant: fused / twophase / routed
	kernels  string // per-width-class kernel selection (KernelReport.String)
	err      error
}

// NewPool creates an empty pool; register matrices with AddMatrix.
func NewPool(opt Options) *Pool {
	p := &Pool{
		opt:      opt.withDefaults(),
		pipeline: method.NewPipeline(),
		matrices: make(map[string]*sparse.CSR),
		engines:  make(map[EngineKey]*poolEntry),
		breakers: make(map[EngineKey]*breaker),
	}
	p.log = p.opt.Logger
	p.inst = newInstruments(p.opt.Registry)
	return p
}

// Logger is the pool's structured logger (never nil).
func (p *Pool) Logger() *slog.Logger { return p.log }

// Registry is the metrics registry backing the stage histograms.
func (p *Pool) Registry() *obs.Registry { return p.opt.Registry }

// AddMatrix registers a named matrix for serving. Re-registering a name
// is an error: resident engines were built against the old instance.
func (p *Pool) AddMatrix(name string, a *sparse.CSR) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if name == "" {
		return fmt.Errorf("serve: empty matrix name")
	}
	if _, dup := p.matrices[name]; dup {
		return &DuplicateMatrixError{Matrix: name}
	}
	p.matrices[name] = a
	p.matOrder = append(p.matOrder, name)
	return nil
}

// MatrixInfo describes one registered matrix.
type MatrixInfo struct {
	Name string `json:"name"`
	Rows int    `json:"rows"`
	Cols int    `json:"cols"`
	NNZ  int    `json:"nnz"`
}

// Matrices lists the registered matrices in registration order.
func (p *Pool) Matrices() []MatrixInfo {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]MatrixInfo, 0, len(p.matOrder))
	for _, name := range p.matOrder {
		a := p.matrices[name]
		out = append(out, MatrixInfo{Name: name, Rows: a.Rows, Cols: a.Cols, NNZ: a.NNZ()})
	}
	return out
}

// Matrix returns a registered matrix.
func (p *Pool) Matrix(name string) (*sparse.CSR, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	a, ok := p.matrices[name]
	if !ok {
		return nil, &UnknownMatrixError{Matrix: name, Known: append([]string(nil), p.matOrder...)}
	}
	return a, nil
}

// Tenants exposes the pool's tenant registry (never nil — an open
// registry is installed by default).
func (p *Pool) Tenants() *TenantRegistry { return p.opt.Tenants }

// RemoveMatrix unregisters a matrix and closes its idle engines. While
// any engine on the matrix is referenced (a Handle is live, or a build
// is in flight) the delete refuses with *PinnedMatrixError (HTTP 409) —
// release the handles and retry. Unknown names are *UnknownMatrixError.
func (p *Pool) RemoveMatrix(name string) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	if _, ok := p.matrices[name]; !ok {
		known := append([]string(nil), p.matOrder...)
		p.mu.Unlock()
		return &UnknownMatrixError{Matrix: name, Known: known}
	}
	// Builds hold a ref until Acquire returns, so refs>0 also covers
	// engines still under construction — never close a building entry.
	// The smallest pinned key is reported so the 409 payload does not
	// depend on map iteration order.
	var pinKey EngineKey
	var pinRefs int
	pinned := false
	for key, e := range p.engines { //spmvlint:unordered selection with a total tie-break on the key
		if key.Matrix == name && e.refs > 0 {
			if !pinned || key.String() < pinKey.String() {
				pinKey, pinRefs, pinned = key, e.refs, true
			}
		}
	}
	if pinned {
		p.mu.Unlock()
		return &PinnedMatrixError{Matrix: name, Key: pinKey, Refs: pinRefs}
	}
	var victims []*poolEntry
	for key, e := range p.engines {
		if key.Matrix == name {
			delete(p.engines, key)
			victims = append(victims, e)
		}
	}
	for key := range p.breakers {
		if key.Matrix == name {
			delete(p.breakers, key)
		}
	}
	delete(p.matrices, name)
	for i, n := range p.matOrder {
		if n == name {
			p.matOrder = append(p.matOrder[:i], p.matOrder[i+1:]...)
			break
		}
	}
	p.mu.Unlock()
	for _, v := range victims {
		v.sched.close()
	}
	return nil
}

// Acquire returns a Handle on the engine for (matrix, methodName, k),
// building it if absent. The first acquirer performs the build (other
// concurrent acquirers wait on it); the handle pins the engine against
// eviction until Release.
func (p *Pool) Acquire(matrix, methodName string, k int) (*Handle, error) {
	if k < 1 {
		return nil, fmt.Errorf("serve: K must be >= 1, got %d", k)
	}
	m, ok := method.Get(methodName)
	if !ok {
		return nil, &UnknownMethodError{Method: methodName}
	}
	methodName = m.Name() // canonical: "s2d" and "s2D" share one engine
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	a, ok := p.matrices[matrix]
	if !ok {
		known := append([]string(nil), p.matOrder...)
		p.mu.Unlock()
		return nil, &UnknownMatrixError{Matrix: matrix, Known: known}
	}
	key := EngineKey{Matrix: matrix, Method: methodName, K: k}
	e, ok := p.engines[key]
	var build bool
	var evict []*poolEntry
	if !ok {
		// Absent entry → this acquire needs a (re)build; the key's circuit
		// breaker decides whether one may run. While open (a recent fault
		// or failed rebuild is in cooldown) the acquire sheds; the first
		// acquire after the cooldown becomes the half-open probe.
		br := p.breakers[key]
		if br == nil {
			br = &breaker{}
			p.breakers[key] = br
		}
		prev := br.state
		allowed, retry := br.allow(time.Now())
		p.logBreakerLocked(key, prev, br)
		if !allowed {
			p.mu.Unlock()
			return nil, &QuarantinedError{Key: key, RetryAfter: retry}
		}
		e = &poolEntry{key: key, ready: make(chan struct{})}
		p.engines[key] = e
		p.builds++
		build = true
		evict = p.evictLocked()
	}
	e.refs++
	p.clock++
	e.lastUse = p.clock
	p.mu.Unlock()

	for _, v := range evict {
		v.sched.close()
	}
	if build {
		p.build(e, a, methodName, k)
	}
	<-e.ready
	if e.err != nil {
		p.release(e, true)
		// The failed build already tripped the breaker (settle in build's
		// defer, before ready closed), so a build failure is a transient
		// shed for everyone who was waiting on it: 503 + Retry-After from
		// the breaker's live cooldown, not a terminal 500. Read the
		// cooldown directly — allow() here would consume the half-open
		// probe slot a retrying client is entitled to.
		p.mu.Lock()
		retry := p.opt.RebuildBackoff
		if br := p.breakers[e.key]; br != nil {
			if d := time.Until(br.until); d > retry {
				retry = d
			}
		}
		p.mu.Unlock()
		return nil, &QuarantinedError{Key: e.key, RetryAfter: retry, Cause: e.err}
	}
	return &Handle{pool: p, e: e}, nil
}

// build constructs the engine outside the pool lock (partitioning can
// take seconds) and publishes the result through e.ready. The outcome
// settles the key's circuit breaker: success closes it, failure trips
// it (doubling the rebuild cooldown).
func (p *Pool) build(e *poolEntry, a *sparse.CSR, methodName string, k int) {
	defer close(e.ready)
	t0 := time.Now()
	defer func() {
		p.mu.Lock()
		if br := p.breakers[e.key]; br != nil {
			prev := br.state
			br.settle(time.Now(), p.opt, e.err == nil)
			p.logBreakerLocked(e.key, prev, br)
		}
		p.mu.Unlock()
		if e.err != nil {
			p.log.LogAttrs(context.Background(), slog.LevelError, "engine build failed",
				slog.String("event", "build_failed"), slog.String("engine", e.key.String()),
				slog.String("error", e.err.Error()), slog.Duration("elapsed", time.Since(t0)))
		} else {
			p.log.LogAttrs(context.Background(), slog.LevelInfo, "engine built",
				slog.String("event", "build"), slog.String("engine", e.key.String()),
				slog.String("schedule", e.schedule), slog.String("kernel", e.kernels),
				slog.Duration("elapsed", time.Since(t0)))
		}
	}()
	if p.opt.Injector.Fire("build.fail") {
		e.err = fmt.Errorf("serve: build %s: %w", e.key, fmt.Errorf("faultinject: build.fail"))
		return
	}
	opt := method.Options{Seed: p.opt.Seed, Epsilon: p.opt.Epsilon, Pipeline: p.pipeline}
	b, err := method.BuildByName(methodName, a, k, opt)
	if err != nil {
		e.err = fmt.Errorf("serve: build %s: %w", e.key, err)
		return
	}
	eng, err := spmv.New(b)
	if err != nil {
		e.err = fmt.Errorf("serve: engine %s: %w", e.key, err)
		return
	}
	switch {
	case b.Routed():
		e.schedule = "routed"
	case b.Dist.Fused:
		e.schedule = "fused"
	default:
		e.schedule = "twophase"
	}
	// Kernel selection runs before the fault hook arms: the tuner's probe
	// multiplies must not consume count-based chaos schedules aimed at
	// real traffic. RelaxedFP stays false — serving results are
	// contractually bit-identical to a solo engine, and every non-relaxed
	// backend preserves that bit for bit.
	tune := spmv.TuneConfig{Force: p.opt.ForceKernel}
	if tune.Force == "" {
		tune.Cache = p.pipeline.KernelCache(a, methodName, k, p.opt.Seed, p.opt.Epsilon)
	} else if tune.Force == "relaxed" {
		eng.Close()
		e.err = fmt.Errorf("serve: build %s: kernel %q is excluded from the bit-identical serving path", e.key, tune.Force)
		return
	}
	rep, err := eng.Autotune(tune)
	if err != nil {
		eng.Close()
		e.err = fmt.Errorf("serve: tune %s: %w", e.key, err)
		return
	}
	e.kernels = rep.String()
	if inj := p.opt.Injector; inj != nil {
		if h, ok := eng.(spmv.WorkerFaultHooker); ok {
			h.SetWorkerFaultHook(func(worker int) {
				if inj.Fire("worker.panic") {
					panic("faultinject: worker.panic") //spmvlint:allowpanic fault injection; contained by runContained
				}
			})
		}
	}
	e.sched = newScheduler(eng, a.Rows, a.Cols, p.opt, e.key, e.kernels, p.inst, func(cause error) {
		p.quarantine(e, cause)
	})
}

// logBreakerLocked emits one structured event per breaker state change
// (called with p.mu held; transitions are rare, so logging under the
// lock is fine). Event names are distinct per target state so
// chaos-smoke can assert "one breaker_open per trip" by counting.
func (p *Pool) logBreakerLocked(key EngineKey, prev breakerState, br *breaker) {
	if br.state == prev {
		return
	}
	event, lvl := "breaker_closed", slog.LevelInfo
	switch br.state {
	case breakerOpen:
		event, lvl = "breaker_open", slog.LevelWarn
	case breakerHalfOpen:
		event = "breaker_half_open"
	}
	p.log.LogAttrs(context.Background(), lvl, "breaker state change",
		slog.String("event", event), slog.String("engine", key.String()),
		slog.String("from", prev.String()), slog.String("to", br.state.String()),
		slog.Uint64("trips", br.trips), slog.Duration("cooldown", br.backoff))
}

// quarantine evicts a faulted engine: the entry leaves the map so the
// next Acquire rebuilds (behind the breaker, which trips here), and the
// scheduler drains and closes asynchronously — quarantine is called
// from the scheduler's own runner goroutine, which close() would wait
// on. Outstanding Handles keep their pins; their submissions fail fast
// with the fault until they Release.
func (p *Pool) quarantine(e *poolEntry, cause error) {
	p.mu.Lock()
	if p.engines[e.key] == e {
		delete(p.engines, e.key)
		p.quarants++
	}
	br := p.breakers[e.key]
	if br == nil {
		br = &breaker{}
		p.breakers[e.key] = br
	}
	prev := br.state
	br.trip(time.Now(), p.opt)
	p.logBreakerLocked(e.key, prev, br)
	cooldown := br.backoff
	p.mu.Unlock()
	p.log.LogAttrs(context.Background(), slog.LevelWarn, "engine quarantined",
		slog.String("event", "quarantine"), slog.String("engine", e.key.String()),
		slog.String("cause", cause.Error()), slog.Duration("cooldown", cooldown))

	p.quarWG.Add(1)
	go func() {
		defer p.quarWG.Done()
		e.sched.close()
	}()
}

// release drops one reference; failed entries leave the map so a later
// Acquire can retry, and a successful release triggers LRU eviction if
// the pool is over its cap.
func (p *Pool) release(e *poolEntry, failed bool) {
	var evict []*poolEntry
	p.mu.Lock()
	e.refs--
	p.clock++
	e.lastUse = p.clock
	if failed && e.refs == 0 {
		// Only delete the entry we hold: a quarantine may already have
		// removed it and a rebuild replaced it under the same key.
		if p.engines[e.key] == e {
			delete(p.engines, e.key)
		}
	} else if !p.closed {
		evict = p.evictLocked()
	}
	p.mu.Unlock()
	for _, v := range evict {
		v.sched.close()
	}
}

// evictLocked removes idle engines, least recently used first, until
// the pool is back under MaxEngines. Entries still referenced (or still
// building) are never touched, so the resident count can transiently
// exceed the cap under load.
func (p *Pool) evictLocked() []*poolEntry {
	if len(p.engines) <= p.opt.MaxEngines {
		return nil
	}
	idle := make([]*poolEntry, 0, len(p.engines))
	for _, e := range p.engines {
		if e.refs == 0 && e.sched != nil {
			idle = append(idle, e)
		}
	}
	sort.Slice(idle, func(i, j int) bool { return idle[i].lastUse < idle[j].lastUse })
	var out []*poolEntry
	for _, e := range idle {
		if len(p.engines) <= p.opt.MaxEngines {
			break
		}
		delete(p.engines, e.key)
		p.evictions++
		out = append(out, e)
		p.log.LogAttrs(context.Background(), slog.LevelInfo, "engine evicted",
			slog.String("event", "evict"), slog.String("engine", e.key.String()))
	}
	return out
}

// EngineMetrics is one resident engine's snapshot. Kernel is the
// per-width-class kernel selection the engine runs ("nrhs:backend"
// pairs, e.g. "0:scalar 1:scalar 2:reg 4:reg 8:sortedreg").
type EngineMetrics struct {
	EngineKey
	Schedule string `json:"schedule"`
	Kernel   string `json:"kernel,omitempty"`
	Refs     int    `json:"refs"`
	Metrics
}

// BreakerMetrics is one engine key's circuit-breaker snapshot.
type BreakerMetrics struct {
	EngineKey
	State string `json:"state"` // closed / open / half-open
	Trips uint64 `json:"trips"`
}

// PoolMetrics is the /metrics payload: pool totals plus one row per
// resident engine and one per known circuit breaker.
type PoolMetrics struct {
	Engines     []EngineMetrics  `json:"engines"`
	Breakers    []BreakerMetrics `json:"breakers,omitempty"`
	Tenants     []TenantMetrics  `json:"tenants,omitempty"`
	MaxEngines  int              `json:"max_engines"`
	Builds      uint64           `json:"builds"`
	Evictions   uint64           `json:"evictions"`
	Quarantines uint64           `json:"quarantines"`
	Requests    uint64           `json:"requests"`
	Batches     uint64           `json:"batches"`
	MeanBatch   float64          `json:"mean_batch"`
}

// MetricsSnapshot gathers per-engine and pool-wide serving metrics.
func (p *Pool) MetricsSnapshot() PoolMetrics {
	p.mu.Lock()
	entries := make([]*poolEntry, 0, len(p.engines))
	for _, e := range p.engines {
		entries = append(entries, e)
	}
	pm := PoolMetrics{
		MaxEngines:  p.opt.MaxEngines,
		Builds:      p.builds,
		Evictions:   p.evictions,
		Quarantines: p.quarants,
	}
	for key, br := range p.breakers {
		pm.Breakers = append(pm.Breakers, BreakerMetrics{
			EngineKey: key, State: br.state.String(), Trips: br.trips,
		})
	}
	sort.Slice(pm.Breakers, func(i, j int) bool {
		return pm.Breakers[i].EngineKey.String() < pm.Breakers[j].EngineKey.String()
	})
	refs := make(map[*poolEntry]int, len(entries))
	for _, e := range entries {
		refs[e] = e.refs
	}
	p.mu.Unlock()

	depths := make(map[*Tenant]int)
	for _, e := range entries {
		select {
		case <-e.ready:
		default:
			continue // still building
		}
		if e.err != nil {
			continue
		}
		m := e.sched.metrics()
		e.sched.tenantDepths(depths)
		pm.Engines = append(pm.Engines, EngineMetrics{
			EngineKey: e.key, Schedule: e.schedule, Kernel: e.kernels,
			Refs: refs[e], Metrics: m,
		})
		pm.Requests += m.Requests
		pm.Batches += m.Batches
	}
	pm.Tenants = p.opt.Tenants.Metrics(depths)
	sort.Slice(pm.Engines, func(i, j int) bool {
		return pm.Engines[i].EngineKey.String() < pm.Engines[j].EngineKey.String()
	})
	if pm.Batches > 0 {
		pm.MeanBatch = float64(pm.Requests) / float64(pm.Batches)
	}
	return pm
}

// Close shuts the pool down: subsequent Acquires fail with ErrClosed,
// and every resident engine's scheduler drains and closes. Engines
// still referenced by outstanding Handles close too — their handles'
// submissions will return ErrClosed — so Close is for process shutdown.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	entries := make([]*poolEntry, 0, len(p.engines))
	for _, e := range p.engines {
		entries = append(entries, e)
		delete(p.engines, e.key)
	}
	p.mu.Unlock()
	for _, e := range entries {
		<-e.ready
		if e.sched != nil {
			e.sched.close()
		}
	}
	// Quarantined engines close asynchronously; collect their goroutines
	// too so Close really means quiesced.
	p.quarWG.Wait()
}

// Handle is a pinned reference to one pooled engine.
type Handle struct {
	pool     *Pool
	e        *poolEntry
	released sync.Once
}

// Key returns the engine's identity.
func (h *Handle) Key() EngineKey { return h.e.key }

// Schedule names the engine variant (fused / twophase / routed).
func (h *Handle) Schedule() string { return h.e.schedule }

// Kernel is the engine's per-width-class kernel selection, in
// KernelReport.String form.
func (h *Handle) Kernel() string { return h.e.kernels }

// Rows and Cols are the served matrix's dimensions.
func (h *Handle) Rows() int { return h.e.sched.rows }
func (h *Handle) Cols() int { return h.e.sched.cols }

// Multiply submits x for coalesced execution and returns y ← Ax,
// bit-identical to a solo engine Multiply. Runs as the default tenant.
func (h *Handle) Multiply(ctx context.Context, x []float64) ([]float64, error) {
	return h.e.sched.submit(ctx, x)
}

// MultiplyTranspose submits x (length Rows) for coalesced execution and
// returns y ← Aᵀx (length Cols). Transpose submissions batch with each
// other, never into a forward flush. Runs as the default tenant.
func (h *Handle) MultiplyTranspose(ctx context.Context, x []float64) ([]float64, error) {
	return h.e.sched.submitT(ctx, x)
}

// MultiplyFor is Multiply charged to tn's quota and fair-share weight.
func (h *Handle) MultiplyFor(ctx context.Context, tn *Tenant, x []float64) ([]float64, error) {
	return h.e.sched.submitOne(ctx, tn, x, false)
}

// MultiplyTransposeFor is MultiplyTranspose charged to tn.
func (h *Handle) MultiplyTransposeFor(ctx context.Context, tn *Tenant, x []float64) ([]float64, error) {
	return h.e.sched.submitOne(ctx, tn, x, true)
}

// MultiplyBatch submits nrhs vectors as one atomic admission for tn
// (all admitted or all rejected) and returns the corresponding outputs.
// The vectors coalesce through the same homogeneous-direction scheduler
// path as everyone else's, so results remain bit-identical to solo
// multiplies in every mix.
func (h *Handle) MultiplyBatch(ctx context.Context, tn *Tenant, xs [][]float64, transpose bool) ([][]float64, error) {
	return h.e.sched.submitBatch(ctx, tn, xs, transpose)
}

// Release unpins the engine; the handle must not be used afterwards.
// Releasing twice is a no-op.
func (h *Handle) Release() {
	h.released.Do(func() { h.pool.release(h.e, false) })
}

// Metrics snapshots the engine this handle pins.
func (h *Handle) Metrics() Metrics { return h.e.sched.metrics() }
