package serve

import (
	"context"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/spmv"
)

// Stage names used across the span tree, the stage histograms, and the
// selftest table. Top-level request stages are contiguous wall-time
// intervals; queue/assemble/flush attribute the scheduler's share, and
// expand/compute/fold attribute the engine flush (sampled from worker 0).
const (
	StageDecode    = "decode"    // body read + JSON/frame parse
	StageAdmission = "admission" // engine acquire (build/breaker/quota)
	StageSchedule  = "schedule"  // multiply: submit → results demuxed
	StageSolve     = "solve"     // solve: all solver iterations
	StageEncode    = "encode"    // response marshal
	StageQueue     = "queue"     // waiting behind other flushes (engine busy)
	StageAssemble  = "assemble"  // MaxWait aging + batch take + buffer prep
	StageFlush     = "flush"     // the engine multiply itself
	StageExpand    = "expand"    // engine phase: x packet sends
	StageCompute   = "compute"   // engine phase: local kernel
	StageFold      = "fold"      // engine phase: partial-y gather
)

// stageBuckets are the latency histogram bounds in seconds: 50µs to
// ~4s, a quarter-decade apart — fine enough near the flush timescale
// to separate queueing from compute, coarse enough to stay cheap.
var stageBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2, 4,
}

// instruments are the pool's registry-backed histogram families. The
// scheduler and server observe per-stage latencies here; everything
// else on /metrics derives from the existing snapshot counters at
// scrape time (see prom.go).
type instruments struct {
	engStage *obs.HistogramVec // spmv_engine_stage_seconds{matrix,method,k,stage}
	tenStage *obs.HistogramVec // spmv_tenant_stage_seconds{tenant,stage}
}

func newInstruments(reg *obs.Registry) *instruments {
	return &instruments{
		engStage: reg.Histogram("spmv_engine_stage_seconds",
			"Per-stage request latency by engine.", stageBuckets,
			"matrix", "method", "k", "stage"),
		tenStage: reg.Histogram("spmv_tenant_stage_seconds",
			"Per-stage request latency by tenant.", stageBuckets,
			"tenant", "stage"),
	}
}

// engineStages resolves the scheduler's cached per-engine histogram
// children for the three scheduler-attributed stages.
func (in *instruments) engineStages(key EngineKey) (queue, assemble, flush *obs.Histogram) {
	k := strconv.Itoa(key.K)
	return in.engStage.With(key.Matrix, key.Method, k, StageQueue),
		in.engStage.With(key.Matrix, key.Method, k, StageAssemble),
		in.engStage.With(key.Matrix, key.Method, k, StageFlush)
}

// tenantStages resolves one tenant's cached scheduler-stage children.
func (in *instruments) tenantStages(name string) (queue, assemble, flush *obs.Histogram) {
	return in.tenStage.With(name, StageQueue),
		in.tenStage.With(name, StageAssemble),
		in.tenStage.With(name, StageFlush)
}

// stageSink accumulates scheduler-side stage attribution for one
// request as its submissions flush. Multiply requests see one flush
// (per RHS); a solve's sink aggregates every iteration's multiplies.
// The flush runner is the only writer while the handler blocks on the
// submission, but solves interleave handler reads between iterations,
// so a mutex keeps the pair race-free.
type stageSink struct {
	mu       sync.Mutex
	flushes  int
	widthSum int // sum of batch widths over flushes
	queueNs  int64
	asmNs    int64
	flushNs  int64
	expandNs int64
	compNs   int64
	foldNs   int64
	phases   bool
	kernel   string
}

func (s *stageSink) addFlush(queue, assemble, flush time.Duration, width int, kernel string, ph spmv.PhaseTimings, phOK bool) {
	s.mu.Lock()
	s.flushes++
	s.widthSum += width
	s.queueNs += int64(queue)
	s.asmNs += int64(assemble)
	s.flushNs += int64(flush)
	if phOK {
		s.phases = true
		s.expandNs += int64(ph.Expand)
		s.compNs += int64(ph.Compute)
		s.foldNs += int64(ph.Fold)
	}
	s.kernel = kernel
	s.mu.Unlock()
}

// spans renders the sink as child spans of the schedule/solve stage.
func (s *stageSink) spans() []obs.Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.flushes == 0 {
		return nil
	}
	ms := func(ns int64) float64 { return float64(ns) / 1e6 }
	flushSpan := obs.Span{
		Stage: StageFlush, Ms: ms(s.flushNs),
		Attrs: map[string]any{
			"batch_width": float64(s.widthSum) / float64(s.flushes),
			"flushes":     s.flushes,
		},
	}
	if s.kernel != "" {
		flushSpan.Attrs["kernel"] = s.kernel
	}
	if s.phases {
		flushSpan.Spans = []obs.Span{
			{Stage: StageExpand, Ms: ms(s.expandNs)},
			{Stage: StageCompute, Ms: ms(s.compNs)},
			{Stage: StageFold, Ms: ms(s.foldNs)},
		}
	}
	return []obs.Span{
		{Stage: StageQueue, Ms: ms(s.queueNs)},
		{Stage: StageAssemble, Ms: ms(s.asmNs)},
		flushSpan,
	}
}

type sinkKey struct{}

// withStageSink threads a sink through the scheduler path; submitBatch
// attaches it to every request it enqueues.
func withStageSink(ctx context.Context, s *stageSink) context.Context {
	return context.WithValue(ctx, sinkKey{}, s)
}

func sinkFrom(ctx context.Context) *stageSink {
	s, _ := ctx.Value(sinkKey{}).(*stageSink)
	return s
}
