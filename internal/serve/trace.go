package serve

import (
	"context"
	"log/slog"
	"net/http"
	"time"

	"repro/internal/obs"
)

// TimingsBlock is the opt-in per-response stage breakdown: request
// `?timings=1` (or JSON `"timings": true`) and the JSON response gains
// this block. Top-level stages are contiguous wall-time intervals, so
// their sum equals TotalMs exactly; queue/assemble/flush nest under
// schedule (or solve), and expand/compute/fold under flush.
type TimingsBlock struct {
	TraceID string     `json:"trace_id"`
	TotalMs float64    `json:"total_ms"`
	Stages  []obs.Span `json:"stages"`
}

// statusWriter captures the response status for the trace record and
// the request log line.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// reqTrace accumulates one request's span tree as the handler runs.
// mark(stage) closes the current top-level interval: every instant from
// beginTrace to the last mark belongs to exactly one stage, which is
// what makes the timings block sum to its total.
type reqTrace struct {
	id     string
	route  string
	tenant string
	engine string
	start  time.Time
	last   time.Time
	spans  []obs.Span
	sink   *stageSink // scheduler-side attribution for schedule/solve
}

// beginTrace starts the span tree, resolves the inbound trace ID
// (traceparent > X-Request-Id > generated), and stamps it onto the
// response before the handler can write headers.
func (s *Server) beginTrace(w http.ResponseWriter, r *http.Request) (*statusWriter, *reqTrace) {
	id := obs.RequestTraceID(r.Header)
	w.Header().Set("X-Trace-Id", id)
	now := time.Now()
	return &statusWriter{ResponseWriter: w}, &reqTrace{
		id: id, route: r.URL.Path, start: now, last: now, sink: &stageSink{},
	}
}

// mark ends the current stage at now. The schedule/solve stages adopt
// the sink's scheduler-side breakdown as child spans.
func (rt *reqTrace) mark(stage string) {
	now := time.Now()
	span := obs.Span{Stage: stage, Ms: float64(now.Sub(rt.last)) / 1e6}
	if stage == StageSchedule || stage == StageSolve {
		span.Spans = rt.sink.spans()
	}
	rt.spans = append(rt.spans, span)
	rt.last = now
}

// setEngine records which engine served the request once it is known.
func (rt *reqTrace) setEngine(h *Handle) { rt.engine = h.Key().String() }

// block renders the opt-in response timings. Call after the last
// pre-encode mark; the stage list is shared with the trace record, so
// callers must not mutate it.
func (rt *reqTrace) block() *TimingsBlock {
	return &TimingsBlock{
		TraceID: rt.id,
		TotalMs: float64(rt.last.Sub(rt.start)) / 1e6,
		Stages:  rt.spans,
	}
}

// finish publishes the trace to the debug buffer, observes the
// top-level stages into the per-tenant histograms, and emits the
// request completion log line at Debug.
func (rt *reqTrace) finish(s *Server, sw *statusWriter) {
	status := sw.status
	if status == 0 {
		status = http.StatusOK
	}
	total := float64(rt.last.Sub(rt.start)) / 1e6
	s.Traces.Add(&obs.Trace{
		ID: rt.id, Endpoint: rt.route, Start: rt.start, TotalMs: total,
		Status: status, Tenant: rt.tenant, Engine: rt.engine, Spans: rt.spans,
	})
	if inst := s.pool.inst; inst != nil && rt.tenant != "" {
		for _, sp := range rt.spans {
			inst.tenStage.With(rt.tenant, sp.Stage).Observe(sp.Ms / 1e3)
		}
	}
	log := s.pool.Logger()
	if log.Enabled(context.Background(), slog.LevelDebug) {
		attrs := []slog.Attr{
			slog.String("event", "request"),
			slog.String("trace_id", rt.id),
			slog.String("route", rt.route),
			slog.Int("status", status),
			slog.String("tenant", rt.tenant),
			slog.Float64("total_ms", total),
		}
		if rt.engine != "" {
			attrs = append(attrs, slog.String("engine", rt.engine))
		}
		for _, sp := range rt.spans {
			attrs = append(attrs, slog.Float64(sp.Stage+"_ms", sp.Ms))
		}
		log.LogAttrs(context.Background(), slog.LevelDebug, "request complete", attrs...)
	}
}
