// Package serve is the multi-tenant SpMV serving subsystem: it fronts
// the compiled spmv engines with a production-style request path so that
// many concurrent clients can share a handful of expensive engines and
// the batched SpMM plans turn per-multiply wins into throughput wins.
//
// The pieces, bottom up:
//
//   - Pool: an engine cache keyed by (matrix, method, K). Engines build
//     lazily through the method registry's memoizing Pipeline, are
//     reference-counted by Acquire/Release, and idle engines evict LRU
//     when the pool exceeds its cap — each engine keeps its K persistent
//     workers parked between requests, so a cache hit costs nothing.
//   - scheduler: a request-coalescing batcher per engine. Concurrent
//     Multiply submissions queue and flush as one MultiplyBlock call
//     when either MaxBatch vectors accumulate or the MaxWait window
//     expires; results demultiplex back to callers bit-identical to a
//     solo Multiply (the block kernels accumulate each column in the
//     scalar kernels' exact nonzero order).
//   - admission control: per-tenant bounded queues on every engine with
//     typed overload errors (*OverloadError, per-tenant 429 over HTTP),
//     weighted-fair flush ordering across tenants (stride scheduling),
//     and context cancellation for queued requests. The TenantRegistry
//     resolves API keys to tenants; without one, everything runs as the
//     anonymous default tenant and behaves like a single global queue.
//   - Metrics: lock-cheap counters plus a latency ring, snapshotted per
//     engine and pool-wide (requests, batches, mean batch width,
//     p50/p99 latency, live queue depth).
//   - Server: the HTTP JSON front end (cmd/spmvserve) exposing
//     /v1/multiply, /v1/solve (CG on square systems, LSQR/CGNR on
//     rectangular ones, driving the engine's transpose plan),
//     /v1/methods, /v1/matrices (MatrixMarket upload), and /metrics.
//   - LoadGen: a closed-loop load generator that sweeps offered
//     concurrency against a running server and reports
//     throughput/latency/achieved-batch-width records in the same JSON
//     shape cmd/benchdiff gates on.
package serve

import (
	"log/slog"
	"time"

	"repro/internal/obs"
	"repro/internal/serve/faultinject"
)

// Options configures a Pool and the schedulers it creates.
type Options struct {
	// MaxBatch is the widest SpMM batch one flush may coalesce
	// (default 8).
	MaxBatch int
	// MaxWait is how long the first queued request may wait for
	// companions before the batch flushes anyway (default 200µs).
	MaxWait time.Duration
	// MaxQueue bounds the per-engine queue depth; submissions beyond it
	// fail fast with *OverloadError (default 1024).
	MaxQueue int
	// MaxEngines caps the pool's resident engines; when exceeded, idle
	// (refcount zero) engines evict in LRU order. In-use engines never
	// evict, so the pool can transiently exceed the cap (default 8).
	MaxEngines int
	// RebuildBackoff is the circuit breaker's first cooldown after an
	// engine fault or failed rebuild; each further failure doubles it up
	// to RebuildBackoffMax (defaults 100ms and 5s). While the breaker is
	// open, acquires shed with *QuarantinedError (HTTP 503 +
	// Retry-After).
	RebuildBackoff    time.Duration
	RebuildBackoffMax time.Duration
	// PayloadChecks makes every flush scan its outputs for NaN/Inf and
	// treat corruption as an engine fault. Off by default: a caller
	// submitting NaN inputs legitimately produces NaN outputs, so the
	// scan only makes sense under chaos testing's controlled inputs.
	PayloadChecks bool
	// Injector, when non-nil, arms the fault-injection points in the
	// pool and schedulers (see serve/faultinject). Nil means every point
	// is inert.
	Injector *faultinject.Injector
	// FlushDelay is how long an injected "flush.slow" fault stalls the
	// flush (default 20ms, only meaningful with an Injector).
	FlushDelay time.Duration
	// Seed and Epsilon are the method.Options knobs shared by every
	// build the pool performs.
	Seed    int64
	Epsilon float64
	// Tenants resolves API keys to tenants and carries each tenant's
	// weight and queue quota. Nil means the open single-tenant registry:
	// no authentication, every request is the default tenant, and the
	// scheduler behaves exactly like the pre-tenancy global queue.
	Tenants *TenantRegistry
	// Logger receives the pool's structured operational log: engine
	// lifecycle (build, quarantine, breaker transitions) at Info/Warn and
	// per-request completion lines at Debug. Nil discards everything.
	Logger *slog.Logger
	// Registry collects the serving histograms (per-stage latency per
	// engine and per tenant); the server renders it into the Prometheus
	// /metrics exposition. Nil allocates a private registry.
	Registry *obs.Registry
	// ForceKernel names one spmv kernel backend to install on every
	// pooled engine instead of autotuning ("scalar" pins the reference
	// kernels). Empty autotunes each engine at build time; the verdicts
	// memoize in the pool's pipeline, so a rebuilt engine reinstalls the
	// original selection without re-probing. The relaxed backend is never
	// admitted here: serving results are contractually bit-identical to a
	// solo engine.
	ForceKernel string
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 8
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 200 * time.Microsecond
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 1024
	}
	if o.MaxEngines <= 0 {
		o.MaxEngines = 8
	}
	if o.RebuildBackoff <= 0 {
		o.RebuildBackoff = 100 * time.Millisecond
	}
	if o.RebuildBackoffMax <= 0 {
		o.RebuildBackoffMax = 5 * time.Second
	}
	if o.FlushDelay <= 0 {
		o.FlushDelay = 20 * time.Millisecond
	}
	if o.Tenants == nil {
		o.Tenants, _ = NewTenantRegistry() // open registry cannot fail
	}
	if o.Logger == nil {
		o.Logger = obs.Nop
	}
	if o.Registry == nil {
		o.Registry = obs.NewRegistry()
	}
	return o
}
