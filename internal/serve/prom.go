package serve

import (
	"net/http"
	"strconv"

	"repro/internal/obs"
)

// promSeries is one snapshot-derived family: its schema plus a closure
// emitting every sample. The table is shared by the exposition writer
// and the JSON↔Prometheus contract test, which checks that every field
// of the /metrics JSON snapshot has a corresponding series here.
type promSeries struct {
	name string
	typ  obs.MetricType
	help string
	emit func(p *obs.PromWriter, pm *PoolMetrics)
}

// engineLabels is the identity label set every per-engine series carries.
func engineLabels(k EngineKey) []string {
	return []string{"matrix", k.Matrix, "method", k.Method, "k", strconv.Itoa(k.K)}
}

// perEngine lifts a per-engine value accessor into a sample emitter.
func perEngine(v func(*EngineMetrics) float64) func(*obs.PromWriter, *PoolMetrics) {
	return func(p *obs.PromWriter, pm *PoolMetrics) {
		for i := range pm.Engines {
			e := &pm.Engines[i]
			p.Sample(v(e), engineLabels(e.EngineKey)...)
		}
	}
}

// perTenant lifts a per-tenant value accessor into a sample emitter.
func perTenant(v func(*TenantMetrics) float64) func(*obs.PromWriter, *PoolMetrics) {
	return func(p *obs.PromWriter, pm *PoolMetrics) {
		for i := range pm.Tenants {
			t := &pm.Tenants[i]
			p.Sample(v(t), "tenant", t.Name)
		}
	}
}

// breakerStateValue encodes breaker states for the gauge: closed 0,
// half-open 1, open 2.
func breakerStateValue(state string) float64 {
	switch state {
	case "open":
		return 2
	case "half-open":
		return 1
	default:
		return 0
	}
}

// promTable maps the PoolMetrics snapshot onto Prometheus families.
// JSON field → series correspondences (the contract the test pins):
//
//	engines[].requests         spmv_engine_requests_total
//	engines[].batches          spmv_engine_batches_total
//	engines[].mean_batch       spmv_engine_mean_batch_width
//	engines[].overloads        spmv_engine_overloads_total
//	engines[].cancelled        spmv_engine_cancelled_total
//	engines[].failures         spmv_engine_failures_total
//	engines[].faulted_batches  spmv_engine_faulted_batches_total
//	engines[].p50_ms / p99_ms  spmv_engine_latency_p50_seconds / _p99_
//	engines[].queue_depth      spmv_engine_queue_depth
//	engines[].refs             spmv_engine_refs
//	engines[].schedule/kernel  spmv_engine_info labels
//	breakers[].state / trips   spmv_breaker_state / spmv_breaker_trips_total
//	tenants[].*                spmv_tenant_*
//	pool totals                spmv_pool_*
var promTable = []promSeries{
	{"spmv_breaker_state", obs.TypeGauge,
		"Circuit-breaker state per engine key: 0 closed, 1 half-open, 2 open.",
		func(p *obs.PromWriter, pm *PoolMetrics) {
			for _, b := range pm.Breakers {
				p.Sample(breakerStateValue(b.State), engineLabels(b.EngineKey)...)
			}
		}},
	{"spmv_breaker_trips_total", obs.TypeCounter,
		"Circuit-breaker trips (quarantines plus failed rebuilds) per engine key.",
		func(p *obs.PromWriter, pm *PoolMetrics) {
			for _, b := range pm.Breakers {
				p.Sample(float64(b.Trips), engineLabels(b.EngineKey)...)
			}
		}},
	{"spmv_engine_batches_total", obs.TypeCounter,
		"Successful engine flushes.",
		perEngine(func(e *EngineMetrics) float64 { return float64(e.Batches) })},
	{"spmv_engine_cancelled_total", obs.TypeCounter,
		"Submissions abandoned via context cancellation.",
		perEngine(func(e *EngineMetrics) float64 { return float64(e.Cancelled) })},
	{"spmv_engine_failures_total", obs.TypeCounter,
		"Requests failed inside the engine.",
		perEngine(func(e *EngineMetrics) float64 { return float64(e.Failures) })},
	{"spmv_engine_faulted_batches_total", obs.TypeCounter,
		"Batches lost to an engine fault before quarantine.",
		perEngine(func(e *EngineMetrics) float64 { return float64(e.FaultedBatches) })},
	{"spmv_engine_info", obs.TypeGauge,
		"Engine identity: schedule and kernel selection as labels, value 1.",
		func(p *obs.PromWriter, pm *PoolMetrics) {
			for i := range pm.Engines {
				e := &pm.Engines[i]
				p.Sample(1, append(engineLabels(e.EngineKey),
					"schedule", e.Schedule, "kernel", e.Kernel)...)
			}
		}},
	{"spmv_engine_latency_p50_seconds", obs.TypeGauge,
		"Median request latency over the engine's recent-sample window.",
		perEngine(func(e *EngineMetrics) float64 { return e.P50Ms / 1e3 })},
	{"spmv_engine_latency_p99_seconds", obs.TypeGauge,
		"99th-percentile request latency over the engine's recent-sample window.",
		perEngine(func(e *EngineMetrics) float64 { return e.P99Ms / 1e3 })},
	{"spmv_engine_mean_batch_width", obs.TypeGauge,
		"Requests per flush since the engine was built.",
		perEngine(func(e *EngineMetrics) float64 { return e.MeanBatch })},
	{"spmv_engine_overloads_total", obs.TypeCounter,
		"Submissions rejected by admission control.",
		perEngine(func(e *EngineMetrics) float64 { return float64(e.Overloads) })},
	{"spmv_engine_queue_depth", obs.TypeGauge,
		"Live queued requests on the engine.",
		perEngine(func(e *EngineMetrics) float64 { return float64(e.QueueDepth) })},
	{"spmv_engine_refs", obs.TypeGauge,
		"Outstanding handles pinning the engine.",
		perEngine(func(e *EngineMetrics) float64 { return float64(e.Refs) })},
	{"spmv_engine_requests_total", obs.TypeCounter,
		"Successfully completed multiplies (not batches).",
		perEngine(func(e *EngineMetrics) float64 { return float64(e.Requests) })},
	{"spmv_pool_batches_total", obs.TypeCounter,
		"Successful flushes across all resident engines.",
		func(p *obs.PromWriter, pm *PoolMetrics) { p.Sample(float64(pm.Batches)) }},
	{"spmv_pool_builds_total", obs.TypeCounter,
		"Engine builds performed by the pool.",
		func(p *obs.PromWriter, pm *PoolMetrics) { p.Sample(float64(pm.Builds)) }},
	{"spmv_pool_engines", obs.TypeGauge,
		"Resident engines.",
		func(p *obs.PromWriter, pm *PoolMetrics) { p.Sample(float64(len(pm.Engines))) }},
	{"spmv_pool_evictions_total", obs.TypeCounter,
		"Idle engines evicted over the pool cap.",
		func(p *obs.PromWriter, pm *PoolMetrics) { p.Sample(float64(pm.Evictions)) }},
	{"spmv_pool_max_engines", obs.TypeGauge,
		"Configured resident-engine cap.",
		func(p *obs.PromWriter, pm *PoolMetrics) { p.Sample(float64(pm.MaxEngines)) }},
	{"spmv_pool_mean_batch_width", obs.TypeGauge,
		"Requests per flush across all resident engines.",
		func(p *obs.PromWriter, pm *PoolMetrics) { p.Sample(pm.MeanBatch) }},
	{"spmv_pool_quarantines_total", obs.TypeCounter,
		"Engines quarantined after faults.",
		func(p *obs.PromWriter, pm *PoolMetrics) { p.Sample(float64(pm.Quarantines)) }},
	{"spmv_pool_requests_total", obs.TypeCounter,
		"Completed multiplies across all resident engines.",
		func(p *obs.PromWriter, pm *PoolMetrics) { p.Sample(float64(pm.Requests)) }},
	{"spmv_tenant_bytes_total", obs.TypeCounter,
		"Wire bytes by tenant, encoding, and direction.",
		func(p *obs.PromWriter, pm *PoolMetrics) {
			for i := range pm.Tenants {
				t := &pm.Tenants[i]
				for _, s := range []struct {
					enc, dir string
					v        uint64
				}{
					{"json", "in", t.BytesInJSON}, {"json", "out", t.BytesOutJSON},
					{"binary", "in", t.BytesInBinary}, {"binary", "out", t.BytesOutBinary},
				} {
					p.Sample(float64(s.v), "tenant", t.Name, "encoding", s.enc, "direction", s.dir)
				}
			}
		}},
	{"spmv_tenant_queue_depth", obs.TypeGauge,
		"Live queued requests summed across engines, per tenant.",
		perTenant(func(t *TenantMetrics) float64 { return float64(t.QueueDepth) })},
	{"spmv_tenant_rejections_total", obs.TypeCounter,
		"Requests shed by the tenant's queue quota.",
		perTenant(func(t *TenantMetrics) float64 { return float64(t.Rejections) })},
	{"spmv_tenant_requests_total", obs.TypeCounter,
		"Requests completed for the tenant.",
		perTenant(func(t *TenantMetrics) float64 { return float64(t.Requests) })},
	{"spmv_tenant_weight", obs.TypeGauge,
		"Stride-scheduling weight.",
		perTenant(func(t *TenantMetrics) float64 { return t.Weight })},
}

// writePromMetrics renders the full Prometheus exposition: the
// PoolMetrics snapshot through promTable (sorted by family name above)
// followed by the registry's stage-latency histograms.
func (s *Server) writePromMetrics(w http.ResponseWriter) {
	pm := s.pool.MetricsSnapshot()
	w.Header().Set("Content-Type", obs.PromContentType)
	p := obs.NewPromWriter(w)
	for _, fam := range promTable {
		p.Family(fam.name, fam.typ, fam.help)
		fam.emit(p, &pm)
	}
	s.pool.Registry().WriteTo(p)
	_ = p.Flush()
}
