package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/method"
	"repro/internal/sparse"
	"repro/internal/spmv"
)

// testMatrix is a small SPD stencil — valid input for every registry
// method and for CG.
func testMatrix(t *testing.T, nx, ny int) *sparse.CSR {
	t.Helper()
	return gen.Laplace2D(nx, ny, false)
}

func buildEngine(t *testing.T, a *sparse.CSR, name string, k int, seed int64) spmv.Multiplier {
	t.Helper()
	b, err := method.BuildByName(name, a, k, method.Options{Seed: seed})
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	eng, err := spmv.New(b)
	if err != nil {
		t.Fatalf("engine %s: %v", name, err)
	}
	return eng
}

func newTestScheduler(t *testing.T, a *sparse.CSR, opt Options) *scheduler {
	t.Helper()
	s := newScheduler(buildEngine(t, a, "s2d", 4, 1), a.Rows, a.Cols, opt.withDefaults(), EngineKey{}, "", nil, nil)
	t.Cleanup(s.close)
	return s
}

func randVec(r *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = r.Float64()*4 - 2
	}
	return x
}

// TestFlushOnMaxWaitSingleRequest: a lone request must not wait for
// companions forever — the maxWait window flushes it as a batch of one.
func TestFlushOnMaxWaitSingleRequest(t *testing.T) {
	a := testMatrix(t, 12, 12)
	s := newTestScheduler(t, a, Options{MaxBatch: 8, MaxWait: 5 * time.Millisecond})
	r := rand.New(rand.NewSource(3))
	x := randVec(r, a.Cols)

	t0 := time.Now()
	y, err := s.submit(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(t0); elapsed > 2*time.Second {
		t.Fatalf("single request took %v; maxWait flush broken", elapsed)
	}
	want := make([]float64, a.Rows)
	a.MulVec(x, want)
	for i := range want {
		if diff := y[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
	m := s.metrics()
	if m.Requests != 1 || m.Batches != 1 || m.MeanBatch != 1 {
		t.Fatalf("metrics = %+v, want 1 request in 1 batch", m)
	}
}

// TestFlushOnExactMaxBatch: the batch must flush the moment maxBatch
// requests accumulate, long before the (deliberately huge) maxWait.
func TestFlushOnExactMaxBatch(t *testing.T) {
	a := testMatrix(t, 12, 12)
	const batch = 4
	s := newTestScheduler(t, a, Options{MaxBatch: batch, MaxWait: time.Hour})
	r := rand.New(rand.NewSource(5))

	var wg sync.WaitGroup
	errs := make([]error, batch)
	t0 := time.Now()
	for i := 0; i < batch; i++ {
		x := randVec(r, a.Cols)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.submit(context.Background(), x)
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("maxBatch-full batch did not flush (stuck on maxWait)")
	}
	if elapsed := time.Since(t0); elapsed > 10*time.Second {
		t.Fatalf("full batch took %v", elapsed)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	m := s.metrics()
	if m.Requests != batch || m.Batches != 1 || m.MeanBatch != batch {
		t.Fatalf("metrics = %+v, want one batch of %d", m, batch)
	}
}

// waitDepth polls until the scheduler's queue reaches depth n.
func waitDepth(t *testing.T, s *scheduler, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if s.metrics().QueueDepth >= n {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatalf("queue never reached depth %d", n)
}

// TestContextCancelledMidBatch: a request cancelled while queued returns
// ctx.Err immediately, leaves the queue (it must not widen the batch or
// hold its caller's x slice), and does not disturb its batchmates'
// results.
func TestContextCancelledMidBatch(t *testing.T) {
	a := testMatrix(t, 12, 12)
	const batch = 4
	s := newTestScheduler(t, a, Options{MaxBatch: batch, MaxWait: time.Hour})
	r := rand.New(rand.NewSource(7))

	ctx, cancel := context.WithCancel(context.Background())
	cancelledErr := make(chan error, 1)
	xs := make([][]float64, 5)
	for i := range xs {
		xs[i] = randVec(r, a.Cols)
	}
	go func() {
		_, err := s.submit(ctx, xs[0])
		cancelledErr <- err
	}()
	waitDepth(t, s, 1)

	type out struct {
		y   []float64
		err error
	}
	outs := make([]chan out, 4)
	sub := func(i int) {
		outs[i] = make(chan out, 1)
		go func() {
			y, err := s.submit(context.Background(), xs[1+i])
			outs[i] <- out{y, err}
		}()
	}
	sub(0)
	sub(1)
	waitDepth(t, s, 3) // A (cancellable) + two batchmates, one short of a flush

	// Cancel the first request: it leaves the queue immediately, so the
	// batch is further from full and the batchmates keep waiting.
	cancel()
	if err := <-cancelledErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled request returned %v, want context.Canceled", err)
	}
	if d := s.metrics().QueueDepth; d != 2 {
		t.Fatalf("queue depth after cancel = %d, want 2", d)
	}

	// Two fresh requests fill the batch and trigger the flush.
	sub(2)
	sub(3)

	want := make([]float64, a.Rows)
	check := func(x, y []float64) {
		t.Helper()
		a.MulVec(x, want)
		for i := range want {
			if diff := y[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("batchmate result corrupted at %d: %v want %v", i, y[i], want[i])
			}
		}
	}
	for i := 0; i < 4; i++ {
		o := <-outs[i]
		if o.err != nil {
			t.Fatalf("batchmate %d: %v", i, o.err)
		}
		check(xs[1+i], o.y)
	}

	m := s.metrics()
	if m.Cancelled != 1 {
		t.Fatalf("cancelled = %d, want 1", m.Cancelled)
	}
	if m.Requests != 4 || m.Batches != 1 {
		t.Fatalf("metrics = %+v, want one batch of 4 live requests", m)
	}
}

// TestCancelStormNoRace hammers the scheduler with short-deadline
// submissions and writes each caller's x slice the moment submit
// returns — the pattern /v1/solve's CG produces when a client
// disconnects mid-iteration. Run under -race this pins the contract
// that submit never returns while a flush still reads x.
func TestCancelStormNoRace(t *testing.T) {
	a := testMatrix(t, 20, 20)
	s := newTestScheduler(t, a, Options{MaxBatch: 4, MaxWait: 100 * time.Microsecond})

	const clients = 16
	var wg sync.WaitGroup
	deadline := time.Now().Add(150 * time.Millisecond)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(c)))
			x := randVec(r, a.Cols)
			for time.Now().Before(deadline) {
				ctx, cancel := context.WithTimeout(context.Background(),
					time.Duration(r.Intn(300))*time.Microsecond)
				_, err := s.submit(ctx, x)
				cancel()
				if err != nil && !errors.Is(err, context.DeadlineExceeded) {
					t.Errorf("client %d: %v", c, err)
					return
				}
				// Reuse x immediately, like an iterative solver would.
				x[r.Intn(len(x))] = r.Float64()
			}
		}(c)
	}
	wg.Wait()
}

// TestSubmitOverload: the bounded queue rejects the request past
// MaxQueue with a typed overload error, without blocking.
func TestSubmitOverload(t *testing.T) {
	a := testMatrix(t, 12, 12)
	s := newTestScheduler(t, a, Options{MaxBatch: 64, MaxWait: time.Hour, MaxQueue: 2})
	r := rand.New(rand.NewSource(11))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 2; i++ {
		go s.submit(ctx, randVec(r, a.Cols)) //nolint:errcheck // unblocked by cancel
	}
	waitDepth(t, s, 2)

	_, err := s.submit(context.Background(), randVec(r, a.Cols))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Limit != 2 {
		t.Fatalf("err = %#v, want *OverloadError with Limit 2", err)
	}
	if m := s.metrics(); m.Overloads != 1 {
		t.Fatalf("overloads = %d, want 1", m.Overloads)
	}
}

// TestSubmitAfterClose: submissions after close fail with ErrClosed and
// close drains queued work first.
func TestSubmitAfterClose(t *testing.T) {
	a := testMatrix(t, 12, 12)
	s := newScheduler(buildEngine(t, a, "s2d", 4, 1), a.Rows, a.Cols,
		Options{}.withDefaults(), EngineKey{}, "", nil, nil)
	r := rand.New(rand.NewSource(13))
	x := randVec(r, a.Cols)
	if _, err := s.submit(context.Background(), x); err != nil {
		t.Fatal(err)
	}
	s.close()
	s.close() // idempotent
	if _, err := s.submit(context.Background(), x); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// TestSubmitDimensionError: admission control rejects wrong-sized
// vectors before they reach the engine.
func TestSubmitDimensionError(t *testing.T) {
	a := testMatrix(t, 12, 12)
	s := newTestScheduler(t, a, Options{})
	_, err := s.submit(context.Background(), make([]float64, a.Cols+1))
	var de *DimensionError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DimensionError", err)
	}
}

// TestCoalescedBitwiseEqualsSolo is the correctness half of the serving
// acceptance criterion: results demultiplexed from coalesced batches
// must be bit-identical to solo engine Multiply calls, across engine
// schedules (fused s2D, two-phase 2D, routed s2D-b, medium-grain).
func TestCoalescedBitwiseEqualsSolo(t *testing.T) {
	a := testMatrix(t, 16, 14)
	const k, seed = 4, 1
	for _, name := range []string{"1d", "2d", "2d-b", "s2d", "s2d-b", "s2d-mg"} {
		t.Run(name, func(t *testing.T) {
			solo := buildEngine(t, a, name, k, seed)
			defer solo.Close()
			s := newScheduler(buildEngine(t, a, name, k, seed), a.Rows, a.Cols,
				Options{MaxBatch: 8, MaxWait: 2 * time.Millisecond}.withDefaults(), EngineKey{}, "", nil, nil)
			defer s.close()

			r := rand.New(rand.NewSource(17))
			const n = 24
			xs := make([][]float64, n)
			for i := range xs {
				xs[i] = randVec(r, a.Cols)
			}
			got := make([][]float64, n)
			errs := make([]error, n)
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					got[i], errs[i] = s.submit(context.Background(), xs[i])
				}(i)
			}
			wg.Wait()

			want := make([]float64, a.Rows)
			for i := 0; i < n; i++ {
				if errs[i] != nil {
					t.Fatalf("request %d: %v", i, errs[i])
				}
				solo.Multiply(xs[i], want)
				for j := range want {
					if got[i][j] != want[j] {
						t.Fatalf("request %d: y[%d] = %v, want %v (not bit-identical)",
							i, j, got[i][j], want[j])
					}
				}
			}
			if m := s.metrics(); m.Requests != n {
				t.Fatalf("requests = %d, want %d", m.Requests, n)
			}
		})
	}
}

// TestCoalescingThroughputUnderLoad is the performance half of the
// acceptance criterion: with >= 32 in-flight clients and maxBatch=8 the
// coalescing scheduler must achieve a mean batch width above 2 and more
// requests/sec than a no-batching baseline that serializes solo
// Multiply calls on an identical engine.
func TestCoalescingThroughputUnderLoad(t *testing.T) {
	a := testMatrix(t, 50, 50) // 2500 rows, ~12k nnz
	const (
		clients  = 32
		duration = 400 * time.Millisecond
	)
	r := rand.New(rand.NewSource(19))
	xs := make([][]float64, clients)
	for i := range xs {
		xs[i] = randVec(r, a.Cols)
	}

	// Baseline: same engine build, solo Multiply behind a mutex (the only
	// safe no-batching way to share an engine across goroutines).
	solo := buildEngine(t, a, "s2d", 4, 1)
	defer solo.Close()
	var soloMu sync.Mutex
	soloOps := loadLoop(clients, duration, func(c int) {
		y := make([]float64, a.Rows)
		soloMu.Lock()
		solo.Multiply(xs[c], y)
		soloMu.Unlock()
	})

	s := newScheduler(buildEngine(t, a, "s2d", 4, 1), a.Rows, a.Cols,
		Options{MaxBatch: 8, MaxWait: 200 * time.Microsecond}.withDefaults(), EngineKey{}, "", nil, nil)
	defer s.close()
	coalescedOps := loadLoop(clients, duration, func(c int) {
		if _, err := s.submit(context.Background(), xs[c]); err != nil {
			t.Error(err)
		}
	})

	m := s.metrics()
	t.Logf("solo %d ops, coalesced %d ops, mean batch %.2f over %d batches",
		soloOps, coalescedOps, m.MeanBatch, m.Batches)
	if m.MeanBatch <= 2 {
		t.Errorf("mean batch width = %.2f, want > 2", m.MeanBatch)
	}
	if coalescedOps <= soloOps {
		t.Errorf("coalesced throughput %d ops <= solo %d ops", coalescedOps, soloOps)
	}
}

// loadLoop runs clients goroutines hammering op until the duration
// elapses and returns total completed operations.
func loadLoop(clients int, d time.Duration, op func(c int)) int {
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		total int
	)
	deadline := time.Now().Add(d)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			n := 0
			for time.Now().Before(deadline) {
				op(c)
				n++
			}
			mu.Lock()
			total += n
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	return total
}

// TestSchedulerManyBatches drives enough sequential traffic through a
// small-batch scheduler to exercise the window-restart path (requests
// left over after a full flush start a fresh maxWait window).
func TestSchedulerManyBatches(t *testing.T) {
	a := testMatrix(t, 10, 10)
	s := newTestScheduler(t, a, Options{MaxBatch: 2, MaxWait: time.Millisecond})
	r := rand.New(rand.NewSource(23))

	const n = 40
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		x := randVec(r, a.Cols)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.submit(context.Background(), x); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	m := s.metrics()
	if m.Requests != n {
		t.Fatalf("requests = %d, want %d", m.Requests, n)
	}
	if m.Batches == 0 || m.Batches > n {
		t.Fatalf("batches = %d, want in [%d, %d]", m.Batches, (n+1)/2, n)
	}
	if fmt.Sprintf("%.3f", m.MeanBatch) == "0.000" {
		t.Fatal("mean batch width unrecorded")
	}
}

// TestCoalescedTransposeBitwiseEqualsSolo mixes concurrent forward and
// transpose submissions on one scheduler and checks both directions
// against solo engine calls bit for bit — flushes must stay homogeneous
// in direction, whatever interleaving the queue sees.
func TestCoalescedTransposeBitwiseEqualsSolo(t *testing.T) {
	a := testMatrix(t, 16, 14)
	const k, seed = 4, 1
	for _, name := range []string{"s2d", "2d", "s2d-b"} {
		t.Run(name, func(t *testing.T) {
			solo := buildEngine(t, a, name, k, seed)
			defer solo.Close()
			s := newScheduler(buildEngine(t, a, name, k, seed), a.Rows, a.Cols,
				Options{MaxBatch: 8, MaxWait: 2 * time.Millisecond}.withDefaults(), EngineKey{}, "", nil, nil)
			defer s.close()

			r := rand.New(rand.NewSource(29))
			const n = 24
			xs := make([][]float64, n)
			for i := range xs {
				if i%2 == 0 {
					xs[i] = randVec(r, a.Cols) // forward
				} else {
					xs[i] = randVec(r, a.Rows) // transpose
				}
			}
			got := make([][]float64, n)
			errs := make([]error, n)
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					if i%2 == 0 {
						got[i], errs[i] = s.submit(context.Background(), xs[i])
					} else {
						got[i], errs[i] = s.submitT(context.Background(), xs[i])
					}
				}(i)
			}
			wg.Wait()

			wantF := make([]float64, a.Rows)
			wantT := make([]float64, a.Cols)
			for i := 0; i < n; i++ {
				if errs[i] != nil {
					t.Fatalf("request %d: %v", i, errs[i])
				}
				want := wantF
				if i%2 == 0 {
					solo.Multiply(xs[i], wantF)
				} else {
					solo.MultiplyTranspose(xs[i], wantT)
					want = wantT
				}
				for j := range want {
					if got[i][j] != want[j] {
						t.Fatalf("request %d: y[%d] = %v, want %v (not bit-identical)",
							i, j, got[i][j], want[j])
					}
				}
			}
			if m := s.metrics(); m.Requests != n {
				t.Fatalf("requests = %d, want %d", m.Requests, n)
			}
		})
	}
}

// TestSubmitTransposeDimensionError: transpose admission control checks
// against the row dimension, not the column one.
func TestSubmitTransposeDimensionError(t *testing.T) {
	a := testMatrix(t, 12, 10) // 120 rows == 120 cols only if square; use rect below
	s := newTestScheduler(t, a, Options{})
	if _, err := s.submitT(context.Background(), make([]float64, a.Rows+1)); err == nil {
		t.Fatal("oversized transpose x accepted")
	}
	if _, err := s.submitT(context.Background(), make([]float64, a.Rows)); err != nil {
		t.Fatalf("correctly sized transpose x rejected: %v", err)
	}
}

// TestMixedDirectionQueueHonorsWaitWindow pins the wait-window rule
// under mixed traffic: the flushable batch is the homogeneous head run,
// so a lone forward request in front of a queue of transpose requests
// must keep aging its MaxWait window — total queue length alone must
// not trigger an immediate sub-width flush.
func TestMixedDirectionQueueHonorsWaitWindow(t *testing.T) {
	a := testMatrix(t, 12, 12)
	s := newTestScheduler(t, a, Options{MaxBatch: 2, MaxWait: time.Hour})
	r := rand.New(rand.NewSource(31))

	fx := randVec(r, a.Cols)
	tx := [2][]float64{randVec(r, a.Rows), randVec(r, a.Rows)}
	results := make(chan error, 3)
	go func() {
		_, err := s.submit(context.Background(), fx)
		results <- err
	}()
	waitDepth(t, s, 1)
	for i := 0; i < 2; i++ {
		go func(i int) {
			_, err := s.submitT(context.Background(), tx[i])
			results <- err
		}(i)
	}
	waitDepth(t, s, 3)

	// Queue length (3) exceeds MaxBatch (2), but the head run is a single
	// forward request: nothing may flush while its hour-long window ages.
	time.Sleep(50 * time.Millisecond)
	if m := s.metrics(); m.Batches != 0 || m.QueueDepth != 3 {
		t.Fatalf("metrics = %+v, want 3 queued and no premature flush", m)
	}

	// close drains the queue: every request completes without error.
	s.close()
	for i := 0; i < 3; i++ {
		if err := <-results; err != nil {
			t.Fatalf("drained request: %v", err)
		}
	}
	if m := s.metrics(); m.Requests != 3 {
		t.Fatalf("requests = %d, want 3 after drain", m.Requests)
	}
}
