package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/serve/faultinject"
	"repro/internal/sparse"
	"repro/internal/wire"
)

// contractEnv is what every error response must decode into.
func decodeEnvelope(t *testing.T, body []byte) ErrorEnvelope {
	t.Helper()
	var env ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("error body %q is not the envelope: %v", body, err)
	}
	if env.Error == "" || env.Code == "" {
		t.Fatalf("envelope %q missing error/code", body)
	}
	return env
}

func mustFrame(t *testing.T, f *wire.Frame) []byte {
	t.Helper()
	buf, err := wire.Append(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestHTTPContractTable enumerates every (endpoint, error code) pair the
// API can produce on request-shaped input, pinning status, envelope
// shape, the retryable flag, and Retry-After presence. Engine-runtime
// codes (quarantined, engine_fault) are pinned by fault_test.go; the
// overload and deadline rows here stage the queue states that produce
// them.
func TestHTTPContractTable(t *testing.T) {
	keyedReg := func(t *testing.T) *TenantRegistry {
		r, err := NewTenantRegistry(TenantSpec{Name: "alice", Key: "ka"})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	jsonBody := func(v any) func(t *testing.T) []byte {
		return func(t *testing.T) []byte {
			b, err := json.Marshal(v)
			if err != nil {
				t.Fatal(err)
			}
			return b
		}
	}
	x196 := make([]float64, 196)

	cases := []struct {
		name          string
		opt           Options // zero → default open pool
		maxUpload     int64   // override Server.MaxUploadBytes when > 0
		setup         func(t *testing.T, p *Pool, s *Server)
		method, path  string
		contentType   string
		auth          string
		body          func(t *testing.T) []byte
		wantStatus    int
		wantCode      string
		wantRetryable bool
		wantRetryHdr  bool
	}{
		// -- /v1/multiply --
		{name: "multiply malformed json", method: "POST", path: "/v1/multiply",
			body:       func(*testing.T) []byte { return []byte("{nope") },
			wantStatus: 400, wantCode: CodeBadRequest},
		{name: "multiply x and xs", method: "POST", path: "/v1/multiply",
			body:       jsonBody(multiplyRequest{engineRequest: engineRequest{Matrix: "lap"}, X: x196, Xs: [][]float64{x196}}),
			wantStatus: 400, wantCode: CodeBadRequest},
		{name: "multiply binary garbage", method: "POST", path: "/v1/multiply",
			contentType: wire.ContentType,
			body:        func(*testing.T) []byte { return []byte("not a frame") },
			wantStatus:  400, wantCode: CodeBadRequest},
		{name: "multiply binary wrong op", method: "POST", path: "/v1/multiply",
			contentType: wire.ContentType,
			body: func(t *testing.T) []byte {
				return mustFrame(t, &wire.Frame{Op: wire.OpSolveReq, Matrix: "lap", Vectors: [][]float64{x196}})
			},
			wantStatus: 400, wantCode: CodeBadRequest},
		{name: "multiply bad dimension", method: "POST", path: "/v1/multiply",
			body:       jsonBody(multiplyRequest{engineRequest: engineRequest{Matrix: "lap"}, X: make([]float64, 7)}),
			wantStatus: 400, wantCode: CodeBadDimension},
		{name: "multiply unknown matrix", method: "POST", path: "/v1/multiply",
			body:       jsonBody(multiplyRequest{engineRequest: engineRequest{Matrix: "nope"}, X: x196}),
			wantStatus: 404, wantCode: CodeUnknownMatrix},
		{name: "multiply unknown method", method: "POST", path: "/v1/multiply",
			body:       jsonBody(multiplyRequest{engineRequest: engineRequest{Matrix: "lap", Method: "bogus"}, X: x196}),
			wantStatus: 404, wantCode: CodeUnknownMethod},
		{name: "multiply missing auth", method: "POST", path: "/v1/multiply",
			opt:        Options{Tenants: nil}, // replaced by keyed below
			body:       jsonBody(multiplyRequest{engineRequest: engineRequest{Matrix: "lap"}, X: x196}),
			wantStatus: 401, wantCode: CodeUnauthorized,
			setup: func(t *testing.T, p *Pool, s *Server) { p.opt.Tenants = keyedReg(t) }},
		{name: "multiply bad key", method: "POST", path: "/v1/multiply",
			auth:       "Bearer wrong",
			body:       jsonBody(multiplyRequest{engineRequest: engineRequest{Matrix: "lap"}, X: x196}),
			wantStatus: 401, wantCode: CodeUnauthorized,
			setup: func(t *testing.T, p *Pool, s *Server) { p.opt.Tenants = keyedReg(t) }},
		{name: "multiply overloaded", method: "POST", path: "/v1/multiply",
			opt: Options{MaxQueue: 1, MaxBatch: 64, MaxWait: time.Hour},
			setup: func(t *testing.T, p *Pool, s *Server) {
				h, err := p.Acquire("lap", "s2d", 4)
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(h.Release)
				sc := h.e.sched
				tn := p.Tenants().Default()
				sc.mu.Lock()
				sc.oldest = time.Now()
				q := sc.queueForLocked(tn)
				q.reqs = append(q.reqs, &request{tn: tn, done: make(chan struct{}), enq: sc.oldest})
				sc.nq++
				sc.mu.Unlock()
				t.Cleanup(func() {
					sc.mu.Lock()
					sc.tq = make(map[*Tenant]*tenantQueue)
					sc.nq = 0
					sc.mu.Unlock()
				})
			},
			body:       jsonBody(multiplyRequest{engineRequest: engineRequest{Matrix: "lap"}, X: x196}),
			wantStatus: 429, wantCode: CodeOverloaded, wantRetryable: true, wantRetryHdr: true},
		{name: "multiply deadline", method: "POST", path: "/v1/multiply",
			opt: Options{MaxBatch: 1, MaxWait: time.Millisecond, FlushDelay: 500 * time.Millisecond,
				Injector: faultinject.New(faultinject.Rule{Point: "flush.slow", Nth: 1})},
			setup: func(t *testing.T, p *Pool, s *Server) {
				h, err := p.Acquire("lap", "s2d", 4)
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(h.Release)
				done := make(chan struct{})
				go func() { // first request absorbs the slow flush and holds the runner
					defer close(done)
					h.Multiply(context.Background(), make([]float64, 196))
				}()
				t.Cleanup(func() { <-done })
				time.Sleep(50 * time.Millisecond)
			},
			body: jsonBody(multiplyRequest{engineRequest: engineRequest{Matrix: "lap"},
				X: x196, DeadlineMs: 50}),
			wantStatus: 504, wantCode: CodeDeadline, wantRetryable: true},

		// -- /v1/solve --
		{name: "solve malformed json", method: "POST", path: "/v1/solve",
			body:       func(*testing.T) []byte { return []byte("{nope") },
			wantStatus: 400, wantCode: CodeBadRequest},
		{name: "solve unknown solver", method: "POST", path: "/v1/solve",
			body:       jsonBody(solveRequest{engineRequest: engineRequest{Matrix: "lap"}, B: x196, Solver: "gmres"}),
			wantStatus: 400, wantCode: CodeBadRequest},
		{name: "solve bad dimension", method: "POST", path: "/v1/solve",
			body:       jsonBody(solveRequest{engineRequest: engineRequest{Matrix: "lap"}, B: make([]float64, 3)}),
			wantStatus: 400, wantCode: CodeBadDimension},
		{name: "solve unknown matrix", method: "POST", path: "/v1/solve",
			body:       jsonBody(solveRequest{engineRequest: engineRequest{Matrix: "nope"}, B: x196}),
			wantStatus: 404, wantCode: CodeUnknownMatrix},
		{name: "solve cg on rectangular", method: "POST", path: "/v1/solve",
			setup: func(t *testing.T, p *Pool, s *Server) { tallTestMatrix(t, p, "tall", 90, 30) },
			body: jsonBody(solveRequest{engineRequest: engineRequest{Matrix: "tall", K: 4},
				B: make([]float64, 90), Solver: "cg"}),
			wantStatus: 422, wantCode: CodeUnprocessable},
		{name: "solve missing auth", method: "POST", path: "/v1/solve",
			body:       jsonBody(solveRequest{engineRequest: engineRequest{Matrix: "lap"}, B: x196}),
			wantStatus: 401, wantCode: CodeUnauthorized,
			setup: func(t *testing.T, p *Pool, s *Server) { p.opt.Tenants = keyedReg(t) }},
		{name: "solve binary multi rhs", method: "POST", path: "/v1/solve",
			contentType: wire.ContentType,
			body: func(t *testing.T) []byte {
				return mustFrame(t, &wire.Frame{Op: wire.OpSolveReq, Matrix: "lap",
					Vectors: [][]float64{x196, x196}})
			},
			wantStatus: 400, wantCode: CodeBadRequest},

		// -- POST /v1/matrices --
		{name: "upload garbage", method: "POST", path: "/v1/matrices?name=bad",
			body:       func(*testing.T) []byte { return []byte("not a matrix") },
			wantStatus: 400, wantCode: CodeBadRequest},
		{name: "upload blank name", method: "POST", path: "/v1/matrices?name=%20%20",
			body:       func(*testing.T) []byte { return []byte("x") },
			wantStatus: 400, wantCode: CodeBadRequest},
		{name: "upload path separator", method: "POST", path: "/v1/matrices?name=a%2Fb",
			body:       func(*testing.T) []byte { return []byte("x") },
			wantStatus: 400, wantCode: CodeBadRequest},
		{name: "upload long name", method: "POST", path: "/v1/matrices?name=" + strings.Repeat("a", 129),
			body:       func(*testing.T) []byte { return []byte("x") },
			wantStatus: 400, wantCode: CodeBadRequest},
		{name: "upload duplicate name", method: "POST", path: "/v1/matrices?name=lap",
			body: func(t *testing.T) []byte {
				var buf bytes.Buffer
				if err := sparse.WriteMatrixMarket(&buf, testMatrix(t, 6, 6)); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			},
			wantStatus: 409, wantCode: CodeConflict},
		{name: "upload too large", method: "POST", path: "/v1/matrices?name=big",
			maxUpload: 64,
			body: func(t *testing.T) []byte {
				// A well-formed matrix whose body crosses the limit while
				// streaming entries — the limit must trip, not a parse error.
				var buf bytes.Buffer
				if err := sparse.WriteMatrixMarket(&buf, testMatrix(t, 8, 8)); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			},
			wantStatus: 413, wantCode: CodePayloadTooLarge},
		{name: "upload missing auth", method: "POST", path: "/v1/matrices?name=x",
			body:       func(*testing.T) []byte { return []byte("x") },
			wantStatus: 401, wantCode: CodeUnauthorized,
			setup: func(t *testing.T, p *Pool, s *Server) { p.opt.Tenants = keyedReg(t) }},

		// -- GET /v1/matrices/{name} --
		{name: "matrix get unknown", method: "GET", path: "/v1/matrices/nope",
			wantStatus: 404, wantCode: CodeUnknownMatrix},

		// -- DELETE /v1/matrices/{name} --
		{name: "matrix delete unknown", method: "DELETE", path: "/v1/matrices/nope",
			wantStatus: 404, wantCode: CodeUnknownMatrix},
		{name: "matrix delete pinned", method: "DELETE", path: "/v1/matrices/lap",
			setup: func(t *testing.T, p *Pool, s *Server) {
				h, err := p.Acquire("lap", "s2d", 4)
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(h.Release)
			},
			wantStatus: 409, wantCode: CodeConflict},
		{name: "matrix delete missing auth", method: "DELETE", path: "/v1/matrices/lap",
			wantStatus: 401, wantCode: CodeUnauthorized,
			setup: func(t *testing.T, p *Pool, s *Server) { p.opt.Tenants = keyedReg(t) }},

		// -- /readyz --
		{name: "readyz draining", method: "GET", path: "/readyz",
			setup:      func(t *testing.T, p *Pool, s *Server) { s.SetDraining(true) },
			wantStatus: 503, wantCode: CodeDraining, wantRetryable: true},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opt := tc.opt
			if opt.Seed == 0 {
				opt.Seed = 1
			}
			p := NewPool(opt)
			t.Cleanup(p.Close)
			if err := p.AddMatrix("lap", testMatrix(t, 14, 14)); err != nil {
				t.Fatal(err)
			}
			srv := NewServer(p)
			if tc.maxUpload > 0 {
				srv.MaxUploadBytes = tc.maxUpload
			}
			if tc.setup != nil {
				tc.setup(t, p, srv)
			}
			ts := httptest.NewServer(srv)
			t.Cleanup(ts.Close)

			var body []byte
			if tc.body != nil {
				body = tc.body(t)
			}
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			ct := tc.contentType
			if ct == "" {
				ct = "application/json"
			}
			req.Header.Set("Content-Type", ct)
			if tc.auth != "" {
				req.Header.Set("Authorization", tc.auth)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			var out bytes.Buffer
			out.ReadFrom(resp.Body)
			resp.Body.Close()

			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, tc.wantStatus, out.Bytes())
			}
			env := decodeEnvelope(t, out.Bytes())
			if env.Code != tc.wantCode {
				t.Fatalf("code %q, want %q (%s)", env.Code, tc.wantCode, out.Bytes())
			}
			if env.Retryable != tc.wantRetryable {
				t.Fatalf("retryable %v, want %v", env.Retryable, tc.wantRetryable)
			}
			if tc.wantRetryHdr {
				if resp.Header.Get("Retry-After") == "" || resp.Header.Get("X-Retry-After-Ms") == "" {
					t.Fatalf("retryable %s missing Retry-After headers", env.Code)
				}
				if env.RetryAfterMs <= 0 {
					t.Fatalf("retry_after_ms = %d, want > 0", env.RetryAfterMs)
				}
			}
			// Error responses are the JSON envelope even on binary requests.
			if got := resp.Header.Get("Content-Type"); !strings.HasPrefix(got, "application/json") {
				t.Fatalf("error Content-Type %q, want application/json", got)
			}
		})
	}
}

// postRaw sends body with the given content type and returns the
// response with its body drained.
func postRaw(t *testing.T, url, contentType, auth string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("POST", url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", contentType)
	if auth != "" {
		req.Header.Set("Authorization", auth)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp, out.Bytes()
}

// TestJSONBinaryBitIdentical is the tentpole contract: the same
// multi-RHS multiply through JSON and through the binary frame path
// returns bit-identical floats, forward and transpose.
func TestJSONBinaryBitIdentical(t *testing.T) {
	ts, p := newTestServer(t)
	a, err := p.Matrix("lap")
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(11))
	for _, transpose := range []bool{false, true} {
		n := a.Cols
		if transpose {
			n = a.Rows
		}
		xs := make([][]float64, 8)
		for i := range xs {
			xs[i] = randVec(r, n)
		}

		jreq, _ := json.Marshal(multiplyRequest{
			engineRequest: engineRequest{Matrix: "lap", Method: "s2d", K: 4},
			Xs:            xs, Transpose: transpose,
		})
		resp, jbody := postRaw(t, ts.URL+"/v1/multiply", "application/json", "", jreq)
		if resp.StatusCode != 200 {
			t.Fatalf("json multiply: %d %s", resp.StatusCode, jbody)
		}
		var jresp multiplyResponse
		if err := json.Unmarshal(jbody, &jresp); err != nil {
			t.Fatal(err)
		}

		breq := mustFrame(t, &wire.Frame{
			Op: wire.OpMultiplyReq, Matrix: "lap", Method: "s2d", K: 4,
			Vectors: xs, Transpose: transpose,
		})
		resp, bbody := postRaw(t, ts.URL+"/v1/multiply", wire.ContentType, "", breq)
		if resp.StatusCode != 200 {
			t.Fatalf("binary multiply: %d %s", resp.StatusCode, bbody)
		}
		if got := resp.Header.Get("Content-Type"); got != wire.ContentType {
			t.Fatalf("binary response Content-Type %q", got)
		}
		bframe, err := wire.Decode(bbody)
		if err != nil {
			t.Fatal(err)
		}
		if bframe.Op != wire.OpMultiplyResp || bframe.Transpose != transpose {
			t.Fatalf("response frame meta: %+v", bframe)
		}

		if len(jresp.Ys) != 8 || len(bframe.Vectors) != 8 {
			t.Fatalf("nrhs: json %d binary %d, want 8", len(jresp.Ys), len(bframe.Vectors))
		}
		for i := range jresp.Ys {
			for j := range jresp.Ys[i] {
				jb := math.Float64bits(jresp.Ys[i][j])
				bb := math.Float64bits(bframe.Vectors[i][j])
				if jb != bb {
					t.Fatalf("transpose=%v ys[%d][%d]: json bits %x, binary bits %x", transpose, i, j, jb, bb)
				}
			}
		}
	}
}

// TestHTTPMultiRHSAndTranspose checks the JSON xs/transpose surface
// against the serial reference.
func TestHTTPMultiRHSAndTranspose(t *testing.T) {
	ts, p := newTestServer(t)
	a, err := p.Matrix("lap")
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(13))
	xs := make([][]float64, 3)
	for i := range xs {
		xs[i] = randVec(r, a.Cols)
	}
	resp, body := postJSON(t, ts.URL+"/v1/multiply", multiplyRequest{
		engineRequest: engineRequest{Matrix: "lap"}, Xs: xs,
	})
	if resp.StatusCode != 200 {
		t.Fatalf("multi-RHS: %d %s", resp.StatusCode, body)
	}
	var mr multiplyResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Y != nil || len(mr.Ys) != 3 {
		t.Fatalf("multi-RHS response shape: y=%v ys=%d", mr.Y != nil, len(mr.Ys))
	}
	want := make([]float64, a.Rows)
	for i := range xs {
		a.MulVec(xs[i], want)
		for j := range want {
			if math.Abs(mr.Ys[i][j]-want[j]) > 1e-9 {
				t.Fatalf("ys[%d][%d] = %v, want %v", i, j, mr.Ys[i][j], want[j])
			}
		}
	}

	// Transpose: y ← Aᵀx against a hand-rolled reference.
	x := randVec(r, a.Rows)
	resp, body = postJSON(t, ts.URL+"/v1/multiply", multiplyRequest{
		engineRequest: engineRequest{Matrix: "lap"}, X: x, Transpose: true,
	})
	if resp.StatusCode != 200 {
		t.Fatalf("transpose: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	ref := make([]float64, a.Cols)
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			ref[a.ColIdx[p]] += a.Val[p] * x[i]
		}
	}
	for j := range ref {
		if math.Abs(mr.Y[j]-ref[j]) > 1e-9 {
			t.Fatalf("transpose y[%d] = %v, want %v", j, mr.Y[j], ref[j])
		}
	}
}

// TestHTTPBinarySolve drives /v1/solve over the wire format and checks
// the solution is bit-identical to the JSON path.
func TestHTTPBinarySolve(t *testing.T) {
	ts, p := newTestServer(t)
	a, err := p.Matrix("lap")
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(17))
	b := randVec(r, a.Rows)

	jreq, _ := json.Marshal(solveRequest{
		engineRequest: engineRequest{Matrix: "lap", Method: "s2d", K: 4},
		B:             b, Tol: 1e-10, MaxIter: 2000,
	})
	resp, jbody := postRaw(t, ts.URL+"/v1/solve", "application/json", "", jreq)
	if resp.StatusCode != 200 {
		t.Fatalf("json solve: %d %s", resp.StatusCode, jbody)
	}
	var jresp solveResponse
	if err := json.Unmarshal(jbody, &jresp); err != nil {
		t.Fatal(err)
	}

	breq := mustFrame(t, &wire.Frame{
		Op: wire.OpSolveReq, Matrix: "lap", Method: "s2d", K: 4,
		Vectors: [][]float64{b}, Tol: 1e-10, MaxIter: 2000,
	})
	resp, bbody := postRaw(t, ts.URL+"/v1/solve", wire.ContentType, "", breq)
	if resp.StatusCode != 200 {
		t.Fatalf("binary solve: %d %s", resp.StatusCode, bbody)
	}
	f, err := wire.Decode(bbody)
	if err != nil {
		t.Fatal(err)
	}
	if f.Op != wire.OpSolveResp || !f.Converged || f.MaxIter != jresp.Iterations {
		t.Fatalf("solve frame meta: %+v vs json %+v", f, jresp)
	}
	if math.Float64bits(f.Tol) != math.Float64bits(jresp.Residual) {
		t.Fatalf("residual bits differ: %x vs %x", math.Float64bits(f.Tol), math.Float64bits(jresp.Residual))
	}
	for i := range jresp.X {
		if math.Float64bits(f.Vectors[0][i]) != math.Float64bits(jresp.X[i]) {
			t.Fatalf("x[%d] differs between encodings", i)
		}
	}
}

// TestHTTPMatricesResource covers the happy paths of the matrices
// resource: list, detail with engine rows, refcount-safe delete.
func TestHTTPMatricesResource(t *testing.T) {
	ts, p := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/matrices")
	if err != nil {
		t.Fatal(err)
	}
	var list matrixListResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Matrices) != 1 || list.Matrices[0].Name != "lap" {
		t.Fatalf("list = %+v", list)
	}

	// Warm an engine so the detail view shows kernel choices.
	if resp, body := postJSON(t, ts.URL+"/v1/multiply", multiplyRequest{
		engineRequest: engineRequest{Matrix: "lap"}, X: make([]float64, 196),
	}); resp.StatusCode != 200 {
		t.Fatalf("warm multiply: %d %s", resp.StatusCode, body)
	}
	resp, err = http.Get(ts.URL + "/v1/matrices/lap")
	if err != nil {
		t.Fatal(err)
	}
	var d matrixDetail
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d.Name != "lap" || d.Rows != 196 || len(d.Engines) != 1 {
		t.Fatalf("detail = %+v", d)
	}
	if d.Engines[0].Schedule == "" || d.Engines[0].Kernel == "" {
		t.Fatalf("engine row missing schedule/kernel: %+v", d.Engines[0])
	}

	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/matrices/lap", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d, want 204", resp.StatusCode)
	}
	if _, err := p.Matrix("lap"); err == nil {
		t.Fatal("matrix still registered after delete")
	}
	// Idempotence: the second delete is a clean 404.
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("second delete: %d, want 404", resp.StatusCode)
	}
}

// TestHTTPTenantEndToEnd drives an authenticated multiply through both
// encodings and checks the per-tenant counters surface in /metrics.
func TestHTTPTenantEndToEnd(t *testing.T) {
	reg, err := NewTenantRegistry(TenantSpec{Name: "alice", Key: "ka", Weight: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(Options{Seed: 1, Tenants: reg})
	t.Cleanup(p.Close)
	if err := p.AddMatrix("lap", testMatrix(t, 14, 14)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(p))
	t.Cleanup(ts.Close)

	x := randVec(rand.New(rand.NewSource(23)), 196)
	jreq, _ := json.Marshal(multiplyRequest{engineRequest: engineRequest{Matrix: "lap"}, X: x})
	resp, body := postRaw(t, ts.URL+"/v1/multiply", "application/json", "Bearer ka", jreq)
	if resp.StatusCode != 200 {
		t.Fatalf("authed multiply: %d %s", resp.StatusCode, body)
	}
	breq := mustFrame(t, &wire.Frame{Op: wire.OpMultiplyReq, Matrix: "lap", Vectors: [][]float64{x}})
	resp, body = postRaw(t, ts.URL+"/v1/multiply", wire.ContentType, "Bearer ka", breq)
	if resp.StatusCode != 200 {
		t.Fatalf("authed binary multiply: %d %s", resp.StatusCode, body)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var pm PoolMetrics
	if err := json.NewDecoder(mresp.Body).Decode(&pm); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	var alice *TenantMetrics
	for i := range pm.Tenants {
		if pm.Tenants[i].Name == "alice" {
			alice = &pm.Tenants[i]
		}
	}
	if alice == nil {
		t.Fatalf("tenant alice missing from /metrics: %+v", pm.Tenants)
	}
	if alice.Requests != 2 || alice.Weight != 2 {
		t.Fatalf("alice = %+v, want 2 requests at weight 2", alice)
	}
	if alice.BytesInJSON == 0 || alice.BytesOutJSON == 0 || alice.BytesInBinary == 0 || alice.BytesOutBinary == 0 {
		t.Fatalf("byte counters not accrued: %+v", alice)
	}
	// The binary encoding moves fewer bytes for the same request.
	if alice.BytesInBinary >= alice.BytesInJSON {
		t.Fatalf("binary request (%d B) not smaller than JSON (%d B)", alice.BytesInBinary, alice.BytesInJSON)
	}
}
