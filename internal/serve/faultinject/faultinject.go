// Package faultinject is a deterministic fault-injection harness for the
// serving stack. Production code calls Fire(point) at named injection
// points; an Injector armed with a schedule decides — by exact hit count,
// so runs are reproducible — whether that hit should fault. A nil
// *Injector is inert and free, so the hooks can stay compiled into the
// serving path.
//
// Points wired into internal/serve:
//
//	worker.panic  — panic inside an spmv worker goroutine (engine poison)
//	flush.panic   — panic in the scheduler flush, outside the engine
//	flush.nan     — corrupt one flushed payload with NaN
//	flush.slow    — stall a flush by the configured delay
//	build.fail    — fail an engine (re)build in the pool
package faultinject

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Rule arms one injection point: hits number Nth, Nth+1, …, Nth+Count-1
// (1-based) fire. Count <= 0 means 1.
type Rule struct {
	Point string
	Nth   int
	Count int
}

// Injector counts hits per point and fires according to its rules. All
// methods are safe for concurrent use and nil-safe, so call sites need no
// guards.
type Injector struct {
	mu    sync.Mutex
	rules map[string][]Rule
	hits  map[string]int
	fired map[string]int
}

// New builds an injector from a set of rules.
func New(rules ...Rule) *Injector {
	inj := &Injector{
		rules: make(map[string][]Rule),
		hits:  make(map[string]int),
		fired: make(map[string]int),
	}
	for _, r := range rules {
		if r.Count <= 0 {
			r.Count = 1
		}
		inj.rules[r.Point] = append(inj.rules[r.Point], r)
	}
	return inj
}

// ParseSchedule parses the -faults flag form: comma-separated
// point@nth[xcount] entries, e.g. "worker.panic@40,build.fail@2x3".
func ParseSchedule(s string) ([]Rule, error) {
	var rules []Rule
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		point, spec, ok := strings.Cut(part, "@")
		if !ok || point == "" {
			return nil, fmt.Errorf("faultinject: %q is not point@nth[xcount]", part)
		}
		nthS, cntS, hasCount := strings.Cut(spec, "x")
		nth, err := strconv.Atoi(nthS)
		if err != nil || nth < 1 {
			return nil, fmt.Errorf("faultinject: bad hit number in %q", part)
		}
		count := 1
		if hasCount {
			count, err = strconv.Atoi(cntS)
			if err != nil || count < 1 {
				return nil, fmt.Errorf("faultinject: bad count in %q", part)
			}
		}
		rules = append(rules, Rule{Point: point, Nth: nth, Count: count})
	}
	return rules, nil
}

// Fire records one hit of point and reports whether it should fault.
// A nil injector never fires.
func (inj *Injector) Fire(point string) bool {
	if inj == nil {
		return false
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.hits[point]++
	n := inj.hits[point]
	for _, r := range inj.rules[point] {
		if n >= r.Nth && n < r.Nth+r.Count {
			inj.fired[point]++
			return true
		}
	}
	return false
}

// Hits reports how many times point has been reached.
func (inj *Injector) Hits(point string) int {
	if inj == nil {
		return 0
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.hits[point]
}

// Fired reports how many hits of point actually faulted.
func (inj *Injector) Fired(point string) int {
	if inj == nil {
		return 0
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.fired[point]
}

// Stats summarizes every point that was reached, for chaos reports.
func (inj *Injector) Stats() map[string][2]int {
	if inj == nil {
		return nil
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := make(map[string][2]int, len(inj.hits))
	points := make([]string, 0, len(inj.hits))
	for p := range inj.hits {
		points = append(points, p)
	}
	sort.Strings(points)
	for _, p := range points {
		out[p] = [2]int{inj.hits[p], inj.fired[p]}
	}
	return out
}
