package faultinject

import "testing"

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	if inj.Fire("worker.panic") {
		t.Fatal("nil injector fired")
	}
	if inj.Hits("worker.panic") != 0 || inj.Fired("worker.panic") != 0 {
		t.Fatal("nil injector counted")
	}
}

func TestFireByHitCount(t *testing.T) {
	inj := New(Rule{Point: "p", Nth: 3, Count: 2})
	want := []bool{false, false, true, true, false, false}
	for i, w := range want {
		if got := inj.Fire("p"); got != w {
			t.Fatalf("hit %d fired=%v, want %v", i+1, got, w)
		}
	}
	if inj.Hits("p") != 6 || inj.Fired("p") != 2 {
		t.Fatalf("hits=%d fired=%d, want 6/2", inj.Hits("p"), inj.Fired("p"))
	}
	if inj.Fire("other") {
		t.Fatal("unruled point fired")
	}
}

func TestParseSchedule(t *testing.T) {
	rules, err := ParseSchedule("worker.panic@40, build.fail@2x3,flush.nan@1")
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Point: "worker.panic", Nth: 40, Count: 1},
		{Point: "build.fail", Nth: 2, Count: 3},
		{Point: "flush.nan", Nth: 1, Count: 1},
	}
	if len(rules) != len(want) {
		t.Fatalf("got %d rules, want %d", len(rules), len(want))
	}
	for i, r := range rules {
		if r != want[i] {
			t.Fatalf("rule %d = %+v, want %+v", i, r, want[i])
		}
	}
	for _, bad := range []string{"nope", "@3", "p@x", "p@0", "p@2x0"} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Fatalf("ParseSchedule(%q) accepted", bad)
		}
	}
}
