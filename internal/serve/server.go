package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/method"
	"repro/internal/solver"
	"repro/internal/sparse"
)

// Server is the HTTP JSON front end over a Pool. It implements
// http.Handler; cmd/spmvserve mounts it directly.
//
//	POST /v1/multiply  {"matrix","method","k","x":[...]}      → {"y":[...]}
//	POST /v1/solve     {"matrix","method","k","b":[...],...}  → {"x":[...],...}
//	GET  /v1/methods                                          → registry + matrices
//	POST /v1/matrices?name=N   (MatrixMarket body)            → {"name","rows",...}
//	GET  /metrics                                             → PoolMetrics
//	GET  /healthz                                             → liveness (always 200)
//	GET  /readyz                                              → readiness (503 while draining)
//
// Error mapping: unknown matrix/method 404, malformed request 400,
// oversized upload 413, admission-control overload 429 + Retry-After,
// engine quarantine or pool shutdown 503 + Retry-After, deadline 504.
// Retryable rejections carry both a standard integer-seconds Retry-After
// header (rounded up, minimum 1) and a precise X-Retry-After-Ms header;
// clients that understand the extension should prefer the latter.
type Server struct {
	pool *Pool
	mux  *http.ServeMux

	// DefaultMethod and DefaultK fill requests that omit them.
	DefaultMethod string
	DefaultK      int
	// DefaultDeadline bounds every multiply/solve that does not carry its
	// own deadline_ms; zero means no server-side deadline. Deadlines are
	// enforced before a request enqueues and inside the solver stop
	// hooks, so an expired request never widens a batch.
	DefaultDeadline time.Duration
	// MaxUploadBytes caps the /v1/matrices request body; larger uploads
	// fail with 413 (default 1 GiB).
	MaxUploadBytes int64

	draining atomic.Bool
}

// NewServer wraps pool in the HTTP API.
func NewServer(pool *Pool) *Server {
	s := &Server{
		pool: pool, mux: http.NewServeMux(),
		DefaultMethod: "s2d", DefaultK: 4,
		MaxUploadBytes: 1 << 30,
	}
	s.mux.HandleFunc("POST /v1/multiply", s.handleMultiply)
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("GET /v1/methods", s.handleMethods)
	s.mux.HandleFunc("POST /v1/matrices", s.handleUpload)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// SetDraining flips the readiness signal. A draining server keeps
// answering every endpoint — in-flight and just-arrived requests finish
// normally while the load balancer reads /readyz and routes new traffic
// elsewhere; the listener itself stops accepting only when
// http.Server.Shutdown closes it.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports the readiness state.
func (s *Server) Draining() bool { return s.draining.Load() }

// handleHealthz is liveness: the process is up and the mux is serving.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: 200 while accepting new work, 503 once
// draining.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// requestCtx derives the request context with the effective deadline:
// the request's own deadline_ms when given, else the server default,
// else no deadline.
func (s *Server) requestCtx(r *http.Request, deadlineMs int) (context.Context, context.CancelFunc) {
	switch {
	case deadlineMs > 0:
		return context.WithTimeout(r.Context(), time.Duration(deadlineMs)*time.Millisecond)
	case s.DefaultDeadline > 0:
		return context.WithTimeout(r.Context(), s.DefaultDeadline)
	default:
		return r.Context(), func() {}
	}
}

// engineRequest is the addressing triple shared by multiply and solve.
type engineRequest struct {
	Matrix string `json:"matrix"`
	Method string `json:"method"`
	K      int    `json:"k"`
}

func (s *Server) acquire(req engineRequest) (*Handle, error) {
	if req.Method == "" {
		req.Method = s.DefaultMethod
	}
	if req.K == 0 {
		req.K = s.DefaultK
	}
	return s.pool.Acquire(req.Matrix, req.Method, req.K)
}

type multiplyRequest struct {
	engineRequest
	X []float64 `json:"x"`
	// DeadlineMs overrides the server's default deadline for this request.
	DeadlineMs int `json:"deadline_ms"`
}

type multiplyResponse struct {
	Y         []float64 `json:"y"`
	Method    string    `json:"method"`
	K         int       `json:"k"`
	Schedule  string    `json:"schedule"`
	ElapsedMs float64   `json:"elapsed_ms"`
}

func (s *Server) handleMultiply(w http.ResponseWriter, r *http.Request) {
	var req multiplyRequest
	if err := decodeJSON(w, r, &req); err != nil {
		return
	}
	ctx, cancel := s.requestCtx(r, req.DeadlineMs)
	defer cancel()
	h, err := s.acquire(req.engineRequest)
	if err != nil {
		writeError(w, err)
		return
	}
	defer h.Release()
	t0 := time.Now()
	y, err := h.Multiply(ctx, req.X)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, multiplyResponse{
		Y: y, Method: h.Key().Method, K: h.Key().K, Schedule: h.Schedule(),
		ElapsedMs: msSince(t0),
	})
}

type solveRequest struct {
	engineRequest
	B []float64 `json:"b"`
	// Solver selects the iterative method: "cg" (square SPD systems),
	// "lsqr" or "cgnr" (rectangular least squares). Empty picks CG for
	// square matrices and LSQR for rectangular ones.
	Solver  string  `json:"solver"`
	Tol     float64 `json:"tol"`      // default 1e-8
	MaxIter int     `json:"max_iter"` // default 500
	// DeadlineMs overrides the server's default deadline for this request.
	DeadlineMs int `json:"deadline_ms"`
}

type solveResponse struct {
	X          []float64 `json:"x"`
	Iterations int       `json:"iterations"`
	Residual   float64   `json:"residual"`
	Converged  bool      `json:"converged"`
	Solver     string    `json:"solver"`
	Method     string    `json:"method"`
	K          int       `json:"k"`
	ElapsedMs  float64   `json:"elapsed_ms"`
}

// handleSolve runs an iterative solver on the pooled engine: CG for
// square systems, LSQR (or CGNR) over the Ax/Aᵀx pair for rectangular
// ones. Every iteration's multiply goes through the coalescing
// scheduler, so concurrent solves on the same engine batch each other's
// iterations — forward and transpose products in their own batches.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req solveRequest
	if err := decodeJSON(w, r, &req); err != nil {
		return
	}
	if req.Tol <= 0 {
		req.Tol = 1e-8
	}
	if req.MaxIter <= 0 {
		req.MaxIter = 500
	}
	ctx, cancel := s.requestCtx(r, req.DeadlineMs)
	defer cancel()
	h, err := s.acquire(req.engineRequest)
	if err != nil {
		writeError(w, err)
		return
	}
	defer h.Release()
	rows, cols := h.Rows(), h.Cols()
	if len(req.B) != rows {
		writeError(w, &DimensionError{Got: len(req.B), Want: rows, What: "b"})
		return
	}
	solverName := strings.ToLower(req.Solver)
	if solverName == "" {
		if rows == cols {
			solverName = "cg"
		} else {
			solverName = "lsqr"
		}
	}
	switch solverName {
	case "cg":
		if rows != cols {
			// CG iterates y ← Ax on x of length Rows; on a rectangular
			// matrix the first multiply would fail mid-solve. Reject the
			// shape upfront and point at the least-squares solvers.
			writeJSON(w, http.StatusUnprocessableEntity, errorBody{Error: fmt.Sprintf(
				"serve: solve: CG requires a square system, matrix is %dx%d — use solver \"lsqr\" or \"cgnr\"",
				rows, cols)})
			return
		}
	case "lsqr", "cgnr":
	default:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf(
			"serve: unknown solver %q (supported: cg, lsqr, cgnr)", req.Solver)})
		return
	}

	t0 := time.Now()
	var mulErr error
	lift := func(call func(context.Context, []float64) ([]float64, error)) solver.MulVec {
		return func(x, y []float64) {
			if mulErr != nil {
				return
			}
			res, err := call(ctx, x)
			if err != nil {
				mulErr = err
				return
			}
			copy(y, res)
		}
	}
	mul := lift(h.Multiply)
	mulT := lift(h.MultiplyTranspose)
	// The stop hook runs between solver iterations: a deadline or fault
	// ends the solve at the next iteration boundary instead of burning
	// the remaining MaxIter multiplies.
	stop := func() error {
		if mulErr != nil {
			return mulErr
		}
		return ctx.Err()
	}
	x := make([]float64, cols)
	var res solver.Result
	switch solverName {
	case "cg":
		res, err = solver.CGStop(mul, req.B, x, req.Tol, req.MaxIter, stop)
	case "lsqr":
		res, err = solver.LSQRStop(mul, mulT, req.B, x, req.Tol, req.MaxIter, stop)
	case "cgnr":
		res, err = solver.CGNRStop(mul, mulT, req.B, x, req.Tol, req.MaxIter, stop)
	}
	if mulErr != nil {
		writeError(w, mulErr)
		return
	}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The stop hook fired on the request context, not on a solver
			// verdict — report it as a cancellation, not a 422.
			writeError(w, err)
			return
		}
		// A solver rejection (indefinite matrix, dimension mismatch) is a
		// property of the requested system, not a server fault.
		writeJSON(w, http.StatusUnprocessableEntity,
			errorBody{Error: fmt.Sprintf("serve: solve: %v", err)})
		return
	}
	writeJSON(w, http.StatusOK, solveResponse{
		X: x, Iterations: res.Iterations, Residual: res.Residual, Converged: res.Converged,
		Solver: solverName, Method: h.Key().Method, K: h.Key().K, ElapsedMs: msSince(t0),
	})
}

type methodsResponse struct {
	Methods  []method.Info `json:"methods"`
	Matrices []MatrixInfo  `json:"matrices"`
}

func (s *Server) handleMethods(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, methodsResponse{
		Methods:  method.List(),
		Matrices: s.pool.Matrices(),
	})
}

// handleUpload registers a MatrixMarket matrix posted in the request
// body under ?name= (falling back to a generated name). Bodies are read
// through MaxBytesReader, never buffered unbounded: an upload past
// MaxUploadBytes fails with 413 the moment the limit trips.
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		name = fmt.Sprintf("upload-%d", time.Now().UnixNano())
	}
	a, err := sparse.ReadMatrixMarket(http.MaxBytesReader(w, r.Body, s.MaxUploadBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{Error: fmt.Sprintf(
				"serve: upload body exceeds the %d-byte limit", tooBig.Limit)})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if err := s.pool.AddMatrix(name, a); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, MatrixInfo{Name: name, Rows: a.Rows, Cols: a.Cols, NNZ: a.NNZ()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.pool.MetricsSnapshot())
}

type errorBody struct {
	Error string `json:"error"`
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<30))
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorBody{Error: "request body too large: " + err.Error()})
			return err
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return err
	}
	return nil
}

// setRetryAfter writes the retry contract headers: the RFC's
// integer-seconds Retry-After (rounded up, minimum 1 — the header cannot
// express sub-second waits) plus the precise X-Retry-After-Ms.
func setRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	ms := d.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	w.Header().Set("X-Retry-After-Ms", strconv.FormatInt(ms, 10))
}

// writeError maps the serving layer's typed errors onto HTTP statuses.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var (
		unknownMat  *UnknownMatrixError
		unknownMet  *UnknownMethodError
		dim         *DimensionError
		quarantined *QuarantinedError
	)
	switch {
	case errors.Is(err, ErrOverloaded):
		// Overload is transient at batch-flush timescales; hint a short
		// precise backoff.
		setRetryAfter(w, 25*time.Millisecond)
		status = http.StatusTooManyRequests
	case errors.As(err, &quarantined):
		// The breaker knows exactly when the rebuild cooldown ends.
		setRetryAfter(w, quarantined.RetryAfter)
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrEngineFault):
		// The batch died with the engine; the quarantine + rebuild path
		// typically has a fresh engine within one breaker cooldown.
		setRetryAfter(w, 100*time.Millisecond)
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
	case errors.As(err, &unknownMat) || errors.As(err, &unknownMet):
		status = http.StatusNotFound
	case errors.As(err, &dim):
		status = http.StatusBadRequest
	case errors.Is(err, context.Canceled):
		status = 499 // client closed request (nginx convention)
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
