package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/method"
	"repro/internal/obs"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/wire"
)

// Server is the HTTP front end over a Pool. It implements http.Handler;
// cmd/spmvserve mounts it directly. See API.md for the full reference.
//
//	POST   /v1/multiply         y ← Ax (or Aᵀx), single or multi-RHS
//	POST   /v1/solve            iterative solve (cg / lsqr / cgnr)
//	GET    /v1/methods          partitioning-method registry
//	GET    /v1/matrices         registered matrices
//	POST   /v1/matrices?name=N  MatrixMarket upload
//	GET    /v1/matrices/{name}  matrix info + its resident engines
//	DELETE /v1/matrices/{name}  unregister (409 while pinned)
//	GET    /metrics             PoolMetrics (per-engine, per-tenant)
//	GET    /healthz             liveness (always 200)
//	GET    /readyz              readiness (503 while draining)
//
// Encodings: /v1/multiply and /v1/solve speak JSON by default and the
// binary frame format (package wire) when the request body carries
// Content-Type: application/x-spmv-frame; the response mirrors the
// request's encoding and results are bit-identical either way. Error
// responses are always the JSON envelope {"error","code","retryable",
// "retry_after_ms"} with stable machine-readable codes, whatever the
// request encoding.
//
// Tenancy: with a keyed TenantRegistry (spmvserve -tenants), multiply,
// solve, and matrix mutations require `Authorization: Bearer <key>`;
// each tenant is admitted against its own queue quota (overload is a
// per-tenant 429) and scheduled by weight. Without a registry every
// request runs as the anonymous default tenant.
//
// Retryable rejections carry both a standard integer-seconds
// Retry-After header (rounded up, minimum 1) and a precise
// X-Retry-After-Ms header; clients that understand the extension should
// prefer the latter (the envelope's retry_after_ms matches it).
type Server struct {
	pool *Pool
	mux  *http.ServeMux

	// DefaultMethod and DefaultK fill requests that omit them.
	DefaultMethod string
	DefaultK      int
	// DefaultDeadline bounds every multiply/solve that does not carry its
	// own deadline_ms; zero means no server-side deadline. Deadlines are
	// enforced before a request enqueues and inside the solver stop
	// hooks, so an expired request never widens a batch.
	DefaultDeadline time.Duration
	// MaxUploadBytes caps the /v1/matrices request body; larger uploads
	// fail with 413 (default 1 GiB).
	MaxUploadBytes int64
	// Traces is the bounded in-flight trace buffer behind /debug/traces:
	// every authenticated request records its span tree here.
	Traces *obs.TraceBuffer

	draining atomic.Bool
}

// NewServer wraps pool in the HTTP API.
func NewServer(pool *Pool) *Server {
	s := &Server{
		pool: pool, mux: http.NewServeMux(),
		DefaultMethod: "s2d", DefaultK: 4,
		MaxUploadBytes: 1 << 30,
		Traces:         obs.NewTraceBuffer(256, 32),
	}
	s.mux.HandleFunc("POST /v1/multiply", s.auth(s.handleMultiply))
	s.mux.HandleFunc("POST /v1/solve", s.auth(s.handleSolve))
	s.mux.HandleFunc("GET /v1/methods", s.handleMethods)
	s.mux.HandleFunc("GET /v1/matrices", s.handleMatrixList)
	s.mux.HandleFunc("POST /v1/matrices", s.auth(s.handleUpload))
	s.mux.HandleFunc("GET /v1/matrices/{name}", s.handleMatrixGet)
	s.mux.HandleFunc("DELETE /v1/matrices/{name}", s.auth(s.handleMatrixDelete))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/traces", s.handleTraces)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// auth resolves the request's tenant before the handler runs, opens the
// request trace (X-Trace-Id is on every response from here, including
// auth failures), and publishes the finished trace. Data-plane and
// mutating endpoints go through here; read-only introspection (methods,
// matrix listings, metrics, health) stays open so dashboards and probes
// need no keys.
func (s *Server) auth(h func(http.ResponseWriter, *http.Request, *Tenant, *reqTrace)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw, rt := s.beginTrace(w, r)
		defer rt.finish(s, sw)
		tn, err := s.pool.Tenants().Authenticate(r.Header.Get("Authorization"))
		if err != nil {
			writeError(sw, err)
			return
		}
		rt.tenant = tn.Name
		h(sw, r, tn, rt)
	}
}

// SetDraining flips the readiness signal. A draining server keeps
// answering every endpoint — in-flight and just-arrived requests finish
// normally while the load balancer reads /readyz and routes new traffic
// elsewhere; the listener itself stops accepting only when
// http.Server.Shutdown closes it.
func (s *Server) SetDraining(v bool) {
	if s.draining.Swap(v) == v {
		return
	}
	log := s.pool.Logger()
	if v {
		log.LogAttrs(context.Background(), slog.LevelWarn, "server draining",
			slog.String("event", "drain"))
	} else {
		log.LogAttrs(context.Background(), slog.LevelInfo, "server accepting traffic",
			slog.String("event", "undrain"))
	}
}

// Draining reports the readiness state.
func (s *Server) Draining() bool { return s.draining.Load() }

// handleHealthz is liveness: the process is up and the mux is serving.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: 200 while accepting new work, 503 (in the
// standard envelope) once draining.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeEnvelope(w, http.StatusServiceUnavailable, ErrorEnvelope{
			Error: "serve: draining", Code: CodeDraining, Retryable: true,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// requestCtx derives the request context with the effective deadline:
// the request's own deadline_ms when given, else the server default,
// else no deadline.
func (s *Server) requestCtx(r *http.Request, deadlineMs int) (context.Context, context.CancelFunc) {
	switch {
	case deadlineMs > 0:
		return context.WithTimeout(r.Context(), time.Duration(deadlineMs)*time.Millisecond)
	case s.DefaultDeadline > 0:
		return context.WithTimeout(r.Context(), s.DefaultDeadline)
	default:
		return r.Context(), func() {}
	}
}

// encodingOf maps the request's Content-Type onto the response encoding.
func encodingOf(r *http.Request) string {
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	if strings.TrimSpace(ct) == wire.ContentType {
		return EncodingBinary
	}
	return EncodingJSON
}

// readBody drains the request body through MaxBytesReader; the caller
// routes errors through writeError (a tripped limit maps to 413).
func readBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, error) {
	return io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
}

// engineRequest is the addressing triple shared by multiply and solve.
type engineRequest struct {
	Matrix string `json:"matrix"`
	Method string `json:"method"`
	K      int    `json:"k"`
}

func (s *Server) acquire(req engineRequest) (*Handle, error) {
	if req.Method == "" {
		req.Method = s.DefaultMethod
	}
	if req.K == 0 {
		req.K = s.DefaultK
	}
	return s.pool.Acquire(req.Matrix, req.Method, req.K)
}

type multiplyRequest struct {
	engineRequest
	// X is the single right-hand side; Xs submits several at once
	// (admitted atomically, coalesced through the same batches). Exactly
	// one of the two may be set.
	X  []float64   `json:"x,omitempty"`
	Xs [][]float64 `json:"xs,omitempty"`
	// Transpose computes y ← Aᵀx (x of length rows, y of length cols).
	Transpose bool `json:"transpose,omitempty"`
	// DeadlineMs overrides the server's default deadline for this request.
	DeadlineMs int `json:"deadline_ms,omitempty"`
	// Timings opts into the per-response stage breakdown (JSON responses
	// only); `?timings=1` on the URL does the same.
	Timings bool `json:"timings,omitempty"`
}

type multiplyResponse struct {
	Y         []float64     `json:"y,omitempty"`
	Ys        [][]float64   `json:"ys,omitempty"`
	Method    string        `json:"method"`
	K         int           `json:"k"`
	Schedule  string        `json:"schedule"`
	ElapsedMs float64       `json:"elapsed_ms"`
	Timings   *TimingsBlock `json:"timings,omitempty"`
}

// wantTimings reports whether the response should carry the stage
// breakdown: the URL knob or the JSON body flag.
func wantTimings(r *http.Request, bodyFlag bool) bool {
	return bodyFlag || r.URL.Query().Get("timings") == "1"
}

func (s *Server) handleMultiply(w http.ResponseWriter, r *http.Request, tn *Tenant, rt *reqTrace) {
	enc := encodingOf(r)
	body, err := readBody(w, r, s.MaxUploadBytes)
	if err != nil {
		writeError(w, err)
		return
	}
	var req multiplyRequest
	single := false
	if enc == EncodingBinary {
		f, err := wire.Decode(body)
		if err != nil {
			writeErrCode(w, http.StatusBadRequest, CodeBadRequest, "wire: "+err.Error())
			return
		}
		if f.Op != wire.OpMultiplyReq {
			writeErrCode(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Sprintf("wire: op %d is not a multiply request", f.Op))
			return
		}
		req = multiplyRequest{
			engineRequest: engineRequest{Matrix: f.Matrix, Method: f.Method, K: f.K},
			Xs:            f.Vectors, Transpose: f.Transpose, DeadlineMs: f.DeadlineMs,
		}
	} else {
		if err := json.Unmarshal(body, &req); err != nil {
			writeErrCode(w, http.StatusBadRequest, CodeBadRequest, "bad request body: "+err.Error())
			return
		}
	}
	xs := req.Xs
	switch {
	case req.X != nil && req.Xs != nil:
		writeErrCode(w, http.StatusBadRequest, CodeBadRequest, `"x" and "xs" are mutually exclusive`)
		return
	case req.X != nil:
		xs, single = [][]float64{req.X}, true
	}
	if len(xs) > wire.MaxVectors {
		writeErrCode(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("%d right-hand sides exceeds the limit of %d", len(xs), wire.MaxVectors))
		return
	}
	rt.mark(StageDecode)
	ctx, cancel := s.requestCtx(r, req.DeadlineMs)
	defer cancel()
	h, err := s.acquire(req.engineRequest)
	if err != nil {
		writeError(w, err)
		return
	}
	defer h.Release()
	rt.setEngine(h)
	rt.mark(StageAdmission)
	t0 := time.Now()
	ys, err := h.MultiplyBatch(withStageSink(ctx, rt.sink), tn, xs, req.Transpose)
	rt.mark(StageSchedule)
	if err != nil {
		writeError(w, err)
		return
	}
	var out []byte
	if enc == EncodingBinary {
		key := h.Key()
		out, err = wire.Append(nil, &wire.Frame{
			Op: wire.OpMultiplyResp, Matrix: key.Matrix, Method: key.Method, K: key.K,
			Transpose: req.Transpose, Vectors: ys,
		})
		if err != nil {
			writeError(w, err)
			return
		}
		rt.mark(StageEncode)
		w.Header().Set("Content-Type", wire.ContentType)
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(out)
	} else {
		resp := multiplyResponse{
			Method: h.Key().Method, K: h.Key().K, Schedule: h.Schedule(), ElapsedMs: msSince(t0),
		}
		if single {
			resp.Y = ys[0]
		} else {
			resp.Ys = ys
		}
		if wantTimings(r, req.Timings) {
			// Measure the dominant marshal (the result vectors) as the
			// encode stage, then attach the block; the top-level stages are
			// contiguous, so their sum equals the block's total exactly.
			if _, merr := json.Marshal(resp); merr != nil {
				writeError(w, merr)
				return
			}
			rt.mark(StageEncode)
			resp.Timings = rt.block()
			out = marshalJSON(w, http.StatusOK, resp)
		} else {
			out = marshalJSON(w, http.StatusOK, resp)
			rt.mark(StageEncode)
		}
	}
	tn.CountBytes(enc, len(body), len(out))
}

type solveRequest struct {
	engineRequest
	B []float64 `json:"b"`
	// Solver selects the iterative method: "cg" (square SPD systems),
	// "lsqr" or "cgnr" (rectangular least squares). Empty picks CG for
	// square matrices and LSQR for rectangular ones.
	Solver  string  `json:"solver"`
	Tol     float64 `json:"tol"`      // default 1e-8
	MaxIter int     `json:"max_iter"` // default 500
	// DeadlineMs overrides the server's default deadline for this request.
	DeadlineMs int `json:"deadline_ms"`
	// Timings opts into the per-response stage breakdown (JSON responses
	// only); `?timings=1` on the URL does the same.
	Timings bool `json:"timings,omitempty"`
}

type solveResponse struct {
	X          []float64     `json:"x"`
	Iterations int           `json:"iterations"`
	Residual   float64       `json:"residual"`
	Converged  bool          `json:"converged"`
	Solver     string        `json:"solver"`
	Method     string        `json:"method"`
	K          int           `json:"k"`
	ElapsedMs  float64       `json:"elapsed_ms"`
	Timings    *TimingsBlock `json:"timings,omitempty"`
}

// handleSolve runs an iterative solver on the pooled engine: CG for
// square systems, LSQR (or CGNR) over the Ax/Aᵀx pair for rectangular
// ones. Every iteration's multiply goes through the coalescing
// scheduler charged to the calling tenant, so concurrent solves on the
// same engine batch each other's iterations — forward and transpose
// products in their own batches.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request, tn *Tenant, rt *reqTrace) {
	enc := encodingOf(r)
	body, err := readBody(w, r, s.MaxUploadBytes)
	if err != nil {
		writeError(w, err)
		return
	}
	var req solveRequest
	if enc == EncodingBinary {
		f, err := wire.Decode(body)
		if err != nil {
			writeErrCode(w, http.StatusBadRequest, CodeBadRequest, "wire: "+err.Error())
			return
		}
		if f.Op != wire.OpSolveReq {
			writeErrCode(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Sprintf("wire: op %d is not a solve request", f.Op))
			return
		}
		if len(f.Vectors) != 1 {
			writeErrCode(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Sprintf("wire: solve wants exactly 1 right-hand side, got %d", len(f.Vectors)))
			return
		}
		req = solveRequest{
			engineRequest: engineRequest{Matrix: f.Matrix, Method: f.Method, K: f.K},
			B:             f.Vectors[0], Solver: wire.SolverName(f.Solver),
			Tol: f.Tol, MaxIter: f.MaxIter, DeadlineMs: f.DeadlineMs,
		}
	} else {
		if err := json.Unmarshal(body, &req); err != nil {
			writeErrCode(w, http.StatusBadRequest, CodeBadRequest, "bad request body: "+err.Error())
			return
		}
	}
	if req.Tol <= 0 {
		req.Tol = 1e-8
	}
	if req.MaxIter <= 0 {
		req.MaxIter = 500
	}
	rt.mark(StageDecode)
	ctx, cancel := s.requestCtx(r, req.DeadlineMs)
	defer cancel()
	h, err := s.acquire(req.engineRequest)
	if err != nil {
		writeError(w, err)
		return
	}
	defer h.Release()
	rt.setEngine(h)
	rt.mark(StageAdmission)
	rows, cols := h.Rows(), h.Cols()
	if len(req.B) != rows {
		writeError(w, &DimensionError{Got: len(req.B), Want: rows, What: "b"})
		return
	}
	solverName := strings.ToLower(req.Solver)
	if solverName == "" {
		if rows == cols {
			solverName = "cg"
		} else {
			solverName = "lsqr"
		}
	}
	switch solverName {
	case "cg":
		if rows != cols {
			// CG iterates y ← Ax on x of length Rows; on a rectangular
			// matrix the first multiply would fail mid-solve. Reject the
			// shape upfront and point at the least-squares solvers.
			writeErrCode(w, http.StatusUnprocessableEntity, CodeUnprocessable, fmt.Sprintf(
				"serve: solve: CG requires a square system, matrix is %dx%d — use solver \"lsqr\" or \"cgnr\"",
				rows, cols))
			return
		}
	case "lsqr", "cgnr":
	default:
		writeErrCode(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf(
			"serve: unknown solver %q (supported: cg, lsqr, cgnr)", req.Solver))
		return
	}

	t0 := time.Now()
	ctx = withStageSink(ctx, rt.sink)
	var mulErr error
	lift := func(transpose bool) solver.MulVec {
		return func(x, y []float64) {
			if mulErr != nil {
				return
			}
			var res []float64
			var err error
			if transpose {
				res, err = h.MultiplyTransposeFor(ctx, tn, x)
			} else {
				res, err = h.MultiplyFor(ctx, tn, x)
			}
			if err != nil {
				mulErr = err
				return
			}
			copy(y, res)
		}
	}
	mul := lift(false)
	mulT := lift(true)
	// The stop hook runs between solver iterations: a deadline or fault
	// ends the solve at the next iteration boundary instead of burning
	// the remaining MaxIter multiplies.
	stop := func() error {
		if mulErr != nil {
			return mulErr
		}
		return ctx.Err()
	}
	x := make([]float64, cols)
	var res solver.Result
	switch solverName {
	case "cg":
		res, err = solver.CGStop(mul, req.B, x, req.Tol, req.MaxIter, stop)
	case "lsqr":
		res, err = solver.LSQRStop(mul, mulT, req.B, x, req.Tol, req.MaxIter, stop)
	case "cgnr":
		res, err = solver.CGNRStop(mul, mulT, req.B, x, req.Tol, req.MaxIter, stop)
	}
	rt.mark(StageSolve)
	if mulErr != nil {
		writeError(w, mulErr)
		return
	}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The stop hook fired on the request context, not on a solver
			// verdict — report it as a cancellation, not a 422.
			writeError(w, err)
			return
		}
		// A solver rejection (indefinite matrix, dimension mismatch) is a
		// property of the requested system, not a server fault.
		writeErrCode(w, http.StatusUnprocessableEntity, CodeUnprocessable,
			fmt.Sprintf("serve: solve: %v", err))
		return
	}
	var out []byte
	if enc == EncodingBinary {
		key := h.Key()
		code, _ := wire.SolverCode(solverName) // validated above
		out, err = wire.Append(nil, &wire.Frame{
			Op: wire.OpSolveResp, Matrix: key.Matrix, Method: key.Method, K: key.K,
			Vectors: [][]float64{x}, Solver: code,
			Tol: res.Residual, MaxIter: res.Iterations, Converged: res.Converged,
		})
		if err != nil {
			writeError(w, err)
			return
		}
		rt.mark(StageEncode)
		w.Header().Set("Content-Type", wire.ContentType)
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(out)
	} else {
		resp := solveResponse{
			X: x, Iterations: res.Iterations, Residual: res.Residual, Converged: res.Converged,
			Solver: solverName, Method: h.Key().Method, K: h.Key().K, ElapsedMs: msSince(t0),
		}
		if wantTimings(r, req.Timings) {
			if _, merr := json.Marshal(resp); merr != nil {
				writeError(w, merr)
				return
			}
			rt.mark(StageEncode)
			resp.Timings = rt.block()
			out = marshalJSON(w, http.StatusOK, resp)
		} else {
			out = marshalJSON(w, http.StatusOK, resp)
			rt.mark(StageEncode)
		}
	}
	tn.CountBytes(enc, len(body), len(out))
}

type methodsResponse struct {
	Methods  []method.Info `json:"methods"`
	Matrices []MatrixInfo  `json:"matrices"`
}

func (s *Server) handleMethods(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, methodsResponse{
		Methods:  method.List(),
		Matrices: s.pool.Matrices(),
	})
}

type matrixListResponse struct {
	Matrices []MatrixInfo `json:"matrices"`
}

func (s *Server) handleMatrixList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, matrixListResponse{Matrices: s.pool.Matrices()})
}

// matrixEngineInfo is one resident engine serving the matrix.
type matrixEngineInfo struct {
	Method   string `json:"method"`
	K        int    `json:"k"`
	Schedule string `json:"schedule"`
	Kernel   string `json:"kernel,omitempty"`
	Refs     int    `json:"refs"`
}

type matrixDetail struct {
	MatrixInfo
	Engines []matrixEngineInfo `json:"engines,omitempty"`
}

func (s *Server) handleMatrixGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	a, err := s.pool.Matrix(name)
	if err != nil {
		writeError(w, err)
		return
	}
	d := matrixDetail{MatrixInfo: MatrixInfo{Name: name, Rows: a.Rows, Cols: a.Cols, NNZ: a.NNZ()}}
	for _, e := range s.pool.MetricsSnapshot().Engines {
		if e.Matrix == name {
			d.Engines = append(d.Engines, matrixEngineInfo{
				Method: e.Method, K: e.K, Schedule: e.Schedule, Kernel: e.Kernel, Refs: e.Refs,
			})
		}
	}
	writeJSON(w, http.StatusOK, d)
}

func (s *Server) handleMatrixDelete(w http.ResponseWriter, r *http.Request, _ *Tenant, _ *reqTrace) {
	if err := s.pool.RemoveMatrix(r.PathValue("name")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// validateMatrixName guards upload names: path separators and parent
// references would corrupt anything that later maps names to files, and
// unbounded names bloat keys and metrics.
func validateMatrixName(name string) error {
	if name == "" {
		return fmt.Errorf("matrix name is empty")
	}
	if len(name) > wire.MaxNameLen {
		return fmt.Errorf("matrix name exceeds %d bytes", wire.MaxNameLen)
	}
	if strings.ContainsAny(name, "/\\") || strings.Contains(name, "..") {
		return fmt.Errorf("matrix name %q contains path separators", name)
	}
	return nil
}

// handleUpload registers a MatrixMarket matrix posted in the request
// body under ?name= (falling back to a generated name). Bodies are read
// through MaxBytesReader, never buffered unbounded: an upload past
// MaxUploadBytes fails with 413 the moment the limit trips.
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request, _ *Tenant, _ *reqTrace) {
	name := strings.TrimSpace(r.URL.Query().Get("name"))
	if r.URL.Query().Has("name") {
		if err := validateMatrixName(name); err != nil {
			writeErrCode(w, http.StatusBadRequest, CodeBadRequest, "serve: "+err.Error())
			return
		}
	} else {
		name = fmt.Sprintf("upload-%d", time.Now().UnixNano())
	}
	lr := http.MaxBytesReader(w, r.Body, s.MaxUploadBytes)
	a, err := sparse.ReadMatrixMarket(lr)
	if err != nil {
		// A body truncated at the limit surfaces as a parse error on the
		// cut-off line; probe the reader so an oversized upload reports 413
		// whatever shape the truncation artifact took.
		var tooBig *http.MaxBytesError
		if !errors.As(err, &tooBig) {
			if _, perr := lr.Read(make([]byte, 1)); perr != nil {
				errors.As(perr, &tooBig)
			}
		}
		if tooBig != nil {
			writeError(w, tooBig)
			return
		}
		writeErrCode(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	if err := s.pool.AddMatrix(name, a); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, MatrixInfo{Name: name, Rows: a.Rows, Cols: a.Cols, NNZ: a.NNZ()})
}

// handleMetrics negotiates the exposition format: an Accept header
// naming text/plain (or OpenMetrics) gets the Prometheus text
// exposition; everything else — including no Accept at all — keeps the
// legacy PoolMetrics JSON, so existing scrapers are untouched.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if obs.WantsPrometheus(r.Header.Get("Accept")) {
		s.writePromMetrics(w)
		return
	}
	writeJSON(w, http.StatusOK, s.pool.MetricsSnapshot())
}

// tracesResponse is the /debug/traces payload.
type tracesResponse struct {
	Seen    uint64       `json:"seen"`
	Recent  []*obs.Trace `json:"recent"`
	Slowest []*obs.Trace `json:"slowest"`
}

// handleTraces dumps the bounded trace buffer: the most recent requests
// (newest first) and the slowest since start (slowest first).
func (s *Server) handleTraces(w http.ResponseWriter, _ *http.Request) {
	recent, slowest, seen := s.Traces.Snapshot()
	writeJSON(w, http.StatusOK, tracesResponse{Seen: seen, Recent: recent, Slowest: slowest})
}

// Stable machine-readable error codes: clients branch on these, never
// on message text. Every error response carries exactly one.
const (
	CodeBadRequest      = "bad_request"       // 400: malformed body/frame/params
	CodeBadDimension    = "bad_dimension"     // 400: vector does not match matrix
	CodeUnauthorized    = "unauthorized"      // 401: missing/unknown API key
	CodeUnknownMatrix   = "unknown_matrix"    // 404
	CodeUnknownMethod   = "unknown_method"    // 404
	CodeConflict        = "conflict"          // 409: duplicate name, pinned delete
	CodePayloadTooLarge = "payload_too_large" // 413
	CodeUnprocessable   = "unprocessable"     // 422: valid request, unsolvable system
	CodeOverloaded      = "overloaded"        // 429: tenant queue quota (retryable)
	CodeQuarantined     = "quarantined"       // 503: engine in rebuild cooldown (retryable)
	CodeEngineFault     = "engine_fault"      // 503: batch died with the engine (retryable)
	CodeDraining        = "draining"          // 503: pool/server shutting down
	CodeDeadline        = "deadline"          // 504: deadline_ms expired (retryable)
	CodeCancelled       = "cancelled"         // 499: client closed request
	CodeInternal        = "internal"          // 500
)

// ErrorEnvelope is the one error shape every endpoint returns.
// retry_after_ms is set exactly when the Retry-After headers are.
type ErrorEnvelope struct {
	Error        string `json:"error"`
	Code         string `json:"code"`
	Retryable    bool   `json:"retryable"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
}

// errorBody aliases the envelope under the legacy name used by tests.
type errorBody = ErrorEnvelope

// setRetryAfter writes the retry contract headers: the RFC's
// integer-seconds Retry-After (rounded up, minimum 1 — the header cannot
// express sub-second waits) plus the precise X-Retry-After-Ms.
func setRetryAfter(w http.ResponseWriter, d time.Duration) int64 {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	ms := d.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	w.Header().Set("X-Retry-After-Ms", strconv.FormatInt(ms, 10))
	return ms
}

// writeErrCode emits the envelope for handler-level rejections that
// have no typed error behind them (malformed bodies, bad parameters).
//
//spmv:errwriter
func writeErrCode(w http.ResponseWriter, status int, code, msg string) {
	writeEnvelope(w, status, ErrorEnvelope{Error: msg, Code: code})
}

// writeError maps the serving layer's typed errors onto HTTP statuses
// and envelope codes.
//
//spmv:errwriter
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	env := ErrorEnvelope{Error: err.Error(), Code: CodeInternal}
	var (
		unknownMat  *UnknownMatrixError
		unknownMet  *UnknownMethodError
		unauth      *UnauthorizedError
		pinned      *PinnedMatrixError
		dup         *DuplicateMatrixError
		dim         *DimensionError
		quarantined *QuarantinedError
		tooBig      *http.MaxBytesError
	)
	switch {
	case errors.Is(err, ErrOverloaded):
		// Overload is transient at batch-flush timescales; hint a short
		// precise backoff.
		env.RetryAfterMs = setRetryAfter(w, 25*time.Millisecond)
		status, env.Code, env.Retryable = http.StatusTooManyRequests, CodeOverloaded, true
	case errors.As(err, &quarantined):
		// The breaker knows exactly when the rebuild cooldown ends.
		env.RetryAfterMs = setRetryAfter(w, quarantined.RetryAfter)
		status, env.Code, env.Retryable = http.StatusServiceUnavailable, CodeQuarantined, true
	case errors.Is(err, ErrEngineFault):
		// The batch died with the engine; the quarantine + rebuild path
		// typically has a fresh engine within one breaker cooldown.
		env.RetryAfterMs = setRetryAfter(w, 100*time.Millisecond)
		status, env.Code, env.Retryable = http.StatusServiceUnavailable, CodeEngineFault, true
	case errors.Is(err, ErrClosed):
		status, env.Code, env.Retryable = http.StatusServiceUnavailable, CodeDraining, true
	case errors.As(err, &unauth):
		status, env.Code = http.StatusUnauthorized, CodeUnauthorized
	case errors.As(err, &unknownMat):
		status, env.Code = http.StatusNotFound, CodeUnknownMatrix
	case errors.As(err, &unknownMet):
		status, env.Code = http.StatusNotFound, CodeUnknownMethod
	case errors.As(err, &pinned), errors.As(err, &dup):
		status, env.Code = http.StatusConflict, CodeConflict
	case errors.As(err, &dim):
		status, env.Code = http.StatusBadRequest, CodeBadDimension
	case errors.As(err, &tooBig):
		status, env.Code = http.StatusRequestEntityTooLarge, CodePayloadTooLarge
		env.Error = fmt.Sprintf("serve: request body exceeds the %d-byte limit", tooBig.Limit)
	case errors.Is(err, context.Canceled):
		status, env.Code = 499, CodeCancelled // client closed request (nginx convention)
	case errors.Is(err, context.DeadlineExceeded):
		status, env.Code, env.Retryable = http.StatusGatewayTimeout, CodeDeadline, true
	}
	writeEnvelope(w, status, env)
}

//spmv:errwriter
func writeEnvelope(w http.ResponseWriter, status int, env ErrorEnvelope) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(env)
}

// marshalJSON writes v as the response and returns the bytes written
// (for per-tenant byte accounting).
//
//spmv:errwriter
func marshalJSON(w http.ResponseWriter, status int, v any) []byte {
	buf, err := json.Marshal(v)
	if err != nil {
		writeEnvelope(w, http.StatusInternalServerError,
			ErrorEnvelope{Error: err.Error(), Code: CodeInternal})
		return nil
	}
	buf = append(buf, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf)
	return buf
}

//spmv:errwriter
func writeJSON(w http.ResponseWriter, status int, v any) {
	_ = marshalJSON(w, status, v)
}
