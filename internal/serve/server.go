package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/method"
	"repro/internal/solver"
	"repro/internal/sparse"
)

// Server is the HTTP JSON front end over a Pool. It implements
// http.Handler; cmd/spmvserve mounts it directly.
//
//	POST /v1/multiply  {"matrix","method","k","x":[...]}      → {"y":[...]}
//	POST /v1/solve     {"matrix","method","k","b":[...],...}  → {"x":[...],...}
//	GET  /v1/methods                                          → registry + matrices
//	POST /v1/matrices?name=N   (MatrixMarket body)            → {"name","rows",...}
//	GET  /metrics                                             → PoolMetrics
//
// Error mapping: unknown matrix/method 404, malformed request 400,
// admission-control overload 429, pool shutdown 503, engine failure 500.
type Server struct {
	pool *Pool
	mux  *http.ServeMux

	// DefaultMethod and DefaultK fill requests that omit them.
	DefaultMethod string
	DefaultK      int
}

// NewServer wraps pool in the HTTP API.
func NewServer(pool *Pool) *Server {
	s := &Server{pool: pool, mux: http.NewServeMux(), DefaultMethod: "s2d", DefaultK: 4}
	s.mux.HandleFunc("POST /v1/multiply", s.handleMultiply)
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("GET /v1/methods", s.handleMethods)
	s.mux.HandleFunc("POST /v1/matrices", s.handleUpload)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// engineRequest is the addressing triple shared by multiply and solve.
type engineRequest struct {
	Matrix string `json:"matrix"`
	Method string `json:"method"`
	K      int    `json:"k"`
}

func (s *Server) acquire(req engineRequest) (*Handle, error) {
	if req.Method == "" {
		req.Method = s.DefaultMethod
	}
	if req.K == 0 {
		req.K = s.DefaultK
	}
	return s.pool.Acquire(req.Matrix, req.Method, req.K)
}

type multiplyRequest struct {
	engineRequest
	X []float64 `json:"x"`
}

type multiplyResponse struct {
	Y         []float64 `json:"y"`
	Method    string    `json:"method"`
	K         int       `json:"k"`
	Schedule  string    `json:"schedule"`
	ElapsedMs float64   `json:"elapsed_ms"`
}

func (s *Server) handleMultiply(w http.ResponseWriter, r *http.Request) {
	var req multiplyRequest
	if err := decodeJSON(w, r, &req); err != nil {
		return
	}
	h, err := s.acquire(req.engineRequest)
	if err != nil {
		writeError(w, err)
		return
	}
	defer h.Release()
	t0 := time.Now()
	y, err := h.Multiply(r.Context(), req.X)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, multiplyResponse{
		Y: y, Method: h.Key().Method, K: h.Key().K, Schedule: h.Schedule(),
		ElapsedMs: msSince(t0),
	})
}

type solveRequest struct {
	engineRequest
	B []float64 `json:"b"`
	// Solver selects the iterative method: "cg" (square SPD systems),
	// "lsqr" or "cgnr" (rectangular least squares). Empty picks CG for
	// square matrices and LSQR for rectangular ones.
	Solver  string  `json:"solver"`
	Tol     float64 `json:"tol"`      // default 1e-8
	MaxIter int     `json:"max_iter"` // default 500
}

type solveResponse struct {
	X          []float64 `json:"x"`
	Iterations int       `json:"iterations"`
	Residual   float64   `json:"residual"`
	Converged  bool      `json:"converged"`
	Solver     string    `json:"solver"`
	Method     string    `json:"method"`
	K          int       `json:"k"`
	ElapsedMs  float64   `json:"elapsed_ms"`
}

// handleSolve runs an iterative solver on the pooled engine: CG for
// square systems, LSQR (or CGNR) over the Ax/Aᵀx pair for rectangular
// ones. Every iteration's multiply goes through the coalescing
// scheduler, so concurrent solves on the same engine batch each other's
// iterations — forward and transpose products in their own batches.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req solveRequest
	if err := decodeJSON(w, r, &req); err != nil {
		return
	}
	if req.Tol <= 0 {
		req.Tol = 1e-8
	}
	if req.MaxIter <= 0 {
		req.MaxIter = 500
	}
	h, err := s.acquire(req.engineRequest)
	if err != nil {
		writeError(w, err)
		return
	}
	defer h.Release()
	rows, cols := h.Rows(), h.Cols()
	if len(req.B) != rows {
		writeError(w, &DimensionError{Got: len(req.B), Want: rows, What: "b"})
		return
	}
	solverName := strings.ToLower(req.Solver)
	if solverName == "" {
		if rows == cols {
			solverName = "cg"
		} else {
			solverName = "lsqr"
		}
	}
	switch solverName {
	case "cg":
		if rows != cols {
			// CG iterates y ← Ax on x of length Rows; on a rectangular
			// matrix the first multiply would fail mid-solve. Reject the
			// shape upfront and point at the least-squares solvers.
			writeJSON(w, http.StatusUnprocessableEntity, errorBody{Error: fmt.Sprintf(
				"serve: solve: CG requires a square system, matrix is %dx%d — use solver \"lsqr\" or \"cgnr\"",
				rows, cols)})
			return
		}
	case "lsqr", "cgnr":
	default:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf(
			"serve: unknown solver %q (supported: cg, lsqr, cgnr)", req.Solver)})
		return
	}

	t0 := time.Now()
	var mulErr error
	lift := func(call func(context.Context, []float64) ([]float64, error)) solver.MulVec {
		return func(x, y []float64) {
			if mulErr != nil {
				return
			}
			res, err := call(r.Context(), x)
			if err != nil {
				mulErr = err
				return
			}
			copy(y, res)
		}
	}
	mul := lift(h.Multiply)
	mulT := lift(h.MultiplyTranspose)
	stop := func() error {
		if mulErr != nil {
			return mulErr
		}
		return r.Context().Err()
	}
	x := make([]float64, cols)
	var res solver.Result
	switch solverName {
	case "cg":
		res, err = solver.CGStop(mul, req.B, x, req.Tol, req.MaxIter, stop)
	case "lsqr":
		res, err = solver.LSQRStop(mul, mulT, req.B, x, req.Tol, req.MaxIter, stop)
	case "cgnr":
		res, err = solver.CGNRStop(mul, mulT, req.B, x, req.Tol, req.MaxIter, stop)
	}
	if mulErr != nil {
		writeError(w, mulErr)
		return
	}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The stop hook fired on the request context, not on a solver
			// verdict — report it as a cancellation, not a 422.
			writeError(w, err)
			return
		}
		// A solver rejection (indefinite matrix, dimension mismatch) is a
		// property of the requested system, not a server fault.
		writeJSON(w, http.StatusUnprocessableEntity,
			errorBody{Error: fmt.Sprintf("serve: solve: %v", err)})
		return
	}
	writeJSON(w, http.StatusOK, solveResponse{
		X: x, Iterations: res.Iterations, Residual: res.Residual, Converged: res.Converged,
		Solver: solverName, Method: h.Key().Method, K: h.Key().K, ElapsedMs: msSince(t0),
	})
}

type methodsResponse struct {
	Methods  []method.Info `json:"methods"`
	Matrices []MatrixInfo  `json:"matrices"`
}

func (s *Server) handleMethods(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, methodsResponse{
		Methods:  method.List(),
		Matrices: s.pool.Matrices(),
	})
}

// handleUpload registers a MatrixMarket matrix posted in the request
// body under ?name= (falling back to a generated name).
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		name = fmt.Sprintf("upload-%d", time.Now().UnixNano())
	}
	a, err := sparse.ReadMatrixMarket(http.MaxBytesReader(w, r.Body, 1<<30))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if err := s.pool.AddMatrix(name, a); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, MatrixInfo{Name: name, Rows: a.Rows, Cols: a.Cols, NNZ: a.NNZ()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.pool.MetricsSnapshot())
}

type errorBody struct {
	Error string `json:"error"`
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<30))
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return err
	}
	return nil
}

// writeError maps the serving layer's typed errors onto HTTP statuses.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var (
		unknownMat *UnknownMatrixError
		unknownMet *UnknownMethodError
		dim        *DimensionError
	)
	switch {
	case errors.Is(err, ErrOverloaded):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
	case errors.As(err, &unknownMat) || errors.As(err, &unknownMet):
		status = http.StatusNotFound
	case errors.As(err, &dim):
		status = http.StatusBadRequest
	case errors.Is(err, context.Canceled):
		status = 499 // client closed request (nginx convention)
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
