package serve

import "time"

// breakerState is the classic circuit-breaker trio.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is one engine key's circuit breaker. It outlives the pool
// entry it guards: a quarantined engine's entry is deleted so the next
// Acquire rebuilds, but the breaker persists and decides when that
// rebuild may run. All methods are called with Pool.mu held.
//
// States: closed admits everything; a fault or failed build trips to
// open, which sheds with *QuarantinedError carrying the remaining
// cooldown; once the cooldown expires the next acquirer becomes the
// half-open probe and performs the one allowed rebuild — success resets
// to closed, failure re-trips with the backoff doubled (capped).
type breaker struct {
	state   breakerState
	until   time.Time     // open: when the cooldown ends
	backoff time.Duration // the cooldown the last trip charged
	probing bool          // half-open: the single probe build is in flight
	trips   uint64
}

// allow reports whether an acquire that needs a build may proceed. When
// shed, retry is how long the caller should wait. In half-open, exactly
// one caller wins the probe slot; the pool marks the probe finished via
// settle.
func (b *breaker) allow(now time.Time) (ok bool, retry time.Duration) {
	switch b.state {
	case breakerClosed:
		return true, 0
	case breakerOpen:
		if now.Before(b.until) {
			return false, b.until.Sub(now)
		}
		b.state = breakerHalfOpen
		fallthrough
	default: // half-open
		if b.probing {
			return false, b.backoff
		}
		b.probing = true
		return true, 0
	}
}

// trip records a fault or failed build: the breaker opens and the
// cooldown doubles, capped at RebuildBackoffMax.
func (b *breaker) trip(now time.Time, o Options) {
	if b.backoff <= 0 {
		b.backoff = o.RebuildBackoff
	} else if b.state != breakerClosed {
		// Re-tripping from open/half-open escalates; a fresh trip from
		// closed restarts at the base cooldown.
		b.backoff *= 2
	} else {
		b.backoff = o.RebuildBackoff
	}
	if b.backoff > o.RebuildBackoffMax {
		b.backoff = o.RebuildBackoffMax
	}
	b.state = breakerOpen
	b.until = now.Add(b.backoff)
	b.probing = false
	b.trips++
}

// settle resolves the half-open probe (or a closed-state build): success
// resets the breaker, failure re-trips with escalated backoff.
func (b *breaker) settle(now time.Time, o Options, success bool) {
	b.probing = false
	if success {
		b.state = breakerClosed
		b.backoff = 0
		return
	}
	b.trip(now, o)
}
