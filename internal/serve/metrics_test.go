package serve

import "testing"

// TestPercentileCeilingNearestRank pins the ceiling nearest-rank
// behavior on small windows, where the old truncating rank
// systematically under-reported the tail: with 100 samples p99 read
// index 98 (the 99th smallest) instead of the maximum.
func TestPercentileCeilingNearestRank(t *testing.T) {
	seq := func(n int) []float64 {
		s := make([]float64, n)
		for i := range s {
			s[i] = float64(i + 1) // sorted 1..n
		}
		return s
	}
	cases := []struct {
		name string
		n    int
		q    float64
		want float64
	}{
		{"empty", 0, 0.99, 0},
		{"single", 1, 0.99, 1},
		{"single p50", 1, 0.50, 1},
		{"p99 of 100 is the max", 100, 0.99, 100},
		{"p99 of 10 is the max", 10, 0.99, 10},
		{"p99 of 1000", 1000, 0.99, 991},
		{"p50 of 2 rounds up", 2, 0.50, 2},
		{"p50 of 100", 100, 0.50, 51},
		{"p0 is the min", 10, 0, 1},
		{"p100 is the max", 10, 1, 10},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := percentile(seq(tc.n), tc.q); got != tc.want {
				t.Fatalf("percentile(n=%d, q=%v) = %v, want %v", tc.n, tc.q, got, tc.want)
			}
		})
	}
}
