package serve

import "testing"

// TestPercentileCeilingNearestRank pins the ceiling nearest-rank
// behavior on small windows, where the old truncating rank
// systematically under-reported the tail: with 100 samples p99 read
// index 98 (the 99th smallest) instead of the maximum.
func TestPercentileCeilingNearestRank(t *testing.T) {
	seq := func(n int) []float64 {
		s := make([]float64, n)
		for i := range s {
			s[i] = float64(i + 1) // sorted 1..n
		}
		return s
	}
	cases := []struct {
		name string
		n    int
		q    float64
		want float64
	}{
		{"empty", 0, 0.99, 0},
		{"single", 1, 0.99, 1},
		{"single p50", 1, 0.50, 1},
		{"p99 of 100 is the max", 100, 0.99, 100},
		{"p99 of 10 is the max", 10, 0.99, 10},
		{"p99 of 1000", 1000, 0.99, 991},
		{"p50 of 2 rounds up", 2, 0.50, 2},
		{"p50 of 100", 100, 0.50, 51},
		{"p0 is the min", 10, 0, 1},
		{"p100 is the max", 10, 1, 10},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := percentile(seq(tc.n), tc.q); got != tc.want {
				t.Fatalf("percentile(n=%d, q=%v) = %v, want %v", tc.n, tc.q, got, tc.want)
			}
		})
	}
}

// TestSnapshotPercentileWindowOnRingWrap: once more than latRingSize
// samples have been recorded, the percentile window must be exactly the
// most recent latRingSize samples — the wrapped slots' old values must
// be gone, and nLat (which counts every sample ever) must not inflate
// the window length.
func TestSnapshotPercentileWindowOnRingWrap(t *testing.T) {
	var c collector
	// Fill the ring with high-latency samples, then wrap it completely
	// with low-latency ones plus a quarter turn more.
	high := make([]float64, latRingSize)
	for i := range high {
		high[i] = 1000
	}
	c.recordBatch(latRingSize, high)
	low := make([]float64, latRingSize+latRingSize/4)
	for i := range low {
		low[i] = 1
	}
	c.recordBatch(len(low), low)

	m := c.snapshot(0)
	if m.P50Ms != 1 || m.P99Ms != 1 {
		t.Fatalf("after full wrap p50=%v p99=%v, want 1/1 — old window leaked in", m.P50Ms, m.P99Ms)
	}

	// Partial wrap: the window is the latest latRingSize samples, a mix
	// of the tail of the low run and a fresh spike. The spike is 1/8 of
	// the window, so p50 stays low and p99 sees it.
	spike := make([]float64, latRingSize/8)
	for i := range spike {
		spike[i] = 2000
	}
	c.recordBatch(len(spike), spike)
	m = c.snapshot(0)
	if m.P50Ms != 1 {
		t.Fatalf("p50 = %v, want 1 (spike is only 1/8 of the window)", m.P50Ms)
	}
	if m.P99Ms != 2000 {
		t.Fatalf("p99 = %v, want 2000 (spike must be inside the window)", m.P99Ms)
	}
}
