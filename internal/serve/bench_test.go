package serve

import (
	"context"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/method"
	"repro/internal/spmv"
)

// BenchmarkSchedulerSubmit measures the serving path end to end —
// submit, coalesce, SpMM, demultiplex — under the parallelism the
// benchmark harness offers (-cpu to vary). Compare against the raw
// engine benchmarks in internal/spmv to see the scheduling overhead.
func BenchmarkSchedulerSubmit(b *testing.B) {
	a := gen.Laplace2D(64, 64, false)
	bd, err := method.BuildByName("s2d", a, 4, method.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := spmv.New(bd)
	if err != nil {
		b.Fatal(err)
	}
	s := newScheduler(eng, a.Rows, a.Cols,
		Options{MaxBatch: 8, MaxWait: 100 * time.Microsecond}.withDefaults(), EngineKey{}, "", nil, nil)
	defer s.close()

	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := s.submit(context.Background(), x); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	m := s.metrics()
	b.ReportMetric(m.MeanBatch, "batchwidth")
}
