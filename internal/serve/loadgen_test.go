package serve

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"
)

func TestLoadGenSweep(t *testing.T) {
	p := NewPool(Options{Seed: 1})
	t.Cleanup(p.Close)
	if err := p.AddMatrix("lap", testMatrix(t, 16, 16)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(p))
	t.Cleanup(ts.Close)

	recs, err := LoadGen(context.Background(), LoadGenConfig{
		BaseURL:     ts.URL,
		Matrix:      "lap",
		Methods:     []string{"s2d", "1d"},
		K:           4,
		Concurrency: []int{1, 8},
		Duration:    80 * time.Millisecond,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("records = %d, want 4 (2 methods x 2 concurrencies)", len(recs))
	}
	for _, r := range recs {
		if r.Kind != "serve" {
			t.Errorf("%s/c=%d: kind = %q, want serve", r.Method, r.Concurrency, r.Kind)
		}
		if r.Requests == 0 {
			t.Errorf("%s/c=%d: no requests completed", r.Method, r.Concurrency)
		}
		if r.Errors != 0 {
			t.Errorf("%s/c=%d: %d errors", r.Method, r.Concurrency, r.Errors)
		}
		if r.MeanBatch < 1 {
			t.Errorf("%s/c=%d: mean batch %.2f < 1", r.Method, r.Concurrency, r.MeanBatch)
		}
		if r.RPS <= 0 || r.NsPerOp <= 0 {
			t.Errorf("%s/c=%d: rps=%v ns_per_op=%v", r.Method, r.Concurrency, r.RPS, r.NsPerOp)
		}
		if r.Schedule == "" || r.Rows != 256 {
			t.Errorf("%s/c=%d: schedule=%q rows=%d", r.Method, r.Concurrency, r.Schedule, r.Rows)
		}
		// JSON sweeps sample server-side timings: the slowest sampled
		// request's breakdown and per-stage percentiles ride along.
		if r.TraceSample == nil || r.TraceSample.TraceID == "" || len(r.TraceSample.Stages) == 0 {
			t.Errorf("%s/c=%d: trace_sample missing or empty: %+v", r.Method, r.Concurrency, r.TraceSample)
		}
		for _, stage := range []string{StageDecode, StageQueue, StageAssemble, StageFlush, StageEncode} {
			if _, ok := r.StageP50Ms[stage]; !ok {
				t.Errorf("%s/c=%d: stage_p50_ms missing %q: %v", r.Method, r.Concurrency, stage, r.StageP50Ms)
			}
			if _, ok := r.StageP99Ms[stage]; !ok {
				t.Errorf("%s/c=%d: stage_p99_ms missing %q: %v", r.Method, r.Concurrency, stage, r.StageP99Ms)
			}
		}
	}
}

func TestLoadGenUnknownMatrix(t *testing.T) {
	p := NewPool(Options{Seed: 1})
	t.Cleanup(p.Close)
	ts := httptest.NewServer(NewServer(p))
	t.Cleanup(ts.Close)
	_, err := LoadGen(context.Background(), LoadGenConfig{BaseURL: ts.URL, Matrix: "ghost"})
	if err == nil {
		t.Fatal("expected error for unregistered matrix")
	}
}
