package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/spmv"
)

// scheduler coalesces concurrent single-vector multiply submissions into
// SpMM batches on one engine. A single runner goroutine owns the engine
// (Multiply calls must never overlap), draining the queues in flushes of
// up to maxBatch requests; a flush fires as soon as maxBatch requests
// are eligible, or when the oldest queued request has waited maxWait.
//
// Admission and ordering are per tenant. Each tenant has its own FIFO
// bounded by its quota — a hot tenant filling its queue sheds its own
// traffic with *OverloadError while everyone else keeps enqueueing — and
// flushes assemble across tenant queues by stride scheduling: each
// tenant carries a virtual "pass" advanced by 1/weight per served
// request, and the assembler repeatedly takes the head of the
// lowest-pass queue. Under contention tenant i therefore receives a
// weight_i / Σweights share of every engine's flush bandwidth,
// independent of how hard anyone else is offering.
//
// Demultiplexed results are bit-identical to solo Multiply calls: the
// block kernels accumulate every column in the scalar kernels' exact
// nonzero order, and fold order is fixed by sender rank either way.
type scheduler struct {
	eng        spmv.Multiplier
	rows, cols int
	opt        Options
	key        EngineKey

	mu     sync.Mutex
	tq     map[*Tenant]*tenantQueue
	nq     int       // total queued requests across tenants
	oldest time.Time // earliest enqueue time among queued requests
	vtime  float64   // stride scheduler's global virtual time
	closed bool

	wake chan struct{} // capacity 1; runner wake-up
	wg   sync.WaitGroup

	// Engine-fault state: once a flush faults, faulted flips and every
	// later submission fails fast with faultCause instead of queueing
	// against a poisoned engine. onFault (the pool's quarantine) fires
	// exactly once.
	faulted    atomic.Bool
	faultCause atomic.Value // of error
	faultOnce  sync.Once
	onFault    func(cause error)

	m collector

	// Stage attribution state, owned by the runner goroutine. availT is
	// when the engine last became free (end of the previous flush): a
	// request waits in "queue" while the engine serves earlier flushes
	// (availT − enq) and in "assemble" from max(enq, availT) until the
	// engine starts — the deliberate MaxWait aging plus batch take. The
	// three stages sum exactly to the request's measured latency.
	availT  time.Time
	kernel  string            // engine's kernel selection, for flush spans
	sampler spmv.PhaseSampler // non-nil when the engine exposes phase timings
	// Cached per-engine stage histogram children (nil without instruments).
	hQueue, hAssemble, hFlush *obs.Histogram
	inst                      *instruments
}

// tenantQueue is one tenant's FIFO on one engine plus its stride state
// and the tenant's cached stage-histogram children.
type tenantQueue struct {
	tn   *Tenant
	reqs []*request
	pass float64 // virtual time; lowest pass is served next

	hQueue, hAssemble, hFlush *obs.Histogram
}

// request is one queued multiply. The caller owns x (and must not write
// it until its submission returns); y is allocated by the flush that
// serves it. A submission never returns while a flush holds the
// request, so the engine is never reading x after the caller regains
// control of it. transpose marks a y ← Aᵀx submission; a flush only
// ever coalesces requests of one direction.
type request struct {
	x         []float64
	y         []float64
	tn        *Tenant
	transpose bool
	err       error
	done      chan struct{}
	enq       time.Time
	sink      *stageSink // optional per-request trace sink
	tq        *tenantQueue
}

func newScheduler(eng spmv.Multiplier, rows, cols int, opt Options, key EngineKey, kernel string, inst *instruments, onFault func(cause error)) *scheduler {
	s := &scheduler{
		eng:     eng,
		rows:    rows,
		cols:    cols,
		opt:     opt,
		key:     key,
		kernel:  kernel,
		inst:    inst,
		onFault: onFault,
		tq:      make(map[*Tenant]*tenantQueue),
		wake:    make(chan struct{}, 1),
		availT:  time.Now(),
	}
	if inst != nil {
		s.hQueue, s.hAssemble, s.hFlush = inst.engineStages(key)
	}
	// Arm phase sampling before the runner can flush: LastPhases is read
	// by the runner after every multiply (the dispatch barrier orders the
	// worker's writes before that read).
	if ps, ok := eng.(spmv.PhaseSampler); ok {
		ps.SamplePhases(true)
		s.sampler = ps
	}
	s.wg.Add(1)
	go s.run()
	return s
}

// defaultTenant is the tenant internal submissions run as.
func (s *scheduler) defaultTenant() *Tenant { return s.opt.Tenants.Default() }

// submit queues x for the next batch as the default tenant and blocks
// until the result is demultiplexed back or ctx is cancelled.
func (s *scheduler) submit(ctx context.Context, x []float64) ([]float64, error) {
	return s.submitOne(ctx, s.defaultTenant(), x, false)
}

// submitT is submit for the transpose product y ← Aᵀx (x length rows,
// y length cols). Transpose submissions coalesce with each other but
// never into a forward batch.
func (s *scheduler) submitT(ctx context.Context, x []float64) ([]float64, error) {
	return s.submitOne(ctx, s.defaultTenant(), x, true)
}

// submitOne is submitBatch for a single vector.
func (s *scheduler) submitOne(ctx context.Context, tn *Tenant, x []float64, transpose bool) ([]float64, error) {
	ys, err := s.submitBatch(ctx, tn, [][]float64{x}, transpose)
	if err != nil {
		return nil, err
	}
	return ys[0], nil
}

// submitBatch queues xs (one request per vector, all one direction) for
// tenant tn and blocks until every result is back or ctx cancels. The
// vectors enqueue atomically — admission control accepts or rejects the
// whole call against the tenant's quota, so a multi-RHS request never
// half-lands — but they flush independently, coalescing with whatever
// else is queued. On error the results are invalid; the first error
// (by submission order) is returned.
func (s *scheduler) submitBatch(ctx context.Context, tn *Tenant, xs [][]float64, transpose bool) ([][]float64, error) {
	if tn == nil {
		tn = s.defaultTenant()
	}
	want := s.cols
	if transpose {
		want = s.rows
	}
	for _, x := range xs {
		if len(x) != want {
			return nil, &DimensionError{Got: len(x), Want: want, What: "x"}
		}
	}
	if len(xs) == 0 {
		return nil, nil
	}
	// A request arriving already expired (server-side deadline, client
	// cancel) never enqueues: rejecting here keeps a dead request from
	// widening a batch or occupying queue depth.
	if err := ctx.Err(); err != nil {
		s.m.cancel()
		return nil, err
	}
	// A faulted engine fails fast — the queue drains through poisoned
	// flushes during quarantine, so joining it buys nothing but latency.
	if s.faulted.Load() {
		return nil, s.faultError()
	}
	now := time.Now()
	sink := sinkFrom(ctx)
	reqs := make([]*request, len(xs))
	for i, x := range xs {
		reqs[i] = &request{x: x, tn: tn, transpose: transpose, done: make(chan struct{}), enq: now, sink: sink}
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	q := s.queueForLocked(tn)
	limit := tn.MaxQueue
	if limit <= 0 {
		limit = s.opt.MaxQueue
	}
	if len(q.reqs)+len(reqs) > limit {
		depth := len(q.reqs)
		s.mu.Unlock()
		tn.rejections.Add(uint64(len(reqs)))
		s.m.overload()
		return nil, &OverloadError{Tenant: tn.Name, Depth: depth, Limit: limit}
	}
	if s.nq == 0 {
		s.oldest = now
	}
	for _, r := range reqs {
		r.tq = q
	}
	q.reqs = append(q.reqs, reqs...)
	s.nq += len(reqs)
	n := s.nq
	s.mu.Unlock()

	// Wake the runner when the queue goes non-empty (it may be parked
	// with nothing to wait for) and when a full batch may be ready (it
	// may be sitting out the remainder of a maxWait window).
	if n == len(reqs) || n >= s.opt.MaxBatch {
		s.wakeRunner()
	}

	ys := make([][]float64, len(reqs))
	var firstErr error
	for i, req := range reqs {
		select {
		case <-req.done:
		case <-ctx.Done():
			// Still queued → remove it ourselves: it never widens a batch
			// and the caller gets its x slice back immediately. Already
			// claimed by a flush → the engine is reading x right now, so
			// wait the flush out (one multiply, bounded) and take its
			// result; returning early would hand the caller a slice the
			// engine workers are still reading.
			if s.dequeue(req) {
				s.m.cancel()
				req.err = ctx.Err()
			} else {
				<-req.done
			}
		}
		ys[i] = req.y
		if req.err != nil && firstErr == nil {
			firstErr = req.err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return ys, nil
}

// queueForLocked finds or creates tn's queue. A queue (re)activating
// picks up the global virtual time so an idle tenant cannot bank an
// arbitrarily low pass and then monopolize the next flushes.
func (s *scheduler) queueForLocked(tn *Tenant) *tenantQueue {
	q := s.tq[tn]
	if q == nil {
		q = &tenantQueue{tn: tn, pass: s.vtime}
		if s.inst != nil {
			q.hQueue, q.hAssemble, q.hFlush = s.inst.tenantStages(tn.Name)
		}
		s.tq[tn] = q
	} else if len(q.reqs) == 0 && q.pass < s.vtime {
		q.pass = s.vtime
	}
	return q
}

// dequeue removes a still-queued request, reporting false when a flush
// has already claimed it.
func (s *scheduler) dequeue(req *request) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	q := s.tq[req.tn]
	if q == nil {
		return false
	}
	for i, r := range q.reqs {
		if r == req {
			q.reqs = append(q.reqs[:i], q.reqs[i+1:]...)
			s.nq--
			s.recomputeOldestLocked()
			return true
		}
	}
	return false
}

// recomputeOldestLocked resets oldest to the earliest queued request
// (queues are FIFO, so only heads matter).
func (s *scheduler) recomputeOldestLocked() {
	var oldest time.Time
	for _, q := range s.tq { //spmvlint:unordered running min over enqueue times
		if len(q.reqs) == 0 {
			continue
		}
		if oldest.IsZero() || q.reqs[0].enq.Before(oldest) {
			oldest = q.reqs[0].enq
		}
	}
	s.oldest = oldest
}

func (s *scheduler) wakeRunner() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// run is the engine-owning loop: park while the queues are empty, honor
// the maxWait window while a partial batch ages, flush otherwise.
func (s *scheduler) run() {
	defer s.wg.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		s.mu.Lock()
		n := s.nq
		closed := s.closed
		wait := time.Duration(0)
		// The flushable batch is what the fair assembler could take right
		// now (homogeneous in direction), not the raw queue total: a full
		// queue of mixed directions must not zero the wait, or a lone
		// head request would flush sub-width with no window.
		if n > 0 && s.eligibleWidthLocked() < s.opt.MaxBatch && !closed {
			wait = s.opt.MaxWait - time.Since(s.oldest)
		}
		var batch []*request
		if n > 0 && wait <= 0 {
			batch = s.takeBatchLocked()
		}
		s.mu.Unlock()

		switch {
		case batch != nil:
			s.flush(batch)
		case n == 0 && closed:
			return
		case n == 0:
			<-s.wake
		default: // partial batch aging: wake early on a full batch or close
			timer.Reset(wait)
			select {
			case <-s.wake:
				if !timer.Stop() {
					<-timer.C
				}
			case <-timer.C:
			}
		}
	}
}

// minPassLocked returns the non-empty tenant queue with the lowest
// pass, optionally restricted to queues whose head matches direction d.
// Ties break on tenant name so behavior is stable under the map's
// iteration order.
func (s *scheduler) minPassLocked(d *bool) *tenantQueue {
	var best *tenantQueue
	for _, q := range s.tq { //spmvlint:unordered selection with a total tie-break (pass, then tenant name)
		if len(q.reqs) == 0 {
			continue
		}
		if d != nil && q.reqs[0].transpose != *d {
			continue
		}
		if best == nil || q.pass < best.pass ||
			(q.pass == best.pass && q.tn.Name < best.tn.Name) {
			best = q
		}
	}
	return best
}

// eligibleWidthLocked reports how many requests the fair assembler
// could flush right now: the direction is set by the request it would
// serve first, and each tenant contributes its queue's prefix run of
// that direction. Capped at MaxBatch — the width the next flush would
// coalesce.
func (s *scheduler) eligibleWidthLocked() int {
	first := s.minPassLocked(nil)
	if first == nil {
		return 0
	}
	d := first.reqs[0].transpose
	width := 0
	for _, q := range s.tq { //spmvlint:unordered commutative count, capped at MaxBatch
		for _, r := range q.reqs {
			if r.transpose != d {
				break
			}
			width++
			if width >= s.opt.MaxBatch {
				return width
			}
		}
	}
	return width
}

// popLocked removes q's head, advances the stride clock, and returns
// the request.
func (s *scheduler) popLocked(q *tenantQueue) *request {
	req := q.reqs[0]
	q.reqs[0] = nil
	q.reqs = q.reqs[1:]
	s.nq--
	s.vtime = q.pass
	q.pass += q.tn.stride()
	return req
}

// takeBatchLocked assembles up to MaxBatch requests by stride
// scheduling: pop the head of the lowest-pass queue, then keep popping
// from the lowest-pass queue whose head matches the first request's
// direction. A batch is homogeneous in direction, so forward and
// transpose traffic each flush as their own SpMM; under contention each
// tenant's share of the batch converges to its weight share.
func (s *scheduler) takeBatchLocked() []*request {
	first := s.minPassLocked(nil)
	if first == nil {
		return nil
	}
	batch := make([]*request, 0, s.opt.MaxBatch)
	batch = append(batch, s.popLocked(first))
	d := batch[0].transpose
	for len(batch) < s.opt.MaxBatch {
		q := s.minPassLocked(&d)
		if q == nil {
			break
		}
		batch = append(batch, s.popLocked(q))
	}
	s.recomputeOldestLocked()
	return batch
}

// flush runs one coalesced multiply and demultiplexes the results.
// (Requests cancelled while queued were dequeued by their submitters,
// so everything in the batch is live.) A fault fails the whole batch
// with a typed *EngineFaultError and triggers the pool's quarantine —
// once, however many flushes race the poisoned engine afterwards.
func (s *scheduler) flush(batch []*request) {
	var ft flushTiming
	err, fault := s.multiply(batch, &ft)
	if fault {
		err = s.recordFault(err)
	}
	end := time.Now()
	avail := s.availT // engine was free since the previous flush ended
	s.availT = end

	var ph spmv.PhaseTimings
	var phOK bool
	if s.sampler != nil && err == nil {
		ph, phOK = s.sampler.LastPhases()
	}
	engOK := err == nil && !ft.engStart.IsZero()

	latMs := make([]float64, 0, len(batch))
	for _, r := range batch {
		r.err = err
		latMs = append(latMs, msSince(r.enq))
		if err == nil {
			r.tn.requests.Add(1)
		}
		if engOK {
			// queue: the engine was busy with earlier flushes; assemble:
			// MaxWait aging plus batch take and buffer prep; flush: the
			// engine multiply. The three sum to engEnd − enq exactly.
			queue := avail.Sub(r.enq)
			if queue < 0 {
				queue = 0
			}
			asmStart := r.enq
			if avail.After(asmStart) {
				asmStart = avail
			}
			assemble := ft.engStart.Sub(asmStart)
			if assemble < 0 {
				assemble = 0
			}
			flushD := ft.engEnd.Sub(ft.engStart)
			s.observeStages(r, queue, assemble, flushD)
			if r.sink != nil {
				r.sink.addFlush(queue, assemble, flushD, len(batch), s.kernel, ph, phOK)
			}
		}
		close(r.done)
	}
	switch {
	case fault:
		s.m.fault(len(batch))
	case err != nil:
		s.m.fail(len(batch))
	default:
		s.m.recordBatch(len(batch), latMs)
	}
}

// recordFault converts an engine fault into the typed error every caught
// request sees, latches the fast-fail state, and fires the pool's
// quarantine exactly once.
func (s *scheduler) recordFault(cause error) error {
	err := &EngineFaultError{Key: s.key, Cause: cause}
	s.faultCause.CompareAndSwap(nil, error(err))
	s.faulted.Store(true)
	s.faultOnce.Do(func() {
		if s.onFault != nil {
			s.onFault(cause)
		}
	})
	return err
}

// faultError returns the latched fault for fast-fail submissions.
func (s *scheduler) faultError() error {
	if err, ok := s.faultCause.Load().(error); ok {
		return err
	}
	return &EngineFaultError{Key: s.key, Cause: ErrEngineFault}
}

// observeStages records one request's scheduler-stage durations into
// the per-engine and per-tenant histograms.
func (s *scheduler) observeStages(r *request, queue, assemble, flush time.Duration) {
	if s.hQueue != nil {
		s.hQueue.Observe(queue.Seconds())
		s.hAssemble.Observe(assemble.Seconds())
		s.hFlush.Observe(flush.Seconds())
	}
	if q := r.tq; q != nil && q.hQueue != nil {
		q.hQueue.Observe(queue.Seconds())
		q.hAssemble.Observe(assemble.Seconds())
		q.hFlush.Observe(flush.Seconds())
	}
}

// flushTiming brackets the engine call inside one flush; engStart stays
// zero when the flush dies before reaching the engine.
type flushTiming struct {
	engStart, engEnd time.Time
}

// multiply executes the batch on the engine. fault reports conditions
// that poison the engine and demand quarantine: a panic anywhere in the
// flush path (contained worker panics surface as *spmv.EngineFaultError,
// scheduler-level ones via recover) or corrupted output payloads. A
// plain error (e.g. racing a Close) fails the batch without quarantine.
func (s *scheduler) multiply(batch []*request, ft *flushTiming) (err error, fault bool) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: flush panic: %v", r)
			fault = true
		}
	}()
	inj := s.opt.Injector
	if inj.Fire("flush.panic") {
		panic("faultinject: flush.panic") //spmvlint:allowpanic fault injection; contained by runContained
	}
	if inj.Fire("flush.slow") {
		time.Sleep(s.opt.FlushDelay)
	}
	transpose := batch[0].transpose
	outLen := s.rows
	if transpose {
		outLen = s.cols
	}
	if len(batch) == 1 {
		batch[0].y = make([]float64, outLen)
		ft.engStart = time.Now()
		if transpose {
			err = s.eng.MultiplyTranspose(batch[0].x, batch[0].y)
		} else {
			err = s.eng.Multiply(batch[0].x, batch[0].y)
		}
		ft.engEnd = time.Now()
	} else {
		X := make([][]float64, len(batch))
		Y := make([][]float64, len(batch))
		for i, r := range batch {
			r.y = make([]float64, outLen)
			X[i] = r.x
			Y[i] = r.y
		}
		ft.engStart = time.Now()
		if transpose {
			err = s.eng.MultiplyTransposeMulti(X, Y)
		} else {
			err = s.eng.MultiplyMulti(X, Y)
		}
		ft.engEnd = time.Now()
	}
	if err != nil {
		var fe *spmv.EngineFaultError
		return err, errors.As(err, &fe)
	}
	if inj.Fire("flush.nan") {
		batch[0].y[0] = math.NaN()
	}
	if s.opt.PayloadChecks {
		for _, r := range batch {
			for _, v := range r.y {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return fmt.Errorf("serve: corrupted payload (NaN/Inf) in flush output"), true
				}
			}
		}
	}
	return nil, false
}

// metrics snapshots the collector with the live queue depth.
func (s *scheduler) metrics() Metrics {
	s.mu.Lock()
	depth := s.nq
	s.mu.Unlock()
	return s.m.snapshot(depth)
}

// tenantDepths reports the live queue occupancy per tenant; the pool
// sums these across engines for /metrics.
func (s *scheduler) tenantDepths(into map[*Tenant]int) {
	s.mu.Lock()
	for tn, q := range s.tq {
		if len(q.reqs) > 0 {
			into[tn] += len(q.reqs)
		}
	}
	s.mu.Unlock()
}

// close drains the queues (pending requests still complete), stops the
// runner, and closes the engine. Safe to call twice.
func (s *scheduler) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.wakeRunner()
	s.wg.Wait()
	s.eng.Close()
}
