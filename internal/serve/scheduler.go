package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/spmv"
)

// scheduler coalesces concurrent single-vector multiply submissions into
// SpMM batches on one engine. A single runner goroutine owns the engine
// (Multiply calls must never overlap), draining the queue in flushes of
// up to maxBatch requests; a flush fires as soon as maxBatch requests
// are queued, or when the oldest queued request has waited maxWait.
//
// Demultiplexed results are bit-identical to solo Multiply calls: the
// block kernels accumulate every column in the scalar kernels' exact
// nonzero order, and fold order is fixed by sender rank either way.
type scheduler struct {
	eng        spmv.Multiplier
	rows, cols int
	opt        Options
	key        EngineKey

	mu     sync.Mutex
	queue  []*request
	oldest time.Time // enqueue time of queue[0]
	closed bool

	wake chan struct{} // capacity 1; runner wake-up
	wg   sync.WaitGroup

	// Engine-fault state: once a flush faults, faulted flips and every
	// later submission fails fast with faultCause instead of queueing
	// against a poisoned engine. onFault (the pool's quarantine) fires
	// exactly once.
	faulted    atomic.Bool
	faultCause atomic.Value // of error
	faultOnce  sync.Once
	onFault    func(cause error)

	m collector
}

// request is one queued multiply. The caller owns x (and must not write
// it until submit returns); y is allocated by the flush that serves it.
// submit never returns while a flush holds the request, so the engine
// is never reading x after the caller regains control of it. transpose
// marks a y ← Aᵀx submission; a flush only ever coalesces requests of
// one direction.
type request struct {
	x         []float64
	y         []float64
	transpose bool
	err       error
	done      chan struct{}
	enq       time.Time
}

func newScheduler(eng spmv.Multiplier, rows, cols int, opt Options, key EngineKey, onFault func(cause error)) *scheduler {
	s := &scheduler{
		eng:     eng,
		rows:    rows,
		cols:    cols,
		opt:     opt,
		key:     key,
		onFault: onFault,
		wake:    make(chan struct{}, 1),
	}
	s.wg.Add(1)
	go s.run()
	return s
}

// submit queues x for the next batch and blocks until the result is
// demultiplexed back or ctx is cancelled. Admission control fails fast:
// a full queue returns *OverloadError without blocking.
func (s *scheduler) submit(ctx context.Context, x []float64) ([]float64, error) {
	return s.submitOp(ctx, x, false)
}

// submitT is submit for the transpose product y ← Aᵀx (x length rows,
// y length cols). Transpose submissions coalesce with each other but
// never into a forward batch.
func (s *scheduler) submitT(ctx context.Context, x []float64) ([]float64, error) {
	return s.submitOp(ctx, x, true)
}

func (s *scheduler) submitOp(ctx context.Context, x []float64, transpose bool) ([]float64, error) {
	want := s.cols
	if transpose {
		want = s.rows
	}
	if len(x) != want {
		return nil, &DimensionError{Got: len(x), Want: want, What: "x"}
	}
	// A request arriving already expired (server-side deadline, client
	// cancel) never enqueues: rejecting here keeps a dead request from
	// widening a batch or occupying queue depth.
	if err := ctx.Err(); err != nil {
		s.m.cancel()
		return nil, err
	}
	// A faulted engine fails fast — the queue drains through poisoned
	// flushes during quarantine, so joining it buys nothing but latency.
	if s.faulted.Load() {
		return nil, s.faultError()
	}
	req := &request{x: x, transpose: transpose, done: make(chan struct{}), enq: time.Now()}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if len(s.queue) >= s.opt.MaxQueue {
		depth := len(s.queue)
		s.mu.Unlock()
		s.m.overload()
		return nil, &OverloadError{Depth: depth, Limit: s.opt.MaxQueue}
	}
	if len(s.queue) == 0 {
		s.oldest = req.enq
	}
	s.queue = append(s.queue, req)
	n := len(s.queue)
	s.mu.Unlock()

	// Wake the runner when the queue goes non-empty (it may be parked
	// with nothing to wait for) and when a full batch is ready (it may be
	// sitting out the remainder of a maxWait window).
	if n == 1 || n >= s.opt.MaxBatch {
		s.wakeRunner()
	}

	select {
	case <-req.done:
		return req.y, req.err
	case <-ctx.Done():
		// Still queued → remove it ourselves: it never widens a batch and
		// the caller gets its x slice back immediately. Already claimed by
		// a flush → the engine is reading x right now, so wait the flush
		// out (one multiply, bounded) and return its result; returning
		// early would hand the caller a slice the engine workers are
		// still reading.
		if s.dequeue(req) {
			s.m.cancel()
			return nil, ctx.Err()
		}
		<-req.done
		return req.y, req.err
	}
}

// dequeue removes a still-queued request, reporting false when a flush
// has already claimed it.
func (s *scheduler) dequeue(req *request) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, r := range s.queue {
		if r == req {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			if i == 0 && len(s.queue) > 0 {
				s.oldest = s.queue[0].enq
			}
			return true
		}
	}
	return false
}

func (s *scheduler) wakeRunner() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// run is the engine-owning loop: park while the queue is empty, honor
// the maxWait window while a partial batch ages, flush otherwise.
func (s *scheduler) run() {
	defer s.wg.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		s.mu.Lock()
		n := len(s.queue)
		closed := s.closed
		wait := time.Duration(0)
		// The flushable batch is the homogeneous head run, not the whole
		// queue: a full queue of mixed directions must not zero the wait,
		// or a lone head request would flush sub-width with no window.
		if n > 0 && s.headRunLocked() < s.opt.MaxBatch && !closed {
			wait = s.opt.MaxWait - time.Since(s.oldest)
		}
		var batch []*request
		if n > 0 && wait <= 0 {
			batch = s.takeBatchLocked()
		}
		s.mu.Unlock()

		switch {
		case batch != nil:
			s.flush(batch)
		case n == 0 && closed:
			return
		case n == 0:
			<-s.wake
		default: // partial batch aging: wake early on a full batch or close
			timer.Reset(wait)
			select {
			case <-s.wake:
				if !timer.Stop() {
					<-timer.C
				}
			case <-timer.C:
			}
		}
	}
}

// headRunLocked reports how many requests at the queue head share the
// head's direction, capped at MaxBatch — the width the next flush
// would coalesce.
func (s *scheduler) headRunLocked() int {
	run := 1
	for run < len(s.queue) && run < s.opt.MaxBatch &&
		s.queue[run].transpose == s.queue[0].transpose {
		run++
	}
	return run
}

// takeBatchLocked removes up to MaxBatch requests from the queue head
// and restarts the wait window for the remainder. A batch is
// homogeneous in direction: the run stops at the first request whose
// transpose flag differs from the head's, so forward and transpose
// traffic each flush as their own SpMM.
func (s *scheduler) takeBatchLocked() []*request {
	take := s.headRunLocked()
	batch := s.queue[:take:take]
	s.queue = append([]*request(nil), s.queue[take:]...)
	if len(s.queue) > 0 {
		s.oldest = s.queue[0].enq
	}
	return batch
}

// flush runs one coalesced multiply and demultiplexes the results.
// (Requests cancelled while queued were dequeued by their submitters,
// so everything in the batch is live.) A fault fails the whole batch
// with a typed *EngineFaultError and triggers the pool's quarantine —
// once, however many flushes race the poisoned engine afterwards.
func (s *scheduler) flush(batch []*request) {
	err, fault := s.multiply(batch)
	if fault {
		err = s.recordFault(err)
	}
	latMs := make([]float64, 0, len(batch))
	for _, r := range batch {
		r.err = err
		latMs = append(latMs, msSince(r.enq))
		close(r.done)
	}
	switch {
	case fault:
		s.m.fault(len(batch))
	case err != nil:
		s.m.fail(len(batch))
	default:
		s.m.recordBatch(len(batch), latMs)
	}
}

// recordFault converts an engine fault into the typed error every caught
// request sees, latches the fast-fail state, and fires the pool's
// quarantine exactly once.
func (s *scheduler) recordFault(cause error) error {
	err := &EngineFaultError{Key: s.key, Cause: cause}
	s.faultCause.CompareAndSwap(nil, error(err))
	s.faulted.Store(true)
	s.faultOnce.Do(func() {
		if s.onFault != nil {
			s.onFault(cause)
		}
	})
	return err
}

// faultError returns the latched fault for fast-fail submissions.
func (s *scheduler) faultError() error {
	if err, ok := s.faultCause.Load().(error); ok {
		return err
	}
	return &EngineFaultError{Key: s.key, Cause: ErrEngineFault}
}

// multiply executes the batch on the engine. fault reports conditions
// that poison the engine and demand quarantine: a panic anywhere in the
// flush path (contained worker panics surface as *spmv.EngineFaultError,
// scheduler-level ones via recover) or corrupted output payloads. A
// plain error (e.g. racing a Close) fails the batch without quarantine.
func (s *scheduler) multiply(batch []*request) (err error, fault bool) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: flush panic: %v", r)
			fault = true
		}
	}()
	inj := s.opt.Injector
	if inj.Fire("flush.panic") {
		panic("faultinject: flush.panic")
	}
	if inj.Fire("flush.slow") {
		time.Sleep(s.opt.FlushDelay)
	}
	transpose := batch[0].transpose
	outLen := s.rows
	if transpose {
		outLen = s.cols
	}
	if len(batch) == 1 {
		batch[0].y = make([]float64, outLen)
		if transpose {
			err = s.eng.MultiplyTranspose(batch[0].x, batch[0].y)
		} else {
			err = s.eng.Multiply(batch[0].x, batch[0].y)
		}
	} else {
		X := make([][]float64, len(batch))
		Y := make([][]float64, len(batch))
		for i, r := range batch {
			r.y = make([]float64, outLen)
			X[i] = r.x
			Y[i] = r.y
		}
		if transpose {
			err = s.eng.MultiplyTransposeMulti(X, Y)
		} else {
			err = s.eng.MultiplyMulti(X, Y)
		}
	}
	if err != nil {
		var fe *spmv.EngineFaultError
		return err, errors.As(err, &fe)
	}
	if inj.Fire("flush.nan") {
		batch[0].y[0] = math.NaN()
	}
	if s.opt.PayloadChecks {
		for _, r := range batch {
			for _, v := range r.y {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return fmt.Errorf("serve: corrupted payload (NaN/Inf) in flush output"), true
				}
			}
		}
	}
	return nil, false
}

// metrics snapshots the collector with the live queue depth.
func (s *scheduler) metrics() Metrics {
	s.mu.Lock()
	depth := len(s.queue)
	s.mu.Unlock()
	return s.m.snapshot(depth)
}

// close drains the queue (pending requests still complete), stops the
// runner, and closes the engine. Safe to call twice.
func (s *scheduler) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.wakeRunner()
	s.wg.Wait()
	s.eng.Close()
}
