package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/sparse"
)

func newTestServer(t *testing.T) (*httptest.Server, *Pool) {
	t.Helper()
	p := NewPool(Options{Seed: 1})
	t.Cleanup(p.Close)
	if err := p.AddMatrix("lap", testMatrix(t, 14, 14)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(p))
	t.Cleanup(ts.Close)
	return ts, p
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func TestHTTPMultiply(t *testing.T) {
	ts, p := newTestServer(t)
	a, err := p.Matrix("lap")
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	x := randVec(r, a.Cols)

	resp, body := postJSON(t, ts.URL+"/v1/multiply", multiplyRequest{
		engineRequest: engineRequest{Matrix: "lap", Method: "s2d", K: 4}, X: x,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var mr multiplyResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Schedule != "fused" || mr.Method != "s2D" || mr.K != 4 {
		t.Fatalf("response meta = %+v", mr)
	}
	want := make([]float64, a.Rows)
	a.MulVec(x, want)
	for i := range want {
		if math.Abs(mr.Y[i]-want[i]) > 1e-9 {
			t.Fatalf("y[%d] = %v, want %v", i, mr.Y[i], want[i])
		}
	}
}

func TestHTTPMultiplyDefaults(t *testing.T) {
	ts, _ := newTestServer(t)
	x := make([]float64, 14*14)
	resp, body := postJSON(t, ts.URL+"/v1/multiply", multiplyRequest{
		engineRequest: engineRequest{Matrix: "lap"}, X: x, // method and K omitted
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
}

func TestHTTPErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct {
		name string
		req  multiplyRequest
		want int
	}{
		{"unknown matrix", multiplyRequest{engineRequest: engineRequest{Matrix: "nope"}, X: make([]float64, 196)}, http.StatusNotFound},
		{"unknown method", multiplyRequest{engineRequest: engineRequest{Matrix: "lap", Method: "bogus"}, X: make([]float64, 196)}, http.StatusNotFound},
		{"bad dims", multiplyRequest{engineRequest: engineRequest{Matrix: "lap"}, X: make([]float64, 7)}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/multiply", tc.req)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.want, body)
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
			t.Errorf("%s: error body %q not structured", tc.name, body)
		}
	}
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/v1/multiply", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
}

func TestHTTPSolve(t *testing.T) {
	ts, p := newTestServer(t)
	a, err := p.Matrix("lap")
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	b := randVec(r, a.Rows)

	resp, body := postJSON(t, ts.URL+"/v1/solve", solveRequest{
		engineRequest: engineRequest{Matrix: "lap", Method: "s2d", K: 4},
		B:             b, Tol: 1e-10, MaxIter: 2000,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr solveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Converged {
		t.Fatalf("CG did not converge: %+v", sr)
	}
	// Verify Ax ≈ b against the serial reference.
	ax := make([]float64, a.Rows)
	a.MulVec(sr.X, ax)
	var bn, rn float64
	for i := range b {
		d := ax[i] - b[i]
		rn += d * d
		bn += b[i] * b[i]
	}
	if math.Sqrt(rn/bn) > 1e-8 {
		t.Fatalf("relative residual %v too large", math.Sqrt(rn/bn))
	}
}

func TestHTTPSolveNonSPDIsClientError(t *testing.T) {
	ts, p := newTestServer(t)
	// A matrix with a negative diagonal is indefinite: CG must refuse,
	// and the refusal is the request's fault (422), not a server fault.
	c := sparse.NewCOO(4, 4)
	for i := 0; i < 4; i++ {
		c.Add(i, i, -1)
	}
	if err := p.AddMatrix("neg", c.ToCSR()); err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/v1/solve", solveRequest{
		engineRequest: engineRequest{Matrix: "neg", K: 2},
		B:             []float64{1, 2, 3, 4},
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422 (%s)", resp.StatusCode, body)
	}
}

func TestHTTPMethodsAndMetrics(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/methods")
	if err != nil {
		t.Fatal(err)
	}
	var mr methodsResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(mr.Methods) < 9 {
		t.Fatalf("methods listed = %d, want >= 9 (the paper set)", len(mr.Methods))
	}
	if len(mr.Matrices) != 1 || mr.Matrices[0].Name != "lap" {
		t.Fatalf("matrices = %+v", mr.Matrices)
	}

	// Drive one request, then verify /metrics reflects it.
	x := make([]float64, mr.Matrices[0].Cols)
	if resp, body := postJSON(t, ts.URL+"/v1/multiply", multiplyRequest{
		engineRequest: engineRequest{Matrix: "lap"}, X: x,
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("multiply: %d %s", resp.StatusCode, body)
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var pm PoolMetrics
	if err := json.NewDecoder(resp.Body).Decode(&pm); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if pm.Requests != 1 || len(pm.Engines) != 1 || pm.Engines[0].Schedule == "" {
		t.Fatalf("metrics = %+v, want 1 request on 1 engine", pm)
	}
}

func TestHTTPUpload(t *testing.T) {
	ts, _ := newTestServer(t)
	m := testMatrix(t, 6, 6)
	var mtx bytes.Buffer
	if err := sparse.WriteMatrixMarket(&mtx, m); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/matrices?name=uploaded", "text/plain", &mtx)
	if err != nil {
		t.Fatal(err)
	}
	var mi MatrixInfo
	if err := json.NewDecoder(resp.Body).Decode(&mi); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || mi.Rows != 36 {
		t.Fatalf("upload: status %d info %+v", resp.StatusCode, mi)
	}
	// The uploaded matrix serves immediately.
	x := make([]float64, 36)
	if resp, body := postJSON(t, ts.URL+"/v1/multiply", multiplyRequest{
		engineRequest: engineRequest{Matrix: "uploaded", K: 2}, X: x,
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("multiply on upload: %d %s", resp.StatusCode, body)
	}
	// Garbage uploads are rejected cleanly.
	resp, err = http.Post(ts.URL+"/v1/matrices?name=bad", "text/plain", strings.NewReader("not a matrix"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage upload: status %d, want 400", resp.StatusCode)
	}
}

func TestHTTPOverload(t *testing.T) {
	p := NewPool(Options{Seed: 1, MaxQueue: 1, MaxBatch: 64, MaxWait: time.Hour})
	t.Cleanup(p.Close)
	if err := p.AddMatrix("lap", testMatrix(t, 10, 10)); err != nil {
		t.Fatal(err)
	}
	// Pin the queue: acquire the engine directly and stuff its queue so
	// the HTTP request hits admission control.
	h, err := p.Acquire("lap", "s2d", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	s := h.e.sched
	tn := p.Tenants().Default()
	s.mu.Lock()
	// Synthetic occupant with a fresh window: the runner sits out MaxWait
	// (an hour), so the next submission must hit admission control.
	s.oldest = time.Now()
	q := s.queueForLocked(tn)
	q.reqs = append(q.reqs, &request{tn: tn, done: make(chan struct{}), enq: s.oldest})
	s.nq++
	s.mu.Unlock()

	ts := httptest.NewServer(NewServer(p))
	t.Cleanup(ts.Close)
	resp, body := postJSON(t, ts.URL+"/v1/multiply", multiplyRequest{
		engineRequest: engineRequest{Matrix: "lap"}, X: make([]float64, 100),
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%s)", resp.StatusCode, body)
	}
	// Unstuff so close() can drain.
	s.mu.Lock()
	s.tq = make(map[*Tenant]*tenantQueue)
	s.nq = 0
	s.mu.Unlock()
}

// tallTestMatrix registers a rectangular (tall) constraint-style matrix.
func tallTestMatrix(t *testing.T, p *Pool, name string, rows, cols int) *sparse.CSR {
	t.Helper()
	r := rand.New(rand.NewSource(71))
	c := sparse.NewCOO(rows, cols)
	for j := 0; j < cols; j++ {
		c.Add(j, j, 4+r.Float64())
	}
	for i := cols; i < rows; i++ {
		for k := 0; k < 3; k++ {
			c.Add(i, r.Intn(cols), r.Float64()*2-1)
		}
	}
	a := c.ToCSR()
	if err := p.AddMatrix(name, a); err != nil {
		t.Fatal(err)
	}
	return a
}

// TestHTTPSolveRectangularCGRejected pins the shape guard: an explicit
// CG request on a rectangular system is a 422 naming the shape — not a
// mid-solve engine failure.
func TestHTTPSolveRectangularCGRejected(t *testing.T) {
	ts, p := newTestServer(t)
	a := tallTestMatrix(t, p, "tall", 90, 30)
	resp, body := postJSON(t, ts.URL+"/v1/solve", solveRequest{
		engineRequest: engineRequest{Matrix: "tall", K: 4},
		B:             make([]float64, a.Rows), Solver: "cg",
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422 (%s)", resp.StatusCode, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eb.Error, "90x30") || !strings.Contains(eb.Error, "lsqr") {
		t.Fatalf("error %q must name the shape and the least-squares solvers", eb.Error)
	}
}

// TestHTTPSolveRectangularRoutesToLSQR is the end-to-end acceptance
// path: a rectangular system with no solver field routes to LSQR and
// converges, solving through the engine's transpose plan.
func TestHTTPSolveRectangularRoutesToLSQR(t *testing.T) {
	ts, p := newTestServer(t)
	a := tallTestMatrix(t, p, "tall", 120, 40)
	r := rand.New(rand.NewSource(73))
	want := randVec(r, a.Cols)
	b := make([]float64, a.Rows)
	a.MulVec(want, b)

	resp, body := postJSON(t, ts.URL+"/v1/solve", solveRequest{
		engineRequest: engineRequest{Matrix: "tall", Method: "s2d", K: 4},
		B:             b, Tol: 1e-12, MaxIter: 2000,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr solveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Solver != "lsqr" {
		t.Fatalf("solver = %q, want lsqr (auto-routed)", sr.Solver)
	}
	if !sr.Converged {
		t.Fatalf("LSQR did not converge: %+v", sr)
	}
	for j := range want {
		if math.Abs(sr.X[j]-want[j]) > 1e-6 {
			t.Fatalf("x[%d] = %v, want %v", j, sr.X[j], want[j])
		}
	}
}

// TestHTTPSolveCGNRExplicit exercises the explicit cgnr route on the
// same rectangular system.
func TestHTTPSolveCGNRExplicit(t *testing.T) {
	ts, p := newTestServer(t)
	a := tallTestMatrix(t, p, "tall", 100, 25)
	r := rand.New(rand.NewSource(79))
	want := randVec(r, a.Cols)
	b := make([]float64, a.Rows)
	a.MulVec(want, b)

	resp, body := postJSON(t, ts.URL+"/v1/solve", solveRequest{
		engineRequest: engineRequest{Matrix: "tall", K: 4},
		B:             b, Solver: "CGNR", Tol: 1e-12, MaxIter: 2000,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr solveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Solver != "cgnr" || !sr.Converged {
		t.Fatalf("response = %+v, want converged cgnr", sr)
	}
}

// TestHTTPSolveUnknownSolver is a 400 naming the supported solvers.
func TestHTTPSolveUnknownSolver(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/solve", solveRequest{
		engineRequest: engineRequest{Matrix: "lap"},
		B:             make([]float64, 196), Solver: "sor",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (%s)", resp.StatusCode, body)
	}
}
