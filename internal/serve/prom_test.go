package serve

import (
	"reflect"
	"sort"
	"strings"
	"testing"
)

// promContract maps every JSON field of the /metrics snapshot onto its
// Prometheus series (or the label that carries it). The test below
// reflects over the snapshot structs, so adding a JSON field without
// extending the exposition — or this table — fails the build's tests.
var promContract = map[string]string{
	"Metrics.requests":        "spmv_engine_requests_total",
	"Metrics.batches":         "spmv_engine_batches_total",
	"Metrics.mean_batch":      "spmv_engine_mean_batch_width",
	"Metrics.overloads":       "spmv_engine_overloads_total",
	"Metrics.cancelled":       "spmv_engine_cancelled_total",
	"Metrics.failures":        "spmv_engine_failures_total",
	"Metrics.faulted_batches": "spmv_engine_faulted_batches_total",
	"Metrics.p50_ms":          "spmv_engine_latency_p50_seconds",
	"Metrics.p99_ms":          "spmv_engine_latency_p99_seconds",
	"Metrics.queue_depth":     "spmv_engine_queue_depth",

	"EngineMetrics.matrix":   "label:matrix",
	"EngineMetrics.method":   "label:method",
	"EngineMetrics.k":        "label:k",
	"EngineMetrics.schedule": "label:spmv_engine_info.schedule",
	"EngineMetrics.kernel":   "label:spmv_engine_info.kernel",
	"EngineMetrics.refs":     "spmv_engine_refs",

	"BreakerMetrics.matrix": "label:matrix",
	"BreakerMetrics.method": "label:method",
	"BreakerMetrics.k":      "label:k",
	"BreakerMetrics.state":  "spmv_breaker_state",
	"BreakerMetrics.trips":  "spmv_breaker_trips_total",

	"TenantMetrics.name":             "label:tenant",
	"TenantMetrics.weight":           "spmv_tenant_weight",
	"TenantMetrics.requests":         "spmv_tenant_requests_total",
	"TenantMetrics.rejections":       "spmv_tenant_rejections_total",
	"TenantMetrics.queue_depth":      "spmv_tenant_queue_depth",
	"TenantMetrics.bytes_in_json":    "spmv_tenant_bytes_total",
	"TenantMetrics.bytes_out_json":   "spmv_tenant_bytes_total",
	"TenantMetrics.bytes_in_binary":  "spmv_tenant_bytes_total",
	"TenantMetrics.bytes_out_binary": "spmv_tenant_bytes_total",

	"PoolMetrics.engines":     "spmv_pool_engines",
	"PoolMetrics.breakers":    "nested", // rows expand via BreakerMetrics
	"PoolMetrics.tenants":     "nested", // rows expand via TenantMetrics
	"PoolMetrics.max_engines": "spmv_pool_max_engines",
	"PoolMetrics.builds":      "spmv_pool_builds_total",
	"PoolMetrics.evictions":   "spmv_pool_evictions_total",
	"PoolMetrics.quarantines": "spmv_pool_quarantines_total",
	"PoolMetrics.requests":    "spmv_pool_requests_total",
	"PoolMetrics.batches":     "spmv_pool_batches_total",
	"PoolMetrics.mean_batch":  "spmv_pool_mean_batch_width",
}

// jsonFields collects a struct's JSON field names, flattening embedded
// structs (EngineMetrics embeds EngineKey and Metrics) under the outer
// type's name.
func jsonFields(typeName string, t reflect.Type, into map[string]bool) {
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if f.Anonymous && f.Type.Kind() == reflect.Struct {
			jsonFields(typeName, f.Type, into)
			continue
		}
		tag := strings.SplitN(f.Tag.Get("json"), ",", 2)[0]
		if tag == "" || tag == "-" {
			continue
		}
		into[typeName+"."+tag] = true
	}
}

// TestPromContractCoversEveryJSONField: the JSON snapshot and the
// Prometheus exposition must describe the same data. Every JSON field
// maps to a series or a label, and every mapped series is actually in
// the exposition table.
func TestPromContractCoversEveryJSONField(t *testing.T) {
	fields := map[string]bool{}
	// EngineMetrics/BreakerMetrics flatten their embeds themselves;
	// Metrics is checked standalone so the engine rows stay covered even
	// if the embedding changes.
	jsonFields("Metrics", reflect.TypeOf(Metrics{}), fields)
	jsonFields("EngineMetrics", reflect.TypeOf(EngineMetrics{}), fields)
	jsonFields("BreakerMetrics", reflect.TypeOf(BreakerMetrics{}), fields)
	jsonFields("TenantMetrics", reflect.TypeOf(TenantMetrics{}), fields)
	jsonFields("PoolMetrics", reflect.TypeOf(PoolMetrics{}), fields)

	// EngineMetrics embeds Metrics: its flattened fields are the
	// Metrics.* entries. Dedup by stripping those duplicates.
	for f := range fields {
		if strings.HasPrefix(f, "EngineMetrics.") {
			if _, ok := promContract["Metrics."+strings.TrimPrefix(f, "EngineMetrics.")]; ok {
				delete(fields, f)
			}
		}
		if strings.HasPrefix(f, "BreakerMetrics.") {
			continue
		}
	}

	series := map[string]bool{}
	for _, fam := range promTable {
		series[fam.name] = true
	}

	var missing, unknown []string
	for f := range fields {
		want, ok := promContract[f]
		if !ok {
			missing = append(missing, f)
			continue
		}
		if want == "nested" || strings.HasPrefix(want, "label:") {
			continue
		}
		if !series[want] {
			unknown = append(unknown, f+" -> "+want)
		}
	}
	sort.Strings(missing)
	sort.Strings(unknown)
	if len(missing) > 0 {
		t.Errorf("JSON fields with no Prometheus mapping (extend promTable and promContract): %v", missing)
	}
	if len(unknown) > 0 {
		t.Errorf("contract names series missing from promTable: %v", unknown)
	}

	// The inverse direction: every promTable family is mapped from some
	// JSON field, so the table cannot drift into unexplained series.
	mapped := map[string]bool{}
	for _, v := range promContract {
		mapped[v] = true
		if i := strings.IndexByte(v, '.'); strings.HasPrefix(v, "label:") && i >= 0 {
			mapped[strings.TrimPrefix(v[:i], "label:")] = true
		}
	}
	for _, fam := range promTable {
		if !mapped[fam.name] {
			t.Errorf("promTable family %s has no JSON counterpart in promContract", fam.name)
		}
	}

	// promTable must stay sorted by family name (the exposition relies
	// on deterministic ordering for diffability).
	for i := 1; i < len(promTable); i++ {
		if promTable[i].name <= promTable[i-1].name {
			t.Errorf("promTable out of order: %s after %s", promTable[i].name, promTable[i-1].name)
		}
	}
}
