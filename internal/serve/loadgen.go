package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// LoadGenConfig drives one closed-loop load sweep against a running
// spmvserve instance: for every (method, encoding, concurrency) point,
// Concurrency clients each loop a POST /v1/multiply as fast as the
// server answers for Duration, and the sweep records throughput,
// latency percentiles, wire bytes per request, and the batch width the
// coalescing scheduler actually achieved (measured from the server's
// own /metrics deltas).
type LoadGenConfig struct {
	BaseURL string       // e.g. "http://127.0.0.1:8080"
	Client  *http.Client // default http.DefaultClient
	Matrix  string       // registered matrix name
	Methods []string     // registry methods to sweep (default ["s2d"])
	K       int          // part count (default 4)
	// Concurrency lists the offered in-flight client counts to sweep
	// (default 1, 8, 32).
	Concurrency []int
	// Encodings lists the wire encodings to sweep: "json", "binary"
	// (default ["json"]).
	Encodings []string
	// NRHS is the number of right-hand sides per request (default 1; >1
	// posts "xs" / multi-vector frames).
	NRHS     int
	Duration time.Duration // per sweep point (default 1s)
	Seed     int64
	// AuthKey, when set, is sent as `Authorization: Bearer <AuthKey>`
	// (required against a keyed server). Tenant labels the records.
	AuthKey string
	Tenant  string
}

func (c LoadGenConfig) withDefaults() LoadGenConfig {
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	if len(c.Methods) == 0 {
		c.Methods = []string{"s2d"}
	}
	if c.K == 0 {
		c.K = 4
	}
	if len(c.Concurrency) == 0 {
		c.Concurrency = []int{1, 8, 32}
	}
	if len(c.Encodings) == 0 {
		c.Encodings = []string{EncodingJSON}
	}
	if c.NRHS <= 0 {
		c.NRHS = 1
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	return c
}

// Record is one sweep point's result, in the same JSON style the
// BENCH_*.json kernel records use so cmd/benchdiff can pair and gate
// serving throughput like kernel ns/op: records key on
// (kind, method, matrix, seed, k, nrhs, encoding, tenant, concurrency,
// rows), and NsPerOp is the mean service time per request (1e9/RPS) so
// the existing slowdown-ratio gate applies unchanged.
type Record struct {
	Kind        string  `json:"kind"` // always "serve"
	Method      string  `json:"method"`
	Matrix      string  `json:"matrix"`
	Seed        int64   `json:"seed"`
	K           int     `json:"k"`
	Schedule    string  `json:"schedule"`
	Encoding    string  `json:"encoding,omitempty"` // json / binary ("" = json)
	NRHS        int     `json:"nrhs,omitempty"`     // right-hand sides per request (0 = 1)
	Tenant      string  `json:"tenant,omitempty"`   // mixed-tenant scenario label
	Concurrency int     `json:"concurrency"`
	Rows        int     `json:"rows"`
	DurationSec float64 `json:"duration_sec"`
	Requests    int     `json:"requests"`
	// Errors counts definitive non-200 responses; sheds (429/503) are not
	// errors — clients honor the Retry-After hint with jittered
	// exponential backoff and count each shed under Retries instead.
	Errors    int     `json:"errors"`
	Retries   int     `json:"retries"`
	RPS       float64 `json:"rps"`
	NsPerOp   float64 `json:"ns_per_op"` // 1e9 / RPS
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	MeanBatch float64 `json:"mean_batch"` // achieved width, from /metrics deltas
	// ReqBytes and RespBytes are the wire payload sizes of one request
	// and one successful response at this point — the direct
	// binary-vs-JSON volume comparison.
	ReqBytes  int `json:"req_bytes,omitempty"`
	RespBytes int `json:"resp_bytes,omitempty"`
	// TraceSample is the server-side stage breakdown of the slowest
	// sampled request at this point: every ~8th JSON request opts into
	// the response timings block, so client-side latency spikes come with
	// the server's own account of where the time went.
	TraceSample *TimingsBlock `json:"trace_sample,omitempty"`
	// StageP50Ms / StageP99Ms are per-stage latency percentiles over the
	// sampled requests (decode/admission/queue/assemble/flush/encode),
	// flattened from the timings blocks' span trees.
	StageP50Ms map[string]float64 `json:"stage_p50_ms,omitempty"`
	StageP99Ms map[string]float64 `json:"stage_p99_ms,omitempty"`
}

// traceSampleEvery is the JSON-request sampling stride for the timings
// block: cheap enough to leave on, frequent enough to catch tails.
const traceSampleEvery = 8

// multiplyBodies builds the request payload for every swept encoding.
func multiplyBodies(cfg LoadGenConfig, methodName string, cols int, rng *rand.Rand) (map[string][]byte, error) {
	xs := make([][]float64, cfg.NRHS)
	for i := range xs {
		xs[i] = make([]float64, cols)
		for j := range xs[i] {
			xs[i][j] = rng.Float64()*4 - 2
		}
	}
	bodies := make(map[string][]byte, len(cfg.Encodings))
	for _, enc := range cfg.Encodings {
		switch enc {
		case EncodingJSON:
			req := multiplyRequest{engineRequest: engineRequest{Matrix: cfg.Matrix, Method: methodName, K: cfg.K}}
			if cfg.NRHS == 1 {
				req.X = xs[0]
			} else {
				req.Xs = xs
			}
			b, err := json.Marshal(req)
			if err != nil {
				return nil, err
			}
			bodies[enc] = b
		case EncodingBinary:
			b, err := wire.Append(nil, &wire.Frame{
				Op: wire.OpMultiplyReq, Matrix: cfg.Matrix, Method: methodName, K: cfg.K,
				Vectors: xs,
			})
			if err != nil {
				return nil, err
			}
			bodies[enc] = b
		default:
			return nil, fmt.Errorf("loadgen: unknown encoding %q", enc)
		}
	}
	return bodies, nil
}

// LoadGen runs the configured sweep and returns one Record per
// (method, encoding, concurrency) point.
func LoadGen(ctx context.Context, cfg LoadGenConfig) ([]Record, error) {
	cfg = cfg.withDefaults()
	cols, rows, err := matrixDims(cfg)
	if err != nil {
		return nil, err
	}
	var recs []Record
	for _, m := range cfg.Methods {
		bodies, err := multiplyBodies(cfg, m, cols, rand.New(rand.NewSource(cfg.Seed)))
		if err != nil {
			return recs, err
		}
		for _, enc := range cfg.Encodings {
			for _, conc := range cfg.Concurrency {
				rec, err := loadPoint(ctx, cfg, m, enc, conc, rows, bodies[enc])
				if err != nil {
					return recs, err
				}
				recs = append(recs, rec)
			}
		}
	}
	return recs, nil
}

// loadPoint runs one closed-loop measurement at a fixed method,
// encoding, and offered concurrency.
func loadPoint(ctx context.Context, cfg LoadGenConfig, methodName, enc string, conc, rows int, body []byte) (Record, error) {
	// Warm the engine (build happens on first request) so the measured
	// window is steady-state serving, not partitioning. A quarantined or
	// rebuilding engine sheds the warmup with 503 + Retry-After; honor the
	// hint for a bounded window before giving up.
	var warm postResult
	warmRng := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed))
	warmDeadline := time.Now().Add(5 * time.Second)
	backoff := time.Duration(0)
	for {
		var err error
		warm, err = postMultiply(ctx, cfg, enc, body, false)
		if err != nil {
			return Record{}, fmt.Errorf("loadgen warmup %s/%s: %w", methodName, enc, err)
		}
		if warm.status == http.StatusOK {
			break
		}
		retriable := warm.status == http.StatusTooManyRequests || warm.status == http.StatusServiceUnavailable
		if !retriable || !time.Now().Before(warmDeadline) {
			return Record{}, fmt.Errorf("loadgen warmup %s/%s: HTTP %d", methodName, enc, warm.status)
		}
		backoff = backoffNext(backoff, warm.retry, warmRng, 250*time.Millisecond)
		time.Sleep(backoff)
	}
	schedule, respBytes := warm.schedule, warm.respBytes
	if schedule == "" {
		schedule, _ = engineSchedule(ctx, cfg, methodName)
	}

	before, err := engineMetrics(ctx, cfg, methodName)
	if err != nil {
		return Record{}, err
	}

	deadline := time.Now().Add(cfg.Duration)
	results := make([]clientResult, conc)
	var wg sync.WaitGroup
	t0 := time.Now()
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			runClient(ctx, cfg, enc, body, deadline, cfg.Seed+int64(c)*6151, &results[c])
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(t0)

	after, err := engineMetrics(ctx, cfg, methodName)
	if err != nil {
		return Record{}, err
	}

	rec := Record{
		Kind: "serve", Method: methodName, Matrix: cfg.Matrix, Seed: cfg.Seed,
		K: cfg.K, Schedule: schedule, Encoding: enc, NRHS: cfg.NRHS, Tenant: cfg.Tenant,
		Concurrency: conc, Rows: rows, DurationSec: elapsed.Seconds(),
		ReqBytes: len(body), RespBytes: respBytes,
	}
	fillRecord(&rec, results)
	if dBatches := after.Batches - before.Batches; dBatches > 0 {
		rec.MeanBatch = float64(after.Requests-before.Requests) / float64(dBatches)
	}
	return rec, nil
}

// clientResult is one closed-loop client's tally.
type clientResult struct {
	requests, errors, retries int
	latMs                     []float64
	samples                   []*TimingsBlock // sampled server-side stage breakdowns
}

// runClient loops one closed-loop client until deadline, honoring the
// server's backoff hints on sheds. Every traceSampleEvery-th JSON
// request opts into the server's timings block.
func runClient(ctx context.Context, cfg LoadGenConfig, enc string, body []byte, deadline time.Time, seed int64, res *clientResult) {
	rng := rand.New(rand.NewSource(seed))
	backoff := time.Duration(0)
	sent := 0
	for time.Now().Before(deadline) && ctx.Err() == nil {
		sample := enc != EncodingBinary && sent%traceSampleEvery == 0
		sent++
		start := time.Now()
		pr, err := postMultiply(ctx, cfg, enc, body, sample)
		switch {
		case err != nil:
			res.errors++
		case pr.status == http.StatusOK:
			backoff = 0
			res.requests++
			res.latMs = append(res.latMs, msSince(start))
			if pr.timings != nil {
				res.samples = append(res.samples, pr.timings)
			}
		case pr.status == http.StatusTooManyRequests || pr.status == http.StatusServiceUnavailable:
			// Shed: back off as the server hinted (jittered, capped)
			// instead of hammering a full queue or a quarantined
			// engine, and count the retry separately from errors.
			res.retries++
			backoff = backoffNext(backoff, pr.retry, rng, 250*time.Millisecond)
			time.Sleep(backoff)
		default:
			res.errors++
		}
	}
}

// fillRecord folds per-client tallies into the record: throughput and
// latency percentiles from every request, plus the stage-level view
// from the sampled timings blocks — per-stage percentiles and the
// slowest sampled request's full breakdown.
func fillRecord(rec *Record, results []clientResult) {
	var lats []float64
	var samples []*TimingsBlock
	for _, res := range results {
		rec.Requests += res.requests
		rec.Errors += res.errors
		rec.Retries += res.retries
		lats = append(lats, res.latMs...)
		samples = append(samples, res.samples...)
	}
	if rec.Requests > 0 && rec.DurationSec > 0 {
		rec.RPS = float64(rec.Requests) / rec.DurationSec
		rec.NsPerOp = 1e9 / rec.RPS
	}
	sort.Float64s(lats)
	rec.P50Ms = percentile(lats, 0.50)
	rec.P99Ms = percentile(lats, 0.99)

	if len(samples) == 0 {
		return
	}
	stageMs := map[string][]float64{}
	for _, tb := range samples {
		if rec.TraceSample == nil || tb.TotalMs > rec.TraceSample.TotalMs {
			rec.TraceSample = tb
		}
		for _, sp := range tb.Stages {
			stageMs[sp.Stage] = append(stageMs[sp.Stage], sp.Ms)
			// Flatten the scheduler's children (queue/assemble/flush) of
			// the schedule/solve stage; deeper levels (engine phases) stay
			// in TraceSample only.
			if sp.Stage == StageSchedule || sp.Stage == StageSolve {
				for _, ch := range sp.Spans {
					stageMs[ch.Stage] = append(stageMs[ch.Stage], ch.Ms)
				}
			}
		}
	}
	rec.StageP50Ms = make(map[string]float64, len(stageMs))
	rec.StageP99Ms = make(map[string]float64, len(stageMs))
	for stage, ms := range stageMs { //spmvlint:unordered per-stage independent writes
		sort.Float64s(ms)
		rec.StageP50Ms[stage] = percentile(ms, 0.50)
		rec.StageP99Ms[stage] = percentile(ms, 0.99)
	}
}

// MixedLoadConfig is the adversarial multi-tenant scenario: one hot
// tenant offering far more concurrency than its queue quota absorbs,
// against light tenants that must stay fast. Run it against a server
// started with a keyfile giving the hot tenant a small max_queue.
type MixedLoadConfig struct {
	BaseURL string
	Client  *http.Client
	Matrix  string
	Method  string // default "s2d"
	K       int    // default 4
	// HotKey/LightKey are the tenants' bearer keys.
	HotKey, LightKey string
	// HotConc and LightConc are the offered client counts
	// (defaults 32 and 4).
	HotConc, LightConc int
	NRHS               int // right-hand sides per request (default 1)
	Encoding           string
	Duration           time.Duration // default 2s
	Seed               int64
}

// MixedLoad runs the hot and light tenants simultaneously and returns
// one Record per tenant (Tenant = "hot" / "light"). The QoS contract
// under inspection: the light tenant sees zero errors and bounded p99
// while the hot tenant's overflow turns into Retries (429s), not into
// light-tenant latency.
func MixedLoad(ctx context.Context, cfg MixedLoadConfig) ([]Record, error) {
	if cfg.Method == "" {
		cfg.Method = "s2d"
	}
	if cfg.HotConc <= 0 {
		cfg.HotConc = 32
	}
	if cfg.LightConc <= 0 {
		cfg.LightConc = 4
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.Encoding == "" {
		cfg.Encoding = EncodingJSON
	}
	base := LoadGenConfig{
		BaseURL: cfg.BaseURL, Client: cfg.Client, Matrix: cfg.Matrix,
		Methods: []string{cfg.Method}, K: cfg.K, NRHS: cfg.NRHS,
		Encodings: []string{cfg.Encoding}, Duration: cfg.Duration, Seed: cfg.Seed,
	}.withDefaults()
	cols, rows, err := matrixDims(base)
	if err != nil {
		return nil, err
	}
	bodies, err := multiplyBodies(base, cfg.Method, cols, rand.New(rand.NewSource(base.Seed)))
	if err != nil {
		return nil, err
	}
	body := bodies[cfg.Encoding]

	tenants := []struct {
		label string
		key   string
		conc  int
	}{
		{"hot", cfg.HotKey, cfg.HotConc},
		{"light", cfg.LightKey, cfg.LightConc},
	}

	// Warm the engine once (as the light tenant) so both measure
	// steady-state serving.
	warm := base
	warm.AuthKey, warm.Tenant = cfg.LightKey, "light"
	warmDeadline := time.Now().Add(5 * time.Second)
	backoff := time.Duration(0)
	warmRng := rand.New(rand.NewSource(base.Seed ^ 0x5eed))
	for {
		pr, err := postMultiply(ctx, warm, cfg.Encoding, body, false)
		if err != nil {
			return nil, fmt.Errorf("mixedload warmup: %w", err)
		}
		if pr.status == http.StatusOK {
			break
		}
		if !(pr.status == http.StatusTooManyRequests || pr.status == http.StatusServiceUnavailable) ||
			!time.Now().Before(warmDeadline) {
			return nil, fmt.Errorf("mixedload warmup: HTTP %d", pr.status)
		}
		backoff = backoffNext(backoff, pr.retry, warmRng, 250*time.Millisecond)
		time.Sleep(backoff)
	}
	schedule, _ := engineSchedule(ctx, warm, cfg.Method)

	deadline := time.Now().Add(cfg.Duration)
	results := make([][]clientResult, len(tenants))
	var wg sync.WaitGroup
	t0 := time.Now()
	for ti, tn := range tenants {
		results[ti] = make([]clientResult, tn.conc)
		tcfg := base
		tcfg.AuthKey, tcfg.Tenant = tn.key, tn.label
		for c := 0; c < tn.conc; c++ {
			wg.Add(1)
			go func(tcfg LoadGenConfig, ti, c int, seed int64) {
				defer wg.Done()
				runClient(ctx, tcfg, cfg.Encoding, body, deadline, seed, &results[ti][c])
			}(tcfg, ti, c, base.Seed+int64(ti)*104729+int64(c)*6151)
		}
	}
	wg.Wait()
	elapsed := time.Since(t0)

	recs := make([]Record, 0, len(tenants))
	for ti, tn := range tenants {
		rec := Record{
			Kind: "serve", Method: cfg.Method, Matrix: cfg.Matrix, Seed: base.Seed,
			K: base.K, Schedule: schedule, Encoding: cfg.Encoding, NRHS: base.NRHS,
			Tenant: tn.label, Concurrency: tn.conc, Rows: rows,
			DurationSec: elapsed.Seconds(), ReqBytes: len(body),
		}
		fillRecord(&rec, results[ti])
		recs = append(recs, rec)
	}
	return recs, nil
}

// postResult is one postMultiply outcome: the HTTP status, the engine
// schedule named in a JSON 200 response (binary responses carry none),
// the response body size, the server's retry hint on a shed (429/503)
// response, and the server-side timings block when sampled.
type postResult struct {
	status    int
	schedule  string
	respBytes int
	retry     time.Duration
	timings   *TimingsBlock
}

// loadgenReqID numbers every request the generator sends, so each one
// carries a unique X-Request-Id the server adopts as its trace ID.
var loadgenReqID atomic.Uint64

// postMultiply posts one multiply under the configured encoding and
// auth. withTimings opts into the server's stage breakdown via
// ?timings=1 (JSON responses only). Every request propagates a unique
// X-Request-Id and the response's X-Trace-Id must echo it — loadgen
// doubles as the trace-propagation check.
func postMultiply(ctx context.Context, cfg LoadGenConfig, enc string, body []byte, withTimings bool) (postResult, error) {
	url := cfg.BaseURL + "/v1/multiply"
	if withTimings && enc != EncodingBinary {
		url += "?timings=1"
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return postResult{}, err
	}
	if enc == EncodingBinary {
		hreq.Header.Set("Content-Type", wire.ContentType)
	} else {
		hreq.Header.Set("Content-Type", "application/json")
	}
	if cfg.AuthKey != "" {
		hreq.Header.Set("Authorization", "Bearer "+cfg.AuthKey)
	}
	reqID := fmt.Sprintf("loadgen-%d", loadgenReqID.Add(1))
	hreq.Header.Set("X-Request-Id", reqID)
	resp, err := cfg.Client.Do(hreq)
	if err != nil {
		return postResult{}, err
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Trace-Id"); got != reqID {
		io.Copy(io.Discard, resp.Body)
		return postResult{status: resp.StatusCode},
			fmt.Errorf("loadgen: X-Trace-Id %q does not echo X-Request-Id %q", got, reqID)
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return postResult{status: resp.StatusCode, retry: retryAfterOf(resp)}, nil
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return postResult{status: resp.StatusCode}, err
	}
	if enc == EncodingBinary {
		return postResult{status: resp.StatusCode, respBytes: len(raw)}, nil
	}
	var mr struct {
		Schedule string        `json:"schedule"`
		Timings  *TimingsBlock `json:"timings"`
	}
	if err := json.Unmarshal(raw, &mr); err != nil {
		return postResult{status: resp.StatusCode}, err
	}
	return postResult{
		status: resp.StatusCode, schedule: mr.Schedule,
		respBytes: len(raw), timings: mr.Timings,
	}, nil
}

// matrixDims looks the matrix up via /v1/methods.
func matrixDims(cfg LoadGenConfig) (cols, rows int, err error) {
	resp, err := cfg.Client.Get(cfg.BaseURL + "/v1/methods")
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	var mr methodsResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		return 0, 0, err
	}
	for _, m := range mr.Matrices {
		if m.Name == cfg.Matrix {
			return m.Cols, m.Rows, nil
		}
	}
	return 0, 0, fmt.Errorf("loadgen: server does not hold matrix %q", cfg.Matrix)
}

// poolMetrics fetches the whole /metrics snapshot.
func poolMetrics(ctx context.Context, cfg LoadGenConfig) (PoolMetrics, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, cfg.BaseURL+"/metrics", nil)
	if err != nil {
		return PoolMetrics{}, err
	}
	resp, err := cfg.Client.Do(hreq)
	if err != nil {
		return PoolMetrics{}, err
	}
	defer resp.Body.Close()
	var pm PoolMetrics
	if err := json.NewDecoder(resp.Body).Decode(&pm); err != nil {
		return PoolMetrics{}, err
	}
	return pm, nil
}

// engineMetrics fetches the /metrics row for (matrix, method, K).
func engineMetrics(ctx context.Context, cfg LoadGenConfig, methodName string) (Metrics, error) {
	pm, err := poolMetrics(ctx, cfg)
	if err != nil {
		return Metrics{}, err
	}
	for _, e := range pm.Engines {
		if e.Matrix == cfg.Matrix && strings.EqualFold(e.Method, methodName) && e.K == cfg.K {
			return e.Metrics, nil
		}
	}
	// The engine may have been evicted between points; deltas then start
	// from zero, which is still correct for a fresh engine.
	return Metrics{}, nil
}

// engineSchedule reads the engine's schedule name from /metrics (used
// when the response encoding carries no schedule field).
func engineSchedule(ctx context.Context, cfg LoadGenConfig, methodName string) (string, error) {
	pm, err := poolMetrics(ctx, cfg)
	if err != nil {
		return "", err
	}
	for _, e := range pm.Engines {
		if e.Matrix == cfg.Matrix && strings.EqualFold(e.Method, methodName) && e.K == cfg.K {
			return e.Schedule, nil
		}
	}
	return "", nil
}
