package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// LoadGenConfig drives one closed-loop load sweep against a running
// spmvserve instance: for every (method, concurrency) point, Concurrency
// clients each loop a POST /v1/multiply as fast as the server answers
// for Duration, and the sweep records throughput, latency percentiles,
// and the batch width the coalescing scheduler actually achieved
// (measured from the server's own /metrics deltas).
type LoadGenConfig struct {
	BaseURL string       // e.g. "http://127.0.0.1:8080"
	Client  *http.Client // default http.DefaultClient
	Matrix  string       // registered matrix name
	Methods []string     // registry methods to sweep (default ["s2d"])
	K       int          // part count (default 4)
	// Concurrency lists the offered in-flight client counts to sweep
	// (default 1, 8, 32).
	Concurrency []int
	Duration    time.Duration // per sweep point (default 1s)
	Seed        int64
}

func (c LoadGenConfig) withDefaults() LoadGenConfig {
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	if len(c.Methods) == 0 {
		c.Methods = []string{"s2d"}
	}
	if c.K == 0 {
		c.K = 4
	}
	if len(c.Concurrency) == 0 {
		c.Concurrency = []int{1, 8, 32}
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	return c
}

// Record is one sweep point's result, in the same JSON style the
// BENCH_*.json kernel records use so cmd/benchdiff can pair and gate
// serving throughput like kernel ns/op: records key on
// (kind, method, matrix, seed, k, concurrency, rows), and NsPerOp is the
// mean service time per request (1e9/RPS) so the existing
// slowdown-ratio gate applies unchanged.
type Record struct {
	Kind        string  `json:"kind"` // always "serve"
	Method      string  `json:"method"`
	Matrix      string  `json:"matrix"`
	Seed        int64   `json:"seed"`
	K           int     `json:"k"`
	Schedule    string  `json:"schedule"`
	Concurrency int     `json:"concurrency"`
	Rows        int     `json:"rows"`
	DurationSec float64 `json:"duration_sec"`
	Requests    int     `json:"requests"`
	// Errors counts definitive non-200 responses; sheds (429/503) are not
	// errors — clients honor the Retry-After hint with jittered
	// exponential backoff and count each shed under Retries instead.
	Errors    int     `json:"errors"`
	Retries   int     `json:"retries"`
	RPS       float64 `json:"rps"`
	NsPerOp   float64 `json:"ns_per_op"` // 1e9 / RPS
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	MeanBatch float64 `json:"mean_batch"` // achieved width, from /metrics deltas
}

// LoadGen runs the configured sweep and returns one Record per
// (method, concurrency) point.
func LoadGen(ctx context.Context, cfg LoadGenConfig) ([]Record, error) {
	cfg = cfg.withDefaults()
	cols, rows, err := matrixDims(cfg)
	if err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	x := make([]float64, cols)
	for i := range x {
		x[i] = r.Float64()*4 - 2
	}
	body, err := json.Marshal(multiplyRequest{
		engineRequest: engineRequest{Matrix: cfg.Matrix, K: cfg.K},
		X:             x,
	})
	if err != nil {
		return nil, err
	}

	var recs []Record
	for _, m := range cfg.Methods {
		for _, conc := range cfg.Concurrency {
			rec, err := loadPoint(ctx, cfg, m, conc, rows, body)
			if err != nil {
				return recs, err
			}
			recs = append(recs, rec)
		}
	}
	return recs, nil
}

// loadPoint runs one closed-loop measurement at a fixed method and
// offered concurrency.
func loadPoint(ctx context.Context, cfg LoadGenConfig, methodName string, conc, rows int, body []byte) (Record, error) {
	// Patch the method into the request body once.
	var req multiplyRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return Record{}, err
	}
	req.Method = methodName
	pointBody, err := json.Marshal(req)
	if err != nil {
		return Record{}, err
	}

	// Warm the engine (build happens on first request) so the measured
	// window is steady-state serving, not partitioning. A quarantined or
	// rebuilding engine sheds the warmup with 503 + Retry-After; honor the
	// hint for a bounded window before giving up.
	var status int
	var schedule string
	warmRng := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed))
	warmDeadline := time.Now().Add(5 * time.Second)
	backoff := time.Duration(0)
	for {
		var retry time.Duration
		status, schedule, retry, err = postMultiply(ctx, cfg, pointBody)
		if err != nil {
			return Record{}, fmt.Errorf("loadgen warmup %s: %w", methodName, err)
		}
		if status == http.StatusOK {
			break
		}
		retriable := status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
		if !retriable || !time.Now().Before(warmDeadline) {
			return Record{}, fmt.Errorf("loadgen warmup %s: HTTP %d", methodName, status)
		}
		backoff = backoffNext(backoff, retry, warmRng, 250*time.Millisecond)
		time.Sleep(backoff)
	}

	before, err := engineMetrics(ctx, cfg, methodName)
	if err != nil {
		return Record{}, err
	}

	deadline := time.Now().Add(cfg.Duration)
	type clientResult struct {
		requests, errors, retries int
		latMs                     []float64
	}
	results := make([]clientResult, conc)
	var wg sync.WaitGroup
	t0 := time.Now()
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			res := &results[c]
			rng := rand.New(rand.NewSource(cfg.Seed + int64(c)*6151))
			backoff := time.Duration(0)
			for time.Now().Before(deadline) && ctx.Err() == nil {
				start := time.Now()
				status, _, retry, err := postMultiply(ctx, cfg, pointBody)
				switch {
				case err != nil:
					res.errors++
				case status == http.StatusOK:
					backoff = 0
					res.requests++
					res.latMs = append(res.latMs, msSince(start))
				case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
					// Shed: back off as the server hinted (jittered, capped)
					// instead of hammering a full queue or a quarantined
					// engine, and count the retry separately from errors.
					res.retries++
					backoff = backoffNext(backoff, retry, rng, 250*time.Millisecond)
					time.Sleep(backoff)
				default:
					res.errors++
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(t0)

	after, err := engineMetrics(ctx, cfg, methodName)
	if err != nil {
		return Record{}, err
	}

	rec := Record{
		Kind: "serve", Method: methodName, Matrix: cfg.Matrix, Seed: cfg.Seed,
		K: cfg.K, Schedule: schedule, Concurrency: conc, Rows: rows,
		DurationSec: elapsed.Seconds(),
	}
	var lats []float64
	for _, res := range results {
		rec.Requests += res.requests
		rec.Errors += res.errors
		rec.Retries += res.retries
		lats = append(lats, res.latMs...)
	}
	if rec.Requests > 0 {
		rec.RPS = float64(rec.Requests) / elapsed.Seconds()
		rec.NsPerOp = 1e9 / rec.RPS
	}
	sort.Float64s(lats)
	rec.P50Ms = percentile(lats, 0.50)
	rec.P99Ms = percentile(lats, 0.99)
	if dBatches := after.Batches - before.Batches; dBatches > 0 {
		rec.MeanBatch = float64(after.Requests-before.Requests) / float64(dBatches)
	}
	return rec, nil
}

// postMultiply posts one multiply and reports the HTTP status, the
// engine schedule named in a 200 response, and the server's retry hint
// on a shed (429/503) response.
func postMultiply(ctx context.Context, cfg LoadGenConfig, body []byte) (status int, schedule string, retry time.Duration, err error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		cfg.BaseURL+"/v1/multiply", bytes.NewReader(body))
	if err != nil {
		return 0, "", 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := cfg.Client.Do(hreq)
	if err != nil {
		return 0, "", 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, "", retryAfterOf(resp), nil
	}
	var mr struct {
		Schedule string `json:"schedule"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		return resp.StatusCode, "", 0, err
	}
	return resp.StatusCode, mr.Schedule, 0, nil
}

// matrixDims looks the matrix up via /v1/methods.
func matrixDims(cfg LoadGenConfig) (cols, rows int, err error) {
	resp, err := cfg.Client.Get(cfg.BaseURL + "/v1/methods")
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	var mr methodsResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		return 0, 0, err
	}
	for _, m := range mr.Matrices {
		if m.Name == cfg.Matrix {
			return m.Cols, m.Rows, nil
		}
	}
	return 0, 0, fmt.Errorf("loadgen: server does not hold matrix %q", cfg.Matrix)
}

// engineMetrics fetches the /metrics row for (matrix, method, K).
func engineMetrics(ctx context.Context, cfg LoadGenConfig, methodName string) (Metrics, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, cfg.BaseURL+"/metrics", nil)
	if err != nil {
		return Metrics{}, err
	}
	resp, err := cfg.Client.Do(hreq)
	if err != nil {
		return Metrics{}, err
	}
	defer resp.Body.Close()
	var pm PoolMetrics
	if err := json.NewDecoder(resp.Body).Decode(&pm); err != nil {
		return Metrics{}, err
	}
	for _, e := range pm.Engines {
		if e.Matrix == cfg.Matrix && strings.EqualFold(e.Method, methodName) && e.K == cfg.K {
			return e.Metrics, nil
		}
	}
	// The engine may have been evicted between points; deltas then start
	// from zero, which is still correct for a fresh engine.
	return Metrics{}, nil
}
