package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/serve/faultinject"
)

// This file is the chaos-mode verification harness `spmvserve -selftest
// -chaos` runs: a seeded concurrent sweep against a server whose pool is
// armed with a fault injector, asserting the fault-tolerance contract
// end to end — correct responses stay bit-identical to solo execution
// while an engine faults, quarantines, rebuilds (through an injected
// rebuild failure and breaker backoff), and serves again; then a
// graceful drain completes with zero dropped in-flight requests.

// ChaosConfig drives one chaos run over real HTTP.
type ChaosConfig struct {
	BaseURL    string
	Client     *http.Client
	Matrix     string
	Methods    []string      // default ["s2d", "2d"]
	K          int           // default 4
	Clients    int           // concurrent clients, default 32
	Duration   time.Duration // load phase length, default 2s
	DeadlineMs int           // per-request deadline_ms, default 1000
	Seed       int64
	// Injector is the same injector armed in the server's pool; the
	// report reads its fire counts.
	Injector *faultinject.Injector
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	if len(c.Methods) == 0 {
		c.Methods = []string{"s2d", "2d"}
	}
	if c.K == 0 {
		c.K = 4
	}
	if c.Clients <= 0 {
		c.Clients = 32
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.DeadlineMs <= 0 {
		c.DeadlineMs = 1000
	}
	return c
}

// ChaosReport is the chaos-smoke.json payload.
type ChaosReport struct {
	Seed        int64   `json:"seed"`
	Clients     int     `json:"clients"`
	DurationSec float64 `json:"duration_sec"`

	Requests    int    `json:"requests"`     // definitive 200 responses
	Mismatches  int    `json:"mismatches"`   // 200 payloads that diverged bitwise
	Retries     int    `json:"retries"`      // 429/503 sheds retried with backoff
	FaultErrors int    `json:"fault_errors"` // 5xx carrying an engine fault
	OtherErrors int    `json:"other_errors"`
	FirstError  string `json:"first_error,omitempty"` // first unexpected failure, for diagnosis

	WorkerPanics    int `json:"worker_panics"`    // injected panics that fired
	RebuildFailures int `json:"rebuild_failures"` // injected build failures that fired
	NaNCorruptions  int `json:"nan_corruptions"`  // injected payload corruptions that fired
	Quarantines     int `json:"quarantines"`      // pool quarantines observed via /metrics
	BreakerTrips    int `json:"breaker_trips"`
	Recoveries      int `json:"recoveries"` // tripped engines serving bit-identical again

	DrainInFlight  int     `json:"drain_in_flight"` // requests in flight when drain began
	DrainCompleted int     `json:"drain_completed"` // of those, completed with 200
	DrainSec       float64 `json:"drain_sec"`

	// Goroutine counts bracket the whole run (set by the orchestrator):
	// after drain and pool close, the count must fall back to the
	// pre-serve baseline or the fault path leaked workers.
	GoroutinesBefore int `json:"goroutines_before"`
	GoroutinesAfter  int `json:"goroutines_after"`
}

// Validate applies the chaos acceptance bar: injected worker panic and
// rebuild failure both fired, every correct response stayed
// bit-identical, every tripped engine recovered, and the drain dropped
// nothing within the deadline.
func (r *ChaosReport) Validate(maxDrain time.Duration) error {
	var problems []string
	if r.Requests == 0 {
		problems = append(problems, "no successful requests")
	}
	if r.Mismatches > 0 {
		problems = append(problems, fmt.Sprintf("%d bit-level mismatches", r.Mismatches))
	}
	if r.WorkerPanics < 1 {
		problems = append(problems, "injected worker panic never fired")
	}
	if r.RebuildFailures < 1 {
		problems = append(problems, "injected rebuild failure never fired")
	}
	if r.Quarantines < 1 {
		problems = append(problems, "no engine was quarantined")
	}
	if r.Recoveries < 1 {
		problems = append(problems, "no quarantined engine recovered")
	}
	if r.OtherErrors > 0 {
		problems = append(problems, fmt.Sprintf("%d unexpected errors", r.OtherErrors))
	}
	if r.DrainCompleted != r.DrainInFlight {
		problems = append(problems, fmt.Sprintf(
			"drain dropped %d of %d in-flight requests", r.DrainInFlight-r.DrainCompleted, r.DrainInFlight))
	}
	if r.DrainSec > maxDrain.Seconds() {
		problems = append(problems, fmt.Sprintf("drain took %.2fs (limit %v)", r.DrainSec, maxDrain))
	}
	if len(problems) > 0 {
		return fmt.Errorf("chaos: %s", strings.Join(problems, "; "))
	}
	return nil
}

// retryAfterOf reads the precise retry hint, preferring X-Retry-After-Ms
// over the integer-seconds Retry-After.
func retryAfterOf(resp *http.Response) time.Duration {
	if ms, err := strconv.ParseInt(resp.Header.Get("X-Retry-After-Ms"), 10, 64); err == nil && ms > 0 {
		return time.Duration(ms) * time.Millisecond
	}
	if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
		return time.Duration(s) * time.Second
	}
	return 0
}

// backoffNext computes one jittered exponential-backoff step: the
// server's hint when present (else doubling from 1ms, capped), plus up
// to 50% jitter.
func backoffNext(prev, hint time.Duration, rng *rand.Rand, limit time.Duration) time.Duration {
	d := hint
	if d <= 0 {
		d = 2 * prev
		if d <= 0 {
			d = time.Millisecond
		}
	}
	if d > limit {
		d = limit
	}
	return d + time.Duration(rng.Int63n(int64(d)/2+1))
}

// chaosPost posts one multiply and classifies the outcome.
func chaosPost(ctx context.Context, cfg ChaosConfig, body []byte) (status int, y []float64, retry time.Duration, err error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		cfg.BaseURL+"/v1/multiply", bytes.NewReader(body))
	if err != nil {
		return 0, nil, 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := cfg.Client.Do(hreq)
	if err != nil {
		return 0, nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil, retryAfterOf(resp), nil
	}
	var mr struct {
		Y []float64 `json:"y"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		return resp.StatusCode, nil, 0, err
	}
	return resp.StatusCode, mr.Y, 0, nil
}

// chaosBody builds the request payload for one method.
func chaosBody(cfg ChaosConfig, methodName string, x []float64) ([]byte, error) {
	return json.Marshal(multiplyRequest{
		engineRequest: engineRequest{Matrix: cfg.Matrix, Method: methodName, K: cfg.K},
		X:             x,
		DeadlineMs:    cfg.DeadlineMs,
	})
}

// sameBits reports exact float64 equality, position by position.
func sameBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ChaosRun executes the load phase of a chaos run: Clients concurrent
// clients hammer /v1/multiply across the configured methods while the
// armed injector crashes workers and rebuilds; every 200 is compared
// bitwise against the idle-server reference, sheds retry with jittered
// backoff honoring Retry-After, and after the window every tripped
// engine must serve the reference payload again. The drain phase is
// separate (DrainCheck) because it owns the server's shutdown.
func ChaosRun(ctx context.Context, cfg ChaosConfig) (*ChaosReport, error) {
	cfg = cfg.withDefaults()
	rep := &ChaosReport{Seed: cfg.Seed, Clients: cfg.Clients}

	// References: one fixed input per method, answered by an idle server —
	// width-1 flushes, the solo execution every later response must match.
	rng := rand.New(rand.NewSource(cfg.Seed))
	cols, _, err := matrixDims(LoadGenConfig{BaseURL: cfg.BaseURL, Client: cfg.Client, Matrix: cfg.Matrix})
	if err != nil {
		return nil, err
	}
	x := make([]float64, cols)
	for i := range x {
		x[i] = rng.Float64()*4 - 2
	}
	bodies := make([][]byte, len(cfg.Methods))
	refs := make([][]float64, len(cfg.Methods))
	for i, m := range cfg.Methods {
		if bodies[i], err = chaosBody(cfg, m, x); err != nil {
			return nil, err
		}
		status, y, _, err := chaosPost(ctx, cfg, bodies[i])
		if err != nil || status != http.StatusOK {
			return nil, fmt.Errorf("chaos reference %s: status %d err %v", m, status, err)
		}
		refs[i] = y
	}

	// Load phase.
	type clientTotals struct {
		ok, mismatch, retries, faults, other int
		firstErr                             string
	}
	totals := make([]clientTotals, cfg.Clients)
	deadline := time.Now().Add(cfg.Duration)
	var wg sync.WaitGroup
	t0 := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			mi := c % len(cfg.Methods)
			crng := rand.New(rand.NewSource(cfg.Seed + int64(c)*7919))
			tot := &totals[c]
			backoff := time.Duration(0)
			for time.Now().Before(deadline) && ctx.Err() == nil {
				status, y, hint, err := chaosPost(ctx, cfg, bodies[mi])
				switch {
				case err != nil:
					tot.other++
					if tot.firstErr == "" {
						tot.firstErr = err.Error()
					}
				case status == http.StatusOK:
					backoff = 0
					if sameBits(y, refs[mi]) {
						tot.ok++
					} else {
						tot.mismatch++
					}
				case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
					// Shed by overload, quarantine, or breaker cooldown:
					// retry after the hinted (jittered) backoff.
					tot.retries++
					if status == http.StatusServiceUnavailable {
						tot.faults++
					}
					backoff = backoffNext(backoff, hint, crng, 250*time.Millisecond)
					time.Sleep(backoff)
				case status == http.StatusGatewayTimeout:
					// Deadline hit under induced slowness; the retry loop
					// simply continues.
					tot.retries++
				default:
					tot.other++
					if tot.firstErr == "" {
						tot.firstErr = fmt.Sprintf("unexpected HTTP %d", status)
					}
				}
			}
		}(c)
	}
	wg.Wait()
	rep.DurationSec = time.Since(t0).Seconds()
	for i := range totals {
		rep.Requests += totals[i].ok
		rep.Mismatches += totals[i].mismatch
		rep.Retries += totals[i].retries
		rep.FaultErrors += totals[i].faults
		rep.OtherErrors += totals[i].other
		if rep.FirstError == "" {
			rep.FirstError = totals[i].firstErr
		}
	}

	// Injector + pool counters.
	rep.WorkerPanics = cfg.Injector.Fired("worker.panic")
	rep.RebuildFailures = cfg.Injector.Fired("build.fail")
	rep.NaNCorruptions = cfg.Injector.Fired("flush.nan")
	pm, err := poolMetricsOf(ctx, cfg)
	if err != nil {
		return rep, err
	}
	rep.Quarantines = int(pm.Quarantines)
	var tripped []string // methods with tripped breakers (this run uses one matrix/K)
	for _, b := range pm.Breakers {
		rep.BreakerTrips += int(b.Trips)
		if b.Trips > 0 {
			tripped = append(tripped, b.Method)
		}
	}
	trippedMethod := func(m string) bool {
		for _, t := range tripped {
			// The pool canonicalizes method names; compare like loadgen does.
			if strings.EqualFold(t, m) {
				return true
			}
		}
		return false
	}

	// Recovery phase: every tripped engine must serve the bit-identical
	// reference again once its cooldown ends.
	for mi, m := range cfg.Methods {
		if !trippedMethod(m) {
			continue
		}
		recoverDeadline := time.Now().Add(10 * time.Second)
		backoff := time.Duration(0)
		crng := rand.New(rand.NewSource(cfg.Seed + 104729))
		for time.Now().Before(recoverDeadline) {
			status, y, hint, err := chaosPost(ctx, cfg, bodies[mi])
			if err == nil && status == http.StatusOK && sameBits(y, refs[mi]) {
				rep.Recoveries++
				break
			}
			backoff = backoffNext(backoff, hint, crng, 250*time.Millisecond)
			time.Sleep(backoff)
		}
	}
	return rep, nil
}

// DrainCheck is the drain phase: it launches inFlight long-running solve
// requests, then — with them in flight — calls shutdown (the caller's
// SetDraining + http.Server.Shutdown) and verifies every launched
// request completes with 200: graceful drain must finish started work,
// drop nothing, and still stop accepting promptly. Results land in rep.
func DrainCheck(ctx context.Context, cfg ChaosConfig, rep *ChaosReport, inFlight int, shutdown func() error) error {
	cfg = cfg.withDefaults()
	if inFlight <= 0 {
		inFlight = 16
	}
	_, rows, err := matrixDims(LoadGenConfig{BaseURL: cfg.BaseURL, Client: cfg.Client, Matrix: cfg.Matrix})
	if err != nil {
		return err
	}
	b := make([]float64, rows)
	for i := range b {
		b[i] = 1
	}
	// A solve with an unreachable tolerance runs all max_iter iterations —
	// hundreds of coalesced multiplies — so these requests are reliably
	// still in flight when shutdown begins. LSQR rather than CG: its
	// iterates stay finite on any matrix, so PayloadChecks can't mistake
	// solver divergence for engine corruption mid-drain.
	body, err := json.Marshal(solveRequest{
		engineRequest: engineRequest{Matrix: cfg.Matrix, Method: cfg.Methods[0], K: cfg.K},
		B:             b,
		Solver:        "lsqr",
		Tol:           1e-300,
		MaxIter:       100,
		DeadlineMs:    int(10 * time.Second / time.Millisecond),
	})
	if err != nil {
		return err
	}

	rep.DrainInFlight = inFlight
	status := make([]int, inFlight)
	var wg sync.WaitGroup
	for c := 0; c < inFlight; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
				cfg.BaseURL+"/v1/solve", bytes.NewReader(body))
			if err != nil {
				return
			}
			hreq.Header.Set("Content-Type", "application/json")
			resp, err := cfg.Client.Do(hreq)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			status[c] = resp.StatusCode
		}(c)
	}

	time.Sleep(20 * time.Millisecond) // let the wave get in flight
	t0 := time.Now()
	shutdownErr := shutdown()
	rep.DrainSec = time.Since(t0).Seconds()
	wg.Wait()
	for _, st := range status {
		if st == http.StatusOK {
			rep.DrainCompleted++
		}
	}
	if shutdownErr != nil {
		return fmt.Errorf("chaos drain: shutdown: %w", shutdownErr)
	}
	return nil
}

// poolMetricsOf fetches the full pool snapshot.
func poolMetricsOf(ctx context.Context, cfg ChaosConfig) (PoolMetrics, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, cfg.BaseURL+"/metrics", nil)
	if err != nil {
		return PoolMetrics{}, err
	}
	resp, err := cfg.Client.Do(hreq)
	if err != nil {
		return PoolMetrics{}, err
	}
	defer resp.Body.Close()
	var pm PoolMetrics
	err = json.NewDecoder(resp.Body).Decode(&pm)
	return pm, err
}
