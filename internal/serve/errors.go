package serve

import (
	"errors"
	"fmt"
)

// ErrClosed is returned by submissions and acquisitions after the pool
// (or the engine's scheduler) has shut down.
var ErrClosed = errors.New("serve: closed")

// ErrOverloaded is the sentinel all overload rejections wrap; callers
// match it with errors.Is and retry with backoff (HTTP maps it to 429).
var ErrOverloaded = errors.New("serve: overloaded")

// OverloadError reports a submission rejected by admission control: the
// engine's queue was at its configured depth limit.
type OverloadError struct {
	Depth int // queue depth observed at rejection
	Limit int // configured MaxQueue
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("serve: engine queue full (%d/%d)", e.Depth, e.Limit)
}

// Unwrap makes errors.Is(err, ErrOverloaded) match.
func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// UnknownMethodError reports a request naming a method the registry does
// not know.
type UnknownMethodError struct {
	Method string
}

func (e *UnknownMethodError) Error() string {
	return fmt.Sprintf("serve: unknown method %q (see /v1/methods)", e.Method)
}

// UnknownMatrixError reports a request naming a matrix the pool does not
// hold.
type UnknownMatrixError struct {
	Matrix string
	Known  []string
}

func (e *UnknownMatrixError) Error() string {
	return fmt.Sprintf("serve: unknown matrix %q (loaded: %v)", e.Matrix, e.Known)
}

// DimensionError reports a request vector that does not match the
// matrix.
type DimensionError struct {
	Got, Want int
	What      string // "x" or "b"
}

func (e *DimensionError) Error() string {
	return fmt.Sprintf("serve: %s has %d entries, matrix wants %d", e.What, e.Got, e.Want)
}
