package serve

import (
	"errors"
	"fmt"
	"time"
)

// ErrClosed is returned by submissions and acquisitions after the pool
// (or the engine's scheduler) has shut down.
var ErrClosed = errors.New("serve: closed")

// ErrEngineFault is the sentinel every engine-fault rejection wraps: the
// in-flight batch died to a contained panic (or corrupted payload) and
// the engine is being quarantined. Callers match it with errors.Is and
// retry — the pool rebuilds the engine behind the breaker.
var ErrEngineFault = errors.New("serve: engine fault")

// EngineFaultError reports one engine's fault to the requests caught in
// the faulted batch (and to submissions racing the quarantine).
type EngineFaultError struct {
	Key   EngineKey
	Cause error
}

func (e *EngineFaultError) Error() string {
	return fmt.Sprintf("serve: engine %s faulted (quarantining): %v", e.Key, e.Cause)
}

func (e *EngineFaultError) Unwrap() error { return e.Cause }

// Is makes errors.Is(err, ErrEngineFault) match.
func (e *EngineFaultError) Is(target error) bool { return target == ErrEngineFault }

// QuarantinedError reports an acquire shed by an open circuit breaker:
// the engine faulted (or failed to rebuild) recently and the pool is in
// its rebuild cooldown. RetryAfter is the remaining cooldown; HTTP maps
// this to 503 + Retry-After.
type QuarantinedError struct {
	Key        EngineKey
	RetryAfter time.Duration
	Cause      error
}

func (e *QuarantinedError) Error() string {
	return fmt.Sprintf("serve: engine %s quarantined, retry in %v", e.Key, e.RetryAfter)
}

func (e *QuarantinedError) Unwrap() error { return e.Cause }

// Is makes errors.Is(err, ErrEngineFault) match quarantine sheds too —
// both are the same condition from the client's point of view.
func (e *QuarantinedError) Is(target error) bool { return target == ErrEngineFault }

// ErrOverloaded is the sentinel all overload rejections wrap; callers
// match it with errors.Is and retry with backoff (HTTP maps it to 429).
var ErrOverloaded = errors.New("serve: overloaded")

// OverloadError reports a submission rejected by admission control: the
// submitting tenant's queue on that engine was at its quota. Overload is
// per tenant — one tenant at its limit does not shed anyone else.
type OverloadError struct {
	Tenant string // tenant whose quota rejected the submission
	Depth  int    // tenant's queue depth observed at rejection
	Limit  int    // effective quota (tenant MaxQueue, or Options.MaxQueue)
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("serve: tenant %s queue full (%d/%d)", e.Tenant, e.Depth, e.Limit)
}

// Unwrap makes errors.Is(err, ErrOverloaded) match.
func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// UnknownMethodError reports a request naming a method the registry does
// not know.
type UnknownMethodError struct {
	Method string
}

func (e *UnknownMethodError) Error() string {
	return fmt.Sprintf("serve: unknown method %q (see /v1/methods)", e.Method)
}

// UnknownMatrixError reports a request naming a matrix the pool does not
// hold.
type UnknownMatrixError struct {
	Matrix string
	Known  []string
}

func (e *UnknownMatrixError) Error() string {
	return fmt.Sprintf("serve: unknown matrix %q (loaded: %v)", e.Matrix, e.Known)
}

// UnauthorizedError reports a request that failed tenant authentication
// against a keyed registry (HTTP 401).
type UnauthorizedError struct {
	Reason string
}

func (e *UnauthorizedError) Error() string {
	return fmt.Sprintf("serve: unauthorized: %s", e.Reason)
}

// DuplicateMatrixError reports a registration under a name already
// taken (HTTP 409): resident engines were built against the old
// instance, so re-registering requires deleting the matrix first.
type DuplicateMatrixError struct {
	Matrix string
}

func (e *DuplicateMatrixError) Error() string {
	return fmt.Sprintf("serve: matrix %q already registered", e.Matrix)
}

// PinnedMatrixError reports a DELETE of a matrix that still has
// referenced engines (HTTP 409): release the handles (or wait out the
// in-flight requests) and retry.
type PinnedMatrixError struct {
	Matrix string
	Key    EngineKey // one pinned engine (there may be more)
	Refs   int
}

func (e *PinnedMatrixError) Error() string {
	return fmt.Sprintf("serve: matrix %q is pinned by engine %s (%d refs)", e.Matrix, e.Key, e.Refs)
}

// DimensionError reports a request vector that does not match the
// matrix.
type DimensionError struct {
	Got, Want int
	What      string // "x" or "b"
}

func (e *DimensionError) Error() string {
	return fmt.Sprintf("serve: %s has %d entries, matrix wants %d", e.What, e.Got, e.Want)
}
