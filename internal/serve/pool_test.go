package serve

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
)

func newTestPool(t *testing.T, opt Options) *Pool {
	t.Helper()
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	p := NewPool(opt)
	t.Cleanup(p.Close)
	a := testMatrix(t, 14, 14)
	if err := p.AddMatrix("lap", a); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPoolAcquireSharesEngine(t *testing.T) {
	p := newTestPool(t, Options{})
	h1, err := p.Acquire("lap", "s2d", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer h1.Release()
	h2, err := p.Acquire("lap", "S2D", 4) // case-insensitive: same engine
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Release()
	if h1.e != h2.e {
		t.Fatal("same (matrix, method, K) produced two engines")
	}
	if pm := p.MetricsSnapshot(); pm.Builds != 1 || len(pm.Engines) != 1 {
		t.Fatalf("builds=%d engines=%d, want 1/1", pm.Builds, len(pm.Engines))
	}
	if h1.e.refs != 2 {
		t.Fatalf("refs = %d, want 2", h1.e.refs)
	}
}

func TestPoolConcurrentAcquireBuildsOnce(t *testing.T) {
	p := newTestPool(t, Options{})
	const n = 16
	handles := make([]*Handle, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			handles[i], errs[i] = p.Acquire("lap", "s2d", 4)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if handles[i].e != handles[0].e {
			t.Fatal("concurrent acquires produced distinct engines")
		}
		handles[i].Release()
	}
	if pm := p.MetricsSnapshot(); pm.Builds != 1 {
		t.Fatalf("builds = %d, want 1", pm.Builds)
	}
}

func TestPoolLRUEviction(t *testing.T) {
	p := newTestPool(t, Options{MaxEngines: 2})
	use := func(methodName string, k int) {
		h, err := p.Acquire("lap", methodName, k)
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(3))
		if _, err := h.Multiply(context.Background(), randVec(r, h.Cols())); err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	use("s2d", 2) // oldest → evicted when the third engine arrives
	use("s2d", 4)
	use("1d", 4)

	pm := p.MetricsSnapshot()
	if len(pm.Engines) != 2 {
		t.Fatalf("resident engines = %d, want 2 (cap)", len(pm.Engines))
	}
	if pm.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", pm.Evictions)
	}
	for _, e := range pm.Engines {
		if e.Method == "s2D" && e.K == 2 {
			t.Fatal("LRU engine survived eviction")
		}
	}
	// Re-acquiring the evicted key rebuilds.
	use("s2d", 2)
	if pm := p.MetricsSnapshot(); pm.Builds != 4 {
		t.Fatalf("builds = %d, want 4 (rebuild after eviction)", pm.Builds)
	}
}

func TestPoolInUseEnginesNeverEvict(t *testing.T) {
	p := newTestPool(t, Options{MaxEngines: 1})
	h1, err := p.Acquire("lap", "s2d", 2)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := p.Acquire("lap", "s2d", 4) // over cap, but h1 is pinned
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	// Both engines must still serve.
	if _, err := h1.Multiply(context.Background(), randVec(r, h1.Cols())); err != nil {
		t.Fatal(err)
	}
	if _, err := h2.Multiply(context.Background(), randVec(r, h2.Cols())); err != nil {
		t.Fatal(err)
	}
	if pm := p.MetricsSnapshot(); len(pm.Engines) != 2 || pm.Evictions != 0 {
		t.Fatalf("engines=%d evictions=%d, want 2/0 while pinned", len(pm.Engines), pm.Evictions)
	}
	h1.Release()
	h2.Release()
	// Releasing brings the pool back under its cap.
	if pm := p.MetricsSnapshot(); len(pm.Engines) != 1 {
		t.Fatalf("engines = %d after release, want 1", len(pm.Engines))
	}
}

func TestPoolTypedErrors(t *testing.T) {
	p := newTestPool(t, Options{})
	_, err := p.Acquire("nope", "s2d", 4)
	var um *UnknownMatrixError
	if !errors.As(err, &um) || um.Matrix != "nope" {
		t.Fatalf("err = %v, want *UnknownMatrixError", err)
	}
	_, err = p.Acquire("lap", "not-a-method", 4)
	var ue *UnknownMethodError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want *UnknownMethodError", err)
	}
	if _, err = p.Acquire("lap", "s2d", 0); err == nil {
		t.Fatal("K=0 accepted")
	}
}

func TestPoolClose(t *testing.T) {
	p := newTestPool(t, Options{})
	h, err := p.Acquire("lap", "s2d", 4)
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	p.Close()
	p.Close() // idempotent
	if _, err := p.Acquire("lap", "s2d", 4); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if err := p.AddMatrix("x", testMatrix(t, 4, 4)); !errors.Is(err, ErrClosed) {
		t.Fatalf("AddMatrix err = %v, want ErrClosed", err)
	}
}

func TestPoolHandleReleaseIdempotent(t *testing.T) {
	p := newTestPool(t, Options{})
	h, err := p.Acquire("lap", "s2d", 4)
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	h.Release() // second release must not double-decrement
	h2, err := p.Acquire("lap", "s2d", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Release()
	if h2.e.refs != 1 {
		t.Fatalf("refs = %d, want 1", h2.e.refs)
	}
}

func TestPoolDuplicateMatrix(t *testing.T) {
	p := newTestPool(t, Options{})
	if err := p.AddMatrix("lap", testMatrix(t, 6, 6)); err == nil {
		t.Fatal("duplicate matrix name accepted")
	}
}
