package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/serve/faultinject"
)

// faultPool builds a pool around an armed injector with a fast rebuild
// cooldown, holding the usual 14×14 Laplacian as "lap".
func faultPool(t *testing.T, inj *faultinject.Injector) *Pool {
	t.Helper()
	p := NewPool(Options{
		Seed:           1,
		Injector:       inj,
		PayloadChecks:  true,
		RebuildBackoff: 20 * time.Millisecond,
	})
	t.Cleanup(p.Close)
	if err := p.AddMatrix("lap", testMatrix(t, 14, 14)); err != nil {
		t.Fatal(err)
	}
	return p
}

// acquireEventually retries Acquire through breaker cooldowns.
func acquireEventually(t *testing.T, p *Pool, method string, k int) *Handle {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		h, err := p.Acquire("lap", method, k)
		if err == nil {
			return h
		}
		var qe *QuarantinedError
		if !errors.As(err, &qe) || !time.Now().Before(deadline) {
			t.Fatalf("Acquire: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWorkerPanicQuarantineAndRecovery walks the whole containment
// pipeline: an injected worker panic fails only the in-flight batch
// with a typed error, the engine is quarantined (evicted + breaker
// open), and after the cooldown a rebuilt engine serves correct
// results again.
func TestWorkerPanicQuarantineAndRecovery(t *testing.T) {
	inj := faultinject.New(faultinject.Rule{Point: "worker.panic", Nth: 1, Count: 1})
	p := faultPool(t, inj)
	ctx := context.Background()

	h, err := p.Acquire("lap", "s2d", 4)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, h.Cols())
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	_, err = h.Multiply(ctx, x)
	var fe *EngineFaultError
	if !errors.As(err, &fe) {
		t.Fatalf("Multiply under injected panic = %v, want *EngineFaultError", err)
	}
	if fe.Key.Matrix != "lap" {
		t.Fatalf("fault key = %+v, want matrix lap", fe.Key)
	}
	// The batch is accounted as faulted on the engine's own collector.
	if m := h.Metrics(); m.FaultedBatches != 1 || m.Failures == 0 {
		t.Fatalf("metrics after fault = %+v, want 1 faulted batch and counted failures", m)
	}
	// Fast-fail while poisoned: no new flush is attempted.
	if _, err := h.Multiply(ctx, x); !errors.Is(err, ErrEngineFault) {
		t.Fatalf("second Multiply = %v, want ErrEngineFault fast-fail", err)
	}
	h.Release()

	// Quarantined: entry evicted, breaker open, immediate re-acquire sheds
	// with a positive retry hint.
	pm := p.MetricsSnapshot()
	if pm.Quarantines != 1 {
		t.Fatalf("Quarantines = %d, want 1", pm.Quarantines)
	}
	_, err = p.Acquire("lap", "s2d", 4)
	var qe *QuarantinedError
	if !errors.As(err, &qe) {
		t.Fatalf("Acquire during cooldown = %v, want *QuarantinedError", err)
	}
	if qe.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0", qe.RetryAfter)
	}
	if !errors.Is(err, ErrEngineFault) {
		t.Fatal("QuarantinedError must match ErrEngineFault for callers testing the class")
	}

	// Recovery: the injector is spent, so the post-cooldown rebuild
	// succeeds and the fresh engine computes the right product.
	h2 := acquireEventually(t, p, "s2d", 4)
	defer h2.Release()
	y, err := h2.Multiply(ctx, x)
	if err != nil {
		t.Fatalf("Multiply after rebuild: %v", err)
	}
	a := testMatrix(t, 14, 14)
	want := make([]float64, a.Rows)
	a.MulVec(x, want)
	for i := range want {
		if diff := y[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("y[%d] = %v, want %v after rebuild", i, y[i], want[i])
		}
	}
}

// TestBuildFailureShedsRetryableAndBacksOff: failed (re)builds are
// transient 503-class sheds, and consecutive failures double the
// breaker cooldown rather than hammering the build path.
func TestBuildFailureShedsRetryableAndBacksOff(t *testing.T) {
	inj := faultinject.New(faultinject.Rule{Point: "build.fail", Nth: 1, Count: 2})
	p := faultPool(t, inj)

	_, err := p.Acquire("lap", "s2d", 4)
	var qe *QuarantinedError
	if !errors.As(err, &qe) {
		t.Fatalf("Acquire with failing build = %v, want *QuarantinedError", err)
	}
	if qe.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0", qe.RetryAfter)
	}
	// While the cooldown runs, acquires shed without attempting a build.
	builds := p.MetricsSnapshot().Builds
	if _, err := p.Acquire("lap", "s2d", 4); !errors.As(err, &qe) {
		t.Fatalf("Acquire during cooldown = %v, want *QuarantinedError", err)
	}
	if got := p.MetricsSnapshot().Builds; got != builds {
		t.Fatalf("builds went %d → %d during cooldown; breaker must gate rebuilds", builds, got)
	}

	// The half-open probe build fails too (rule count 2), then the third
	// attempt succeeds; the breaker must have tripped exactly twice.
	h := acquireEventually(t, p, "s2d", 4)
	h.Release()
	if fired := inj.Fired("build.fail"); fired != 2 {
		t.Fatalf("build.fail fired %d times, want 2", fired)
	}
	pm := p.MetricsSnapshot()
	if len(pm.Breakers) != 1 {
		t.Fatalf("breaker rows = %+v, want exactly one", pm.Breakers)
	}
	br := pm.Breakers[0]
	if br.Trips != 2 || br.State != "closed" {
		t.Fatalf("breaker = %+v, want 2 trips and closed after recovery", br)
	}
}

// TestNaNPayloadQuarantines: corrupted flush output (injected NaN) is
// detected by PayloadChecks and treated exactly like a panic — the
// batch fails typed, the scheduler latches, onFault fires once.
func TestNaNPayloadQuarantines(t *testing.T) {
	inj := faultinject.New(faultinject.Rule{Point: "flush.nan", Nth: 1, Count: 1})
	a := testMatrix(t, 12, 12)
	opt := Options{MaxBatch: 4, MaxWait: time.Millisecond, Injector: inj, PayloadChecks: true}.withDefaults()
	faults := 0
	s := newScheduler(buildEngine(t, a, "s2d", 4, 1), a.Rows, a.Cols, opt,
		EngineKey{Matrix: "lap", Method: "s2d", K: 4}, "", nil, func(error) { faults++ })
	t.Cleanup(s.close)

	x := make([]float64, a.Cols)
	_, err := s.submit(context.Background(), x)
	var fe *EngineFaultError
	if !errors.As(err, &fe) {
		t.Fatalf("submit with NaN-corrupted flush = %v, want *EngineFaultError", err)
	}
	if !strings.Contains(err.Error(), "NaN") {
		t.Fatalf("fault should name the corruption, got %q", err)
	}
	if m := s.metrics(); m.FaultedBatches != 1 {
		t.Fatalf("FaultedBatches = %d, want 1", m.FaultedBatches)
	}
	// Fast-fail path: no second flush happens, onFault stays at one.
	if _, err := s.submit(context.Background(), x); !errors.As(err, &fe) {
		t.Fatalf("poisoned submit = %v, want *EngineFaultError", err)
	}
	if faults != 1 {
		t.Fatalf("onFault fired %d times, want exactly once", faults)
	}
}

// TestFlushPanicQuarantines: a panic in the scheduler's own flush path
// (not inside the engine) is contained the same way.
func TestFlushPanicQuarantines(t *testing.T) {
	inj := faultinject.New(faultinject.Rule{Point: "flush.panic", Nth: 1, Count: 1})
	a := testMatrix(t, 12, 12)
	opt := Options{MaxBatch: 4, MaxWait: time.Millisecond, Injector: inj}.withDefaults()
	s := newScheduler(buildEngine(t, a, "s2d", 4, 1), a.Rows, a.Cols, opt, EngineKey{}, "", nil, nil)
	t.Cleanup(s.close)

	_, err := s.submit(context.Background(), make([]float64, a.Cols))
	var fe *EngineFaultError
	if !errors.As(err, &fe) {
		t.Fatalf("submit under flush panic = %v, want *EngineFaultError", err)
	}
	if m := s.metrics(); m.FaultedBatches != 1 {
		t.Fatalf("FaultedBatches = %d, want 1", m.FaultedBatches)
	}
}

// TestQueueDrainsOnClose: close() completes every queued request and
// leaves the queue empty — the scheduler half of graceful drain.
func TestQueueDrainsOnClose(t *testing.T) {
	a := testMatrix(t, 12, 12)
	s := newTestScheduler(t, a, Options{MaxBatch: 4, MaxWait: time.Hour})

	const n = 6
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := s.submit(context.Background(), make([]float64, a.Cols))
			errs <- err
		}()
	}
	// Let the submissions queue against the hour-long window, then close:
	// the drain must flush them, not abandon them.
	time.Sleep(20 * time.Millisecond)
	s.close()
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("queued request failed during drain: %v", err)
		}
	}
	m := s.metrics()
	if m.Requests != n || m.QueueDepth != 0 {
		t.Fatalf("after drain: %+v, want %d served and empty queue", m, n)
	}
}

// TestServerDrainEndpoints: /healthz stays 200 for the process's life;
// /readyz flips to 503 while draining; in-flight-style traffic is still
// served during the drain window.
func TestServerDrainEndpoints(t *testing.T) {
	p := newTestPool(t, Options{})
	srv := NewServer(p)
	hs := httptest.NewServer(srv)
	defer hs.Close()

	get := func(path string) int {
		t.Helper()
		resp, err := hs.Client().Get(hs.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", got)
	}
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200", got)
	}

	srv.SetDraining(true)
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining = %d, want 503", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz while draining = %d, want 200 (liveness is not readiness)", got)
	}
	// Work already routed here must still be served during the drain.
	body, _ := json.Marshal(multiplyRequest{
		engineRequest: engineRequest{Matrix: "lap", Method: "s2d", K: 4},
		X:             make([]float64, 196),
	})
	resp, err := hs.Client().Post(hs.URL+"/v1/multiply", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("multiply while draining = %d, want 200", resp.StatusCode)
	}

	srv.SetDraining(false)
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz after drain cleared = %d, want 200", got)
	}
}

// TestUploadBodyLimit: /v1/matrices bodies over MaxUploadBytes are cut
// off with 413, and a legitimate upload under the limit still works.
func TestUploadBodyLimit(t *testing.T) {
	p := newTestPool(t, Options{})
	srv := NewServer(p)
	srv.MaxUploadBytes = 1024
	hs := httptest.NewServer(srv)
	defer hs.Close()

	// A well-formed stream that simply keeps going past the limit: the
	// cutoff must surface as 413, not as a 400 parse error.
	big := strings.NewReader("%%MatrixMarket matrix coordinate real general\n" +
		strings.Repeat("% padding\n", 200)) // ~2 KiB
	resp, err := hs.Client().Post(hs.URL+"/v1/matrices?name=big", "text/plain", big)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized upload = %d, want 413", resp.StatusCode)
	}
}

// TestServerDeadline: a queued request whose deadline_ms expires while
// an (injected) slow flush holds the runner is rejected with 504 and
// counted as cancelled.
func TestServerDeadline(t *testing.T) {
	inj := faultinject.New(faultinject.Rule{Point: "flush.slow", Nth: 1, Count: 1})
	p := NewPool(Options{
		Seed:       1,
		Injector:   inj,
		FlushDelay: 300 * time.Millisecond,
		MaxBatch:   1, // the slow flush must not coalesce the probe request
		MaxWait:    time.Millisecond,
	})
	t.Cleanup(p.Close)
	if err := p.AddMatrix("lap", testMatrix(t, 14, 14)); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(p)
	hs := httptest.NewServer(srv)
	defer hs.Close()

	post := func(deadlineMs int, status chan<- int) {
		body, _ := json.Marshal(multiplyRequest{
			engineRequest: engineRequest{Matrix: "lap", Method: "s2d", K: 4},
			X:             make([]float64, 196),
			DeadlineMs:    deadlineMs,
		})
		resp, err := hs.Client().Post(hs.URL+"/v1/multiply", "application/json", strings.NewReader(string(body)))
		if err != nil {
			status <- -1
			return
		}
		resp.Body.Close()
		status <- resp.StatusCode
	}

	// First request trips the 300ms slow flush; the second queues behind
	// it with a 50ms deadline and must come back 504 long before the
	// runner frees up.
	slow := make(chan int, 1)
	go post(0, slow)
	time.Sleep(30 * time.Millisecond) // let the slow flush claim request 1
	fast := make(chan int, 1)
	go post(50, fast)

	if got := <-fast; got != http.StatusGatewayTimeout {
		t.Fatalf("deadline-expired request = HTTP %d, want 504", got)
	}
	if got := <-slow; got != http.StatusOK {
		t.Fatalf("slow request = HTTP %d, want 200", got)
	}
}
