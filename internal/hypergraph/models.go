package hypergraph

import "repro/internal/sparse"

// ColumnNetModel is the column-net hypergraph of Çatalyürek and Aykanat for
// 1D rowwise partitioning: one vertex per row (weight = row nnz), one net
// per column (cost 1) whose pins are the rows with a nonzero in that
// column. For square matrices, net j additionally pins vertex j so that a
// symmetric vector partition (x_j with row j) is encoded exactly and the
// connectivity−1 metric equals the expand volume.
func ColumnNetModel(a *sparse.CSR) *H {
	b := NewBuilder(a.Rows)
	for i := 0; i < a.Rows; i++ {
		w := a.RowNNZ(i)
		if w == 0 {
			w = 1 // keep empty rows movable without zero-weight pathologies
		}
		b.SetWeight(i, w)
	}
	csc := a.ToCSC()
	square := a.Rows == a.Cols
	for j := 0; j < a.Cols; j++ {
		pins := csc.ColRows(j)
		if square {
			withDiag := make([]int, 0, len(pins)+1)
			withDiag = append(withDiag, pins...)
			withDiag = append(withDiag, j)
			b.AddNet(1, withDiag...)
			continue
		}
		if len(pins) > 0 {
			b.AddNet(1, pins...)
		} else {
			b.AddNet(1) // keep net indices aligned with columns
		}
	}
	return b.Build()
}

// RowNetModel is the row-net hypergraph for 1D columnwise partitioning:
// the column-net model of the transpose.
func RowNetModel(a *sparse.CSR) *H {
	return ColumnNetModel(a.Transpose())
}

// FineGrainModel is the row-column-net hypergraph of Çatalyürek and
// Aykanat for 2D nonzero-based partitioning. Vertices are the nonzeros of
// A in CSR order (vertex p = p-th stored nonzero, weight 1). Net i (for
// each row, cost 1) pins the nonzeros of row i; net Rows+j (for each
// column) pins the nonzeros of column j. The connectivity−1 metric counts
// expand volume (column nets) plus fold volume (row nets).
type FineGrainModel struct {
	H *H
	// NonzeroRow/NonzeroCol give the matrix coordinates of vertex p.
	NonzeroRow, NonzeroCol []int
}

// FineGrain builds the fine-grain model of a.
func FineGrain(a *sparse.CSR) *FineGrainModel {
	nnz := a.NNZ()
	m := &FineGrainModel{
		NonzeroRow: make([]int, nnz),
		NonzeroCol: make([]int, nnz),
	}
	b := NewBuilder(nnz)
	rowPins := make([][]int, a.Rows)
	colPins := make([][]int, a.Cols)
	p := 0
	for i := 0; i < a.Rows; i++ {
		for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
			j := a.ColIdx[q]
			m.NonzeroRow[p] = i
			m.NonzeroCol[p] = j
			rowPins[i] = append(rowPins[i], p)
			colPins[j] = append(colPins[j], p)
			p++
		}
	}
	for i := 0; i < a.Rows; i++ {
		b.AddNet(1, rowPins[i]...)
	}
	for j := 0; j < a.Cols; j++ {
		b.AddNet(1, colPins[j]...)
	}
	m.H = b.Build()
	return m
}

// MediumGrainModel is the composite hypergraph of the medium-grain method
// (Pelt and Bisseling 2014), in the amalgamated form described in §V of
// the paper. The nonzeros are split A = A_r + A_c: a_ij joins A_r (grouped
// with its row) when nnz(row i) ≤ nnz(col j), and A_c (grouped with its
// column) otherwise. Vertices: one per row (0..Rows-1) amalgamating y_i
// with the A_r nonzeros of row i, and one per column (Rows..Rows+Cols-1)
// amalgamating x_j with the A_c nonzeros of column j. Nets: column-net j
// pins {row-vertex i : a_ij ∈ A_r} ∪ {column-vertex j}; row-net i pins
// {column-vertex j : a_ij ∈ A_c} ∪ {row-vertex i}. A K-way partition of
// this model decodes directly to an s2D partition, and connectivity−1 is
// exactly its fused-phase communication volume.
type MediumGrainModel struct {
	H    *H
	Rows int
	Cols int
	// Sym marks the amalgamated (symmetric vector partition) variant,
	// where row i and column i share one vertex.
	Sym bool
	// ToRowSide[p] reports whether the p-th nonzero (CSR order) went to A_r.
	ToRowSide []bool
}

// RowVertex returns the vertex index of row i.
func (m *MediumGrainModel) RowVertex(i int) int { return i }

// ColVertex returns the vertex index of column j.
func (m *MediumGrainModel) ColVertex(j int) int {
	if m.Sym {
		return j
	}
	return m.Rows + j
}

// MediumGrainSym builds the composite model for a square matrix with row
// vertex i and column vertex i amalgamated, as §V of the paper suggests:
// "the use of composite models enable obtaining symmetric vector
// partitions ... while exactly encoding the total communication volume."
// Vertex i then owns y_i, x_i, the A_r nonzeros of row i and the A_c
// nonzeros of column i; a K-way partition decodes to an s2D partition
// with identical x and y partitions.
func MediumGrainSym(a *sparse.CSR) *MediumGrainModel {
	if a.Rows != a.Cols {
		panic("hypergraph: MediumGrainSym requires a square matrix")
	}
	rowDeg := a.RowDegrees()
	colDeg := a.ColDegrees()
	mg := &MediumGrainModel{Rows: a.Rows, Cols: a.Cols, Sym: true, ToRowSide: make([]bool, a.NNZ())}

	b := NewBuilder(a.Rows)
	w := make([]int, a.Rows)
	colNetPins := make([][]int, a.Cols)
	rowNetPins := make([][]int, a.Rows)
	p := 0
	for i := 0; i < a.Rows; i++ {
		for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
			j := a.ColIdx[q]
			if rowDeg[i] <= colDeg[j] {
				mg.ToRowSide[p] = true
				w[i]++
				colNetPins[j] = append(colNetPins[j], i)
			} else {
				w[j]++
				rowNetPins[i] = append(rowNetPins[i], j)
			}
			p++
		}
	}
	for i := 0; i < a.Rows; i++ {
		b.SetWeight(i, w[i])
	}
	for j := 0; j < a.Cols; j++ {
		b.AddNet(1, append(colNetPins[j], j)...)
	}
	for i := 0; i < a.Rows; i++ {
		b.AddNet(1, append(rowNetPins[i], i)...)
	}
	mg.H = b.Build()
	return mg
}

// MediumGrain builds the composite medium-grain model of a.
func MediumGrain(a *sparse.CSR) *MediumGrainModel {
	rowDeg := a.RowDegrees()
	colDeg := a.ColDegrees()
	mg := &MediumGrainModel{Rows: a.Rows, Cols: a.Cols, ToRowSide: make([]bool, a.NNZ())}

	b := NewBuilder(a.Rows + a.Cols)
	rowW := make([]int, a.Rows)
	colW := make([]int, a.Cols)
	colNetPins := make([][]int, a.Cols) // pins of column-net j (A_r rows)
	rowNetPins := make([][]int, a.Rows) // pins of row-net i (A_c cols)
	p := 0
	for i := 0; i < a.Rows; i++ {
		for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
			j := a.ColIdx[q]
			if rowDeg[i] <= colDeg[j] {
				mg.ToRowSide[p] = true
				rowW[i]++
				colNetPins[j] = append(colNetPins[j], mg.RowVertex(i))
			} else {
				colW[j]++
				rowNetPins[i] = append(rowNetPins[i], mg.ColVertex(j))
			}
			p++
		}
	}
	for i := 0; i < a.Rows; i++ {
		b.SetWeight(mg.RowVertex(i), rowW[i])
	}
	for j := 0; j < a.Cols; j++ {
		b.SetWeight(mg.ColVertex(j), colW[j])
	}
	// Column-net j: A_r rows of column j plus the column vertex (x_j).
	for j := 0; j < a.Cols; j++ {
		pins := append(colNetPins[j], mg.ColVertex(j))
		b.AddNet(1, pins...)
	}
	// Row-net i: A_c columns of row i plus the row vertex (y_i).
	for i := 0; i < a.Rows; i++ {
		pins := append(rowNetPins[i], mg.RowVertex(i))
		b.AddNet(1, pins...)
	}
	mg.H = b.Build()
	return mg
}
