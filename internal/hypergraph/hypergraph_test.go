package hypergraph

import (
	"testing"

	"repro/internal/sparse"
)

func testMatrix() *sparse.CSR {
	// 4x4:
	// [1 1 0 0]
	// [0 1 1 0]
	// [0 0 1 1]
	// [1 0 0 1]
	c := sparse.NewCOO(4, 4)
	for _, e := range [][2]int{{0, 0}, {0, 1}, {1, 1}, {1, 2}, {2, 2}, {2, 3}, {3, 0}, {3, 3}} {
		c.Add(e[0], e[1], 1)
	}
	return c.ToCSR()
}

func TestBuilderDedupesPins(t *testing.T) {
	b := NewBuilder(3)
	b.AddNet(2, 0, 1, 1, 0)
	h := b.Build()
	if h.NetSize(0) != 2 {
		t.Fatalf("net size = %d, want 2 after dedupe", h.NetSize(0))
	}
	if h.NCost[0] != 2 {
		t.Fatalf("cost = %d", h.NCost[0])
	}
}

func TestBuilderPanicsOnBadPin(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range pin")
		}
	}()
	b := NewBuilder(2)
	b.AddNet(1, 5)
	b.Build()
}

func TestVertexIndexConsistent(t *testing.T) {
	b := NewBuilder(4)
	b.AddNet(1, 0, 1)
	b.AddNet(1, 1, 2, 3)
	b.AddNet(1, 0, 3)
	h := b.Build()
	// Vertex 1 appears in nets 0 and 1.
	nets := h.Nets(1)
	if len(nets) != 2 || nets[0] != 0 || nets[1] != 1 {
		t.Errorf("Nets(1) = %v", nets)
	}
	if h.NumN != 3 {
		t.Errorf("NumN = %d", h.NumN)
	}
}

func TestConnectivityMinusOne(t *testing.T) {
	b := NewBuilder(4)
	b.AddNet(1, 0, 1, 2, 3) // spans all
	b.AddNet(2, 0, 1)       // may be internal
	h := b.Build()
	parts := []int{0, 0, 1, 2}
	// Net 0: parts {0,1,2} -> lambda 3, contributes 2. Net 1: internal.
	if got := ConnectivityMinusOne(h, parts, 3); got != 2 {
		t.Errorf("conn-1 = %d, want 2", got)
	}
	parts2 := []int{0, 1, 1, 2}
	// Net 0: 2. Net 1: cut, cost 2 * (2-1) = 2. Total 4.
	if got := ConnectivityMinusOne(h, parts2, 3); got != 4 {
		t.Errorf("conn-1 = %d, want 4", got)
	}
}

func TestCutNets(t *testing.T) {
	b := NewBuilder(4)
	b.AddNet(3, 0, 1, 2, 3)
	b.AddNet(2, 0, 1)
	h := b.Build()
	parts := []int{0, 0, 1, 2}
	if got := CutNets(h, parts, 3); got != 3 {
		t.Errorf("cutnets = %d, want 3", got)
	}
}

func TestImbalance(t *testing.T) {
	b := NewBuilder(4)
	b.SetWeight(0, 30)
	b.SetWeight(1, 10)
	b.SetWeight(2, 10)
	b.SetWeight(3, 10)
	h := b.Build()
	parts := []int{0, 1, 1, 1}
	// Weights: 30 vs 30, avg 30 -> imbalance 0.
	if imb := Imbalance(h, parts, 2); imb != 0 {
		t.Errorf("imbalance = %v, want 0", imb)
	}
	parts2 := []int{0, 0, 1, 1}
	// 40 vs 20, avg 30 -> 0.333...
	if imb := Imbalance(h, parts2, 2); imb < 0.33 || imb > 0.34 {
		t.Errorf("imbalance = %v, want ~0.333", imb)
	}
}

func TestColumnNetModel(t *testing.T) {
	a := testMatrix()
	h := ColumnNetModel(a)
	if h.NumV != 4 || h.NumN != 4 {
		t.Fatalf("dims %d/%d", h.NumV, h.NumN)
	}
	// Vertex weights = row nnz.
	for i := 0; i < 4; i++ {
		if h.VWeight[i] != 2 {
			t.Errorf("VWeight[%d] = %d, want 2", i, h.VWeight[i])
		}
	}
	// Column 0 has nonzeros in rows 0,3; the vector vertex 0 dedupes away
	// because a_00 is present.
	pins := h.Pins(0)
	if len(pins) != 2 {
		t.Errorf("net 0 pins = %v, want rows {0,3}", pins)
	}
}

func TestColumnNetAddsVectorVertex(t *testing.T) {
	// Square matrix with a_11 missing: net 1 must still pin vertex 1 so
	// that x_1's owner is encoded.
	c := sparse.NewCOO(3, 3)
	c.Add(0, 1, 1)
	c.Add(1, 0, 1)
	c.Add(2, 2, 1)
	h := ColumnNetModel(c.ToCSR())
	pins := h.Pins(1) // rows with nonzero in col 1: {0}; plus vertex 1
	if len(pins) != 2 {
		t.Fatalf("net 1 pins = %v, want {0,1}", pins)
	}
}

// TestColumnNetVolumeSemantics: connectivity-1 of the column-net model
// under a symmetric vector partition equals the expand volume of 1D
// rowwise SpMV: for every column j, each part that has a nonzero in column
// j but does not own x_j receives x_j once.
func TestColumnNetVolumeSemantics(t *testing.T) {
	a := testMatrix()
	h := ColumnNetModel(a)
	parts := []int{0, 0, 1, 1} // rows 0,1 -> P0; rows 2,3 -> P1
	got := ConnectivityMinusOne(h, parts, 2)

	// Manual count: x_j lives with row j. Column nets:
	// col0: rows {0,3}, x0 at P0 -> P1 needs x0: 1
	// col1: rows {0,1}, x1 at P0 -> 0
	// col2: rows {1,2}, x2 at P1 -> P0 needs x2: 1
	// col3: rows {2,3}, x3 at P1 -> 0
	if got != 2 {
		t.Errorf("volume = %d, want 2", got)
	}
}

func TestRowNetModel(t *testing.T) {
	a := testMatrix()
	h := RowNetModel(a)
	if h.NumV != 4 || h.NumN != 4 {
		t.Fatalf("dims %d/%d", h.NumV, h.NumN)
	}
}

func TestFineGrainModel(t *testing.T) {
	a := testMatrix()
	fg := FineGrain(a)
	if fg.H.NumV != 8 {
		t.Fatalf("vertices = %d, want nnz=8", fg.H.NumV)
	}
	if fg.H.NumN != 8 {
		t.Fatalf("nets = %d, want rows+cols=8", fg.H.NumN)
	}
	// Every vertex has exactly 2 nets (its row net and its column net).
	for v := 0; v < fg.H.NumV; v++ {
		if len(fg.H.Nets(v)) != 2 {
			t.Errorf("vertex %d has %d nets", v, len(fg.H.Nets(v)))
		}
	}
	// Coordinates match the CSR traversal.
	if fg.NonzeroRow[0] != 0 || fg.NonzeroCol[0] != 0 {
		t.Errorf("first nonzero coords (%d,%d)", fg.NonzeroRow[0], fg.NonzeroCol[0])
	}
}

func TestMediumGrainModel(t *testing.T) {
	a := testMatrix()
	mg := MediumGrain(a)
	if mg.H.NumV != 8 {
		t.Fatalf("vertices = %d, want rows+cols=8", mg.H.NumV)
	}
	if mg.H.NumN != 8 {
		t.Fatalf("nets = %d", mg.H.NumN)
	}
	// Weight conservation: total vertex weight == nnz.
	if mg.H.TotalVWeight() != a.NNZ() {
		t.Errorf("total weight %d != nnz %d", mg.H.TotalVWeight(), a.NNZ())
	}
	// Every net contains its own amalgamated vector vertex.
	for j := 0; j < a.Cols; j++ {
		found := false
		for _, p := range mg.H.Pins(j) {
			if p == mg.ColVertex(j) {
				found = true
			}
		}
		if !found {
			t.Errorf("column net %d missing its column vertex", j)
		}
	}
	for i := 0; i < a.Rows; i++ {
		found := false
		for _, p := range mg.H.Pins(a.Cols + i) {
			if p == mg.RowVertex(i) {
				found = true
			}
		}
		if !found {
			t.Errorf("row net %d missing its row vertex", i)
		}
	}
}

func TestMediumGrainSplitRule(t *testing.T) {
	// Matrix with a dense row: its nonzeros should go to the column side
	// (row degree > column degree).
	c := sparse.NewCOO(3, 3)
	c.Add(0, 0, 1)
	c.Add(0, 1, 1)
	c.Add(0, 2, 1)
	c.Add(1, 1, 1)
	c.Add(2, 2, 1)
	a := c.ToCSR()
	mg := MediumGrain(a)
	// Row 0 degree 3; columns have degree 1 or 2. Nonzero (0,0): rowdeg 3 >
	// coldeg 1 -> column side.
	if mg.ToRowSide[0] {
		t.Error("dense-row nonzero went to row side")
	}
	// Nonzero (1,1): rowdeg 1 <= coldeg 2 -> row side.
	if !mg.ToRowSide[3] {
		t.Error("sparse-row nonzero went to column side")
	}
}

func TestMediumGrainSymModel(t *testing.T) {
	a := testMatrix()
	mg := MediumGrainSym(a)
	if !mg.Sym {
		t.Fatal("Sym flag unset")
	}
	if mg.H.NumV != a.Rows {
		t.Fatalf("vertices = %d, want %d (amalgamated)", mg.H.NumV, a.Rows)
	}
	if mg.ColVertex(2) != 2 || mg.RowVertex(2) != 2 {
		t.Error("amalgamated vertex indices differ")
	}
	// Weight conservation still holds.
	if mg.H.TotalVWeight() != a.NNZ() {
		t.Errorf("total weight %d != nnz %d", mg.H.TotalVWeight(), a.NNZ())
	}
	// Net count unchanged: one per column + one per row.
	if mg.H.NumN != a.Rows+a.Cols {
		t.Errorf("nets = %d", mg.H.NumN)
	}
}

func TestMediumGrainSymPanicsOnRectangular(t *testing.T) {
	c := sparse.NewCOO(2, 3)
	c.Add(0, 0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MediumGrainSym(c.ToCSR())
}
