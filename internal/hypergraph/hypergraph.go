// Package hypergraph defines the hypergraph type used by the partitioner
// and the sparse-matrix hypergraph models from the partitioning literature:
// the column-net model (1D rowwise), the row-net model (1D columnwise), the
// fine-grain row-column-net model (2D), and the medium-grain composite
// model of Pelt and Bisseling (which decodes directly to an s2D partition).
package hypergraph

import "fmt"

// H is an immutable hypergraph with weighted vertices and costed nets.
// Pins are stored twice (net→vertex and vertex→net) in CSR-like arrays.
type H struct {
	NumV, NumN int
	VWeight    []int
	NCost      []int
	NetPtr     []int // len NumN+1; net n's pins are NetPins[NetPtr[n]:NetPtr[n+1]]
	NetPins    []int
	VtxPtr     []int // len NumV+1; vertex v's nets are VtxNets[VtxPtr[v]:VtxPtr[v+1]]
	VtxNets    []int
}

// Pins returns the vertices of net n (a view, do not modify).
func (h *H) Pins(n int) []int { return h.NetPins[h.NetPtr[n]:h.NetPtr[n+1]] }

// Nets returns the nets incident to vertex v (a view, do not modify).
func (h *H) Nets(v int) []int { return h.VtxNets[h.VtxPtr[v]:h.VtxPtr[v+1]] }

// NetSize returns the number of pins of net n.
func (h *H) NetSize(n int) int { return h.NetPtr[n+1] - h.NetPtr[n] }

// TotalVWeight returns the sum of all vertex weights.
func (h *H) TotalVWeight() int {
	var s int
	for _, w := range h.VWeight {
		s += w
	}
	return s
}

// Builder accumulates vertices and nets and produces an H.
type Builder struct {
	numV    int
	vweight []int
	nets    [][]int
	ncost   []int
}

// NewBuilder returns a builder for a hypergraph with numV vertices, each
// initially of weight 1.
func NewBuilder(numV int) *Builder {
	w := make([]int, numV)
	for i := range w {
		w[i] = 1
	}
	return &Builder{numV: numV, vweight: w}
}

// SetWeight sets the weight of vertex v.
func (b *Builder) SetWeight(v, w int) { b.vweight[v] = w }

// AddNet appends a net with the given cost and pins. Duplicate pins within
// a net are removed at Build time.
func (b *Builder) AddNet(cost int, pins ...int) {
	b.nets = append(b.nets, pins)
	b.ncost = append(b.ncost, cost)
}

// Build assembles the hypergraph. Pins within each net are deduplicated;
// net order and vertex order are preserved.
func (b *Builder) Build() *H {
	h := &H{
		NumV:    b.numV,
		NumN:    len(b.nets),
		VWeight: b.vweight,
		NCost:   b.ncost,
		NetPtr:  make([]int, len(b.nets)+1),
	}
	seen := make([]int, b.numV)
	for i := range seen {
		seen[i] = -1
	}
	var pins []int
	for n, raw := range b.nets {
		for _, v := range raw {
			if v < 0 || v >= b.numV {
				panic(fmt.Sprintf("hypergraph: pin %d out of range [0,%d)", v, b.numV))
			}
			if seen[v] != n {
				seen[v] = n
				pins = append(pins, v)
			}
		}
		h.NetPtr[n+1] = len(pins)
	}
	h.NetPins = pins
	h.buildVtxIndex()
	return h
}

func (h *H) buildVtxIndex() {
	h.VtxPtr = make([]int, h.NumV+1)
	for _, v := range h.NetPins {
		h.VtxPtr[v+1]++
	}
	for v := 0; v < h.NumV; v++ {
		h.VtxPtr[v+1] += h.VtxPtr[v]
	}
	h.VtxNets = make([]int, len(h.NetPins))
	pos := make([]int, h.NumV)
	copy(pos, h.VtxPtr[:h.NumV])
	for n := 0; n < h.NumN; n++ {
		for _, v := range h.Pins(n) {
			h.VtxNets[pos[v]] = n
			pos[v]++
		}
	}
}

// ConnectivityMinusOne returns the K-way connectivity-λ−1 cut metric:
// Σ_nets cost(n)·(λ(n)−1) where λ(n) is the number of distinct parts among
// n's pins. In SpMV models this equals the total communication volume.
func ConnectivityMinusOne(h *H, parts []int, k int) int {
	mark := make([]int, k)
	for i := range mark {
		mark[i] = -1
	}
	total := 0
	for n := 0; n < h.NumN; n++ {
		lambda := 0
		for _, v := range h.Pins(n) {
			p := parts[v]
			if mark[p] != n {
				mark[p] = n
				lambda++
			}
		}
		if lambda > 1 {
			total += h.NCost[n] * (lambda - 1)
		}
	}
	return total
}

// CutNets returns the cut-net metric: Σ cost(n) over nets spanning more
// than one part.
func CutNets(h *H, parts []int, k int) int {
	mark := make([]int, k)
	for i := range mark {
		mark[i] = -1
	}
	total := 0
	for n := 0; n < h.NumN; n++ {
		lambda := 0
		for _, v := range h.Pins(n) {
			p := parts[v]
			if mark[p] != n {
				mark[p] = n
				lambda++
				if lambda > 1 {
					total += h.NCost[n]
					break
				}
			}
		}
	}
	return total
}

// PartWeights returns the total vertex weight per part.
func PartWeights(h *H, parts []int, k int) []int {
	w := make([]int, k)
	for v, p := range parts {
		w[p] += h.VWeight[v]
	}
	return w
}

// Imbalance returns (maxPartWeight / avgPartWeight) − 1.
func Imbalance(h *H, parts []int, k int) float64 {
	w := PartWeights(h, parts, k)
	var sum, max int
	for _, x := range w {
		sum += x
		if x > max {
			max = x
		}
	}
	if sum == 0 {
		return 0
	}
	avg := float64(sum) / float64(k)
	return float64(max)/avg - 1
}
