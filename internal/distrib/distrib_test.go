package distrib

import (
	"math/rand"
	"testing"

	"repro/internal/sparse"
)

// tiny returns the 3x3 matrix
//
//	[a .. a02]
//	[.. a11 .]
//	[a20 . a22]
//
// with a convenient hand-checkable structure.
func tiny() *sparse.CSR {
	c := sparse.NewCOO(3, 3)
	c.Add(0, 0, 1)
	c.Add(0, 2, 2)
	c.Add(1, 1, 3)
	c.Add(2, 0, 4)
	c.Add(2, 2, 5)
	return c.ToCSR()
}

func TestValidateCatchesSizeErrors(t *testing.T) {
	a := tiny()
	d := &Distribution{A: a, K: 2, Owner: []int{0}, XPart: []int{0, 0, 0}, YPart: []int{0, 0, 0}}
	if err := d.Validate(); err == nil {
		t.Error("accepted short Owner")
	}
	d2 := &Distribution{A: a, K: 2, Owner: []int{0, 0, 0, 0, 0}, XPart: []int{0, 0}, YPart: []int{0, 0, 0}}
	if err := d2.Validate(); err == nil {
		t.Error("accepted short XPart")
	}
	d3 := &Distribution{A: a, K: 2, Owner: []int{0, 0, 5, 0, 0}, XPart: []int{0, 0, 0}, YPart: []int{0, 0, 0}}
	if err := d3.Validate(); err == nil {
		t.Error("accepted out-of-range owner")
	}
}

func TestValidateEnforcesS2DWhenFused(t *testing.T) {
	a := tiny()
	// Nonzero (0,2): owner 1, XPart[2] = 0, YPart[0] = 0 -> violates s2D.
	d := &Distribution{
		A: a, K: 2,
		Owner: []int{0, 1, 0, 0, 0},
		XPart: []int{0, 0, 0},
		YPart: []int{0, 0, 0},
		Fused: true,
	}
	if err := d.Validate(); err == nil {
		t.Error("fused distribution with group-(iv) nonzero accepted")
	}
	d.Fused = false
	if err := d.Validate(); err != nil {
		t.Errorf("two-phase distribution rejected: %v", err)
	}
	if d.IsS2D() {
		t.Error("IsS2D true for violating distribution")
	}
}

func TestPartLoadsAndImbalance(t *testing.T) {
	a := tiny()
	d := &Distribution{A: a, K: 2, Owner: []int{0, 0, 0, 1, 1}, XPart: []int{0, 0, 1}, YPart: []int{0, 0, 1}}
	w := d.PartLoads()
	if w[0] != 3 || w[1] != 2 {
		t.Fatalf("loads = %v", w)
	}
	// max 3, avg 2.5 -> 0.2
	if li := d.LoadImbalance(); li < 0.19 || li > 0.21 {
		t.Errorf("LI = %v, want 0.2", li)
	}
}

func TestCommHandComputed(t *testing.T) {
	a := tiny()
	// K=2. Rows 0,1 -> P0; row 2 -> P1. x: 0,1 -> P0; 2 -> P1.
	// Owners rowwise: (0,0)=0 (0,2)=0 (1,1)=0 (2,0)=1 (2,2)=1.
	d := &Distribution{
		A: a, K: 2,
		Owner: []int{0, 0, 0, 1, 1},
		XPart: []int{0, 0, 1},
		YPart: []int{0, 0, 1},
	}
	// Expand: col0: owners {0 (local), 1} -> x0 P0->P1 (1 word).
	// col1: owner 0 local. col2: owners {0,1}, XPart=1 -> x2 P1->P0.
	// Fold: all nonzeros owned by their row part -> none.
	cs := d.Comm()
	if cs.TotalVolume != 2 {
		t.Errorf("volume = %d, want 2", cs.TotalVolume)
	}
	if cs.TotalMsgs != 2 {
		t.Errorf("messages = %d, want 2 (P0->P1 and P1->P0)", cs.TotalMsgs)
	}
	if len(cs.Phases) != 2 {
		t.Errorf("phases = %d, want 2 (unfused)", len(cs.Phases))
	}
	if cs.Phases[1].TotalVolume != 0 {
		t.Errorf("fold volume = %d, want 0", cs.Phases[1].TotalVolume)
	}
}

func TestCommFusedMergesMessages(t *testing.T) {
	a := tiny()
	// Make nonzero (2,0) owned by P0 (x side): fold traffic P0->P1 for y2,
	// expand traffic for x2 P1->P0 remains. Fused: the P0->P1 x0 message
	// and P0->P1 partial-y2 combine into one message.
	d := &Distribution{
		A: a, K: 2,
		Owner: []int{0, 0, 0, 0, 1},
		XPart: []int{0, 0, 1},
		YPart: []int{0, 0, 1},
		Fused: true,
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	cs := d.Comm()
	// Volume: x0 P0->P1 (needed by owner... check: col0 owners: (0,0)=P0
	// local to XPart0; (2,0)=P0 local -> no expand for x0!
	// col2: (0,2) owner 0, XPart2=1 -> x2: P1->P0. (2,2) owner 1 local.
	// Fold: row2: (2,0) owner 0 != YPart2=1 -> partial P0->P1.
	// Total volume 2; messages: P1->P0 (x2), P0->P1 (partial y2) -> 2.
	if cs.TotalVolume != 2 {
		t.Errorf("volume = %d, want 2", cs.TotalVolume)
	}
	if cs.TotalMsgs != 2 {
		t.Errorf("messages = %d, want 2", cs.TotalMsgs)
	}
	if len(cs.Phases) != 1 {
		t.Errorf("phases = %d, want 1 (fused)", len(cs.Phases))
	}
}

func TestFusedVolumeEqualsUnfused(t *testing.T) {
	// Fusing merges messages but never changes the volume.
	r := rand.New(rand.NewSource(20))
	for trial := 0; trial < 30; trial++ {
		rows, cols := 20+r.Intn(50), 20+r.Intn(50)
		c := sparse.NewCOO(rows, cols)
		for tt := 0; tt < 50+r.Intn(300); tt++ {
			c.Add(r.Intn(rows), r.Intn(cols), 1)
		}
		a := c.ToCSR()
		k := 2 + r.Intn(6)
		d := &Distribution{A: a, K: k, Owner: make([]int, a.NNZ()),
			XPart: make([]int, cols), YPart: make([]int, rows)}
		for j := range d.XPart {
			d.XPart[j] = r.Intn(k)
		}
		// s2D-legal random owners: coin-flip between x side and y side.
		p := 0
		for i := 0; i < rows; i++ {
			d.YPart[i] = r.Intn(k)
		}
		for i := 0; i < rows; i++ {
			for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
				if r.Intn(2) == 0 {
					d.Owner[p] = d.XPart[a.ColIdx[q]]
				} else {
					d.Owner[p] = d.YPart[i]
				}
				p++
			}
		}
		d.Fused = false
		v2 := d.Comm()
		d.Fused = true
		v1 := d.Comm()
		if v1.TotalVolume != v2.TotalVolume {
			t.Fatalf("trial %d: fused volume %d != two-phase %d", trial, v1.TotalVolume, v2.TotalVolume)
		}
		if v1.TotalMsgs > v2.TotalMsgs {
			t.Fatalf("trial %d: fusing increased messages %d > %d", trial, v1.TotalMsgs, v2.TotalMsgs)
		}
	}
}

func TestMsgAccumIgnoresSelfSends(t *testing.T) {
	m := NewMsgAccum(4)
	m.Add(1, 1, 5)
	m.Add(1, 2, 3)
	st := m.Stats()
	if st.TotalVolume != 3 || st.TotalMsgs != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCombineStats(t *testing.T) {
	a := NewMsgAccum(3)
	a.Add(0, 1, 2)
	a.Add(0, 2, 1)
	b := NewMsgAccum(3)
	b.Add(0, 1, 4)
	b.Add(1, 0, 1)
	cs := CombineStats(3, a, b)
	if cs.TotalVolume != 8 {
		t.Errorf("volume = %d, want 8", cs.TotalVolume)
	}
	if cs.TotalMsgs != 4 {
		t.Errorf("messages = %d, want 4", cs.TotalMsgs)
	}
	// Processor 0 sends 3 messages total (2 in phase a, 1 in phase b).
	if cs.MaxSendMsgs != 3 {
		t.Errorf("max send msgs = %d, want 3", cs.MaxSendMsgs)
	}
	if cs.MaxSendVol != 7 {
		t.Errorf("max send vol = %d, want 7", cs.MaxSendVol)
	}
}
