// Package distrib defines the common data-distribution representation
// shared by every partitioning method in this repository, and the quality
// metrics the paper reports: computational load imbalance, total and
// maximum communication volume, and per-processor message (latency) counts.
//
// A Distribution assigns every stored nonzero of A to an owner processor
// and every input/output vector entry to a part. All methods — 1D, 2D
// fine-grain, semi-2D, and the latency-bounded variants — reduce to this
// form; what differs is the communication schedule, captured by Fused.
package distrib

import (
	"fmt"

	"repro/internal/sparse"
)

// Distribution is a K-way data partition for y ← Ax. Owner is indexed in
// CSR order (Owner[p] owns the p-th stored nonzero of A); XPart and YPart
// give the owners of input and output vector entries.
type Distribution struct {
	A     *sparse.CSR
	K     int
	Owner []int
	XPart []int
	YPart []int
	// Fused marks distributions executed with the paper's single
	// Expand-and-Fold phase. Requires the s2D property (Validate checks
	// it). Non-fused distributions use the standard two-phase schedule.
	Fused bool
}

// Validate checks structural consistency, and — for fused distributions —
// the s2D property: every nonzero is owned by the part holding its x or
// its y entry.
func (d *Distribution) Validate() error {
	if len(d.Owner) != d.A.NNZ() {
		return fmt.Errorf("distrib: Owner has %d entries for %d nonzeros", len(d.Owner), d.A.NNZ())
	}
	if len(d.XPart) != d.A.Cols || len(d.YPart) != d.A.Rows {
		return fmt.Errorf("distrib: vector partition sizes %d/%d for %dx%d matrix",
			len(d.XPart), len(d.YPart), d.A.Rows, d.A.Cols)
	}
	check := func(name string, ps []int) error {
		for i, p := range ps {
			if p < 0 || p >= d.K {
				return fmt.Errorf("distrib: %s[%d] = %d outside [0,%d)", name, i, p, d.K)
			}
		}
		return nil
	}
	if err := check("Owner", d.Owner); err != nil {
		return err
	}
	if err := check("XPart", d.XPart); err != nil {
		return err
	}
	if err := check("YPart", d.YPart); err != nil {
		return err
	}
	if d.Fused {
		if bad := d.countNonS2D(); bad > 0 {
			return fmt.Errorf("distrib: fused distribution violates the s2D property on %d nonzeros", bad)
		}
	}
	return nil
}

// countNonS2D returns the number of nonzeros owned by a part holding
// neither the x nor the y entry (the paper's computational group (iv)).
func (d *Distribution) countNonS2D() int {
	bad := 0
	p := 0
	for i := 0; i < d.A.Rows; i++ {
		for q := d.A.RowPtr[i]; q < d.A.RowPtr[i+1]; q++ {
			j := d.A.ColIdx[q]
			if o := d.Owner[p]; o != d.XPart[j] && o != d.YPart[i] {
				bad++
			}
			p++
		}
	}
	return bad
}

// IsS2D reports whether the distribution satisfies the semi-2D constraint.
func (d *Distribution) IsS2D() bool { return d.countNonS2D() == 0 }

// EachNZ visits every stored nonzero in CSR order with its row, column,
// value, and owner — the traversal every schedule builder performs.
func (d *Distribution) EachNZ(f func(i, j int, v float64, owner int)) {
	a := d.A
	for i := 0; i < a.Rows; i++ {
		for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
			f(i, a.ColIdx[q], a.Val[q], d.Owner[q])
		}
	}
}

// PartLoads returns the number of nonzeros owned by each part — the
// computational load model used throughout the paper (eq. 7).
func (d *Distribution) PartLoads() []int {
	w := make([]int, d.K)
	for _, o := range d.Owner {
		w[o]++
	}
	return w
}

// LoadImbalance returns max/avg − 1 over part loads (the paper's LI).
func (d *Distribution) LoadImbalance() float64 {
	w := d.PartLoads()
	var sum, max int
	for _, x := range w {
		sum += x
		if x > max {
			max = x
		}
	}
	if sum == 0 {
		return 0
	}
	return float64(max)/(float64(sum)/float64(d.K)) - 1
}
