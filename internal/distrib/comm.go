package distrib

// PhaseStats summarizes one communication phase.
type PhaseStats struct {
	TotalVolume  int // words sent by all processors
	MaxSendVol   int // largest per-processor send volume
	MaxRecvVol   int // largest per-processor receive volume
	TotalMsgs    int // number of point-to-point messages
	MaxSendMsgs  int // largest per-processor outgoing message count
	MaxRecvMsgs  int // largest per-processor incoming message count
	AvgSendMsgs  float64
	SendersCount int // processors that send at least one message
}

// CommStats aggregates the communication requirements of a distribution
// under its schedule (one fused phase, or expand+fold).
type CommStats struct {
	Phases []PhaseStats
	// Totals across phases.
	TotalVolume int
	TotalMsgs   int
	MaxSendMsgs int // max over processors of total messages sent (all phases)
	AvgSendMsgs float64
	MaxSendVol  int // max over processors of total words sent (all phases)
}

// MsgAccum accumulates per-(source,destination) message volumes sparsely.
// It is exported so that routed schedules (s2D-b) in other packages can
// produce PhaseStats with the same accounting.
type MsgAccum struct {
	K   int
	Vol map[int64]int
}

// NewMsgAccum returns an empty accumulator for k processors.
func NewMsgAccum(k int) *MsgAccum { return &MsgAccum{K: k, Vol: make(map[int64]int)} }

// Add records words sent from processor `from` to `to`; self-sends are
// ignored.
func (m *MsgAccum) Add(from, to, words int) {
	if from == to {
		return
	}
	m.Vol[int64(from)*int64(m.K)+int64(to)] += words
}

// Merge adds all of o's traffic into m.
func (m *MsgAccum) Merge(o *MsgAccum) {
	for key, v := range o.Vol {
		m.Vol[key] += v
	}
}

// Stats summarizes the accumulated traffic as one phase.
func (m *MsgAccum) Stats() PhaseStats {
	var st PhaseStats
	sendVol := make(map[int]int)
	recvVol := make(map[int]int)
	sendMsg := make(map[int]int)
	recvMsg := make(map[int]int)
	for key, words := range m.Vol {
		from := int(key / int64(m.K))
		to := int(key % int64(m.K))
		st.TotalVolume += words
		st.TotalMsgs++
		sendVol[from] += words
		recvVol[to] += words
		sendMsg[from]++
		recvMsg[to]++
	}
	st.MaxSendVol = maxVal(sendVol)
	st.MaxRecvVol = maxVal(recvVol)
	st.MaxSendMsgs = maxVal(sendMsg)
	st.MaxRecvMsgs = maxVal(recvMsg)
	st.SendersCount = len(sendMsg)
	if m.K > 0 {
		st.AvgSendMsgs = float64(st.TotalMsgs) / float64(m.K)
	}
	return st
}

func maxVal(m map[int]int) int {
	max := 0
	for _, v := range m { //spmvlint:unordered running max; order-insensitive
		if v > max {
			max = v
		}
	}
	return max
}

// CombineStats aggregates per-phase statistics into totals. Per-processor
// maxima are taken over the per-phase sums.
func CombineStats(k int, accums ...*MsgAccum) CommStats {
	var cs CommStats
	perProcMsgs := make(map[int]int)
	perProcVol := make(map[int]int)
	for _, acc := range accums {
		ph := acc.Stats()
		cs.Phases = append(cs.Phases, ph)
		cs.TotalVolume += ph.TotalVolume
		cs.TotalMsgs += ph.TotalMsgs
		for key, words := range acc.Vol {
			from := int(key / int64(acc.K))
			perProcVol[from] += words
			perProcMsgs[from]++
		}
	}
	cs.MaxSendMsgs = maxVal(perProcMsgs)
	cs.MaxSendVol = maxVal(perProcVol)
	if k > 0 {
		cs.AvgSendMsgs = float64(cs.TotalMsgs) / float64(k)
	}
	return cs
}

// ExpandFold computes the two fundamental message sets of parallel SpMV:
//
//   - expand: x_j travels from XPart[j] to every other part owning a
//     nonzero in column j;
//   - fold: a partial result for y_i travels from every other part owning
//     a nonzero in row i to YPart[i].
func (d *Distribution) ExpandFold() (expand, fold *MsgAccum) {
	expand = NewMsgAccum(d.K)
	fold = NewMsgAccum(d.K)

	// Fold: per row, each distinct non-YPart owner sends one partial.
	mark := make(map[int]struct{}, 8)
	p := 0
	for i := 0; i < d.A.Rows; i++ {
		clear(mark)
		for q := d.A.RowPtr[i]; q < d.A.RowPtr[i+1]; q++ {
			o := d.Owner[p]
			p++
			if o == d.YPart[i] {
				continue
			}
			if _, dup := mark[o]; !dup {
				mark[o] = struct{}{}
				fold.Add(o, d.YPart[i], 1)
			}
		}
	}
	// Expand: per column, each distinct non-XPart owner receives x_j once.
	ownerByCol, colPtr := colOrderOwners(d)
	for j := 0; j < d.A.Cols; j++ {
		clear(mark)
		for t := colPtr[j]; t < colPtr[j+1]; t++ {
			o := ownerByCol[t]
			if o == d.XPart[j] {
				continue
			}
			if _, dup := mark[o]; !dup {
				mark[o] = struct{}{}
				expand.Add(d.XPart[j], o, 1)
			}
		}
	}
	return expand, fold
}

// colOrderOwners returns Owner reordered to column-major traversal along
// with the column pointer array.
func colOrderOwners(d *Distribution) ([]int, []int) {
	a := d.A
	colPtr := make([]int, a.Cols+1)
	for _, j := range a.ColIdx {
		colPtr[j+1]++
	}
	for j := 0; j < a.Cols; j++ {
		colPtr[j+1] += colPtr[j]
	}
	pos := make([]int, a.Cols)
	copy(pos, colPtr[:a.Cols])
	out := make([]int, a.NNZ())
	p := 0
	for i := 0; i < a.Rows; i++ {
		for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
			j := a.ColIdx[q]
			out[pos[j]] = d.Owner[p]
			pos[j]++
			p++
		}
	}
	return out, colPtr
}

// Comm computes the communication statistics of d under its schedule.
//
// Two-phase (Fused=false): phase 0 is expand, phase 1 is fold.
//
// Fused (Fused=true): the expand and fold message sets are merged —
// processor k sends processor ℓ one packet containing both the x entries ℓ
// needs from k and the partial y results k precomputed for ℓ (the paper's
// Expand-and-Fold). The volume is unchanged; the message count drops to
// the number of nonempty (k,ℓ) pairs, identical to 1D rowwise whenever the
// vector partitions agree (§III, first observation).
func (d *Distribution) Comm() CommStats {
	expand, fold := d.ExpandFold()
	if d.Fused {
		merged := NewMsgAccum(d.K)
		merged.Merge(expand)
		merged.Merge(fold)
		return CombineStats(d.K, merged)
	}
	return CombineStats(d.K, expand, fold)
}
