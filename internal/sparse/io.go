package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteMatrixMarket writes m in MatrixMarket coordinate format
// ("%%MatrixMarket matrix coordinate real general"). Indices are 1-based on
// the wire per the format specification.
func WriteMatrixMarket(w io.Writer, m *CSR) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", m.Rows, m.Cols, m.NNZ()); err != nil {
		return err
	}
	for i := 0; i < m.Rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, m.ColIdx[p]+1, m.Val[p]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadMatrixMarket parses a MatrixMarket coordinate file. Supported
// qualifiers: real/integer/pattern and general/symmetric. Symmetric input
// is expanded to general storage (mirror entries added for off-diagonals).
//
// Real-world .mtx files are messy, so the parser is liberal where the
// spec allows: a UTF-8 BOM and blank lines before the header, `%`
// comment and blank lines anywhere after the header (including between
// entries and trailing at EOF), and CRLF line endings are all accepted.
// Data lines beyond the declared entry count are an error — a count
// mismatch means a truncated or corrupt upload, not formatting noise.
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)

	first := ""
	for sc.Scan() {
		first = strings.TrimPrefix(sc.Text(), "\ufeff")
		if strings.TrimSpace(first) != "" {
			break
		}
	}
	if strings.TrimSpace(first) == "" {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("sparse: read: %w", err)
		}
		return nil, fmt.Errorf("sparse: empty MatrixMarket stream")
	}
	header := strings.Fields(strings.ToLower(first))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" || header[2] != "coordinate" {
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket header %q", first)
	}
	field, sym := header[3], header[4]
	switch field {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("sparse: unsupported field type %q", field)
	}
	switch sym {
	case "general", "symmetric":
	default:
		return nil, fmt.Errorf("sparse: unsupported symmetry %q", sym)
	}

	// Skip comments, read the size line.
	var rows, cols, nnz int
	for {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return nil, fmt.Errorf("sparse: read: %w", err)
			}
			return nil, fmt.Errorf("sparse: missing size line")
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("sparse: bad size line %q: %w", line, err)
		}
		break
	}

	c := NewCOO(rows, cols)
	c.Entries = make([]Entry, 0, nnz)
	for read := 0; read < nnz; {
		if !sc.Scan() {
			// A truncated stream and a failed read are different failures:
			// surface the reader's own error (e.g. a body-size limit) so
			// callers can match its type.
			if err := sc.Err(); err != nil {
				return nil, fmt.Errorf("sparse: read: %w", err)
			}
			return nil, fmt.Errorf("sparse: expected %d entries, got %d", nnz, read)
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		read++
		f := strings.Fields(line)
		if len(f) < 2 {
			return nil, fmt.Errorf("sparse: malformed entry line %q", line)
		}
		i, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad row index in %q: %w", line, err)
		}
		j, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad col index in %q: %w", line, err)
		}
		v := 1.0
		if field != "pattern" {
			if len(f) < 3 {
				return nil, fmt.Errorf("sparse: missing value in %q", line)
			}
			v, err = strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fmt.Errorf("sparse: bad value in %q: %w", line, err)
			}
		}
		c.Add(i-1, j-1, v)
		if sym == "symmetric" && i != j {
			c.Add(j-1, i-1, v)
		}
	}
	// Anything after the declared entries must be comments or blank
	// trailing lines.
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		return nil, fmt.Errorf("sparse: unexpected data after %d declared entries: %q", nnz, line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c.ToCSR(), nil
}
