package sparse

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func small() *CSR {
	// 3x4 matrix:
	// [1 0 2 0]
	// [0 3 0 0]
	// [4 0 5 6]
	c := NewCOO(3, 4)
	c.Add(0, 0, 1)
	c.Add(0, 2, 2)
	c.Add(1, 1, 3)
	c.Add(2, 0, 4)
	c.Add(2, 2, 5)
	c.Add(2, 3, 6)
	return c.ToCSR()
}

func randomCSR(r *rand.Rand, rows, cols, nnz int) *CSR {
	c := NewCOO(rows, cols)
	for k := 0; k < nnz; k++ {
		c.Add(r.Intn(rows), r.Intn(cols), float64(r.Intn(9)+1))
	}
	return c.ToCSR()
}

func TestCOOToCSR(t *testing.T) {
	m := small()
	if m.NNZ() != 6 {
		t.Fatalf("NNZ = %d, want 6", m.NNZ())
	}
	wantPtr := []int{0, 2, 3, 6}
	for i, v := range wantPtr {
		if m.RowPtr[i] != v {
			t.Errorf("RowPtr[%d] = %d, want %d", i, m.RowPtr[i], v)
		}
	}
	if got := m.RowCols(2); got[0] != 0 || got[1] != 2 || got[2] != 3 {
		t.Errorf("RowCols(2) = %v", got)
	}
}

func TestCanonicalizeMergesDuplicates(t *testing.T) {
	c := NewCOO(2, 2)
	c.Add(0, 0, 1)
	c.Add(0, 0, 2)
	c.Add(1, 1, 5)
	m := c.ToCSR()
	if m.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2 after merge", m.NNZ())
	}
	if m.Val[0] != 3 {
		t.Errorf("merged value = %v, want 3", m.Val[0])
	}
}

func TestValidateRejectsOutOfRange(t *testing.T) {
	c := NewCOO(2, 2)
	c.Add(2, 0, 1)
	if err := c.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range row")
	}
	c2 := NewCOO(2, 2)
	c2.Add(0, -1, 1)
	if err := c2.Validate(); err == nil {
		t.Fatal("Validate accepted negative column")
	}
}

func TestCSRToCSCRoundTrip(t *testing.T) {
	m := small()
	csc := m.ToCSC()
	if csc.NNZ() != m.NNZ() {
		t.Fatalf("CSC NNZ = %d, want %d", csc.NNZ(), m.NNZ())
	}
	// Column 2 holds rows 0 and 2.
	if got := csc.ColRows(2); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("ColRows(2) = %v, want [0 2]", got)
	}
	// Column 1 holds row 1 only.
	if csc.ColNNZ(1) != 1 {
		t.Errorf("ColNNZ(1) = %d, want 1", csc.ColNNZ(1))
	}
}

func TestTransposeTwiceIsIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		m := randomCSR(r, 1+r.Intn(30), 1+r.Intn(30), r.Intn(200))
		tt := m.Transpose().Transpose()
		if !m.Equal(tt) {
			t.Fatalf("trial %d: transpose^2 != identity", trial)
		}
	}
}

func TestTransposeMulVecAgrees(t *testing.T) {
	// (A^T x)_j == sum_i a_ij x_i
	r := rand.New(rand.NewSource(2))
	m := randomCSR(r, 17, 11, 90)
	at := m.Transpose()
	x := make([]float64, m.Rows)
	for i := range x {
		x[i] = r.Float64()
	}
	y := make([]float64, m.Cols)
	at.MulVec(x, y)
	want := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			want[m.ColIdx[p]] += m.Val[p] * x[i]
		}
	}
	for j := range want {
		if math.Abs(want[j]-y[j]) > 1e-12 {
			t.Fatalf("col %d: got %v want %v", j, y[j], want[j])
		}
	}
}

func TestMulVec(t *testing.T) {
	m := small()
	x := []float64{1, 2, 3, 4}
	y := make([]float64, 3)
	m.MulVec(x, y)
	want := []float64{1*1 + 2*3, 3 * 2, 4*1 + 5*3 + 6*4}
	for i := range want {
		if y[i] != want[i] {
			t.Errorf("y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestMulVecPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MulVec did not panic on mismatched dims")
		}
	}()
	small().MulVec(make([]float64, 3), make([]float64, 3))
}

func TestPermuteIdentity(t *testing.T) {
	m := small()
	p := m.Permute(nil, nil)
	if !m.Equal(p) {
		t.Fatal("identity permutation changed matrix")
	}
}

func TestPermutePreservesSpMV(t *testing.T) {
	// (P_r A P_c^T)(P_c x) == P_r (A x)
	r := rand.New(rand.NewSource(3))
	m := randomCSR(r, 12, 9, 60)
	rowPerm := r.Perm(m.Rows)
	colPerm := r.Perm(m.Cols)
	pm := m.Permute(rowPerm, colPerm)

	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = r.Float64()
	}
	px := make([]float64, m.Cols)
	for j := range x {
		px[colPerm[j]] = x[j]
	}
	y := make([]float64, m.Rows)
	m.MulVec(x, y)
	py := make([]float64, m.Rows)
	pm.MulVec(px, py)
	for i := range y {
		if math.Abs(py[rowPerm[i]]-y[i]) > 1e-12 {
			t.Fatalf("row %d: permuted SpMV mismatch", i)
		}
	}
}

func TestStats(t *testing.T) {
	s := small().ComputeStats()
	if s.NNZ != 6 || s.DmaxRow != 3 || s.DmaxCol != 2 {
		t.Errorf("stats = %+v", s)
	}
	if math.Abs(s.DavgRow-2.0) > 1e-15 {
		t.Errorf("DavgRow = %v, want 2", s.DavgRow)
	}
}

func TestDegrees(t *testing.T) {
	m := small()
	rd := m.RowDegrees()
	if rd[0] != 2 || rd[1] != 1 || rd[2] != 3 {
		t.Errorf("RowDegrees = %v", rd)
	}
	cd := m.ColDegrees()
	if cd[0] != 2 || cd[1] != 1 || cd[2] != 2 || cd[3] != 1 {
		t.Errorf("ColDegrees = %v", cd)
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	m := randomCSR(r, 25, 18, 120)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(got) {
		t.Fatal("MatrixMarket round trip changed matrix")
	}
}

func TestMatrixMarketSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
3 3 3
1 1 2.0
2 1 5.0
3 3 1.0
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 4 { // off-diagonal mirrored
		t.Fatalf("NNZ = %d, want 4", m.NNZ())
	}
	if m.RowCols(0)[1] != 1 {
		t.Errorf("mirror entry (0,1) missing: row0 = %v", m.RowCols(0))
	}
}

func TestMatrixMarketPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
2 2 2
1 1
2 2
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 2 || m.Val[0] != 1 {
		t.Fatalf("pattern parse wrong: nnz=%d val=%v", m.NNZ(), m.Val)
	}
}

func TestMatrixMarketErrors(t *testing.T) {
	cases := []string{
		"",
		"%%MatrixMarket matrix array real general\n2 2\n",
		"%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 1\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n", // truncated
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1.0\n", // out of range
	}
	for i, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestPropertyCOOCSRRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomCSR(r, 1+r.Intn(40), 1+r.Intn(40), r.Intn(300))
		back := m.ToCOO().ToCSR()
		return m.Equal(back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCSRInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomCSR(r, 1+r.Intn(40), 1+r.Intn(40), r.Intn(300))
		if m.RowPtr[0] != 0 || m.RowPtr[m.Rows] != m.NNZ() {
			return false
		}
		for i := 0; i < m.Rows; i++ {
			cols := m.RowCols(i)
			for k := 1; k < len(cols); k++ {
				if cols[k] <= cols[k-1] {
					return false // unsorted or duplicate
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestClone(t *testing.T) {
	m := small()
	c := m.Clone()
	c.Val[0] = 99
	if m.Val[0] == 99 {
		t.Fatal("Clone shares value storage")
	}
}
