package sparse

import "math"

// Diagonal returns the main-diagonal values (zero where absent). Defined
// for rectangular matrices over the leading min(Rows, Cols) entries.
func (m *CSR) Diagonal() []float64 {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			if m.ColIdx[p] == i {
				d[i] = m.Val[p]
				break
			}
		}
	}
	return d
}

// ScaleRows multiplies row i by s[i] in place.
func (m *CSR) ScaleRows(s []float64) {
	if len(s) != m.Rows {
		panic("sparse: ScaleRows length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			m.Val[p] *= s[i]
		}
	}
}

// ScaleCols multiplies column j by s[j] in place.
func (m *CSR) ScaleCols(s []float64) {
	if len(s) != m.Cols {
		panic("sparse: ScaleCols length mismatch")
	}
	for p, j := range m.ColIdx {
		m.Val[p] *= s[j]
	}
}

// NormInf returns the infinity norm: the maximum absolute row sum.
func (m *CSR) NormInf() float64 {
	var norm float64
	for i := 0; i < m.Rows; i++ {
		var s float64
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			s += math.Abs(m.Val[p])
		}
		if s > norm {
			norm = s
		}
	}
	return norm
}

// Submatrix extracts the block with the given (sorted or unsorted, unique)
// row and column index sets, compacted to a len(rows)×len(cols) matrix.
func (m *CSR) Submatrix(rows, cols []int) *CSR {
	colMap := make(map[int]int, len(cols))
	for lj, j := range cols {
		colMap[j] = lj
	}
	c := NewCOO(len(rows), len(cols))
	for li, i := range rows {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			if lj, ok := colMap[m.ColIdx[p]]; ok {
				c.Add(li, lj, m.Val[p])
			}
		}
	}
	return c.ToCSR()
}

// AddDiagonal returns a copy of m with shift added to every diagonal entry
// (entries are created where missing) — the standard spectral shift used
// to make systems definite.
func (m *CSR) AddDiagonal(shift float64) *CSR {
	c := m.ToCOO()
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	for i := 0; i < n; i++ {
		c.Add(i, i, shift)
	}
	return c.ToCSR()
}
