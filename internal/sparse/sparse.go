// Package sparse provides the sparse-matrix substrate used throughout the
// repository: coordinate (COO), compressed sparse row (CSR) and compressed
// sparse column (CSC) storage, conversions, permutations, degree statistics,
// a serial SpMV reference implementation, and Matrix Market I/O.
//
// All index types are int; values are float64. Matrices may be rectangular.
package sparse

import (
	"fmt"
	"sort"
)

// Entry is a single nonzero in coordinate form.
type Entry struct {
	Row, Col int
	Val      float64
}

// COO is a coordinate-format sparse matrix. Entries may be unsorted but must
// be unique (no duplicate (Row,Col) pairs) once Canonicalize has been called.
type COO struct {
	Rows, Cols int
	Entries    []Entry
}

// NewCOO returns an empty COO matrix with the given dimensions.
func NewCOO(rows, cols int) *COO {
	return &COO{Rows: rows, Cols: cols}
}

// Add appends a nonzero. It does not check for duplicates; call
// Canonicalize to sort and merge.
func (c *COO) Add(i, j int, v float64) {
	c.Entries = append(c.Entries, Entry{Row: i, Col: j, Val: v})
}

// NNZ returns the number of stored entries.
func (c *COO) NNZ() int { return len(c.Entries) }

// Canonicalize sorts entries in row-major order and merges duplicates by
// summing their values. Entries with value 0 are kept: structural nonzeros
// matter for partitioning even when numerically zero.
func (c *COO) Canonicalize() {
	if len(c.Entries) == 0 {
		return
	}
	sort.Slice(c.Entries, func(a, b int) bool {
		ea, eb := c.Entries[a], c.Entries[b]
		if ea.Row != eb.Row {
			return ea.Row < eb.Row
		}
		return ea.Col < eb.Col
	})
	out := c.Entries[:1]
	for _, e := range c.Entries[1:] {
		last := &out[len(out)-1]
		if e.Row == last.Row && e.Col == last.Col {
			last.Val += e.Val
		} else {
			out = append(out, e)
		}
	}
	c.Entries = out
}

// Validate checks that all entries lie within the matrix dimensions.
func (c *COO) Validate() error {
	for _, e := range c.Entries {
		if e.Row < 0 || e.Row >= c.Rows || e.Col < 0 || e.Col >= c.Cols {
			return fmt.Errorf("sparse: entry (%d,%d) outside %dx%d", e.Row, e.Col, c.Rows, c.Cols)
		}
	}
	return nil
}

// CSR is a compressed sparse row matrix. Row i's nonzeros occupy
// ColIdx[RowPtr[i]:RowPtr[i+1]] and Val likewise; column indices within a
// row are sorted ascending.
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64
}

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.ColIdx) }

// RowNNZ returns the number of nonzeros in row i.
func (m *CSR) RowNNZ(i int) int { return m.RowPtr[i+1] - m.RowPtr[i] }

// RowCols returns the column indices of row i (a view, do not modify).
func (m *CSR) RowCols(i int) []int { return m.ColIdx[m.RowPtr[i]:m.RowPtr[i+1]] }

// RowVals returns the values of row i (a view, do not modify).
func (m *CSR) RowVals(i int) []float64 { return m.Val[m.RowPtr[i]:m.RowPtr[i+1]] }

// ToCSR converts a COO matrix to CSR. The receiver is canonicalized first.
func (c *COO) ToCSR() *CSR {
	c.Canonicalize()
	m := &CSR{
		Rows:   c.Rows,
		Cols:   c.Cols,
		RowPtr: make([]int, c.Rows+1),
		ColIdx: make([]int, len(c.Entries)),
		Val:    make([]float64, len(c.Entries)),
	}
	for _, e := range c.Entries {
		m.RowPtr[e.Row+1]++
	}
	for i := 0; i < c.Rows; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	pos := make([]int, c.Rows)
	copy(pos, m.RowPtr[:c.Rows])
	for _, e := range c.Entries {
		p := pos[e.Row]
		m.ColIdx[p] = e.Col
		m.Val[p] = e.Val
		pos[e.Row]++
	}
	return m
}

// ToCOO converts a CSR matrix back to coordinate form.
func (m *CSR) ToCOO() *COO {
	c := NewCOO(m.Rows, m.Cols)
	c.Entries = make([]Entry, 0, m.NNZ())
	for i := 0; i < m.Rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			c.Entries = append(c.Entries, Entry{Row: i, Col: m.ColIdx[p], Val: m.Val[p]})
		}
	}
	return c
}

// CSC is a compressed sparse column matrix. Column j's nonzeros occupy
// RowIdx[ColPtr[j]:ColPtr[j+1]]; row indices within a column are sorted.
type CSC struct {
	Rows, Cols int
	ColPtr     []int
	RowIdx     []int
	Val        []float64
}

// NNZ returns the number of stored nonzeros.
func (m *CSC) NNZ() int { return len(m.RowIdx) }

// ColNNZ returns the number of nonzeros in column j.
func (m *CSC) ColNNZ(j int) int { return m.ColPtr[j+1] - m.ColPtr[j] }

// ColRows returns the row indices of column j (a view, do not modify).
func (m *CSC) ColRows(j int) []int { return m.RowIdx[m.ColPtr[j]:m.ColPtr[j+1]] }

// ToCSC converts a CSR matrix to CSC.
func (m *CSR) ToCSC() *CSC {
	t := &CSC{
		Rows:   m.Rows,
		Cols:   m.Cols,
		ColPtr: make([]int, m.Cols+1),
		RowIdx: make([]int, m.NNZ()),
		Val:    make([]float64, m.NNZ()),
	}
	for _, j := range m.ColIdx {
		t.ColPtr[j+1]++
	}
	for j := 0; j < m.Cols; j++ {
		t.ColPtr[j+1] += t.ColPtr[j]
	}
	pos := make([]int, m.Cols)
	copy(pos, t.ColPtr[:m.Cols])
	for i := 0; i < m.Rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			j := m.ColIdx[p]
			q := pos[j]
			t.RowIdx[q] = i
			t.Val[q] = m.Val[p]
			pos[j]++
		}
	}
	return t
}

// Transpose returns the CSR form of the transpose of m.
func (m *CSR) Transpose() *CSR {
	t := m.ToCSC()
	return &CSR{Rows: m.Cols, Cols: m.Rows, RowPtr: t.ColPtr, ColIdx: t.RowIdx, Val: t.Val}
}

// Clone returns a deep copy of m.
func (m *CSR) Clone() *CSR {
	out := &CSR{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: append([]int(nil), m.RowPtr...),
		ColIdx: append([]int(nil), m.ColIdx...),
		Val:    append([]float64(nil), m.Val...),
	}
	return out
}

// Permute returns P_r * A * P_c^T where rowPerm[i] is the new index of old
// row i and colPerm[j] the new index of old column j. Either permutation
// may be nil to mean identity.
func (m *CSR) Permute(rowPerm, colPerm []int) *CSR {
	c := NewCOO(m.Rows, m.Cols)
	c.Entries = make([]Entry, 0, m.NNZ())
	for i := 0; i < m.Rows; i++ {
		ni := i
		if rowPerm != nil {
			ni = rowPerm[i]
		}
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			nj := m.ColIdx[p]
			if colPerm != nil {
				nj = colPerm[nj]
			}
			c.Entries = append(c.Entries, Entry{Row: ni, Col: nj, Val: m.Val[p]})
		}
	}
	return c.ToCSR()
}

// MulVec computes y = A*x serially. It is the reference implementation all
// distributed executors are verified against. y must have length Rows and
// x length Cols.
func (m *CSR) MulVec(x, y []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("sparse: MulVec dimension mismatch: A is %dx%d, len(x)=%d, len(y)=%d",
			m.Rows, m.Cols, len(x), len(y)))
	}
	for i := 0; i < m.Rows; i++ {
		var s float64
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			s += m.Val[p] * x[m.ColIdx[p]]
		}
		y[i] = s
	}
}

// Stats summarizes the degree distribution of a matrix, mirroring the
// columns of Tables I and IV in the paper.
type Stats struct {
	Rows, Cols, NNZ  int
	DavgRow, DavgCol float64
	DmaxRow, DmaxCol int
}

// ComputeStats returns row/column degree statistics for m.
func (m *CSR) ComputeStats() Stats {
	s := Stats{Rows: m.Rows, Cols: m.Cols, NNZ: m.NNZ()}
	for i := 0; i < m.Rows; i++ {
		if d := m.RowNNZ(i); d > s.DmaxRow {
			s.DmaxRow = d
		}
	}
	colDeg := make([]int, m.Cols)
	for _, j := range m.ColIdx {
		colDeg[j]++
	}
	for _, d := range colDeg {
		if d > s.DmaxCol {
			s.DmaxCol = d
		}
	}
	if m.Rows > 0 {
		s.DavgRow = float64(s.NNZ) / float64(m.Rows)
	}
	if m.Cols > 0 {
		s.DavgCol = float64(s.NNZ) / float64(m.Cols)
	}
	return s
}

// RowDegrees returns the number of nonzeros in each row.
func (m *CSR) RowDegrees() []int {
	d := make([]int, m.Rows)
	for i := range d {
		d[i] = m.RowNNZ(i)
	}
	return d
}

// ColDegrees returns the number of nonzeros in each column.
func (m *CSR) ColDegrees() []int {
	d := make([]int, m.Cols)
	for _, j := range m.ColIdx {
		d[j]++
	}
	return d
}

// Equal reports whether two CSR matrices have identical structure and values.
func (m *CSR) Equal(o *CSR) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols || m.NNZ() != o.NNZ() {
		return false
	}
	for i := range m.RowPtr {
		if m.RowPtr[i] != o.RowPtr[i] {
			return false
		}
	}
	for p := range m.ColIdx {
		if m.ColIdx[p] != o.ColIdx[p] || m.Val[p] != o.Val[p] {
			return false
		}
	}
	return true
}
