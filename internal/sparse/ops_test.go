package sparse

import (
	"math"
	"math/rand"
	"testing"
)

func TestDiagonal(t *testing.T) {
	m := small() // diag entries: (0,0)=1, (1,1)=3, (2,2)=5
	d := m.Diagonal()
	want := []float64{1, 3, 5}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("d[%d] = %v, want %v", i, d[i], want[i])
		}
	}
}

func TestDiagonalMissingEntries(t *testing.T) {
	c := NewCOO(3, 3)
	c.Add(0, 1, 9)
	c.Add(2, 2, 4)
	d := c.ToCSR().Diagonal()
	if d[0] != 0 || d[1] != 0 || d[2] != 4 {
		t.Errorf("d = %v", d)
	}
}

func TestScaleRowsAndCols(t *testing.T) {
	m := small().Clone()
	m.ScaleRows([]float64{2, 3, 1})
	if m.Val[0] != 2 { // (0,0): 1*2
		t.Errorf("row scale wrong: %v", m.Val[0])
	}
	m.ScaleCols([]float64{1, 1, 10, 1})
	// (0,2) was 2, scaled by row 2x then col 10x -> 40.
	if m.Val[1] != 40 {
		t.Errorf("col scale wrong: %v", m.Val[1])
	}
}

func TestScalePanics(t *testing.T) {
	m := small()
	for _, f := range []func(){
		func() { m.ScaleRows(make([]float64, 1)) },
		func() { m.ScaleCols(make([]float64, 1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic on length mismatch")
				}
			}()
			f()
		}()
	}
}

func TestNormInf(t *testing.T) {
	m := small()
	// Row sums of |v|: 3, 3, 15.
	if got := m.NormInf(); got != 15 {
		t.Errorf("NormInf = %v, want 15", got)
	}
}

func TestSubmatrix(t *testing.T) {
	m := small()
	// Rows {0,2}, cols {0,2,3}:
	// [1 2 0]
	// [4 5 6]
	s := m.Submatrix([]int{0, 2}, []int{0, 2, 3})
	if s.Rows != 2 || s.Cols != 3 || s.NNZ() != 5 {
		t.Fatalf("submatrix %dx%d nnz %d", s.Rows, s.Cols, s.NNZ())
	}
	x := []float64{1, 1, 1}
	y := make([]float64, 2)
	s.MulVec(x, y)
	if y[0] != 3 || y[1] != 15 {
		t.Errorf("y = %v", y)
	}
}

func TestAddDiagonal(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	m := randomCSR(r, 20, 20, 60)
	shifted := m.AddDiagonal(5)
	d0 := m.Diagonal()
	d1 := shifted.Diagonal()
	for i := range d0 {
		if math.Abs(d1[i]-d0[i]-5) > 1e-12 {
			t.Fatalf("diag[%d]: %v -> %v", i, d0[i], d1[i])
		}
	}
	if shifted.NNZ() < m.NNZ() {
		t.Error("AddDiagonal lost entries")
	}
	// Original untouched.
	for i := range d0 {
		if m.Diagonal()[i] != d0[i] {
			t.Error("AddDiagonal mutated the receiver")
		}
	}
}
