package sparse

import (
	"math/rand"
	"testing"
)

func benchMatrix(n, nnz int) *CSR {
	r := rand.New(rand.NewSource(1))
	c := NewCOO(n, n)
	for t := 0; t < nnz; t++ {
		c.Add(r.Intn(n), r.Intn(n), r.Float64())
	}
	return c.ToCSR()
}

func BenchmarkMulVec(b *testing.B) {
	m := benchMatrix(20000, 400000)
	x := make([]float64, m.Cols)
	y := make([]float64, m.Rows)
	for i := range x {
		x[i] = float64(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(x, y)
	}
	b.SetBytes(int64(m.NNZ() * 12)) // 8B value + 4B index per nonzero
}

func BenchmarkToCSC(b *testing.B) {
	m := benchMatrix(20000, 400000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.ToCSC()
	}
}

func BenchmarkTranspose(b *testing.B) {
	m := benchMatrix(20000, 400000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Transpose()
	}
}

func BenchmarkCOOToCSR(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	entries := make([]Entry, 400000)
	for i := range entries {
		entries[i] = Entry{Row: r.Intn(20000), Col: r.Intn(20000), Val: 1}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := &COO{Rows: 20000, Cols: 20000, Entries: append([]Entry(nil), entries...)}
		_ = c.ToCSR()
	}
}
