// Package vecpart derives input/output vector partitions from row or
// nonzero partitions. The s2D method takes a vector partition as input
// (Problem 1 in the paper); these helpers produce the one induced by a 1D
// rowwise partition, which is the choice the paper uses (§IV: "1D rowwise
// partitioning is the most relevant one to obtain a vector partition").
package vecpart

import "repro/internal/sparse"

// FromRowParts returns (xpart, ypart) induced by a K-way rowwise partition.
// The output vector follows the rows. For square matrices the input vector
// is partitioned symmetrically (x_j with row j); for rectangular matrices
// x_j goes to the part owning the most nonzeros of column j (ties to the
// lowest part; empty columns are dealt round-robin).
func FromRowParts(a *sparse.CSR, rowParts []int, k int) (xpart, ypart []int) {
	ypart = append([]int(nil), rowParts...)
	if a.Rows == a.Cols {
		xpart = append([]int(nil), rowParts...)
		return xpart, ypart
	}
	xpart = ColMajority(a, rowParts, k)
	return xpart, ypart
}

// ColMajority assigns each column to the part that owns the most nonzeros
// in it under the given rowwise partition. Empty columns are distributed
// round-robin.
func ColMajority(a *sparse.CSR, rowParts []int, k int) []int {
	xpart := make([]int, a.Cols)
	counts := make(map[int]int, 8)
	csc := a.ToCSC()
	for j := 0; j < a.Cols; j++ {
		clear(counts)
		best, bestCount := -1, 0
		for _, i := range csc.ColRows(j) {
			p := rowParts[i]
			counts[p]++
			if counts[p] > bestCount || (counts[p] == bestCount && p < best) {
				best, bestCount = p, counts[p]
			}
		}
		if best < 0 {
			best = j % k
		}
		xpart[j] = best
	}
	return xpart
}
