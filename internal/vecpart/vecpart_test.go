package vecpart

import (
	"testing"

	"repro/internal/sparse"
)

func rect() *sparse.CSR {
	// 4x3:
	// [1 1 0]
	// [0 1 0]
	// [0 1 1]
	// [0 0 1]
	c := sparse.NewCOO(4, 3)
	c.Add(0, 0, 1)
	c.Add(0, 1, 1)
	c.Add(1, 1, 1)
	c.Add(2, 1, 1)
	c.Add(2, 2, 1)
	c.Add(3, 2, 1)
	return c.ToCSR()
}

func TestFromRowPartsSquareIsSymmetric(t *testing.T) {
	c := sparse.NewCOO(4, 4)
	for i := 0; i < 4; i++ {
		c.Add(i, i, 1)
	}
	a := c.ToCSR()
	rows := []int{0, 1, 0, 1}
	xp, yp := FromRowParts(a, rows, 2)
	for i := range rows {
		if xp[i] != rows[i] || yp[i] != rows[i] {
			t.Fatalf("symmetric partition violated at %d", i)
		}
	}
}

func TestFromRowPartsRectangularMajority(t *testing.T) {
	a := rect()
	rows := []int{0, 0, 1, 1}
	xp, yp := FromRowParts(a, rows, 2)
	if len(xp) != 3 || len(yp) != 4 {
		t.Fatalf("lengths %d/%d", len(xp), len(yp))
	}
	// Col 0: only row 0 (part 0). Col 2: rows 2,3 (part 1).
	if xp[0] != 0 {
		t.Errorf("xp[0] = %d, want 0", xp[0])
	}
	if xp[2] != 1 {
		t.Errorf("xp[2] = %d, want 1", xp[2])
	}
	// Col 1: rows 0,1 (part 0) vs row 2 (part 1): majority part 0.
	if xp[1] != 0 {
		t.Errorf("xp[1] = %d, want 0 (majority)", xp[1])
	}
}

func TestColMajorityEmptyColumns(t *testing.T) {
	c := sparse.NewCOO(2, 4)
	c.Add(0, 0, 1)
	c.Add(1, 0, 1)
	a := c.ToCSR()
	xp := ColMajority(a, []int{0, 1}, 2)
	for j, p := range xp {
		if p < 0 || p >= 2 {
			t.Fatalf("xp[%d] = %d out of range", j, p)
		}
	}
}

func TestFromRowPartsDoesNotAliasInput(t *testing.T) {
	c := sparse.NewCOO(3, 3)
	c.Add(0, 0, 1)
	c.Add(1, 1, 1)
	c.Add(2, 2, 1)
	a := c.ToCSR()
	rows := []int{0, 1, 2}
	xp, yp := FromRowParts(a, rows, 3)
	rows[0] = 2
	if xp[0] != 0 || yp[0] != 0 {
		t.Fatal("FromRowParts aliases the input slice")
	}
}
