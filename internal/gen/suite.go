package gen

import (
	"math"
	"math/rand"

	"repro/internal/sparse"
)

// Spec describes one synthetic stand-in for a paper test matrix. PaperN,
// PaperNNZ, PaperDavg and PaperDmax are the published properties (Tables I
// and IV); Generate builds a matrix with the same structure class whose
// statistics approach those targets at scale 1.0 and shrink proportionally
// at smaller scales (d_max keeps its ratio to n, which is what drives the
// paper's dense-row findings).
type Spec struct {
	Name      string
	App       string // application area, as listed in the paper
	PaperN    int
	PaperNNZ  int
	PaperDavg float64
	PaperDmax int
	build     func(scale float64, seed int64) *sparse.CSR
}

// Generate builds the matrix at the given scale (1.0 = paper size) with a
// deterministic seed. Scale values in (0,1] shrink n and nnz
// proportionally.
func (s Spec) Generate(scale float64, seed int64) *sparse.CSR {
	if scale <= 0 || scale > 1 {
		panic("gen: scale must be in (0,1]")
	}
	return s.build(scale, seed)
}

func scaled(v int, scale float64, floor int) int {
	n := int(math.Round(float64(v) * scale))
	if n < floor {
		n = floor
	}
	return n
}

// femSpec models the paper's structural-engineering matrices as 2D-mesh
// finite-element matrices with dofs degrees of freedom per node (giving
// d_avg ≈ 7·dofs), optionally with planted dense rows. The 2D geometry
// matters: it is what lets Cartesian checkerboard partitions balance
// their mesh cells, as they do on the paper's 3D-mesh matrices.
func femSpec(name, app string, n, nnz int, davg float64, dmax int,
	dofs, denseRows, denseDeg int) Spec {
	return Spec{
		Name: name, App: app, PaperN: n, PaperNNZ: nnz, PaperDavg: davg, PaperDmax: dmax,
		build: func(scale float64, seed int64) *sparse.CSR {
			nodes := scaled(n, scale, 128) / dofs
			if nodes < 16 {
				nodes = 16
			}
			nx := intSqrt(2 * nodes)
			if nx < 2 {
				nx = 2
			}
			ny := nodes / nx
			if ny < 2 {
				ny = 2
			}
			m := FEMBlocks(nx, ny, dofs, seed)
			if denseRows > 0 {
				sn := m.Rows
				dd := scaled(denseDeg, scale, 8)
				// Dense rows must stay clearly denser than the stencil.
				if lo := 40 * dofs; dd < lo {
					dd = lo
				}
				if dd > sn-1 {
					dd = sn - 1
				}
				c := m.ToCOO()
				r := rand.New(rand.NewSource(seed + 7))
				plantDenseRows(c, r, denseRows, dd, true)
				m = c.ToCSR()
			}
			return m
		},
	}
}

func intSqrt(x int) int {
	r := 1
	for r*r < x {
		r++
	}
	return r
}

func plSpec(name, app string, n, nnz int, davg float64, dmax int,
	beta float64, denseRows int, symmetric bool, locality float64) Spec {
	return Spec{
		Name: name, App: app, PaperN: n, PaperNNZ: nnz, PaperDavg: davg, PaperDmax: dmax,
		build: func(scale float64, seed int64) *sparse.CSR {
			sn := scaled(n, scale, 64)
			dm := scaled(dmax, scale, 8)
			// d_max may not drop below ~2×d_avg, or the degree cap would
			// make the published average degree unreachable at small scales.
			if lo := int(2 * davg); dm < lo {
				dm = lo
			}
			if dm > sn {
				dm = sn
			}
			return PowerLaw(PowerLawConfig{
				Rows: sn, Cols: sn,
				NNZ:       scaled(nnz, scale, 256),
				Beta:      beta,
				DenseRows: denseRows,
				DenseMax:  dm,
				Symmetric: symmetric,
				Locality:  locality,
			}, seed)
		},
	}
}

func rmatSpec(name, app string, logN, nnz, dmax int, davg float64) Spec {
	n := 1 << logN
	return Spec{
		Name: name, App: app, PaperN: n, PaperNNZ: nnz, PaperDavg: davg, PaperDmax: dmax,
		build: func(scale float64, seed int64) *sparse.CSR {
			lg := logN
			f := scale
			for f < 0.75 && lg > 6 {
				lg--
				f *= 2
			}
			// Oversample ~15% to compensate for duplicate edges.
			edges := int(float64(nnz) * scale * 0.575)
			return RMAT(RMATConfig{
				Scale: lg, Edges: edges,
				A: 0.57, B: 0.19, C: 0.19, D: 0.05,
				Undirected: true,
			}, seed)
		},
	}
}

// SetA returns the eight general matrices of Table I, in the paper's order.
func SetA() []Spec {
	return []Spec{
		femSpec("crystk02", "materials problem", 13965, 968583, 69.4, 81, 10, 0, 0),
		femSpec("turon_m", "structural engineering", 189924, 1690876, 8.9, 11, 1, 0, 0),
		femSpec("trdheim", "structural engineering", 22098, 1935324, 87.6, 150, 12, 0, 0),
		plSpec("c-big", "non-linear optimization", 345241, 2340859, 6.8, 19578, 0.45, 3, true, 0.90),
		plSpec("ASIC_680k", "circuit simulation", 682862, 2638997, 3.9, 388488, 0.40, 2, true, 0.995),
		femSpec("3dtube", "structural engineering", 45330, 3213618, 70.9, 2364, 10, 4, 2300),
		femSpec("pkustk12", "structural engineering", 94653, 7512317, 79.4, 4146, 11, 6, 4100),
		plSpec("pattern1", "optimization problem", 19242, 9323432, 484.5, 6028, 0.25, 4, false, 0.50),
	}
}

// SetB returns the eight dense-row matrices of Table IV, in the paper's
// order.
func SetB() []Spec {
	return []Spec{
		plSpec("boyd2", "optimization", 466316, 1500397, 3.2, 93263, 0.40, 2, true, 0.995),
		plSpec("lp1", "optimization", 534388, 1643420, 3.1, 249644, 0.40, 2, true, 0.995),
		plSpec("c-big", "non-linear opt.", 345241, 2340859, 6.8, 19579, 0.45, 3, true, 0.90),
		plSpec("ASIC_680k", "optimization", 682862, 2638997, 3.9, 388489, 0.40, 2, true, 0.995),
		plSpec("ins2", "circuit sim.", 309412, 2751484, 8.9, 309413, 0.45, 1, true, 0.995),
		plSpec("com-Youtube", "Youtube social", 1157827, 5975248, 5.2, 28755, 0.75, 1, true, 0),
		plSpec("rajat30", "circuit sim.", 643994, 6175244, 9.6, 454747, 0.45, 2, true, 0.995),
		rmatSpec("rmat_20", "Graph500 ben.", 20, 8174570, 23716, 7.8),
	}
}

// ByName returns the spec with the given name, searching SetA then SetB.
func ByName(name string) (Spec, bool) {
	for _, s := range SetA() {
		if s.Name == name {
			return s, true
		}
	}
	for _, s := range SetB() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}
