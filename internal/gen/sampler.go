// Package gen provides deterministic synthetic sparse-matrix generators that
// stand in for the University of Florida and SNAP matrices used in the
// paper's evaluation (the module is offline, so the real collections are
// unavailable). Each generator is matched to the published n, nnz, d_avg and
// d_max of its target matrix and to its structure class: FEM-like banded
// matrices, power-law matrices with planted dense rows, and R-MAT graphs.
package gen

import (
	"math"
	"math/rand"
	"sort"
)

// discreteSampler draws indices with probability proportional to a fixed
// weight vector, using inverse-CDF binary search.
type discreteSampler struct {
	cum []float64 // cumulative weights, cum[len-1] == total
}

func newDiscreteSampler(weights []float64) *discreteSampler {
	cum := make([]float64, len(weights))
	var s float64
	for i, w := range weights {
		s += w
		cum[i] = s
	}
	return &discreteSampler{cum: cum}
}

func (d *discreteSampler) sample(r *rand.Rand) int {
	total := d.cum[len(d.cum)-1]
	u := r.Float64() * total
	return sort.SearchFloat64s(d.cum, u)
}

// powerLawWeights returns n weights w_rank ∝ (rank+1)^(-beta), assigned to
// positions via the permutation perm so that heavy items are scattered.
func powerLawWeights(n int, beta float64, perm []int) []float64 {
	w := make([]float64, n)
	for rank := 0; rank < n; rank++ {
		w[perm[rank]] = math.Pow(float64(rank+1), -beta)
	}
	return w
}

// scaleDegreesToSum proportionally rescales degrees so they sum to target,
// clamping each to [minDeg, maxDeg]. The result may miss the target by a
// small amount due to rounding and clamping.
func scaleDegreesToSum(deg []int, target, minDeg, maxDeg int) []int {
	var sum int
	for _, d := range deg {
		sum += d
	}
	if sum == 0 {
		sum = 1
	}
	f := float64(target) / float64(sum)
	out := make([]int, len(deg))
	for i, d := range deg {
		v := int(math.Round(float64(d) * f))
		if v < minDeg {
			v = minDeg
		}
		if v > maxDeg {
			v = maxDeg
		}
		out[i] = v
	}
	return out
}
