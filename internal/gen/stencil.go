package gen

import (
	"math/rand"

	"repro/internal/sparse"
)

// Laplace2D returns the 5-point (or 9-point) finite-difference Laplacian
// on an nx×ny grid — the canonical FEM-like SPD matrix. Row i corresponds
// to grid point (i%nx, i/nx).
func Laplace2D(nx, ny int, ninePoint bool) *sparse.CSR {
	n := nx * ny
	c := sparse.NewCOO(n, n)
	id := func(x, y int) int { return y*nx + x }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := id(x, y)
			diag := 4.0
			add := func(dx, dy int, v float64) {
				xx, yy := x+dx, y+dy
				if xx >= 0 && xx < nx && yy >= 0 && yy < ny {
					c.Add(i, id(xx, yy), v)
				}
			}
			add(-1, 0, -1)
			add(1, 0, -1)
			add(0, -1, -1)
			add(0, 1, -1)
			if ninePoint {
				diag = 8.0 / 3
				add(-1, -1, -1.0/3)
				add(1, -1, -1.0/3)
				add(-1, 1, -1.0/3)
				add(1, 1, -1.0/3)
			}
			c.Add(i, i, diag)
		}
	}
	return c.ToCSR()
}

// Laplace3D returns the 7-point Laplacian on an nx×ny×nz grid.
func Laplace3D(nx, ny, nz int) *sparse.CSR {
	n := nx * ny * nz
	c := sparse.NewCOO(n, n)
	id := func(x, y, z int) int { return (z*ny+y)*nx + x }
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				i := id(x, y, z)
				c.Add(i, i, 6)
				add := func(dx, dy, dz int) {
					xx, yy, zz := x+dx, y+dy, z+dz
					if xx >= 0 && xx < nx && yy >= 0 && yy < ny && zz >= 0 && zz < nz {
						c.Add(i, id(xx, yy, zz), -1)
					}
				}
				add(-1, 0, 0)
				add(1, 0, 0)
				add(0, -1, 0)
				add(0, 1, 0)
				add(0, 0, -1)
				add(0, 0, 1)
			}
		}
	}
	return c.ToCSR()
}

// FEMBlocks emulates a finite-element matrix with b×b dense node blocks
// (multiple degrees of freedom per mesh node, as in the paper's structural
// matrices whose d_avg ≈ 70–90): a 2D mesh of nodes, each adjacent node
// pair coupling all of their DOF. The result is symmetric.
func FEMBlocks(nx, ny, dofs int, seed int64) *sparse.CSR {
	r := rand.New(rand.NewSource(seed))
	nodes := nx * ny
	n := nodes * dofs
	c := sparse.NewCOO(n, n)
	id := func(x, y int) int { return y*nx + x }
	couple := func(a, b int) {
		for p := 0; p < dofs; p++ {
			for q := 0; q < dofs; q++ {
				v := -1 + r.Float64()*0.2
				if a == b && p == q {
					v = 8 + r.Float64()
				}
				c.Add(a*dofs+p, b*dofs+q, v)
				if a != b {
					c.Add(b*dofs+q, a*dofs+p, v)
				}
			}
		}
	}
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := id(x, y)
			couple(i, i)
			if x+1 < nx {
				couple(i, id(x+1, y))
			}
			if y+1 < ny {
				couple(i, id(x, y+1))
			}
			if x+1 < nx && y+1 < ny {
				couple(i, id(x+1, y+1))
			}
		}
	}
	return c.ToCSR()
}
