package gen

import (
	"math"
	"math/rand"

	"repro/internal/sparse"
)

// PowerLawConfig configures a scale-free matrix generator used to model the
// optimization/circuit/social matrices (c-big, ASIC_680k, boyd2, lp1, ins2,
// rajat30, com-Youtube). Row degrees follow a power law capped at DenseMax;
// a few rows are planted at exactly DenseMax to reproduce the published
// d_max. Column endpoints are drawn from a power-law popularity so columns
// are skewed too, as in circuit and LP matrices.
type PowerLawConfig struct {
	Rows, Cols int
	NNZ        int     // target nonzero count (approximate)
	Beta       float64 // degree-weight exponent, typically 0.6–1.2
	DenseRows  int     // rows planted at DenseMax degree
	DenseMax   int     // maximum row degree (the published d_max)
	Symmetric  bool    // mirror entries (graph-like matrices)
	// Locality is the fraction of background (non-planted) entries placed
	// near the diagonal instead of at power-law-sampled columns.
	// Optimization and circuit matrices (boyd2, lp1, ins2, ASIC_680k,
	// rajat30) are mostly local plus a few dense rows — that structure is
	// what lets s2D nearly eliminate their communication volume. Social
	// networks (com-Youtube) have no locality.
	Locality float64
	// LocalBand is the half-bandwidth for local entries; 0 means
	// 3·(NNZ/Rows)+2.
	LocalBand int
}

// PowerLaw generates a scale-free sparse matrix per cfg.
func PowerLaw(cfg PowerLawConfig, seed int64) *sparse.CSR {
	r := rand.New(rand.NewSource(seed))
	m, n := cfg.Rows, cfg.Cols

	// Power-law row degrees scattered over row indices.
	rowPerm := r.Perm(m)
	raw := make([]int, m)
	for rank := 0; rank < m; rank++ {
		// Degree ∝ (rank+1)^(-beta), scaled later to hit NNZ.
		raw[rowPerm[rank]] = 1 + int(1e6/math.Pow(float64(rank+1), cfg.Beta))
	}
	budget := cfg.NNZ
	if cfg.Symmetric {
		budget = cfg.NNZ / 2
	}
	planted := cfg.DenseRows * cfg.DenseMax
	if planted > budget {
		planted = budget
	}
	deg := scaleDegreesToSum(raw, budget-planted, 1, maxInt(1, cfg.DenseMax))

	// Column popularity sampler, also power-law.
	colPerm := r.Perm(n)
	colW := powerLawWeights(n, cfg.Beta, colPerm)
	cs := newDiscreteSampler(colW)

	band := cfg.LocalBand
	if band <= 0 {
		band = 3*(cfg.NNZ/maxInt(m, 1)) + 2
	}
	if band > n/2 {
		band = n / 2
	}
	if band < 1 {
		band = 1
	}
	c := sparse.NewCOO(m, n)
	c.Entries = make([]sparse.Entry, 0, cfg.NNZ+m)
	for i := 0; i < m; i++ {
		for t := 0; t < deg[i]; t++ {
			var j int
			if r.Float64() < cfg.Locality {
				j = ((i+r.Intn(2*band+1)-band)%n + n) % n
			} else {
				j = cs.sample(r)
			}
			c.Add(i, j, 1+r.Float64())
			if cfg.Symmetric && i != j && j < m && i < n {
				c.Add(j, i, 1+r.Float64())
			}
		}
	}
	plantDenseRows(c, r, cfg.DenseRows, cfg.DenseMax, cfg.Symmetric)
	return c.ToCSR()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
