package gen

import (
	"math"
	"testing"
)

func TestLaplace2DStructure(t *testing.T) {
	a := Laplace2D(4, 3, false)
	if a.Rows != 12 || a.Cols != 12 {
		t.Fatalf("dims %dx%d", a.Rows, a.Cols)
	}
	// Interior point (1,1) = row 5: 5 entries.
	if a.RowNNZ(5) != 5 {
		t.Errorf("interior row nnz = %d, want 5", a.RowNNZ(5))
	}
	// Corner (0,0): 3 entries.
	if a.RowNNZ(0) != 3 {
		t.Errorf("corner row nnz = %d, want 3", a.RowNNZ(0))
	}
	if !a.Equal(a.Transpose()) {
		t.Error("Laplacian not symmetric")
	}
	// Row sums of interior rows are 0 (discrete Laplacian).
	sum := 0.0
	for _, v := range a.RowVals(5) {
		sum += v
	}
	if math.Abs(sum) > 1e-12 {
		t.Errorf("interior row sum = %v, want 0", sum)
	}
}

func TestLaplace2DNinePoint(t *testing.T) {
	a := Laplace2D(5, 5, true)
	// Interior point row 12: 9 entries.
	if a.RowNNZ(12) != 9 {
		t.Errorf("nine-point interior nnz = %d", a.RowNNZ(12))
	}
	if !a.Equal(a.Transpose()) {
		t.Error("nine-point not symmetric")
	}
}

func TestLaplace3DStructure(t *testing.T) {
	a := Laplace3D(3, 3, 3)
	if a.Rows != 27 {
		t.Fatalf("dims %d", a.Rows)
	}
	// Center point (1,1,1) = row 13: 7 entries.
	if a.RowNNZ(13) != 7 {
		t.Errorf("center row nnz = %d, want 7", a.RowNNZ(13))
	}
	if !a.Equal(a.Transpose()) {
		t.Error("3D Laplacian not symmetric")
	}
}

func TestLaplaceDiagonalDominant(t *testing.T) {
	m := Laplace3D(4, 4, 4)
	for i := 0; i < m.Rows; i++ {
		var diag, off float64
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			if m.ColIdx[p] == i {
				diag = m.Val[p]
			} else {
				off += math.Abs(m.Val[p])
			}
		}
		if diag < off {
			t.Fatalf("row %d not diagonally dominant: %v < %v", i, diag, off)
		}
	}
}

func TestFEMBlocksStructure(t *testing.T) {
	a := FEMBlocks(6, 5, 3, 1)
	if a.Rows != 90 {
		t.Fatalf("dims %d, want 6*5*3", a.Rows)
	}
	mt := a.Transpose()
	// Structural symmetry.
	for i := 0; i < a.Rows; i++ {
		x, y := a.RowCols(i), mt.RowCols(i)
		if len(x) != len(y) {
			t.Fatalf("row %d: structural asymmetry", i)
		}
	}
	// Degrees in the FEM range: interior node couples with up to 6
	// neighbours (right/down/diag pattern symmetrized) x dofs.
	s := a.ComputeStats()
	if s.DavgRow < 9 || s.DavgRow > 24 {
		t.Errorf("davg = %.1f outside FEM block range", s.DavgRow)
	}
	if s.DmaxRow > 24 {
		t.Errorf("dmax = %d too high", s.DmaxRow)
	}
}

func TestFEMBlocksDeterministic(t *testing.T) {
	a := FEMBlocks(4, 4, 2, 9)
	b := FEMBlocks(4, 4, 2, 9)
	if !a.Equal(b) {
		t.Error("FEMBlocks not deterministic")
	}
}
