package gen

import (
	"math/rand"

	"repro/internal/sparse"
)

// BandConfig configures a FEM-like banded matrix generator. Matrices from
// structural engineering (crystk02, trdheim, 3dtube, pkustk12, turon_m)
// have near-regular row degrees produced by element connectivity; we model
// them as symmetric variable-band matrices with an optional handful of
// planted dense rows to reach the published d_max.
type BandConfig struct {
	N            int // matrix dimension
	MinHalfBand  int // per-row half bandwidth drawn uniformly in [Min,Max]
	MaxHalfBand  int
	DenseRows    int // number of planted dense rows (0 for regular FEM)
	DenseDegree  int // nonzeros per planted dense row
	JitterStride int // >1 spreads band neighbours to every k-th index
}

// Band generates a symmetric FEM-like matrix. The diagonal is always
// present; off-diagonals are mirrored so row and column degree profiles
// coincide, as in the paper's structural matrices.
func Band(cfg BandConfig, seed int64) *sparse.CSR {
	if cfg.JitterStride < 1 {
		cfg.JitterStride = 1
	}
	r := rand.New(rand.NewSource(seed))
	n := cfg.N
	c := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 4+r.Float64())
		w := cfg.MinHalfBand
		if cfg.MaxHalfBand > cfg.MinHalfBand {
			w += r.Intn(cfg.MaxHalfBand - cfg.MinHalfBand + 1)
		}
		// Upper off-diagonals only; mirrored below. Stride spreads the
		// band so degree stays the same while the profile widens.
		for d := 1; d <= w; d++ {
			j := i + d*cfg.JitterStride
			if j >= n {
				break
			}
			v := -1 + r.Float64()*0.1
			c.Add(i, j, v)
			c.Add(j, i, v)
		}
	}
	plantDenseRows(c, r, cfg.DenseRows, cfg.DenseDegree, true)
	return c.ToCSR()
}

// plantDenseRows adds denseRows rows with approximately degree nonzeros at
// uniformly random columns (mirrored when symmetric). Rows are chosen
// spread across the index range.
func plantDenseRows(c *sparse.COO, r *rand.Rand, denseRows, degree int, symmetric bool) {
	if denseRows <= 0 || degree <= 0 {
		return
	}
	n := c.Rows
	for k := 0; k < denseRows; k++ {
		row := (k*n)/denseRows + r.Intn(n/denseRows+1)
		if row >= n {
			row = n - 1
		}
		if degree >= n {
			for j := 0; j < n; j++ {
				c.Add(row, j, 0.01)
				if symmetric {
					c.Add(j, row, 0.01)
				}
			}
			continue
		}
		for t := 0; t < degree; t++ {
			j := r.Intn(n)
			c.Add(row, j, 0.01)
			if symmetric {
				c.Add(j, row, 0.01)
			}
		}
	}
}
