package gen

import (
	"math/rand"

	"repro/internal/sparse"
)

// RMATConfig configures an R-MAT recursive graph generator (Chakrabarti,
// Zhan, Faloutsos 2004). The paper's rmat_20 instance uses a=0.57,
// b=c=0.19, d=0.05, scale 20, with edges made undirected.
type RMATConfig struct {
	Scale      int     // n = 2^Scale vertices
	Edges      int     // directed edges sampled before mirroring/dedup
	A, B, C, D float64 // quadrant probabilities, must sum to ~1
	Undirected bool    // add the mirror of every edge
	NoSelf     bool    // drop self loops
}

// RMAT generates an R-MAT adjacency matrix. Duplicate edges are merged
// (values summed to 1 per structural nonzero via overwrite), so the
// resulting nnz is slightly below Edges (×2 if undirected).
func RMAT(cfg RMATConfig, seed int64) *sparse.CSR {
	n := 1 << cfg.Scale
	r := rand.New(rand.NewSource(seed))
	c := sparse.NewCOO(n, n)
	c.Entries = make([]sparse.Entry, 0, cfg.Edges*2)
	for e := 0; e < cfg.Edges; e++ {
		i, j := rmatEdge(r, cfg)
		if cfg.NoSelf && i == j {
			continue
		}
		c.Add(i, j, 1)
		if cfg.Undirected && i != j {
			c.Add(j, i, 1)
		}
	}
	m := c.ToCSR()
	// Structural matrix: merged duplicates collapse to value 1.
	for p := range m.Val {
		m.Val[p] = 1
	}
	return m
}

func rmatEdge(r *rand.Rand, cfg RMATConfig) (int, int) {
	var i, j int
	for bit := cfg.Scale - 1; bit >= 0; bit-- {
		u := r.Float64()
		switch {
		case u < cfg.A:
			// top-left: nothing set
		case u < cfg.A+cfg.B:
			j |= 1 << bit
		case u < cfg.A+cfg.B+cfg.C:
			i |= 1 << bit
		default:
			i |= 1 << bit
			j |= 1 << bit
		}
	}
	return i, j
}
