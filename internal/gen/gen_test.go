package gen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRMATDeterministic(t *testing.T) {
	cfg := RMATConfig{Scale: 8, Edges: 2000, A: 0.57, B: 0.19, C: 0.19, D: 0.05, Undirected: true}
	a := RMAT(cfg, 42)
	b := RMAT(cfg, 42)
	if !a.Equal(b) {
		t.Fatal("same seed produced different matrices")
	}
	c := RMAT(cfg, 43)
	if a.Equal(c) {
		t.Fatal("different seeds produced identical matrices")
	}
}

func TestRMATShape(t *testing.T) {
	cfg := RMATConfig{Scale: 10, Edges: 8000, A: 0.57, B: 0.19, C: 0.19, D: 0.05, Undirected: true}
	m := RMAT(cfg, 1)
	if m.Rows != 1024 || m.Cols != 1024 {
		t.Fatalf("dims = %dx%d", m.Rows, m.Cols)
	}
	// Undirected: structurally symmetric.
	mt := m.Transpose()
	if !m.Equal(mt) {
		t.Fatal("undirected RMAT is not symmetric")
	}
	// Skewed: max degree well above average.
	s := m.ComputeStats()
	if float64(s.DmaxRow) < 3*s.DavgRow {
		t.Errorf("RMAT not skewed: dmax=%d davg=%.1f", s.DmaxRow, s.DavgRow)
	}
}

func TestRMATNoSelf(t *testing.T) {
	cfg := RMATConfig{Scale: 7, Edges: 3000, A: 0.57, B: 0.19, C: 0.19, D: 0.05, NoSelf: true}
	m := RMAT(cfg, 7)
	for i := 0; i < m.Rows; i++ {
		for _, j := range m.RowCols(i) {
			if i == j {
				t.Fatalf("self loop at %d", i)
			}
		}
	}
}

func TestBandRegularDegrees(t *testing.T) {
	m := Band(BandConfig{N: 500, MinHalfBand: 10, MaxHalfBand: 12}, 3)
	s := m.ComputeStats()
	// Interior rows: degree 2w+1 in [21,25]; boundary rows lower.
	if s.DmaxRow > 2*12+1 {
		t.Errorf("dmax = %d exceeds band bound %d", s.DmaxRow, 25)
	}
	if s.DavgRow < 15 || s.DavgRow > 25 {
		t.Errorf("davg = %.1f outside expected band range", s.DavgRow)
	}
	// Symmetric.
	if !m.Equal(m.Transpose()) {
		t.Fatal("band matrix not symmetric")
	}
}

func TestBandDenseRows(t *testing.T) {
	m := Band(BandConfig{N: 800, MinHalfBand: 2, MaxHalfBand: 3, DenseRows: 2, DenseDegree: 300}, 5)
	s := m.ComputeStats()
	if s.DmaxRow < 200 {
		t.Errorf("planted dense rows missing: dmax = %d", s.DmaxRow)
	}
	if !m.Equal(m.Transpose()) {
		t.Fatal("band+dense matrix not symmetric")
	}
}

func TestPowerLawTargets(t *testing.T) {
	cfg := PowerLawConfig{Rows: 2000, Cols: 2000, NNZ: 12000, Beta: 0.5, DenseRows: 1, DenseMax: 400}
	m := PowerLaw(cfg, 11)
	s := m.ComputeStats()
	if s.DmaxRow < 300 || s.DmaxRow > 401 {
		t.Errorf("dmax = %d, want ~400", s.DmaxRow)
	}
	if s.NNZ < 8000 || s.NNZ > 16000 {
		t.Errorf("nnz = %d, want ~12000", s.NNZ)
	}
}

func TestPowerLawSymmetric(t *testing.T) {
	cfg := PowerLawConfig{Rows: 500, Cols: 500, NNZ: 4000, Beta: 0.5, Symmetric: true}
	m := PowerLaw(cfg, 13)
	mt := m.Transpose()
	// Structural symmetry: pattern of m equals pattern of m^T.
	for i := 0; i < m.Rows; i++ {
		a, b := m.RowCols(i), mt.RowCols(i)
		if len(a) != len(b) {
			t.Fatalf("row %d: degree %d vs %d in transpose", i, len(a), len(b))
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("row %d: pattern asymmetry", i)
			}
		}
	}
}

func TestSuiteNamesAndOrder(t *testing.T) {
	a, b := SetA(), SetB()
	if len(a) != 8 || len(b) != 8 {
		t.Fatalf("set sizes = %d, %d; want 8, 8", len(a), len(b))
	}
	wantA := []string{"crystk02", "turon_m", "trdheim", "c-big", "ASIC_680k", "3dtube", "pkustk12", "pattern1"}
	for i, s := range a {
		if s.Name != wantA[i] {
			t.Errorf("SetA[%d] = %q, want %q", i, s.Name, wantA[i])
		}
	}
	wantB := []string{"boyd2", "lp1", "c-big", "ASIC_680k", "ins2", "com-Youtube", "rajat30", "rmat_20"}
	for i, s := range b {
		if s.Name != wantB[i] {
			t.Errorf("SetB[%d] = %q, want %q", i, s.Name, wantB[i])
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("crystk02"); !ok {
		t.Error("crystk02 not found")
	}
	if _, ok := ByName("rmat_20"); !ok {
		t.Error("rmat_20 not found")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("found nonexistent matrix")
	}
}

// TestSuiteStatsShape checks, at a small scale, that each stand-in
// preserves the qualitative property the paper relies on: the ratio
// d_max / n (row-degree skew).
func TestSuiteStatsShape(t *testing.T) {
	const scale = 1.0 / 64
	for _, spec := range append(SetA(), SetB()...) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			m := spec.Generate(scale, 99)
			s := m.ComputeStats()
			if s.NNZ == 0 {
				t.Fatal("empty matrix")
			}
			// Row-degree skew = d_max / d_avg; scale-invariant, unlike
			// d_max/n which saturates at tiny scales.
			paperSkew := float64(spec.PaperDmax) / spec.PaperDavg
			genSkew := float64(s.DmaxRow) / s.DavgRow
			if paperSkew > 20 && genSkew < 5 {
				t.Errorf("skew lost: paper %.1f, generated %.1f", paperSkew, genSkew)
			}
			if paperSkew < 3 && genSkew > 8 {
				t.Errorf("spurious skew: paper %.1f, generated %.1f", paperSkew, genSkew)
			}
			// d_avg within a factor 3 of the paper value, unless the scaled
			// dimension makes that average unreachable.
			if spec.PaperDavg < 0.3*float64(s.Rows) {
				if s.DavgRow > 3*spec.PaperDavg || s.DavgRow < spec.PaperDavg/3 {
					t.Errorf("davg = %.1f, paper %.1f", s.DavgRow, spec.PaperDavg)
				}
			}
		})
	}
}

func TestGenerateRejectsBadScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Generate accepted scale 0")
		}
	}()
	SetA()[0].Generate(0, 1)
}

func TestScaleDegreesToSum(t *testing.T) {
	deg := scaleDegreesToSum([]int{10, 20, 30}, 120, 1, 100)
	var sum int
	for _, d := range deg {
		sum += d
	}
	if sum < 100 || sum > 140 {
		t.Errorf("sum = %d, want ~120", sum)
	}
	capped := scaleDegreesToSum([]int{1000, 1}, 1001, 1, 50)
	if capped[0] != 50 {
		t.Errorf("cap not applied: %v", capped)
	}
}

func TestDiscreteSamplerDistribution(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	s := newDiscreteSampler([]float64{1, 0, 3})
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[s.sample(r)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight item sampled %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.3 {
		t.Errorf("ratio = %.2f, want ~3", ratio)
	}
}

func TestPropertyGeneratorsDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		cfg := PowerLawConfig{Rows: 300, Cols: 300, NNZ: 2000, Beta: 0.5, DenseRows: 1, DenseMax: 60}
		return PowerLaw(cfg, seed).Equal(PowerLaw(cfg, seed))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
