package method

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/order"
	"repro/internal/sparse"
)

// methodFunc adapts a build function over memoized prerequisites to the
// Method interface. Build results are cached in the pipeline, so asking a
// shared pipeline for the same (method, matrix, K, seed) twice — e.g.
// s2D in Table V and again in Table VII — constructs it once.
type methodFunc struct {
	name string
	desc string
	fn   func(pr *prereq) (Build, error)
}

func (m methodFunc) Name() string        { return m.name }
func (m methodFunc) Description() string { return m.desc }

func (m methodFunc) Build(a *sparse.CSR, k int, opt Options) (Build, error) {
	if a == nil {
		return Build{}, fmt.Errorf("method %s: nil matrix", m.name)
	}
	if k < 1 {
		return Build{}, fmt.Errorf("method %s: K = %d, want >= 1", m.name, k)
	}
	pl := opt.Pipeline
	if pl == nil {
		pl = NewPipeline()
	}
	pr := pl.at(a, k, opt)
	return pr.build(m.name, func() (Build, error) { return m.fn(pr) })
}

func (pr *prereq) bopt() baselines.Options {
	return baselines.Options{Seed: pr.opt.Seed, Epsilon: pr.opt.Epsilon}
}

func (pr *prereq) bcfg() core.BalanceConfig {
	return core.BalanceConfig{Epsilon: pr.opt.Epsilon}
}

func init() {
	// The nine methods of the paper's evaluation, in the order the paper
	// introduces them.
	Register(methodFunc{
		name: "1D",
		desc: "1D rowwise: column-net hypergraph partition of the rows; single expand phase",
		fn: func(pr *prereq) (Build, error) {
			return Build{Method: "1D", Dist: pr.oneD()}, nil
		},
	})
	Register(methodFunc{
		name: "1D-col",
		desc: "1D columnwise: row-net hypergraph partition of the columns; single fold phase",
		fn: func(pr *prereq) (Build, error) {
			return Build{Method: "1D-col", Dist: baselines.Colwise1D(pr.a, pr.k, pr.bopt())}, nil
		},
	})
	Register(methodFunc{
		name: "2D",
		desc: "2D fine-grain (Çatalyürek & Aykanat): per-nonzero partition, two phases",
		fn: func(pr *prereq) (Build, error) {
			fg := pr.fineGrain()
			owner := pr.partsOf("finegrain", func() *hypergraph.H { return fg.H })
			return Build{Method: "2D", Dist: baselines.FineGrain2DFromParts(pr.a, fg, owner, pr.k)}, nil
		},
	})
	Register(methodFunc{
		name: "2D-b",
		desc: "Cartesian checkerboard: multi-constraint stripes bound latency by Pr+Pc-2",
		fn: func(pr *prereq) (Build, error) {
			return Build{Method: "2D-b", Dist: baselines.Checkerboard2DB(pr.a, pr.k, pr.bopt())}, nil
		},
	})
	Register(methodFunc{
		name: "1D-b",
		desc: "1D-b (Boman et al.): mesh post-processing of the 1D rowwise partition",
		fn: func(pr *prereq) (Build, error) {
			return Build{Method: "1D-b", Dist: baselines.OneDB(pr.a, pr.rowParts(), pr.k, pr.bopt())}, nil
		},
	})
	Register(methodFunc{
		name: "s2D",
		desc: "semi-2D via Algorithm 1: DM block flips under a load bound, fused phase",
		fn: func(pr *prereq) (Build, error) {
			return Build{Method: "s2D", Dist: pr.s2d()}, nil
		},
	})
	Register(methodFunc{
		name: "s2D-opt",
		desc: "volume-optimal semi-2D: every off-diagonal block takes its DM split",
		fn: func(pr *prereq) (Build, error) {
			d := pr.oneD()
			return Build{Method: "s2D-opt", Dist: core.Optimal(pr.a, d.XPart, d.YPart, pr.k)}, nil
		},
	})
	Register(methodFunc{
		name: "s2D-b",
		desc: "latency-bounded semi-2D: Algorithm 1 partition on a two-hop mesh route",
		fn: func(pr *prereq) (Build, error) {
			mesh := core.NewMesh(pr.k)
			return Build{Method: "s2D-b", Dist: pr.s2d(), Mesh: &mesh}, nil
		},
	})
	Register(methodFunc{
		name: "s2D-mg",
		desc: "medium-grain semi-2D (Pelt & Bisseling adaptation): composite hypergraph",
		fn: func(pr *prereq) (Build, error) {
			return Build{Method: "s2D-mg", Dist: baselines.MediumGrainS2D(pr.a, pr.k, pr.bopt())}, nil
		},
	})

	// Extended variants beyond the paper's table set (used by the
	// ablation): registering them here keeps the ablation a data-driven
	// loop like every other table.
	Register(methodFunc{
		name: "s2D-x",
		desc: "Algorithm 1 plus the A3 whole-block escalation from the paper's future work",
		fn: func(pr *prereq) (Build, error) {
			d := pr.oneD()
			return Build{Method: "s2D-x", Dist: core.BalancedExt(pr.a, d.XPart, d.YPart, pr.k, pr.bcfg())}, nil
		},
	})
	Register(methodFunc{
		name: "s2D-mgS",
		desc: "medium-grain semi-2D with the symmetric vector partition (square matrices)",
		fn: func(pr *prereq) (Build, error) {
			if pr.a.Rows != pr.a.Cols {
				return Build{}, fmt.Errorf("s2D-mgS requires a square matrix, got %dx%d", pr.a.Rows, pr.a.Cols)
			}
			return Build{Method: "s2D-mgS", Dist: baselines.MediumGrainS2DSym(pr.a, pr.k, pr.bopt())}, nil
		},
	})
	Register(methodFunc{
		name: "s2D-rcm",
		desc: "Algorithm 1 on an RCM-contiguous vector partition instead of a hypergraph one",
		fn: func(pr *prereq) (Build, error) {
			if pr.a.Rows != pr.a.Cols {
				return Build{}, fmt.Errorf("s2D-rcm requires a square matrix (RCM ordering), got %dx%d", pr.a.Rows, pr.a.Cols)
			}
			rcm := baselines.Rowwise1DFromParts(pr.a, rcmRowParts(pr.a, pr.k), pr.k)
			return Build{Method: "s2D-rcm", Dist: core.Balanced(pr.a, rcm.XPart, rcm.YPart, pr.k, pr.bcfg())}, nil
		},
	})
}

// rcmRowParts partitions rows into contiguous chunks of the RCM ordering,
// weighted by row nonzero counts — the cheap bandwidth-based vector
// partition the ablation contrasts with the hypergraph one.
func rcmRowParts(a *sparse.CSR, k int) []int {
	perm := order.RCM(a)
	inv := make([]int, len(perm))
	for old, idx := range perm {
		inv[idx] = old
	}
	weights := make([]int, a.Rows)
	for idx := 0; idx < a.Rows; idx++ {
		weights[idx] = a.RowNNZ(inv[idx])
	}
	chunk := order.ContiguousParts(a.Rows, k, weights)
	parts := make([]int, a.Rows)
	for old := 0; old < a.Rows; old++ {
		parts[old] = chunk[perm[old]]
	}
	return parts
}
