package method

import (
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/sparse"
)

func testMatrix(t *testing.T) *sparse.CSR {
	t.Helper()
	spec, ok := gen.ByName("crystk02")
	if !ok {
		t.Fatal("crystk02 missing from suite")
	}
	return spec.Generate(1.0/512, 1)
}

func TestRegistryHasAllPaperMethods(t *testing.T) {
	want := []string{"1D", "1D-col", "2D", "2D-b", "1D-b", "s2D", "s2D-opt", "s2D-b", "s2D-mg"}
	for _, name := range want {
		if _, ok := Get(name); !ok {
			t.Errorf("method %q not registered", name)
		}
		// Lookup is case-insensitive: CLI flags use the lower-case form.
		if _, ok := Get(strings.ToLower(name)); !ok {
			t.Errorf("method %q not found via lower-case lookup", name)
		}
	}
	if got := len(Names()); got < len(want) {
		t.Errorf("registry has %d methods, want >= %d", got, len(want))
	}
	for _, info := range List() {
		if info.Desc == "" {
			t.Errorf("method %q has no description", info.Name)
		}
	}
}

func TestBuildByNameUnknownListsRegistered(t *testing.T) {
	a := testMatrix(t)
	_, err := BuildByName("nope", a, 4, Options{Seed: 1})
	if err == nil {
		t.Fatal("expected error for unknown method")
	}
	for _, name := range []string{"s2D", "2D-b", "s2D-mg"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list %q", err, name)
		}
	}
}

// TestPipelineSharesPrerequisites pins the memoization contract: methods
// built through one pipeline share the underlying vector partition and
// the s2D distribution (same instances, not just equal values).
func TestPipelineSharesPrerequisites(t *testing.T) {
	a := testMatrix(t)
	pl := NewPipeline()
	opt := Options{Seed: 1, Pipeline: pl}
	oneD, err := BuildByName("1D", a, 4, opt)
	if err != nil {
		t.Fatal(err)
	}
	s2d, err := BuildByName("s2D", a, 4, opt)
	if err != nil {
		t.Fatal(err)
	}
	s2db, err := BuildByName("s2D-b", a, 4, opt)
	if err != nil {
		t.Fatal(err)
	}
	if &oneD.Dist.XPart[0] != &s2d.Dist.XPart[0] {
		t.Error("1D and s2D do not share the vector partition instance")
	}
	if s2d.Dist != s2db.Dist {
		t.Error("s2D and s2D-b do not share the distribution instance")
	}
	// Repeated build returns the cached instance.
	again, _ := BuildByName("s2D", a, 4, opt)
	if again.Dist != s2d.Dist {
		t.Error("repeated build did not hit the build cache")
	}
}

// TestSweepHintProducesValidBuilds checks the shared-tree path: with a
// power-of-two Ks hint, every K yields a valid distribution with the
// method's structural guarantees intact (s2D property, K-consistent
// labels), and the largest K matches the unhinted build exactly.
func TestSweepHintProducesValidBuilds(t *testing.T) {
	a := testMatrix(t)
	pl := NewPipeline()
	ks := []int{4, 8, 16}
	for _, k := range ks {
		for _, name := range []string{"1D", "s2D", "2D"} {
			b, err := BuildByName(name, a, k, Options{Seed: 1, Pipeline: pl, Ks: ks})
			if err != nil {
				t.Fatalf("%s K=%d: %v", name, k, err)
			}
			if err := b.Dist.Validate(); err != nil {
				t.Errorf("%s K=%d: %v", name, k, err)
			}
		}
	}
	// At K = max(Ks) the shared tree is just the direct run.
	hinted, _ := BuildByName("s2D", a, 16, Options{Seed: 1, Pipeline: pl, Ks: ks})
	direct, _ := BuildByName("s2D", a, 16, Options{Seed: 1})
	for p := range direct.Dist.Owner {
		if hinted.Dist.Owner[p] != direct.Dist.Owner[p] {
			t.Fatal("hinted build at max(Ks) differs from direct build")
		}
	}
}

func TestMatrixCacheSharesInstances(t *testing.T) {
	pl := NewPipeline()
	spec, _ := gen.ByName("crystk02")
	a1 := pl.Matrix(spec, 1.0/512, 1)
	a2 := pl.Matrix(spec, 1.0/512, 1)
	if a1 != a2 {
		t.Error("same (spec, scale, seed) generated twice")
	}
	if a3 := pl.Matrix(spec, 1.0/512, 2); a3 == a1 {
		t.Error("different seed returned the cached instance")
	}
}
