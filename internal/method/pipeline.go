package method

import (
	"sync"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/gen"
	"repro/internal/hypergraph"
	"repro/internal/partition"
	"repro/internal/sparse"
)

// Pipeline memoizes the prerequisites that partitioning methods share:
// generated suite matrices, hypergraph models (k-independent), row and
// fine-grain partitions, the induced vector partition, the Algorithm 1
// s2D distribution, and finished Builds. All entries are keyed by matrix
// identity plus the parameters that determine them, so one pipeline can
// back an entire experiment sweep — every table, method, and K value that
// asks for the same prerequisite computes it exactly once.
//
// A Pipeline is safe for concurrent use; each entry is computed once even
// under concurrent first requests.
type Pipeline struct {
	mu      sync.Mutex
	entries map[any]*pipeEntry
}

type pipeEntry struct {
	once sync.Once
	val  any
}

// NewPipeline returns an empty pipeline.
func NewPipeline() *Pipeline { return &Pipeline{} }

// memo returns the value for key, computing it with f exactly once.
func (pl *Pipeline) memo(key any, f func() any) any {
	pl.mu.Lock()
	if pl.entries == nil {
		pl.entries = make(map[any]*pipeEntry)
	}
	e, ok := pl.entries[key]
	if !ok {
		e = &pipeEntry{}
		pl.entries[key] = e
	}
	pl.mu.Unlock()
	e.once.Do(func() { e.val = f() })
	return e.val
}

// Cache keys. The matrix pointer identifies the matrix instance; sharing
// across tables therefore requires sharing the instance too, which is
// what the Matrix cache provides.
type (
	matrixKey struct {
		name  string
		scale float64
		seed  int64
	}
	modelKey struct {
		a     *sparse.CSR
		model string
	}
	forestKey struct {
		a     *sparse.CSR
		model string
		kmax  int
		seed  int64
		eps   float64
	}
	partsKey struct {
		a     *sparse.CSR
		model string
		k     int
		seed  int64
		eps   float64
		sweep int // kmax of the shared tree; 0 for a direct run
	}
	prereqKey struct {
		a     *sparse.CSR
		kind  string
		k     int
		seed  int64
		eps   float64
		sweep int
	}
	buildKey struct {
		a      *sparse.CSR
		method string
		k      int
		seed   int64
		eps    float64
		sweep  int
	}
	kernelKey struct {
		a      *sparse.CSR
		method string
		k      int
		seed   int64
		eps    float64
	}
)

// KernelMemo stores one (matrix, method, K, seed, epsilon) slot's
// per-width-class spmv kernel decisions. It satisfies spmv.KernelCache
// structurally (method cannot import spmv), which is how engine-building
// layers make autotuning deterministic across builds: the first Build's
// probe verdict is stored here and every later Build with the same key
// installs it without re-timing.
type KernelMemo struct {
	mu sync.Mutex
	m  map[int]string
}

// Lookup returns the stored kernel for a width class (nrhs ∈ {0,1,2,4,8};
// 0 is the generic class).
func (km *KernelMemo) Lookup(nrhs int) (string, bool) {
	km.mu.Lock()
	defer km.mu.Unlock()
	kernel, ok := km.m[nrhs]
	return kernel, ok
}

// Store records the kernel decision for a width class; the first store
// per class wins so concurrent tuners cannot flap a decision.
func (km *KernelMemo) Store(nrhs int, kernel string) {
	km.mu.Lock()
	defer km.mu.Unlock()
	if km.m == nil {
		km.m = make(map[int]string)
	}
	if _, dup := km.m[nrhs]; !dup {
		km.m[nrhs] = kernel
	}
}

// KernelCache returns the memoized kernel-decision store for one
// (matrix, method, K, seed, epsilon) slot. Every caller with the same
// key shares one store, so a K-sweep over an nrhs list tunes each width
// class exactly once per (matrix, method, K).
func (pl *Pipeline) KernelCache(a *sparse.CSR, methodName string, k int, seed int64, eps float64) *KernelMemo {
	return pl.memo(kernelKey{a, methodName, k, seed, eps}, func() any {
		return &KernelMemo{}
	}).(*KernelMemo)
}

// Matrix generates (or returns the cached) suite matrix for spec at the
// given scale and seed. Tables that evaluate the same suite share one
// matrix instance, which is what lets their method builds share
// downstream prerequisites as well.
func (pl *Pipeline) Matrix(spec gen.Spec, scale float64, seed int64) *sparse.CSR {
	return pl.memo(matrixKey{spec.Name, scale, seed}, func() any {
		return spec.Generate(scale, seed)
	}).(*sparse.CSR)
}

// prereq is the per-(matrix, K, options) view methods build through.
type prereq struct {
	pl  *Pipeline
	a   *sparse.CSR
	k   int
	opt Options
	// sweep is the kmax of the shared recursive-bisection tree this
	// build's partitions come from (k == sweep reads the tree's leaves
	// directly, which is bit-identical to a direct run), or 0 when
	// partitions run directly at k (no hint, or a non-power-of-two
	// sweep). It is part of every derived cache key: a projected build
	// and a direct build at the same (matrix, K, seed) are distinct
	// artifacts.
	sweep int
}

func (pl *Pipeline) at(a *sparse.CSR, k int, opt Options) *prereq {
	pr := &prereq{pl: pl, a: a, k: k, opt: opt}
	pr.sweep = pr.sweepKmax()
	return pr
}

func (pr *prereq) pcfg(k int) partition.Config {
	return partition.Config{K: k, Seed: pr.opt.Seed, Epsilon: pr.opt.Epsilon}
}

// columnNet returns the memoized column-net hypergraph model of the
// matrix (k-independent).
func (pr *prereq) columnNet() *hypergraph.H {
	return pr.pl.memo(modelKey{pr.a, "colnet"}, func() any {
		return hypergraph.ColumnNetModel(pr.a)
	}).(*hypergraph.H)
}

// fineGrain returns the memoized fine-grain hypergraph model
// (k-independent).
func (pr *prereq) fineGrain() *hypergraph.FineGrainModel {
	return pr.pl.memo(modelKey{pr.a, "finegrain"}, func() any {
		return hypergraph.FineGrain(pr.a)
	}).(*hypergraph.FineGrainModel)
}

// partsOf returns the k-way partition of the named model's hypergraph.
// When Options.Ks announces a power-of-two sweep, the partitions for the
// whole sweep project from one recursive-bisection tree at max(Ks); the
// tree is memoized so every K in the sweep pays for it once. Without the
// hint (or for non-power-of-two K) this is a plain memoized
// partition.Partition call, bit-identical to the direct constructors.
func (pr *prereq) partsOf(model string, h func() *hypergraph.H) []int {
	return pr.pl.memo(partsKey{pr.a, model, pr.k, pr.opt.Seed, pr.opt.Epsilon, pr.sweep}, func() any {
		if pr.sweep >= pr.k && pr.sweep > 0 {
			forest := pr.pl.memo(forestKey{pr.a, model, pr.sweep, pr.opt.Seed, pr.opt.Epsilon}, func() any {
				return partition.Partition(h(), pr.pcfg(pr.sweep))
			}).([]int)
			return partition.ProjectPow2(forest, pr.sweep, pr.k)
		}
		return partition.Partition(h(), pr.pcfg(pr.k))
	}).([]int)
}

// sweepKmax returns the top of the announced power-of-two K sweep, or 0
// when no tree sharing applies (no hint, k not in the hint, or any
// non-power-of-two K in the hint).
func (pr *prereq) sweepKmax() int {
	if pr.k < 1 || pr.k&(pr.k-1) != 0 {
		return 0
	}
	kmax, seen := 0, false
	for _, k := range pr.opt.Ks {
		if k < 1 || k&(k-1) != 0 {
			return 0
		}
		if k > kmax {
			kmax = k
		}
		if k == pr.k {
			seen = true
		}
	}
	if !seen {
		return 0
	}
	return kmax
}

// rowParts returns the k-way column-net row partition (the paper's 1D
// rowwise partition, shared by 1D, 1D-b, s2D, s2D-opt, and s2D-b).
func (pr *prereq) rowParts() []int {
	return pr.partsOf("colnet", pr.columnNet)
}

// oneD returns the 1D rowwise distribution built on rowParts. Its XPart
// and YPart are the fixed vector partition every s2D variant imports.
func (pr *prereq) oneD() *distrib.Distribution {
	return pr.pl.memo(prereqKey{pr.a, "oneD", pr.k, pr.opt.Seed, pr.opt.Epsilon, pr.sweep}, func() any {
		return baselines.Rowwise1DFromParts(pr.a, pr.rowParts(), pr.k)
	}).(*distrib.Distribution)
}

// s2d returns the Algorithm 1 s2D distribution on the fixed vector
// partition (shared by s2D and s2D-b).
func (pr *prereq) s2d() *distrib.Distribution {
	return pr.pl.memo(prereqKey{pr.a, "s2d", pr.k, pr.opt.Seed, pr.opt.Epsilon, pr.sweep}, func() any {
		d := pr.oneD()
		return core.Balanced(pr.a, d.XPart, d.YPart, pr.k, core.BalanceConfig{Epsilon: pr.opt.Epsilon})
	}).(*distrib.Distribution)
}

// buildResult pairs a Build with its error for cache storage.
type buildResult struct {
	b   Build
	err error
}

// build memoizes a finished Build per (matrix, method, K, seed, epsilon,
// sweep).
func (pr *prereq) build(name string, f func() (Build, error)) (Build, error) {
	res := pr.pl.memo(buildKey{pr.a, name, pr.k, pr.opt.Seed, pr.opt.Epsilon, pr.sweep}, func() any {
		b, err := f()
		return buildResult{b, err}
	}).(buildResult)
	return res.b, res.err
}
