package method_test

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/gen"
	"repro/internal/method"
	"repro/internal/sparse"
	"repro/internal/spmv"
)

// directBuild replicates the pre-registry construction chains exactly as
// the harness tables and cmd/s2dpart wired them by hand. It is the
// reference the registry must reproduce bit for bit when no sweep hint is
// given.
func directBuild(t *testing.T, name string, a *sparse.CSR, k int, seed int64) (*distrib.Distribution, *core.Mesh) {
	t.Helper()
	opt := baselines.Options{Seed: seed}
	switch name {
	case "1D":
		return baselines.Rowwise1D(a, k, opt), nil
	case "1D-col":
		return baselines.Colwise1D(a, k, opt), nil
	case "2D":
		return baselines.FineGrain2D(a, k, opt), nil
	case "2D-b":
		return baselines.Checkerboard2DB(a, k, opt), nil
	case "1D-b":
		rows := baselines.RowwiseParts(a, k, opt)
		return baselines.OneDB(a, rows, k, opt), nil
	case "s2D", "s2D-opt", "s2D-b":
		rows := baselines.RowwiseParts(a, k, opt)
		oneD := baselines.Rowwise1DFromParts(a, rows, k)
		var d *distrib.Distribution
		if name == "s2D-opt" {
			d = core.Optimal(a, oneD.XPart, oneD.YPart, k)
		} else {
			d = core.Balanced(a, oneD.XPart, oneD.YPart, k, core.BalanceConfig{})
		}
		if name == "s2D-b" {
			mesh := core.NewMesh(k)
			return d, &mesh
		}
		return d, nil
	case "s2D-mg":
		return baselines.MediumGrainS2D(a, k, opt), nil
	default:
		t.Fatalf("no direct constructor for %q", name)
		return nil, nil
	}
}

var nineMethods = []string{
	"1D", "1D-col", "2D", "2D-b", "1D-b", "s2D", "s2D-opt", "s2D-b", "s2D-mg",
}

func equivMatrices(t *testing.T) map[string]*sparse.CSR {
	t.Helper()
	out := make(map[string]*sparse.CSR)
	for i, name := range []string{"crystk02", "c-big", "boyd2"} {
		spec, ok := gen.ByName(name)
		if !ok {
			t.Fatalf("suite matrix %q missing", name)
		}
		out[name] = spec.Generate(1.0/512, 1+int64(i))
	}
	return out
}

// commOf mirrors Build.Comm for the direct reference.
func commOf(d *distrib.Distribution, mesh *core.Mesh) distrib.CommStats {
	if mesh != nil {
		return core.S2DBComm(d, *mesh)
	}
	return d.Comm()
}

// TestRegistryEquivalentToDirectConstructors pins the refactor contract:
// for every registered paper method, building through the registry (no
// sweep hint) yields the same distribution, the same communication
// statistics, and the same engine output as the pre-refactor hand-wired
// chains.
func TestRegistryEquivalentToDirectConstructors(t *testing.T) {
	mats := equivMatrices(t)
	for matName, a := range mats {
		for _, k := range []int{4, 8} {
			seed := int64(1)
			for _, name := range nineMethods {
				b, err := method.BuildByName(name, a, k, method.Options{Seed: seed})
				if err != nil {
					t.Fatalf("%s on %s K=%d: %v", name, matName, k, err)
				}
				d, mesh := directBuild(t, name, a, k, seed)

				if !reflect.DeepEqual(b.Dist.Owner, d.Owner) {
					t.Errorf("%s on %s K=%d: Owner differs from direct constructor", name, matName, k)
				}
				if !reflect.DeepEqual(b.Dist.XPart, d.XPart) || !reflect.DeepEqual(b.Dist.YPart, d.YPart) {
					t.Errorf("%s on %s K=%d: vector partition differs", name, matName, k)
				}
				if b.Dist.Fused != d.Fused {
					t.Errorf("%s on %s K=%d: Fused %v != %v", name, matName, k, b.Dist.Fused, d.Fused)
				}
				if (b.Mesh == nil) != (mesh == nil) {
					t.Fatalf("%s on %s K=%d: mesh presence differs", name, matName, k)
				}
				if b.Mesh != nil && *b.Mesh != *mesh {
					t.Errorf("%s on %s K=%d: mesh %v != %v", name, matName, k, *b.Mesh, *mesh)
				}
				if got, want := b.Comm(), commOf(d, mesh); !reflect.DeepEqual(got, want) {
					t.Errorf("%s on %s K=%d: Comm() stats differ:\n got %+v\nwant %+v",
						name, matName, k, got, want)
				}
			}
		}
	}
}

// multiplyOnce runs one Multiply through the unified engine constructor.
func multiplyOnce(t *testing.T, name string, b method.Build, x []float64, rows int) []float64 {
	t.Helper()
	eng, err := spmv.New(b)
	if err != nil {
		t.Fatalf("%s: engine: %v", name, err)
	}
	defer eng.Close()
	y := make([]float64, rows)
	eng.Multiply(x, y)
	return y
}

// TestRegistryEngineOutputMatchesDirect runs the actual engines: the
// registry build's Multiply must produce bitwise-identical output to an
// engine built from the direct constructor's distribution.
func TestRegistryEngineOutputMatchesDirect(t *testing.T) {
	spec, _ := gen.ByName("crystk02")
	a := spec.Generate(1.0/512, 1)
	const k = 4
	r := rand.New(rand.NewSource(17))
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = r.Float64()*2 - 1
	}
	for _, name := range nineMethods {
		b, err := method.BuildByName(name, a, k, method.Options{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		d, mesh := directBuild(t, name, a, k, 1)
		got := multiplyOnce(t, name, b, x, a.Rows)
		want := multiplyOnce(t, name, method.Build{Method: name, Dist: d, Mesh: mesh}, x, a.Rows)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: y[%d] = %v != direct %v", name, i, got[i], want[i])
			}
		}
	}
}
