// Package method is the single place where the repository's partitioning
// methods are constructed. Every method the paper evaluates — 1D rowwise
// and columnwise, the 2D fine-grain method of Çatalyürek & Aykanat, the
// Cartesian checkerboard 2D-b, 1D-b of Boman et al., s2D (Algorithm 1),
// the volume-optimal s2D-opt, the latency-bounded s2D-b, and the
// medium-grain s2D-mg of Pelt & Bisseling — registers itself here under
// its paper name, and every consumer (the experiment harness, the
// s2dpart and spmvbench commands, the examples) builds distributions
// through the registry instead of wiring partitioner calls by hand.
//
// Builds run through a memoizing Pipeline that computes shared
// prerequisites — the generated suite matrices, the hypergraph models,
// the column-net row partition, the induced vector partition, and the
// Algorithm 1 distribution — once per (matrix, K, seed) and reuses them
// across methods and tables. When a caller announces the full list of
// power-of-two K values it will sweep (Options.Ks), the pipeline further
// shares one recursive-bisection tree across all of them (see
// partition.PartitionMulti), which roughly halves harness table
// generation time.
package method

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/sparse"
)

// Options carries the knobs shared by every method build.
type Options struct {
	// Seed drives every randomized stage; the same (matrix, K, Seed,
	// Epsilon) always yields the same Build.
	Seed int64
	// Epsilon is the partitioner imbalance tolerance; zero means the
	// partitioner default (0.03).
	Epsilon float64
	// Pipeline memoizes shared prerequisites across builds. Nil uses a
	// private single-build pipeline (no sharing, exact equivalence with
	// the direct constructors).
	Pipeline *Pipeline
	// Ks optionally announces every K value the caller will request for
	// this (matrix, Seed). When all of them are powers of two, row and
	// fine-grain partitions for the whole sweep derive from a single
	// recursive-bisection tree at max(Ks) — same balance bound and
	// per-level quality, a fraction of the cost. Leave nil for builds
	// that must match the direct constructors bit for bit.
	Ks []int
	// ForceKernel names one spmv kernel backend ("scalar", "reg",
	// "sorted", "sortedreg", "relaxed") to install for every width class
	// instead of autotuning. Empty lets the tuner decide. Only consumed
	// by engine-building layers (spmv.NewTuned, the serve pool);
	// partitioning is unaffected.
	ForceKernel string
	// RelaxedFP admits the relaxed multi-accumulator kernels as autotune
	// candidates. Their results are only ulp-close to the scalar
	// reference, so this must stay false anywhere bitwise reproducibility
	// is part of the contract.
	RelaxedFP bool
}

// Build is the product of a method: the data distribution plus, for
// latency-bounded (routed) variants, the processor mesh their two-hop
// schedule runs on.
type Build struct {
	Method string
	Dist   *distrib.Distribution
	Mesh   *core.Mesh
}

// Routed reports whether the build uses the routed s2D-b schedule.
func (b Build) Routed() bool { return b.Mesh != nil }

// Comm returns the communication statistics of the schedule the build
// actually executes: the routed two-hop statistics when a mesh is
// present, the distribution's direct statistics otherwise.
func (b Build) Comm() distrib.CommStats {
	if b.Mesh != nil {
		return core.S2DBComm(b.Dist, *b.Mesh)
	}
	return b.Dist.Comm()
}

// Method constructs a distribution for a matrix at a part count.
type Method interface {
	Name() string
	Build(a *sparse.CSR, k int, opt Options) (Build, error)
}

// Info describes a registered method for listings, usage messages, and
// the serving API's /v1/methods payload.
type Info struct {
	Name string `json:"name"`
	Desc string `json:"desc,omitempty"`
}

var (
	regMu    sync.RWMutex
	registry = make(map[string]Method)
	regOrder []string
)

func canonical(name string) string { return strings.ToLower(name) }

// Register adds a method to the registry. Names are matched
// case-insensitively ("s2D" and "s2d" are the same method); registering a
// duplicate panics.
func Register(m Method) {
	regMu.Lock()
	defer regMu.Unlock()
	key := canonical(m.Name())
	if _, dup := registry[key]; dup {
		panic(fmt.Sprintf("method: duplicate registration of %q", m.Name()))
	}
	registry[key] = m
	regOrder = append(regOrder, key)
}

// Get looks a method up by name, case-insensitively.
func Get(name string) (Method, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	m, ok := registry[canonical(name)]
	return m, ok
}

// Names returns the canonical names of every registered method in
// registration order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(regOrder))
	for _, key := range regOrder {
		out = append(out, registry[key].Name())
	}
	return out
}

// List returns name and description of every registered method in
// registration order.
func List() []Info {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Info, 0, len(regOrder))
	for _, key := range regOrder {
		m := registry[key]
		info := Info{Name: m.Name()}
		if d, ok := m.(interface{ Description() string }); ok {
			info.Desc = d.Description()
		}
		out = append(out, info)
	}
	return out
}

// BuildByName builds the named method, or returns an error naming every
// registered method when the name is unknown.
func BuildByName(name string, a *sparse.CSR, k int, opt Options) (Build, error) {
	m, ok := Get(name)
	if !ok {
		known := Names()
		sort.Strings(known)
		return Build{}, fmt.Errorf("unknown method %q (registered: %s)",
			name, strings.Join(known, ", "))
	}
	return m.Build(a, k, opt)
}
