package bipartite

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func graphFromEdges(nr, nc int, edges [][2]int) *Graph {
	g := NewGraph(nr, nc)
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	return g
}

func TestHopcroftKarpPerfect(t *testing.T) {
	// Identity-matchable 4x4.
	g := graphFromEdges(4, 4, [][2]int{{0, 0}, {1, 1}, {2, 2}, {3, 3}, {0, 1}, {2, 3}})
	m := HopcroftKarp(g)
	if m.Size != 4 {
		t.Fatalf("matching size = %d, want 4", m.Size)
	}
}

func TestHopcroftKarpNeedsAugmenting(t *testing.T) {
	// A graph where greedy matching fails without augmenting paths:
	// r0-{c0,c1}, r1-{c0}, r2-{c1}. Max matching is 2.
	g := graphFromEdges(3, 2, [][2]int{{0, 0}, {0, 1}, {1, 0}, {2, 1}})
	m := HopcroftKarp(g)
	if m.Size != 2 {
		t.Fatalf("matching size = %d, want 2", m.Size)
	}
}

func TestHopcroftKarpEmpty(t *testing.T) {
	m := HopcroftKarp(NewGraph(3, 3))
	if m.Size != 0 {
		t.Fatalf("empty graph matching size = %d", m.Size)
	}
	m2 := HopcroftKarp(NewGraph(0, 0))
	if m2.Size != 0 {
		t.Fatal("zero graph")
	}
}

func validMatching(g *Graph, m Matching) bool {
	count := 0
	for r, c := range m.MatchR {
		if c == unmatched {
			continue
		}
		count++
		if m.MatchC[c] != r {
			return false
		}
		found := false
		for _, cc := range g.Adj[r] {
			if cc == c {
				found = true
			}
		}
		if !found {
			return false
		}
	}
	return count == m.Size
}

// bruteMaxMatching finds the true maximum matching by exhaustive search
// (rows ≤ ~10).
func bruteMaxMatching(g *Graph) int {
	usedC := make([]bool, g.NC)
	var rec func(r int) int
	rec = func(r int) int {
		if r == g.NR {
			return 0
		}
		best := rec(r + 1) // skip row r
		for _, c := range g.Adj[r] {
			if !usedC[c] {
				usedC[c] = true
				if v := 1 + rec(r+1); v > best {
					best = v
				}
				usedC[c] = false
			}
		}
		return best
	}
	return rec(0)
}

func randomGraph(r *rand.Rand, nr, nc, edges int) *Graph {
	g := NewGraph(nr, nc)
	seen := map[[2]int]bool{}
	for k := 0; k < edges; k++ {
		e := [2]int{r.Intn(nr), r.Intn(nc)}
		if !seen[e] {
			seen[e] = true
			g.AddEdge(e[0], e[1])
		}
	}
	return g
}

func TestHopcroftKarpAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		g := randomGraph(r, 1+r.Intn(8), 1+r.Intn(8), r.Intn(20))
		m := HopcroftKarp(g)
		if !validMatching(g, m) {
			t.Fatalf("trial %d: invalid matching", trial)
		}
		if want := bruteMaxMatching(g); m.Size != want {
			t.Fatalf("trial %d: size %d, want %d", trial, m.Size, want)
		}
	}
}

func TestDecomposePaperExample(t *testing.T) {
	// A 2x3 all-horizontal block: 2 rows, 3 cols, every row nonempty, more
	// cols than rows, perfectly matchable on the row side.
	g := graphFromEdges(2, 3, [][2]int{{0, 0}, {0, 1}, {1, 1}, {1, 2}})
	d := Decompose(g)
	if d.HRows != 2 || d.HCols != 3 {
		t.Fatalf("H = %dx%d, want 2x3", d.HRows, d.HCols)
	}
	if d.SRows != 0 || d.VRows != 0 || d.VCols != 0 {
		t.Fatalf("unexpected S/V blocks: %+v", d)
	}
	if d.MinCover() != 2 {
		t.Fatalf("MinCover = %d, want 2", d.MinCover())
	}
}

func TestDecomposeSquareBlock(t *testing.T) {
	// Perfect matching, no unmatched vertices: everything is Square.
	g := graphFromEdges(3, 3, [][2]int{{0, 0}, {1, 1}, {2, 2}, {0, 1}})
	d := Decompose(g)
	if d.SRows != 3 || d.HRows != 0 || d.VRows != 0 {
		t.Fatalf("S=%d H=%d V=%d, want 3 0 0", d.SRows, d.HRows, d.VRows)
	}
	if d.MinCover() != 3 {
		t.Fatalf("MinCover = %d", d.MinCover())
	}
}

func TestDecomposeVerticalBlock(t *testing.T) {
	// 3 rows, 1 col: vertical.
	g := graphFromEdges(3, 1, [][2]int{{0, 0}, {1, 0}, {2, 0}})
	d := Decompose(g)
	if d.VRows != 3 || d.VCols != 1 {
		t.Fatalf("V = %dx%d, want 3x1", d.VRows, d.VCols)
	}
	if d.MinCover() != 1 {
		t.Fatalf("MinCover = %d, want 1", d.MinCover())
	}
}

func TestDecomposeMixed(t *testing.T) {
	// Rows 0-1 with cols 0-2 horizontal; row 2 with col 3 square;
	// rows 3-4 with col 4 vertical.
	g := graphFromEdges(5, 5, [][2]int{
		{0, 0}, {0, 1}, {1, 1}, {1, 2},
		{2, 3},
		{3, 4}, {4, 4},
	})
	d := Decompose(g)
	if d.HRows != 2 || d.HCols != 3 {
		t.Errorf("H = %dx%d, want 2x3", d.HRows, d.HCols)
	}
	if d.SRows != 1 {
		t.Errorf("S rows = %d, want 1", d.SRows)
	}
	if d.VRows != 2 || d.VCols != 1 {
		t.Errorf("V = %dx%d, want 2x1", d.VRows, d.VCols)
	}
	if d.MinCover() != 4 {
		t.Errorf("MinCover = %d, want 4", d.MinCover())
	}
}

func TestDecomposeEmptyRowsCols(t *testing.T) {
	// Col 2 and row 2 are empty; they must not inflate block counts.
	g := graphFromEdges(3, 3, [][2]int{{0, 0}, {1, 1}})
	d := Decompose(g)
	if d.MinCover() != 2 {
		t.Fatalf("MinCover = %d, want 2", d.MinCover())
	}
	if d.HCols != 0 || d.VRows != 0 {
		t.Errorf("empty row/col counted: HCols=%d VRows=%d", d.HCols, d.VRows)
	}
}

// checkDMStructure verifies the zero-block structure of the coarse DM
// decomposition: no edges in (S∪V rows × H cols) or (V rows × S cols), and
// the cover property.
func checkDMStructure(t *testing.T, g *Graph, d DM) {
	t.Helper()
	for r := 0; r < g.NR; r++ {
		for _, c := range g.Adj[r] {
			rk, ck := d.RowKind[r], d.ColKind[c]
			if rk != Horizontal && ck == Horizontal {
				t.Fatalf("edge (%d,%d) in zero block: row %v, col %v", r, c, rk, ck)
			}
			if rk == Vertical && ck == Square {
				t.Fatalf("edge (%d,%d) in zero block: row V, col S", r, c)
			}
			if rk == Vertical && ck == Horizontal {
				t.Fatalf("edge (%d,%d) in zero block: row V, col H", r, c)
			}
		}
	}
	if d.MinCover() != d.Size {
		t.Fatalf("König violated: cover %d != matching %d", d.MinCover(), d.Size)
	}
	// The cover must actually cover: every edge touches an H-row, S-row,
	// or V-col.
	for r := 0; r < g.NR; r++ {
		for _, c := range g.Adj[r] {
			if d.RowKind[r] == Horizontal || d.RowKind[r] == Square || d.ColKind[c] == Vertical {
				continue
			}
			t.Fatalf("edge (%d,%d) uncovered", r, c)
		}
	}
}

func TestDecomposeRandomStructure(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		g := randomGraph(r, 1+r.Intn(25), 1+r.Intn(25), r.Intn(120))
		d := Decompose(g)
		checkDMStructure(t, g, d)
	}
}

func TestPropertyDMCoverEqualsMatching(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 1+r.Intn(15), 1+r.Intn(15), r.Intn(60))
		d := Decompose(g)
		return d.MinCover() == d.Size && d.Size == bruteMaxMatching(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockKindString(t *testing.T) {
	if Horizontal.String() != "H" || Square.String() != "S" || Vertical.String() != "V" {
		t.Error("BlockKind strings wrong")
	}
	if BlockKind(9).String() != "?" {
		t.Error("unknown BlockKind string")
	}
}

func TestDecomposeLargeRandom(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	g := randomGraph(r, 2000, 2500, 12000)
	d := Decompose(g)
	checkDMStructure(t, g, d)
	if d.Size == 0 {
		t.Fatal("large random graph has empty matching")
	}
}
