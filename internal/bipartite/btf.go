package bipartite

// Fine Dulmage–Mendelsohn decomposition (Pothen & Fan 1990, cited as [15]
// in the paper): the square block S of the coarse decomposition further
// decomposes into strongly connected components of the directed graph
// induced by the perfect matching on S, yielding the block triangular
// form. The components are returned in a topological order, so permuting S
// by the concatenated blocks gives a block lower triangular matrix.

// FineDM extends the coarse decomposition with the square block's BTF.
type FineDM struct {
	DM
	// Blocks lists the square-part components in topological order; each
	// holds matched (row, col) pairs.
	Blocks [][]MatchedPair
}

// MatchedPair is one matched row/column of the square block.
type MatchedPair struct{ Row, Col int }

// FineDecompose computes the coarse DM decomposition and the block
// triangular form of its square part.
func FineDecompose(g *Graph) FineDM {
	dm := Decompose(g)
	f := FineDM{DM: dm}

	// Directed graph on the square block's columns: j → j' when the row
	// matched to j has an edge to j' (both in S).
	isSquareCol := func(c int) bool { return dm.ColKind[c] == Square }
	var sccCols [][]int
	sccCols = tarjanSCC(g, dm, isSquareCol)

	// Tarjan emits components sinks-first: dependencies (earlier columns)
	// come before dependents, which is exactly the block *lower*
	// triangular order.
	for _, comp := range sccCols {
		blk := make([]MatchedPair, 0, len(comp))
		for _, c := range comp {
			blk = append(blk, MatchedPair{Row: dm.MatchC[c], Col: c})
		}
		f.Blocks = append(f.Blocks, blk)
	}
	return f
}

// tarjanSCC runs Tarjan's algorithm over the matching-induced digraph on
// square columns, iteratively (no recursion, safe for large blocks).
func tarjanSCC(g *Graph, dm DM, inScope func(int) bool) [][]int {
	const none = -1
	index := make([]int, g.NC)
	low := make([]int, g.NC)
	onStack := make([]bool, g.NC)
	for c := range index {
		index[c] = none
	}
	var stack []int
	var sccs [][]int
	next := 0

	// successors of column c: columns j' != c adjacent to c's matched row.
	succ := func(c int) []int {
		r := dm.MatchC[c]
		if r < 0 {
			return nil
		}
		var out []int
		for _, c2 := range g.Adj[r] {
			if c2 != c && inScope(c2) {
				out = append(out, c2)
			}
		}
		return out
	}

	type frame struct {
		c     int
		succs []int
		idx   int
	}
	for c0 := 0; c0 < g.NC; c0++ {
		if !inScope(c0) || index[c0] != none {
			continue
		}
		var callStack []frame
		push := func(c int) {
			index[c] = next
			low[c] = next
			next++
			stack = append(stack, c)
			onStack[c] = true
			callStack = append(callStack, frame{c: c, succs: succ(c)})
		}
		push(c0)
		for len(callStack) > 0 {
			fr := &callStack[len(callStack)-1]
			if fr.idx < len(fr.succs) {
				w := fr.succs[fr.idx]
				fr.idx++
				if index[w] == none {
					push(w)
				} else if onStack[w] && index[w] < low[fr.c] {
					low[fr.c] = index[w]
				}
				continue
			}
			// Post-visit.
			c := fr.c
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := &callStack[len(callStack)-1]
				if low[c] < low[parent.c] {
					low[parent.c] = low[c]
				}
			}
			if low[c] == index[c] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == c {
						break
					}
				}
				sccs = append(sccs, comp)
			}
		}
	}
	return sccs
}
