package bipartite

import (
	"math/rand"
	"testing"
)

func TestFineDecomposeTriangular(t *testing.T) {
	// Lower-triangular pattern: every diagonal block is a singleton.
	g := NewGraph(4, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j <= i; j++ {
			g.AddEdge(i, j)
		}
	}
	f := FineDecompose(g)
	if f.SRows != 4 {
		t.Fatalf("square rows = %d", f.SRows)
	}
	if len(f.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4 singletons", len(f.Blocks))
	}
	for _, b := range f.Blocks {
		if len(b) != 1 {
			t.Fatalf("non-singleton block in triangular matrix: %v", b)
		}
	}
}

func TestFineDecomposeCycle(t *testing.T) {
	// A full cycle: i matched to i, and i -> i+1 edges form one SCC.
	const n = 5
	g := NewGraph(n, n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, i)
		g.AddEdge(i, (i+1)%n)
	}
	f := FineDecompose(g)
	if len(f.Blocks) != 1 {
		t.Fatalf("blocks = %d, want single SCC", len(f.Blocks))
	}
	if len(f.Blocks[0]) != n {
		t.Fatalf("SCC size = %d", len(f.Blocks[0]))
	}
}

func TestFineDecomposeTopologicalOrder(t *testing.T) {
	// Two 2-cycles with a one-way bridge: block containing {0,1} must
	// appear before the block of {2,3} in lower-triangular order only if
	// edges point from later to earlier; verify no edge goes from an
	// earlier block's rows to a later block's columns... in BTF lower
	// triangular: for blocks B1 before B2, there is no edge (row in B1,
	// col in B2).
	g := NewGraph(4, 4)
	g.AddEdge(0, 0)
	g.AddEdge(0, 1)
	g.AddEdge(1, 1)
	g.AddEdge(1, 0)
	g.AddEdge(2, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 3)
	g.AddEdge(3, 2)
	g.AddEdge(2, 0) // bridge: block {2,3} depends on block {0,1}
	f := FineDecompose(g)
	if len(f.Blocks) != 2 {
		t.Fatalf("blocks = %d, want 2", len(f.Blocks))
	}
	blockOfCol := map[int]int{}
	for bi, blk := range f.Blocks {
		for _, p := range blk {
			blockOfCol[p.Col] = bi
		}
	}
	for r := 0; r < g.NR; r++ {
		for _, c := range g.Adj[r] {
			// Row r belongs to the block of its matched column.
			rBlk, okR := blockOfCol[f.MatchR[r]]
			cBlk, okC := blockOfCol[c]
			if okR && okC && rBlk < cBlk {
				t.Fatalf("edge (%d,%d) above the block diagonal: row block %d, col block %d",
					r, c, rBlk, cBlk)
			}
		}
	}
}

func TestFineDecomposeMixedWithHV(t *testing.T) {
	// Horizontal + square + vertical parts together; only S columns form
	// blocks.
	g := graphFromEdges(5, 5, [][2]int{
		{0, 0}, {0, 1}, {1, 1}, {1, 2}, // horizontal-ish
		{2, 3},         // square singleton
		{3, 4}, {4, 4}, // vertical
	})
	f := FineDecompose(g)
	count := 0
	for _, blk := range f.Blocks {
		count += len(blk)
	}
	if count != f.SRows {
		t.Fatalf("block pairs %d != square rows %d", count, f.SRows)
	}
}

func TestFineDecomposeRandomConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		g := randomGraph(r, 1+r.Intn(30), 1+r.Intn(30), r.Intn(150))
		f := FineDecompose(g)
		// Every square column appears in exactly one block.
		seen := map[int]bool{}
		for _, blk := range f.Blocks {
			for _, p := range blk {
				if seen[p.Col] {
					t.Fatalf("trial %d: column %d in two blocks", trial, p.Col)
				}
				seen[p.Col] = true
				if f.ColKind[p.Col] != Square {
					t.Fatalf("trial %d: non-square column in block", trial)
				}
				if f.MatchC[p.Col] != p.Row {
					t.Fatalf("trial %d: pair not matched", trial)
				}
			}
		}
		squareCols := 0
		for c := 0; c < g.NC; c++ {
			if f.ColKind[c] == Square {
				squareCols++
			}
		}
		if len(seen) != squareCols {
			t.Fatalf("trial %d: %d columns in blocks, %d square", trial, len(seen), squareCols)
		}
	}
}
