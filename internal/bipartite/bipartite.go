// Package bipartite implements maximum bipartite matching (Hopcroft–Karp)
// and the coarse Dulmage–Mendelsohn decomposition used by the paper's
// volume-optimal semi-2D splitting (§II-B, §IV-A).
//
// The DM decomposition of a rectangular pattern B permutes it to
//
//	      C_H  C_S  C_V
//	R_H [  H    X    Z ]
//	R_S [  0    S    Y ]
//	R_V [  0    0    V ]
//
// with m̂(H) < n̂(H) (unless H is empty), m̂(S) = n̂(S), and
// m̂(V) > n̂(V). By König duality, m̂(H)+m̂(S)+n̂(V) is both the maximum
// matching size and the minimum number of rows and columns needed to cover
// all nonzeros — exactly the minimum communication volume of an s2D split
// of an off-diagonal block.
package bipartite

// Graph is a bipartite graph with NR row vertices and NC column vertices.
// Adjacency is stored row-side only; edges must be unique.
type Graph struct {
	NR, NC int
	Adj    [][]int // Adj[r] lists column neighbours of row r
}

// NewGraph returns an empty bipartite graph.
func NewGraph(nr, nc int) *Graph {
	return &Graph{NR: nr, NC: nc, Adj: make([][]int, nr)}
}

// AddEdge connects row r to column c.
func (g *Graph) AddEdge(r, c int) {
	g.Adj[r] = append(g.Adj[r], c)
}

const unmatched = -1

// Matching holds a bipartite matching: MatchR[r] is the column matched to
// row r or -1; MatchC is the inverse; Size is the number of matched pairs.
type Matching struct {
	MatchR, MatchC []int
	Size           int
}

// HopcroftKarp computes a maximum matching in O(E√V).
func HopcroftKarp(g *Graph) Matching {
	matchR := make([]int, g.NR)
	matchC := make([]int, g.NC)
	for i := range matchR {
		matchR[i] = unmatched
	}
	for j := range matchC {
		matchC[j] = unmatched
	}

	const inf = int(^uint(0) >> 1)
	dist := make([]int, g.NR)
	queue := make([]int, 0, g.NR)

	bfs := func() bool {
		queue = queue[:0]
		for r := 0; r < g.NR; r++ {
			if matchR[r] == unmatched {
				dist[r] = 0
				queue = append(queue, r)
			} else {
				dist[r] = inf
			}
		}
		found := false
		for head := 0; head < len(queue); head++ {
			r := queue[head]
			for _, c := range g.Adj[r] {
				nr := matchC[c]
				if nr == unmatched {
					found = true
				} else if dist[nr] == inf {
					dist[nr] = dist[r] + 1
					queue = append(queue, nr)
				}
			}
		}
		return found
	}

	var dfs func(r int) bool
	dfs = func(r int) bool {
		for _, c := range g.Adj[r] {
			nr := matchC[c]
			if nr == unmatched || (dist[nr] == dist[r]+1 && dfs(nr)) {
				matchR[r] = c
				matchC[c] = r
				return true
			}
		}
		dist[r] = inf
		return false
	}

	size := 0
	for bfs() {
		for r := 0; r < g.NR; r++ {
			if matchR[r] == unmatched && dfs(r) {
				size++
			}
		}
	}
	return Matching{MatchR: matchR, MatchC: matchC, Size: size}
}

// BlockKind labels a row or column with its coarse DM block.
type BlockKind int8

const (
	// Horizontal: the underdetermined block H (more columns than rows).
	Horizontal BlockKind = iota
	// Square: the perfectly matched block S.
	Square
	// Vertical: the overdetermined block V (more rows than columns).
	Vertical
)

// String returns the block letter H, S, or V.
func (k BlockKind) String() string {
	switch k {
	case Horizontal:
		return "H"
	case Square:
		return "S"
	case Vertical:
		return "V"
	}
	return "?"
}

// DM is the result of a coarse Dulmage–Mendelsohn decomposition.
type DM struct {
	Matching
	RowKind, ColKind []BlockKind
	// Counts of rows/columns per block.
	HRows, HCols int
	SRows        int // = SCols
	VRows, VCols int
}

// MinCover returns the minimum number of rows plus columns covering all
// nonzeros: m̂(H) + m̂(S) + n̂(V). Equals the maximum matching size.
func (d *DM) MinCover() int { return d.HRows + d.SRows + d.VCols }

// Decompose computes the coarse DM decomposition of g. Empty (degree-zero)
// columns are placed in H and empty rows in V; they do not contribute to
// block nonzero counts.
func Decompose(g *Graph) DM {
	m := HopcroftKarp(g)

	// Column-side adjacency, needed to walk alternating paths from
	// unmatched rows.
	colAdj := make([][]int, g.NC)
	for r := 0; r < g.NR; r++ {
		for _, c := range g.Adj[r] {
			colAdj[c] = append(colAdj[c], r)
		}
	}

	rowKind := make([]BlockKind, g.NR)
	colKind := make([]BlockKind, g.NC)
	for r := range rowKind {
		rowKind[r] = Square
	}
	for c := range colKind {
		colKind[c] = Square
	}

	// H: alternating BFS from unmatched columns. Column→row steps use any
	// edge; row→column steps use the matching edge.
	visitedR := make([]bool, g.NR)
	visitedC := make([]bool, g.NC)
	cq := make([]int, 0)
	for c := 0; c < g.NC; c++ {
		if m.MatchC[c] == unmatched {
			visitedC[c] = true
			colKind[c] = Horizontal
			cq = append(cq, c)
		}
	}
	for head := 0; head < len(cq); head++ {
		c := cq[head]
		for _, r := range colAdj[c] {
			if visitedR[r] {
				continue
			}
			visitedR[r] = true
			rowKind[r] = Horizontal
			if mc := m.MatchR[r]; mc != unmatched && !visitedC[mc] {
				visitedC[mc] = true
				colKind[mc] = Horizontal
				cq = append(cq, mc)
			}
		}
	}

	// V: alternating BFS from unmatched rows. Row→column steps use any
	// edge; column→row steps use the matching edge.
	visR := make([]bool, g.NR)
	visC := make([]bool, g.NC)
	rq := make([]int, 0)
	for r := 0; r < g.NR; r++ {
		if m.MatchR[r] == unmatched {
			visR[r] = true
			rowKind[r] = Vertical
			rq = append(rq, r)
		}
	}
	for head := 0; head < len(rq); head++ {
		r := rq[head]
		for _, c := range g.Adj[r] {
			if visC[c] {
				continue
			}
			visC[c] = true
			colKind[c] = Vertical
			if mr := m.MatchC[c]; mr != unmatched && !visR[mr] {
				visR[mr] = true
				rowKind[mr] = Vertical
				rq = append(rq, mr)
			}
		}
	}

	d := DM{Matching: m, RowKind: rowKind, ColKind: colKind}
	for r, k := range rowKind {
		switch k {
		case Horizontal:
			d.HRows++
		case Vertical:
			if len(g.Adj[r]) > 0 {
				d.VRows++
			}
		case Square:
			d.SRows++
		}
	}
	for c, k := range colKind {
		switch k {
		case Horizontal:
			if len(colAdj[c]) > 0 {
				d.HCols++
			}
		case Vertical:
			d.VCols++
		}
	}
	return d
}
