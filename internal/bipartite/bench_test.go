package bipartite

import (
	"math/rand"
	"testing"
)

func benchGraph(nr, nc, edges int) *Graph {
	r := rand.New(rand.NewSource(1))
	g := NewGraph(nr, nc)
	for e := 0; e < edges; e++ {
		g.AddEdge(r.Intn(nr), r.Intn(nc))
	}
	return g
}

func BenchmarkHopcroftKarp(b *testing.B) {
	g := benchGraph(20000, 20000, 120000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = HopcroftKarp(g)
	}
}

func BenchmarkDecompose(b *testing.B) {
	g := benchGraph(20000, 25000, 120000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Decompose(g)
	}
}

// BenchmarkDecomposeWide exercises the horizontal-dominant regime the s2D
// optimizer hits on dense-row blocks (few rows, many columns).
func BenchmarkDecomposeWide(b *testing.B) {
	g := benchGraph(100, 50000, 100000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Decompose(g)
	}
}
