package wire

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

func randFrame(r *rand.Rand) *Frame {
	ops := []byte{OpMultiplyReq, OpMultiplyResp, OpSolveReq, OpSolveResp}
	f := &Frame{
		Op:         ops[r.Intn(len(ops))],
		Transpose:  r.Intn(2) == 0,
		Matrix:     "m" + string(rune('a'+r.Intn(26))),
		Method:     []string{"", "s2d", "1d", "s2d-mg"}[r.Intn(4)],
		K:          r.Intn(64),
		Tol:        r.Float64(),
		MaxIter:    r.Intn(1000),
		DeadlineMs: r.Intn(10000),
		Solver:     byte(r.Intn(4)),
	}
	if f.Op == OpSolveResp {
		f.Converged = r.Intn(2) == 0
	}
	nrhs := r.Intn(5)
	n := r.Intn(100)
	for i := 0; i < nrhs; i++ {
		v := make([]float64, n)
		for j := range v {
			switch r.Intn(20) {
			case 0:
				v[j] = math.NaN()
			case 1:
				v[j] = math.Inf(1 - 2*r.Intn(2))
			case 2:
				v[j] = 0.0
			case 3:
				v[j] = math.Copysign(0, -1)
			default:
				v[j] = r.NormFloat64() * math.Pow(10, float64(r.Intn(40)-20))
			}
		}
		f.Vectors = append(f.Vectors, v)
	}
	return f
}

func frameEqual(t *testing.T, a, b *Frame) {
	t.Helper()
	if a.Op != b.Op || a.Transpose != b.Transpose || a.Converged != b.Converged ||
		a.Matrix != b.Matrix || a.Method != b.Method || a.K != b.K ||
		a.MaxIter != b.MaxIter || a.DeadlineMs != b.DeadlineMs || a.Solver != b.Solver {
		t.Fatalf("frame meta mismatch:\n got %+v\nwant %+v", b, a)
	}
	if math.Float64bits(a.Tol) != math.Float64bits(b.Tol) {
		t.Fatalf("tol bits differ: %x vs %x", math.Float64bits(a.Tol), math.Float64bits(b.Tol))
	}
	if len(a.Vectors) != len(b.Vectors) {
		t.Fatalf("vectors = %d, want %d", len(b.Vectors), len(a.Vectors))
	}
	for i := range a.Vectors {
		if len(a.Vectors[i]) != len(b.Vectors[i]) {
			t.Fatalf("vector %d length %d, want %d", i, len(b.Vectors[i]), len(a.Vectors[i]))
		}
		for j := range a.Vectors[i] {
			if math.Float64bits(a.Vectors[i][j]) != math.Float64bits(b.Vectors[i][j]) {
				t.Fatalf("vector %d[%d]: %v, want %v (bits differ)", i, j, b.Vectors[i][j], a.Vectors[i][j])
			}
		}
	}
}

// TestRoundTrip pins decode(encode(f)) == f bit for bit across random
// frames, including NaN, ±Inf, and signed-zero payloads.
func TestRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		f := randFrame(r)
		buf, err := Append(nil, f)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if len(buf) != f.Size() {
			t.Fatalf("frame %d: encoded %d bytes, Size says %d", i, len(buf), f.Size())
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("frame %d: decode: %v", i, err)
		}
		frameEqual(t, f, got)
	}
}

// TestGoldenLayout pins the byte layout so the format cannot drift
// silently: any change to the header is a wire-protocol version bump.
func TestGoldenLayout(t *testing.T) {
	f := &Frame{
		Op: OpMultiplyReq, Transpose: true, Matrix: "web", Method: "s2d",
		K: 4, Vectors: [][]float64{{1.0}},
	}
	buf, err := Append(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[0:4]) != "SpMV" {
		t.Fatalf("magic bytes %q, want SpMV", buf[0:4])
	}
	le := binary.LittleEndian
	if buf[4] != 1 || buf[5] != OpMultiplyReq || le.Uint16(buf[6:]) != FlagTranspose {
		t.Fatalf("version/op/flags = %d/%d/%x", buf[4], buf[5], le.Uint16(buf[6:]))
	}
	// Names at 48, padded to 56 (48+3+3 → 56), payload one float64.
	if want := 56 + 8; len(buf) != want || int(le.Uint32(buf[8:])) != want {
		t.Fatalf("frame length %d (field %d), want %d", len(buf), le.Uint32(buf[8:]), want)
	}
	if le.Uint32(buf[12:]) != 4 || le.Uint32(buf[16:]) != 1 || le.Uint32(buf[20:]) != 1 {
		t.Fatalf("k/nrhs/n = %d/%d/%d", le.Uint32(buf[12:]), le.Uint32(buf[16:]), le.Uint32(buf[20:]))
	}
	if string(buf[48:51]) != "web" || string(buf[51:54]) != "s2d" {
		t.Fatalf("names = %q %q", buf[48:51], buf[51:54])
	}
	if got := math.Float64frombits(le.Uint64(buf[56:])); got != 1.0 {
		t.Fatalf("payload = %v, want 1.0", got)
	}
}

// TestDecodeTruncated feeds every proper prefix of a valid frame to
// Decode: all must fail with *FormatError, none may panic.
func TestDecodeTruncated(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := randFrame(r)
	f.Vectors = [][]float64{make([]float64, 7), make([]float64, 7)}
	buf, err := Append(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(buf); n++ {
		if _, err := Decode(buf[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded successfully", n, len(buf))
		} else if _, ok := err.(*FormatError); !ok {
			t.Fatalf("truncation to %d: error %T, want *FormatError", n, err)
		}
	}
}

// TestDecodeCorrupt flips every byte of a valid frame in turn; Decode
// must either reject with *FormatError or decode without panicking —
// corruption may be payload-only, which the format cannot detect, but
// it must never crash the server.
func TestDecodeCorrupt(t *testing.T) {
	f := &Frame{Op: OpMultiplyReq, Matrix: "m", Method: "s2d", K: 2,
		Vectors: [][]float64{{1, 2, 3}, {4, 5, 6}}}
	buf, err := Append(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		for _, flip := range []byte{0xff, 0x01, 0x80} {
			mut := append([]byte(nil), buf...)
			mut[i] ^= flip
			g, err := Decode(mut)
			if err != nil {
				if _, ok := err.(*FormatError); !ok {
					t.Fatalf("byte %d ^ %#x: error %T, want *FormatError", i, flip, err)
				}
				continue
			}
			// Decoded despite the flip: must still be structurally sane.
			for _, v := range g.Vectors {
				_ = v
			}
		}
	}
}

// TestDecodeRejects pins the individual validation paths with
// hand-corrupted headers.
func TestDecodeRejects(t *testing.T) {
	valid := func() []byte {
		buf, err := Append(nil, &Frame{Op: OpMultiplyReq, Matrix: "m", Vectors: [][]float64{{1, 2}}})
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	le := binary.LittleEndian
	cases := []struct {
		name string
		mut  func(b []byte) []byte
	}{
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"bad version", func(b []byte) []byte { b[4] = 99; return b }},
		{"bad op", func(b []byte) []byte { b[5] = 77; return b }},
		{"unknown flags", func(b []byte) []byte { le.PutUint16(b[6:], 0x8000); return b }},
		{"length mismatch", func(b []byte) []byte { le.PutUint32(b[8:], uint32(len(b)+8)); return b }},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0xde, 0xad) }},
		{"nrhs over bound", func(b []byte) []byte { le.PutUint32(b[16:], MaxVectors+1); return b }},
		{"name over bound", func(b []byte) []byte { le.PutUint16(b[24:], MaxNameLen+1); return b }},
		{"reserved nonzero", func(b []byte) []byte { b[30] = 1; return b }},
		{"bad solver", func(b []byte) []byte { b[28] = 9; return b }},
		{"payload mismatch", func(b []byte) []byte { le.PutUint32(b[20:], 3); return b }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Decode(tc.mut(valid())); err == nil {
				t.Fatal("corrupt frame decoded successfully")
			} else if _, ok := err.(*FormatError); !ok {
				t.Fatalf("error %T, want *FormatError", err)
			}
		})
	}
}

// TestZeroCopyAliasing documents the zero-copy contract: on a
// little-endian host with an aligned buffer, decoded vectors alias the
// frame bytes.
func TestZeroCopyAliasing(t *testing.T) {
	if !nativeLittle {
		t.Skip("big-endian host: decode copies by design")
	}
	f := &Frame{Op: OpMultiplyReq, Matrix: "mm", Vectors: [][]float64{{1, 2, 3, 4}}}
	buf, err := Append(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate the buffer; an aliasing view sees the change.
	p := payloadOffset(len(f.Matrix), len(f.Method))
	binary.LittleEndian.PutUint64(buf[p:], math.Float64bits(42))
	if g.Vectors[0][0] != 42 {
		t.Skip("buffer not 8-aligned on this run: copying fallback used (still correct)")
	}
}

// FuzzDecode is the go-native fuzz harness: arbitrary bytes must never
// panic Decode, and frames that do decode must re-encode to the same
// bytes modulo payload aliasing.
func FuzzDecode(f *testing.F) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 8; i++ {
		buf, err := Append(nil, randFrame(r))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{})
	f.Add([]byte("SpMV"))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := Decode(data)
		if err != nil {
			return
		}
		buf, err := Append(nil, fr)
		if err != nil {
			t.Fatalf("decoded frame fails to re-encode: %v", err)
		}
		if len(buf) != len(data) {
			t.Fatalf("re-encode: %d bytes, original %d", len(buf), len(data))
		}
		for i := range buf {
			if buf[i] != data[i] {
				t.Fatalf("re-encode differs at byte %d: %#x vs %#x", i, buf[i], data[i])
			}
		}
	})
}

func BenchmarkDecode(b *testing.B) {
	for _, nrhs := range []int{1, 8} {
		f := &Frame{Op: OpMultiplyReq, Matrix: "bench", Method: "s2d", K: 4}
		r := rand.New(rand.NewSource(5))
		for i := 0; i < nrhs; i++ {
			v := make([]float64, 4096)
			for j := range v {
				v[j] = r.NormFloat64()
			}
			f.Vectors = append(f.Vectors, v)
		}
		buf, err := Append(nil, f)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(map[int]string{1: "nrhs=1", 8: "nrhs=8"}[nrhs], func(b *testing.B) {
			b.SetBytes(int64(len(buf)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Decode(buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
