// Package wire defines the binary frame format the serving layer speaks
// alongside JSON: a versioned, length-prefixed, little-endian framing of
// SpMV requests and responses whose payload is raw float64 buffers.
//
// The JSON path encodes every float64 as 17-24 ASCII bytes and burns CPU
// parsing them back; at serving scale the encode/decode dominates cost
// long before the tuned kernels do. The compiled plans already move data
// as fixed-index packets of raw float64 words, so the wire format simply
// extends that layout to the client boundary: a fixed header, the
// addressing strings, then nrhs×n float64 values verbatim. Decode is
// zero-copy on little-endian machines — the returned vectors alias the
// frame buffer — so a request's payload lands in the scheduler's batch
// buffers without ever being re-materialized.
//
// # Frame layout (all integers little-endian)
//
//	offset size  field
//	0      4     magic "SpMV" (0x53 0x70 0x4d 0x56)
//	4      1     version (currently 1)
//	5      1     op (OpMultiplyReq, OpMultiplyResp, OpSolveReq, OpSolveResp)
//	6      2     flags (bit 0: transpose; bit 1: converged — solve resp)
//	8      4     frame length in bytes, header included (the length prefix)
//	12     4     k (part count; 0 lets the server default)
//	16     4     nrhs (number of payload vectors)
//	20     4     n (length of each payload vector)
//	24     2     matrix name length in bytes
//	26     2     method name length in bytes
//	28     1     solver (SolverAuto/CG/LSQR/CGNR; solve frames)
//	29     3     reserved, must be zero
//	32     8     tol (solve req) / residual (solve resp), float64 bits
//	40     4     maxiter (solve req) / iterations (solve resp)
//	44     4     deadline_ms (requests; 0 means server default)
//	48     ...   matrix name bytes, then method name bytes
//	...    ...   zero padding to the next multiple of 8
//	...    ...   payload: nrhs × n float64 values, vector-major
//
// The frame length at offset 8 makes the format self-delimiting on a
// byte stream; over HTTP it must also equal the Content-Length. Decode
// rejects any frame whose magic, version, lengths, or padding disagree —
// truncated or corrupt frames are a typed *FormatError, never a panic.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"
)

// ContentType is the HTTP media type that negotiates this format on
// /v1/multiply and /v1/solve. Responses mirror the request encoding.
const ContentType = "application/x-spmv-frame"

// Magic is the first four frame bytes, "SpMV" read as ASCII.
const Magic uint32 = 0x564d7053

// Version is the frame version this package encodes and accepts.
const Version = 1

// headerSize is the fixed portion before the variable-length names.
const headerSize = 48

// Ops. Requests and responses are distinct so a stream peer can never
// mistake an echo for a reply.
const (
	OpMultiplyReq  = 1
	OpMultiplyResp = 2
	OpSolveReq     = 3
	OpSolveResp    = 4
)

// Flags.
const (
	// FlagTranspose marks a y ← Aᵀx request.
	FlagTranspose = 1 << 0
	// FlagConverged reports solver convergence on an OpSolveResp frame.
	FlagConverged = 1 << 1

	flagsKnown = FlagTranspose | FlagConverged
)

// Solver codes for solve frames.
const (
	SolverAuto = 0
	SolverCG   = 1
	SolverLSQR = 2
	SolverCGNR = 3
)

// SolverName maps a solver code to the JSON API's solver string; unknown
// codes return "".
func SolverName(code byte) string {
	switch code {
	case SolverAuto:
		return ""
	case SolverCG:
		return "cg"
	case SolverLSQR:
		return "lsqr"
	case SolverCGNR:
		return "cgnr"
	}
	return ""
}

// SolverCode maps a JSON solver string to its frame code; ok is false
// for names the frame cannot carry.
func SolverCode(name string) (byte, bool) {
	switch name {
	case "":
		return SolverAuto, true
	case "cg":
		return SolverCG, true
	case "lsqr":
		return SolverLSQR, true
	case "cgnr":
		return SolverCGNR, true
	}
	return 0, false
}

// MaxNameLen bounds the matrix and method name fields.
const MaxNameLen = 128

// MaxVectors bounds nrhs per frame — wide enough for any batch the
// scheduler would coalesce, small enough that a corrupt count cannot
// provoke a huge allocation before the length check catches it.
const MaxVectors = 4096

// Frame is one decoded (or to-be-encoded) message.
type Frame struct {
	Op        byte
	Transpose bool
	Converged bool // OpSolveResp only
	Matrix    string
	Method    string
	K         int
	// Vectors is the payload: nrhs vectors of one length. On decode they
	// alias the frame buffer when the platform allows zero-copy (see
	// Decode); the caller owns the buffer and must keep it live while the
	// vectors are in use.
	Vectors [][]float64
	// Tol/Residual and MaxIter/Iterations share header fields: the
	// request meaning first, the response meaning second.
	Tol        float64
	MaxIter    int
	DeadlineMs int
	Solver     byte
}

// FormatError reports a frame that does not parse. The serving layer
// maps it to HTTP 400.
type FormatError struct {
	Reason string
}

func (e *FormatError) Error() string { return "wire: " + e.Reason }

func badFrame(format string, args ...any) error {
	return &FormatError{Reason: fmt.Sprintf(format, args...)}
}

// nativeLittle reports whether the host is little-endian — the frame
// byte order — which enables the zero-copy payload paths.
var nativeLittle = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Size returns the encoded byte length of f: header, names, padding,
// and payload.
func (f *Frame) Size() int {
	n := 0
	if len(f.Vectors) > 0 {
		n = len(f.Vectors[0])
	}
	return payloadOffset(len(f.Matrix), len(f.Method)) + len(f.Vectors)*n*8
}

// payloadOffset is where the float64 payload begins: the names rounded
// up to 8-byte alignment so the zero-copy view stays aligned.
func payloadOffset(matrixLen, methodLen int) int {
	return (headerSize + matrixLen + methodLen + 7) &^ 7
}

// Append encodes f onto dst and returns the extended slice. Every
// vector must share one length; names must fit MaxNameLen.
func Append(dst []byte, f *Frame) ([]byte, error) {
	n := 0
	for i, v := range f.Vectors {
		if i == 0 {
			n = len(v)
		} else if len(v) != n {
			return nil, badFrame("vector %d has length %d, vector 0 has %d", i, len(v), n)
		}
	}
	if len(f.Matrix) > MaxNameLen || len(f.Method) > MaxNameLen {
		return nil, badFrame("name longer than %d bytes", MaxNameLen)
	}
	if len(f.Vectors) > MaxVectors {
		return nil, badFrame("%d vectors exceeds the %d per-frame bound", len(f.Vectors), MaxVectors)
	}
	total := f.Size()
	off := len(dst)
	dst = append(dst, make([]byte, total)...)
	b := dst[off:]

	le := binary.LittleEndian
	le.PutUint32(b[0:], Magic)
	b[4] = Version
	b[5] = f.Op
	var flags uint16
	if f.Transpose {
		flags |= FlagTranspose
	}
	if f.Converged {
		flags |= FlagConverged
	}
	le.PutUint16(b[6:], flags)
	le.PutUint32(b[8:], uint32(total))
	le.PutUint32(b[12:], uint32(f.K))
	le.PutUint32(b[16:], uint32(len(f.Vectors)))
	le.PutUint32(b[20:], uint32(n))
	le.PutUint16(b[24:], uint16(len(f.Matrix)))
	le.PutUint16(b[26:], uint16(len(f.Method)))
	b[28] = f.Solver
	le.PutUint64(b[32:], math.Float64bits(f.Tol))
	le.PutUint32(b[40:], uint32(f.MaxIter))
	le.PutUint32(b[44:], uint32(f.DeadlineMs))
	copy(b[headerSize:], f.Matrix)
	copy(b[headerSize+len(f.Matrix):], f.Method)

	p := payloadOffset(len(f.Matrix), len(f.Method))
	for _, v := range f.Vectors {
		if nativeLittle && len(v) > 0 {
			src := unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)
			copy(b[p:], src)
			p += len(v) * 8
			continue
		}
		for _, x := range v {
			le.PutUint64(b[p:], math.Float64bits(x))
			p += 8
		}
	}
	return dst, nil
}

// Decode parses one frame from buf, which must contain the frame
// exactly (no trailing bytes — over HTTP the body is the frame). The
// returned Frame's Vectors alias buf when the host is little-endian and
// buf's payload is 8-byte aligned in memory; otherwise they are copies.
// Either way the float64 bit patterns transfer exactly. Malformed input
// returns a *FormatError and never panics.
func Decode(buf []byte) (*Frame, error) {
	if len(buf) < headerSize {
		return nil, badFrame("frame truncated: %d bytes, header needs %d", len(buf), headerSize)
	}
	le := binary.LittleEndian
	if m := le.Uint32(buf[0:]); m != Magic {
		return nil, badFrame("bad magic 0x%08x", m)
	}
	if v := buf[4]; v != Version {
		return nil, badFrame("unsupported version %d (this build speaks %d)", v, Version)
	}
	f := &Frame{Op: buf[5]}
	switch f.Op {
	case OpMultiplyReq, OpMultiplyResp, OpSolveReq, OpSolveResp:
	default:
		return nil, badFrame("unknown op %d", f.Op)
	}
	flags := le.Uint16(buf[6:])
	if flags&^uint16(flagsKnown) != 0 {
		return nil, badFrame("unknown flags 0x%04x", flags)
	}
	f.Transpose = flags&FlagTranspose != 0
	f.Converged = flags&FlagConverged != 0
	total := int(le.Uint32(buf[8:]))
	if total != len(buf) {
		return nil, badFrame("frame length field says %d bytes, body has %d", total, len(buf))
	}
	f.K = int(le.Uint32(buf[12:]))
	nrhs := int(le.Uint32(buf[16:]))
	n := int(le.Uint32(buf[20:]))
	matrixLen := int(le.Uint16(buf[24:]))
	methodLen := int(le.Uint16(buf[26:]))
	if buf[29] != 0 || buf[30] != 0 || buf[31] != 0 {
		return nil, badFrame("reserved header bytes not zero")
	}
	f.Solver = buf[28]
	if f.Solver > SolverCGNR {
		return nil, badFrame("unknown solver code %d", f.Solver)
	}
	f.Tol = math.Float64frombits(le.Uint64(buf[32:]))
	f.MaxIter = int(le.Uint32(buf[40:]))
	f.DeadlineMs = int(le.Uint32(buf[44:]))
	if matrixLen > MaxNameLen || methodLen > MaxNameLen {
		return nil, badFrame("name longer than %d bytes", MaxNameLen)
	}
	if nrhs > MaxVectors {
		return nil, badFrame("%d vectors exceeds the %d per-frame bound", nrhs, MaxVectors)
	}
	p := payloadOffset(matrixLen, methodLen)
	if p > len(buf) {
		return nil, badFrame("frame truncated inside names: %d bytes, names need %d", len(buf), p)
	}
	f.Matrix = string(buf[headerSize : headerSize+matrixLen])
	f.Method = string(buf[headerSize+matrixLen : headerSize+matrixLen+methodLen])
	for _, pad := range buf[headerSize+matrixLen+methodLen : p] {
		if pad != 0 {
			return nil, badFrame("nonzero padding byte")
		}
	}
	want := int64(p) + int64(nrhs)*int64(n)*8
	if want != int64(len(buf)) {
		return nil, badFrame("payload: header declares %d×%d float64 (%d bytes), frame carries %d",
			nrhs, n, int64(nrhs)*int64(n)*8, len(buf)-p)
	}
	if nrhs > 0 {
		f.Vectors = make([][]float64, nrhs)
		for i := range f.Vectors {
			f.Vectors[i] = decodeFloats(buf[p+i*n*8:p+(i+1)*n*8], n)
		}
	}
	return f, nil
}

// decodeFloats views (or copies) n float64 values from b. The zero-copy
// view requires the native byte order to match the wire's (little) and
// the slice base to be 8-byte aligned; both hold on the platforms we
// serve from, and the copying fallback is bit-exact everywhere else.
func decodeFloats(b []byte, n int) []float64 {
	if n == 0 {
		return nil
	}
	if nativeLittle && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}
