package core

import (
	"math/rand"
	"testing"

	"repro/internal/distrib"
	"repro/internal/gen"
	"repro/internal/sparse"
)

// rowwise1D builds the 1D rowwise distribution for the same vector
// partition (all nonzeros owned by their y part).
func rowwise1D(a *sparse.CSR, xpart, ypart []int, k int) *distrib.Distribution {
	return &distrib.Distribution{
		A: a, K: k,
		Owner: baseRowwiseOwner(a, ypart),
		XPart: xpart, YPart: ypart,
		Fused: true,
	}
}

func randomMatrix(r *rand.Rand, rows, cols, nnz int) *sparse.CSR {
	c := sparse.NewCOO(rows, cols)
	for t := 0; t < nnz; t++ {
		c.Add(r.Intn(rows), r.Intn(cols), 1+r.Float64())
	}
	return c.ToCSR()
}

func randomVecParts(r *rand.Rand, a *sparse.CSR, k int) (xp, yp []int) {
	xp = make([]int, a.Cols)
	yp = make([]int, a.Rows)
	for j := range xp {
		xp[j] = r.Intn(k)
	}
	for i := range yp {
		yp[i] = r.Intn(k)
	}
	return
}

func TestOptimalIsS2D(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		a := randomMatrix(r, 10+r.Intn(30), 10+r.Intn(30), r.Intn(200))
		k := 2 + r.Intn(6)
		xp, yp := randomVecParts(r, a, k)
		d := Optimal(a, xp, yp, k)
		if err := d.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !d.IsS2D() {
			t.Fatalf("trial %d: Optimal violated the s2D property", trial)
		}
	}
}

func TestOptimalNeverWorseThan1D(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		a := randomMatrix(r, 15+r.Intn(40), 15+r.Intn(40), r.Intn(400))
		k := 2 + r.Intn(7)
		xp, yp := randomVecParts(r, a, k)
		vOpt := Optimal(a, xp, yp, k).Comm().TotalVolume
		v1D := rowwise1D(a, xp, yp, k).Comm().TotalVolume
		if vOpt > v1D {
			t.Fatalf("trial %d: optimal volume %d > 1D volume %d", trial, vOpt, v1D)
		}
	}
}

// bruteBlockMin enumerates all 2^|entries| assignments of a block's
// nonzeros to its row part or column part and returns the minimum
// communication volume n̂(A^(ℓ)) + m̂(A^(k)).
func bruteBlockMin(rows, cols []int) int {
	n := len(rows)
	best := 1 << 30
	for mask := 0; mask < 1<<n; mask++ {
		// Bit set: nonzero assigned to the column part k (partial y sent);
		// clear: assigned to the row part ℓ (x needed).
		rowSet := map[int]bool{}
		colSet := map[int]bool{}
		for t := 0; t < n; t++ {
			if mask&(1<<t) != 0 {
				rowSet[rows[t]] = true
			} else {
				colSet[cols[t]] = true
			}
		}
		if v := len(rowSet) + len(colSet); v < best {
			best = v
		}
	}
	return best
}

func TestOptimalMatchesBruteForcePerBlock(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		a := randomMatrix(r, 6+r.Intn(8), 6+r.Intn(8), 3+r.Intn(12))
		k := 2 + r.Intn(3)
		xp, yp := randomVecParts(r, a, k)
		blocks := collectBlocks(a, xp, yp, k)
		d := Optimal(a, xp, yp, k)
		for _, b := range blocks {
			if len(b.entries) > 14 {
				continue
			}
			want := bruteBlockMin(b.rows, b.cols)
			// Measure this block's realized volume: distinct columns with
			// ℓ-owned nonzeros plus distinct rows with k-owned nonzeros.
			colSet := map[int]bool{}
			rowSet := map[int]bool{}
			for t, p := range b.entries {
				if d.Owner[p] == b.l {
					colSet[b.cols[t]] = true
				} else {
					rowSet[b.rows[t]] = true
				}
			}
			got := len(colSet) + len(rowSet)
			if got != want {
				t.Fatalf("trial %d block (%d,%d): volume %d, brute-force optimum %d",
					trial, b.l, b.k, got, want)
			}
		}
	}
}

func TestBalancedIsS2DAndRespectsVolumeBound(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		a := randomMatrix(r, 20+r.Intn(40), 20+r.Intn(40), 50+r.Intn(400))
		k := 2 + r.Intn(6)
		xp, yp := randomVecParts(r, a, k)
		d := Balanced(a, xp, yp, k, BalanceConfig{})
		if err := d.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		v := d.Comm().TotalVolume
		v1D := rowwise1D(a, xp, yp, k).Comm().TotalVolume
		vOpt := Optimal(a, xp, yp, k).Comm().TotalVolume
		if v > v1D {
			t.Fatalf("trial %d: balanced volume %d > 1D %d", trial, v, v1D)
		}
		if v < vOpt {
			t.Fatalf("trial %d: balanced volume %d below the optimum %d (impossible)", trial, v, vOpt)
		}
	}
}

func TestBalancedUnlimitedEqualsOptimal(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		a := randomMatrix(r, 20+r.Intn(30), 20+r.Intn(30), 50+r.Intn(300))
		k := 2 + r.Intn(5)
		xp, yp := randomVecParts(r, a, k)
		d := Balanced(a, xp, yp, k, BalanceConfig{Wlim: 1 << 30})
		vOpt := Optimal(a, xp, yp, k).Comm().TotalVolume
		if v := d.Comm().TotalVolume; v != vOpt {
			t.Fatalf("trial %d: unlimited Balanced volume %d != optimal %d", trial, v, vOpt)
		}
	}
}

func TestBalancedImprovesLoadOverOptimal(t *testing.T) {
	// A matrix with one dense row: 1D rowwise overloads its owner; the
	// balanced heuristic must not exceed max(W1D, Wlim), while Optimal may
	// pile weight on x-side parts arbitrarily.
	m := gen.PowerLaw(gen.PowerLawConfig{
		Rows: 400, Cols: 400, NNZ: 3000, Beta: 0.5, DenseRows: 1, DenseMax: 200,
	}, 6)
	k := 8
	yp := make([]int, m.Rows)
	for i := range yp {
		yp[i] = i * k / m.Rows
	}
	xp := append([]int(nil), yp...)

	oneD := rowwise1D(m, xp, yp, k)
	w1D := maxLoad(oneD)
	bal := Balanced(m, xp, yp, k, BalanceConfig{})
	wBal := maxLoad(bal)
	if wBal > w1D {
		t.Errorf("balanced max load %d exceeds 1D %d", wBal, w1D)
	}
	if !bal.IsS2D() {
		t.Error("balanced result not s2D")
	}
}

func maxLoad(d *distrib.Distribution) int {
	max := 0
	for _, w := range d.PartLoads() {
		if w > max {
			max = w
		}
	}
	return max
}

// TestS2DPatternMatches1D verifies the paper's first observation in §III:
// s2D and 1D have identical communication patterns (the same set of
// (sender, receiver) pairs) whenever they share the vector partition.
func TestS2DPatternMatches1D(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		a := randomMatrix(r, 20+r.Intn(40), 20+r.Intn(40), 50+r.Intn(400))
		k := 2 + r.Intn(6)
		xp, yp := randomVecParts(r, a, k)

		pairs := func(d *distrib.Distribution) map[int64]bool {
			e, f := d.ExpandFold()
			set := map[int64]bool{}
			for key := range e.Vol {
				set[key] = true
			}
			for key := range f.Vol {
				set[key] = true
			}
			return set
		}
		p1 := pairs(rowwise1D(a, xp, yp, k))
		p2 := pairs(Optimal(a, xp, yp, k))
		if len(p1) != len(p2) {
			t.Fatalf("trial %d: pattern sizes differ: 1D %d, s2D %d", trial, len(p1), len(p2))
		}
		for key := range p1 {
			if !p2[key] {
				t.Fatalf("trial %d: pair %d missing from s2D pattern", trial, key)
			}
		}
	}
}

// TestS2DLatencyEquals1D: the fused s2D schedule has exactly as many
// messages as 1D rowwise on the same vector partition.
func TestS2DLatencyEquals1D(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	a := randomMatrix(r, 200, 200, 2000)
	k := 8
	xp, yp := randomVecParts(r, a, k)
	c1 := rowwise1D(a, xp, yp, k).Comm()
	c2 := Optimal(a, xp, yp, k).Comm()
	if c1.TotalMsgs != c2.TotalMsgs {
		t.Errorf("message counts differ: 1D %d, s2D %d", c1.TotalMsgs, c2.TotalMsgs)
	}
	if c1.MaxSendMsgs != c2.MaxSendMsgs {
		t.Errorf("max send messages differ: 1D %d, s2D %d", c1.MaxSendMsgs, c2.MaxSendMsgs)
	}
}

func TestCollectBlocksDiagonalExcluded(t *testing.T) {
	a := randomMatrix(rand.New(rand.NewSource(9)), 30, 30, 200)
	k := 4
	yp := make([]int, 30)
	for i := range yp {
		yp[i] = i % k
	}
	xp := append([]int(nil), yp...)
	for _, b := range collectBlocks(a, xp, yp, k) {
		if b.l == b.k {
			t.Fatal("diagonal block collected")
		}
		for t2 := range b.entries {
			if yp[b.rows[t2]] != b.l || xp[b.cols[t2]] != b.k {
				t.Fatal("entry in wrong block")
			}
		}
	}
}

func TestGainNonNegative(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for trial := 0; trial < 30; trial++ {
		a := randomMatrix(r, 10+r.Intn(30), 10+r.Intn(30), r.Intn(300))
		k := 2 + r.Intn(5)
		xp, yp := randomVecParts(r, a, k)
		for _, b := range collectBlocks(a, xp, yp, k) {
			if b.gain() < 0 {
				t.Fatalf("negative gain %d (H is %dx%d)", b.gain(), b.mH, b.nH)
			}
		}
	}
}
