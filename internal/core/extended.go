package core

import (
	"sort"

	"repro/internal/distrib"
	"repro/internal/sparse"
)

// BalancedExt implements the extension sketched in the paper's conclusion:
// "more sophisticated heuristics that also take square and vertical blocks
// of off-diagonal blocks into account can be considered ... to mitigate
// this dependency [of the load balance on the vector partition]".
//
// It first runs Algorithm 1 (choices A1/A2). Then, while a part remains
// above the load bound, it considers a third alternative per off-diagonal
// block of that part:
//
//	(A3) A^(k)_ℓk = A_ℓk, A^(ℓ)_ℓk = 0 — the whole block, including its
//	     square and vertical sub-blocks, moves to the column part.
//
// A3's volume is m̂(A_ℓk) (every nonzero row ships one partial), which is
// never below the DM optimum, but it sheds the entire block's load from
// the overloaded row part instead of only the horizontal sub-block.
// Blocks are chosen by the best load-shed per extra volume; the maximum
// load never increases.
func BalancedExt(a *sparse.CSR, xpart, ypart []int, k int, cfg BalanceConfig) *distrib.Distribution {
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = 0.03
	}
	wlim := cfg.Wlim
	if wlim <= 0 {
		wlim = int(float64(a.NNZ())/float64(k)*(1+cfg.Epsilon)) + 1
	}

	owner := baseRowwiseOwner(a, ypart)
	w := make([]int, k)
	for _, o := range owner {
		w[o]++
	}
	blocks := collectBlocks(a, xpart, ypart, k)

	// Phase 1 — Algorithm 1 (A1 → A2 flips in decreasing gain order).
	order := make([]int, len(blocks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		return blocks[order[x]].gain() > blocks[order[y]].gain()
	})
	state := make([]int8, len(blocks)) // 1 = A1, 2 = A2, 3 = A3
	for i := range state {
		state[i] = 1
	}
	for changed := true; changed; {
		changed = false
		for _, bi := range order {
			b := blocks[bi]
			if state[bi] != 1 || len(b.hEntries) == 0 {
				continue
			}
			h := len(b.hEntries)
			if w[b.k]+h <= wlim || (w[b.l] > wlim && w[b.k]+h < w[b.l]) {
				for _, p := range b.hEntries {
					owner[p] = b.k
				}
				w[b.k] += h
				w[b.l] -= h
				state[bi] = 2
				changed = true
			}
		}
	}

	// Phase 2 — A3 escalation for parts still above the bound.
	byRowPart := make([][]int, k)
	for bi, b := range blocks {
		byRowPart[b.l] = append(byRowPart[b.l], bi)
	}
	for changed := true; changed; {
		changed = false
		for l := 0; l < k; l++ {
			if w[l] <= wlim {
				continue
			}
			// Best remaining block of part ℓ: maximize shed per extra
			// volume word.
			best, bestScore := -1, 0.0
			for _, bi := range byRowPart[l] {
				b := blocks[bi]
				if state[bi] == 3 {
					continue
				}
				shed := len(b.entries) - len(b.hEntries)
				if state[bi] == 1 {
					shed = len(b.entries)
				}
				if shed == 0 {
					continue
				}
				if w[b.k]+shed > wlim && w[b.k]+shed >= w[l] {
					continue // receiver would become the new problem
				}
				extra := b.a3ExtraVolume(state[bi])
				score := float64(shed) / float64(maxIntCore(extra, 1))
				if score > bestScore {
					best, bestScore = bi, score
				}
			}
			if best < 0 {
				continue
			}
			b := blocks[best]
			shed := 0
			for t, p := range b.entries {
				_ = t
				if owner[p] == b.l {
					owner[p] = b.k
					shed++
				}
			}
			w[b.k] += shed
			w[b.l] -= shed
			state[best] = 3
			changed = true
		}
	}
	return &distrib.Distribution{A: a, K: k, Owner: owner, XPart: xpart, YPart: ypart, Fused: true}
}

// a3ExtraVolume returns the volume increase of moving this block from its
// current choice to (A3). Current costs: A1 = n̂(A); A2 = m̂(H)+n̂(A−H).
// A3 costs m̂(A).
func (b *block) a3ExtraVolume(state int8) int {
	mA, nA := b.distinctRows(), b.distinctCols()
	var current int
	switch state {
	case 1:
		current = nA
	default:
		current = b.mH + (nA - b.nH) // n̂(S)+n̂(V) = n̂(A) − n̂(H)
	}
	extra := mA - current
	if extra < 0 {
		return extra // A3 can even reduce volume on vertical-ish blocks
	}
	return extra
}

func (b *block) distinctRows() int {
	seen := make(map[int]struct{}, len(b.rows))
	for _, r := range b.rows {
		seen[r] = struct{}{}
	}
	return len(seen)
}

func (b *block) distinctCols() int {
	seen := make(map[int]struct{}, len(b.cols))
	for _, c := range b.cols {
		seen[c] = struct{}{}
	}
	return len(seen)
}

func maxIntCore(a, b int) int {
	if a > b {
		return a
	}
	return b
}
