package core

import (
	"math/rand"
	"testing"
)

func TestNewMesh(t *testing.T) {
	cases := []struct{ k, pr, pc int }{
		{256, 16, 16},
		{1024, 32, 32},
		{4096, 64, 64},
		{64, 8, 8},
		{12, 3, 4},
		{7, 1, 7},
		{1, 1, 1},
	}
	for _, c := range cases {
		m := NewMesh(c.k)
		if m.Pr != c.pr || m.Pc != c.pc {
			t.Errorf("NewMesh(%d) = %v, want %dx%d", c.k, m, c.pr, c.pc)
		}
		if m.Pr*m.Pc != c.k {
			t.Errorf("NewMesh(%d): %d cells for %d parts", c.k, m.Pr*m.Pc, c.k)
		}
	}
}

func TestMeshCoordsRoundTrip(t *testing.T) {
	m := NewMesh(24)
	for k := 0; k < 24; k++ {
		if got := m.PartAt(m.RowOf(k), m.ColOf(k)); got != k {
			t.Fatalf("part %d round-trips to %d", k, got)
		}
	}
}

func TestS2DBLatencyBounded(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	a := randomMatrix(r, 400, 400, 6000)
	const k = 16
	yp := make([]int, a.Rows)
	for i := range yp {
		yp[i] = r.Intn(k)
	}
	xp := append([]int(nil), yp...)
	d := Balanced(a, xp, yp, k, BalanceConfig{})
	mesh := NewMesh(k) // 4x4

	cs := S2DBComm(d, mesh)
	if len(cs.Phases) != 2 {
		t.Fatalf("s2D-b has %d phases, want 2", len(cs.Phases))
	}
	// Phase 1 stays within mesh columns: at most Pr-1 destinations.
	if cs.Phases[0].MaxSendMsgs > mesh.Pr-1 {
		t.Errorf("phase-1 max messages %d > Pr-1 = %d", cs.Phases[0].MaxSendMsgs, mesh.Pr-1)
	}
	// Phase 2 stays within mesh rows: at most Pc-1 destinations.
	if cs.Phases[1].MaxSendMsgs > mesh.Pc-1 {
		t.Errorf("phase-2 max messages %d > Pc-1 = %d", cs.Phases[1].MaxSendMsgs, mesh.Pc-1)
	}
	// Combined bound: O(√K) instead of O(K).
	if cs.MaxSendMsgs > mesh.Pr+mesh.Pc-2 {
		t.Errorf("total max messages %d > Pr+Pc-2 = %d", cs.MaxSendMsgs, mesh.Pr+mesh.Pc-2)
	}
}

func TestS2DBVolumeAtLeastS2D(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		a := randomMatrix(r, 100+r.Intn(200), 100+r.Intn(200), 1000+r.Intn(3000))
		const k = 16
		xp, yp := randomVecParts(r, a, k)
		d := Balanced(a, xp, yp, k, BalanceConfig{})
		direct := d.Comm().TotalVolume
		routed := S2DBComm(d, NewMesh(k)).TotalVolume
		if routed < direct {
			t.Fatalf("trial %d: routed volume %d below direct %d", trial, routed, direct)
		}
		// Two hops can at most double the volume (combining only helps).
		if routed > 2*direct {
			t.Fatalf("trial %d: routed volume %d exceeds 2x direct %d", trial, routed, direct)
		}
	}
}

func TestS2DBMessagesRouteCorrectly(t *testing.T) {
	// Within-mesh-row destination: one direct hop in phase 2 only when the
	// source shares the destination's row... exercise routing on a tiny
	// hand-checkable case: K=4, mesh 2x2. Parts: 0=(0,0) 1=(0,1) 2=(1,0)
	// 3=(1,1).
	mesh := NewMesh(4)
	if mesh.Pr != 2 || mesh.Pc != 2 {
		t.Fatal("unexpected mesh")
	}
	// Source part 0 to destination part 3: intermediate = (row 1, col 0) = part 2.
	mid := mesh.PartAt(mesh.RowOf(3), mesh.ColOf(0))
	if mid != 2 {
		t.Fatalf("intermediate = %d, want 2", mid)
	}
	// Source 0 to destination 1 (same mesh row): intermediate = (0, 0) = source.
	mid2 := mesh.PartAt(mesh.RowOf(1), mesh.ColOf(0))
	if mid2 != 0 {
		t.Fatalf("same-row intermediate = %d, want 0 (the source)", mid2)
	}
	// Source 0 to destination 2 (same mesh column): intermediate = dest.
	mid3 := mesh.PartAt(mesh.RowOf(2), mesh.ColOf(0))
	if mid3 != 2 {
		t.Fatalf("same-col intermediate = %d, want 2 (the destination)", mid3)
	}
}
