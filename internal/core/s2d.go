// Package core implements the paper's primary contribution: semi-two-
// dimensional (s2D) sparse-matrix partitioning for parallel SpMV.
//
// Given a K-way partition of the input vector x and output vector y, an
// s2D partition assigns every nonzero a_ij to the part owning x_j or the
// part owning y_i (Problem 1). This guarantees the paper's computational
// group (iv) — x and y both non-local — is empty, so the expand and fold
// communications fuse into a single Expand-and-Fold phase.
//
// Two construction methods are provided:
//
//   - Optimal (§IV-A): per off-diagonal block, the Dulmage–Mendelsohn
//     decomposition splits nonzeros so the block's communication volume is
//     the provably minimum m̂(H)+n̂(S)+n̂(V);
//   - Balanced (§IV-B, Algorithm 1): starts from 1D rowwise and flips
//     blocks to their DM-optimal split in decreasing gain order, subject to
//     a maximum-load bound.
//
// The latency-bounded s2D-b variant (§VI-B1) lives in s2db.go.
package core

import (
	"sort"

	"repro/internal/bipartite"
	"repro/internal/distrib"
	"repro/internal/sparse"
)

// block is one off-diagonal block A_ℓk induced by the vector partition,
// with its DM decomposition digested into the quantities Algorithm 1 needs.
type block struct {
	l, k     int
	entries  []int // nonzero positions (CSR order) in this block
	rows     []int // matrix row of each entry
	cols     []int // matrix column of each entry
	hEntries []int // positions inside the horizontal block H_ℓk
	mH, nH   int   // m̂(H_ℓk), n̂(H_ℓk)
}

// gain is the volume reduction λ⁻ of switching the block from choice (A1)
// to (A2): n̂(H)−m̂(H). Always ≥ 0.
func (b *block) gain() int { return b.nH - b.mH }

// collectBlocks groups off-diagonal nonzeros by (YPart row, XPart col) and
// runs the DM decomposition of each block.
func collectBlocks(a *sparse.CSR, xpart, ypart []int, k int) []*block {
	byKey := make(map[int64]*block)
	p := 0
	for i := 0; i < a.Rows; i++ {
		l := ypart[i]
		for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
			j := a.ColIdx[q]
			kk := xpart[j]
			if l != kk {
				key := int64(l)*int64(k) + int64(kk)
				b := byKey[key]
				if b == nil {
					b = &block{l: l, k: kk}
					byKey[key] = b
				}
				b.entries = append(b.entries, p)
				b.rows = append(b.rows, i)
				b.cols = append(b.cols, j)
			}
			p++
		}
	}
	blocks := make([]*block, 0, len(byKey))
	for _, b := range byKey { //spmvlint:unordered per-block decomposition; blocks are sorted just below
		decomposeBlock(b)
		blocks = append(blocks, b)
	}
	// Deterministic order (map iteration is random).
	sort.Slice(blocks, func(x, y int) bool {
		if blocks[x].l != blocks[y].l {
			return blocks[x].l < blocks[y].l
		}
		return blocks[x].k < blocks[y].k
	})
	return blocks
}

// decomposeBlock computes the coarse DM decomposition of one block and
// records its horizontal sub-block.
func decomposeBlock(b *block) {
	rowID := make(map[int]int)
	colID := make(map[int]int)
	nr, nc := 0, 0
	coords := make([][2]int, len(b.entries))
	for t := range b.entries {
		ri, ok := rowID[b.rows[t]]
		if !ok {
			ri = nr
			rowID[b.rows[t]] = ri
			nr++
		}
		ci, ok := colID[b.cols[t]]
		if !ok {
			ci = nc
			colID[b.cols[t]] = ci
			nc++
		}
		coords[t] = [2]int{ri, ci}
	}
	g := bipartite.NewGraph(nr, nc)
	for _, rc := range coords {
		g.AddEdge(rc[0], rc[1])
	}
	dm := bipartite.Decompose(g)
	b.mH, b.nH = dm.HRows, dm.HCols
	for t, p := range b.entries {
		rc := coords[t]
		if dm.RowKind[rc[0]] == bipartite.Horizontal && dm.ColKind[rc[1]] == bipartite.Horizontal {
			b.hEntries = append(b.hEntries, p)
		}
	}
}

// baseRowwiseOwner fills Owner with the 1D rowwise assignment (every
// nonzero to its y part) — the paper's choice (A1) for all blocks.
func baseRowwiseOwner(a *sparse.CSR, ypart []int) []int {
	owner := make([]int, a.NNZ())
	p := 0
	for i := 0; i < a.Rows; i++ {
		for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
			owner[p] = ypart[i]
			p++
		}
	}
	return owner
}

// Optimal builds the volume-optimal s2D partition for the given vector
// partition (§IV-A): every off-diagonal block takes its DM split, i.e.,
// the horizontal block H_ℓk goes to the x side P_k and the rest to the
// y side P_ℓ. The total fused-phase volume Σ m̂(H)+n̂(S)+n̂(V) is minimum
// over all s2D partitions with this vector partition, by König duality.
// Load balance is ignored.
func Optimal(a *sparse.CSR, xpart, ypart []int, k int) *distrib.Distribution {
	owner := baseRowwiseOwner(a, ypart)
	for _, b := range collectBlocks(a, xpart, ypart, k) {
		for _, p := range b.hEntries {
			owner[p] = b.k
		}
	}
	return &distrib.Distribution{A: a, K: k, Owner: owner, XPart: xpart, YPart: ypart, Fused: true}
}

// BalanceConfig controls Algorithm 1.
type BalanceConfig struct {
	// Wlim bounds the maximum part load (in nonzeros). Zero means
	// ⌈nnz/K⌉·(1+Epsilon).
	Wlim int
	// Epsilon is the load tolerance used when Wlim is zero; default 0.03.
	Epsilon float64
}

// Balanced builds an s2D partition with Algorithm 1 (§IV-B): start from 1D
// rowwise (choice A1 everywhere), then flip blocks to their DM split (A2)
// in decreasing order of volume gain λ⁻ = n̂(H)−m̂(H), subject to the load
// bound. Flips are final; passes repeat until a full pass makes no flip.
//
// Acceptance rule: a flip into part k is accepted when W_k+|H| ≤ Wlim, or
// — the paper's rescue mode for partitions that start above Wlim — when
// the shedding part ℓ is itself above Wlim and the flip leaves k strictly
// below ℓ's current load. The literal reading of the paper's
// "W_k+|H| ≤ max{W̃, Wlim}" would let any part fill up to the global
// maximum while a dense part is still shedding, which contradicts the
// imbalances the paper reports; this disambiguation keeps the maximum
// load monotonically non-increasing and reproduces those numbers.
func Balanced(a *sparse.CSR, xpart, ypart []int, k int, cfg BalanceConfig) *distrib.Distribution {
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = 0.03
	}
	wlim := cfg.Wlim
	if wlim <= 0 {
		wlim = int(float64(a.NNZ())/float64(k)*(1+cfg.Epsilon)) + 1
	}

	owner := baseRowwiseOwner(a, ypart)
	w := make([]int, k)
	for _, o := range owner {
		w[o]++
	}
	blocks := collectBlocks(a, xpart, ypart, k)
	sort.SliceStable(blocks, func(x, y int) bool { return blocks[x].gain() > blocks[y].gain() })

	flipped := make([]bool, len(blocks))
	for changed := true; changed; {
		changed = false
		for bi, b := range blocks {
			if flipped[bi] || len(b.hEntries) == 0 {
				continue
			}
			h := len(b.hEntries)
			ok := w[b.k]+h <= wlim ||
				(w[b.l] > wlim && w[b.k]+h < w[b.l])
			if !ok {
				continue
			}
			// Flip to (A2): H moves from the row part ℓ to the col part k.
			for _, p := range b.hEntries {
				owner[p] = b.k
			}
			w[b.k] += h
			w[b.l] -= h
			flipped[bi] = true
			changed = true
		}
	}
	return &distrib.Distribution{A: a, K: k, Owner: owner, XPart: xpart, YPart: ypart, Fused: true}
}
