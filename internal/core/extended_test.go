package core

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
)

func TestBalancedExtIsS2D(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		a := randomMatrix(r, 30+r.Intn(60), 30+r.Intn(60), 100+r.Intn(400))
		k := 2 + r.Intn(6)
		xp, yp := randomVecParts(r, a, k)
		d := BalancedExt(a, xp, yp, k, BalanceConfig{})
		if err := d.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !d.IsS2D() {
			t.Fatalf("trial %d: not s2D", trial)
		}
	}
}

// TestBalancedExtImprovesBalance: on a matrix whose dense row defeats
// Algorithm 1 (the horizontal sub-block alone cannot shed enough), the A3
// escalation must cut the maximum load further.
func TestBalancedExtImprovesBalance(t *testing.T) {
	// A matrix with a dense *column* block structure: the dense rows'
	// blocks are mostly square/vertical, so plain Algorithm 1 is stuck.
	m := gen.PowerLaw(gen.PowerLawConfig{
		Rows: 600, Cols: 600, NNZ: 6000, Beta: 0.4,
		DenseRows: 2, DenseMax: 300, Symmetric: true, Locality: 0.9,
	}, 17)
	const k = 16
	yp := make([]int, m.Rows)
	for i := range yp {
		yp[i] = i * k / m.Rows
	}
	xp := append([]int(nil), yp...)

	bal := Balanced(m, xp, yp, k, BalanceConfig{})
	ext := BalancedExt(m, xp, yp, k, BalanceConfig{})
	if got, want := maxLoad(ext), maxLoad(bal); got > want {
		t.Errorf("A3 escalation worsened max load: %d > %d", got, want)
	}
	if !ext.IsS2D() {
		t.Fatal("extended result not s2D")
	}
	t.Logf("1D-induced max load: balanced=%d extended=%d (avg %d)",
		maxLoad(bal), maxLoad(ext), m.NNZ()/k)
}

func TestBalancedExtNeverIncreasesMaxLoad(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	for trial := 0; trial < 20; trial++ {
		a := randomMatrix(r, 50+r.Intn(100), 50+r.Intn(100), 400+r.Intn(800))
		k := 4 + r.Intn(8)
		xp, yp := randomVecParts(r, a, k)
		oneDMax := maxLoad(rowwise1D(a, xp, yp, k))
		extMax := maxLoad(BalancedExt(a, xp, yp, k, BalanceConfig{}))
		// Wlim may exceed the 1D max on easy instances; only the
		// combination bound must hold.
		wlim := int(float64(a.NNZ())/float64(k)*1.03) + 1
		bound := oneDMax
		if wlim > bound {
			bound = wlim
		}
		if extMax > bound {
			t.Fatalf("trial %d: extended max %d above bound %d", trial, extMax, bound)
		}
	}
}

func TestA3ExtraVolume(t *testing.T) {
	// Block with 2 rows and 3 cols, all entries distinct coords:
	// rows {0,0,1}, cols {0,1,2}: m̂(A)=2, n̂(A)=3.
	b := &block{rows: []int{0, 0, 1}, cols: []int{0, 1, 2}, entries: []int{0, 1, 2}}
	decomposeBlock(b)
	// From A1 (cost n̂=3) to A3 (cost m̂=2): extra = -1 (a gain).
	if got := b.a3ExtraVolume(1); got != -1 {
		t.Errorf("extra from A1 = %d, want -1", got)
	}
	// Vertical block: 3 rows, 1 col: m̂=3, n̂=1. A3 extra from A1 = 2.
	v := &block{rows: []int{0, 1, 2}, cols: []int{0, 0, 0}, entries: []int{0, 1, 2}}
	decomposeBlock(v)
	if got := v.a3ExtraVolume(1); got != 2 {
		t.Errorf("vertical extra from A1 = %d, want 2", got)
	}
}

func TestBalancedExtVolumeAtLeastOptimal(t *testing.T) {
	r := rand.New(rand.NewSource(35))
	for trial := 0; trial < 20; trial++ {
		a := randomMatrix(r, 40+r.Intn(60), 40+r.Intn(60), 200+r.Intn(500))
		k := 2 + r.Intn(6)
		xp, yp := randomVecParts(r, a, k)
		vOpt := Optimal(a, xp, yp, k).Comm().TotalVolume
		vExt := BalancedExt(a, xp, yp, k, BalanceConfig{}).Comm().TotalVolume
		if vExt < vOpt {
			t.Fatalf("trial %d: extended volume %d below optimum %d", trial, vExt, vOpt)
		}
	}
}
