package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/sparse"
)

// benchInstance builds a dense-row matrix with a block-contiguous vector
// partition, the setting the s2D builders face in the harness.
func benchInstance(k int) (m *sparse.CSR, xp, yp []int) {
	a := gen.PowerLaw(gen.PowerLawConfig{
		Rows: 20000, Cols: 20000, NNZ: 120000, Beta: 0.5,
		DenseRows: 2, DenseMax: 1500, Symmetric: true, Locality: 0.9,
	}, 1)
	yp = make([]int, a.Rows)
	for i := range yp {
		yp[i] = i * k / a.Rows
	}
	xp = append([]int(nil), yp...)
	return a, xp, yp
}

func BenchmarkOptimal(b *testing.B) {
	a, xp, yp := benchInstance(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Optimal(a, xp, yp, 64)
	}
}

func BenchmarkBalanced(b *testing.B) {
	a, xp, yp := benchInstance(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Balanced(a, xp, yp, 64, BalanceConfig{})
	}
}

func BenchmarkBalancedExt(b *testing.B) {
	a, xp, yp := benchInstance(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BalancedExt(a, xp, yp, 64, BalanceConfig{})
	}
}

func BenchmarkS2DBComm(b *testing.B) {
	a, xp, yp := benchInstance(256)
	d := Balanced(a, xp, yp, 256, BalanceConfig{})
	mesh := NewMesh(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = S2DBComm(d, mesh)
	}
}
