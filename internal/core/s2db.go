package core

import (
	"fmt"

	"repro/internal/distrib"
)

// Mesh maps K parts onto a P_r × P_c virtual processor mesh, the device
// the paper borrows from Boman et al. to bound the per-processor message
// count by O(√K). Part k sits at mesh coordinates (RowOf(k), ColOf(k)).
type Mesh struct {
	Pr, Pc int
}

// NewMesh chooses P_r as the divisor of k closest to √k (from below), so
// the mesh is as square as possible and every mesh cell hosts the same
// number of parts.
func NewMesh(k int) Mesh {
	best := 1
	for d := 1; d*d <= k; d++ {
		if k%d == 0 {
			best = d
		}
	}
	return Mesh{Pr: best, Pc: k / best}
}

// RowOf returns the mesh row of part k.
func (m Mesh) RowOf(k int) int { return k / m.Pc }

// ColOf returns the mesh column of part k.
func (m Mesh) ColOf(k int) int { return k % m.Pc }

// PartAt returns the part at mesh coordinates (r, c).
func (m Mesh) PartAt(r, c int) int { return r*m.Pc + c }

// String renders the mesh as "PrxPc".
func (m Mesh) String() string { return fmt.Sprintf("%dx%d", m.Pr, m.Pc) }

// S2DBComm computes the communication statistics of the latency-bounded
// s2D-b schedule (§VI-B1) for an s2D distribution d on the given mesh.
//
// The fused packet from P_k to P_ℓ is routed through the intermediate
// processor at (RowOf(ℓ), ColOf(k)): phase 1 travels within P_k's mesh
// column, phase 2 within P_ℓ's mesh row. Payloads combine at the
// intermediates — an x_j needed by several destinations in the same mesh
// row is shipped there once, and partial y results for the same y_i
// arriving from different sources in the same mesh column are summed into
// one word before forwarding. Each processor therefore sends fewer than
// P_r messages in phase 1 and fewer than P_c in phase 2, at the price of
// a volume increase over plain s2D (the paper observes ~1.2×).
func S2DBComm(d *distrib.Distribution, mesh Mesh) distrib.CommStats {
	phase1 := distrib.NewMsgAccum(d.K)
	phase2 := distrib.NewMsgAccum(d.K)

	type hop1Key struct{ src, mid, item int }
	type hop2Key struct{ mid, dst, item int }
	seen1 := make(map[hop1Key]struct{})
	seen2 := make(map[hop2Key]struct{})

	route := func(src, dst, itemID int) {
		mid := mesh.PartAt(mesh.RowOf(dst), mesh.ColOf(src))
		if k1 := (hop1Key{src, mid, itemID}); src != mid {
			if _, dup := seen1[k1]; !dup {
				seen1[k1] = struct{}{}
				phase1.Add(src, mid, 1)
			}
		}
		if k2 := (hop2Key{mid, dst, itemID}); mid != dst {
			if _, dup := seen2[k2]; !dup {
				seen2[k2] = struct{}{}
				phase2.Add(mid, dst, 1)
			}
		}
	}

	a := d.A
	// x traffic: x_j goes from its owner to every distinct other part
	// owning a nonzero in column j. Item ids: columns.
	// y traffic: a partial for y_i goes from every distinct other owner in
	// row i to YPart[i]. Item ids: Cols + row index (distinct space).
	mark := make(map[int]struct{}, 8)
	p := 0
	for i := 0; i < a.Rows; i++ {
		clear(mark)
		for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
			o := d.Owner[p]
			p++
			if o == d.YPart[i] {
				continue
			}
			if _, dup := mark[o]; !dup {
				mark[o] = struct{}{}
				route(o, d.YPart[i], a.Cols+i)
			}
		}
	}
	csc := a.ToCSC()
	ownerByCol := make([]int, a.NNZ())
	{
		pos := make([]int, a.Cols)
		copy(pos, csc.ColPtr[:a.Cols])
		pp := 0
		for i := 0; i < a.Rows; i++ {
			for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
				j := a.ColIdx[q]
				ownerByCol[pos[j]] = d.Owner[pp]
				pos[j]++
				pp++
			}
		}
	}
	for j := 0; j < a.Cols; j++ {
		clear(mark)
		for t := csc.ColPtr[j]; t < csc.ColPtr[j+1]; t++ {
			o := ownerByCol[t]
			if o == d.XPart[j] {
				continue
			}
			if _, dup := mark[o]; !dup {
				mark[o] = struct{}{}
				route(d.XPart[j], o, j)
			}
		}
	}
	return distrib.CombineStats(d.K, phase1, phase2)
}
