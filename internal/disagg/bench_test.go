package disagg

import (
	"testing"

	"repro/internal/gen"
)

func BenchmarkSplit(b *testing.B) {
	a := gen.PowerLaw(gen.PowerLawConfig{
		Rows: 50000, Cols: 50000, NNZ: 400000, Beta: 0.5,
		DenseRows: 3, DenseMax: 20000, Symmetric: true,
	}, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Split(a, 128)
	}
}

func BenchmarkDisaggMulVec(b *testing.B) {
	a := gen.PowerLaw(gen.PowerLawConfig{
		Rows: 20000, Cols: 20000, NNZ: 200000, Beta: 0.5,
		DenseRows: 2, DenseMax: 8000, Symmetric: true,
	}, 1)
	d := Split(a, 128)
	x := make([]float64, a.Cols)
	y := make([]float64, a.Rows)
	for i := range x {
		x[i] = float64(i % 13)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.MulVec(x, y)
	}
}
