// Package disagg implements the disaggregation approach of Kuhlemann and
// Vassilevski (SIAM J. Sci. Comput. 2013), discussed in §V of the paper:
// high-degree rows and columns of a scale-free matrix are split into
// bounded-degree copies, embedding A into a larger matrix B with
// duplication operators so that y ← Ax is computed as the triple product
//
//	y ← Qrᵀ (B (Qc x)),
//
// where Qc duplicates split input entries across their copies and Qrᵀ sums
// the partial results of split output rows. Because every row and column
// of B has at most dlim nonzeros, any 1D partition of B bounds the number
// of SpMV messages per processor — an alternative to the paper's s2D-b for
// taming latency, at the price of extra duplication traffic.
package disagg

import (
	"fmt"

	"repro/internal/distrib"
	"repro/internal/sparse"
)

// Disaggregated holds the embedded matrix and the copy maps.
type Disaggregated struct {
	B *sparse.CSR
	// RowOf[r'] is the original row of B row r'; ColOf[c'] likewise.
	RowOf, ColOf []int
	// CopiesOfRow[i] lists the B rows copying original row i; CopiesOfCol
	// likewise for columns.
	CopiesOfRow, CopiesOfCol [][]int
	OrigRows, OrigCols       int
	DLim                     int
}

// Split embeds a into a bounded-degree matrix: any row with more than dlim
// nonzeros is divided into ⌈deg/dlim⌉ row copies, and any column likewise
// into column copies (column splitting is applied after row splitting, on
// the intermediate matrix).
func Split(a *sparse.CSR, dlim int) *Disaggregated {
	if dlim < 2 {
		panic("disagg: dlim must be at least 2")
	}
	// Pass 1 — split rows.
	type entry struct {
		r, c int
		v    float64
	}
	var entries []entry
	rowOf := []int{}
	copiesOfRow := make([][]int, a.Rows)
	for i := 0; i < a.Rows; i++ {
		cols := a.RowCols(i)
		vals := a.RowVals(i)
		if len(cols) == 0 {
			// Keep one (empty) copy so y_i exists.
			rid := len(rowOf)
			rowOf = append(rowOf, i)
			copiesOfRow[i] = []int{rid}
			continue
		}
		for start := 0; start < len(cols); start += dlim {
			rid := len(rowOf)
			rowOf = append(rowOf, i)
			copiesOfRow[i] = append(copiesOfRow[i], rid)
			end := start + dlim
			if end > len(cols) {
				end = len(cols)
			}
			for t := start; t < end; t++ {
				entries = append(entries, entry{r: rid, c: cols[t], v: vals[t]})
			}
		}
	}
	// Pass 2 — split columns of the intermediate matrix.
	colDeg := make([]int, a.Cols)
	for _, e := range entries {
		colDeg[e.c]++
	}
	colOf := []int{}
	copiesOfCol := make([][]int, a.Cols)
	colNext := make([]int, a.Cols) // entries assigned to current copy
	colCur := make([]int, a.Cols)  // current copy id per column
	for j := 0; j < a.Cols; j++ {
		cid := len(colOf)
		colOf = append(colOf, j)
		copiesOfCol[j] = []int{cid}
		colCur[j] = cid
	}
	c := sparse.NewCOO(len(rowOf), 0)
	for _, e := range entries {
		j := e.c
		if colNext[j] == dlim {
			cid := len(colOf)
			colOf = append(colOf, j)
			copiesOfCol[j] = append(copiesOfCol[j], cid)
			colCur[j] = cid
			colNext[j] = 0
		}
		colNext[j]++
		c.Add(e.r, colCur[j], e.v)
	}
	c.Cols = len(colOf)
	return &Disaggregated{
		B:           c.ToCSR(),
		RowOf:       rowOf,
		ColOf:       colOf,
		CopiesOfRow: copiesOfRow,
		CopiesOfCol: copiesOfCol,
		OrigRows:    a.Rows,
		OrigCols:    a.Cols,
		DLim:        dlim,
	}
}

// MulVec computes y ← Qrᵀ(B(Qc x)) serially. It must agree with the
// original matrix's MulVec.
func (d *Disaggregated) MulVec(x, y []float64) {
	if len(x) != d.OrigCols || len(y) != d.OrigRows {
		panic(fmt.Sprintf("disagg: dimension mismatch %d/%d", len(x), len(y)))
	}
	// Qc x: duplicate.
	bx := make([]float64, d.B.Cols)
	for c, j := range d.ColOf {
		bx[c] = x[j]
	}
	by := make([]float64, d.B.Rows)
	d.B.MulVec(bx, by)
	// Qrᵀ: sum copies.
	for i := range y {
		y[i] = 0
	}
	for r, i := range d.RowOf {
		y[i] += by[r]
	}
}

// HomeVectors derives home parts for the original vector entries from a
// partition of B's rows: y_i lives with its first row copy; x_j lives with
// the first B row consuming its first column copy (round-robin for empty
// columns).
func (d *Disaggregated) HomeVectors(bParts []int, k int) (homeX, homeY []int) {
	homeY = make([]int, d.OrigRows)
	for i := 0; i < d.OrigRows; i++ {
		homeY[i] = bParts[d.CopiesOfRow[i][0]]
	}
	homeX = make([]int, d.OrigCols)
	csc := d.B.ToCSC()
	for j := 0; j < d.OrigCols; j++ {
		cid := d.CopiesOfCol[j][0]
		rows := csc.ColRows(cid)
		if len(rows) == 0 {
			homeX[j] = j % k
			continue
		}
		homeX[j] = bParts[rows[0]]
	}
	return homeX, homeY
}

// MaxDegree returns the maximum row and column degree of B (both ≤ DLim by
// construction).
func (d *Disaggregated) MaxDegree() (rowMax, colMax int) {
	s := d.B.ComputeStats()
	return s.DmaxRow, s.DmaxCol
}

// Comm evaluates the communication of the disaggregated SpMV under a 1D
// rowwise partition of B (rows of B and their y copies together, bParts),
// with original vector entries homed as in homeX/homeY. Three phases:
//
//  1. duplication: x_j travels from homeX[j] to every part holding one of
//     its column copies' nonzero owners;
//  2. the B SpMV expand (copy values to B-nonzero owners) — free under 1D
//     rowwise of B because each column copy's consumers are its own rows;
//  3. collection: each part holding row copies of i sends one partial to
//     homeY[i].
//
// The per-processor message count is bounded because every original row
// or column has at most ⌈deg/dlim⌉ copies.
func (d *Disaggregated) Comm(bParts []int, homeX, homeY []int, k int) distrib.CommStats {
	if len(bParts) != d.B.Rows {
		panic("disagg: bParts must partition the rows of B")
	}
	dup := distrib.NewMsgAccum(k)
	col := distrib.NewMsgAccum(k)

	// Owner part of each column copy's consumers: under 1D rowwise of B,
	// x copy c is needed by the parts of B rows with a nonzero in c.
	csc := d.B.ToCSC()
	seen := make(map[[2]int]struct{})
	for cpy := 0; cpy < d.B.Cols; cpy++ {
		j := d.ColOf[cpy]
		for _, r := range csc.ColRows(cpy) {
			p := bParts[r]
			if p == homeX[j] {
				continue
			}
			key := [2]int{j, p}
			if _, dupSeen := seen[key]; !dupSeen {
				seen[key] = struct{}{}
				dup.Add(homeX[j], p, 1)
			}
		}
	}
	// Collection: parts holding copies of row i each send one partial.
	seenY := make(map[[2]int]struct{})
	for r := 0; r < d.B.Rows; r++ {
		i := d.RowOf[r]
		p := bParts[r]
		if p == homeY[i] {
			continue
		}
		key := [2]int{i, p}
		if _, dupSeen := seenY[key]; !dupSeen {
			seenY[key] = struct{}{}
			col.Add(p, homeY[i], 1)
		}
	}
	return distrib.CombineStats(k, dup, col)
}
