package disagg

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/order"
	"repro/internal/sparse"
)

func randomMatrix(r *rand.Rand, rows, cols, nnz int) *sparse.CSR {
	c := sparse.NewCOO(rows, cols)
	for t := 0; t < nnz; t++ {
		c.Add(r.Intn(rows), r.Intn(cols), r.Float64()+0.5)
	}
	return c.ToCSR()
}

func TestSplitBoundsDegrees(t *testing.T) {
	a := gen.PowerLaw(gen.PowerLawConfig{
		Rows: 500, Cols: 500, NNZ: 4000, Beta: 0.5,
		DenseRows: 2, DenseMax: 200, Symmetric: true,
	}, 1)
	for _, dlim := range []int{4, 16, 64} {
		d := Split(a, dlim)
		rowMax, colMax := d.MaxDegree()
		if rowMax > dlim {
			t.Errorf("dlim=%d: row degree %d exceeds bound", dlim, rowMax)
		}
		if colMax > dlim {
			t.Errorf("dlim=%d: col degree %d exceeds bound", dlim, colMax)
		}
		if d.B.NNZ() != a.NNZ() {
			t.Errorf("dlim=%d: nnz changed %d -> %d", dlim, a.NNZ(), d.B.NNZ())
		}
	}
}

func TestSplitCopyCounts(t *testing.T) {
	// Row with 10 nonzeros, dlim 4 -> 3 copies.
	c := sparse.NewCOO(2, 10)
	for j := 0; j < 10; j++ {
		c.Add(0, j, 1)
	}
	c.Add(1, 0, 1)
	a := c.ToCSR()
	d := Split(a, 4)
	if got := len(d.CopiesOfRow[0]); got != 3 {
		t.Errorf("copies of dense row = %d, want 3", got)
	}
	if got := len(d.CopiesOfRow[1]); got != 1 {
		t.Errorf("copies of sparse row = %d, want 1", got)
	}
}

func TestMulVecMatchesOriginal(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		a := randomMatrix(r, 30+r.Intn(80), 30+r.Intn(80), 100+r.Intn(600))
		dlim := 2 + r.Intn(12)
		d := Split(a, dlim)
		x := make([]float64, a.Cols)
		for i := range x {
			x[i] = r.Float64()*2 - 1
		}
		want := make([]float64, a.Rows)
		a.MulVec(x, want)
		got := make([]float64, a.Rows)
		d.MulVec(x, got)
		for i := range want {
			if math.Abs(want[i]-got[i]) > 1e-10*(1+math.Abs(want[i])) {
				t.Fatalf("trial %d dlim %d: y[%d] = %v, want %v", trial, dlim, i, got[i], want[i])
			}
		}
	}
}

func TestMulVecEmptyRows(t *testing.T) {
	c := sparse.NewCOO(3, 3)
	c.Add(0, 0, 2)
	a := c.ToCSR() // rows 1,2 empty
	d := Split(a, 4)
	x := []float64{1, 1, 1}
	y := make([]float64, 3)
	d.MulVec(x, y)
	if y[0] != 2 || y[1] != 0 || y[2] != 0 {
		t.Errorf("y = %v", y)
	}
}

func TestCommBoundsMessages(t *testing.T) {
	// A matrix with one full row: under plain 1D its owner receives ~K
	// messages; after disaggregation each part's fan-in/out is bounded by
	// the number of copies it hosts.
	a := gen.PowerLaw(gen.PowerLawConfig{
		Rows: 800, Cols: 800, NNZ: 6000, Beta: 0.4,
		DenseRows: 1, DenseMax: 700, Symmetric: true, Locality: 0.9,
	}, 3)
	const k = 16
	const dlim = 64
	d := Split(a, dlim)

	// Contiguous partition of B rows by nnz weight; home vectors follow
	// the first copy of each original index.
	weights := make([]int, d.B.Rows)
	for r := 0; r < d.B.Rows; r++ {
		weights[r] = d.B.RowNNZ(r)
	}
	bParts := order.ContiguousParts(d.B.Rows, k, weights)
	homeX := make([]int, a.Cols)
	for j := 0; j < a.Cols; j++ {
		homeX[j] = bParts[d.CopiesOfRow[j%a.Rows][0]]
	}
	homeY := make([]int, a.Rows)
	for i := 0; i < a.Rows; i++ {
		homeY[i] = bParts[d.CopiesOfRow[i][0]]
	}
	cs := d.Comm(bParts, homeX, homeY, k)
	if cs.TotalMsgs == 0 {
		t.Fatal("no communication measured")
	}
	// The dense row has ceil(700/64) = 11 copies: its collection fan-in is
	// at most 11 instead of k-1.
	if cs.Phases[1].MaxRecvMsgs > 12 {
		t.Errorf("collection fan-in %d exceeds copy bound", cs.Phases[1].MaxRecvMsgs)
	}
}

func TestSplitPanicsOnBadDlim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Split accepted dlim < 2")
		}
	}()
	Split(randomMatrix(rand.New(rand.NewSource(1)), 5, 5, 10), 1)
}
