package solver

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/sparse"
)

// tallMatrix builds a deterministic well-conditioned tall matrix:
// banded entries plus a scaled identity block so AᵀA is comfortably
// positive definite.
func tallMatrix(rows, cols int, seed int64) *sparse.CSR {
	r := rand.New(rand.NewSource(seed))
	c := sparse.NewCOO(rows, cols)
	for j := 0; j < cols; j++ {
		c.Add(j, j, 4+r.Float64())
	}
	for i := cols; i < rows; i++ {
		for t := 0; t < 3; t++ {
			c.Add(i, r.Intn(cols), r.Float64()*2-1)
		}
	}
	return c.ToCSR()
}

func mulPair(a *sparse.CSR) (mul, mulT MulVec) {
	at := a.Transpose()
	return a.MulVec, at.MulVec
}

// TestLSQRConsistentSystem solves a rectangular system with an exact
// solution and checks the recovered x.
func TestLSQRConsistentSystem(t *testing.T) {
	a := tallMatrix(120, 40, 7)
	mul, mulT := mulPair(a)
	r := rand.New(rand.NewSource(9))
	want := make([]float64, a.Cols)
	for j := range want {
		want[j] = r.Float64()*2 - 1
	}
	b := make([]float64, a.Rows)
	mul(want, b)

	x := make([]float64, a.Cols)
	res, err := LSQR(mul, mulT, b, x, 1e-12, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("LSQR did not converge: %+v", res)
	}
	for j := range want {
		if math.Abs(x[j]-want[j]) > 1e-8 {
			t.Fatalf("x[%d] = %v, want %v (res %+v)", j, x[j], want[j], res)
		}
	}
}

// TestLSQRLeastSquares solves an inconsistent system and checks the
// least-squares optimality condition Aᵀ(b − Ax) ≈ 0.
func TestLSQRLeastSquares(t *testing.T) {
	a := tallMatrix(150, 30, 13)
	mul, mulT := mulPair(a)
	r := rand.New(rand.NewSource(17))
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = r.Float64()*2 - 1 // generic b: not in range(A)
	}
	x := make([]float64, a.Cols)
	res, err := LSQR(mul, mulT, b, x, 1e-10, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("LSQR did not converge on least-squares system: %+v", res)
	}
	// Optimality: the residual must be orthogonal to the columns of A.
	ax := make([]float64, a.Rows)
	mul(x, ax)
	rres := make([]float64, a.Rows)
	for i := range rres {
		rres[i] = b[i] - ax[i]
	}
	atr := make([]float64, a.Cols)
	mulT(rres, atr)
	norm := math.Sqrt(Dot(atr, atr))
	bnorm := math.Sqrt(Dot(b, b))
	if norm > 1e-6*bnorm {
		t.Fatalf("‖Aᵀr‖ = %v not orthogonal (‖b‖ = %v, res %+v)", norm, bnorm, res)
	}
}

// TestCGNRMatchesLSQR solves the same consistent system with CGNR and
// checks it finds the same solution.
func TestCGNRMatchesLSQR(t *testing.T) {
	a := tallMatrix(100, 25, 23)
	mul, mulT := mulPair(a)
	r := rand.New(rand.NewSource(29))
	want := make([]float64, a.Cols)
	for j := range want {
		want[j] = r.Float64()*4 - 2
	}
	b := make([]float64, a.Rows)
	mul(want, b)

	x := make([]float64, a.Cols)
	res, err := CGNR(mul, mulT, b, x, 1e-12, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("CGNR did not converge: %+v", res)
	}
	for j := range want {
		if math.Abs(x[j]-want[j]) > 1e-7 {
			t.Fatalf("x[%d] = %v, want %v", j, x[j], want[j])
		}
	}
}

// TestCGNRLeastSquares pins the normal-equation optimality on an
// inconsistent system, like the LSQR test.
func TestCGNRLeastSquares(t *testing.T) {
	a := tallMatrix(140, 20, 31)
	mul, mulT := mulPair(a)
	r := rand.New(rand.NewSource(37))
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = r.Float64()*2 - 1
	}
	x := make([]float64, a.Cols)
	res, err := CGNR(mul, mulT, b, x, 1e-10, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("CGNR did not converge: %+v", res)
	}
	ax := make([]float64, a.Rows)
	mul(x, ax)
	rres := make([]float64, a.Rows)
	for i := range rres {
		rres[i] = b[i] - ax[i]
	}
	atr := make([]float64, a.Cols)
	mulT(rres, atr)
	if n := math.Sqrt(Dot(atr, atr)); n > 1e-6 {
		t.Fatalf("‖Aᵀr‖ = %v, want ≈ 0", n)
	}
}

// TestLSQRStopHookAborts verifies the per-iteration hook ends the solve
// with the hook's error.
func TestLSQRStopHookAborts(t *testing.T) {
	a := tallMatrix(80, 30, 41)
	mul, mulT := mulPair(a)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, a.Cols)
	boom := errors.New("abort")
	calls := 0
	_, err := LSQRStop(mul, mulT, b, x, 1e-12, 500, func() error {
		calls++
		if calls >= 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the hook's error", err)
	}
	x2 := make([]float64, a.Cols)
	if _, err := CGNRStop(mul, mulT, b, x2, 1e-12, 500, func() error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("CGNRStop err = %v, want the hook's error", err)
	}
}

// TestLSQRZeroRHS: b = 0 must converge immediately to x = 0.
func TestLSQRZeroRHS(t *testing.T) {
	a := tallMatrix(60, 20, 43)
	mul, mulT := mulPair(a)
	b := make([]float64, a.Rows)
	x := make([]float64, a.Cols)
	res, err := LSQR(mul, mulT, b, x, 1e-10, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("zero RHS should converge trivially: %+v", res)
	}
	for j := range x {
		if x[j] != 0 {
			t.Fatalf("x[%d] = %v, want 0", j, x[j])
		}
	}
}

// TestLSQRDimensionErrors rejects empty systems.
func TestLSQRDimensionErrors(t *testing.T) {
	if _, err := LSQR(nil, nil, nil, []float64{1}, 1e-8, 10); !errors.Is(err, ErrDimension) {
		t.Fatalf("empty b: err = %v, want ErrDimension", err)
	}
	if _, err := CGNR(nil, nil, []float64{1}, nil, 1e-8, 10); !errors.Is(err, ErrDimension) {
		t.Fatalf("empty x: err = %v, want ErrDimension", err)
	}
}
