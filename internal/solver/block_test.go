package solver

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sparse"
)

// blockSystem builds nrhs random exact solutions and the matching
// column-blocked right-hand sides for a.
func blockSystem(a *sparse.CSR, nrhs int, seed int64) (xStar, B []float64) {
	r := rand.New(rand.NewSource(seed))
	n := a.Rows
	xStar = make([]float64, n*nrhs)
	for i := range xStar {
		xStar[i] = r.Float64()*2 - 1
	}
	B = make([]float64, n*nrhs)
	x := make([]float64, n)
	b := make([]float64, n)
	for c := 0; c < nrhs; c++ {
		for i := 0; i < n; i++ {
			x[i] = xStar[i*nrhs+c]
		}
		a.MulVec(x, b)
		for i := 0; i < n; i++ {
			B[i*nrhs+c] = b[i]
		}
	}
	return xStar, B
}

func TestBlockCGSolvesLaplacian(t *testing.T) {
	a := spd()
	const nrhs = 5
	xStar, B := blockSystem(a, nrhs, 3)
	X := make([]float64, a.Rows*nrhs)
	res, err := BlockCG(SingleBlock(a.MulVec, a.Cols), B, X, nrhs, 1e-10, 2000)
	if err != nil {
		t.Fatal(err)
	}
	for c, rc := range res {
		if !rc.Converged {
			t.Fatalf("column %d did not converge: %+v", c, rc)
		}
	}
	for i := range X {
		if math.Abs(X[i]-xStar[i]) > 1e-6 {
			t.Fatalf("X[%d] = %v, want %v", i, X[i], xStar[i])
		}
	}
}

// TestBlockCGMatchesSingleCG pins each column of BlockCG to the result of
// an independent single-vector CG run: the per-column recurrences use the
// same floating-point order, so iteration counts and solutions agree.
func TestBlockCGMatchesSingleCG(t *testing.T) {
	a := spd()
	const nrhs = 3
	_, B := blockSystem(a, nrhs, 7)
	X := make([]float64, a.Rows*nrhs)
	res, err := BlockCG(SingleBlock(a.MulVec, a.Cols), B, X, nrhs, 1e-8, 2000)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < nrhs; c++ {
		b := Column(B, nrhs, c)
		x := make([]float64, a.Rows)
		single, err := CG(a.MulVec, b, x, 1e-8, 2000)
		if err != nil {
			t.Fatal(err)
		}
		if single.Iterations != res[c].Iterations || single.Converged != res[c].Converged {
			t.Fatalf("column %d: block %+v, single %+v", c, res[c], single)
		}
		for i := range x {
			if got := X[i*nrhs+c]; math.Abs(got-x[i]) > 1e-9 {
				t.Fatalf("column %d x[%d] = %v, single CG %v", c, i, got, x[i])
			}
		}
	}
}

func TestBlockCGDimensionError(t *testing.T) {
	a := spd()
	mul := SingleBlock(a.MulVec, a.Cols)
	if _, err := BlockCG(mul, make([]float64, 10), make([]float64, 8), 2, 1e-8, 5); err != ErrDimension {
		t.Fatalf("err = %v, want ErrDimension", err)
	}
	if _, err := BlockCG(mul, make([]float64, 10), make([]float64, 10), 0, 1e-8, 5); err != ErrDimension {
		t.Fatalf("nrhs=0: err = %v, want ErrDimension", err)
	}
	if _, err := BlockCG(mul, make([]float64, 10), make([]float64, 10), 3, 1e-8, 5); err != ErrDimension {
		t.Fatalf("len%%nrhs != 0: err = %v, want ErrDimension", err)
	}
}

// TestBlockCGFreezesIndefiniteColumn mixes a well-posed SPD column with a
// breakdown: on -I every column hits pᵀAp < 0 immediately and must come
// back unconverged rather than poisoning the run.
func TestBlockCGFreezesIndefiniteColumn(t *testing.T) {
	c := sparse.NewCOO(4, 4)
	for i := 0; i < 4; i++ {
		c.Add(i, i, -1)
	}
	a := c.ToCSR()
	const nrhs = 2
	B := PackColumns([][]float64{{1, 2, 3, 4}, {4, 3, 2, 1}})
	X := make([]float64, 4*nrhs)
	res, err := BlockCG(SingleBlock(a.MulVec, a.Cols), B, X, nrhs, 1e-8, 10)
	if err != nil {
		t.Fatal(err)
	}
	for cIdx, rc := range res {
		if rc.Converged {
			t.Fatalf("column %d converged on an indefinite matrix: %+v", cIdx, rc)
		}
	}
}

func TestBlockBiCGSTABSolvesUnsymmetric(t *testing.T) {
	a := unsymmetricDominant(300, 5)
	const nrhs = 4
	xStar, B := blockSystem(a, nrhs, 11)
	X := make([]float64, a.Rows*nrhs)
	res, err := BlockBiCGSTAB(SingleBlock(a.MulVec, a.Cols), B, X, nrhs, 1e-10, 500)
	if err != nil {
		t.Fatal(err)
	}
	for c, rc := range res {
		if !rc.Converged {
			t.Fatalf("column %d did not converge: %+v", c, rc)
		}
	}
	for i := range X {
		if math.Abs(X[i]-xStar[i]) > 1e-5 {
			t.Fatalf("X[%d] = %v, want %v", i, X[i], xStar[i])
		}
	}
}

// TestBlockBiCGSTABMatchesSingle pins each column to the single-vector
// BiCGSTAB trajectory.
func TestBlockBiCGSTABMatchesSingle(t *testing.T) {
	a := unsymmetricDominant(200, 9)
	const nrhs = 3
	_, B := blockSystem(a, nrhs, 13)
	X := make([]float64, a.Rows*nrhs)
	res, err := BlockBiCGSTAB(SingleBlock(a.MulVec, a.Cols), B, X, nrhs, 1e-9, 500)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < nrhs; c++ {
		b := Column(B, nrhs, c)
		x := make([]float64, a.Rows)
		single, err := BiCGSTAB(a.MulVec, b, x, 1e-9, 500)
		if err != nil {
			t.Fatal(err)
		}
		if single.Iterations != res[c].Iterations || single.Converged != res[c].Converged {
			t.Fatalf("column %d: block %+v, single %+v", c, res[c], single)
		}
		for i := range x {
			if got := X[i*nrhs+c]; math.Abs(got-x[i]) > 1e-8*(1+math.Abs(x[i])) {
				t.Fatalf("column %d x[%d] = %v, single %v", c, i, got, x[i])
			}
		}
	}
}

// ring returns the column-stochastic transition matrix of a directed
// n-cycle.
func ring(n int) *sparse.CSR {
	c := sparse.NewCOO(n, n)
	for j := 0; j < n; j++ {
		c.Add((j+1)%n, j, 1)
	}
	return c.ToCSR()
}

// TestPageRankMultiUniformMatchesSingle runs nrhs uniform columns and
// checks each against the single-vector PageRank.
func TestPageRankMultiUniformMatchesSingle(t *testing.T) {
	m := ring(40)
	n := m.Rows
	const nrhs = 3
	R, res := PageRankMulti(SingleBlock(m.MulVec, n), n, nrhs, nil, 0.85, 1e-12, 200)
	single, sres := PageRank(m.MulVec, n, 0.85, 1e-12, 200)
	for c := 0; c < nrhs; c++ {
		if res[c].Iterations != sres.Iterations || res[c].Converged != sres.Converged {
			t.Fatalf("column %d: block %+v, single %+v", c, res[c], sres)
		}
		for i := 0; i < n; i++ {
			if got := R[i*nrhs+c]; math.Abs(got-single[i]) > 1e-12 {
				t.Fatalf("column %d r[%d] = %v, single %v", c, i, got, single[i])
			}
		}
	}
}

// TestPageRankMultiPersonalized checks that personalized columns remain
// probability vectors and concentrate mass near their seed vertex.
func TestPageRankMultiPersonalized(t *testing.T) {
	m := ring(30)
	n := m.Rows
	const nrhs = 2
	E := make([]float64, n*nrhs)
	E[0*nrhs+0] = 1  // column 0 teleports to vertex 0
	E[15*nrhs+1] = 1 // column 1 teleports to vertex 15
	R, res := PageRankMulti(SingleBlock(m.MulVec, n), n, nrhs, E, 0.85, 1e-12, 500)
	for c := 0; c < nrhs; c++ {
		if !res[c].Converged {
			t.Fatalf("column %d did not converge: %+v", c, res[c])
		}
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += R[i*nrhs+c]
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("column %d mass = %v, want 1", c, sum)
		}
	}
	if R[0*nrhs+0] <= R[15*nrhs+0] || R[15*nrhs+1] <= R[0*nrhs+1] {
		t.Fatalf("personalization did not concentrate mass at the seeds")
	}
}

func TestBlockDots(t *testing.T) {
	a := []float64{1, 10, 2, 20, 3, 30}
	b := []float64{2, 1, 2, 1, 2, 1}
	out := make([]float64, 2)
	BlockDots(a, b, 2, out)
	if out[0] != 12 || out[1] != 60 {
		t.Fatalf("BlockDots = %v, want [12 60]", out)
	}
}
