package solver

import (
	"errors"
	"math"
)

// BiCGSTAB solves Ax = b for general (unsymmetric) A — the solver class
// behind the paper's circuit-simulation matrices. x is both the initial
// guess and the output.
func BiCGSTAB(mul MulVec, b, x []float64, tol float64, maxIter int) (Result, error) {
	n := len(b)
	if len(x) != n {
		return Result{}, ErrDimension
	}
	r := make([]float64, n)
	mul(x, r)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	rHat := append([]float64(nil), r...)
	v := make([]float64, n)
	p := make([]float64, n)
	s := make([]float64, n)
	t := make([]float64, n)

	rho, alpha, omega := 1.0, 1.0, 1.0
	bNorm := math.Sqrt(Dot(b, b))
	if bNorm == 0 {
		bNorm = 1
	}
	var res Result
	for res.Iterations = 0; res.Iterations < maxIter; res.Iterations++ {
		res.Residual = math.Sqrt(Dot(r, r)) / bNorm
		if res.Residual < tol {
			res.Converged = true
			return res, nil
		}
		rhoNew := Dot(rHat, r)
		if rhoNew == 0 {
			return res, errors.New("solver: BiCGSTAB breakdown (rho = 0)")
		}
		beta := (rhoNew / rho) * (alpha / omega)
		rho = rhoNew
		for i := range p {
			p[i] = r[i] + beta*(p[i]-omega*v[i])
		}
		mul(p, v)
		den := Dot(rHat, v)
		if den == 0 {
			return res, errors.New("solver: BiCGSTAB breakdown (rHat·v = 0)")
		}
		alpha = rho / den
		for i := range s {
			s[i] = r[i] - alpha*v[i]
		}
		if math.Sqrt(Dot(s, s))/bNorm < tol {
			for i := range x {
				x[i] += alpha * p[i]
			}
			res.Iterations++
			res.Residual = math.Sqrt(Dot(s, s)) / bNorm
			res.Converged = true
			return res, nil
		}
		mul(s, t)
		tt := Dot(t, t)
		if tt == 0 {
			return res, errors.New("solver: BiCGSTAB breakdown (t = 0)")
		}
		omega = Dot(t, s) / tt
		if omega == 0 {
			return res, errors.New("solver: BiCGSTAB breakdown (omega = 0)")
		}
		for i := range x {
			x[i] += alpha*p[i] + omega*s[i]
			r[i] = s[i] - omega*t[i]
		}
	}
	res.Residual = math.Sqrt(Dot(r, r)) / bNorm
	res.Converged = res.Residual < tol
	return res, nil
}
