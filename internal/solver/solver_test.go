package solver

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/sparse"
)

// spd returns a small SPD system via the 2D Laplacian.
func spd() *sparse.CSR {
	return gen.Laplace2D(20, 20, false)
}

func TestCGSolvesLaplacian(t *testing.T) {
	a := spd()
	n := a.Rows
	r := rand.New(rand.NewSource(1))
	xStar := make([]float64, n)
	for i := range xStar {
		xStar[i] = r.Float64()*2 - 1
	}
	b := make([]float64, n)
	a.MulVec(xStar, b)

	x := make([]float64, n)
	res, err := CG(a.MulVec, b, x, 1e-10, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("CG did not converge: %+v", res)
	}
	for i := range x {
		if math.Abs(x[i]-xStar[i]) > 1e-6 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], xStar[i])
		}
	}
}

func TestCGStopAbortsMidSolve(t *testing.T) {
	a := spd()
	n := a.Rows
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	stopErr := errors.New("client went away")
	calls := 0
	stop := func() error {
		calls++
		if calls > 3 {
			return stopErr
		}
		return nil
	}
	x := make([]float64, n)
	res, err := CGStop(a.MulVec, b, x, 1e-12, 2000, stop)
	if !errors.Is(err, stopErr) {
		t.Fatalf("err = %v, want the stop error", err)
	}
	if res.Converged {
		t.Fatal("aborted solve reported convergence")
	}
	if res.Iterations != 3 {
		t.Fatalf("iterations = %d, want 3 (aborted on the 4th check)", res.Iterations)
	}
}

func TestCGStopNilNeverStops(t *testing.T) {
	a := spd()
	b := make([]float64, a.Rows)
	b[0] = 1
	x := make([]float64, a.Rows)
	res, err := CGStop(a.MulVec, b, x, 1e-10, 2000, nil)
	if err != nil || !res.Converged {
		t.Fatalf("nil stop hook must behave like CG: res=%+v err=%v", res, err)
	}
}

func TestCGDimensionError(t *testing.T) {
	a := spd()
	if _, err := CG(a.MulVec, make([]float64, a.Rows), make([]float64, 3), 1e-8, 10); err != ErrDimension {
		t.Fatalf("err = %v, want ErrDimension", err)
	}
}

func TestCGRejectsIndefinite(t *testing.T) {
	// A = -I is negative definite: pᵀAp < 0 on the first step.
	c := sparse.NewCOO(4, 4)
	for i := 0; i < 4; i++ {
		c.Add(i, i, -1)
	}
	a := c.ToCSR()
	b := []float64{1, 2, 3, 4}
	x := make([]float64, 4)
	if _, err := CG(a.MulVec, b, x, 1e-8, 10); err == nil {
		t.Fatal("CG accepted an indefinite matrix")
	}
}

func TestJacobiSolvesDominantSystem(t *testing.T) {
	a := gen.Laplace2D(10, 10, false) // diagonally dominant
	n := a.Rows
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			if a.ColIdx[p] == i {
				diag[i] = a.Val[p]
			}
		}
	}
	xStar := make([]float64, n)
	for i := range xStar {
		xStar[i] = float64(i%5) - 2
	}
	b := make([]float64, n)
	a.MulVec(xStar, b)
	x := make([]float64, n)
	res, err := Jacobi(a.MulVec, diag, b, x, 0.8, 1e-9, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("Jacobi did not converge: %+v", res)
	}
}

func TestJacobiZeroDiagonal(t *testing.T) {
	diag := []float64{1, 0}
	if _, err := Jacobi(nil, diag, make([]float64, 2), make([]float64, 2), 1, 1e-8, 5); err == nil {
		t.Fatal("Jacobi accepted a zero diagonal")
	}
}

func TestPowerIterationDiagonal(t *testing.T) {
	// Diagonal matrix: dominant eigenvalue is the max diagonal entry.
	c := sparse.NewCOO(4, 4)
	for i, v := range []float64{1, 3, 7, 2} {
		c.Add(i, i, v)
	}
	a := c.ToCSR()
	v := []float64{1, 1, 1, 1}
	lambda, res, err := PowerIteration(a.MulVec, v, 1e-12, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %+v", res)
	}
	if math.Abs(lambda-7) > 1e-6 {
		t.Errorf("lambda = %v, want 7", lambda)
	}
	// Eigenvector concentrated on index 2.
	if math.Abs(math.Abs(v[2])-1) > 1e-4 {
		t.Errorf("eigenvector = %v", v)
	}
}

func TestPageRankUniformOnCycle(t *testing.T) {
	// A directed cycle is doubly stochastic: PageRank is uniform.
	const n = 8
	c := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add((i+1)%n, i, 1) // column-stochastic: col i -> row i+1
	}
	a := c.ToCSR()
	r, res := PageRank(a.MulVec, n, 0.85, 1e-12, 1000)
	if !res.Converged {
		t.Fatalf("not converged: %+v", res)
	}
	for i := range r {
		if math.Abs(r[i]-1.0/n) > 1e-9 {
			t.Errorf("r[%d] = %v, want uniform", i, r[i])
		}
	}
}

func TestDotAndNormalize(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Error("Dot wrong")
	}
	v := []float64{3, 4}
	Normalize(v)
	if math.Abs(v[0]-0.6) > 1e-15 || math.Abs(v[1]-0.8) > 1e-15 {
		t.Errorf("Normalize = %v", v)
	}
	z := []float64{0, 0}
	Normalize(z) // must not NaN
	if z[0] != 0 {
		t.Error("zero vector changed")
	}
}
