package solver

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sparse"
)

// unsymmetricDominant builds a random diagonally dominant unsymmetric
// matrix (guaranteed nonsingular).
func unsymmetricDominant(n int, seed int64) *sparse.CSR {
	r := rand.New(rand.NewSource(seed))
	c := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		var off float64
		for t := 0; t < 4; t++ {
			j := r.Intn(n)
			if j == i {
				continue
			}
			v := r.Float64()*2 - 1
			off += math.Abs(v)
			c.Add(i, j, v)
		}
		c.Add(i, i, off+1+r.Float64())
	}
	return c.ToCSR()
}

func TestBiCGSTABSolvesUnsymmetric(t *testing.T) {
	for _, n := range []int{50, 300} {
		a := unsymmetricDominant(n, int64(n))
		r := rand.New(rand.NewSource(3))
		xStar := make([]float64, n)
		for i := range xStar {
			xStar[i] = r.Float64()*2 - 1
		}
		b := make([]float64, n)
		a.MulVec(xStar, b)
		x := make([]float64, n)
		res, err := BiCGSTAB(a.MulVec, b, x, 1e-10, 2000)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !res.Converged {
			t.Fatalf("n=%d: not converged: %+v", n, res)
		}
		for i := range x {
			if math.Abs(x[i]-xStar[i]) > 1e-6 {
				t.Fatalf("n=%d: x[%d] = %v, want %v", n, i, x[i], xStar[i])
			}
		}
	}
}

func TestBiCGSTABDimensionError(t *testing.T) {
	if _, err := BiCGSTAB(nil, make([]float64, 4), make([]float64, 2), 1e-8, 5); err != ErrDimension {
		t.Fatalf("err = %v", err)
	}
}

func TestBiCGSTABZeroRHS(t *testing.T) {
	a := unsymmetricDominant(20, 9)
	b := make([]float64, 20)
	x := make([]float64, 20)
	res, err := BiCGSTAB(a.MulVec, b, x, 1e-12, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("zero system should converge immediately")
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("nonzero solution for zero system")
		}
	}
}
