package solver_test

import (
	"testing"

	"repro/internal/baselines"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/spmv"
)

// laplacian1D builds the SPD tridiagonal [-1, 2+eps, -1] system — the
// iterative-workload stand-in: every CG iteration repeats the same SpMV
// communication pattern.
func laplacian1D(n int) *sparse.CSR {
	c := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 2.001)
		if i > 0 {
			c.Add(i, i-1, -1)
		}
		if i < n-1 {
			c.Add(i, i+1, -1)
		}
	}
	return c.ToCSR()
}

// BenchmarkCGEngineBacked measures a full CG solve driven by the parallel
// engine. With compiled plans and persistent workers the only allocations
// are CG's own work vectors, built once per solve — iterations themselves
// are allocation-free.
func BenchmarkCGEngineBacked(b *testing.B) {
	a := laplacian1D(20000)
	d := baselines.Rowwise1D(a, 8, baselines.Options{Seed: 1})
	eng, err := spmv.NewEngine(d)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(eng.Close)
	rhs := make([]float64, a.Rows)
	for i := range rhs {
		rhs[i] = 1
	}
	x := make([]float64, a.Rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range x {
			x[j] = 0
		}
		mul := func(xv, yv []float64) {
			if err := eng.Multiply(xv, yv); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := solver.CG(mul, rhs, x, 1e-8, 500); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCGSerialBaseline is the serial reference for the benchmark
// above, so the engine's parallel overhead stays visible in the trend.
func BenchmarkCGSerialBaseline(b *testing.B) {
	a := laplacian1D(20000)
	rhs := make([]float64, a.Rows)
	for i := range rhs {
		rhs[i] = 1
	}
	x := make([]float64, a.Rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range x {
			x[j] = 0
		}
		if _, err := solver.CG(a.MulVec, rhs, x, 1e-8, 500); err != nil {
			b.Fatal(err)
		}
	}
}
