// Least-squares solvers over the Ax / Aᵀx pair. A rectangular system
// min ‖Ax − b‖₂ needs both products every iteration; the distributed
// engines provide the transpose from the same compiled plan with the
// phases reversed, so the partitioning quality the paper optimizes
// compounds over both directions at once.

package solver

import "math"

// LSQR solves min ‖Ax − b‖₂ with the Paige–Saunders Golub–Kahan
// bidiagonalization method. mul computes y ← Ax (x length n, y length
// m = len(b)); mulT computes y ← Aᵀx (x length m, y length n). x is
// both the initial guess and the output. Convergence is declared when
// the relative residual ‖r‖/‖b‖ drops below tol (consistent systems)
// or the normal-equation residual estimate ‖Aᵀr‖/(‖A‖·‖r‖) does
// (inconsistent least-squares systems).
func LSQR(mul, mulT MulVec, b, x []float64, tol float64, maxIter int) (Result, error) {
	return LSQRStop(mul, mulT, b, x, tol, maxIter, nil)
}

// LSQRStop is LSQR with a per-iteration abort hook for serving callers,
// mirroring CGStop: stop (nil means never) runs before each iteration,
// and a non-nil return ends the solve immediately with that error and
// the progress so far in Result.
func LSQRStop(mul, mulT MulVec, b, x []float64, tol float64, maxIter int, stop func() error) (Result, error) {
	m, n := len(b), len(x)
	if m == 0 || n == 0 {
		return Result{}, ErrDimension
	}
	u := make([]float64, m)
	v := make([]float64, n)
	w := make([]float64, n)
	tmpM := make([]float64, m)
	tmpN := make([]float64, n)

	// β₁ u₁ = b − A x₀; α₁ v₁ = Aᵀ u₁.
	mul(x, tmpM)
	for i := range u {
		u[i] = b[i] - tmpM[i]
	}
	beta := math.Sqrt(Dot(u, u))
	bNorm := math.Sqrt(Dot(b, b))
	if bNorm == 0 {
		bNorm = 1
	}
	var res Result
	if beta == 0 {
		// x₀ already solves the system exactly.
		res.Converged = true
		return res, nil
	}
	scale(u, 1/beta)
	mulT(u, v)
	alpha := math.Sqrt(Dot(v, v))
	if alpha == 0 {
		// Aᵀr = 0: x₀ is already a least-squares solution.
		res.Residual = beta / bNorm
		res.Converged = true
		return res, nil
	}
	scale(v, 1/alpha)
	copy(w, v)

	phiBar := beta
	rhoBar := alpha
	aNorm := 0.0 // Frobenius-norm estimate of A, grown per iteration

	for res.Iterations = 0; res.Iterations < maxIter; res.Iterations++ {
		res.Residual = phiBar / bNorm
		if res.Residual < tol {
			res.Converged = true
			return res, nil
		}
		if stop != nil {
			if err := stop(); err != nil {
				return res, err
			}
		}
		aNorm = math.Sqrt(aNorm*aNorm + alpha*alpha + beta*beta)

		// Bidiagonalization step: β u ← A v − α u; α v ← Aᵀ u − β v.
		mul(v, tmpM)
		for i := range u {
			u[i] = tmpM[i] - alpha*u[i]
		}
		beta = math.Sqrt(Dot(u, u))
		if beta > 0 {
			scale(u, 1/beta)
		}
		mulT(u, tmpN)
		for i := range v {
			v[i] = tmpN[i] - beta*v[i]
		}
		alpha = math.Sqrt(Dot(v, v))
		if alpha > 0 {
			scale(v, 1/alpha)
		}

		// Givens rotation eliminating β from the lower bidiagonal.
		rho := math.Hypot(rhoBar, beta)
		c := rhoBar / rho
		s := beta / rho
		theta := s * alpha
		rhoBar = -c * alpha
		phi := c * phiBar
		phiBar = s * phiBar

		// Update the iterate and the search direction.
		t1 := phi / rho
		t2 := -theta / rho
		for i := range x {
			x[i] += t1 * w[i]
			w[i] = v[i] + t2*w[i]
		}

		// Least-squares convergence: ‖Aᵀr‖ = φ̄·α·|c|, so
		// ‖Aᵀr‖/(‖A‖·‖r‖) = α·|c|/‖A‖ — tiny means the residual is
		// orthogonal to range(A).
		if aNorm > 0 && alpha*math.Abs(c)/aNorm < tol {
			res.Iterations++
			res.Residual = phiBar / bNorm
			res.Converged = true
			return res, nil
		}
	}
	res.Residual = phiBar / bNorm
	res.Converged = res.Residual < tol
	return res, nil
}

// CGNR solves min ‖Ax − b‖₂ by conjugate gradients on the normal
// equations AᵀA x = Aᵀb (the CGLS recurrence, which avoids forming
// AᵀA). mul and mulT are as in LSQR. The residual reported is the
// normal-equation residual ‖Aᵀ(b − Ax)‖ relative to ‖Aᵀb‖ — the
// quantity that reaches zero at a least-squares solution even when
// ‖Ax − b‖ cannot.
func CGNR(mul, mulT MulVec, b, x []float64, tol float64, maxIter int) (Result, error) {
	return CGNRStop(mul, mulT, b, x, tol, maxIter, nil)
}

// CGNRStop is CGNR with the per-iteration abort hook of CGStop.
func CGNRStop(mul, mulT MulVec, b, x []float64, tol float64, maxIter int, stop func() error) (Result, error) {
	m, n := len(b), len(x)
	if m == 0 || n == 0 {
		return Result{}, ErrDimension
	}
	r := make([]float64, m) // residual b − Ax
	s := make([]float64, n) // normal-equation residual Aᵀr
	p := make([]float64, n)
	q := make([]float64, m)

	mul(x, q)
	for i := range r {
		r[i] = b[i] - q[i]
	}
	mulT(r, s)
	copy(p, s)
	gamma := Dot(s, s)

	// ‖Aᵀb‖ normalizes the reported residual; fall back to the initial
	// ‖Aᵀr‖ when b = 0 (then any nonzero x₀ drives the iteration).
	atb := make([]float64, n)
	mulT(b, atb)
	sNorm0 := math.Sqrt(Dot(atb, atb))
	if sNorm0 == 0 {
		sNorm0 = math.Sqrt(gamma)
	}
	if sNorm0 == 0 {
		sNorm0 = 1
	}

	var res Result
	for res.Iterations = 0; res.Iterations < maxIter; res.Iterations++ {
		res.Residual = math.Sqrt(gamma) / sNorm0
		if res.Residual < tol {
			res.Converged = true
			return res, nil
		}
		if stop != nil {
			if err := stop(); err != nil {
				return res, err
			}
		}
		mul(p, q)
		qq := Dot(q, q)
		if qq == 0 {
			// p in the null space of A: the normal equations are singular
			// along this direction; the current x is as good as it gets.
			return res, nil
		}
		alpha := gamma / qq
		for i := range x {
			x[i] += alpha * p[i]
		}
		for i := range r {
			r[i] -= alpha * q[i]
		}
		mulT(r, s)
		gammaNew := Dot(s, s)
		betaK := gammaNew / gamma
		for i := range p {
			p[i] = s[i] + betaK*p[i]
		}
		gamma = gammaNew
	}
	res.Residual = math.Sqrt(gamma) / sNorm0
	res.Converged = res.Residual < tol
	return res, nil
}

func scale(v []float64, s float64) {
	for i := range v {
		v[i] *= s
	}
}
