// Package solver provides the iterative methods that motivate SpMV
// partitioning quality: the same communication pattern repeats every
// iteration, so the volume, latency, and balance the partitioners optimize
// compound over hundreds of multiplies. All solvers take the multiply as a
// function, so the serial reference and the distributed engines plug in
// interchangeably.
package solver

import (
	"errors"
	"math"
)

// MulVec computes y ← Ax; implementations include (*sparse.CSR).MulVec,
// (*spmv.Engine).Multiply, and (*spmv.RoutedEngine).Multiply.
type MulVec func(x, y []float64)

// Result reports a solver run.
type Result struct {
	Iterations int
	Residual   float64 // relative residual at exit
	Converged  bool
}

// ErrDimension is returned when vector sizes disagree.
var ErrDimension = errors.New("solver: dimension mismatch")

// CG solves Ax = b for symmetric positive definite A. x is both the
// initial guess and the output. n is the system dimension.
func CG(mul MulVec, b, x []float64, tol float64, maxIter int) (Result, error) {
	return CGStop(mul, b, x, tol, maxIter, nil)
}

// CGStop is CG with a per-iteration abort hook for serving callers: stop
// (nil means never) runs before each iteration, and a non-nil return —
// a cancelled request context, a failed pooled multiply — ends the solve
// immediately with that error and the progress so far in Result.
func CGStop(mul MulVec, b, x []float64, tol float64, maxIter int, stop func() error) (Result, error) {
	n := len(b)
	if len(x) != n {
		return Result{}, ErrDimension
	}
	r := make([]float64, n)
	ap := make([]float64, n)
	mul(x, ap)
	for i := range r {
		r[i] = b[i] - ap[i]
	}
	p := append([]float64(nil), r...)
	rr := Dot(r, r)
	bNorm := math.Sqrt(Dot(b, b))
	if bNorm == 0 {
		bNorm = 1
	}
	var res Result
	for res.Iterations = 0; res.Iterations < maxIter; res.Iterations++ {
		res.Residual = math.Sqrt(rr) / bNorm
		if res.Residual < tol {
			res.Converged = true
			return res, nil
		}
		if stop != nil {
			if err := stop(); err != nil {
				return res, err
			}
		}
		mul(p, ap)
		pap := Dot(p, ap)
		if pap <= 0 {
			return res, errors.New("solver: matrix not positive definite (pᵀAp <= 0)")
		}
		alpha := rr / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rrNew := Dot(r, r)
		beta := rrNew / rr
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rr = rrNew
	}
	res.Residual = math.Sqrt(rr) / bNorm
	res.Converged = res.Residual < tol
	return res, nil
}

// Jacobi solves Ax = b with the weighted Jacobi iteration
// x ← x + ω D⁻¹ (b − Ax). diag must hold A's diagonal (nonzero entries).
func Jacobi(mul MulVec, diag, b, x []float64, omega, tol float64, maxIter int) (Result, error) {
	n := len(b)
	if len(x) != n || len(diag) != n {
		return Result{}, ErrDimension
	}
	for _, d := range diag {
		if d == 0 {
			return Result{}, errors.New("solver: zero diagonal entry in Jacobi")
		}
	}
	ax := make([]float64, n)
	bNorm := math.Sqrt(Dot(b, b))
	if bNorm == 0 {
		bNorm = 1
	}
	var res Result
	for res.Iterations = 0; res.Iterations < maxIter; res.Iterations++ {
		mul(x, ax)
		var rr float64
		for i := range x {
			r := b[i] - ax[i]
			rr += r * r
			x[i] += omega * r / diag[i]
		}
		res.Residual = math.Sqrt(rr) / bNorm
		if res.Residual < tol {
			res.Converged = true
			return res, nil
		}
	}
	return res, nil
}

// PowerIteration computes the dominant eigenvalue and eigenvector of A.
// v is the starting vector (overwritten with the eigenvector estimate).
func PowerIteration(mul MulVec, v []float64, tol float64, maxIter int) (lambda float64, res Result, err error) {
	n := len(v)
	if n == 0 {
		return 0, Result{}, ErrDimension
	}
	Normalize(v)
	av := make([]float64, n)
	prev := 0.0
	for res.Iterations = 0; res.Iterations < maxIter; res.Iterations++ {
		mul(v, av)
		lambda = Dot(v, av)
		norm := math.Sqrt(Dot(av, av))
		if norm == 0 {
			return 0, res, errors.New("solver: power iteration hit the zero vector")
		}
		for i := range v {
			v[i] = av[i] / norm
		}
		res.Residual = math.Abs(lambda - prev)
		if res.Iterations > 0 && res.Residual < tol*math.Max(1, math.Abs(lambda)) {
			res.Converged = true
			return lambda, res, nil
		}
		prev = lambda
	}
	return lambda, res, nil
}

// PageRank runs the damped power iteration r ← (1−d)/n + d·M r until the
// L1 change drops below tol. mul must apply the column-stochastic
// transition matrix.
func PageRank(mul MulVec, n int, damping, tol float64, maxIter int) ([]float64, Result) {
	r := make([]float64, n)
	for i := range r {
		r[i] = 1 / float64(n)
	}
	mr := make([]float64, n)
	var res Result
	for res.Iterations = 0; res.Iterations < maxIter; res.Iterations++ {
		mul(r, mr)
		var delta float64
		for i := range r {
			next := (1-damping)/float64(n) + damping*mr[i]
			delta += math.Abs(next - r[i])
			r[i] = next
		}
		res.Residual = delta
		if delta < tol {
			res.Converged = true
			break
		}
	}
	return r, res
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Normalize scales v to unit 2-norm (no-op on the zero vector).
func Normalize(v []float64) {
	n := math.Sqrt(Dot(v, v))
	if n == 0 {
		return
	}
	for i := range v {
		v[i] /= n
	}
}
