package solver

import (
	"math"
)

// This file holds the multi-RHS solver layer over the engines' batched
// SpMM path: every iteration performs ONE block multiply for all nrhs
// right-hand sides, so the per-packet latency the partitioners fight is
// amortized across columns while each column still runs its own scalar
// recurrences. Vectors use the same column-blocked layout as
// spmv.MultiplyBlock: column c's entry for row i sits at V[i*nrhs+c].

// MulBlock computes Y ← AX for nrhs column-blocked right-hand sides;
// implementations include (*spmv.Engine).MultiplyBlock and
// (*spmv.RoutedEngine).MultiplyBlock.
type MulBlock func(X, Y []float64, nrhs int)

// SingleBlock adapts a single-vector multiply to MulBlock by looping
// columns through scratch buffers — the serial reference for tests and a
// fallback for multipliers without a native block path.
func SingleBlock(mul MulVec, n int) MulBlock {
	x := make([]float64, n)
	var y []float64
	return func(X, Y []float64, nrhs int) {
		rows := len(Y) / nrhs
		if cap(y) < rows {
			y = make([]float64, rows)
		}
		y = y[:rows]
		for c := 0; c < nrhs; c++ {
			for i := range x {
				x[i] = X[i*nrhs+c]
			}
			mul(x, y)
			for i, v := range y {
				Y[i*nrhs+c] = v
			}
		}
	}
}

// BlockDots computes the per-column inner products of two column-blocked
// vectors: out[c] = Σ_i a[i*nrhs+c]·b[i*nrhs+c]. Per column the terms
// accumulate in row order, matching Dot's order on the unblocked vector.
func BlockDots(a, b []float64, nrhs int, out []float64) {
	for c := range out[:nrhs] {
		out[c] = 0
	}
	for i := 0; i < len(a); i += nrhs {
		for c := 0; c < nrhs; c++ {
			out[c] += a[i+c] * b[i+c]
		}
	}
}

// BlockCG solves A·x_c = b_c for all nrhs columns of the column-blocked B
// simultaneously, one SpMM per iteration. A must be symmetric positive
// definite. X is both the initial guess and the output. Columns converge
// independently: a converged (or broken-down, pᵀAp ≤ 0) column freezes
// while the rest keep iterating; its Result records the iteration count
// at which it stopped. The returned error covers argument problems only.
func BlockCG(mul MulBlock, B, X []float64, nrhs int, tol float64, maxIter int) ([]Result, error) {
	n, err := blockDims(B, X, nrhs)
	if err != nil {
		return nil, err
	}
	r := make([]float64, n*nrhs)
	ap := make([]float64, n*nrhs)
	mul(X, ap, nrhs)
	for i := range r {
		r[i] = B[i] - ap[i]
	}
	p := append([]float64(nil), r...)

	rr := make([]float64, nrhs)
	BlockDots(r, r, nrhs, rr)
	bNorm := blockNorms(B, nrhs)
	res := make([]Result, nrhs)
	done := make([]bool, nrhs)
	active := nrhs
	pap := make([]float64, nrhs)
	alpha := make([]float64, nrhs)
	rrNew := make([]float64, nrhs)

	for iter := 0; iter < maxIter && active > 0; iter++ {
		for c := 0; c < nrhs; c++ {
			if done[c] {
				continue
			}
			res[c].Iterations = iter
			res[c].Residual = math.Sqrt(rr[c]) / bNorm[c]
			if res[c].Residual < tol {
				res[c].Converged = true
				done[c] = true
				active--
			}
		}
		if active == 0 {
			break
		}
		mul(p, ap, nrhs)
		BlockDots(p, ap, nrhs, pap)
		for c := 0; c < nrhs; c++ {
			alpha[c] = 0
			if done[c] {
				continue
			}
			if pap[c] <= 0 {
				// Not positive definite along this column's search
				// direction; freeze it unconverged.
				done[c] = true
				active--
				continue
			}
			alpha[c] = rr[c] / pap[c]
		}
		for i := 0; i < len(X); i += nrhs {
			for c := 0; c < nrhs; c++ {
				X[i+c] += alpha[c] * p[i+c]
				r[i+c] -= alpha[c] * ap[i+c]
			}
		}
		BlockDots(r, r, nrhs, rrNew)
		for i := 0; i < len(p); i += nrhs {
			for c := 0; c < nrhs; c++ {
				if alpha[c] != 0 {
					p[i+c] = r[i+c] + (rrNew[c]/rr[c])*p[i+c]
				}
			}
		}
		for c := 0; c < nrhs; c++ {
			if !done[c] {
				rr[c] = rrNew[c]
			}
		}
	}
	for c := 0; c < nrhs; c++ {
		if !done[c] {
			res[c].Iterations = maxIter
			res[c].Residual = math.Sqrt(rr[c]) / bNorm[c]
			res[c].Converged = res[c].Residual < tol
		}
	}
	return res, nil
}

// BlockBiCGSTAB solves A·x_c = b_c for general (unsymmetric) A over all
// nrhs columns, two SpMMs per iteration. Columns that converge or hit a
// BiCGSTAB breakdown (ρ, r̂·v, t, or ω reaching zero) freeze while the
// rest continue; breakdown columns report Converged=false at their final
// residual.
func BlockBiCGSTAB(mul MulBlock, B, X []float64, nrhs int, tol float64, maxIter int) ([]Result, error) {
	n, err := blockDims(B, X, nrhs)
	if err != nil {
		return nil, err
	}
	r := make([]float64, n*nrhs)
	mul(X, r, nrhs)
	for i := range r {
		r[i] = B[i] - r[i]
	}
	rHat := append([]float64(nil), r...)
	v := make([]float64, n*nrhs)
	p := make([]float64, n*nrhs)
	s := make([]float64, n*nrhs)
	t := make([]float64, n*nrhs)

	rho := fill(nrhs, 1)
	alpha := fill(nrhs, 1)
	omega := fill(nrhs, 1)
	bNorm := blockNorms(B, nrhs)
	rr := make([]float64, nrhs)
	rhoNew := make([]float64, nrhs)
	den := make([]float64, nrhs)
	ss := make([]float64, nrhs)
	tt := make([]float64, nrhs)
	ts := make([]float64, nrhs)
	res := make([]Result, nrhs)
	done := make([]bool, nrhs)
	active := nrhs

	freeze := func(c int) {
		done[c] = true
		active--
	}
	for iter := 0; iter < maxIter && active > 0; iter++ {
		BlockDots(r, r, nrhs, rr)
		BlockDots(rHat, r, nrhs, rhoNew)
		for c := 0; c < nrhs; c++ {
			if done[c] {
				continue
			}
			res[c].Iterations = iter
			res[c].Residual = math.Sqrt(rr[c]) / bNorm[c]
			if res[c].Residual < tol {
				res[c].Converged = true
				freeze(c)
				continue
			}
			if rhoNew[c] == 0 {
				freeze(c)
				continue
			}
			beta := (rhoNew[c] / rho[c]) * (alpha[c] / omega[c])
			rho[c] = rhoNew[c]
			for i := c; i < len(p); i += nrhs {
				p[i] = r[i] + beta*(p[i]-omega[c]*v[i])
			}
		}
		if active == 0 {
			break
		}
		mul(p, v, nrhs)
		BlockDots(rHat, v, nrhs, den)
		for c := 0; c < nrhs; c++ {
			if done[c] {
				continue
			}
			if den[c] == 0 {
				freeze(c)
				continue
			}
			alpha[c] = rho[c] / den[c]
			for i := c; i < len(s); i += nrhs {
				s[i] = r[i] - alpha[c]*v[i]
			}
		}
		BlockDots(s, s, nrhs, ss)
		for c := 0; c < nrhs; c++ {
			if done[c] {
				continue
			}
			if math.Sqrt(ss[c])/bNorm[c] < tol {
				for i := c; i < len(X); i += nrhs {
					X[i] += alpha[c] * p[i]
				}
				res[c].Iterations++
				res[c].Residual = math.Sqrt(ss[c]) / bNorm[c]
				res[c].Converged = true
				freeze(c)
			}
		}
		if active == 0 {
			break
		}
		mul(s, t, nrhs)
		BlockDots(t, t, nrhs, tt)
		BlockDots(t, s, nrhs, ts)
		for c := 0; c < nrhs; c++ {
			if done[c] {
				continue
			}
			if tt[c] == 0 {
				freeze(c)
				continue
			}
			omega[c] = ts[c] / tt[c]
			if omega[c] == 0 {
				freeze(c)
				continue
			}
			for i := c; i < len(X); i += nrhs {
				X[i] += alpha[c]*p[i] + omega[c]*s[i]
				r[i] = s[i] - omega[c]*t[i]
			}
		}
	}
	BlockDots(r, r, nrhs, rr)
	for c := 0; c < nrhs; c++ {
		if !done[c] {
			res[c].Iterations = maxIter
			res[c].Residual = math.Sqrt(rr[c]) / bNorm[c]
			res[c].Converged = res[c].Residual < tol
		}
	}
	return res, nil
}

// PageRankMulti runs the damped power iteration for nrhs personalization
// vectors at once: R_c ← (1−d)·e_c + d·M R_c, one SpMM per iteration.
// mul must apply the column-stochastic transition matrix. E is the
// column-blocked teleport block (each column a probability vector); nil
// means the uniform vector for every column, reducing each column to
// classic PageRank. The returned block R is column-blocked; res[c]
// reports column c's L1 delta at exit.
func PageRankMulti(mul MulBlock, n, nrhs int, E []float64, damping, tol float64, maxIter int) ([]float64, []Result) {
	if E != nil && len(E) != n*nrhs {
		panic("solver: teleport block dimension mismatch")
	}
	teleport := func(i, c int) float64 {
		if E == nil {
			return 1 / float64(n)
		}
		return E[i*nrhs+c]
	}
	r := make([]float64, n*nrhs)
	for i := 0; i < n; i++ {
		for c := 0; c < nrhs; c++ {
			r[i*nrhs+c] = teleport(i, c)
		}
	}
	mr := make([]float64, n*nrhs)
	delta := make([]float64, nrhs)
	res := make([]Result, nrhs)
	done := make([]bool, nrhs)
	active := nrhs
	for iter := 0; iter < maxIter && active > 0; iter++ {
		mul(r, mr, nrhs)
		for c := range delta {
			delta[c] = 0
		}
		for i := 0; i < n; i++ {
			for c := 0; c < nrhs; c++ {
				if done[c] {
					continue
				}
				next := (1-damping)*teleport(i, c) + damping*mr[i*nrhs+c]
				delta[c] += math.Abs(next - r[i*nrhs+c])
				r[i*nrhs+c] = next
			}
		}
		for c := 0; c < nrhs; c++ {
			if done[c] {
				continue
			}
			res[c].Iterations = iter // PageRank's convention: loop index at exit
			res[c].Residual = delta[c]
			if delta[c] < tol {
				res[c].Converged = true
				done[c] = true
				active--
			}
		}
	}
	return r, res
}

// Column extracts column c of a column-blocked vector into a fresh slice.
func Column(block []float64, nrhs, c int) []float64 {
	out := make([]float64, len(block)/nrhs)
	for i := range out {
		out[i] = block[i*nrhs+c]
	}
	return out
}

// PackColumns interleaves vecs (equal-length vectors) into a fresh
// column-blocked vector with nrhs = len(vecs).
func PackColumns(vecs [][]float64) []float64 {
	nrhs := len(vecs)
	if nrhs == 0 {
		return nil
	}
	n := len(vecs[0])
	out := make([]float64, n*nrhs)
	for c, v := range vecs {
		if len(v) != n {
			panic("solver: ragged columns")
		}
		for i, x := range v {
			out[i*nrhs+c] = x
		}
	}
	return out
}

func blockDims(B, X []float64, nrhs int) (int, error) {
	if nrhs < 1 || len(B) != len(X) || len(B)%nrhs != 0 {
		return 0, ErrDimension
	}
	return len(B) / nrhs, nil
}

func blockNorms(B []float64, nrhs int) []float64 {
	out := make([]float64, nrhs)
	BlockDots(B, B, nrhs, out)
	for c := range out {
		out[c] = math.Sqrt(out[c])
		if out[c] == 0 {
			out[c] = 1
		}
	}
	return out
}

func fill(n int, v float64) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = v
	}
	return s
}
