// Benchmarks regenerating every table and figure of the paper's
// evaluation, one benchmark per artifact. They run at a reduced matrix
// scale so `go test -bench=.` completes on a laptop; run
// `cmd/spmvbench -full` for paper-scale instances. Reported custom metrics
// summarize the table's headline comparison (geometric-mean volume ratios
// and imbalances), so a regression in the reproduction shows up as a
// metric shift, not just a time change.
package repro

import (
	"io"
	"math"
	"testing"

	"repro/internal/harness"
)

// benchCfg is the shared reduced-scale configuration. K values follow the
// paper; matrices shrink to keep a full table run in seconds.
func benchCfg() harness.Config {
	return harness.Config{Scale: 1.0 / 64, Seed: 1}
}

// benchCfgB reduces the K list for the dense-row tables so the smallest
// scaled matrices keep a sensible number of rows per part (the paper's
// K=4096 needs full-size matrices).
func benchCfgB() harness.Config {
	cfg := benchCfg()
	cfg.Ks = []int{64, 256}
	return cfg
}

func geomeanRatio(rows []harness.Row, num, den string) float64 {
	logSum, n := 0.0, 0
	for _, r := range rows {
		a, okA := r.Find(num)
		b, okB := r.Find(den)
		if okA && okB && a.Volume > 0 && b.Volume > 0 {
			logSum += math.Log(float64(a.Volume) / float64(b.Volume))
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

func geomeanLI(rows []harness.Row, method string) float64 {
	logSum, n := 0.0, 0
	for _, r := range rows {
		if m, ok := r.Find(method); ok && m.LI > 0 {
			logSum += math.Log(m.LI)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

func BenchmarkFigure1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		harness.Figure1(io.Discard)
	}
}

func BenchmarkTable1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		harness.Table1(io.Discard, benchCfg())
	}
}

func BenchmarkTable2(b *testing.B) {
	b.ReportAllocs()
	var rows []harness.Row
	for i := 0; i < b.N; i++ {
		rows = harness.Table2(io.Discard, benchCfg())
	}
	b.ReportMetric(geomeanRatio(rows, "s2D", "1D"), "s2D/1D-vol")
	b.ReportMetric(geomeanRatio(rows, "2D", "1D"), "2D/1D-vol")
}

func BenchmarkTable3(b *testing.B) {
	b.ReportAllocs()
	var rows []harness.Row
	for i := 0; i < b.N; i++ {
		rows = harness.Table3(io.Discard, benchCfg())
	}
	b.ReportMetric(geomeanRatio(rows, "2D-b", "1D"), "2Db/1D-vol")
}

func BenchmarkTable4(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		harness.Table4(io.Discard, benchCfg())
	}
}

func BenchmarkTable5(b *testing.B) {
	b.ReportAllocs()
	var rows []harness.Row
	for i := 0; i < b.N; i++ {
		rows = harness.Table5(io.Discard, benchCfgB())
	}
	b.ReportMetric(geomeanRatio(rows, "s2D", "1D"), "s2D/1D-vol")
	b.ReportMetric(geomeanRatio(rows, "s2D-b", "1D"), "s2Db/1D-vol")
	b.ReportMetric(geomeanLI(rows, "1D"), "1D-LI")
	b.ReportMetric(geomeanLI(rows, "s2D"), "s2D-LI")
}

func BenchmarkTable6(b *testing.B) {
	b.ReportAllocs()
	var rows []harness.Row
	for i := 0; i < b.N; i++ {
		rows = harness.Table6(io.Discard, benchCfgB())
	}
	b.ReportMetric(geomeanRatio(rows, "s2D-b", "2D-b"), "s2Db/2Db-vol")
	b.ReportMetric(geomeanRatio(rows, "1D-b", "2D-b"), "1Db/2Db-vol")
	b.ReportMetric(geomeanLI(rows, "2D-b"), "2Db-LI")
	b.ReportMetric(geomeanLI(rows, "s2D-b"), "s2Db-LI")
}

func BenchmarkTable7(b *testing.B) {
	b.ReportAllocs()
	var rows []harness.Row
	for i := 0; i < b.N; i++ {
		rows = harness.Table7(io.Discard, benchCfgB())
	}
	b.ReportMetric(geomeanRatio(rows, "s2D", "s2D-mg"), "s2D/mg-vol")
	b.ReportMetric(geomeanLI(rows, "s2D-mg"), "mg-LI")
	b.ReportMetric(geomeanLI(rows, "s2D"), "s2D-LI")
}

// BenchmarkTableNRHS regenerates the multi-RHS scaling comparison. The
// metrics track the paper-extending result: s2D-b trades communication
// volume for a message-count bound, so against s2D (same nonzero
// partition, unbounded schedule) its per-column advantage at nrhs=1 must
// erode as the batch widens and the α latency term it optimizes is
// amortized away. s2Db/s2D@1 and @max are the geomean per-column time
// ratios at the narrowest and widest width — the result is @max drifting
// up toward (or past) 1.0 from a sub-1.0 @1.
func BenchmarkTableNRHS(b *testing.B) {
	b.ReportAllocs()
	nrhsList := []int{1, 8, 64}
	var rows []harness.NRHSRow
	cfg := benchCfgB()
	for i := 0; i < b.N; i++ {
		rows = harness.TableNRHS(io.Discard, cfg, nrhsList)
	}
	ratioAt := func(nrhs int) float64 {
		logSum, n := 0.0, 0
		for _, r := range rows {
			if r.NRHS != nrhs {
				continue
			}
			sb, okB := r.Find("s2D-b")
			sd, okD := r.Find("s2D")
			if okB && okD && sb.PerColUS > 0 && sd.PerColUS > 0 {
				logSum += math.Log(sb.PerColUS / sd.PerColUS)
				n++
			}
		}
		if n == 0 {
			return math.NaN()
		}
		return math.Exp(logSum / float64(n))
	}
	b.ReportMetric(ratioAt(nrhsList[0]), "s2Db/s2D@1")
	b.ReportMetric(ratioAt(nrhsList[len(nrhsList)-1]), "s2Db/s2D@max")
}

// BenchmarkAblation regenerates the design-choice ablation (DESIGN.md §4):
// s2D construction variants, vector-partition sources, and the three
// latency-bounding schemes.
func BenchmarkAblation(b *testing.B) {
	b.ReportAllocs()
	var rows []harness.Row
	cfg := benchCfgB()
	for i := 0; i < b.N; i++ {
		rows = harness.Ablation(io.Discard, cfg)
	}
	b.ReportMetric(geomeanRatio(rows, "s2D", "s2D-opt"), "s2D/opt-vol")
	b.ReportMetric(geomeanRatio(rows, "s2D-x", "s2D"), "ext/s2D-vol")
	b.ReportMetric(geomeanRatio(rows, "s2D-rcm", "s2D"), "rcm/hp-vol")
	b.ReportMetric(geomeanLI(rows, "s2D-x"), "ext-LI")
}
