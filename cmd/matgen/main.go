// Command matgen emits the synthetic test-matrix suite as MatrixMarket
// files, so the stand-ins for the paper's UFL/SNAP matrices can be
// inspected or fed to other tools.
//
// Usage:
//
//	matgen -set a -scale 0.02 -out ./matrices
//	matgen -matrix rmat_20 -scale 0.01 -out .
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/gen"
	"repro/internal/sparse"
)

func main() {
	set := flag.String("set", "", "matrix set to generate: a (Table I) or b (Table IV)")
	matrix := flag.String("matrix", "", "single named matrix to generate")
	scale := flag.Float64("scale", 1.0/64, "matrix scale (1.0 = paper size)")
	seed := flag.Int64("seed", 1, "RNG seed")
	out := flag.String("out", ".", "output directory")
	flag.Parse()

	var specs []gen.Spec
	switch {
	case *matrix != "":
		spec, ok := gen.ByName(*matrix)
		if !ok {
			fmt.Fprintf(os.Stderr, "matgen: unknown matrix %q\n", *matrix)
			os.Exit(1)
		}
		specs = []gen.Spec{spec}
	case *set == "a":
		specs = gen.SetA()
	case *set == "b":
		specs = gen.SetB()
	default:
		fmt.Fprintln(os.Stderr, "matgen: need -set a|b or -matrix name")
		os.Exit(2)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "matgen:", err)
		os.Exit(1)
	}
	for i, spec := range specs {
		a := spec.Generate(*scale, *seed+int64(i))
		path := filepath.Join(*out, spec.Name+".mtx")
		if err := writeMatrix(path, a); err != nil {
			fmt.Fprintln(os.Stderr, "matgen:", err)
			os.Exit(1)
		}
		st := a.ComputeStats()
		fmt.Printf("%-14s %10d x %-10d nnz %-10d -> %s\n", spec.Name, st.Rows, st.Cols, st.NNZ, path)
	}
}

func writeMatrix(path string, a *sparse.CSR) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return sparse.WriteMatrixMarket(f, a)
}
